// Package exec executes physical plans against the in-memory database and
// charges calibrated work units for every operation. The resulting
// deterministic "milliseconds" play the role of the real execution times the
// paper trains on, and the per-node output counts provide the true
// cardinalities; both are recorded into the plan's TrueRows/TrueCost
// annotations.
package exec

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"costest/internal/dataset"
	"costest/internal/plan"
	"costest/internal/sqlpred"
)

// ErrTooBig is returned when an intermediate result exceeds Engine.MaxRows;
// the workload generators drop such queries.
var ErrTooBig = errors.New("exec: intermediate result too large")

// RowsPerPage converts tuple counts to page counts for I/O accounting.
const RowsPerPage = 100

// Cost weights, in milliseconds per unit of work. They shape the nonlinear
// relationship between plan structure, cardinalities and cost that the model
// has to learn; absolute calibration is irrelevant to the experiments.
const (
	msSeqPage    = 0.010
	msRandPage   = 0.040
	msTuple      = 0.0005
	msHashBuild  = 0.0012
	msHashProbe  = 0.0008
	msCompare    = 0.0003
	msIndexProbe = 0.0020
	msOutput     = 0.0005
	msStartup    = 0.05 // per-operator startup overhead
)

// Memory-hierarchy effects make the true cost a nonlinear function of the
// work counters, the way real execution times are nonlinear in PostgreSQL's
// cost features: hash tables and sorts that outgrow the cache pay a
// super-linear penalty per additional row. A learned estimator can absorb
// this from data; a linear cost model cannot, which is exactly the gap the
// paper's experiments measure.
const (
	cacheRows        = 4096
	msHashBuildSpill = 0.004
	msSortSpill      = 0.001
)

// Counters accumulates the work performed by one operator.
type Counters struct {
	SeqPages    float64
	RandPages   float64
	Tuples      float64
	HashBuild   float64
	HashProbe   float64
	Comparisons float64
	IndexProbes float64
	Output      float64
	SortedRows  float64 // rows materialized by sorts (merge join, Sort)
}

// Cost converts the counters into deterministic milliseconds, including the
// super-linear cache-spill penalties for large hash builds and sorts.
func (c Counters) Cost() float64 {
	cost := msStartup +
		msSeqPage*c.SeqPages +
		msRandPage*c.RandPages +
		msTuple*c.Tuples +
		msHashBuild*c.HashBuild +
		msHashProbe*c.HashProbe +
		msCompare*c.Comparisons +
		msIndexProbe*c.IndexProbes +
		msOutput*c.Output
	if c.HashBuild > cacheRows {
		over := c.HashBuild - cacheRows
		cost += msHashBuildSpill * over
		// Probes against a spilled table also slow down.
		cost += msHashProbe * c.HashProbe * math.Min(3, over/cacheRows)
	}
	if c.SortedRows > cacheRows {
		cost += msSortSpill * (c.SortedRows - cacheRows) * math.Log2(c.SortedRows/cacheRows+2)
	}
	return cost
}

// Relation is an intermediate result: a bag of composite tuples, each tuple
// holding one row index per base table.
type Relation struct {
	Tables []string
	Width  int
	Data   []int32 // Width * NumRows entries, row-major
	// scalar marks a one-row aggregate result with no base-table columns.
	scalar bool
}

// NumRows returns the relation's cardinality.
func (r *Relation) NumRows() int {
	if r.Width == 0 {
		if r.scalar {
			return 1
		}
		return 0
	}
	return len(r.Data) / r.Width
}

// ColOf returns the tuple position of a base table, or -1.
func (r *Relation) ColOf(table string) int {
	for i, t := range r.Tables {
		if t == table {
			return i
		}
	}
	return -1
}

// Row returns the i-th composite tuple (a view into Data).
func (r *Relation) Row(i int) []int32 {
	return r.Data[i*r.Width : (i+1)*r.Width]
}

// Engine executes plans. It is immutable after construction and safe for
// concurrent Run calls, which the training-data generator exploits.
type Engine struct {
	DB      *dataset.DB
	MaxRows int
	// secondary indexes keyed "table.column": value -> row indices.
	secondary map[string]map[int64][]int32
}

// NewEngine builds an engine, materializing every secondary (non-PK) index
// declared in the schema.
func NewEngine(db *dataset.DB) *Engine {
	e := &Engine{DB: db, MaxRows: 2_000_000, secondary: make(map[string]map[int64][]int32)}
	for _, idx := range db.Schema.Indexes {
		if idx.Column == db.Schema.Table(idx.Table).PrimaryKey {
			continue // PK ids are contiguous; the identity map suffices
		}
		key := idx.Table + "." + idx.Column
		col := db.Table(idx.Table).IntColumn(idx.Column)
		m := make(map[int64][]int32)
		for row, v := range col {
			m[v] = append(m[v], int32(row))
		}
		e.secondary[key] = m
	}
	return e
}

// HasIndex reports whether an index (PK or secondary) exists on
// table.column.
func (e *Engine) HasIndex(table, column string) bool {
	if e.DB.Schema.Table(table) != nil && e.DB.Schema.Table(table).PrimaryKey == column {
		return e.DB.Schema.IndexOn(table, column) != nil
	}
	_, ok := e.secondary[table+"."+column]
	return ok
}

// Run executes the plan rooted at root, annotating every node with TrueRows
// and cumulative TrueCost, and returns the root result.
func (e *Engine) Run(root *plan.Node) (*Relation, error) {
	rel, _, err := e.exec(root)
	return rel, err
}

// exec returns (result, cumulative cost, error).
func (e *Engine) exec(n *plan.Node) (*Relation, float64, error) {
	if n == nil {
		return nil, 0, errors.New("exec: nil plan node")
	}
	var (
		rel       *Relation
		childCost float64
		c         Counters
		err       error
	)
	switch n.Type {
	case plan.SeqScan:
		rel, err = e.seqScan(n, &c)
	case plan.IndexScan:
		rel, err = e.indexScan(n, &c)
	case plan.HashJoin:
		rel, childCost, err = e.hashJoin(n, &c)
	case plan.MergeJoin:
		rel, childCost, err = e.mergeJoin(n, &c)
	case plan.NestedLoop:
		rel, childCost, err = e.nestedLoop(n, &c)
	case plan.Sort:
		rel, childCost, err = e.sortOp(n, &c)
	case plan.Aggregate:
		rel, childCost, err = e.aggregate(n, &c)
	default:
		return nil, 0, fmt.Errorf("exec: unsupported node type %v", n.Type)
	}
	if err != nil {
		return nil, 0, err
	}
	if rel.NumRows() > e.MaxRows {
		return nil, 0, ErrTooBig
	}
	total := childCost + c.Cost()
	n.TrueRows = float64(rel.NumRows())
	n.TrueCost = total
	return rel, total, nil
}

func (e *Engine) seqScan(n *plan.Node, c *Counters) (*Relation, error) {
	data := e.DB.Table(n.Table)
	if data == nil {
		return nil, fmt.Errorf("exec: unknown table %q", n.Table)
	}
	match, err := sqlpred.Compile(n.Filter, n.Table, data)
	if err != nil {
		return nil, err
	}
	rel := &Relation{Tables: []string{n.Table}, Width: 1}
	atoms := float64(sqlpred.CountAtoms(n.Filter))
	for row := 0; row < data.NumRows; row++ {
		if match(row) {
			rel.Data = append(rel.Data, int32(row))
		}
	}
	c.Tuples += float64(data.NumRows)
	c.Comparisons += float64(data.NumRows) * atoms
	c.SeqPages += math.Ceil(float64(data.NumRows) / RowsPerPage)
	c.Output += float64(rel.NumRows())
	return rel, nil
}

// indexScan executes a filter-driven index scan (IndexCond set). Inner-side
// parameterized scans (ParamJoin set) are driven by the nested-loop parent.
func (e *Engine) indexScan(n *plan.Node, c *Counters) (*Relation, error) {
	if n.ParamJoin != nil {
		return nil, errors.New("exec: parameterized index scan executed without nested-loop parent")
	}
	if n.IndexCond == nil {
		return nil, fmt.Errorf("exec: index scan on %s without index condition", n.Table)
	}
	data := e.DB.Table(n.Table)
	if data == nil {
		return nil, fmt.Errorf("exec: unknown table %q", n.Table)
	}
	rows, probes, err := e.indexLookup(n.Table, n.IndexCond)
	if err != nil {
		return nil, err
	}
	c.IndexProbes += probes
	c.RandPages += float64(len(rows))
	c.Tuples += float64(len(rows))

	match, err := sqlpred.Compile(n.Filter, n.Table, data)
	if err != nil {
		return nil, err
	}
	atoms := float64(sqlpred.CountAtoms(n.Filter))
	rel := &Relation{Tables: []string{n.Table}, Width: 1}
	for _, row := range rows {
		if match(int(row)) {
			rel.Data = append(rel.Data, row)
		}
	}
	c.Comparisons += float64(len(rows)) * atoms
	c.Output += float64(rel.NumRows())
	return rel, nil
}

// indexLookup returns the row indices satisfying an index condition on
// table.column, plus the probe work performed.
func (e *Engine) indexLookup(table string, cond *sqlpred.Atom) ([]int32, float64, error) {
	data := e.DB.Table(table)
	pk := e.DB.Schema.Table(table).PrimaryKey
	logN := math.Log2(float64(data.NumRows) + 2)
	if cond.Column == pk {
		// Contiguous PK: translate the condition into an id range.
		lo, hi := int64(1), int64(data.NumRows)
		v := int64(cond.NumVal)
		switch cond.Op {
		case sqlpred.OpEq:
			lo, hi = v, v
		case sqlpred.OpLt:
			hi = v - 1
		case sqlpred.OpLe:
			hi = v
		case sqlpred.OpGt:
			lo = v + 1
		case sqlpred.OpGe:
			lo = v
		default:
			return nil, 0, fmt.Errorf("exec: unsupported PK index op %v", cond.Op)
		}
		if lo < 1 {
			lo = 1
		}
		if hi > int64(data.NumRows) {
			hi = int64(data.NumRows)
		}
		var rows []int32
		for id := lo; id <= hi; id++ {
			rows = append(rows, int32(id-1))
		}
		return rows, logN, nil
	}
	m := e.secondary[table+"."+cond.Column]
	if m == nil {
		return nil, 0, fmt.Errorf("exec: no index on %s.%s", table, cond.Column)
	}
	if cond.Op != sqlpred.OpEq {
		return nil, 0, fmt.Errorf("exec: secondary index supports only equality, got %v", cond.Op)
	}
	return m[int64(cond.NumVal)], logN, nil
}

// joinKeys resolves which side of the join condition belongs to which child
// relation, returning (leftRef, rightRef).
func joinKeys(cond *plan.JoinCond, left, right *Relation) (plan.ColRef, plan.ColRef, error) {
	if left.ColOf(cond.Left.Table) >= 0 && right.ColOf(cond.Right.Table) >= 0 {
		return cond.Left, cond.Right, nil
	}
	if left.ColOf(cond.Right.Table) >= 0 && right.ColOf(cond.Left.Table) >= 0 {
		return cond.Right, cond.Left, nil
	}
	return plan.ColRef{}, plan.ColRef{}, fmt.Errorf("exec: join condition %v does not span children", cond)
}

// keyColumn returns the int column vector and tuple position used to read a
// join key from a relation.
func (e *Engine) keyColumn(rel *Relation, ref plan.ColRef) ([]int64, int, error) {
	pos := rel.ColOf(ref.Table)
	if pos < 0 {
		return nil, 0, fmt.Errorf("exec: table %s not in relation", ref.Table)
	}
	col := e.DB.Table(ref.Table).IntColumn(ref.Column)
	if col == nil {
		return nil, 0, fmt.Errorf("exec: join key %s is not an int column", ref)
	}
	return col, pos, nil
}

func (e *Engine) hashJoin(n *plan.Node, c *Counters) (*Relation, float64, error) {
	left, lc, err := e.exec(n.Left)
	if err != nil {
		return nil, 0, err
	}
	right, rc, err := e.exec(n.Right)
	if err != nil {
		return nil, 0, err
	}
	lRef, rRef, err := joinKeys(n.JoinCond, left, right)
	if err != nil {
		return nil, 0, err
	}
	lCol, lPos, err := e.keyColumn(left, lRef)
	if err != nil {
		return nil, 0, err
	}
	rCol, rPos, err := e.keyColumn(right, rRef)
	if err != nil {
		return nil, 0, err
	}
	// Build on the right child (the planner puts the smaller estimate there).
	build := make(map[int64][]int32, right.NumRows())
	for i := 0; i < right.NumRows(); i++ {
		k := rCol[right.Row(i)[rPos]]
		build[k] = append(build[k], int32(i))
	}
	c.HashBuild += float64(right.NumRows())

	out := &Relation{Tables: append(append([]string{}, left.Tables...), right.Tables...),
		Width: left.Width + right.Width}
	for i := 0; i < left.NumRows(); i++ {
		lRow := left.Row(i)
		k := lCol[lRow[lPos]]
		for _, j := range build[k] {
			out.Data = append(out.Data, lRow...)
			out.Data = append(out.Data, right.Row(int(j))...)
			if out.NumRows() > e.MaxRows {
				return nil, 0, ErrTooBig
			}
		}
	}
	c.HashProbe += float64(left.NumRows())
	c.Output += float64(out.NumRows())
	return out, lc + rc, nil
}

func (e *Engine) mergeJoin(n *plan.Node, c *Counters) (*Relation, float64, error) {
	left, lc, err := e.exec(n.Left)
	if err != nil {
		return nil, 0, err
	}
	right, rc, err := e.exec(n.Right)
	if err != nil {
		return nil, 0, err
	}
	lRef, rRef, err := joinKeys(n.JoinCond, left, right)
	if err != nil {
		return nil, 0, err
	}
	lCol, lPos, err := e.keyColumn(left, lRef)
	if err != nil {
		return nil, 0, err
	}
	rCol, rPos, err := e.keyColumn(right, rRef)
	if err != nil {
		return nil, 0, err
	}
	lIdx := sortedOrder(left, lCol, lPos)
	rIdx := sortedOrder(right, rCol, rPos)
	nl, nr := float64(left.NumRows()), float64(right.NumRows())
	c.Comparisons += nl*math.Log2(nl+2) + nr*math.Log2(nr+2) + nl + nr
	c.SortedRows += nl + nr

	out := &Relation{Tables: append(append([]string{}, left.Tables...), right.Tables...),
		Width: left.Width + right.Width}
	i, j := 0, 0
	for i < len(lIdx) && j < len(rIdx) {
		lk := lCol[left.Row(lIdx[i])[lPos]]
		rk := rCol[right.Row(rIdx[j])[rPos]]
		switch {
		case lk < rk:
			i++
		case lk > rk:
			j++
		default:
			// Emit the cross product of the equal-key runs.
			jEnd := j
			for jEnd < len(rIdx) && rCol[right.Row(rIdx[jEnd])[rPos]] == lk {
				jEnd++
			}
			for ; i < len(lIdx) && lCol[left.Row(lIdx[i])[lPos]] == lk; i++ {
				for jj := j; jj < jEnd; jj++ {
					out.Data = append(out.Data, left.Row(lIdx[i])...)
					out.Data = append(out.Data, right.Row(rIdx[jj])...)
					if out.NumRows() > e.MaxRows {
						return nil, 0, ErrTooBig
					}
				}
			}
			j = jEnd
		}
	}
	c.Output += float64(out.NumRows())
	return out, lc + rc, nil
}

func sortedOrder(rel *Relation, col []int64, pos int) []int {
	idx := make([]int, rel.NumRows())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return col[rel.Row(idx[a])[pos]] < col[rel.Row(idx[b])[pos]]
	})
	return idx
}

func (e *Engine) nestedLoop(n *plan.Node, c *Counters) (*Relation, float64, error) {
	left, lc, err := e.exec(n.Left)
	if err != nil {
		return nil, 0, err
	}
	// Index nested loop: inner side is a parameterized index scan.
	if n.Right != nil && n.Right.Type == plan.IndexScan && n.Right.ParamJoin != nil {
		rel, cost, err := e.indexNL(n, left, lc, c)
		return rel, cost, err
	}
	// Naive nested loop over a materialized inner.
	right, rc, err := e.exec(n.Right)
	if err != nil {
		return nil, 0, err
	}
	lRef, rRef, err := joinKeys(n.JoinCond, left, right)
	if err != nil {
		return nil, 0, err
	}
	lCol, lPos, err := e.keyColumn(left, lRef)
	if err != nil {
		return nil, 0, err
	}
	rCol, rPos, err := e.keyColumn(right, rRef)
	if err != nil {
		return nil, 0, err
	}
	out := &Relation{Tables: append(append([]string{}, left.Tables...), right.Tables...),
		Width: left.Width + right.Width}
	for i := 0; i < left.NumRows(); i++ {
		lRow := left.Row(i)
		lk := lCol[lRow[lPos]]
		for j := 0; j < right.NumRows(); j++ {
			if rCol[right.Row(j)[rPos]] == lk {
				out.Data = append(out.Data, lRow...)
				out.Data = append(out.Data, right.Row(j)...)
				if out.NumRows() > e.MaxRows {
					return nil, 0, ErrTooBig
				}
			}
		}
	}
	c.Comparisons += float64(left.NumRows()) * float64(right.NumRows())
	c.Output += float64(out.NumRows())
	return out, lc + rc, nil
}

// indexNL drives the inner parameterized index scan once per outer tuple.
func (e *Engine) indexNL(n *plan.Node, left *Relation, lc float64, c *Counters) (*Relation, float64, error) {
	inner := n.Right
	innerData := e.DB.Table(inner.Table)
	if innerData == nil {
		return nil, 0, fmt.Errorf("exec: unknown inner table %q", inner.Table)
	}
	pj := inner.ParamJoin
	// Determine outer key column: the side of ParamJoin not on the inner table.
	outerRef, innerRef := pj.Left, pj.Right
	if outerRef.Table == inner.Table {
		outerRef, innerRef = pj.Right, pj.Left
	}
	oCol, oPos, err := e.keyColumn(left, outerRef)
	if err != nil {
		return nil, 0, err
	}
	match, err := sqlpred.Compile(inner.Filter, inner.Table, innerData)
	if err != nil {
		return nil, 0, err
	}
	atoms := float64(sqlpred.CountAtoms(inner.Filter))
	pk := e.DB.Schema.Table(inner.Table).PrimaryKey
	var lookup func(k int64) []int32
	if innerRef.Column == pk {
		lookup = func(k int64) []int32 {
			if r := innerData.PKRow(k); r >= 0 {
				return []int32{int32(r)}
			}
			return nil
		}
	} else {
		m := e.secondary[inner.Table+"."+innerRef.Column]
		if m == nil {
			return nil, 0, fmt.Errorf("exec: no index on %s.%s for index nested loop", inner.Table, innerRef.Column)
		}
		lookup = func(k int64) []int32 { return m[k] }
	}

	logN := math.Log2(float64(innerData.NumRows) + 2)
	out := &Relation{Tables: append(append([]string{}, left.Tables...), inner.Table),
		Width: left.Width + 1}
	var innerC Counters
	innerMatches := 0
	for i := 0; i < left.NumRows(); i++ {
		lRow := left.Row(i)
		k := oCol[lRow[oPos]]
		rows := lookup(k)
		innerC.IndexProbes += logN
		innerC.RandPages += float64(len(rows))
		innerC.Tuples += float64(len(rows))
		innerC.Comparisons += float64(len(rows)) * atoms
		for _, r := range rows {
			if match(int(r)) {
				out.Data = append(out.Data, lRow...)
				out.Data = append(out.Data, r)
				innerMatches++
				if out.NumRows() > e.MaxRows {
					return nil, 0, ErrTooBig
				}
			}
		}
	}
	innerC.Output += float64(innerMatches)
	innerCost := innerC.Cost()
	inner.TrueRows = float64(innerMatches)
	inner.TrueCost = innerCost
	c.Output += float64(out.NumRows())
	return out, lc + innerCost, nil
}

func (e *Engine) sortOp(n *plan.Node, c *Counters) (*Relation, float64, error) {
	in, ic, err := e.exec(n.Left)
	if err != nil {
		return nil, 0, err
	}
	if len(n.SortKeys) == 0 {
		return in, ic, nil
	}
	key := n.SortKeys[0]
	col, pos, err := e.keyColumn(in, plan.ColRef{Table: key.Table, Column: key.Column})
	if err != nil {
		return nil, 0, err
	}
	idx := sortedOrder(in, col, pos)
	out := &Relation{Tables: in.Tables, Width: in.Width, Data: make([]int32, 0, len(in.Data))}
	for _, i := range idx {
		out.Data = append(out.Data, in.Row(i)...)
	}
	nf := float64(in.NumRows())
	c.Comparisons += nf * math.Log2(nf+2)
	c.SortedRows += nf
	c.Output += nf
	return out, ic, nil
}

func (e *Engine) aggregate(n *plan.Node, c *Counters) (*Relation, float64, error) {
	in, ic, err := e.exec(n.Left)
	if err != nil {
		return nil, 0, err
	}
	// Touch every input tuple per aggregate, like a plain Aggregate node.
	c.Tuples += float64(in.NumRows()) * math.Max(1, float64(len(n.Aggs)))
	for _, a := range n.Aggs {
		if a.Func == plan.AggCount || a.Col.Table == "" {
			continue
		}
		pos := in.ColOf(a.Col.Table)
		if pos < 0 {
			return nil, 0, fmt.Errorf("exec: aggregate over absent table %s", a.Col.Table)
		}
		// The aggregate value itself is irrelevant to cost/cardinality
		// training; reading the column keeps the memory access realistic.
		if col := e.DB.Table(a.Col.Table).IntColumn(a.Col.Column); col != nil {
			var acc int64
			for i := 0; i < in.NumRows(); i++ {
				acc += col[in.Row(i)[pos]]
			}
			_ = acc
		} else if scol := e.DB.Table(a.Col.Table).StrColumn(a.Col.Column); scol != nil {
			var acc int
			for i := 0; i < in.NumRows(); i++ {
				acc += len(scol[in.Row(i)[pos]])
			}
			_ = acc
		}
	}
	c.Output++
	return &Relation{scalar: true}, ic, nil
}
