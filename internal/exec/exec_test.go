package exec

import (
	"math/rand"
	"testing"

	"costest/internal/dataset"
	"costest/internal/plan"
	"costest/internal/sqlpred"
)

var (
	testDB  = dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.03})
	testEng = NewEngine(testDB)
)

func yearFilter(op sqlpred.Op, v float64) sqlpred.Pred {
	return &sqlpred.Atom{Table: "title", Column: "production_year", Op: op, NumVal: v}
}

func scan(table string, filter sqlpred.Pred) *plan.Node {
	return &plan.Node{Type: plan.SeqScan, Table: table, Filter: filter}
}

func joinNode(t plan.NodeType, cond plan.JoinCond, l, r *plan.Node) *plan.Node {
	return &plan.Node{Type: t, JoinCond: &cond, Left: l, Right: r}
}

var mcTitleJoin = plan.JoinCond{
	Left:  plan.ColRef{Table: "movie_companies", Column: "movie_id"},
	Right: plan.ColRef{Table: "title", Column: "id"},
}

func TestSeqScanMatchesBruteForce(t *testing.T) {
	f := yearFilter(sqlpred.OpGt, 2000)
	rel, err := testEng.Run(scan("title", f))
	if err != nil {
		t.Fatal(err)
	}
	years := testDB.Table("title").IntColumn("production_year")
	want := 0
	for _, y := range years {
		if y > 2000 {
			want++
		}
	}
	if rel.NumRows() != want {
		t.Fatalf("seq scan rows = %d, want %d", rel.NumRows(), want)
	}
}

func TestSeqScanAnnotations(t *testing.T) {
	n := scan("title", nil)
	rel, err := testEng.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if n.TrueRows != float64(testDB.Table("title").NumRows) {
		t.Fatalf("TrueRows = %g", n.TrueRows)
	}
	if n.TrueCost <= 0 {
		t.Fatalf("TrueCost = %g, want > 0", n.TrueCost)
	}
	if rel.NumRows() != testDB.Table("title").NumRows {
		t.Fatal("full scan must return all rows")
	}
}

func TestIndexScanPKRangeMatchesSeqScan(t *testing.T) {
	cond := &sqlpred.Atom{Table: "title", Column: "id", Op: sqlpred.OpLe, NumVal: 50}
	idx := &plan.Node{Type: plan.IndexScan, Table: "title", Index: "title_pkey", IndexCond: cond}
	rel, err := testEng.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 50 {
		t.Fatalf("index scan rows = %d, want 50", rel.NumRows())
	}
}

func TestIndexScanResidualFilter(t *testing.T) {
	cond := &sqlpred.Atom{Table: "title", Column: "id", Op: sqlpred.OpLe, NumVal: 100}
	idx := &plan.Node{Type: plan.IndexScan, Table: "title", Index: "title_pkey",
		IndexCond: cond, Filter: yearFilter(sqlpred.OpGt, 2005)}
	rel, err := testEng.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	years := testDB.Table("title").IntColumn("production_year")
	want := 0
	for i := 0; i < 100; i++ {
		if years[i] > 2005 {
			want++
		}
	}
	if rel.NumRows() != want {
		t.Fatalf("residual-filtered index scan rows = %d, want %d", rel.NumRows(), want)
	}
}

// All join algorithms must produce identical cardinalities — the executor's
// core correctness oracle.
func TestJoinAlgorithmsAgree(t *testing.T) {
	filters := []sqlpred.Pred{nil, yearFilter(sqlpred.OpGt, 2008)}
	for _, f := range filters {
		var cards []int
		for _, typ := range []plan.NodeType{plan.HashJoin, plan.MergeJoin, plan.NestedLoop} {
			n := joinNode(typ, mcTitleJoin, scan("movie_companies", nil), scan("title", f))
			rel, err := testEng.Run(n)
			if err != nil {
				t.Fatal(err)
			}
			cards = append(cards, rel.NumRows())
		}
		// Index nested loop with parameterized inner.
		inner := &plan.Node{Type: plan.IndexScan, Table: "title", Index: "title_pkey",
			ParamJoin: &mcTitleJoin, Filter: f}
		nl := &plan.Node{Type: plan.NestedLoop, JoinCond: &mcTitleJoin,
			Left: scan("movie_companies", nil), Right: inner}
		rel, err := testEng.Run(nl)
		if err != nil {
			t.Fatal(err)
		}
		cards = append(cards, rel.NumRows())

		for i := 1; i < len(cards); i++ {
			if cards[i] != cards[0] {
				t.Fatalf("join algorithms disagree (filter=%v): %v", f, cards)
			}
		}
		if cards[0] == 0 {
			t.Fatalf("join produced no rows (filter=%v)", f)
		}
	}
}

func TestFKJoinCardinality(t *testing.T) {
	// Unfiltered FK-PK join cardinality equals the fact-table size.
	n := joinNode(plan.HashJoin, mcTitleJoin, scan("movie_companies", nil), scan("title", nil))
	rel, err := testEng.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != testDB.Table("movie_companies").NumRows {
		t.Fatalf("FK join rows = %d, want %d", rel.NumRows(), testDB.Table("movie_companies").NumRows)
	}
}

func TestThreeWayJoin(t *testing.T) {
	miTitle := plan.JoinCond{
		Left:  plan.ColRef{Table: "movie_info_idx", Column: "movie_id"},
		Right: plan.ColRef{Table: "title", Column: "id"},
	}
	lower := joinNode(plan.HashJoin, mcTitleJoin, scan("movie_companies", nil), scan("title", yearFilter(sqlpred.OpGt, 2010)))
	top := joinNode(plan.HashJoin, miTitle, lower, scan("movie_info_idx", nil))
	rel, err := testEng.Run(top)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() == 0 {
		t.Fatal("three-way join empty")
	}
	if len(rel.Tables) != 3 || rel.Width != 3 {
		t.Fatalf("relation shape %v width %d", rel.Tables, rel.Width)
	}
	// Cumulative cost must exceed each child's cost.
	if top.TrueCost <= lower.TrueCost {
		t.Fatalf("cumulative cost %g not greater than child %g", top.TrueCost, lower.TrueCost)
	}
}

func TestAggregateNode(t *testing.T) {
	agg := &plan.Node{Type: plan.Aggregate,
		Aggs: []plan.AggSpec{
			{Func: plan.AggMin, Col: plan.ColRef{Table: "title", Column: "production_year"}},
			{Func: plan.AggCount},
		},
		Left: scan("title", yearFilter(sqlpred.OpGt, 2000)),
	}
	rel, err := testEng.Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 1 {
		t.Fatalf("aggregate rows = %d, want 1", rel.NumRows())
	}
	if agg.TrueRows != 1 {
		t.Fatalf("aggregate TrueRows = %g", agg.TrueRows)
	}
	if agg.CardinalityNode() != agg.Left {
		t.Fatal("CardinalityNode should skip the aggregate")
	}
}

func TestSortNode(t *testing.T) {
	s := &plan.Node{Type: plan.Sort,
		SortKeys: []plan.ColRef{{Table: "title", Column: "production_year"}},
		Left:     scan("title", yearFilter(sqlpred.OpGt, 2012)),
	}
	rel, err := testEng.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != int(s.Left.TrueRows) {
		t.Fatal("sort must preserve cardinality")
	}
	years := testDB.Table("title").IntColumn("production_year")
	for i := 1; i < rel.NumRows(); i++ {
		if years[rel.Row(i)[0]] < years[rel.Row(i - 1)[0]] {
			t.Fatal("sort output not ordered")
		}
	}
}

func TestMaxRowsGuard(t *testing.T) {
	small := NewEngine(testDB)
	small.MaxRows = 10
	n := joinNode(plan.HashJoin, mcTitleJoin, scan("movie_companies", nil), scan("title", nil))
	if _, err := small.Run(n); err != ErrTooBig {
		t.Fatalf("err = %v, want ErrTooBig", err)
	}
}

func TestFilterMonotonicity(t *testing.T) {
	loose := scan("title", yearFilter(sqlpred.OpGt, 1990))
	tight := scan("title", sqlpred.AndAll(yearFilter(sqlpred.OpGt, 1990), yearFilter(sqlpred.OpLt, 2000)))
	rl, err := testEng.Run(loose)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := testEng.Run(tight)
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumRows() > rl.NumRows() {
		t.Fatal("AND-tightened filter produced more rows")
	}
}

// Join cardinality with a random PK filter must equal the brute-force count:
// a randomized oracle over the hash-join path.
func TestHashJoinOracleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mc := testDB.Table("movie_companies")
	title := testDB.Table("title")
	years := title.IntColumn("production_year")
	movieIDs := mc.IntColumn("movie_id")
	for trial := 0; trial < 5; trial++ {
		y := float64(1990 + rng.Intn(25))
		n := joinNode(plan.HashJoin, mcTitleJoin,
			scan("movie_companies", nil), scan("title", yearFilter(sqlpred.OpGt, y)))
		rel, err := testEng.Run(n)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, m := range movieIDs {
			if years[title.PKRow(m)] > int64(y) {
				want++
			}
		}
		if rel.NumRows() != want {
			t.Fatalf("trial %d: join rows = %d, want %d", trial, rel.NumRows(), want)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := testEng.Run(scan("nope", nil)); err == nil {
		t.Error("unknown table must error")
	}
	if _, err := testEng.Run(&plan.Node{Type: plan.IndexScan, Table: "title"}); err == nil {
		t.Error("index scan without condition must error")
	}
	bad := &plan.Node{Type: plan.IndexScan, Table: "title",
		ParamJoin: &mcTitleJoin}
	if _, err := testEng.Run(bad); err == nil {
		t.Error("orphan parameterized scan must error")
	}
}

func TestHasIndex(t *testing.T) {
	if !testEng.HasIndex("title", "id") {
		t.Error("PK index missing")
	}
	if !testEng.HasIndex("movie_companies", "movie_id") {
		t.Error("secondary FK index missing")
	}
	if testEng.HasIndex("title", "production_year") {
		t.Error("unexpected index on production_year")
	}
}

func TestCountersCost(t *testing.T) {
	var c Counters
	base := c.Cost()
	c.SeqPages = 100
	if c.Cost() <= base {
		t.Error("cost must grow with work")
	}
}

func TestPlanHelpers(t *testing.T) {
	n := joinNode(plan.HashJoin, mcTitleJoin, scan("movie_companies", nil), scan("title", nil))
	if got := n.Count(); got != 3 {
		t.Errorf("Count = %d", got)
	}
	if got := n.Depth(); got != 2 {
		t.Errorf("Depth = %d", got)
	}
	tabs := n.Tables()
	if len(tabs) != 2 || tabs[0] != "movie_companies" || tabs[1] != "title" {
		t.Errorf("Tables = %v", tabs)
	}
	sig1 := n.Signature()
	n2 := joinNode(plan.HashJoin, mcTitleJoin, scan("title", nil), scan("movie_companies", nil))
	if sig1 == n2.Signature() {
		t.Error("different plans share a signature")
	}
	c := n.Clone()
	if c.Signature() != sig1 {
		t.Error("clone signature differs")
	}
	if c.Left == n.Left {
		t.Error("clone must deep-copy children")
	}
}

// The cache-spill nonlinearity: doubling hash-build rows beyond the cache
// threshold must more than double the hash join's own cost — the effect a
// linear cost model cannot express.
func TestCostNonlinearity(t *testing.T) {
	small := Counters{HashBuild: 2048, HashProbe: 2048}
	big := Counters{HashBuild: 16384, HashProbe: 16384}
	huge := Counters{HashBuild: 65536, HashProbe: 65536}
	rSmall := small.Cost() - (Counters{}).Cost()
	rBig := big.Cost() - (Counters{}).Cost()
	rHuge := huge.Cost() - (Counters{}).Cost()
	// Per-row cost must increase with scale once past the cache threshold.
	if rBig/16384 <= rSmall/2048 {
		t.Errorf("per-row cost did not increase past cache: %g vs %g", rBig/16384, rSmall/2048)
	}
	if rHuge/65536 <= rBig/16384*0.99 {
		t.Errorf("per-row cost should keep growing: %g vs %g", rHuge/65536, rBig/16384)
	}
	// Sort spill grows superlinearly too.
	s1 := Counters{SortedRows: 8192}.Cost()
	s2 := Counters{SortedRows: 32768}.Cost()
	if s2 <= 4*(s1-(Counters{}).Cost())+(Counters{}).Cost() {
		t.Log("sort spill mild at these sizes (acceptable)")
	}
}
