package core

import (
	"costest/internal/feature"
	"costest/internal/nn"
	"costest/internal/tensor"
)

// headGrad carries per-node loss gradients w.r.t. the sigmoid head outputs.
type headGrad struct {
	dCostS, dCardS float64
}

// backwardPlan backpropagates head gradients through the whole tree,
// accumulating parameter gradients into m.PS. st must hold the forward
// states of ep (a prior forwardTrain on the same session); all scratch comes
// from the session's gradient arena, so steady-state passes allocate
// nothing.
func (m *Model) backwardPlan(ep *feature.EncodedPlan, st *InferenceSession, hg []headGrad) {
	st.grads.reset()
	dG := st.grads.take(m.Cfg.Hidden)
	dR := st.grads.take(m.Cfg.Hidden)
	m.backwardNode(ep, ep.Root, st, hg, dG, dR)
}

// backwardNode handles one node: estimation heads, representation unit,
// embedding layer, then recursion into children. dG/dR are the upstream
// gradients w.r.t. this node's outputs (owned by the caller).
func (m *Model) backwardNode(ep *feature.EncodedPlan, idx int, st *InferenceSession, hg []headGrad, dG, dR []float64) {
	node := &ep.Nodes[idx]
	ns := &st.nodes[idx]
	ar := &st.grads

	// Estimation heads contribute into dR.
	if hg != nil && (hg[idx].dCostS != 0 || hg[idx].dCardS != 0) {
		m.backwardHeads(ns, hg[idx], dR, ar)
	}

	var dE []float64
	var dGl, dRl, dGr, dRr []float64
	if node.Left >= 0 {
		dGl = ar.take(m.Cfg.Hidden)
		dRl = ar.take(m.Cfg.Hidden)
	}
	if node.Right >= 0 {
		dGr = ar.take(m.Cfg.Hidden)
		dRr = ar.take(m.Cfg.Hidden)
	}

	switch m.Cfg.Rep {
	case RepLSTM:
		dE = ar.take(m.embedDim())
		m.repCell.backward(ar, ns.cell, dG, dR, dE, dGl, dRl, dGr, dRr)
	case RepNN:
		// R = ReLU(W·[E, Rl, Rr] + b).
		d := ar.take(m.Cfg.Hidden)
		copy(d, dR)
		nn.ReLUBackwardInPlace(d, ns.r)
		dz := ar.take(len(ns.nnZ))
		m.repNN.Backward(dz, d, ns.nnZ)
		dE = dz[:m.embedDim()]
		if dRl != nil {
			tensor.AddTo(dRl, dz[m.embedDim():m.embedDim()+m.Cfg.Hidden])
		}
		if dRr != nil {
			tensor.AddTo(dRr, dz[m.embedDim()+m.Cfg.Hidden:])
		}
	}

	m.backwardEmbed(node, ns, dE, ar)

	if node.Left >= 0 {
		m.backwardNode(ep, node.Left, st, hg, dGl, dRl)
	}
	if node.Right >= 0 {
		m.backwardNode(ep, node.Right, st, hg, dGr, dRr)
	}
}

// backwardHeads backpropagates the two estimation heads, adding the trunk
// gradient into dR.
func (m *Model) backwardHeads(ns *nodeState, hg headGrad, dR []float64, ar *f64Arena) {
	tmp := ar.take(m.Cfg.EstHidden)
	rGrad := ar.take(m.Cfg.Hidden)
	one := ar.take(1)
	if hg.dCostS != 0 {
		one[0] = hg.dCostS * ns.costS * (1 - ns.costS)
		m.costO.Backward(tmp, one, ns.costHOut)
		nn.ReLUBackwardInPlace(tmp, ns.costHOut)
		m.costH.Backward(rGrad, tmp, ns.r)
		tensor.AddTo(dR, rGrad)
	}
	if hg.dCardS != 0 {
		one[0] = hg.dCardS * ns.cardS * (1 - ns.cardS)
		m.cardO.Backward(tmp, one, ns.cardHOut)
		nn.ReLUBackwardInPlace(tmp, ns.cardHOut)
		m.cardH.Backward(rGrad, tmp, ns.r)
		tensor.AddTo(dR, rGrad)
	}
}

// backwardEmbed splits dE into the feature segments and backpropagates each
// embedding sublayer.
func (m *Model) backwardEmbed(node *feature.EncodedNode, ns *nodeState, dE []float64, ar *f64Arena) {
	off := 0
	dOp := dE[off : off+m.eOp]
	off += m.eOp
	dMeta := dE[off : off+m.eMeta]
	off += m.eMeta
	var dBm []float64
	if m.bmL != nil {
		dBm = dE[off : off+m.eBm]
		off += m.eBm
	}
	dPred := dE[off : off+m.ePred]

	// One-hot and bitmap inputs are sparse: accumulate weight gradients
	// column-wise over the set bits only (mirrors the sparse forward).
	nn.ReLUBackwardInPlace(dOp, ns.opOut)
	sparseLinearBackward(m.opL, dOp, node.Op)

	nn.ReLUBackwardInPlace(dMeta, ns.metaOut)
	sparseLinearBackward(m.metaL, dMeta, node.Meta)

	if m.bmL != nil {
		nn.ReLUBackwardInPlace(dBm, ns.bmOut)
		if node.Bitmap != nil {
			sparseLinearBackward(m.bmL, dBm, node.Bitmap)
		} else {
			tensor.AddTo(m.bmL.B.GradVec(), dBm)
		}
	}

	if !node.Pred.Empty() {
		m.backwardPred(&node.Pred, 0, ns, dPred, ar)
	}
}

// backwardPred backpropagates the predicate embedding for the subtree at
// pidx with upstream gradient d (not owned; treated read-only for pooling
// routing, consumed for the LSTM variant).
func (m *Model) backwardPred(ep *feature.EncodedPred, pidx int, ns *nodeState, d []float64, ar *f64Arena) {
	pn := &ep.Nodes[pidx]
	switch m.Cfg.Pred {
	case PredPool, PredPoolMean:
		if pn.IsLeaf {
			// Linear leaf: gradient goes straight to W_p, b_p.
			m.predLeaf.Backward(nil, d, pn.Vec)
			return
		}
		l := ns.pred[pn.Left].out
		r := ns.pred[pn.Right].out
		dl := ar.take(m.ePred)
		dr := ar.take(m.ePred)
		if m.Cfg.Pred == PredPoolMean {
			// Mean pooling splits the gradient evenly.
			for i := range d {
				dl[i] = d[i] / 2
				dr[i] = d[i] / 2
			}
		} else {
			// Min/max pooling routes each gradient component to the winning
			// child (ties go left).
			for i := range d {
				takeLeft := l[i] <= r[i]
				if pn.Bool != 0 { // OR → max pooling
					takeLeft = l[i] >= r[i]
				}
				if takeLeft {
					dl[i] = d[i]
				} else {
					dr[i] = d[i]
				}
			}
		}
		m.backwardPred(ep, pn.Left, ns, dl, ar)
		m.backwardPred(ep, pn.Right, ns, dr, ar)
	default: // PredLSTM
		dG := ar.take(m.ePred)
		dR := ar.take(m.ePred)
		copy(dR, d)
		m.backwardPredCell(ep, pidx, ns, dG, dR, ar)
	}
}

// backwardPredCell recursively backpropagates the predicate tree-LSTM.
func (m *Model) backwardPredCell(ep *feature.EncodedPred, pidx int, ns *nodeState, dG, dR []float64, ar *f64Arena) {
	pn := &ep.Nodes[pidx]
	ps := ns.pred[pidx]
	var dGl, dRl, dGr, dRr []float64
	if pn.Left >= 0 {
		dGl = ar.take(m.ePred)
		dRl = ar.take(m.ePred)
	}
	if pn.Right >= 0 {
		dGr = ar.take(m.ePred)
		dRr = ar.take(m.ePred)
	}
	// Input features are data, not parameters: dx = nil.
	m.predCell.backward(ar, ps.cell, dG, dR, nil, dGl, dRl, dGr, dRr)
	if pn.Left >= 0 {
		m.backwardPredCell(ep, pn.Left, ns, dGl, dRl, ar)
	}
	if pn.Right >= 0 {
		m.backwardPredCell(ep, pn.Right, ns, dGr, dRr, ar)
	}
}
