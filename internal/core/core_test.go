package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/feature"
	"costest/internal/pg"
	"costest/internal/planner"
	"costest/internal/stats"
	"costest/internal/strembed"
	"costest/internal/workload"
)

var (
	testDB  = dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.02})
	testCat = stats.Collect(testDB, stats.Options{Buckets: 30, SampleSize: 48, Seed: 1})
	testEng = exec.NewEngine(testDB)
	testPl  = planner.New(pg.New(testCat), testDB.Schema)
	testEnc = feature.NewEncoder(testCat, strembed.HashEmbedder{DimN: 12}, true)
)

// labeledPlans builds a small encoded training corpus, cached per test run.
func labeledPlans(t testing.TB, seed int64, n int, strings bool) []*feature.EncodedPlan {
	t.Helper()
	var queries = workload.TrainingNumeric(testDB, seed, n)
	if strings {
		queries = workload.TrainingStrings(testDB, seed, n)
	}
	lab := &workload.Labeler{Planner: testPl, Engine: testEng}
	samples := lab.Label(queries)
	eps := make([]*feature.EncodedPlan, 0, len(samples))
	for _, s := range samples {
		ep, err := testEnc.Encode(s.Plan)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		eps = append(eps, ep)
	}
	if len(eps) < n/2 {
		t.Fatalf("only %d/%d samples labeled", len(eps), n)
	}
	return eps
}

func TestModelForwardShapes(t *testing.T) {
	eps := labeledPlans(t, 101, 8, false)
	for _, cfgMod := range []func(*Config){
		func(c *Config) {},
		func(c *Config) { c.Pred = PredLSTM },
		func(c *Config) { c.Rep = RepNN },
	} {
		cfg := TestConfig()
		cfgMod(&cfg)
		m := New(cfg, testEnc)
		for _, ep := range eps {
			cost, card := m.Estimate(ep)
			if math.IsNaN(cost) || math.IsNaN(card) || cost <= 0 || card <= 0 {
				t.Fatalf("cfg %v/%v: estimate (%g, %g)", cfg.Pred, cfg.Rep, cost, card)
			}
		}
	}
}

// Full-model gradient check: analytic gradients of the root head outputs
// must match central finite differences, for every architecture variant.
func TestModelGradCheck(t *testing.T) {
	eps := labeledPlans(t, 202, 6, true)
	ep := eps[0]
	for _, variant := range []struct {
		name string
		mod  func(*Config)
	}{
		{"pool+lstm", func(c *Config) {}},
		{"lstmpred+lstm", func(c *Config) { c.Pred = PredLSTM }},
		{"pool+nn", func(c *Config) { c.Rep = RepNN }},
	} {
		cfg := TestConfig()
		cfg.SubplanLoss = false
		variant.mod(&cfg)
		m := New(cfg, testEnc)
		// Jitter every parameter (biases init at 0) so no ReLU sits exactly
		// at its kink, where finite differences and subgradients disagree.
		jitter := rand.New(rand.NewSource(99))
		for _, p := range m.PS.Params() {
			for i := range p.Value {
				p.Value[i] += (jitter.Float64() - 0.5) * 0.02
			}
		}

		objective := func() float64 {
			st := m.forwardTrain(ep)
			root := st.nodes[ep.Root]
			card := st.nodes[ep.CardNode]
			return 2*root.costS + 3*card.cardS
		}
		// Analytic gradients.
		m.PS.ZeroGrad()
		st := m.forwardTrain(ep)
		hg := make([]headGrad, len(ep.Nodes))
		hg[ep.Root].dCostS = 2
		hg[ep.CardNode].dCardS = 3
		m.backwardPlan(ep, st, hg)

		// Compare on a deterministic subset of parameters.
		checked, failures := 0, 0
		for _, p := range m.PS.Params() {
			stride := len(p.Value)/7 + 1
			for i := 0; i < len(p.Value); i += stride {
				orig := p.Value[i]
				const h = 1e-6
				p.Value[i] = orig + h
				up := objective()
				p.Value[i] = orig - h
				down := objective()
				p.Value[i] = orig
				want := (up - down) / (2 * h)
				got := p.Grad[i]
				if math.Abs(got-want) > 1e-4*math.Max(1, math.Abs(want)) {
					failures++
					if failures < 4 {
						t.Logf("%s: %s[%d] grad %g, want %g", variant.name, p.Name, i, got, want)
					}
				}
				checked++
			}
		}
		if failures > checked/50 {
			t.Fatalf("%s: %d/%d gradient checks failed", variant.name, failures, checked)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	eps := labeledPlans(t, 303, 60, false)
	train, valid := eps[:len(eps)*8/10], eps[len(eps)*8/10:]
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	hist := tr.Fit(train, valid, 12, 16, nil)
	first, last := hist[0], hist[len(hist)-1]
	if last.TrainLoss >= first.TrainLoss {
		t.Fatalf("training loss did not decrease: %g -> %g", first.TrainLoss, last.TrainLoss)
	}
	if last.ValidCard > first.ValidCard*1.5 {
		t.Fatalf("validation card error diverged: %g -> %g", first.ValidCard, last.ValidCard)
	}
}

func TestOverfitTinySet(t *testing.T) {
	eps := labeledPlans(t, 404, 10, false)[:6]
	cfg := TestConfig()
	cfg.LearnRate = 0.01
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	for e := 0; e < 150; e++ {
		tr.TrainEpoch(eps, 6)
	}
	costQ, cardQ := m.ValidationError(eps)
	if cardQ > 4 {
		t.Errorf("failed to overfit 6 samples: card q-error %g", cardQ)
	}
	if costQ > 4 {
		t.Errorf("failed to overfit 6 samples: cost q-error %g", costQ)
	}
}

func TestBatchMatchesSequential(t *testing.T) {
	eps := labeledPlans(t, 505, 20, true)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	batch := m.EstimateBatch(eps, 4)
	for i, ep := range eps {
		cost, card := m.Estimate(ep)
		if math.Abs(batch[i].Cost-cost) > 1e-9*math.Max(1, cost) ||
			math.Abs(batch[i].Card-card) > 1e-9*math.Max(1, card) {
			t.Fatalf("batch[%d] = (%g,%g), sequential = (%g,%g)",
				i, batch[i].Cost, batch[i].Card, cost, card)
		}
	}
	// RepNN path too.
	cfg2 := TestConfig()
	cfg2.Rep = RepNN
	m2 := New(cfg2, testEnc)
	batch2 := m2.EstimateBatch(eps, 3)
	for i, ep := range eps {
		cost, card := m2.Estimate(ep)
		if math.Abs(batch2[i].Cost-cost) > 1e-9*math.Max(1, cost) {
			t.Fatalf("RepNN batch mismatch at %d", i)
		}
		_ = card
	}
	// Tree-LSTM predicate path (batched predicate cell GEMMs).
	cfg3 := TestConfig()
	cfg3.Pred = PredLSTM
	m3 := New(cfg3, testEnc)
	batch3 := m3.EstimateBatch(eps, 2)
	for i, ep := range eps {
		cost, card := m3.Estimate(ep)
		if math.Abs(batch3[i].Cost-cost) > 1e-9*math.Max(1, cost) ||
			math.Abs(batch3[i].Card-card) > 1e-9*math.Max(1, card) {
			t.Fatalf("PredLSTM batch mismatch at %d: (%g,%g) vs (%g,%g)",
				i, batch3[i].Cost, batch3[i].Card, cost, card)
		}
	}
	// Mean-pooling ablation variant.
	cfg4 := TestConfig()
	cfg4.Pred = PredPoolMean
	m4 := New(cfg4, testEnc)
	batch4 := m4.EstimateBatch(eps, 2)
	for i, ep := range eps {
		cost, _ := m4.Estimate(ep)
		if math.Abs(batch4[i].Cost-cost) > 1e-9*math.Max(1, cost) {
			t.Fatalf("PredPoolMean batch mismatch at %d", i)
		}
	}
}

func TestMemoryPool(t *testing.T) {
	eps := labeledPlans(t, 606, 10, false)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	pool := NewMemoryPool()

	cost1, card1 := m.EstimateWithPool(eps[0], pool)
	if pool.Len() == 0 {
		t.Fatal("pool empty after first estimate")
	}
	// Second evaluation of the same plan must hit the pool and agree.
	cost2, card2 := m.EstimateWithPool(eps[0], pool)
	if cost1 != cost2 || card1 != card2 {
		t.Fatalf("pooled estimate differs: (%g,%g) vs (%g,%g)", cost1, card1, cost2, card2)
	}
	if pool.HitRate() == 0 {
		t.Fatal("no pool hits on repeated plan")
	}
	// Pooled estimates must equal non-pooled ones.
	for _, ep := range eps {
		c1, d1 := m.Estimate(ep)
		c2, d2 := m.EstimateWithPool(ep, pool)
		if math.Abs(c1-c2) > 1e-9*math.Max(1, c1) || math.Abs(d1-d2) > 1e-9*math.Max(1, d1) {
			t.Fatalf("pool changed estimate: (%g,%g) vs (%g,%g)", c1, d1, c2, d2)
		}
	}
	pool.Reset()
	if pool.Len() != 0 || pool.HitRate() != 0 {
		t.Fatal("reset did not clear pool")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	eps := labeledPlans(t, 707, 6, false)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	tr.TrainEpoch(eps, 4)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(cfg, testEnc)
	m2.CostNorm, m2.CardNorm = m.CostNorm, m.CardNorm
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		c1, d1 := m.Estimate(ep)
		c2, d2 := m2.Estimate(ep)
		if c1 != c2 || d1 != d2 {
			t.Fatal("loaded model disagrees with original")
		}
	}
}

func TestSingleTaskTargets(t *testing.T) {
	eps := labeledPlans(t, 808, 20, false)
	for _, target := range []Target{TargetCost, TargetCard} {
		cfg := TestConfig()
		cfg.Target = target
		m := New(cfg, testEnc)
		tr := NewTrainer(m)
		hist := tr.Fit(eps[:15], eps[15:], 6, 8, nil)
		if hist[len(hist)-1].TrainLoss >= hist[0].TrainLoss {
			t.Errorf("target %v: loss did not decrease", target)
		}
	}
}

func TestPredVariantsDiffer(t *testing.T) {
	eps := labeledPlans(t, 909, 6, true)
	cfgA := TestConfig()
	cfgB := TestConfig()
	cfgB.Pred = PredLSTM
	a, b := New(cfgA, testEnc), New(cfgB, testEnc)
	ca, _ := a.Estimate(eps[0])
	cb, _ := b.Estimate(eps[0])
	if ca == cb {
		t.Fatal("pool and LSTM predicate variants produced identical output (suspicious wiring)")
	}
	if a.NumParams() <= 0 || b.NumParams() <= 0 {
		t.Fatal("no parameters registered")
	}
	// The pooling variant should be smaller: pooling has no internal-node
	// parameters (the paper's efficiency argument in Table 12).
	if a.NumParams() >= b.NumParams() {
		t.Errorf("pool params %d >= lstm params %d", a.NumParams(), b.NumParams())
	}
}

func TestEpochStatsHistory(t *testing.T) {
	eps := labeledPlans(t, 1010, 12, false)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	var calls int
	hist := tr.Fit(eps[:9], eps[9:], 3, 4, func(EpochStats) { calls++ })
	if len(hist) != 3 || calls != 3 {
		t.Fatalf("history %d entries, %d callbacks", len(hist), calls)
	}
	for i, h := range hist {
		if h.Epoch != i {
			t.Fatal("epoch numbering wrong")
		}
	}
}
