package core

import (
	"fmt"
	"strings"
	"testing"
)

// fillPool inserts n distinct signatures (probing first, so misses are
// counted like a serving workload would produce them).
func fillPool(p *MemoryPool, prefix string, n int) {
	g := []float64{1, 2}
	r := []float64{3, 4}
	for i := 0; i < n; i++ {
		sig := fmt.Sprintf("%s-%d", prefix, i)
		p.Get(sig)
		p.Put(sig, g, r)
	}
}

// TestSetBoundShrinkGrowUnbound drives the live-rebound lifecycle: an
// unbounded pool is bounded (ring built over resident entries, eager shrink
// to the bound), the bound holds under further inserts, unbounding allows
// growth again, and re-bounding shrinks back.
func TestSetBoundShrinkGrowUnbound(t *testing.T) {
	p := NewMemoryPool()
	fillPool(p, "a", 200)
	if p.Len() != 200 {
		t.Fatalf("unbounded pool holds %d entries, want 200", p.Len())
	}

	p.SetBound(64)
	if got := p.Bound(); got != 64 {
		t.Fatalf("Bound() = %d, want 64", got)
	}
	if got := p.Len(); got > 64 {
		t.Fatalf("after SetBound(64): %d entries resident, want <= 64", got)
	}
	fillPool(p, "b", 200)
	if got := p.Len(); got > 64 {
		t.Fatalf("bound not enforced on inserts after SetBound: %d entries", got)
	}
	// Fresh inserts must still be immediately retrievable (ring slots are
	// reused, not leaked).
	g := []float64{5}
	r := []float64{6}
	p.Put("fresh", g, r)
	if _, _, ok := p.Get("fresh"); !ok {
		t.Fatal("entry inserted after rebound is not retrievable")
	}

	p.SetBound(0)
	fillPool(p, "c", 200)
	if got := p.Len(); got <= 64 {
		t.Fatalf("pool did not grow after SetBound(0): %d entries", got)
	}

	p.SetBound(32)
	if got := p.Len(); got > 32 {
		t.Fatalf("re-bounding did not shrink: %d entries, want <= 32", got)
	}
}

// TestSetBoundShrinkKeepsReferencedEntries checks the shrink path honors the
// clock policy's second chance: when a bounded pool is shrunk, recently
// referenced entries should survive preferentially over never-referenced
// ones (the same guarantee eviction-on-insert gives).
func TestSetBoundShrinkKeepsReferencedEntries(t *testing.T) {
	p := NewBoundedMemoryPool(128)
	fillPool(p, "x", 128)
	// Reference half the entries; the sweep must prefer evicting the rest.
	hot := 0
	for i := 0; i < 128; i += 2 {
		if _, _, ok := p.Get(fmt.Sprintf("x-%d", i)); ok {
			hot++
		}
	}
	p.SetBound(64)
	surviving := 0
	for i := 0; i < 128; i += 2 {
		if _, _, ok := p.Get(fmt.Sprintf("x-%d", i)); ok {
			surviving++
		}
	}
	if surviving*2 < hot {
		t.Fatalf("shrink evicted referenced entries wholesale: %d/%d hot entries survive", surviving, hot)
	}
}

// TestPoolAdvise walks the sizing heuristics through their regimes: idle,
// unbounded, thrashing, oversized, and mid-generation-turnover.
func TestPoolAdvise(t *testing.T) {
	// Idle: no lookups since the last window → keep.
	p := NewBoundedMemoryPool(64)
	if a := p.Advise(); a.Recommended != a.Bound {
		t.Fatalf("idle advice recommended %d, want bound %d", a.Recommended, a.Bound)
	}

	// Unbounded: recommend a bound covering the resident set with headroom.
	u := NewMemoryPool()
	fillPool(u, "u", 100)
	if a := u.Advise(); a.Bound != 0 || a.Recommended < 100 || a.Recommended > 200 {
		t.Fatalf("unbounded advice = %+v, want recommended in [100,200]", a)
	}

	// Thrashing: distinct signatures stream through a full pool, hit rate
	// collapses → grow.
	th := NewBoundedMemoryPool(32)
	fillPool(th, "t", 500)
	a := th.Advise()
	if a.HitRate >= 0.5 || a.Recommended <= a.Bound {
		t.Fatalf("thrash advice = %+v, want low hit rate and a larger bound", a)
	}

	// Oversized: a small hot set served from a big bound → shrink.
	ov := NewBoundedMemoryPool(1024)
	fillPool(ov, "o", 10)
	for k := 0; k < 20; k++ {
		for i := 0; i < 10; i++ {
			ov.Get(fmt.Sprintf("o-%d", i))
		}
	}
	a = ov.Advise()
	if a.HitRate <= 0.9 || a.Recommended >= a.Bound {
		t.Fatalf("oversize advice = %+v, want high hit rate and a smaller bound", a)
	}

	// Generation turnover: stale lookups double-book capacity → transient
	// headroom above the current bound.
	gen := NewBoundedMemoryPool(64)
	g := []float64{1}
	r := []float64{2}
	for i := 0; i < 32; i++ {
		gen.PutGen(fmt.Sprintf("g-%d", i), g, r, 1)
	}
	gen.Advise() // close the fill window
	gen.SetGeneration(2)
	for i := 0; i < 32; i++ {
		gen.GetGen(fmt.Sprintf("g-%d", i), 2)
	}
	a = gen.Advise()
	if a.StaleRate <= 0.1 || a.Recommended <= a.Bound {
		t.Fatalf("turnover advice = %+v, want stale-driven headroom above bound", a)
	}
	if !strings.Contains(a.Reason, "turnover") {
		t.Fatalf("turnover advice reason = %q", a.Reason)
	}

	// The window resets per call: immediately advising again sees no
	// traffic and keeps the bound.
	if a = gen.Advise(); a.Recommended != a.Bound {
		t.Fatalf("post-window advice = %+v, want keep", a)
	}
}
