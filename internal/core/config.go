// Package core implements the paper's primary contribution: the
// tree-structured learning model for end-to-end cost and cardinality
// estimation (Section 4). The model has three layers — an embedding layer
// condensing node features (with min-max pooling or tree-LSTM predicate
// embedding), a representation layer whose LSTM-style cell mirrors the plan
// tree, and a multitask estimation layer predicting normalized cost and
// cardinality — trained with the q-error loss of Section 4.3. It also
// provides level-wise batched inference and the Representation Memory Pool
// of Section 3.
//
// Three runtime layers wrap the model for production serving: reusable
// zero-allocation forward arenas (InferenceSession), the batched
// serving/training runtime (BatchSession, Trainer.TrainEpochBatched), and
// the hot-swap serving runtime (Server, ModelSnapshot, Trainer.Publish) —
// atomic weight publication with generation-tagged pool invalidation, so a
// long-lived service retrains in place while concurrent requests keep
// serving immutable snapshots. See ARCHITECTURE.md and PERFORMANCE.md at
// the repository root.
package core

// PredModel selects the predicate embedding model (Section 4.2.1).
type PredModel int

// Predicate embedding variants: min-max pooling (AND→min, OR→max), a
// tree-LSTM over the predicate tree, or mean pooling for both connectives
// (an ablation showing the semantic pooling choice matters — mean pooling
// discards the AND/OR distinction).
const (
	PredPool PredModel = iota
	PredLSTM
	PredPoolMean
)

func (p PredModel) String() string {
	switch p {
	case PredPool:
		return "Pool"
	case PredLSTM:
		return "LSTM"
	default:
		return "MeanPool"
	}
}

// RepModel selects the representation-layer unit (Section 4.2.2).
type RepModel int

// Representation variants: the paper's LSTM-style cell or the naive fully
// connected network (the TNN ablation).
const (
	RepLSTM RepModel = iota
	RepNN
)

func (r RepModel) String() string {
	if r == RepLSTM {
		return "LSTM"
	}
	return "NN"
}

// Target selects what a single-task model trains on; multitask models train
// both heads jointly.
type Target int

// Training targets.
const (
	TargetBoth Target = iota // multitask (cost + cardinality)
	TargetCost
	TargetCard
)

// Config holds model hyperparameters.
type Config struct {
	// Embedding output widths per feature family.
	OpEmbed     int
	MetaEmbed   int
	BitmapEmbed int
	PredEmbed   int
	// Hidden is the representation dimension of G and R.
	Hidden int
	// EstHidden is the estimation layer's hidden width.
	EstHidden int

	Pred PredModel
	Rep  RepModel
	// Target selects multitask vs single-task training (Table 6's
	// SING/MULT column).
	Target Target
	// LossWeight is ω, the cost-loss weight in the multitask loss.
	LossWeight float64
	// LearnRate for Adam (the paper uses 0.001).
	LearnRate float64
	// GradClip bounds the global gradient norm per batch.
	GradClip float64
	// UseQError selects the paper's q-error loss; false uses MSLE (the
	// loss-function ablation).
	UseQError bool
	// SubplanLoss adds supervision at every plan node, not only the root;
	// the estimation layer must evaluate any sub-plan (Section 4.2.3), and
	// per-node supervision trains exactly that.
	SubplanLoss bool
	Seed        int64
}

// DefaultConfig returns full-size hyperparameters.
func DefaultConfig() Config {
	return Config{
		OpEmbed:     16,
		MetaEmbed:   32,
		BitmapEmbed: 32,
		PredEmbed:   32,
		Hidden:      64,
		EstHidden:   32,
		Pred:        PredPool,
		Rep:         RepLSTM,
		Target:      TargetBoth,
		LossWeight:  1.0,
		LearnRate:   0.001,
		GradClip:    5.0,
		UseQError:   true,
		SubplanLoss: true,
		Seed:        1,
	}
}

// TestConfig returns small dimensions for unit tests and benches.
func TestConfig() Config {
	c := DefaultConfig()
	c.OpEmbed, c.MetaEmbed, c.BitmapEmbed, c.PredEmbed = 8, 8, 8, 8
	c.Hidden, c.EstHidden = 16, 8
	c.LearnRate = 0.005
	return c
}

// embedDim is the concatenated embedding width E.
func (c Config) embedDim() int {
	return c.OpEmbed + c.MetaEmbed + c.BitmapEmbed + c.PredEmbed
}
