package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"costest/internal/feature"
)

// benchCorpus builds a small deterministic corpus for the forward-path
// benchmarks (string predicates exercise every embedding segment).
func benchCorpus(tb testing.TB, n int) []*feature.EncodedPlan {
	tb.Helper()
	return labeledPlans(tb, 4242, n, true)
}

// sessionVariants enumerates the architecture variants the session runtime
// must serve.
var sessionVariants = []struct {
	name string
	mod  func(*Config)
}{
	{"pool", func(c *Config) {}},
	{"predlstm", func(c *Config) { c.Pred = PredLSTM }},
	{"repnn", func(c *Config) { c.Rep = RepNN }},
	{"meanpool", func(c *Config) { c.Pred = PredPoolMean }},
}

// TestSessionReuseMatchesFresh drives one session across many plans in both
// directions and checks every estimate is bit-identical to a fresh session's
// — any stale buffer state leaking between calls would show up here.
func TestSessionReuseMatchesFresh(t *testing.T) {
	eps := benchCorpus(t, 16)
	for _, variant := range sessionVariants {
		cfg := TestConfig()
		variant.mod(&cfg)
		m := New(cfg, testEnc)
		sess := NewSession(m)
		check := func(ep *feature.EncodedPlan) {
			c1, d1 := sess.Estimate(ep)
			c2, d2 := NewSession(m).Estimate(ep)
			if c1 != c2 || d1 != d2 {
				t.Fatalf("%s: reused session (%g,%g) != fresh session (%g,%g)",
					variant.name, c1, d1, c2, d2)
			}
		}
		for _, ep := range eps {
			check(ep)
		}
		for i := len(eps) - 1; i >= 0; i-- {
			check(eps[i])
		}
	}
}

// TestEstimateZeroAlloc asserts the tentpole property: after warm-up, the
// per-plan forward path performs zero heap allocations, both through an
// explicit session and through the Model.Estimate convenience API.
func TestEstimateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	eps := benchCorpus(t, 8)
	for _, variant := range sessionVariants {
		cfg := TestConfig()
		variant.mod(&cfg)
		m := New(cfg, testEnc)
		sess := NewSession(m)
		for _, ep := range eps {
			sess.Estimate(ep) // warm-up sizes every buffer
		}
		var i int
		allocs := testing.AllocsPerRun(200, func() {
			sess.Estimate(eps[i%len(eps)])
			i++
		})
		if allocs != 0 {
			t.Errorf("%s: session Estimate allocates %.1f objects/op, want 0", variant.name, allocs)
		}
		for _, ep := range eps {
			m.Estimate(ep)
		}
		allocs = testing.AllocsPerRun(200, func() {
			m.Estimate(eps[i%len(eps)])
			i++
		})
		if allocs != 0 {
			t.Errorf("%s: Model.Estimate allocates %.1f objects/op, want 0", variant.name, allocs)
		}
	}
}

// TestPooledPathZeroAlloc asserts that against a warm representation memory
// pool both the raw Get and the full pooled estimate are allocation-free.
func TestPooledPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	eps := benchCorpus(t, 8)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	sess := NewSession(m)
	pool := NewMemoryPool()
	for _, ep := range eps {
		sess.EstimateWithPool(ep, pool)
	}
	sig := eps[0].Nodes[eps[0].Root].Sig
	allocs := testing.AllocsPerRun(500, func() {
		if _, _, ok := pool.Get(sig); !ok {
			t.Fatal("warm pool missed")
		}
	})
	if allocs != 0 {
		t.Errorf("warm pool Get allocates %.1f objects/op, want 0", allocs)
	}
	var i int
	allocs = testing.AllocsPerRun(200, func() {
		sess.EstimateWithPool(eps[i%len(eps)], pool)
		i++
	})
	if allocs != 0 {
		t.Errorf("warm pooled Estimate allocates %.1f objects/op, want 0", allocs)
	}
}

// TestBoundedPoolEviction checks the pool's size knob: a bounded pool must
// stay near its cap and keep serving correct representations.
func TestBoundedPoolEviction(t *testing.T) {
	const maxEntries = 64
	pool := NewBoundedMemoryPool(maxEntries)
	g := []float64{1, 2}
	r := []float64{3, 4}
	for i := 0; i < 10*maxEntries; i++ {
		pool.Put(fmt.Sprintf("sig-%d", i), g, r)
	}
	// Per-shard enforcement makes the bound approximate; allow one extra
	// entry per shard of headroom but no unbounded growth.
	if n := pool.Len(); n > maxEntries+poolShardCount {
		t.Fatalf("bounded pool grew to %d entries (cap %d)", n, maxEntries)
	}
	pool.Put("probe", g, r)
	pg, pr, ok := pool.Get("probe")
	if !ok || pg[1] != 2 || pr[0] != 3 {
		t.Fatal("bounded pool lost a fresh entry or corrupted it")
	}
}

// TestClockEvictionKeepsHotEntries pins the second-chance behavior: hot
// signatures that keep getting probed between insertions must survive a long
// stream of one-off cold insertions. (Arbitrary-victim eviction would lose
// roughly half the hot set under this pressure.)
func TestClockEvictionKeepsHotEntries(t *testing.T) {
	const (
		hotCount   = 24
		maxEntries = 256 // 8 per shard — far above any plausible hot-set skew
		coldPuts   = 500
	)
	pool := NewBoundedMemoryPool(maxEntries)
	g := []float64{1, 2}
	r := []float64{3, 4}
	hot := make([]string, hotCount)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot-join-prefix-%d", i)
		pool.Put(hot[i], g, r)
	}
	for k := 0; k < coldPuts; k++ {
		// The optimizer keeps probing its hot sub-plans, so their reference
		// bits are set when the next one-off insertion needs a victim.
		for _, sig := range hot {
			if _, _, ok := pool.Get(sig); !ok {
				t.Fatalf("hot signature %q evicted after %d cold insertions", sig, k)
			}
		}
		pool.Put(fmt.Sprintf("cold-oneoff-%d", k), g, r)
	}
	for _, sig := range hot {
		if _, _, ok := pool.Get(sig); !ok {
			t.Fatalf("hot signature %q not resident after eviction pressure", sig)
		}
	}
	if n := pool.Len(); n > maxEntries+poolShardCount {
		t.Fatalf("bounded pool grew to %d entries (cap %d)", n, maxEntries)
	}
}

// TestPoolEvictedCardNode forces the case a bounded pool creates: the root's
// representation is resident but the cardinality node's entry was evicted.
// The estimator must recompute the cardinality subtree, not degrade to the
// root's cardinality head.
func TestPoolEvictedCardNode(t *testing.T) {
	eps := benchCorpus(t, 16)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	sess := NewSession(m)
	tested := 0
	for _, ep := range eps {
		if ep.CardNode == ep.Root {
			continue
		}
		wantCost, wantCard := sess.Estimate(ep)
		// A pool holding only the root: Get(root) hits and skips the whole
		// tree, Get(cardNode) misses — exactly the post-eviction shape.
		pool := NewMemoryPool()
		full := NewMemoryPool()
		sess.EstimateWithPool(ep, full)
		g, r, ok := full.Get(ep.Nodes[ep.Root].Sig)
		if !ok {
			t.Fatal("root representation missing from warm pool")
		}
		pool.Put(ep.Nodes[ep.Root].Sig, g, r)
		gotCost, gotCard := sess.EstimateWithPool(ep, pool)
		if gotCost != wantCost || gotCard != wantCard {
			t.Fatalf("evicted card node degraded the estimate: (%g,%g) vs (%g,%g)",
				gotCost, gotCard, wantCost, wantCard)
		}
		tested++
	}
	if tested == 0 {
		t.Skip("no plan in corpus with CardNode != Root")
	}
}

// TestConcurrentEstimate hammers the convenience API from many goroutines;
// the session pool must hand each caller private buffers (run with -race).
func TestConcurrentEstimate(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	want := make([][2]float64, len(eps))
	for i, ep := range eps {
		c, d := m.Estimate(ep)
		want[i] = [2]float64{c, d}
	}
	pool := NewMemoryPool()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				i := (w + k) % len(eps)
				c, d := m.Estimate(eps[i])
				if c != want[i][0] || d != want[i][1] {
					t.Errorf("concurrent estimate diverged at plan %d", i)
					return
				}
				cp, dp := m.EstimateWithPool(eps[i], pool)
				if cp != want[i][0] || dp != want[i][1] {
					t.Errorf("concurrent pooled estimate diverged at plan %d", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkForwardSingle measures the per-plan Estimate hot path: the call an
// optimizer would make once per candidate plan during enumeration.
func BenchmarkForwardSingle(b *testing.B) {
	eps := benchCorpus(b, 24)
	for _, variant := range []struct {
		name string
		mod  func(*Config)
	}{
		{"pool", func(c *Config) {}},
		{"predlstm", func(c *Config) { c.Pred = PredLSTM }},
		{"repnn", func(c *Config) { c.Rep = RepNN }},
	} {
		cfg := TestConfig()
		variant.mod(&cfg)
		m := New(cfg, testEnc)
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Estimate(eps[i%len(eps)])
			}
		})
	}
}

// BenchmarkForwardPooled measures EstimateWithPool against a warm
// representation memory pool (the paper's online workflow).
func BenchmarkForwardPooled(b *testing.B) {
	eps := benchCorpus(b, 24)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	pool := NewMemoryPool()
	for _, ep := range eps {
		m.EstimateWithPool(ep, pool)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EstimateWithPool(eps[i%len(eps)], pool)
	}
	b.ReportMetric(pool.HitRate()*100, "hit%")
}

// BenchmarkPoolGetParallel measures concurrent read throughput of the
// representation memory pool: with many goroutines hammering Get, the read
// path must not serialize on an exclusive lock.
func BenchmarkPoolGetParallel(b *testing.B) {
	pool := NewMemoryPool()
	g := make([]float64, 16)
	r := make([]float64, 16)
	sigs := make([]string, 512)
	for i := range sigs {
		sigs[i] = fmt.Sprintf("sig-%d|join|scan-%d", i, i%7)
		pool.Put(sigs[i], g, r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var i uint64
		for pb.Next() {
			n := atomic.AddUint64(&i, 1)
			pool.Get(sigs[n%uint64(len(sigs))])
		}
	})
}
