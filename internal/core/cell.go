package core

import (
	"math/rand"

	"costest/internal/nn"
	"costest/internal/tensor"
)

// lstmCell is the representation unit of Section 4.2.2:
//
//	G_{t-1} = (G^l + G^r)/2        R_{t-1} = (R^l + R^r)/2
//	f  = σ(W_f·[R_{t-1}, x] + b_f)
//	k1 = σ(W_{k1}·[R_{t-1}, x] + b_{k1})
//	r  = tanh(W_r·[R_{t-1}, x] + b_r)
//	k2 = σ(W_{k2}·[R_{t-1}, x] + b_{k2})
//	G_t = f ⊙ G_{t-1} + k1 ⊙ r     R_t = k2 ⊙ tanh(G_t)
//
// The G channel carries long-range information up the plan tree without
// repeated multiplication, addressing gradient vanishing (the paper's
// information-vanishing argument).
type lstmCell struct {
	dh, dx           int
	wf, wk1, wr, wk2 *nn.Linear
}

func newLSTMCell(ps *nn.ParamSet, name string, dh, dx int, rng *rand.Rand) *lstmCell {
	in := dh + dx
	return &lstmCell{
		dh: dh, dx: dx,
		wf:  nn.NewLinear(ps, name+".f", in, dh, rng),
		wk1: nn.NewLinear(ps, name+".k1", in, dh, rng),
		wr:  nn.NewLinear(ps, name+".r", in, dh, rng),
		wk2: nn.NewLinear(ps, name+".k2", in, dh, rng),
	}
}

// cellState caches one forward evaluation for backprop.
type cellState struct {
	z            []float64 // [Rprev, x]
	gPrev, rPrev []float64
	f, k1, r, k2 []float64
	g, tG, rOut  []float64 // G_t, tanh(G_t), R_t
}

func (c *lstmCell) newState() *cellState {
	return &cellState{
		z:     make([]float64, c.dh+c.dx),
		gPrev: make([]float64, c.dh),
		rPrev: make([]float64, c.dh),
		f:     make([]float64, c.dh),
		k1:    make([]float64, c.dh),
		r:     make([]float64, c.dh),
		k2:    make([]float64, c.dh),
		g:     make([]float64, c.dh),
		tG:    make([]float64, c.dh),
		rOut:  make([]float64, c.dh),
	}
}

// forward computes (G_t, R_t) into st. Children states may be nil (leaves),
// meaning zero vectors.
func (c *lstmCell) forward(st *cellState, x, gl, rl, gr, rr []float64) {
	for i := 0; i < c.dh; i++ {
		var g, r float64
		if gl != nil {
			g += gl[i]
			r += rl[i]
		}
		if gr != nil {
			g += gr[i]
			r += rr[i]
		}
		st.gPrev[i] = g / 2
		st.rPrev[i] = r / 2
	}
	copy(st.z[:c.dh], st.rPrev)
	copy(st.z[c.dh:], x)

	// All four gates read the same z: one interleaved kernel pass computes
	// their pre-activations, then biases and nonlinearities apply in place.
	tensor.MatVec4(st.f, st.k1, st.r, st.k2,
		c.wf.W.Mat(), c.wk1.W.Mat(), c.wr.W.Mat(), c.wk2.W.Mat(), st.z)
	tensor.AddTo(st.f, c.wf.B.Vec())
	nn.Sigmoid(st.f, st.f)
	tensor.AddTo(st.k1, c.wk1.B.Vec())
	nn.Sigmoid(st.k1, st.k1)
	tensor.AddTo(st.r, c.wr.B.Vec())
	nn.Tanh(st.r, st.r)
	tensor.AddTo(st.k2, c.wk2.B.Vec())
	nn.Sigmoid(st.k2, st.k2)

	for i := 0; i < c.dh; i++ {
		st.g[i] = st.f[i]*st.gPrev[i] + st.k1[i]*st.r[i]
	}
	nn.Tanh(st.tG, st.g)
	for i := 0; i < c.dh; i++ {
		st.rOut[i] = st.k2[i] * st.tG[i]
	}
}

// levelBackwardGEMM folds one batch level's per-node gate gradients into the
// cell's parameter gradients and the level's input gradient as matrix-matrix
// products: for each gate, W.grad += dGateᵀ·Z (every node's outer product in
// one sweep), B.grad += column sums of dGate, and dZ += dGate·W. The dGate
// matrices and zt are node-major ([n×dh] / [n×in], rows aligned with the
// level's items); dz ([n×in]) must be zeroed by the caller. This is the
// level-wise counterpart of the four per-node Linear.Backward calls in
// backward() — identical math, one weight-stream per level instead of per
// node.
func (c *lstmCell) levelBackwardGEMM(df, dk1, dr, dk2, zt, dz *tensor.Mat) {
	gates := [4]struct {
		d *tensor.Mat
		l *nn.Linear
	}{{df, c.wf}, {dk1, c.wk1}, {dr, c.wr}, {dk2, c.wk2}}
	for _, g := range gates {
		tensor.MatMulTransAInto(g.l.W.GradMat(), g.d, zt)
		tensor.AddColumnSums(g.l.B.GradVec(), g.d)
		tensor.AddMatMulInto(dz, g.d, g.l.W.Mat())
	}
}

// backward consumes upstream gradients (dG, dR) w.r.t. (G_t, R_t) and
// accumulates parameter gradients, writing input gradients into dx and the
// children's (dGl, dRl, dGr, dRr) accumulators (added, not overwritten).
// Any output pointer may be nil. Scratch vectors come from ar so repeated
// passes reuse one slab instead of allocating.
func (c *lstmCell) backward(ar *f64Arena, st *cellState, dG, dR, dx, dGl, dRl, dGr, dRr []float64) {
	dh := c.dh
	// R = k2 ⊙ tanh(G)
	dk2 := ar.take(dh)
	dGTotal := ar.take(dh)
	for i := 0; i < dh; i++ {
		dk2[i] = dR[i] * st.tG[i]
		dT := dR[i] * st.k2[i]
		dGTotal[i] = dG[i] + dT*(1-st.tG[i]*st.tG[i])
	}
	// G = f⊙Gprev + k1⊙r
	df := ar.take(dh)
	dk1 := ar.take(dh)
	dr := ar.take(dh)
	dGprev := ar.take(dh)
	for i := 0; i < dh; i++ {
		df[i] = dGTotal[i] * st.gPrev[i]
		dGprev[i] = dGTotal[i] * st.f[i]
		dk1[i] = dGTotal[i] * st.r[i]
		dr[i] = dGTotal[i] * st.k1[i]
	}
	// Through the gate nonlinearities.
	for i := 0; i < dh; i++ {
		df[i] *= st.f[i] * (1 - st.f[i])
		dk1[i] *= st.k1[i] * (1 - st.k1[i])
		dr[i] *= 1 - st.r[i]*st.r[i]
		dk2[i] *= st.k2[i] * (1 - st.k2[i])
	}
	// Through the four linears; accumulate dz.
	dz := ar.take(dh + c.dx)
	tmp := ar.take(dh + c.dx)
	c.wf.Backward(tmp, df, st.z)
	tensor.AddTo(dz, tmp)
	c.wk1.Backward(tmp, dk1, st.z)
	tensor.AddTo(dz, tmp)
	c.wr.Backward(tmp, dr, st.z)
	tensor.AddTo(dz, tmp)
	c.wk2.Backward(tmp, dk2, st.z)
	tensor.AddTo(dz, tmp)

	if dx != nil {
		tensor.AddTo(dx, dz[dh:])
	}
	// Rprev = (Rl+Rr)/2, Gprev = (Gl+Gr)/2.
	for i := 0; i < dh; i++ {
		dRp := dz[i] / 2
		dGp := dGprev[i] / 2
		if dRl != nil {
			dRl[i] += dRp
			dGl[i] += dGp
		}
		if dRr != nil {
			dRr[i] += dRp
			dGr[i] += dGp
		}
	}
}
