package core

import (
	"math/rand"

	"costest/internal/feature"
	"costest/internal/nn"
)

// Trainer runs mini-batch Adam training with the multitask q-error loss of
// Section 4.3.
type Trainer struct {
	M   *Model
	Opt *nn.Adam
	rng *rand.Rand

	costLoss nn.Loss
	cardLoss nn.Loss

	// sess is the trainer-owned forward/backward arena, reused across every
	// sample so the training loop shares the inference runtime's caches.
	sess *InferenceSession

	// bsess is the shared batch forward/backward arena for TrainEpochBatched,
	// created on first use; batchBuf is the reusable minibatch gather slice
	// and permBuf the reusable epoch shuffle.
	bsess    *BatchSession
	batchBuf []*feature.EncodedPlan
	permBuf  []int
}

// NewTrainer builds a trainer for the model.
func NewTrainer(m *Model) *Trainer {
	return &Trainer{
		M:    m,
		Opt:  nn.NewAdam(m.Cfg.LearnRate),
		rng:  rand.New(rand.NewSource(m.Cfg.Seed + 1000)),
		sess: NewSession(m),
	}
}

// FitNormalizers fits the cost/cardinality target normalizers on the
// training set (all supervised nodes when sub-plan supervision is on).
func (t *Trainer) FitNormalizers(train []*feature.EncodedPlan) {
	var costs, cards []float64
	for _, ep := range train {
		if t.M.Cfg.SubplanLoss {
			for i := range ep.Nodes {
				costs = append(costs, ep.Nodes[i].TrueCost)
				cards = append(cards, ep.Nodes[i].TrueRows)
			}
		} else {
			costs = append(costs, ep.Cost)
			cards = append(cards, ep.Card)
		}
	}
	t.M.CostNorm = nn.NewNormalizer(costs)
	t.M.CardNorm = nn.NewNormalizer(cards)
	t.rebuildLosses()
}

func (t *Trainer) rebuildLosses() {
	if t.M.Cfg.UseQError {
		t.costLoss = nn.QErrorLoss{Norm: t.M.CostNorm, GradClip: 50}
		t.cardLoss = nn.QErrorLoss{Norm: t.M.CardNorm, GradClip: 50}
	} else {
		t.costLoss = nn.MSLELoss{Norm: t.M.CostNorm}
		t.cardLoss = nn.MSLELoss{Norm: t.M.CardNorm}
	}
}

// permute fills the trainer's reusable shuffle buffer with the same
// permutation rand.Perm would produce (identical draws from t.rng, so epoch
// schedules are unchanged and every epoch driver sharing the trainer's rng
// stays replayable against the others), without allocating at steady state.
func (t *Trainer) permute(n int) []int {
	if cap(t.permBuf) < n {
		t.permBuf = make([]int, n)
	}
	p := t.permBuf[:n]
	for i := range p {
		j := t.rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// TrainEpoch runs one epoch over samples in shuffled mini-batches and
// returns the mean per-sample loss.
func (t *Trainer) TrainEpoch(samples []*feature.EncodedPlan, batchSize int) float64 {
	if t.costLoss == nil {
		t.rebuildLosses()
	}
	if batchSize <= 0 {
		batchSize = 32
	}
	idx := t.permute(len(samples))
	var total float64
	for start := 0; start < len(idx); start += batchSize {
		end := start + batchSize
		if end > len(idx) {
			end = len(idx)
		}
		t.M.PS.ZeroGrad()
		for _, i := range idx[start:end] {
			total += t.accumulate(samples[i])
		}
		t.M.PS.ClipGradNorm(t.M.Cfg.GradClip * float64(end-start))
		t.Opt.Step(t.M.PS)
	}
	return total / float64(len(samples))
}

// TrainEpochBatched runs one epoch like TrainEpoch, but forwards and
// backwards whole minibatches through one shared BatchSession and gradient
// arena: the level-wise batched forward of Section 4.3 paired with the
// level-wise GEMM backward of batch_backward.go, with elementwise work
// spread across `workers` goroutines (<= 0 means GOMAXPROCS). Gradients
// match the per-sample TrainEpoch up to floating-point reassociation; epoch
// time drops because every level's gate products and weight-gradient
// accumulations run as matrix-matrix kernels. Returns the mean per-sample
// loss.
func (t *Trainer) TrainEpochBatched(samples []*feature.EncodedPlan, batchSize, workers int) float64 {
	if t.costLoss == nil {
		t.rebuildLosses()
	}
	if batchSize <= 0 {
		batchSize = 32
	}
	if t.bsess == nil {
		t.bsess = NewBatchSession(t.M)
	}
	idx := t.permute(len(samples))
	var total float64
	for start := 0; start < len(idx); start += batchSize {
		end := start + batchSize
		if end > len(idx) {
			end = len(idx)
		}
		t.batchBuf = t.batchBuf[:0]
		for _, i := range idx[start:end] {
			t.batchBuf = append(t.batchBuf, samples[i])
		}
		t.M.PS.ZeroGrad()
		total += t.accumulateBatch(t.batchBuf, workers)
		t.M.PS.ClipGradNorm(t.M.Cfg.GradClip * float64(end-start))
		t.Opt.Step(t.M.PS)
	}
	return total / float64(len(samples))
}

// Publish installs the trainer's current weights on srv as a new immutable
// snapshot (see Server.Publish) — the retrain-in-place workflow: a
// long-lived service keeps one Trainer mutating the live model and calls
// Publish between epochs while the Server's Estimate/EstimateBatch callers
// keep serving the previous snapshot untouched. Call from the training
// goroutine so the weight copy never races an optimizer step.
func (t *Trainer) Publish(srv *Server) *ModelSnapshot {
	return srv.Publish(t.M)
}

// PublishDelta is Publish through the delta-publication path: only the
// parameters the optimizer touched since the target snapshot buffers were
// last synced are copied (see Server.PublishDelta), which makes publication
// cheap enough to run per minibatch. Call from the training goroutine, like
// Publish.
func (t *Trainer) PublishDelta(srv *Server) *ModelSnapshot {
	return srv.PublishDelta(t.M)
}

// accumulate runs forward + backward for one sample, returning its loss.
func (t *Trainer) accumulate(ep *feature.EncodedPlan) float64 {
	t.sess.forwardTrain(ep)
	loss, hg := t.lossAndGrads(ep, t.sess)
	t.M.backwardPlan(ep, t.sess, hg)
	return loss
}

// lossAndGrads computes the multitask loss
// ω·qerror(cost) + qerror(card) over the supervised nodes and the head
// gradients for backprop.
func (t *Trainer) lossAndGrads(ep *feature.EncodedPlan, st *InferenceSession) (float64, []headGrad) {
	cfg := t.M.Cfg
	if cap(st.hg) < len(ep.Nodes) {
		st.hg = make([]headGrad, len(ep.Nodes))
	}
	hg := st.hg[:len(ep.Nodes)]
	for i := range hg {
		hg[i] = headGrad{}
	}
	var loss float64
	var supervised int

	superviseCost := func(idx int, truth float64, weight float64) {
		l, g := t.costLoss.Eval(st.nodes[idx].costS, truth)
		loss += weight * l
		hg[idx].dCostS += weight * g
		supervised++
	}
	superviseCard := func(idx int, truth float64, weight float64) {
		l, g := t.cardLoss.Eval(st.nodes[idx].cardS, truth)
		loss += weight * l
		hg[idx].dCardS += weight * g
		supervised++
	}

	if cfg.SubplanLoss {
		for i := range ep.Nodes {
			if cfg.Target != TargetCard {
				superviseCost(i, ep.Nodes[i].TrueCost, cfg.LossWeight)
			}
			if cfg.Target != TargetCost {
				superviseCard(i, ep.Nodes[i].TrueRows, 1)
			}
		}
	} else {
		if cfg.Target != TargetCard {
			superviseCost(ep.Root, ep.Cost, cfg.LossWeight)
		}
		if cfg.Target != TargetCost {
			superviseCard(ep.CardNode, ep.Card, 1)
		}
	}
	if supervised == 0 {
		return 0, hg
	}
	// Normalize the gradient scale by the supervision count so sub-plan
	// supervision does not inflate step sizes.
	scale := 1 / float64(supervised)
	for i := range hg {
		hg[i].dCostS *= scale
		hg[i].dCardS *= scale
	}
	return loss / float64(supervised), hg
}

// ValidationError reports mean q-errors over a validation set.
func (m *Model) ValidationError(samples []*feature.EncodedPlan) (costQ, cardQ float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	for _, ep := range samples {
		cost, card := m.Estimate(ep)
		costQ += nn.QError(cost, ep.Cost)
		cardQ += nn.QError(card, ep.Card)
	}
	n := float64(len(samples))
	return costQ / n, cardQ / n
}

// EpochStats reports one training epoch's outcome. Published carries the
// snapshot version an auto-publishing ParallelTrainer.Fit installed after
// the epoch (0 when nothing was published — the gate rejected the epoch or
// no publish hook is configured).
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	ValidCost float64
	ValidCard float64
	Published uint64
}

// Fit trains for the given number of epochs, reporting per-epoch validation
// q-errors through cb (which may be nil). It returns the stats history —
// the data behind the paper's validation-error curves (Figures 7 and 8).
func (t *Trainer) Fit(train, valid []*feature.EncodedPlan, epochs, batchSize int,
	cb func(EpochStats)) []EpochStats {
	t.FitNormalizers(train)
	history := make([]EpochStats, 0, epochs)
	for e := 0; e < epochs; e++ {
		loss := t.TrainEpoch(train, batchSize)
		vc, vd := t.M.ValidationError(valid)
		st := EpochStats{Epoch: e, TrainLoss: loss, ValidCost: vc, ValidCard: vd}
		history = append(history, st)
		if cb != nil {
			cb(st)
		}
	}
	return history
}
