package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"costest/internal/feature"
	"costest/internal/nn"
)

// Model is the tree-structured cost/cardinality estimator.
type Model struct {
	Cfg Config
	Enc *feature.Encoder
	PS  *nn.ParamSet

	// Actual embedding segment widths (bitmap may be absent).
	eOp, eMeta, eBm, ePred int

	// Embedding layer (Section 4.2.1): one FC+ReLU per simple feature.
	opL, metaL, bmL *nn.Linear
	// Predicate embedding: leaf FC for the pooling variant, or a tree-LSTM.
	predLeaf *nn.Linear
	predCell *lstmCell

	// Representation layer (Section 4.2.2).
	repCell *lstmCell
	repNN   *nn.Linear

	// Estimation layer (Section 4.2.3): two heads sharing the trunk.
	costH, costO, cardH, cardO *nn.Linear

	// Target normalizers (min-max in log space, Section 4.3).
	CostNorm nn.Normalizer
	CardNorm nn.Normalizer

	// sessions recycles InferenceSessions for the Estimate/EstimateWithPool
	// convenience API, keeping the steady-state per-plan path allocation-free
	// even under concurrent callers.
	sessions sync.Pool
	// batchSessions does the same for the EstimateBatch convenience API.
	batchSessions sync.Pool
}

// New builds a model wired to the encoder's feature dimensions.
func New(cfg Config, enc *feature.Encoder) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ps := nn.NewParamSet()
	m := &Model{Cfg: cfg, Enc: enc, PS: ps}

	m.eOp, m.eMeta, m.ePred = cfg.OpEmbed, cfg.MetaEmbed, cfg.PredEmbed
	m.opL = nn.NewLinear(ps, "embed.op", enc.OpDim(), cfg.OpEmbed, rng)
	m.metaL = nn.NewLinear(ps, "embed.meta", enc.MetaDim(), cfg.MetaEmbed, rng)
	if enc.BitmapDim() > 0 {
		m.eBm = cfg.BitmapEmbed
		m.bmL = nn.NewLinear(ps, "embed.bitmap", enc.BitmapDim(), cfg.BitmapEmbed, rng)
	}
	switch cfg.Pred {
	case PredPool, PredPoolMean:
		m.predLeaf = nn.NewLinear(ps, "embed.predleaf", enc.AtomDim(), cfg.PredEmbed, rng)
	case PredLSTM:
		m.predCell = newLSTMCell(ps, "embed.predlstm", cfg.PredEmbed, enc.AtomDim(), rng)
	}

	switch cfg.Rep {
	case RepLSTM:
		m.repCell = newLSTMCell(ps, "rep", cfg.Hidden, m.embedDim(), rng)
	case RepNN:
		m.repNN = nn.NewLinear(ps, "rep.nn", m.embedDim()+2*cfg.Hidden, cfg.Hidden, rng)
	}

	m.costH = nn.NewLinear(ps, "est.cost.h", cfg.Hidden, cfg.EstHidden, rng)
	m.costO = nn.NewLinear(ps, "est.cost.o", cfg.EstHidden, 1, rng)
	m.cardH = nn.NewLinear(ps, "est.card.h", cfg.Hidden, cfg.EstHidden, rng)
	m.cardO = nn.NewLinear(ps, "est.card.o", cfg.EstHidden, 1, rng)

	// Default normalizers; Trainer.Fit replaces them from training targets.
	m.CostNorm = nn.NewNormalizer([]float64{1, 1e6})
	m.CardNorm = nn.NewNormalizer([]float64{1, 1e8})
	return m
}

// embedDim returns the concatenated embedding width E for this model.
func (m *Model) embedDim() int { return m.eOp + m.eMeta + m.eBm + m.ePred }

// NumParams returns the number of scalar parameters.
func (m *Model) NumParams() int { return m.PS.NumParams() }

// modelMagic prefixes versioned checkpoint files. Legacy files (written
// before checkpoints carried a header) start directly with the gob stream of
// the parameter payload and are still readable; they simply lack normalizer
// state.
const modelMagic = "COSTESTM"

// modelCheckpointVersion is the current checkpoint format version. Version 3
// made checkpoints self-describing: the header carries the model Config and
// the encoder feature dimensions, so a cold process (costestd loading a
// checkpoint at startup) can reconstruct the model without out-of-band
// hyperparameters and verify its encoder is shape-compatible before touching
// any weights. Version 2 added the header itself with the cost/cardinality
// target normalizers; version 1 is the headerless legacy format.
const modelCheckpointVersion = 3

// EncoderMeta records the feature-space dimensions a model was built
// against — the encoder facts a checkpoint needs to be loadable cold. The
// encoder itself (catalog, string embedder) is reconstructed by the loading
// process from its own substrate; the metadata makes a mismatch a descriptive
// error instead of silently mis-shaped estimates.
type EncoderMeta struct {
	OpDim           int
	MetaDim         int
	BitmapDim       int
	AtomDim         int
	UseSampleBitmap bool
}

// encoderMetaOf captures enc's dimensions for a checkpoint header.
func encoderMetaOf(enc *feature.Encoder) EncoderMeta {
	return EncoderMeta{
		OpDim:           enc.OpDim(),
		MetaDim:         enc.MetaDim(),
		BitmapDim:       enc.BitmapDim(),
		AtomDim:         enc.AtomDim(),
		UseSampleBitmap: enc.UseSampleBitmap,
	}
}

// check reports the first dimension on which enc differs from the recorded
// metadata, or "" when compatible.
func (em EncoderMeta) check(enc *feature.Encoder) string {
	got := encoderMetaOf(enc)
	switch {
	case got.OpDim != em.OpDim:
		return fmt.Sprintf("operation one-hot width %d, checkpoint built against %d", got.OpDim, em.OpDim)
	case got.MetaDim != em.MetaDim:
		return fmt.Sprintf("metadata bitmap width %d, checkpoint built against %d", got.MetaDim, em.MetaDim)
	case got.BitmapDim != em.BitmapDim:
		return fmt.Sprintf("sample bitmap width %d, checkpoint built against %d", got.BitmapDim, em.BitmapDim)
	case got.AtomDim != em.AtomDim:
		return fmt.Sprintf("predicate atom width %d, checkpoint built against %d", got.AtomDim, em.AtomDim)
	case got.UseSampleBitmap != em.UseSampleBitmap:
		return fmt.Sprintf("sample bitmap enabled=%v, checkpoint built with %v", got.UseSampleBitmap, em.UseSampleBitmap)
	}
	return ""
}

// modelHeader is the versioned checkpoint header: everything a round-tripped
// model needs beyond the weights to reproduce bit-identical estimates. The
// target normalizers used to be silently dropped, leaving a loaded model
// misestimating until FitNormalizers was re-run. Since version 3 the header
// also carries the Config and encoder dimensions (gob leaves them zero when
// decoding older files).
type modelHeader struct {
	Version  int
	CostNorm nn.Normalizer
	CardNorm nn.Normalizer
	Config   Config
	Encoder  EncoderMeta
}

// Save serializes a versioned checkpoint: a magic prefix, a header carrying
// the target normalizers, the model Config and the encoder dimensions, then
// the parameter values. The checkpoint is self-describing: LoadModel can
// rebuild an identically configured model from it with nothing but a
// shape-compatible encoder — no out-of-band hyperparameters. (The encoder's
// own state — catalog, string embedder — is still the loader's to provide; a
// synthetic-substrate process reconstructs it from its generation seed.)
func (m *Model) Save(w io.Writer) error {
	if _, err := io.WriteString(w, modelMagic); err != nil {
		return fmt.Errorf("core: write checkpoint magic: %w", err)
	}
	enc := gob.NewEncoder(w)
	hdr := modelHeader{
		Version:  modelCheckpointVersion,
		CostNorm: m.CostNorm,
		CardNorm: m.CardNorm,
		Config:   m.Cfg,
		Encoder:  encoderMetaOf(m.Enc),
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("core: encode checkpoint header: %w", err)
	}
	return m.PS.EncodeGob(enc)
}

// Load restores a checkpoint saved by Save into an identically configured
// model, including the target normalizers, so a round-tripped model
// estimates bit-identically with no FitNormalizers re-run. Files written by
// the headerless legacy format still load (weights only — the caller keeps
// owning normalizer state for those, as before). Mismatched or truncated
// payloads return an error without silently corrupting weights.
func (m *Model) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(len(modelMagic))
	if err != nil || string(prefix) != modelMagic {
		// Legacy headerless checkpoint: the stream is the bare parameter
		// payload. (A file shorter than the magic can only be a corrupt or
		// legacy stream; the param decode produces the descriptive error.)
		return m.PS.Load(br)
	}
	if _, err := br.Discard(len(modelMagic)); err != nil {
		return fmt.Errorf("core: read checkpoint magic: %w", err)
	}
	dec := gob.NewDecoder(br)
	var hdr modelHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("core: decode checkpoint header: %w", err)
	}
	if hdr.Version < 2 || hdr.Version > modelCheckpointVersion {
		return fmt.Errorf("core: unsupported checkpoint version %d (supported: 2..%d)",
			hdr.Version, modelCheckpointVersion)
	}
	if err := m.PS.DecodeGob(dec); err != nil {
		return err
	}
	m.CostNorm, m.CardNorm = hdr.CostNorm, hdr.CardNorm
	return nil
}

// maxCheckpointDim bounds each persisted Config dimension LoadModel will
// construct a model from. The guard is against corrupt or hostile
// checkpoint headers, not real models: the paper's full-size configuration
// peaks at Hidden=64, so four orders of magnitude of headroom loses nothing,
// while an unchecked header dimension would size New's parameter
// allocations directly (a single flipped high byte turns a 64-wide layer
// into a multi-gigabyte allocation).
const maxCheckpointDim = 1 << 14

// checkLoadable rejects persisted Config values that would make New allocate
// absurdly (dimensions) or build a half-wired model (enums outside their
// defined range).
func (c Config) checkLoadable() error {
	dims := [...]struct {
		name string
		v    int
	}{
		{"OpEmbed", c.OpEmbed}, {"MetaEmbed", c.MetaEmbed},
		{"BitmapEmbed", c.BitmapEmbed}, {"PredEmbed", c.PredEmbed},
		{"Hidden", c.Hidden}, {"EstHidden", c.EstHidden},
	}
	for _, d := range dims {
		if d.v < 1 || d.v > maxCheckpointDim {
			return fmt.Errorf("dimension %s=%d outside [1, %d]", d.name, d.v, maxCheckpointDim)
		}
	}
	if c.Pred < PredPool || c.Pred > PredPoolMean {
		return fmt.Errorf("unknown predicate model %d", c.Pred)
	}
	if c.Rep < RepLSTM || c.Rep > RepNN {
		return fmt.Errorf("unknown representation model %d", c.Rep)
	}
	if c.Target < TargetBoth || c.Target > TargetCard {
		return fmt.Errorf("unknown training target %d", c.Target)
	}
	return nil
}

// LoadModel reads a self-describing (version >= 3) checkpoint and rebuilds
// the model it was saved from: the persisted Config constructs the network,
// enc supplies the feature encoder, and the weights and normalizers load
// into it — the cold-start path for a serving process handed nothing but a
// checkpoint file and a substrate to rebuild the encoder on. The encoder is
// validated against the persisted dimensions before any weight is touched,
// so a checkpoint from a different schema or embedding width fails with a
// descriptive error instead of shape panics (or, worse, silently wrong
// estimates). Older checkpoints (version 2 and the headerless legacy format)
// do not carry a Config; load those with Model.Load into a model you
// configured yourself.
func LoadModel(r io.Reader, enc *feature.Encoder) (*Model, error) {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(len(modelMagic))
	if err != nil || string(prefix) != modelMagic {
		return nil, fmt.Errorf("core: checkpoint is not self-describing (legacy headerless format?); construct the model and use Model.Load")
	}
	if _, err := br.Discard(len(modelMagic)); err != nil {
		return nil, fmt.Errorf("core: read checkpoint magic: %w", err)
	}
	dec := gob.NewDecoder(br)
	var hdr modelHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint header: %w", err)
	}
	if hdr.Version < 3 || hdr.Version > modelCheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d carries no model config (self-describing needs 3..%d); construct the model and use Model.Load",
			hdr.Version, modelCheckpointVersion)
	}
	if diff := hdr.Encoder.check(enc); diff != "" {
		return nil, fmt.Errorf("core: encoder incompatible with checkpoint: %s", diff)
	}
	if err := hdr.Config.checkLoadable(); err != nil {
		return nil, fmt.Errorf("core: checkpoint config rejected: %w", err)
	}
	m := New(hdr.Config, enc)
	if err := m.PS.DecodeGob(dec); err != nil {
		return nil, err
	}
	m.CostNorm, m.CardNorm = hdr.CostNorm, hdr.CardNorm
	return m, nil
}
