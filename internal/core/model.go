package core

import (
	"io"
	"math/rand"
	"sync"

	"costest/internal/feature"
	"costest/internal/nn"
)

// Model is the tree-structured cost/cardinality estimator.
type Model struct {
	Cfg Config
	Enc *feature.Encoder
	PS  *nn.ParamSet

	// Actual embedding segment widths (bitmap may be absent).
	eOp, eMeta, eBm, ePred int

	// Embedding layer (Section 4.2.1): one FC+ReLU per simple feature.
	opL, metaL, bmL *nn.Linear
	// Predicate embedding: leaf FC for the pooling variant, or a tree-LSTM.
	predLeaf *nn.Linear
	predCell *lstmCell

	// Representation layer (Section 4.2.2).
	repCell *lstmCell
	repNN   *nn.Linear

	// Estimation layer (Section 4.2.3): two heads sharing the trunk.
	costH, costO, cardH, cardO *nn.Linear

	// Target normalizers (min-max in log space, Section 4.3).
	CostNorm nn.Normalizer
	CardNorm nn.Normalizer

	// sessions recycles InferenceSessions for the Estimate/EstimateWithPool
	// convenience API, keeping the steady-state per-plan path allocation-free
	// even under concurrent callers.
	sessions sync.Pool
	// batchSessions does the same for the EstimateBatch convenience API.
	batchSessions sync.Pool
}

// New builds a model wired to the encoder's feature dimensions.
func New(cfg Config, enc *feature.Encoder) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ps := nn.NewParamSet()
	m := &Model{Cfg: cfg, Enc: enc, PS: ps}

	m.eOp, m.eMeta, m.ePred = cfg.OpEmbed, cfg.MetaEmbed, cfg.PredEmbed
	m.opL = nn.NewLinear(ps, "embed.op", enc.OpDim(), cfg.OpEmbed, rng)
	m.metaL = nn.NewLinear(ps, "embed.meta", enc.MetaDim(), cfg.MetaEmbed, rng)
	if enc.BitmapDim() > 0 {
		m.eBm = cfg.BitmapEmbed
		m.bmL = nn.NewLinear(ps, "embed.bitmap", enc.BitmapDim(), cfg.BitmapEmbed, rng)
	}
	switch cfg.Pred {
	case PredPool, PredPoolMean:
		m.predLeaf = nn.NewLinear(ps, "embed.predleaf", enc.AtomDim(), cfg.PredEmbed, rng)
	case PredLSTM:
		m.predCell = newLSTMCell(ps, "embed.predlstm", cfg.PredEmbed, enc.AtomDim(), rng)
	}

	switch cfg.Rep {
	case RepLSTM:
		m.repCell = newLSTMCell(ps, "rep", cfg.Hidden, m.embedDim(), rng)
	case RepNN:
		m.repNN = nn.NewLinear(ps, "rep.nn", m.embedDim()+2*cfg.Hidden, cfg.Hidden, rng)
	}

	m.costH = nn.NewLinear(ps, "est.cost.h", cfg.Hidden, cfg.EstHidden, rng)
	m.costO = nn.NewLinear(ps, "est.cost.o", cfg.EstHidden, 1, rng)
	m.cardH = nn.NewLinear(ps, "est.card.h", cfg.Hidden, cfg.EstHidden, rng)
	m.cardO = nn.NewLinear(ps, "est.card.o", cfg.EstHidden, 1, rng)

	// Default normalizers; Trainer.Fit replaces them from training targets.
	m.CostNorm = nn.NewNormalizer([]float64{1, 1e6})
	m.CardNorm = nn.NewNormalizer([]float64{1, 1e8})
	return m
}

// embedDim returns the concatenated embedding width E for this model.
func (m *Model) embedDim() int { return m.eOp + m.eMeta + m.eBm + m.ePred }

// NumParams returns the number of scalar parameters.
func (m *Model) NumParams() int { return m.PS.NumParams() }

// Save serializes model weights (normalizers excluded; persist Config and
// normalizers alongside when checkpointing end-to-end).
func (m *Model) Save(w io.Writer) error { return m.PS.Save(w) }

// Load restores weights saved by Save into an identically configured model.
func (m *Model) Load(r io.Reader) error { return m.PS.Load(r) }
