package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"costest/internal/feature"
	"costest/internal/nn"
)

// Model is the tree-structured cost/cardinality estimator.
type Model struct {
	Cfg Config
	Enc *feature.Encoder
	PS  *nn.ParamSet

	// Actual embedding segment widths (bitmap may be absent).
	eOp, eMeta, eBm, ePred int

	// Embedding layer (Section 4.2.1): one FC+ReLU per simple feature.
	opL, metaL, bmL *nn.Linear
	// Predicate embedding: leaf FC for the pooling variant, or a tree-LSTM.
	predLeaf *nn.Linear
	predCell *lstmCell

	// Representation layer (Section 4.2.2).
	repCell *lstmCell
	repNN   *nn.Linear

	// Estimation layer (Section 4.2.3): two heads sharing the trunk.
	costH, costO, cardH, cardO *nn.Linear

	// Target normalizers (min-max in log space, Section 4.3).
	CostNorm nn.Normalizer
	CardNorm nn.Normalizer

	// sessions recycles InferenceSessions for the Estimate/EstimateWithPool
	// convenience API, keeping the steady-state per-plan path allocation-free
	// even under concurrent callers.
	sessions sync.Pool
	// batchSessions does the same for the EstimateBatch convenience API.
	batchSessions sync.Pool
}

// New builds a model wired to the encoder's feature dimensions.
func New(cfg Config, enc *feature.Encoder) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ps := nn.NewParamSet()
	m := &Model{Cfg: cfg, Enc: enc, PS: ps}

	m.eOp, m.eMeta, m.ePred = cfg.OpEmbed, cfg.MetaEmbed, cfg.PredEmbed
	m.opL = nn.NewLinear(ps, "embed.op", enc.OpDim(), cfg.OpEmbed, rng)
	m.metaL = nn.NewLinear(ps, "embed.meta", enc.MetaDim(), cfg.MetaEmbed, rng)
	if enc.BitmapDim() > 0 {
		m.eBm = cfg.BitmapEmbed
		m.bmL = nn.NewLinear(ps, "embed.bitmap", enc.BitmapDim(), cfg.BitmapEmbed, rng)
	}
	switch cfg.Pred {
	case PredPool, PredPoolMean:
		m.predLeaf = nn.NewLinear(ps, "embed.predleaf", enc.AtomDim(), cfg.PredEmbed, rng)
	case PredLSTM:
		m.predCell = newLSTMCell(ps, "embed.predlstm", cfg.PredEmbed, enc.AtomDim(), rng)
	}

	switch cfg.Rep {
	case RepLSTM:
		m.repCell = newLSTMCell(ps, "rep", cfg.Hidden, m.embedDim(), rng)
	case RepNN:
		m.repNN = nn.NewLinear(ps, "rep.nn", m.embedDim()+2*cfg.Hidden, cfg.Hidden, rng)
	}

	m.costH = nn.NewLinear(ps, "est.cost.h", cfg.Hidden, cfg.EstHidden, rng)
	m.costO = nn.NewLinear(ps, "est.cost.o", cfg.EstHidden, 1, rng)
	m.cardH = nn.NewLinear(ps, "est.card.h", cfg.Hidden, cfg.EstHidden, rng)
	m.cardO = nn.NewLinear(ps, "est.card.o", cfg.EstHidden, 1, rng)

	// Default normalizers; Trainer.Fit replaces them from training targets.
	m.CostNorm = nn.NewNormalizer([]float64{1, 1e6})
	m.CardNorm = nn.NewNormalizer([]float64{1, 1e8})
	return m
}

// embedDim returns the concatenated embedding width E for this model.
func (m *Model) embedDim() int { return m.eOp + m.eMeta + m.eBm + m.ePred }

// NumParams returns the number of scalar parameters.
func (m *Model) NumParams() int { return m.PS.NumParams() }

// modelMagic prefixes versioned checkpoint files. Legacy files (written
// before checkpoints carried a header) start directly with the gob stream of
// the parameter payload and are still readable; they simply lack normalizer
// state.
const modelMagic = "COSTESTM"

// modelCheckpointVersion is the current checkpoint format version. Version 2
// added the header itself with the cost/cardinality target normalizers;
// version 1 is the headerless legacy format.
const modelCheckpointVersion = 2

// modelHeader is the versioned checkpoint header: everything a round-tripped
// model needs beyond the weights to reproduce bit-identical estimates. The
// target normalizers used to be silently dropped, leaving a loaded model
// misestimating until FitNormalizers was re-run.
type modelHeader struct {
	Version  int
	CostNorm nn.Normalizer
	CardNorm nn.Normalizer
}

// Save serializes a versioned checkpoint: a magic prefix, a header carrying
// the target normalizers, then the parameter values. Weights and normalizers
// round-trip; Config and the feature encoder are construction-time inputs
// and must still be persisted alongside by the caller.
func (m *Model) Save(w io.Writer) error {
	if _, err := io.WriteString(w, modelMagic); err != nil {
		return fmt.Errorf("core: write checkpoint magic: %w", err)
	}
	enc := gob.NewEncoder(w)
	hdr := modelHeader{Version: modelCheckpointVersion, CostNorm: m.CostNorm, CardNorm: m.CardNorm}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("core: encode checkpoint header: %w", err)
	}
	return m.PS.EncodeGob(enc)
}

// Load restores a checkpoint saved by Save into an identically configured
// model, including the target normalizers, so a round-tripped model
// estimates bit-identically with no FitNormalizers re-run. Files written by
// the headerless legacy format still load (weights only — the caller keeps
// owning normalizer state for those, as before). Mismatched or truncated
// payloads return an error without silently corrupting weights.
func (m *Model) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(len(modelMagic))
	if err != nil || string(prefix) != modelMagic {
		// Legacy headerless checkpoint: the stream is the bare parameter
		// payload. (A file shorter than the magic can only be a corrupt or
		// legacy stream; the param decode produces the descriptive error.)
		return m.PS.Load(br)
	}
	if _, err := br.Discard(len(modelMagic)); err != nil {
		return fmt.Errorf("core: read checkpoint magic: %w", err)
	}
	dec := gob.NewDecoder(br)
	var hdr modelHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("core: decode checkpoint header: %w", err)
	}
	if hdr.Version < 2 || hdr.Version > modelCheckpointVersion {
		return fmt.Errorf("core: unsupported checkpoint version %d (supported: 2..%d)",
			hdr.Version, modelCheckpointVersion)
	}
	if err := m.PS.DecodeGob(dec); err != nil {
		return err
	}
	m.CostNorm, m.CardNorm = hdr.CostNorm, hdr.CardNorm
	return nil
}
