package core

import (
	"bytes"
	"testing"
)

// TestModelCheckpointRoundTrip is the persistence acceptance gate: for every
// architecture variant, a trained model saved and loaded into a freshly
// constructed model (normalizers deliberately NOT copied by hand) must
// produce bit-identical estimates — the versioned checkpoint header carries
// the target normalizers, so no FitNormalizers re-run is needed.
func TestModelCheckpointRoundTrip(t *testing.T) {
	eps := benchCorpus(t, 10)
	for _, variant := range sessionVariants {
		cfg := TestConfig()
		variant.mod(&cfg)
		m := New(cfg, testEnc)
		tr := NewTrainer(m)
		tr.FitNormalizers(eps)
		tr.TrainEpochBatched(eps, 4, 1)

		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", variant.name, err)
		}
		m2 := New(cfg, testEnc) // default normalizers; Load must restore them
		if err := m2.Load(&buf); err != nil {
			t.Fatalf("%s: load: %v", variant.name, err)
		}
		if m2.CostNorm != m.CostNorm || m2.CardNorm != m.CardNorm {
			t.Fatalf("%s: normalizers did not round-trip: cost %+v vs %+v, card %+v vs %+v",
				variant.name, m2.CostNorm, m.CostNorm, m2.CardNorm, m.CardNorm)
		}
		for i, ep := range eps {
			c1, d1 := m.Estimate(ep)
			c2, d2 := m2.Estimate(ep)
			if c1 != c2 || d1 != d2 {
				t.Fatalf("%s plan %d: loaded model estimates (%g,%g), original (%g,%g)",
					variant.name, i, c2, d2, c1, d1)
			}
		}
	}
}

// TestModelLoadLegacyFormat keeps old checkpoint files readable: a stream
// written by the headerless parameter-only format (ParamSet.Save, what
// Model.Save used to emit) still loads the weights; normalizer state stays
// with the caller, exactly as before.
func TestModelLoadLegacyFormat(t *testing.T) {
	eps := benchCorpus(t, 8)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	tr.TrainEpochBatched(eps, 4, 1)

	var legacy bytes.Buffer
	if err := m.PS.Save(&legacy); err != nil { // the pre-header wire format
		t.Fatal(err)
	}
	m2 := New(cfg, testEnc)
	defCost, defCard := m2.CostNorm, m2.CardNorm
	if err := m2.Load(&legacy); err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if m2.CostNorm != defCost || m2.CardNorm != defCard {
		t.Fatal("legacy load touched normalizers (legacy files carry none)")
	}
	m2.CostNorm, m2.CardNorm = m.CostNorm, m.CardNorm
	for i, ep := range eps {
		c1, d1 := m.Estimate(ep)
		c2, d2 := m2.Estimate(ep)
		if c1 != c2 || d1 != d2 {
			t.Fatalf("plan %d: legacy-loaded estimates (%g,%g), original (%g,%g)", i, c2, d2, c1, d1)
		}
	}
}

// TestModelLoadErrors drives the corrupt-input paths: truncated headers,
// truncated parameter payloads, garbage bytes and checkpoints from a
// differently dimensioned model must all fail with an error and leave the
// receiving model's weights and estimates untouched.
func TestModelLoadErrors(t *testing.T) {
	eps := benchCorpus(t, 6)
	cfg := TestConfig()
	src := New(cfg, testEnc)
	tr := NewTrainer(src)
	tr.FitNormalizers(eps)
	tr.TrainEpochBatched(eps, 4, 1)
	var good bytes.Buffer
	if err := src.Save(&good); err != nil {
		t.Fatal(err)
	}
	full := good.Bytes()

	type est struct{ cost, card float64 }
	target := New(cfg, testEnc)
	before := make([]est, len(eps))
	for i, ep := range eps {
		c, d := target.Estimate(ep)
		before[i] = est{c, d}
	}
	checkUntouched := func(label string) {
		t.Helper()
		for i, ep := range eps {
			c, d := target.Estimate(ep)
			if c != before[i].cost || d != before[i].card {
				t.Fatalf("%s: failed load mutated the model (plan %d)", label, i)
			}
		}
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated-magic", full[:4]},
		{"truncated-header", full[:len(modelMagic)+3]},
		{"truncated-params", full[:len(full)*3/4]},
		{"garbage", []byte("COSTESTMnot a gob stream at all....")},
	}
	for _, tc := range cases {
		if err := target.Load(bytes.NewReader(tc.data)); err == nil {
			t.Fatalf("%s: Load succeeded on corrupt input", tc.name)
		}
		checkUntouched(tc.name)
	}

	// A checkpoint from a differently dimensioned model: shape mismatch.
	bigCfg := cfg
	bigCfg.Hidden *= 2
	big := New(bigCfg, testEnc)
	var bigBuf bytes.Buffer
	if err := big.Save(&bigBuf); err != nil {
		t.Fatal(err)
	}
	if err := target.Load(&bigBuf); err == nil {
		t.Fatal("Load succeeded across mismatched model dimensions")
	}
	checkUntouched("dim-mismatch")

	// A checkpoint from a different architecture (different parameter set).
	lstmCfg := cfg
	lstmCfg.Pred = PredLSTM
	other := New(lstmCfg, testEnc)
	var otherBuf bytes.Buffer
	if err := other.Save(&otherBuf); err != nil {
		t.Fatal(err)
	}
	if err := target.Load(&otherBuf); err == nil {
		t.Fatal("Load succeeded across mismatched architectures")
	}
	checkUntouched("arch-mismatch")

	// After all the failures, the good checkpoint still loads.
	if err := target.Load(bytes.NewReader(full)); err != nil {
		t.Fatalf("good checkpoint failed after corrupt attempts: %v", err)
	}
	for i, ep := range eps {
		c, d := target.Estimate(ep)
		sc, sd := src.Estimate(ep)
		if c != sc || d != sd {
			t.Fatalf("plan %d: recovered load disagrees with source", i)
		}
	}
}
