package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"costest/internal/feature"
	"costest/internal/strembed"
)

// TestModelCheckpointRoundTrip is the persistence acceptance gate: for every
// architecture variant, a trained model saved and loaded into a freshly
// constructed model (normalizers deliberately NOT copied by hand) must
// produce bit-identical estimates — the versioned checkpoint header carries
// the target normalizers, so no FitNormalizers re-run is needed.
func TestModelCheckpointRoundTrip(t *testing.T) {
	eps := benchCorpus(t, 10)
	for _, variant := range sessionVariants {
		cfg := TestConfig()
		variant.mod(&cfg)
		m := New(cfg, testEnc)
		tr := NewTrainer(m)
		tr.FitNormalizers(eps)
		tr.TrainEpochBatched(eps, 4, 1)

		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", variant.name, err)
		}
		m2 := New(cfg, testEnc) // default normalizers; Load must restore them
		if err := m2.Load(&buf); err != nil {
			t.Fatalf("%s: load: %v", variant.name, err)
		}
		if m2.CostNorm != m.CostNorm || m2.CardNorm != m.CardNorm {
			t.Fatalf("%s: normalizers did not round-trip: cost %+v vs %+v, card %+v vs %+v",
				variant.name, m2.CostNorm, m.CostNorm, m2.CardNorm, m.CardNorm)
		}
		for i, ep := range eps {
			c1, d1 := m.Estimate(ep)
			c2, d2 := m2.Estimate(ep)
			if c1 != c2 || d1 != d2 {
				t.Fatalf("%s plan %d: loaded model estimates (%g,%g), original (%g,%g)",
					variant.name, i, c2, d2, c1, d1)
			}
		}
	}
}

// TestModelLoadLegacyFormat keeps old checkpoint files readable: a stream
// written by the headerless parameter-only format (ParamSet.Save, what
// Model.Save used to emit) still loads the weights; normalizer state stays
// with the caller, exactly as before.
func TestModelLoadLegacyFormat(t *testing.T) {
	eps := benchCorpus(t, 8)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	tr.TrainEpochBatched(eps, 4, 1)

	var legacy bytes.Buffer
	if err := m.PS.Save(&legacy); err != nil { // the pre-header wire format
		t.Fatal(err)
	}
	m2 := New(cfg, testEnc)
	defCost, defCard := m2.CostNorm, m2.CardNorm
	if err := m2.Load(&legacy); err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if m2.CostNorm != defCost || m2.CardNorm != defCard {
		t.Fatal("legacy load touched normalizers (legacy files carry none)")
	}
	m2.CostNorm, m2.CardNorm = m.CostNorm, m.CardNorm
	for i, ep := range eps {
		c1, d1 := m.Estimate(ep)
		c2, d2 := m2.Estimate(ep)
		if c1 != c2 || d1 != d2 {
			t.Fatalf("plan %d: legacy-loaded estimates (%g,%g), original (%g,%g)", i, c2, d2, c1, d1)
		}
	}
}

// TestModelLoadErrors drives the corrupt-input paths: truncated headers,
// truncated parameter payloads, garbage bytes and checkpoints from a
// differently dimensioned model must all fail with an error and leave the
// receiving model's weights and estimates untouched.
func TestModelLoadErrors(t *testing.T) {
	eps := benchCorpus(t, 6)
	cfg := TestConfig()
	src := New(cfg, testEnc)
	tr := NewTrainer(src)
	tr.FitNormalizers(eps)
	tr.TrainEpochBatched(eps, 4, 1)
	var good bytes.Buffer
	if err := src.Save(&good); err != nil {
		t.Fatal(err)
	}
	full := good.Bytes()

	type est struct{ cost, card float64 }
	target := New(cfg, testEnc)
	before := make([]est, len(eps))
	for i, ep := range eps {
		c, d := target.Estimate(ep)
		before[i] = est{c, d}
	}
	checkUntouched := func(label string) {
		t.Helper()
		for i, ep := range eps {
			c, d := target.Estimate(ep)
			if c != before[i].cost || d != before[i].card {
				t.Fatalf("%s: failed load mutated the model (plan %d)", label, i)
			}
		}
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated-magic", full[:4]},
		{"truncated-header", full[:len(modelMagic)+3]},
		{"truncated-params", full[:len(full)*3/4]},
		{"garbage", []byte("COSTESTMnot a gob stream at all....")},
	}
	for _, tc := range cases {
		if err := target.Load(bytes.NewReader(tc.data)); err == nil {
			t.Fatalf("%s: Load succeeded on corrupt input", tc.name)
		}
		checkUntouched(tc.name)
	}

	// A checkpoint from a differently dimensioned model: shape mismatch.
	bigCfg := cfg
	bigCfg.Hidden *= 2
	big := New(bigCfg, testEnc)
	var bigBuf bytes.Buffer
	if err := big.Save(&bigBuf); err != nil {
		t.Fatal(err)
	}
	if err := target.Load(&bigBuf); err == nil {
		t.Fatal("Load succeeded across mismatched model dimensions")
	}
	checkUntouched("dim-mismatch")

	// A checkpoint from a different architecture (different parameter set).
	lstmCfg := cfg
	lstmCfg.Pred = PredLSTM
	other := New(lstmCfg, testEnc)
	var otherBuf bytes.Buffer
	if err := other.Save(&otherBuf); err != nil {
		t.Fatal(err)
	}
	if err := target.Load(&otherBuf); err == nil {
		t.Fatal("Load succeeded across mismatched architectures")
	}
	checkUntouched("arch-mismatch")

	// After all the failures, the good checkpoint still loads.
	if err := target.Load(bytes.NewReader(full)); err != nil {
		t.Fatalf("good checkpoint failed after corrupt attempts: %v", err)
	}
	for i, ep := range eps {
		c, d := target.Estimate(ep)
		sc, sd := src.Estimate(ep)
		if c != sc || d != sd {
			t.Fatalf("plan %d: recovered load disagrees with source", i)
		}
	}
}

// TestLoadModelSelfDescribing exercises the cold-start path: a checkpoint
// written by Save carries the Config and encoder dimensions, so LoadModel
// rebuilds the trained model from nothing but the file and a compatible
// encoder — no out-of-band hyperparameters — and estimates bit-identically.
func TestLoadModelSelfDescribing(t *testing.T) {
	eps := benchCorpus(t, 8)
	for _, variant := range sessionVariants {
		cfg := TestConfig()
		variant.mod(&cfg)
		m := New(cfg, testEnc)
		tr := NewTrainer(m)
		tr.FitNormalizers(eps)
		tr.TrainEpochBatched(eps, 4, 1)

		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", variant.name, err)
		}
		m2, err := LoadModel(&buf, testEnc)
		if err != nil {
			t.Fatalf("%s: LoadModel: %v", variant.name, err)
		}
		if m2.Cfg != cfg {
			t.Fatalf("%s: persisted config did not round-trip: %+v vs %+v", variant.name, m2.Cfg, cfg)
		}
		for i, ep := range eps {
			c1, d1 := m.Estimate(ep)
			c2, d2 := m2.Estimate(ep)
			if c1 != c2 || d1 != d2 {
				t.Fatalf("%s plan %d: cold-loaded model estimates (%g,%g), original (%g,%g)",
					variant.name, i, c2, d2, c1, d1)
			}
		}
	}
}

// TestLoadModelRejectsIncompatible pins LoadModel's validation: encoders
// whose feature dimensions differ from the checkpoint's, legacy headerless
// streams, and pre-config (version 2) headers all fail with descriptive
// errors instead of shape panics.
func TestLoadModelRejectsIncompatible(t *testing.T) {
	eps := benchCorpus(t, 6)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// A different string-embedding width changes AtomDim.
	narrowEnc := feature.NewEncoder(testCat, strembed.HashEmbedder{DimN: 6}, true)
	if _, err := LoadModel(bytes.NewReader(good), narrowEnc); err == nil {
		t.Fatal("LoadModel accepted an encoder with a mismatched atom width")
	}
	// Disabling the sample bitmap changes BitmapDim.
	noBmEnc := feature.NewEncoder(testCat, strembed.HashEmbedder{DimN: 12}, false)
	if _, err := LoadModel(bytes.NewReader(good), noBmEnc); err == nil {
		t.Fatal("LoadModel accepted an encoder without the checkpoint's sample bitmap")
	}

	// Legacy headerless stream: no config to rebuild from.
	var legacy bytes.Buffer
	if err := m.PS.Save(&legacy); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(&legacy, testEnc); err == nil {
		t.Fatal("LoadModel accepted a headerless legacy stream")
	}

	// A version-2 header (pre-config): hand-built the way Save used to write.
	var v2 bytes.Buffer
	v2.WriteString(modelMagic)
	enc := gob.NewEncoder(&v2)
	if err := enc.Encode(modelHeader{Version: 2, CostNorm: m.CostNorm, CardNorm: m.CardNorm}); err != nil {
		t.Fatal(err)
	}
	if err := m.PS.EncodeGob(enc); err != nil {
		t.Fatal(err)
	}
	v2bytes := v2.Bytes()
	if _, err := LoadModel(bytes.NewReader(v2bytes), testEnc); err == nil {
		t.Fatal("LoadModel accepted a version-2 header with no config")
	}
	// ...but Model.Load still reads it (legacy compatibility).
	m3 := New(cfg, testEnc)
	if err := m3.Load(bytes.NewReader(v2bytes)); err != nil {
		t.Fatalf("Model.Load rejected a version-2 checkpoint: %v", err)
	}
	if m3.CostNorm != m.CostNorm || m3.CardNorm != m.CardNorm {
		t.Fatal("version-2 normalizers did not round-trip through Model.Load")
	}

	// The good checkpoint still cold-loads after all the failures.
	if _, err := LoadModel(bytes.NewReader(good), testEnc); err != nil {
		t.Fatalf("good checkpoint failed to cold-load: %v", err)
	}
}
