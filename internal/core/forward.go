package core

import (
	"costest/internal/feature"
	"costest/internal/nn"
	"costest/internal/tensor"
)

// predState caches one predicate-tree node's forward pass. Its buffers are
// allocated lazily the first time an arena slot is used and reused across
// calls.
type predState struct {
	out []float64
	// cell is set for the tree-LSTM predicate variant.
	cell *cellState
}

// nodeState caches one plan node's forward pass. Slots live in an
// InferenceSession and every buffer is owned by the slot; only g/r may be
// re-pointed at pooled representations on a memory-pool hit.
type nodeState struct {
	opOut, metaOut, bmOut []float64
	pred                  []*predState // aligned with Pred.Nodes
	predOut               []float64    // root predicate embedding (zero when no predicate)
	e                     []float64    // concatenated embedding E

	cell     *cellState // RepLSTM
	nnZ      []float64  // RepNN input [E, Rl, Rr]
	nnR, nnG []float64  // RepNN owned outputs
	g, r     []float64  // representation views (owned buffers or pooled slices)

	// Estimation head caches (populated when the head is evaluated).
	costHOut, cardHOut []float64
	costS, cardS       float64
}

// Estimate runs the model over an encoded plan using a session drawn from
// the model's internal pool, so concurrent callers each get private
// buffers. Optimizer loops that call per-plan estimation at high rates
// should hold their own NewSession and call its Estimate directly.
func (m *Model) Estimate(ep *feature.EncodedPlan) (cost, card float64) {
	s := m.session()
	cost, card = s.Estimate(ep)
	m.sessions.Put(s)
	return cost, card
}

// EstimateWithPool is Estimate with a representation memory pool: sub-plans
// already in the pool reuse their stored representations, and new sub-plan
// representations are inserted (the paper's online workflow, Section 3).
func (m *Model) EstimateWithPool(ep *feature.EncodedPlan, pool *MemoryPool) (cost, card float64) {
	s := m.session()
	cost, card = s.EstimateWithPool(ep, pool)
	m.sessions.Put(s)
	return cost, card
}

// session fetches a reusable inference session from the model's pool.
func (m *Model) session() *InferenceSession {
	if s, ok := m.sessions.Get().(*InferenceSession); ok {
		return s
	}
	return NewSession(m)
}

// forwardTrain runs a training forward pass in a fresh session and returns
// it holding the per-node states (the caller keeps it for backward). The
// Trainer reuses its own session instead; this helper serves one-off
// callers, so it deliberately does not draw from the Estimate session pool.
func (m *Model) forwardTrain(ep *feature.EncodedPlan) *InferenceSession {
	s := NewSession(m)
	s.forwardTrain(ep)
	return s
}

// forwardNode evaluates the subtree rooted at idx and returns its state.
func (s *InferenceSession) forwardNode(ep *feature.EncodedPlan, idx int, pool *MemoryPool) *nodeState {
	m := s.m
	node := &ep.Nodes[idx]
	ns := &s.nodes[idx]
	s.visited[idx] = true
	ns.pred = nil

	if pool != nil {
		if g, r, ok := pool.GetGen(node.Sig, s.poolGen); ok {
			ns.g, ns.r = g, r
			return ns
		}
	}

	var gl, rl, gr, rr []float64
	if node.Left >= 0 {
		c := s.forwardNode(ep, node.Left, pool)
		gl, rl = c.g, c.r
	}
	if node.Right >= 0 {
		c := s.forwardNode(ep, node.Right, pool)
		gr, rr = c.g, c.r
	}

	s.embedNode(node, ns)

	switch m.Cfg.Rep {
	case RepLSTM:
		m.repCell.forward(ns.cell, ns.e, gl, rl, gr, rr)
		ns.g, ns.r = ns.cell.g, ns.cell.rOut
	case RepNN:
		// Naive unit: R = ReLU(W·[E, Rl, Rr] + b); no long-memory channel.
		de := m.embedDim()
		dh := m.Cfg.Hidden
		copy(ns.nnZ, ns.e)
		if rl != nil {
			copy(ns.nnZ[de:de+dh], rl)
		} else {
			tensor.ZeroVec(ns.nnZ[de : de+dh])
		}
		if rr != nil {
			copy(ns.nnZ[de+dh:], rr)
		} else {
			tensor.ZeroVec(ns.nnZ[de+dh:])
		}
		m.repNN.Forward(ns.nnR, ns.nnZ)
		nn.ReLU(ns.nnR, ns.nnR)
		ns.g, ns.r = ns.nnG, ns.nnR
	}

	if pool != nil {
		pool.PutGen(node.Sig, ns.g, ns.r, s.poolGen)
	}
	return ns
}

// embedNode runs the embedding layer for one plan node into the node slot's
// buffers.
func (s *InferenceSession) embedNode(node *feature.EncodedNode, ns *nodeState) {
	m := s.m
	// One-hot and bitmap features are sparse: visit only the weight columns
	// of their set bits (the same kernel the batch path uses). A nil bitmap
	// is an all-zero input, which reduces to the bias.
	sparseLinearReLU(ns.opOut, m.opL, node.Op)
	sparseLinearReLU(ns.metaOut, m.metaL, node.Meta)
	if m.bmL != nil {
		if node.Bitmap != nil {
			sparseLinearReLU(ns.bmOut, m.bmL, node.Bitmap)
		} else {
			biasReLU(ns.bmOut, m.bmL)
		}
	}

	if !node.Pred.Empty() {
		ns.pred = s.takePreds(len(node.Pred.Nodes))
		root := s.forwardPred(&node.Pred, 0, ns)
		copy(ns.predOut, root)
	} else {
		tensor.ZeroVec(ns.predOut)
	}

	if m.bmL != nil {
		tensor.Concat(ns.e, ns.opOut, ns.metaOut, ns.bmOut, ns.predOut)
	} else {
		tensor.Concat(ns.e, ns.opOut, ns.metaOut, ns.predOut)
	}
}

// forwardPred embeds the predicate subtree at pidx, returning its vector.
func (s *InferenceSession) forwardPred(ep *feature.EncodedPred, pidx int, ns *nodeState) []float64 {
	m := s.m
	pn := &ep.Nodes[pidx]
	ps := ns.pred[pidx]

	switch m.Cfg.Pred {
	case PredPool, PredPoolMean:
		if ps.out == nil {
			ps.out = make([]float64, m.ePred)
		}
		if pn.IsLeaf {
			// Leaf: W_p·x + b_p (linear, per the paper's formulation).
			m.predLeaf.Forward(ps.out, pn.Vec)
			return ps.out
		}
		l := s.forwardPred(ep, pn.Left, ns)
		r := s.forwardPred(ep, pn.Right, ns)
		switch {
		case m.Cfg.Pred == PredPoolMean: // ablation: connective-blind mean
			tensor.Mean(ps.out, l, r)
		case pn.Bool == 0: // AND → min pooling
			tensor.MinInto(ps.out, l, r)
		default: // OR → max pooling
			tensor.MaxInto(ps.out, l, r)
		}
		return ps.out
	default: // PredLSTM: run the cell over the predicate tree.
		var gl, rl, gr, rr []float64
		if pn.Left >= 0 {
			s.forwardPred(ep, pn.Left, ns)
			c := ns.pred[pn.Left].cell
			gl, rl = c.g, c.rOut
		}
		if pn.Right >= 0 {
			s.forwardPred(ep, pn.Right, ns)
			c := ns.pred[pn.Right].cell
			gr, rr = c.g, c.rOut
		}
		if ps.cell == nil {
			ps.cell = m.predCell.newState()
		}
		m.predCell.forward(ps.cell, pn.Vec, gl, rl, gr, rr)
		ps.out = ps.cell.rOut
		return ps.out
	}
}

// forwardHeads evaluates the estimation layer on a node's representation,
// caching the hidden activations in the slot for backward.
func (s *InferenceSession) forwardHeads(ns *nodeState) {
	m := s.m
	m.costH.Forward(ns.costHOut, ns.r)
	nn.ReLU(ns.costHOut, ns.costHOut)
	out := s.out1
	m.costO.Forward(out, ns.costHOut)
	nn.Sigmoid(out, out)
	ns.costS = out[0]

	m.cardH.Forward(ns.cardHOut, ns.r)
	nn.ReLU(ns.cardHOut, ns.cardHOut)
	m.cardO.Forward(out, ns.cardHOut)
	nn.Sigmoid(out, out)
	ns.cardS = out[0]
}
