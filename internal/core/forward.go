package core

import (
	"costest/internal/feature"
	"costest/internal/nn"
	"costest/internal/tensor"
)

// predState caches one predicate-tree node's forward pass.
type predState struct {
	out []float64
	// cell is set for the tree-LSTM predicate variant.
	cell *cellState
}

// nodeState caches one plan node's forward pass.
type nodeState struct {
	opOut, metaOut, bmOut []float64
	pred                  []*predState // aligned with Pred.Nodes
	predOut               []float64    // root predicate embedding (zero when no predicate)
	e                     []float64    // concatenated embedding E

	cell *cellState // RepLSTM
	nnZ  []float64  // RepNN input [E, Rl, Rr]
	g, r []float64  // representation outputs (views into cell or owned)

	// Estimation head caches (populated when the head is evaluated).
	costHOut, cardHOut []float64
	costS, cardS       float64
}

// planState is the forward cache for one encoded plan.
type planState struct {
	nodes []*nodeState
}

// Estimate runs the model over an encoded plan and returns denormalized
// estimates: the cost at the root, and the cardinality at the topmost
// non-aggregate node (aggregates always emit one row, so the query's
// cardinality is defined below them).
func (m *Model) Estimate(ep *feature.EncodedPlan) (cost, card float64) {
	st := m.forward(ep, nil)
	return m.readEstimates(ep, st, nil)
}

// EstimateWithPool is Estimate with a representation memory pool: sub-plans
// already in the pool reuse their stored representations, and new sub-plan
// representations are inserted (the paper's online workflow, Section 3).
func (m *Model) EstimateWithPool(ep *feature.EncodedPlan, pool *MemoryPool) (cost, card float64) {
	st := m.forward(ep, pool)
	return m.readEstimates(ep, st, pool)
}

// forward computes representations bottom-up. When pool is non-nil, node
// representations are fetched/stored by subtree signature.
func (m *Model) forward(ep *feature.EncodedPlan, pool *MemoryPool) *planState {
	st := &planState{nodes: make([]*nodeState, len(ep.Nodes))}
	m.forwardNode(ep, ep.Root, st, pool)
	return st
}

// readEstimates evaluates the heads at the root (cost) and the cardinality
// node (card). When the cardinality node was skipped because an enclosing
// sub-plan came from the pool, its representation is fetched by signature.
func (m *Model) readEstimates(ep *feature.EncodedPlan, st *planState, pool *MemoryPool) (cost, card float64) {
	root := st.nodes[ep.Root]
	m.forwardHeads(root)
	cardNS := root
	if ep.CardNode != ep.Root {
		cardNS = st.nodes[ep.CardNode]
		if cardNS == nil && pool != nil {
			if _, r, ok := pool.Get(ep.Nodes[ep.CardNode].Sig); ok {
				cardNS = &nodeState{r: r}
			}
		}
		if cardNS == nil {
			cardNS = root // should not happen; degrade gracefully
		}
		if cardNS != root {
			m.forwardHeads(cardNS)
		}
	}
	return m.CostNorm.Denormalize(root.costS), m.CardNorm.Denormalize(cardNS.cardS)
}

// forwardNode evaluates the subtree rooted at idx and returns its state.
func (m *Model) forwardNode(ep *feature.EncodedPlan, idx int, st *planState, pool *MemoryPool) *nodeState {
	node := &ep.Nodes[idx]
	ns := &nodeState{}
	st.nodes[idx] = ns

	if pool != nil {
		if g, r, ok := pool.Get(node.Sig); ok {
			ns.g, ns.r = g, r
			return ns
		}
	}

	var gl, rl, gr, rr []float64
	if node.Left >= 0 {
		c := m.forwardNode(ep, node.Left, st, pool)
		gl, rl = c.g, c.r
	}
	if node.Right >= 0 {
		c := m.forwardNode(ep, node.Right, st, pool)
		gr, rr = c.g, c.r
	}

	m.embedNode(node, ns)

	switch m.Cfg.Rep {
	case RepLSTM:
		ns.cell = m.repCell.newState()
		m.repCell.forward(ns.cell, ns.e, gl, rl, gr, rr)
		ns.g, ns.r = ns.cell.g, ns.cell.rOut
	case RepNN:
		// Naive unit: R = ReLU(W·[E, Rl, Rr] + b); no long-memory channel.
		ns.nnZ = make([]float64, m.embedDim()+2*m.Cfg.Hidden)
		copy(ns.nnZ, ns.e)
		if rl != nil {
			copy(ns.nnZ[m.embedDim():], rl)
		}
		if rr != nil {
			copy(ns.nnZ[m.embedDim()+m.Cfg.Hidden:], rr)
		}
		ns.r = make([]float64, m.Cfg.Hidden)
		m.repNN.Forward(ns.r, ns.nnZ)
		nn.ReLU(ns.r, ns.r)
		ns.g = make([]float64, m.Cfg.Hidden) // unused channel stays zero
	}

	if pool != nil {
		pool.Put(node.Sig, ns.g, ns.r)
	}
	return ns
}

// embedNode runs the embedding layer for one plan node.
func (m *Model) embedNode(node *feature.EncodedNode, ns *nodeState) {
	ns.opOut = make([]float64, m.eOp)
	m.opL.Forward(ns.opOut, node.Op)
	nn.ReLU(ns.opOut, ns.opOut)

	ns.metaOut = make([]float64, m.eMeta)
	m.metaL.Forward(ns.metaOut, node.Meta)
	nn.ReLU(ns.metaOut, ns.metaOut)

	if m.bmL != nil {
		ns.bmOut = make([]float64, m.eBm)
		bm := node.Bitmap
		if bm == nil {
			bm = make([]float64, m.Enc.BitmapDim())
		}
		m.bmL.Forward(ns.bmOut, bm)
		nn.ReLU(ns.bmOut, ns.bmOut)
	}

	ns.predOut = make([]float64, m.ePred)
	if !node.Pred.Empty() {
		ns.pred = make([]*predState, len(node.Pred.Nodes))
		root := m.forwardPred(&node.Pred, 0, ns)
		copy(ns.predOut, root)
	}

	ns.e = make([]float64, m.embedDim())
	if m.bmL != nil {
		tensor.Concat(ns.e, ns.opOut, ns.metaOut, ns.bmOut, ns.predOut)
	} else {
		tensor.Concat(ns.e, ns.opOut, ns.metaOut, ns.predOut)
	}
}

// forwardPred embeds the predicate subtree at pidx, returning its vector.
func (m *Model) forwardPred(ep *feature.EncodedPred, pidx int, ns *nodeState) []float64 {
	pn := &ep.Nodes[pidx]
	ps := &predState{}
	ns.pred[pidx] = ps

	switch m.Cfg.Pred {
	case PredPool, PredPoolMean:
		if pn.IsLeaf {
			// Leaf: W_p·x + b_p (linear, per the paper's formulation).
			ps.out = make([]float64, m.ePred)
			m.predLeaf.Forward(ps.out, pn.Vec)
			return ps.out
		}
		l := m.forwardPred(ep, pn.Left, ns)
		r := m.forwardPred(ep, pn.Right, ns)
		ps.out = make([]float64, m.ePred)
		switch {
		case m.Cfg.Pred == PredPoolMean: // ablation: connective-blind mean
			tensor.Mean(ps.out, l, r)
		case pn.Bool == 0: // AND → min pooling
			tensor.MinInto(ps.out, l, r)
		default: // OR → max pooling
			tensor.MaxInto(ps.out, l, r)
		}
		return ps.out
	default: // PredLSTM: run the cell over the predicate tree.
		var gl, rl, gr, rr []float64
		if pn.Left >= 0 {
			m.forwardPred(ep, pn.Left, ns)
			c := ns.pred[pn.Left].cell
			gl, rl = c.g, c.rOut
		}
		if pn.Right >= 0 {
			m.forwardPred(ep, pn.Right, ns)
			c := ns.pred[pn.Right].cell
			gr, rr = c.g, c.rOut
		}
		ps.cell = m.predCell.newState()
		m.predCell.forward(ps.cell, pn.Vec, gl, rl, gr, rr)
		ps.out = ps.cell.rOut
		return ps.out
	}
}

// forwardHeads evaluates the estimation layer on a node's representation.
func (m *Model) forwardHeads(ns *nodeState) {
	ns.costHOut = make([]float64, m.Cfg.EstHidden)
	m.costH.Forward(ns.costHOut, ns.r)
	nn.ReLU(ns.costHOut, ns.costHOut)
	out := []float64{0}
	m.costO.Forward(out, ns.costHOut)
	nn.Sigmoid(out, out)
	ns.costS = out[0]

	ns.cardHOut = make([]float64, m.Cfg.EstHidden)
	m.cardH.Forward(ns.cardHOut, ns.r)
	nn.ReLU(ns.cardHOut, ns.cardHOut)
	m.cardO.Forward(out, ns.cardHOut)
	nn.Sigmoid(out, out)
	ns.cardS = out[0]
}
