package core

import "fmt"

// ModelSnapshot is an immutable, versioned copy of a model's weights and
// target normalizers — the unit of publication for hot-swap serving. A
// snapshot owns a private Model (its own ParamSet, deep-copied at
// construction) that shares only the read-only feature encoder with the
// source, so the trainer can keep mutating its live weights while every
// goroutine holding the snapshot reads a frozen, torn-write-free view.
//
// Snapshots are created by Server.Publish (or NewServer) and must never be
// mutated: the serving invariant — any estimate served at version V is
// bit-identical to a single-threaded evaluation of V's weights — depends on
// it.
type ModelSnapshot struct {
	version uint64
	model   *Model
}

// newSnapshot deep-copies src's parameter values and normalizers into a
// fresh model wired to the same encoder. The copy runs on the caller's
// goroutine, so callers must not mutate src concurrently (the Trainer
// publishes between epochs, where this holds by construction).
func newSnapshot(src *Model, version uint64) *ModelSnapshot {
	dst := New(src.Cfg, src.Enc)
	sp, dp := src.PS.Params(), dst.PS.Params()
	if len(sp) != len(dp) {
		panic(fmt.Sprintf("core: snapshot parameter count mismatch: %d vs %d", len(sp), len(dp)))
	}
	for i := range sp {
		if sp[i].Name != dp[i].Name {
			panic(fmt.Sprintf("core: snapshot parameter order mismatch: %q vs %q", sp[i].Name, dp[i].Name))
		}
		copy(dp[i].Value, sp[i].Value)
	}
	dst.CostNorm, dst.CardNorm = src.CostNorm, src.CardNorm
	return &ModelSnapshot{version: version, model: dst}
}

// Version returns the snapshot's publication version. Versions start at 1
// (NewServer's initial snapshot) and increase by one per publish; they
// double as the memory-pool generation for entries computed under this
// snapshot.
func (s *ModelSnapshot) Version() uint64 { return s.version }

// Model returns the snapshot's frozen model. Callers may evaluate it (its
// own Estimate/EstimateBatch, NewSession, ValidationError) but must treat
// the weights as read-only; training against a snapshot model breaks the
// immutability every concurrent reader relies on.
func (s *ModelSnapshot) Model() *Model { return s.model }
