package core

import (
	"fmt"
	"sync/atomic"
)

// ModelSnapshot is an immutable, versioned copy of a model's weights and
// target normalizers — the unit of publication for hot-swap serving. A
// snapshot owns a private Model (its own ParamSet, deep-copied at
// publication) that shares only the read-only feature encoder with the
// source, so the trainer can keep mutating its live weights while every
// goroutine holding the snapshot reads a frozen, torn-write-free view.
//
// Snapshots are created by Server.Publish / Server.PublishDelta (or
// NewServer) and are never mutated while reachable: the serving invariant —
// any estimate served at version V is bit-identical to a single-threaded
// evaluation of V's weights — depends on it. Full-copy snapshots stay
// frozen forever. Delta-published snapshots recycle their weight buffers
// (see snapshotSlot): once a delta snapshot has been superseded AND has no
// in-flight server request reading it AND was never pinned, a later
// PublishDelta may reuse its buffers. Hold a delta snapshot past the next
// publish only after calling Pin.
type ModelSnapshot struct {
	version uint64
	model   *Model

	// refs counts in-flight server requests (and pre-warm replays) reading
	// this snapshot; the acquire/release protocol in Server keeps it exact.
	// Only delta-backed snapshots are counted — full copies are frozen
	// forever, so their requests skip the two atomic adds entirely and the
	// pre-delta hot path stays a single atomic load.
	refs atomic.Int64
	// pinned marks a snapshot handed out for indefinite retention
	// (Server.Snapshot, ModelSnapshot.Pin): its buffers are never recycled.
	pinned atomic.Bool
	// deltaBacked is set at construction for delta-published snapshots and
	// never mutated, so the request path can branch on it without
	// synchronization (slot, by contrast, is harvested under the publisher
	// lock and must only be read there).
	deltaBacked bool
	// slot is the recyclable buffer set backing a delta-published snapshot;
	// nil for full-copy snapshots (and for harvested delta retirees).
	slot *snapshotSlot
}

// Version returns the snapshot's publication version. Versions start at 1
// (NewServer's initial snapshot) and increase by one per publish; they
// double as the memory-pool generation for entries computed under this
// snapshot.
func (s *ModelSnapshot) Version() uint64 { return s.version }

// Model returns the snapshot's frozen model. Callers may evaluate it (its
// own Estimate/EstimateBatch, NewSession, ValidationError) but must treat
// the weights as read-only; training against a snapshot model breaks the
// immutability every concurrent reader relies on. For delta-published
// snapshots, call Pin first if the model will be used past the next
// publish.
func (s *ModelSnapshot) Model() *Model { return s.model }

// Pin marks the snapshot for indefinite retention: its weight buffers are
// excluded from delta-publication recycling, restoring the frozen-forever
// contract of full-copy snapshots. Pinning is sticky and idempotent.
// Full-copy snapshots are implicitly pinned; calling Pin on one is a no-op.
func (s *ModelSnapshot) Pin() { s.pinned.Store(true) }

// recyclable reports whether the snapshot's slot may be reused for a new
// publication: it is delta-backed, nobody pinned it, and no request is
// mid-flight on it. Callers must already have retired it from serving (it
// is not the current snapshot).
func (s *ModelSnapshot) recyclable() bool {
	return s.slot != nil && !s.pinned.Load() && s.refs.Load() == 0
}

// newSnapshot deep-copies src's parameter values and normalizers into a
// fresh model wired to the same encoder — the full-copy publication path.
// The copy runs on the caller's goroutine, so callers must not mutate src
// concurrently (the Trainer publishes between optimizer steps, where this
// holds by construction).
func newSnapshot(src *Model, version uint64) *ModelSnapshot {
	dst := New(src.Cfg, src.Enc)
	sp, dp := src.PS.Params(), dst.PS.Params()
	if len(sp) != len(dp) {
		panic(fmt.Sprintf("core: snapshot parameter count mismatch: %d vs %d", len(sp), len(dp)))
	}
	for i := range sp {
		if sp[i].Name != dp[i].Name {
			panic(fmt.Sprintf("core: snapshot parameter order mismatch: %q vs %q", sp[i].Name, dp[i].Name))
		}
		copy(dp[i].Value, sp[i].Value)
	}
	dst.CostNorm, dst.CardNorm = src.CostNorm, src.CardNorm
	return &ModelSnapshot{version: version, model: dst}
}

// snapshotSlot is one recyclable weight-buffer set for delta publication: a
// snapshot model plus, per parameter, the source-ParamSet stamp its copy of
// that parameter reflects. Syncing a slot copies only the parameters whose
// live stamp moved past the slot's recorded stamp — everything the slot
// already holds from its previous turn in the rotation is kept as is.
//
// A server in steady-state delta publication rotates exactly two slots
// (double buffering): the slot serving as the current snapshot and the slot
// retired one publish ago, which drains and is re-synced by the next
// publish. Pinned or still-referenced retirees drop out of the rotation and
// a fresh slot takes their place.
type snapshotSlot struct {
	// src is the live model whose stamps this slot's records refer to; a
	// slot is only ever re-synced against its own source (stamps from a
	// different model's clock would make the delta comparison meaningless).
	src   *Model
	model *Model
	// stamps[i] is src.PS.Params()[i].Stamp() at this slot's last sync;
	// zero-valued for a fresh slot, which therefore full-copies (live
	// stamps are always >= 1, parameters are stamped at registration).
	stamps []uint64
}

// newSlot builds an unsynced slot for src.
func newSlot(src *Model) *snapshotSlot {
	return &snapshotSlot{
		src:    src,
		model:  New(src.Cfg, src.Enc),
		stamps: make([]uint64, len(src.PS.Params())),
	}
}

// sync brings the slot's weights up to date with src, copying only the
// parameters whose stamp advanced past the slot's record, and returns how
// many parameters were copied. Normalizers are two scalars and copy
// unconditionally. Like newSnapshot, sync reads src on the caller's
// goroutine with training quiesced.
func (sl *snapshotSlot) sync(src *Model) int {
	if src != sl.src {
		panic("core: slot re-synced against a different source model")
	}
	sp, dp := src.PS.Params(), sl.model.PS.Params()
	if len(sp) != len(dp) || len(sp) != len(sl.stamps) {
		panic(fmt.Sprintf("core: slot parameter count mismatch: %d vs %d (stamps %d)",
			len(sp), len(dp), len(sl.stamps)))
	}
	copied := 0
	for i := range sp {
		if sp[i].Name != dp[i].Name {
			panic(fmt.Sprintf("core: slot parameter order mismatch: %q vs %q", sp[i].Name, dp[i].Name))
		}
		if st := sp[i].Stamp(); st > sl.stamps[i] {
			copy(dp[i].Value, sp[i].Value)
			sl.stamps[i] = st
			copied++
		}
	}
	sl.model.CostNorm, sl.model.CardNorm = src.CostNorm, src.CardNorm
	return copied
}

// deltaPub is a Server's delta-publication state for one source model:
// retired delta snapshots awaiting drain (oldest first) and the count of
// parameters copied by the last sync (observable for tests and metrics).
type deltaPub struct {
	src        *Model
	retired    []*ModelSnapshot
	lastCopied int
}

// takeSlot returns a drained retired slot for reuse, or nil if none is
// reclaimable. Reclaimed and permanently unreclaimable (pinned) retirees
// leave the list; still-referenced ones stay for a later publish.
func (d *deltaPub) takeSlot() *snapshotSlot {
	var found *snapshotSlot
	kept := d.retired[:0]
	for _, snap := range d.retired {
		switch {
		case snap.pinned.Load(), snap.slot != nil && snap.slot.src != d.src:
			// Dropped: pinned retirees are frozen forever (like full
			// copies), and a slot synced against a different source model
			// carries stamps from the wrong clock.
		case found == nil && snap.recyclable():
			found = snap.slot
			snap.slot = nil // the snapshot object no longer owns the buffers
		default:
			kept = append(kept, snap)
		}
	}
	d.retired = kept
	return found
}
