package core

import (
	"costest/internal/feature"
	"costest/internal/nn"
	"costest/internal/tensor"
)

// This file implements the level-wise batched backward pass: the training
// counterpart of EstimateBatch. Gradients flow top-down through the same
// level structure the forward sweep used, so each level's four LSTM gate
// gradients (and the predicate-tree cell gradients) become single
// matrix-matrix products — dW += dGateᵀ·Z and dZ += dGate·W — instead of
// per-node mat-vecs, with the elementwise work spread across parallelFor
// workers. It produces gradients identical (to floating-point reassociation)
// to the recursive per-node backward in backward.go, which stays as the
// reference implementation.

// accumulateBatch runs forward + backward for one minibatch through the
// trainer's shared BatchSession, accumulating parameter gradients into
// t.M.PS and returning the summed per-sample (supervision-normalized) loss.
func (t *Trainer) accumulateBatch(eps []*feature.EncodedPlan, workers int) float64 {
	bs := t.bsess
	bs.run(eps, nil, workers, true)
	loss := t.batchLossAndGrads(bs)
	bs.backward()
	return loss
}

// batchLossAndGrads mirrors lossAndGrads over a whole minibatch: it fills
// the session's per-node dCostS/dCardS head-gradient slabs (scaled per plan
// by its supervision count) and returns the summed per-sample loss.
func (t *Trainer) batchLossAndGrads(bs *BatchSession) float64 {
	cfg := t.M.Cfg
	bs.dCostS = growSlice(bs.dCostS, bs.total)
	bs.dCardS = growSlice(bs.dCardS, bs.total)
	tensor.ZeroVec(bs.dCostS)
	tensor.ZeroVec(bs.dCardS)
	var sum float64
	for i, ep := range bs.eps {
		base := bs.offsets[i]
		var loss float64
		supervised := 0
		supCost := func(idx int, truth, weight float64) {
			l, g := t.costLoss.Eval(bs.sCost[base+idx], truth)
			loss += weight * l
			bs.dCostS[base+idx] += weight * g
			supervised++
		}
		supCard := func(idx int, truth, weight float64) {
			l, g := t.cardLoss.Eval(bs.sCard[base+idx], truth)
			loss += weight * l
			bs.dCardS[base+idx] += weight * g
			supervised++
		}
		if cfg.SubplanLoss {
			for j := range ep.Nodes {
				if cfg.Target != TargetCard {
					supCost(j, ep.Nodes[j].TrueCost, cfg.LossWeight)
				}
				if cfg.Target != TargetCost {
					supCard(j, ep.Nodes[j].TrueRows, 1)
				}
			}
		} else {
			if cfg.Target != TargetCard {
				supCost(ep.Root, ep.Cost, cfg.LossWeight)
			}
			if cfg.Target != TargetCost {
				supCard(ep.CardNode, ep.Card, 1)
			}
		}
		if supervised == 0 {
			continue
		}
		// Normalize the gradient scale by the supervision count so sub-plan
		// supervision does not inflate step sizes (matches lossAndGrads).
		scale := 1 / float64(supervised)
		for j := base; j < base+len(ep.Nodes); j++ {
			bs.dCostS[j] *= scale
			bs.dCardS[j] *= scale
		}
		sum += loss / float64(supervised)
	}
	return sum
}

// backward runs the level-wise backward pass over the state retained by the
// last training forward (run with train=true), accumulating parameter
// gradients into the model's ParamSet.
func (s *BatchSession) backward() {
	total := s.total
	s.dG = growSlice(s.dG, total*s.dh)
	s.dR = growSlice(s.dR, total*s.dh)
	s.dE = growSlice(s.dE, total*s.de)
	tensor.ZeroVec(s.dG)
	tensor.ZeroVec(s.dR)
	if len(s.items) > 0 {
		s.dPOut = growSlice(s.dPOut, len(s.items)*s.epd)
		tensor.ZeroVec(s.dPOut)
		if s.m.Cfg.Pred == PredLSTM {
			s.dPG = growSlice(s.dPG, len(s.items)*s.epd)
			tensor.ZeroVec(s.dPG)
		}
	}

	// Estimation heads first: every supervised node's head gradient lands in
	// dR before its level is swept.
	s.backwardHeadsBatch()

	// Representation levels, top-down: when level d is processed, all parents
	// (strictly higher levels) have already deposited their child gradients.
	for d := len(s.levels) - 1; d >= 0; d-- {
		if len(s.levels[d]) == 0 {
			continue
		}
		switch s.m.Cfg.Rep {
		case RepLSTM:
			s.backwardLevelLSTM(d)
		case RepNN:
			s.backwardLevelNN(d)
		}
	}

	// Embedding layer (sparse, sequential — parameter gradients are shared),
	// which also seeds each predicate tree root's upstream gradient.
	s.backwardEmbedAll()

	// Predicate trees, level by level top-down.
	s.backwardPredsBatch()
}

// backwardHeadsBatch backpropagates both estimation heads for every node in
// the batch as GEMMs over the retained hidden activations, accumulating into
// the dR slab.
func (s *BatchSession) backwardHeadsBatch() {
	m := s.m
	total := s.total
	s.dPre = growSlice(s.dPre, total)
	matInto(&s.dH, total, s.eh)
	dRv := tensor.Mat{Rows: total, Cols: s.dh, Data: s.dR[:total*s.dh]}

	for j := 0; j < total; j++ {
		sv := s.sCost[j]
		s.dPre[j] = s.dCostS[j] * sv * (1 - sv)
	}
	s.headBackOne(m.costH, m.costO, &s.hCost, &dRv)

	for j := 0; j < total; j++ {
		sv := s.sCard[j]
		s.dPre[j] = s.dCardS[j] * sv * (1 - sv)
	}
	s.headBackOne(m.cardH, m.cardO, &s.hCard, &dRv)
}

// headBackOne backpropagates one head (hidden layer h, 1-wide output layer
// o) over all nodes: s.dPre holds the per-node output-preactivation
// gradients, H the retained post-ReLU hidden activations.
func (s *BatchSession) headBackOne(h, o *nn.Linear, H, dR *tensor.Mat) {
	total := H.Rows
	dPreM := tensor.Mat{Rows: total, Cols: 1, Data: s.dPre[:total]}
	tensor.MatMulTransAInto(o.W.GradMat(), &dPreM, H)
	o.B.GradVec()[0] += tensor.Sum(s.dPre[:total])

	s.bwdH, s.bwdWo = H, o.W.Mat().Data
	s.parRun(total, s.fnHeadBack)
	tensor.MatMulTransAInto(h.W.GradMat(), &s.dH, &s.rView)
	tensor.AddColumnSums(h.B.GradVec(), &s.dH)
	tensor.AddMatMulInto(dR, &s.dH, h.W.Mat())
}

// cellGateGrads computes one node's four gate gradients and its dGprev from
// the upstream (dG, dR) and the retained forward activations — the algebra
// of lstmCell.backward (R = k2 ⊙ tanh(G); G = f⊙Gprev + k1⊙r) vectorized
// over a level. The node occupies column j of the gate-major mats (f..k2,
// each dim×n) and row slices of everything else; outputs land in the
// node-major dGate rows dfR..dk2R and dgpR. Shared by the representation
// cell and the predicate tree-LSTM level backward.
func cellGateGrads(dim, j, n int, dG, dR, tRow, gpRow []float64,
	f, k1, r, k2 *tensor.Mat, dfR, dk1R, drR, dk2R, dgpR []float64) {
	for i := 0; i < dim; i++ {
		fv := f.Data[i*n+j]
		k1v := k1.Data[i*n+j]
		rv := r.Data[i*n+j]
		k2v := k2.Data[i*n+j]
		tv := tRow[i]
		dGtot := dG[i] + dR[i]*k2v*(1-tv*tv)
		dfR[i] = dGtot * gpRow[i] * fv * (1 - fv)
		dk1R[i] = dGtot * rv * k1v * (1 - k1v)
		drR[i] = dGtot * k1v * (1 - rv*rv)
		dk2R[i] = dR[i] * tv * k2v * (1 - k2v)
		dgpR[i] = dGtot * fv
	}
}

// backwardLevelLSTM backpropagates one plan level through the
// representation cell: elementwise gate gradients per node (parallel), then
// the four gate GEMMs, then scatter of dE and the children's dG/dR halves.
// The parallel stages are the prebound fnBwdCell* kernels, reading the level
// index from s.lvi — like every forward kernel, so warm training passes
// materialize no closures.
func (s *BatchSession) backwardLevelLSTM(d int) {
	n := len(s.levels[d])
	dh, de := s.dh, s.de
	matInto(&s.dF, n, dh)
	matInto(&s.dK1, n, dh)
	matInto(&s.dRM, n, dh)
	matInto(&s.dK2, n, dh)
	matInto(&s.dGp, n, dh)
	matInto(&s.dZ, n, dh+de)
	s.lvi = d
	s.parRun(n, s.fnBwdCellGrads)

	s.dZ.Zero()
	s.m.repCell.levelBackwardGEMM(&s.dF, &s.dK1, &s.dRM, &s.dK2, &s.zt[d], &s.dZ)

	s.parRun(n, s.fnBwdCellScatter)
}

// backwardLevelNN is the RepNN counterpart: R = ReLU(W·[E, Rl, Rr] + b), so
// one masked GEMM per level, framed by the prebound fnBwdNN* kernels.
func (s *BatchSession) backwardLevelNN(d int) {
	n := len(s.levels[d])
	dh, de := s.dh, s.de
	matInto(&s.dF, n, dh) // reused as the ReLU-masked upstream gradient
	matInto(&s.dZ, n, de+2*dh)
	s.lvi = d
	s.parRun(n, s.fnBwdNNGrads)

	tensor.MatMulTransAInto(s.m.repNN.W.GradMat(), &s.dF, &s.zt[d])
	tensor.AddColumnSums(s.m.repNN.B.GradVec(), &s.dF)
	s.dZ.Zero()
	tensor.AddMatMulInto(&s.dZ, &s.dF, s.m.repNN.W.Mat())

	s.parRun(n, s.fnBwdNNScatter)
}

// backwardEmbedAll backpropagates every node's embedding sublayers. The
// one-hot/bitmap inputs are sparse, so this is a sequential sweep of cheap
// column updates into the shared weight gradients; it also seeds each
// predicate tree root's upstream gradient (the pred segment of dE).
func (s *BatchSession) backwardEmbedAll() {
	m := s.m
	de := s.de
	predSegOff := m.eOp + m.eMeta + m.eBm
	for _, it := range s.all {
		id := s.offsets[it.plan] + int(it.node)
		node := &s.eps[it.plan].Nodes[it.node]
		e := s.eOf(id)
		dERow := s.dE[id*de : (id+1)*de]
		off := 0
		dOp := dERow[off : off+m.eOp]
		nn.ReLUBackwardInPlace(dOp, e[off:off+m.eOp])
		sparseLinearBackward(m.opL, dOp, node.Op)
		off += m.eOp
		dMeta := dERow[off : off+m.eMeta]
		nn.ReLUBackwardInPlace(dMeta, e[off:off+m.eMeta])
		sparseLinearBackward(m.metaL, dMeta, node.Meta)
		off += m.eMeta
		if m.bmL != nil {
			dBm := dERow[off : off+m.eBm]
			nn.ReLUBackwardInPlace(dBm, e[off:off+m.eBm])
			if node.Bitmap != nil {
				sparseLinearBackward(m.bmL, dBm, node.Bitmap)
			} else {
				tensor.AddTo(m.bmL.B.GradVec(), dBm)
			}
			off += m.eBm
		}
		if !node.Pred.Empty() {
			flat := s.predBase[id]
			copy(s.dPOut[flat*s.epd:(flat+1)*s.epd], dERow[predSegOff:predSegOff+s.epd])
		}
	}
}

// backwardPredsBatch backpropagates every predicate tree, level by level
// top-down. Pooling connectives route gradients elementwise; the leaf layer
// (pool variants) and the predicate cell (LSTM variant) fold into GEMMs.
func (s *BatchSession) backwardPredsBatch() {
	if len(s.items) == 0 {
		return
	}
	m := s.m
	epd := s.epd
	for h := len(s.byLevel) - 1; h >= 0; h-- {
		lv := s.byLevel[h]
		if len(lv) == 0 {
			continue
		}
		n := len(lv)
		switch m.Cfg.Pred {
		case PredPool, PredPoolMean:
			if h == 0 {
				// All leaves: one weight-gradient GEMM through W_p against
				// the leaf input matrix retained from the forward sweep.
				matInto(&s.dLeaf, n, epd)
				for j, it := range lv {
					copy(s.dLeaf.Row(j), s.dPOut[it.flat*epd:(it.flat+1)*epd])
				}
				tensor.MatMulTransAInto(m.predLeaf.W.GradMat(), &s.dLeaf, &s.pxt)
				tensor.AddColumnSums(m.predLeaf.B.GradVec(), &s.dLeaf)
			} else {
				s.plvi = h
				s.parRun(n, s.fnBwdPredPool)
			}
		case PredLSTM:
			s.backwardPredCellLevel(h)
		}
	}
}

// backwardPredCellLevel backpropagates one predicate level through the
// predicate tree-LSTM: the same structure as backwardLevelLSTM, minus input
// gradients (atom features are data, not parameters).
func (s *BatchSession) backwardPredCellLevel(h int) {
	n := len(s.byLevel[h])
	epd := s.epd
	matInto(&s.dPF, n, epd)
	matInto(&s.dPK1, n, epd)
	matInto(&s.dPRM, n, epd)
	matInto(&s.dPK2, n, epd)
	matInto(&s.dPGp, n, epd)
	matInto(&s.dPZ, n, epd+s.atomDim)
	s.plvi = h
	s.parRun(n, s.fnBwdPredGrads)

	s.dPZ.Zero()
	s.m.predCell.levelBackwardGEMM(&s.dPF, &s.dPK1, &s.dPRM, &s.dPK2, &s.pzt[h], &s.dPZ)

	s.parRun(n, s.fnBwdPredScatter)
}

// bindBackwardKernels allocates the training backward pass's parallel
// kernels once, mirroring bindKernels: loop context travels through session
// fields (lvi/plvi, bwdH/bwdWo), so warm training passes — including every
// data-parallel worker's — materialize no closures and allocate nothing.
func (s *BatchSession) bindBackwardKernels() {
	s.fnHeadBack = func(j int) {
		row := s.dH.Row(j)
		hrow := s.bwdH.Row(j)
		p := s.dPre[j]
		for i := range row {
			if hrow[i] > 0 {
				row[i] = p * s.bwdWo[i]
			} else {
				row[i] = 0
			}
		}
	}

	s.fnBwdCellGrads = func(j int) {
		d := s.lvi
		lv := s.levels[d]
		n := len(lv)
		dh := s.dh
		it := lv[j]
		id := s.offsets[it.plan] + int(it.node)
		cellGateGrads(dh, j, n,
			s.dG[id*dh:(id+1)*dh], s.dR[id*dh:(id+1)*dh], s.tOf(id), s.gPrev[d].Row(j),
			&s.f[d], &s.k1[d], &s.r[d], &s.k2[d],
			s.dF.Row(j), s.dK1.Row(j), s.dRM.Row(j), s.dK2.Row(j), s.dGp.Row(j))
	}

	s.fnBwdCellScatter = func(j int) {
		it := s.levels[s.lvi][j]
		node := &s.eps[it.plan].Nodes[it.node]
		base := s.offsets[it.plan]
		id := base + int(it.node)
		dh, de := s.dh, s.de
		dzRow := s.dZ.Row(j)
		copy(s.dE[id*de:(id+1)*de], dzRow[dh:])
		dgpR := s.dGp.Row(j)
		// Rprev = (Rl+Rr)/2, Gprev = (Gl+Gr)/2: each child takes half.
		if node.Left >= 0 {
			lid := base + node.Left
			dRl := s.dR[lid*dh : (lid+1)*dh]
			dGl := s.dG[lid*dh : (lid+1)*dh]
			for i := 0; i < dh; i++ {
				dRl[i] += dzRow[i] / 2
				dGl[i] += dgpR[i] / 2
			}
		}
		if node.Right >= 0 {
			rid := base + node.Right
			dRr := s.dR[rid*dh : (rid+1)*dh]
			dGr := s.dG[rid*dh : (rid+1)*dh]
			for i := 0; i < dh; i++ {
				dRr[i] += dzRow[i] / 2
				dGr[i] += dgpR[i] / 2
			}
		}
	}

	s.fnBwdNNGrads = func(j int) {
		it := s.levels[s.lvi][j]
		id := s.offsets[it.plan] + int(it.node)
		dh := s.dh
		rRow := s.rOf(id)
		dRrow := s.dR[id*dh : (id+1)*dh]
		dfR := s.dF.Row(j)
		for i := 0; i < dh; i++ {
			if rRow[i] > 0 {
				dfR[i] = dRrow[i]
			} else {
				dfR[i] = 0
			}
		}
	}

	s.fnBwdNNScatter = func(j int) {
		it := s.levels[s.lvi][j]
		node := &s.eps[it.plan].Nodes[it.node]
		base := s.offsets[it.plan]
		id := base + int(it.node)
		dh, de := s.dh, s.de
		dzRow := s.dZ.Row(j)
		copy(s.dE[id*de:(id+1)*de], dzRow[:de])
		if node.Left >= 0 {
			lid := base + node.Left
			dRl := s.dR[lid*dh : (lid+1)*dh]
			for i := 0; i < dh; i++ {
				dRl[i] += dzRow[de+i]
			}
		}
		if node.Right >= 0 {
			rid := base + node.Right
			dRr := s.dR[rid*dh : (rid+1)*dh]
			for i := 0; i < dh; i++ {
				dRr[i] += dzRow[de+dh+i]
			}
		}
	}

	s.fnBwdPredPool = func(j int) {
		it := s.byLevel[s.plvi][j]
		epd := s.epd
		pn := &s.eps[it.plan].Nodes[it.node].Pred.Nodes[it.pidx]
		fl := s.flatOf(it.plan, it.node, pn.Left)
		fr := s.flatOf(it.plan, it.node, pn.Right)
		d := s.dPOut[it.flat*epd : (it.flat+1)*epd]
		l, r := s.pOutOf(fl), s.pOutOf(fr)
		dl := s.dPOut[fl*epd : (fl+1)*epd]
		dr := s.dPOut[fr*epd : (fr+1)*epd]
		if s.m.Cfg.Pred == PredPoolMean {
			// Mean pooling splits the gradient evenly.
			for i := range d {
				dl[i] = d[i] / 2
				dr[i] = d[i] / 2
			}
			return
		}
		// Min/max pooling routes each component to the winning child (ties
		// go left), like backwardPred.
		for i := range d {
			takeLeft := l[i] <= r[i]
			if pn.Bool != 0 { // OR → max pooling
				takeLeft = l[i] >= r[i]
			}
			if takeLeft {
				dl[i] = d[i]
				dr[i] = 0
			} else {
				dl[i] = 0
				dr[i] = d[i]
			}
		}
	}

	s.fnBwdPredGrads = func(j int) {
		h := s.plvi
		lv := s.byLevel[h]
		n := len(lv)
		epd := s.epd
		fl := lv[j].flat
		cellGateGrads(epd, j, n,
			s.dPG[fl*epd:(fl+1)*epd], s.dPOut[fl*epd:(fl+1)*epd], s.ptOf(fl), s.pgPrev[h].Row(j),
			&s.pf[h], &s.pk1[h], &s.pr[h], &s.pk2[h],
			s.dPF.Row(j), s.dPK1.Row(j), s.dPRM.Row(j), s.dPK2.Row(j), s.dPGp.Row(j))
	}

	s.fnBwdPredScatter = func(j int) {
		it := s.byLevel[s.plvi][j]
		epd := s.epd
		pn := &s.eps[it.plan].Nodes[it.node].Pred.Nodes[it.pidx]
		dzRow := s.dPZ.Row(j)
		dgpR := s.dPGp.Row(j)
		if pn.Left >= 0 {
			flc := s.flatOf(it.plan, it.node, pn.Left)
			dRl := s.dPOut[flc*epd : (flc+1)*epd]
			dGl := s.dPG[flc*epd : (flc+1)*epd]
			for i := 0; i < epd; i++ {
				dRl[i] += dzRow[i] / 2
				dGl[i] += dgpR[i] / 2
			}
		}
		if pn.Right >= 0 {
			frc := s.flatOf(it.plan, it.node, pn.Right)
			dRr := s.dPOut[frc*epd : (frc+1)*epd]
			dGr := s.dPG[frc*epd : (frc+1)*epd]
			for i := 0; i < epd; i++ {
				dRr[i] += dzRow[i] / 2
				dGr[i] += dgpR[i] / 2
			}
		}
	}
}
