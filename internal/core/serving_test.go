package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotImmutableUnderTraining pins the copy-on-publish contract: a
// snapshot taken before further training must keep serving the exact weights
// it was published with, bit for bit, no matter how the live model moves.
func TestSnapshotImmutableUnderTraining(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, nil)

	snap := srv.Snapshot()
	if snap.Version() != 1 {
		t.Fatalf("initial snapshot version = %d, want 1", snap.Version())
	}
	type est struct{ cost, card float64 }
	before := make([]est, len(eps))
	for i, ep := range eps {
		c, d := snap.Model().Estimate(ep)
		before[i] = est{c, d}
	}

	tr.TrainEpochBatched(eps, 8, 1)

	for i, ep := range eps {
		c, d := snap.Model().Estimate(ep)
		if c != before[i].cost || d != before[i].card {
			t.Fatalf("snapshot estimate moved after training: plan %d (%g,%g) -> (%g,%g)",
				i, before[i].cost, before[i].card, c, d)
		}
	}
	liveMoved := false
	for i, ep := range eps {
		if c, d := m.Estimate(ep); c != before[i].cost || d != before[i].card {
			liveMoved = true
			break
		}
	}
	if !liveMoved {
		t.Fatal("live model did not move after a training epoch; test is vacuous")
	}

	next := tr.Publish(srv)
	if next.Version() != 2 || srv.Version() != 2 {
		t.Fatalf("publish version = %d (server %d), want 2", next.Version(), srv.Version())
	}
	if srv.Snapshot() != next {
		t.Fatal("server does not serve the published snapshot")
	}
}

// TestPoolGenerations pins the pool's generation contract directly: entries
// are only served to callers of the generation that recorded them, advancing
// the generation invalidates older entries in O(1), and stale entries are
// lazily evicted (freeing their map slot and, in bounded pools, their ring
// slot) as lookups touch them.
func TestPoolGenerations(t *testing.T) {
	g := []float64{1, 2}
	r := []float64{3, 4}

	p := NewMemoryPool()
	p.PutGen("sig", g, r, 1)
	if _, _, ok := p.GetGen("sig", 1); !ok {
		t.Fatal("same-generation lookup missed")
	}
	// A caller pinned to a different generation must never see the entry —
	// in either direction (old entry/new caller, new entry/old caller).
	if _, _, ok := p.GetGen("sig", 2); ok {
		t.Fatal("generation-1 entry served to a generation-2 caller")
	}
	p.PutGen("sig2", g, r, 2)
	if _, _, ok := p.GetGen("sig2", 1); ok {
		t.Fatal("generation-2 entry served to a generation-1 caller")
	}
	if p.StaleRate() == 0 {
		t.Fatal("generation mismatches not counted as stale")
	}

	// Advancing the pool generation lazily evicts superseded entries.
	p.SetGeneration(2)
	if p.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", p.Generation())
	}
	p.SetGeneration(1) // monotonic: must not move backwards
	if p.Generation() != 2 {
		t.Fatalf("generation moved backwards to %d", p.Generation())
	}
	before := p.Len()
	if _, _, ok := p.Get("sig"); ok { // current-generation lookup
		t.Fatal("stale entry served after SetGeneration")
	}
	if p.Len() != before-1 {
		t.Fatalf("stale entry not evicted: Len %d -> %d", before, p.Len())
	}
	// Re-inserting under the current generation serves again.
	p.Put("sig", g, r)
	if _, _, ok := p.Get("sig"); !ok {
		t.Fatal("refreshed entry missed at current generation")
	}

	// Bounded pools must reclaim the ring slots of generation-evicted
	// entries: fill a pool across a generation swap, touch everything (lazy
	// eviction), then refill under the new generation. Each fresh insert
	// must be immediately retrievable (its ring slot comes from a dead
	// entry, not past the bound) and residency must respect the bound.
	// Shard assignment is hash-seeded per process, so assertions avoid
	// assuming which signatures share a shard.
	bp := NewBoundedMemoryPool(poolShardCount) // 1 entry per shard
	sigs := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, s := range sigs {
		bp.PutGen(s, g, r, 1)
	}
	bp.SetGeneration(2)
	for _, s := range sigs {
		bp.GetGen(s, 2) // touch: lazily evicts every generation-1 entry
	}
	if n := bp.Len(); n != 0 {
		t.Fatalf("bounded pool kept %d stale entries after touches", n)
	}
	for _, s := range sigs {
		bp.PutGen(s, g, r, 2)
		if _, _, ok := bp.GetGen(s, 2); !ok {
			t.Fatalf("entry %q missing immediately after ring-slot reuse", s)
		}
	}
	if n := bp.Len(); n == 0 || n > len(sigs) {
		t.Fatalf("bounded pool resident count %d after refill, want 1..%d", n, len(sigs))
	}
}

// TestServerServesAcrossPublishes drives the sequential hot-swap workflow:
// serve, retrain, publish, serve again — every response must carry the
// version that produced it and match that version's snapshot bit for bit,
// through both the single-plan and batch paths, with pooled entries never
// crossing the swap.
func TestServerServesAcrossPublishes(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(512))

	for round := 0; round < 3; round++ {
		snap := srv.Snapshot()
		want := uint64(round + 1)
		if snap.Version() != want {
			t.Fatalf("round %d: serving version %d, want %d", round, snap.Version(), want)
		}
		ref := NewSession(snap.Model())
		for i, ep := range eps {
			c, d, v := srv.Estimate(ep)
			if v != want {
				t.Fatalf("round %d: Estimate served version %d", round, v)
			}
			rc, rd := ref.Estimate(ep)
			if c != rc || d != rd {
				t.Fatalf("round %d plan %d: served (%g,%g), snapshot replay (%g,%g)", round, i, c, d, rc, rd)
			}
		}
		batch, v := srv.EstimateBatch(eps, 2)
		if v != want {
			t.Fatalf("round %d: EstimateBatch served version %d", round, v)
		}
		for i, ep := range eps {
			rc, rd := ref.Estimate(ep)
			if batch[i].Cost != rc || batch[i].Card != rd {
				t.Fatalf("round %d plan %d: batch served %+v, snapshot replay (%g,%g)", round, i, batch[i], rc, rd)
			}
		}
		tr.TrainEpochBatched(eps, 8, 1)
		tr.Publish(srv)
	}
	if srv.Pool().HitRate() == 0 {
		t.Fatal("pooled serving produced no hits within a generation")
	}
	if srv.Pool().StaleRate() == 0 {
		t.Fatal("hot swaps produced no stale lookups; invalidation untested")
	}
}

// servedObs is one served estimate with the snapshot version that produced
// it, for post-hoc replay.
type servedObs struct {
	plan    int
	version uint64
	cost    float64
	card    float64
}

// TestServerHotSwapConcurrentBitIdentical is the acceptance gate for the
// hot-swap runtime, meant to run under -race: one goroutine retrains the
// live model with the batched runtime and publishes after every epoch while
// serving goroutines hammer the server's pooled single-plan and batch paths.
// Every served estimate is then replayed single-threaded against the
// snapshot version that served it and must match bit for bit — which fails
// if a publish ever tears weights mid-request, and fails if any pool entry
// recorded under generation N is consumed by a request serving generation
// N±1 (representations are weights-dependent, so cross-generation reuse
// perturbs the bits).
func TestServerHotSwapConcurrentBitIdentical(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(256))

	const epochs = 4
	const servers = 3

	var mu sync.Mutex
	snaps := map[uint64]*ModelSnapshot{1: srv.Snapshot()}

	// seen[w] is the highest version server w has served. The trainer waits
	// for every server to reach each published version before training on —
	// on a single-core box the scheduler could otherwise run one side to
	// completion, leaving the interleavings untested.
	var seen [servers]atomic.Uint64
	done := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // trainer: retrain in place, publish after every epoch
		defer wg.Done()
		defer close(done)
		for e := 0; e < epochs; e++ {
			tr.TrainEpochBatched(eps, 8, 2)
			snap := tr.Publish(srv)
			mu.Lock()
			snaps[snap.Version()] = snap
			mu.Unlock()
			for w := 0; w < servers; w++ {
				for seen[w].Load() < snap.Version() {
					runtime.Gosched()
				}
			}
		}
	}()

	obs := make([][]servedObs, servers)
	for w := 0; w < servers; w++ {
		wg.Add(1)
		go func(w int) { // server: pooled single-plan + batch serving
			defer wg.Done()
			var local []servedObs
			for k := 0; ; k++ {
				i := (w*7 + k) % len(eps)
				c, d, v := srv.Estimate(eps[i])
				local = append(local, servedObs{plan: i, version: v, cost: c, card: d})
				ests, bv := srv.EstimateBatch(eps, 2)
				for j, e := range ests {
					local = append(local, servedObs{plan: j, version: bv, cost: e.Cost, card: e.Card})
				}
				if bv > seen[w].Load() {
					seen[w].Store(bv)
				}
				select {
				case <-done:
					obs[w] = local
					return
				default:
				}
			}
		}(w)
	}
	wg.Wait()

	// Replay: for every version that served, compute the single-threaded,
	// unpooled reference estimates from the retained snapshot.
	type est struct{ cost, card float64 }
	refs := make(map[uint64][]est, len(snaps))
	for v, snap := range snaps {
		ref := NewSession(snap.Model())
		es := make([]est, len(eps))
		for i, ep := range eps {
			c, d := ref.Estimate(ep)
			es[i] = est{c, d}
		}
		refs[v] = es
	}

	served := 0
	versions := map[uint64]int{}
	for w := range obs {
		for _, o := range obs[w] {
			ref, known := refs[o.version]
			if !known {
				t.Fatalf("served version %d was never published", o.version)
			}
			if o.cost != ref[o.plan].cost || o.card != ref[o.plan].card {
				t.Fatalf("version %d plan %d: served (%g,%g), single-threaded replay (%g,%g)",
					o.version, o.plan, o.cost, o.card, ref[o.plan].cost, ref[o.plan].card)
			}
			served++
			versions[o.version]++
		}
	}
	if served == 0 {
		t.Fatal("no estimates served")
	}
	if len(versions) != epochs+1 {
		t.Fatalf("served %d distinct versions, want %d (all published snapshots)", len(versions), epochs+1)
	}
	t.Logf("replayed %d served estimates across %d versions (per-version counts: %v); pool hit %.0f%%, stale %.1f%%",
		served, len(versions), versions, srv.Pool().HitRate()*100, srv.Pool().StaleRate()*100)
}

// TestServerPrewarmHidesSwapTransient pins the pre-warm contract: with
// pre-warming enabled, the hottest served plans' representations are already
// resident at the *new* pool generation once the post-publish replay has
// run — a foreground request arriving after the swap hits the pool instead
// of paying the stale-miss recompute — and the pre-warmed entries carry
// exactly the bits foreground recomputation would produce. A server without
// pre-warming is the control: the same lookup misses.
func TestServerPrewarmHidesSwapTransient(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(1024))
	srv.EnablePrewarm(4)

	ctrl := NewServer(New(cfg, testEnc), NewBoundedMemoryPool(1024))

	// Build hotness: the first 4 plans are served repeatedly, the rest once.
	for k := 0; k < 5; k++ {
		for i := 0; i < 4; i++ {
			srv.Estimate(eps[i])
			ctrl.Estimate(eps[i])
		}
	}
	for _, ep := range eps {
		srv.Estimate(ep)
		ctrl.Estimate(ep)
	}

	tr.TrainEpochBatched(eps, 8, 1)
	tr.Publish(srv)
	ctrl.Publish(m)
	if n := srv.PrewarmNow(); n == 0 {
		t.Fatal("PrewarmNow replayed no plans despite tracked traffic")
	}

	v := srv.Version()
	hotSig := eps[0].Nodes[eps[0].Root].Sig
	if _, _, ok := srv.Pool().GetGen(hotSig, v); !ok {
		t.Fatal("hot plan not resident at the new generation after pre-warm")
	}
	if _, _, ok := ctrl.Pool().GetGen(hotSig, ctrl.Version()); ok {
		t.Fatal("control server hit at the new generation without pre-warm; transient test is vacuous")
	}

	// Pre-warmed entries must serve the same bits as an unpooled
	// single-threaded replay of the new snapshot.
	ref := NewSession(srv.Snapshot().Model())
	for i := 0; i < 4; i++ {
		c, d, sv := srv.Estimate(eps[i])
		rc, rd := ref.Estimate(eps[i])
		if sv != v || c != rc || d != rd {
			t.Fatalf("plan %d: prewarmed serve (%g,%g) at v%d, replay (%g,%g) at v%d", i, c, d, sv, rc, rd, v)
		}
	}
}

// TestServerPrewarmBackground exercises the asynchronous path Publish
// actually takes: after a publish, the background replay must repopulate the
// pool at the new generation without any foreground call.
func TestServerPrewarmBackground(t *testing.T) {
	eps := benchCorpus(t, 8)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(1024))
	srv.EnablePrewarm(4)
	for k := 0; k < 3; k++ {
		for _, ep := range eps {
			srv.Estimate(ep)
		}
	}
	tr.TrainEpochBatched(eps, 8, 1)
	tr.Publish(srv)

	v := srv.Version()
	deadline := time.Now().Add(5 * time.Second)
	for {
		hits := 0
		for _, ep := range eps[:4] {
			if _, _, ok := srv.Pool().GetGen(ep.Nodes[ep.Root].Sig, v); ok {
				hits++
			}
		}
		if hits > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background pre-warm never repopulated the pool at the new generation")
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkPublish measures hot-swap publication latency: one deep weight
// copy into a fresh snapshot plus the O(1) pool invalidation, at default
// model dimensions.
func BenchmarkPublish(b *testing.B) {
	eps := benchCorpus(b, 4)
	cfg := DefaultConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(4096))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Publish(m)
	}
}

// BenchmarkServerEstimate measures steady-state pooled serving through the
// Server indirection (snapshot resolution + session checkout + pooled
// forward) — the hot-swap counterpart of BenchmarkForwardPooled.
func BenchmarkServerEstimate(b *testing.B) {
	eps := benchCorpus(b, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	srv := NewServer(m, NewMemoryPool())
	for _, ep := range eps {
		srv.Estimate(ep)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Estimate(eps[i%len(eps)])
	}
	b.ReportMetric(srv.Pool().HitRate()*100, "hit%")
}

// BenchmarkServerHotSwap measures serving with a publish every 64 batches:
// the steady-state cost of living through weight swaps, including session
// rebinds and the stale-lookup transient after each generation bump.
func BenchmarkServerHotSwap(b *testing.B) {
	eps := benchCorpus(b, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	srv := NewServer(m, NewBoundedMemoryPool(512))
	srv.EstimateBatch(eps, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 63 {
			srv.Publish(m)
		}
		srv.EstimateBatch(eps, 1)
	}
	b.ReportMetric(srv.Pool().StaleRate()*100, "stale%")
	b.ReportMetric(srv.Pool().HitRate()*100, "hit%")
}
