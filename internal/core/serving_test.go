package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotImmutableUnderTraining pins the copy-on-publish contract: a
// snapshot taken before further training must keep serving the exact weights
// it was published with, bit for bit, no matter how the live model moves.
func TestSnapshotImmutableUnderTraining(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, nil)

	snap := srv.Snapshot()
	if snap.Version() != 1 {
		t.Fatalf("initial snapshot version = %d, want 1", snap.Version())
	}
	type est struct{ cost, card float64 }
	before := make([]est, len(eps))
	for i, ep := range eps {
		c, d := snap.Model().Estimate(ep)
		before[i] = est{c, d}
	}

	tr.TrainEpochBatched(eps, 8, 1)

	for i, ep := range eps {
		c, d := snap.Model().Estimate(ep)
		if c != before[i].cost || d != before[i].card {
			t.Fatalf("snapshot estimate moved after training: plan %d (%g,%g) -> (%g,%g)",
				i, before[i].cost, before[i].card, c, d)
		}
	}
	liveMoved := false
	for i, ep := range eps {
		if c, d := m.Estimate(ep); c != before[i].cost || d != before[i].card {
			liveMoved = true
			break
		}
	}
	if !liveMoved {
		t.Fatal("live model did not move after a training epoch; test is vacuous")
	}

	next := tr.Publish(srv)
	if next.Version() != 2 || srv.Version() != 2 {
		t.Fatalf("publish version = %d (server %d), want 2", next.Version(), srv.Version())
	}
	if srv.Snapshot() != next {
		t.Fatal("server does not serve the published snapshot")
	}
}

// TestPoolGenerations pins the pool's generation contract directly: entries
// are only served to callers of the generation that recorded them, advancing
// the generation invalidates older entries in O(1), and stale entries are
// lazily evicted (freeing their map slot and, in bounded pools, their ring
// slot) as lookups touch them.
func TestPoolGenerations(t *testing.T) {
	g := []float64{1, 2}
	r := []float64{3, 4}

	p := NewMemoryPool()
	p.PutGen("sig", g, r, 1)
	if _, _, ok := p.GetGen("sig", 1); !ok {
		t.Fatal("same-generation lookup missed")
	}
	// A caller pinned to a different generation must never see the entry —
	// in either direction (old entry/new caller, new entry/old caller).
	if _, _, ok := p.GetGen("sig", 2); ok {
		t.Fatal("generation-1 entry served to a generation-2 caller")
	}
	p.PutGen("sig2", g, r, 2)
	if _, _, ok := p.GetGen("sig2", 1); ok {
		t.Fatal("generation-2 entry served to a generation-1 caller")
	}
	if p.StaleRate() == 0 {
		t.Fatal("generation mismatches not counted as stale")
	}

	// Advancing the pool generation lazily evicts superseded entries.
	p.SetGeneration(2)
	if p.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", p.Generation())
	}
	p.SetGeneration(1) // monotonic: must not move backwards
	if p.Generation() != 2 {
		t.Fatalf("generation moved backwards to %d", p.Generation())
	}
	before := p.Len()
	if _, _, ok := p.Get("sig"); ok { // current-generation lookup
		t.Fatal("stale entry served after SetGeneration")
	}
	if p.Len() != before-1 {
		t.Fatalf("stale entry not evicted: Len %d -> %d", before, p.Len())
	}
	// Re-inserting under the current generation serves again.
	p.Put("sig", g, r)
	if _, _, ok := p.Get("sig"); !ok {
		t.Fatal("refreshed entry missed at current generation")
	}

	// Bounded pools must reclaim the ring slots of generation-evicted
	// entries: fill a pool across a generation swap, touch everything (lazy
	// eviction), then refill under the new generation. Each fresh insert
	// must be immediately retrievable (its ring slot comes from a dead
	// entry, not past the bound) and residency must respect the bound.
	// Shard assignment is hash-seeded per process, so assertions avoid
	// assuming which signatures share a shard.
	bp := NewBoundedMemoryPool(poolShardCount) // 1 entry per shard
	sigs := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, s := range sigs {
		bp.PutGen(s, g, r, 1)
	}
	bp.SetGeneration(2)
	for _, s := range sigs {
		bp.GetGen(s, 2) // touch: lazily evicts every generation-1 entry
	}
	if n := bp.Len(); n != 0 {
		t.Fatalf("bounded pool kept %d stale entries after touches", n)
	}
	for _, s := range sigs {
		bp.PutGen(s, g, r, 2)
		if _, _, ok := bp.GetGen(s, 2); !ok {
			t.Fatalf("entry %q missing immediately after ring-slot reuse", s)
		}
	}
	if n := bp.Len(); n == 0 || n > len(sigs) {
		t.Fatalf("bounded pool resident count %d after refill, want 1..%d", n, len(sigs))
	}
}

// TestServerServesAcrossPublishes drives the sequential hot-swap workflow:
// serve, retrain, publish, serve again — every response must carry the
// version that produced it and match that version's snapshot bit for bit,
// through both the single-plan and batch paths, with pooled entries never
// crossing the swap.
func TestServerServesAcrossPublishes(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(512))

	for round := 0; round < 3; round++ {
		snap := srv.Snapshot()
		want := uint64(round + 1)
		if snap.Version() != want {
			t.Fatalf("round %d: serving version %d, want %d", round, snap.Version(), want)
		}
		ref := NewSession(snap.Model())
		for i, ep := range eps {
			c, d, v := srv.Estimate(ep)
			if v != want {
				t.Fatalf("round %d: Estimate served version %d", round, v)
			}
			rc, rd := ref.Estimate(ep)
			if c != rc || d != rd {
				t.Fatalf("round %d plan %d: served (%g,%g), snapshot replay (%g,%g)", round, i, c, d, rc, rd)
			}
		}
		batch, v := srv.EstimateBatch(eps, 2)
		if v != want {
			t.Fatalf("round %d: EstimateBatch served version %d", round, v)
		}
		for i, ep := range eps {
			rc, rd := ref.Estimate(ep)
			if batch[i].Cost != rc || batch[i].Card != rd {
				t.Fatalf("round %d plan %d: batch served %+v, snapshot replay (%g,%g)", round, i, batch[i], rc, rd)
			}
		}
		tr.TrainEpochBatched(eps, 8, 1)
		tr.Publish(srv)
	}
	if srv.Pool().HitRate() == 0 {
		t.Fatal("pooled serving produced no hits within a generation")
	}
	if srv.Pool().StaleRate() == 0 {
		t.Fatal("hot swaps produced no stale lookups; invalidation untested")
	}
}

// servedObs is one served estimate with the snapshot version that produced
// it, for post-hoc replay.
type servedObs struct {
	plan    int
	version uint64
	cost    float64
	card    float64
}

// TestServerHotSwapConcurrentBitIdentical is the acceptance gate for the
// hot-swap runtime, meant to run under -race: one goroutine retrains the
// live model with the batched runtime and publishes after every epoch while
// serving goroutines hammer the server's pooled single-plan and batch paths.
// Every served estimate is then replayed single-threaded against the
// snapshot version that served it and must match bit for bit — which fails
// if a publish ever tears weights mid-request, and fails if any pool entry
// recorded under generation N is consumed by a request serving generation
// N±1 (representations are weights-dependent, so cross-generation reuse
// perturbs the bits).
func TestServerHotSwapConcurrentBitIdentical(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(256))

	const epochs = 4
	const servers = 3

	var mu sync.Mutex
	snaps := map[uint64]*ModelSnapshot{1: srv.Snapshot()}

	// seen[w] is the highest version server w has served. The trainer waits
	// for every server to reach each published version before training on —
	// on a single-core box the scheduler could otherwise run one side to
	// completion, leaving the interleavings untested.
	var seen [servers]atomic.Uint64
	done := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // trainer: retrain in place, publish after every epoch
		defer wg.Done()
		defer close(done)
		for e := 0; e < epochs; e++ {
			tr.TrainEpochBatched(eps, 8, 2)
			snap := tr.Publish(srv)
			mu.Lock()
			snaps[snap.Version()] = snap
			mu.Unlock()
			for w := 0; w < servers; w++ {
				for seen[w].Load() < snap.Version() {
					runtime.Gosched()
				}
			}
		}
	}()

	obs := make([][]servedObs, servers)
	for w := 0; w < servers; w++ {
		wg.Add(1)
		go func(w int) { // server: pooled single-plan + batch serving
			defer wg.Done()
			var local []servedObs
			for k := 0; ; k++ {
				i := (w*7 + k) % len(eps)
				c, d, v := srv.Estimate(eps[i])
				local = append(local, servedObs{plan: i, version: v, cost: c, card: d})
				ests, bv := srv.EstimateBatch(eps, 2)
				for j, e := range ests {
					local = append(local, servedObs{plan: j, version: bv, cost: e.Cost, card: e.Card})
				}
				if bv > seen[w].Load() {
					seen[w].Store(bv)
				}
				select {
				case <-done:
					obs[w] = local
					return
				default:
				}
			}
		}(w)
	}
	wg.Wait()

	// Replay: for every version that served, compute the single-threaded,
	// unpooled reference estimates from the retained snapshot.
	type est struct{ cost, card float64 }
	refs := make(map[uint64][]est, len(snaps))
	for v, snap := range snaps {
		ref := NewSession(snap.Model())
		es := make([]est, len(eps))
		for i, ep := range eps {
			c, d := ref.Estimate(ep)
			es[i] = est{c, d}
		}
		refs[v] = es
	}

	served := 0
	versions := map[uint64]int{}
	for w := range obs {
		for _, o := range obs[w] {
			ref, known := refs[o.version]
			if !known {
				t.Fatalf("served version %d was never published", o.version)
			}
			if o.cost != ref[o.plan].cost || o.card != ref[o.plan].card {
				t.Fatalf("version %d plan %d: served (%g,%g), single-threaded replay (%g,%g)",
					o.version, o.plan, o.cost, o.card, ref[o.plan].cost, ref[o.plan].card)
			}
			served++
			versions[o.version]++
		}
	}
	if served == 0 {
		t.Fatal("no estimates served")
	}
	if len(versions) != epochs+1 {
		t.Fatalf("served %d distinct versions, want %d (all published snapshots)", len(versions), epochs+1)
	}
	t.Logf("replayed %d served estimates across %d versions (per-version counts: %v); pool hit %.0f%%, stale %.1f%%",
		served, len(versions), versions, srv.Pool().HitRate()*100, srv.Pool().StaleRate()*100)
}

// TestServerPrewarmHidesSwapTransient pins the pre-warm contract: with
// pre-warming enabled, the hottest served plans' representations are already
// resident at the *new* pool generation once the post-publish replay has
// run — a foreground request arriving after the swap hits the pool instead
// of paying the stale-miss recompute — and the pre-warmed entries carry
// exactly the bits foreground recomputation would produce. A server without
// pre-warming is the control: the same lookup misses.
func TestServerPrewarmHidesSwapTransient(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(1024))
	srv.EnablePrewarm(4)

	ctrl := NewServer(New(cfg, testEnc), NewBoundedMemoryPool(1024))

	// Build hotness: the first 4 plans are served repeatedly, the rest once.
	for k := 0; k < 5; k++ {
		for i := 0; i < 4; i++ {
			srv.Estimate(eps[i])
			ctrl.Estimate(eps[i])
		}
	}
	for _, ep := range eps {
		srv.Estimate(ep)
		ctrl.Estimate(ep)
	}

	tr.TrainEpochBatched(eps, 8, 1)
	tr.Publish(srv)
	ctrl.Publish(m)
	if n := srv.PrewarmNow(); n == 0 {
		t.Fatal("PrewarmNow replayed no plans despite tracked traffic")
	}

	v := srv.Version()
	hotSig := eps[0].Nodes[eps[0].Root].Sig
	if _, _, ok := srv.Pool().GetGen(hotSig, v); !ok {
		t.Fatal("hot plan not resident at the new generation after pre-warm")
	}
	if _, _, ok := ctrl.Pool().GetGen(hotSig, ctrl.Version()); ok {
		t.Fatal("control server hit at the new generation without pre-warm; transient test is vacuous")
	}

	// Pre-warmed entries must serve the same bits as an unpooled
	// single-threaded replay of the new snapshot.
	ref := NewSession(srv.Snapshot().Model())
	for i := 0; i < 4; i++ {
		c, d, sv := srv.Estimate(eps[i])
		rc, rd := ref.Estimate(eps[i])
		if sv != v || c != rc || d != rd {
			t.Fatalf("plan %d: prewarmed serve (%g,%g) at v%d, replay (%g,%g) at v%d", i, c, d, sv, rc, rd, v)
		}
	}
}

// TestServerPrewarmBackground exercises the asynchronous path Publish
// actually takes: after a publish, the background replay must repopulate the
// pool at the new generation without any foreground call.
func TestServerPrewarmBackground(t *testing.T) {
	eps := benchCorpus(t, 8)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(1024))
	srv.EnablePrewarm(4)
	for k := 0; k < 3; k++ {
		for _, ep := range eps {
			srv.Estimate(ep)
		}
	}
	tr.TrainEpochBatched(eps, 8, 1)
	tr.Publish(srv)

	v := srv.Version()
	deadline := time.Now().Add(5 * time.Second)
	for {
		hits := 0
		for _, ep := range eps[:4] {
			if _, _, ok := srv.Pool().GetGen(ep.Nodes[ep.Root].Sig, v); ok {
				hits++
			}
		}
		if hits > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background pre-warm never repopulated the pool at the new generation")
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkPublish measures hot-swap publication latency: one deep weight
// copy into a fresh snapshot plus the O(1) pool invalidation, at default
// model dimensions.
func BenchmarkPublish(b *testing.B) {
	eps := benchCorpus(b, 4)
	cfg := DefaultConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(4096))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Publish(m)
	}
}

// BenchmarkServerEstimate measures steady-state pooled serving through the
// Server indirection (snapshot resolution + session checkout + pooled
// forward) — the hot-swap counterpart of BenchmarkForwardPooled.
func BenchmarkServerEstimate(b *testing.B) {
	eps := benchCorpus(b, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	srv := NewServer(m, NewMemoryPool())
	for _, ep := range eps {
		srv.Estimate(ep)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Estimate(eps[i%len(eps)])
	}
	b.ReportMetric(srv.Pool().HitRate()*100, "hit%")
}

// BenchmarkServerHotSwap measures serving with a publish every 64 batches:
// the steady-state cost of living through weight swaps, including session
// rebinds and the stale-lookup transient after each generation bump.
func BenchmarkServerHotSwap(b *testing.B) {
	eps := benchCorpus(b, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	srv := NewServer(m, NewBoundedMemoryPool(512))
	srv.EstimateBatch(eps, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 63 {
			srv.Publish(m)
		}
		srv.EstimateBatch(eps, 1)
	}
	b.ReportMetric(srv.Pool().StaleRate()*100, "stale%")
	b.ReportMetric(srv.Pool().HitRate()*100, "hit%")
}

// TestPublishDeltaBitIdentical pins the delta-publication contract on the
// sequential path: across rounds of training, every delta-published
// snapshot's parameters must be bit-identical to a full copy taken at the
// same point, normalizers included — and rounds that trained nothing must
// copy nothing.
func TestPublishDeltaBitIdentical(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(512))

	for round := 0; round < 5; round++ {
		tr.TrainEpochBatched(eps, 8, 1)
		snap := tr.PublishDelta(srv)
		full := newSnapshot(m, snap.Version())
		compareWeights(t, "delta vs full copy", snap.Model(), full.Model(), 0)
		if snap.Model().CostNorm != m.CostNorm || snap.Model().CardNorm != m.CardNorm {
			t.Fatalf("round %d: delta snapshot normalizers diverged", round)
		}
		if srv.Version() != snap.Version() || srv.cur.Load() != snap {
			t.Fatalf("round %d: server does not serve the delta snapshot", round)
		}
		// Serving through the delta snapshot matches a single-threaded
		// replay of the full copy.
		ref := NewSession(full.Model())
		for i, ep := range eps {
			c, d, v := srv.Estimate(ep)
			rc, rd := ref.Estimate(ep)
			if v != snap.Version() || c != rc || d != rd {
				t.Fatalf("round %d plan %d: delta-served (%g,%g) at v%d, full-copy replay (%g,%g)",
					round, i, c, d, v, rc, rd)
			}
		}
	}

	// A publish with no intervening training copies zero parameters: the
	// reused buffer set is already current.
	trained := srv.LastDeltaCopied()
	if trained == 0 {
		t.Fatal("delta publish after training copied no parameters; tracking is broken")
	}
	tr.PublishDelta(srv)
	tr.PublishDelta(srv) // second clean publish reuses an in-rotation slot
	if n := srv.LastDeltaCopied(); n != 0 {
		t.Fatalf("clean delta publish copied %d params, want 0", n)
	}
}

// TestPublishDeltaReusesBuffers pins the double-buffer rotation: once two
// delta snapshots exist and the older one has drained, the next publish
// reuses its buffer set instead of allocating a third.
func TestPublishDeltaReusesBuffers(t *testing.T) {
	eps := benchCorpus(t, 8)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, nil)

	s1 := tr.PublishDelta(srv) // fresh slot A
	tr.TrainEpochBatched(eps, 8, 1)
	s2 := tr.PublishDelta(srv) // fresh slot B (A still serving at publish time)
	tr.TrainEpochBatched(eps, 8, 1)
	s3 := tr.PublishDelta(srv) // A retired and drained -> reused
	if s1.model == s2.model {
		t.Fatal("consecutive delta snapshots share a live buffer set")
	}
	if s3.model != s1.model {
		t.Fatal("third delta publish did not reuse the drained first slot")
	}
	// The recycled snapshot must carry the current weights bit for bit.
	compareWeights(t, "recycled slot vs full copy", s3.Model(), newSnapshot(m, 0).Model(), 0)

	// A pinned snapshot's buffers leave the rotation permanently.
	tr.TrainEpochBatched(eps, 8, 1)
	s4 := tr.PublishDelta(srv)
	s4.Pin()
	tr.TrainEpochBatched(eps, 8, 1)
	s5 := tr.PublishDelta(srv)
	tr.TrainEpochBatched(eps, 8, 1)
	s6 := tr.PublishDelta(srv)
	if s6.model == s4.model {
		t.Fatal("pinned snapshot's buffers were recycled")
	}
	want := []struct{ c, d float64 }{}
	for _, ep := range eps {
		c, d := s4.Model().Estimate(ep)
		want = append(want, struct{ c, d float64 }{c, d})
	}
	tr.TrainEpochBatched(eps, 8, 1)
	tr.PublishDelta(srv)
	tr.PublishDelta(srv)
	for i, ep := range eps {
		c, d := s4.Model().Estimate(ep)
		if c != want[i].c || d != want[i].d {
			t.Fatalf("pinned snapshot estimates moved after later delta publishes (plan %d)", i)
		}
	}
	_ = s5
}

// TestSnapshotPinnedAcrossDeltaPublishes pins Server.Snapshot's contract in
// delta mode: a snapshot handed out for indefinite retention keeps serving
// the exact weights it was published with, no matter how many delta
// publishes (and buffer recycles) happen afterwards.
func TestSnapshotPinnedAcrossDeltaPublishes(t *testing.T) {
	eps := benchCorpus(t, 10)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, nil)
	tr.TrainEpochBatched(eps, 8, 1)
	tr.PublishDelta(srv)

	held := srv.Snapshot() // pinned
	type est struct{ cost, card float64 }
	before := make([]est, len(eps))
	for i, ep := range eps {
		c, d := held.Model().Estimate(ep)
		before[i] = est{c, d}
	}
	for round := 0; round < 4; round++ {
		tr.TrainEpochBatched(eps, 8, 1)
		tr.PublishDelta(srv)
	}
	for i, ep := range eps {
		c, d := held.Model().Estimate(ep)
		if c != before[i].cost || d != before[i].card {
			t.Fatalf("pinned snapshot estimate moved: plan %d (%g,%g) -> (%g,%g)",
				i, before[i].cost, before[i].card, c, d)
		}
	}
}

// TestPublishDeltaSingleTaskSkipsCleanHead exercises the natural sparse
// case: a single-task cost model never gradients its cardinality head, so
// after the first sync those parameters are never copied again — the delta
// path provably does less work than a full copy.
func TestPublishDeltaSingleTaskSkipsCleanHead(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	cfg.Target = TargetCost
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, nil)

	tr.TrainEpochBatched(eps, 8, 1)
	tr.PublishDelta(srv)
	first := srv.LastDeltaCopied()
	tr.TrainEpochBatched(eps, 8, 1)
	tr.TrainEpochBatched(eps, 8, 1)
	tr.PublishDelta(srv) // second slot, full copy
	tr.TrainEpochBatched(eps, 8, 1)
	tr.PublishDelta(srv) // recycled slot: delta from here on
	steady := srv.LastDeltaCopied()
	total := len(m.PS.Params())
	if first != total {
		t.Fatalf("first sync copied %d/%d params, want all", first, total)
	}
	if steady >= total {
		t.Fatalf("steady-state delta copied all %d params; the clean card head should be skipped", steady)
	}
	// The skipped parameters are exactly the never-trained cardinality head.
	full := newSnapshot(m, 0)
	compareWeights(t, "single-task delta", srv.Snapshot().Model(), full.Model(), 0)
}

// TestServerDeltaHotSwapConcurrentBitIdentical is the delta twin of the
// full-copy acceptance gate, meant to run under -race: the trainer retrains
// and delta-publishes after every epoch — rotating and recycling snapshot
// buffers — while serving goroutines hammer the pooled single-plan and
// batch paths. At every publish the trainer also takes a private full copy;
// every served estimate is replayed against the full copy of the version
// that served it and must match bit for bit. Buffer recycling is what makes
// this non-trivial: a recycle racing an in-flight request would tear the
// request's weights, and the ref-count protocol must prevent it.
func TestServerDeltaHotSwapConcurrentBitIdentical(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(256))

	const epochs = 6
	const servers = 3

	type est struct{ cost, card float64 }
	var mu sync.Mutex
	refs := map[uint64][]est{}
	snapRef := func(v uint64) { // full-copy reference, trainer goroutine
		full := newSnapshot(m, v)
		ref := NewSession(full.Model())
		es := make([]est, len(eps))
		for i, ep := range eps {
			c, d := ref.Estimate(ep)
			es[i] = est{c, d}
		}
		mu.Lock()
		refs[v] = es
		mu.Unlock()
	}
	snapRef(1)

	var seen [servers]atomic.Uint64
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // trainer: retrain, delta-publish, reference-copy
		defer wg.Done()
		defer close(done)
		for e := 0; e < epochs; e++ {
			tr.TrainEpochBatched(eps, 8, 2)
			snap := tr.PublishDelta(srv)
			snapRef(snap.Version())
			for w := 0; w < servers; w++ {
				for seen[w].Load() < snap.Version() {
					runtime.Gosched()
				}
			}
		}
	}()

	obs := make([][]servedObs, servers)
	for w := 0; w < servers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []servedObs
			for k := 0; ; k++ {
				i := (w*5 + k) % len(eps)
				c, d, v := srv.Estimate(eps[i])
				local = append(local, servedObs{plan: i, version: v, cost: c, card: d})
				ests, bv := srv.EstimateBatch(eps, 2)
				for j, e := range ests {
					local = append(local, servedObs{plan: j, version: bv, cost: e.Cost, card: e.Card})
				}
				if bv > seen[w].Load() {
					seen[w].Store(bv)
				}
				select {
				case <-done:
					obs[w] = local
					return
				default:
				}
			}
		}(w)
	}
	wg.Wait()

	served := 0
	versions := map[uint64]int{}
	for w := range obs {
		for _, o := range obs[w] {
			ref, known := refs[o.version]
			if !known {
				t.Fatalf("served version %d was never published", o.version)
			}
			if o.cost != ref[o.plan].cost || o.card != ref[o.plan].card {
				t.Fatalf("version %d plan %d: delta-served (%g,%g), full-copy replay (%g,%g)",
					o.version, o.plan, o.cost, o.card, ref[o.plan].cost, ref[o.plan].card)
			}
			served++
			versions[o.version]++
		}
	}
	if served == 0 {
		t.Fatal("no estimates served")
	}
	if len(versions) != epochs+1 {
		t.Fatalf("served %d distinct versions, want %d", len(versions), epochs+1)
	}
	t.Logf("replayed %d delta-served estimates across %d versions (counts: %v)",
		served, len(versions), versions)
}

// TestPublishPrewarmRace is the regression test for racing publishes against
// foreground pre-warm replays, meant to run under -race: one goroutine
// retrains and publishes, another hammers PrewarmNow, while servers keep
// estimating. The replay guard must ensure a pre-warm only ever runs when
// the pool generation equals the version of the snapshot it replays — so
// pre-warmed entries always carry the generation of the weights that
// computed them, and every served estimate stays bit-identical to its
// version's replay even with warm pool hits in the mix.
func TestPublishPrewarmRace(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(1024))
	srv.EnablePrewarm(6)
	for k := 0; k < 4; k++ { // build hotness before the storm
		for _, ep := range eps {
			srv.Estimate(ep)
		}
	}

	const epochs = 5
	var mu sync.Mutex
	snaps := map[uint64]*ModelSnapshot{1: srv.Snapshot()}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // trainer/publisher
		defer wg.Done()
		defer close(done)
		for e := 0; e < epochs; e++ {
			tr.TrainEpochBatched(eps, 8, 1)
			snap := tr.Publish(srv)
			mu.Lock()
			snaps[snap.Version()] = snap
			mu.Unlock()
			runtime.Gosched()
		}
	}()
	wg.Add(1)
	go func() { // foreground pre-warm hammer
		defer wg.Done()
		for {
			srv.PrewarmNow()
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	obs := make([][]servedObs, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []servedObs
			for k := 0; ; k++ {
				i := (w + k) % len(eps)
				c, d, v := srv.Estimate(eps[i])
				local = append(local, servedObs{plan: i, version: v, cost: c, card: d})
				select {
				case <-done:
					obs[w] = local
					return
				default:
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain the last publish's background replay before replaying versions.
	srv.PrewarmNow()

	type est struct{ cost, card float64 }
	refsByV := map[uint64][]est{}
	for v, snap := range snaps {
		ref := NewSession(snap.Model())
		es := make([]est, len(eps))
		for i, ep := range eps {
			c, d := ref.Estimate(ep)
			es[i] = est{c, d}
		}
		refsByV[v] = es
	}
	for w := range obs {
		for _, o := range obs[w] {
			ref, known := refsByV[o.version]
			if !known {
				t.Fatalf("served version %d was never published", o.version)
			}
			if o.cost != ref[o.plan].cost || o.card != ref[o.plan].card {
				t.Fatalf("version %d plan %d: served (%g,%g) under pre-warm storm, replay (%g,%g)",
					o.version, o.plan, o.cost, o.card, ref[o.plan].cost, ref[o.plan].card)
			}
		}
	}
}

// BenchmarkPublishDelta measures delta publication at default model
// dimensions against the full-copy BenchmarkPublish baseline. clean is the
// steady-state floor — nothing trained between publishes, so the reused
// buffer set is already current and zero parameters are copied; afterEpoch
// pays one full training epoch's dirty set (at epoch cadence every
// parameter moves, so it bounds the delta path's overhead from above).
func BenchmarkPublishDelta(b *testing.B) {
	eps := benchCorpus(b, 4)
	cfg := DefaultConfig()

	b.Run("clean", func(b *testing.B) {
		m := New(cfg, testEnc)
		tr := NewTrainer(m)
		tr.FitNormalizers(eps)
		srv := NewServer(m, NewBoundedMemoryPool(4096))
		tr.PublishDelta(srv)
		tr.PublishDelta(srv)
		tr.PublishDelta(srv) // rotation warm: both slots synced
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.PublishDelta(m)
		}
	})
	b.Run("afterEpoch", func(b *testing.B) {
		m := New(cfg, testEnc)
		tr := NewTrainer(m)
		tr.FitNormalizers(eps)
		srv := NewServer(m, NewBoundedMemoryPool(4096))
		tr.PublishDelta(srv)
		tr.PublishDelta(srv)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tr.TrainEpochBatched(eps, 4, 1)
			b.StartTimer()
			srv.PublishDelta(m)
		}
	})
}

// TestSnapshotDrainStats pins the retired-slot drain-list metric: steady
// double-buffered delta publication keeps at most one retiree waiting, while
// a request held in flight on an old version makes its slot unreclaimable
// and pushes the high water up — exactly the symptom the metric exists to
// surface.
func TestSnapshotDrainStats(t *testing.T) {
	eps := benchCorpus(t, 8)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	srv := NewServer(m, nil)

	if st := srv.SnapshotDrainStats(); st.Retired != 0 || st.RetiredHighWater != 0 {
		t.Fatalf("fresh server drain stats = %+v, want zeros", st)
	}

	step := func() {
		tr.TrainEpochBatched(eps, 4, 1)
		tr.PublishDelta(srv)
	}
	step() // v2: retires v1, a full copy with no slot — nothing to drain
	if st := srv.SnapshotDrainStats(); st.Retired != 0 {
		t.Fatalf("full-copy predecessor joined the drain list: %+v", st)
	}
	step() // v3: retires delta-backed v2
	if st := srv.SnapshotDrainStats(); st.Retired != 1 || st.RetiredHighWater != 1 {
		t.Fatalf("after first delta retirement: %+v, want {1 1}", st)
	}
	step() // v4: v2's slot is reclaimed, v3 retires — steady double buffering
	if st := srv.SnapshotDrainStats(); st.Retired != 1 || st.RetiredHighWater != 1 {
		t.Fatalf("steady-state drain stats: %+v, want {1 1}", st)
	}

	// A request stuck mid-flight on the current version keeps its slot from
	// recycling: the next two publishes stack retirees and raise the mark.
	held := srv.acquire()
	if !held.deltaBacked {
		t.Fatal("current snapshot is not delta-backed; test setup broken")
	}
	step() // retires held (refs > 0: kept on the list)
	step() // held still referenced: a second retiree joins it
	if st := srv.SnapshotDrainStats(); st.Retired < 2 || st.RetiredHighWater < 2 {
		t.Fatalf("stuck request did not raise the drain high water: %+v", st)
	}
	srv.release(held)
	hw := srv.SnapshotDrainStats().RetiredHighWater
	step()
	step()
	// The released slot re-enters the rotation (one extra buffer set now
	// circulates), so the list stabilizes — further publishes must not keep
	// pushing the mark up.
	if st := srv.SnapshotDrainStats(); st.Retired > hw || st.RetiredHighWater != hw {
		t.Fatalf("drain list kept growing after release: %+v (high water was %d)", st, hw)
	}
}
