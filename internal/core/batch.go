package core

import (
	"math"
	"runtime"
	"sync"

	"costest/internal/feature"
	"costest/internal/nn"
	"costest/internal/tensor"
)

// Estimate is a denormalized (cost, cardinality) prediction.
type Estimate struct {
	Cost float64
	Card float64
}

// levelItem addresses one plan node within a batch.
type levelItem struct {
	plan int
	node int32
}

// EstimateBatch evaluates many plans with the width-first batching of
// Section 4.3. Instead of recursing plan-by-plan (one matrix-vector product
// per gate per node), all nodes at the same height across the whole batch
// are evaluated together: each level runs the representation cell's four
// gates — and the predicate embedding's leaf layer / tree cells — as single
// matrix-matrix products over every node in the level. The weights then
// stream through the cache once per level instead of once per node, sparse
// one-hot inputs skip their zero feature rows, and the remaining elementwise
// work parallelizes across workers. This is the "Batch" variant of Table 12.
func (m *Model) EstimateBatch(eps []*feature.EncodedPlan, workers int) []Estimate {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(eps) == 0 {
		return nil
	}

	// Global node ids across the batch.
	offsets := make([]int, len(eps)+1)
	maxDepth := 0
	for i, ep := range eps {
		offsets[i+1] = offsets[i] + len(ep.Nodes)
		if ep.Depth() > maxDepth {
			maxDepth = ep.Depth()
		}
	}
	total := offsets[len(eps)]
	dh := m.Cfg.Hidden
	de := m.embedDim()

	// Arena-backed per-node buffers.
	eBuf := make([]float64, total*de)
	gBuf := make([]float64, total*dh)
	rBuf := make([]float64, total*dh)
	eOf := func(id int) []float64 { return eBuf[id*de : (id+1)*de] }
	gOf := func(id int) []float64 { return gBuf[id*dh : (id+1)*dh] }
	rOf := func(id int) []float64 { return rBuf[id*dh : (id+1)*dh] }

	levels := make([][]levelItem, maxDepth)
	all := make([]levelItem, 0, total)
	for pi, ep := range eps {
		for d, nodes := range ep.Levels {
			for _, n := range nodes {
				levels[d] = append(levels[d], levelItem{plan: pi, node: n})
			}
		}
	}
	for _, lv := range levels {
		all = append(all, lv...)
	}

	// Phase 1: simple-feature embeddings per node (parallel, sparse).
	parallelFor(len(all), workers, func(k int) {
		it := all[k]
		node := &eps[it.plan].Nodes[it.node]
		m.embedSimple(node, eOf(offsets[it.plan]+int(it.node)))
	})
	// Phase 1b: predicate embeddings, batched level-wise across all
	// predicate trees in the batch.
	m.batchPredicates(eps, all, offsets, eOf, workers)

	// Phase 2: level-by-level batched representation evaluation.
	for _, lv := range levels {
		if len(lv) == 0 {
			continue
		}
		switch m.Cfg.Rep {
		case RepLSTM:
			m.batchCellLevel(eps, lv, offsets, eOf, gOf, rOf, workers)
		case RepNN:
			m.batchNNLevel(eps, lv, offsets, eOf, rOf, workers)
		}
	}

	// Phase 3: estimation heads per plan.
	out := make([]Estimate, len(eps))
	parallelFor(len(eps), workers, func(i int) {
		ep := eps[i]
		var hs headScratch
		hs.init(m)
		costS, cardS := m.evalHeads(rOf(offsets[i]+ep.Root), &hs)
		if ep.CardNode != ep.Root {
			_, cardS = m.evalHeads(rOf(offsets[i]+ep.CardNode), &hs)
		}
		out[i] = Estimate{
			Cost: m.CostNorm.Denormalize(costS),
			Card: m.CardNorm.Denormalize(cardS),
		}
	})
	return out
}

// predItem addresses one predicate-tree node of one plan node.
type predItem struct {
	plan int
	node int32
	pidx int32
	flat int // arena slot
}

// batchPredicates embeds every predicate tree in the batch, level by level:
// leaf vectors run through W_p (pool variants) or the predicate cell (LSTM
// variant) as one GEMM per level, pooling connectives combine elementwise.
// Results land in the pred segment of each node's embedding.
func (m *Model) batchPredicates(eps []*feature.EncodedPlan, all []levelItem, offsets []int,
	eOf func(int) []float64, workers int) {
	ePred := m.ePred
	predSegOff := m.eOp + m.eMeta + m.eBm

	// Enumerate predicate nodes with their heights. A tree's nodes occupy
	// consecutive arena slots, so a node's slot is its tree's base + pidx —
	// no lookup tables needed. predBase is indexed by global plan-node id.
	total := offsets[len(eps)]
	predBase := make([]int, total)
	for i := range predBase {
		predBase[i] = -1
	}
	var items []predItem
	var itemHeights []int
	maxH := 0
	for _, it := range all {
		node := &eps[it.plan].Nodes[it.node]
		if node.Pred.Empty() {
			continue
		}
		hs := predHeights(&node.Pred)
		predBase[offsets[it.plan]+int(it.node)] = len(items)
		for pidx := range node.Pred.Nodes {
			items = append(items, predItem{plan: it.plan, node: it.node,
				pidx: int32(pidx), flat: len(items)})
			itemHeights = append(itemHeights, hs[pidx])
			if hs[pidx] > maxH {
				maxH = hs[pidx]
			}
		}
	}
	if len(items) == 0 {
		return
	}
	flatOf := func(plan int, node int32, pidx int) int {
		return predBase[offsets[plan]+int(node)] + pidx
	}
	pOut := make([]float64, len(items)*ePred)
	outOf := func(flat int) []float64 { return pOut[flat*ePred : (flat+1)*ePred] }
	var pG []float64
	if m.Cfg.Pred == PredLSTM {
		pG = make([]float64, len(items)*ePred)
	}

	byLevel := make([][]predItem, maxH+1)
	for k, it := range items {
		byLevel[itemHeights[k]] = append(byLevel[itemHeights[k]], it)
	}

	for h, lv := range byLevel {
		if len(lv) == 0 {
			continue
		}
		switch m.Cfg.Pred {
		case PredPool, PredPoolMean:
			if h == 0 {
				// All leaves: one GEMM through W_p.
				n := len(lv)
				atomDim := m.Enc.AtomDim()
				xt := tensor.NewMat(n, atomDim) // node-major
				for j, it := range lv {
					copy(xt.Row(j), eps[it.plan].Nodes[it.node].Pred.Nodes[it.pidx].Vec)
				}
				out := tensor.NewMat(ePred, n)
				tensor.MatMulTransBInto(out, m.predLeaf.W.Mat(), xt)
				b := m.predLeaf.B.Vec()
				parallelFor(n, workers, func(j int) {
					dst := outOf(lv[j].flat)
					for i := 0; i < ePred; i++ {
						dst[i] = out.Data[i*n+j] + b[i]
					}
				})
			} else {
				parallelFor(len(lv), workers, func(j int) {
					it := lv[j]
					pn := &eps[it.plan].Nodes[it.node].Pred.Nodes[it.pidx]
					l := outOf(flatOf(it.plan, it.node, pn.Left))
					r := outOf(flatOf(it.plan, it.node, pn.Right))
					dst := outOf(it.flat)
					switch {
					case m.Cfg.Pred == PredPoolMean:
						tensor.Mean(dst, l, r)
					case pn.Bool == 0:
						tensor.MinInto(dst, l, r)
					default:
						tensor.MaxInto(dst, l, r)
					}
				})
			}
		case PredLSTM:
			m.batchPredCellLevel(eps, lv, flatOf, pOut, pG, workers)
		}
	}

	// Copy each tree root (pidx 0) into its node's embedding segment.
	parallelFor(len(items), workers, func(k int) {
		it := items[k]
		if it.pidx != 0 {
			return
		}
		id := offsets[it.plan] + int(it.node)
		copy(eOf(id)[predSegOff:predSegOff+ePred], outOf(it.flat))
	})
}

// batchPredCellLevel runs the predicate tree-LSTM for one level of predicate
// nodes as gate GEMMs (leaves simply have zero child states).
func (m *Model) batchPredCellLevel(eps []*feature.EncodedPlan, lv []predItem,
	flatOf func(int, int32, int) int, pOut, pG []float64, workers int) {
	ePred := m.ePred
	atomDim := m.Enc.AtomDim()
	n := len(lv)
	zt := tensor.NewMat(n, ePred+atomDim) // node-major
	gPrev := tensor.NewMat(n, ePred)
	parallelFor(n, workers, func(j int) {
		it := lv[j]
		pn := &eps[it.plan].Nodes[it.node].Pred.Nodes[it.pidx]
		var gl, rl, gr, rr []float64
		if pn.Left >= 0 {
			fl := flatOf(it.plan, it.node, pn.Left)
			gl = pG[fl*ePred : (fl+1)*ePred]
			rl = pOut[fl*ePred : (fl+1)*ePred]
		}
		if pn.Right >= 0 {
			fr := flatOf(it.plan, it.node, pn.Right)
			gr = pG[fr*ePred : (fr+1)*ePred]
			rr = pOut[fr*ePred : (fr+1)*ePred]
		}
		zRow := zt.Row(j)
		gRow := gPrev.Row(j)
		for i := 0; i < ePred; i++ {
			var g, r float64
			if gl != nil {
				g += gl[i]
				r += rl[i]
			}
			if gr != nil {
				g += gr[i]
				r += rr[i]
			}
			gRow[i] = g / 2
			zRow[i] = r / 2
		}
		copy(zRow[ePred:], pn.Vec)
	})
	f, k1, r, k2 := gateGEMM(m.predCell, zt, ePred)
	parallelFor(n, workers, func(j int) {
		it := lv[j]
		g := pG[it.flat*ePred : (it.flat+1)*ePred]
		rOut := pOut[it.flat*ePred : (it.flat+1)*ePred]
		gRow := gPrev.Row(j)
		for i := 0; i < ePred; i++ {
			gt := f.Data[i*n+j]*gRow[i] + k1.Data[i*n+j]*r.Data[i*n+j]
			g[i] = gt
			rOut[i] = k2.Data[i*n+j] * math.Tanh(gt)
		}
	})
}

// predHeights returns each predicate node's height above the leaves.
func predHeights(ep *feature.EncodedPred) []int {
	hs := make([]int, len(ep.Nodes))
	var rec func(i int) int
	rec = func(i int) int {
		pn := &ep.Nodes[i]
		if pn.IsLeaf {
			hs[i] = 0
			return 0
		}
		l := rec(pn.Left)
		r := rec(pn.Right)
		h := l
		if r > h {
			h = r
		}
		hs[i] = h + 1
		return h + 1
	}
	if len(ep.Nodes) > 0 {
		rec(0)
	}
	return hs
}

// gateGEMM evaluates the four cell gates over a level: pre = W·zᵀ (zt holds
// one node's input per contiguous row), then the gate nonlinearity,
// overlapping the four independent products.
func gateGEMM(cell *lstmCell, zt *tensor.Mat, dh int) (f, k1, r, k2 *tensor.Mat) {
	n := zt.Rows
	f = tensor.NewMat(dh, n)
	k1 = tensor.NewMat(dh, n)
	r = tensor.NewMat(dh, n)
	k2 = tensor.NewMat(dh, n)
	run := func(dst *tensor.Mat, l *nn.Linear, act func(float64) float64) {
		tensor.MatMulTransBInto(dst, l.W.Mat(), zt)
		b := l.B.Vec()
		for i := 0; i < dh; i++ {
			row := dst.Data[i*n : (i+1)*n]
			bi := b[i]
			for j := range row {
				row[j] = act(row[j] + bi)
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { defer wg.Done(); run(f, cell.wf, sigmoidScalar) }()
	go func() { defer wg.Done(); run(k1, cell.wk1, sigmoidScalar) }()
	go func() { defer wg.Done(); run(r, cell.wr, math.Tanh) }()
	go func() { defer wg.Done(); run(k2, cell.wk2, sigmoidScalar) }()
	wg.Wait()
	return f, k1, r, k2
}

// batchCellLevel evaluates the paper's cell over one plan level as gate
// GEMMs: pre = W · Z where Z stacks [R_{t-1}; x] column-per-node.
func (m *Model) batchCellLevel(eps []*feature.EncodedPlan, lv []levelItem, offsets []int,
	eOf, gOf, rOf func(int) []float64, workers int) {
	dh := m.Cfg.Hidden
	de := m.embedDim()
	n := len(lv)
	in := dh + de
	zt := tensor.NewMat(n, in)    // node-major: row j = [Rprev_j; E_j]
	gPrev := tensor.NewMat(n, dh) // node-major

	parallelFor(n, workers, func(j int) {
		it := lv[j]
		node := &eps[it.plan].Nodes[it.node]
		base := offsets[it.plan]
		var gl, rl, gr, rr []float64
		if node.Left >= 0 {
			gl, rl = gOf(base+node.Left), rOf(base+node.Left)
		}
		if node.Right >= 0 {
			gr, rr = gOf(base+node.Right), rOf(base+node.Right)
		}
		zRow := zt.Row(j)
		gRow := gPrev.Row(j)
		for i := 0; i < dh; i++ {
			var g, r float64
			if gl != nil {
				g += gl[i]
				r += rl[i]
			}
			if gr != nil {
				g += gr[i]
				r += rr[i]
			}
			gRow[i] = g / 2
			zRow[i] = r / 2
		}
		copy(zRow[dh:], eOf(base+int(it.node)))
	})

	f, k1, r, k2 := gateGEMM(m.repCell, zt, dh)
	parallelFor(n, workers, func(j int) {
		it := lv[j]
		id := offsets[it.plan] + int(it.node)
		g := gOf(id)
		rOut := rOf(id)
		gRow := gPrev.Row(j)
		for i := 0; i < dh; i++ {
			gt := f.Data[i*n+j]*gRow[i] + k1.Data[i*n+j]*r.Data[i*n+j]
			g[i] = gt
			rOut[i] = k2.Data[i*n+j] * math.Tanh(gt)
		}
	})
}

// batchNNLevel is the RepNN counterpart: R = ReLU(W·[E, Rl, Rr] + b) as one
// GEMM per level.
func (m *Model) batchNNLevel(eps []*feature.EncodedPlan, lv []levelItem, offsets []int,
	eOf, rOf func(int) []float64, workers int) {
	dh := m.Cfg.Hidden
	de := m.embedDim()
	n := len(lv)
	zt := tensor.NewMat(n, de+2*dh) // node-major
	parallelFor(n, workers, func(j int) {
		it := lv[j]
		node := &eps[it.plan].Nodes[it.node]
		base := offsets[it.plan]
		zRow := zt.Row(j)
		copy(zRow, eOf(base+int(it.node)))
		if node.Left >= 0 {
			copy(zRow[de:de+dh], rOf(base+node.Left))
		}
		if node.Right >= 0 {
			copy(zRow[de+dh:], rOf(base+node.Right))
		}
	})
	out := tensor.NewMat(dh, n)
	tensor.MatMulTransBInto(out, m.repNN.W.Mat(), zt)
	b := m.repNN.B.Vec()
	parallelFor(n, workers, func(j int) {
		it := lv[j]
		r := rOf(offsets[it.plan] + int(it.node))
		for i := 0; i < dh; i++ {
			v := out.Data[i*n+j] + b[i]
			if v < 0 {
				v = 0
			}
			r[i] = v
		}
	})
}

// embedSimple computes one node's operation/metadata/bitmap embeddings
// (the predicate segment is filled by batchPredicates), exploiting input
// sparsity: one-hot and bitmap features touch only the weight columns of
// their set bits.
func (m *Model) embedSimple(node *feature.EncodedNode, dst []float64) {
	off := 0
	sparseLinearReLU(dst[off:off+m.eOp], m.opL, node.Op)
	off += m.eOp
	sparseLinearReLU(dst[off:off+m.eMeta], m.metaL, node.Meta)
	off += m.eMeta
	if m.bmL != nil {
		if node.Bitmap != nil {
			sparseLinearReLU(dst[off:off+m.eBm], m.bmL, node.Bitmap)
		} else {
			biasReLU(dst[off:off+m.eBm], m.bmL)
		}
		off += m.eBm
	}
	pred := dst[off : off+m.ePred]
	for i := range pred {
		pred[i] = 0
	}
}

// sparseLinearReLU computes dst = ReLU(Wx + b) visiting only non-zero x.
func sparseLinearReLU(dst []float64, l *nn.Linear, x []float64) {
	copy(dst, l.B.Vec())
	w := l.W.Mat()
	for j, v := range x {
		if v != 0 {
			tensor.AddColumn(dst, w, j, v)
		}
	}
	for i, v := range dst {
		if v < 0 {
			dst[i] = 0
		}
	}
}

// biasReLU is the zero-input case: ReLU(b).
func biasReLU(dst []float64, l *nn.Linear) {
	for i, v := range l.B.Vec() {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

func sigmoidScalar(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// parallelFor runs f(0..n-1) across at most `workers` goroutines.
func parallelFor(n, workers int, f func(int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
