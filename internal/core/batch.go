package core

import (
	"math"
	"runtime"
	"sync"

	"costest/internal/feature"
	"costest/internal/nn"
	"costest/internal/tensor"
)

// Estimate is a denormalized (cost, cardinality) prediction.
type Estimate struct {
	Cost float64
	Card float64
}

// levelItem addresses one plan node within a batch.
type levelItem struct {
	plan int
	node int32
}

// predItem addresses one predicate-tree node of one plan node.
type predItem struct {
	plan int
	node int32
	pidx int32
	flat int // arena slot
}

// EstimateBatch evaluates many plans with the width-first batching of
// Section 4.3. Instead of recursing plan-by-plan (one matrix-vector product
// per gate per node), all nodes at the same height across the whole batch
// are evaluated together: each level runs the representation cell's four
// gates — and the predicate embedding's leaf layer / tree cells — as single
// matrix-matrix products over every node in the level. The weights then
// stream through the cache once per level instead of once per node, sparse
// one-hot inputs skip their zero feature rows, and the remaining elementwise
// work parallelizes across workers. This is the "Batch" variant of Table 12.
//
// This convenience API draws a reusable BatchSession from an internal pool,
// so concurrent callers each get private arenas; the per-call state itself
// is allocated once per session and reused (see BatchSession). Serving loops
// that batch at high rates should hold their own NewBatchSession and call it
// directly.
func (m *Model) EstimateBatch(eps []*feature.EncodedPlan, workers int) []Estimate {
	if len(eps) == 0 {
		return nil
	}
	s := m.batchSession()
	out := make([]Estimate, len(eps))
	copy(out, s.EstimateBatch(eps, workers))
	s.releasePlans()
	m.batchSessions.Put(s)
	return out
}

// EstimateBatchWithPool is EstimateBatch with a representation memory pool:
// sub-plans already in the pool skip their levels' rows (their stored G/R
// are injected into the batch arenas up front), and newly computed sub-plan
// representations are inserted afterwards — Section 3's online workflow on
// the batch path.
func (m *Model) EstimateBatchWithPool(eps []*feature.EncodedPlan, pool *MemoryPool, workers int) []Estimate {
	if len(eps) == 0 {
		return nil
	}
	s := m.batchSession()
	out := make([]Estimate, len(eps))
	copy(out, s.EstimateBatchWithPool(eps, pool, workers))
	s.releasePlans()
	m.batchSessions.Put(s)
	return out
}

// batchSession fetches a reusable batch session from the model's pool.
func (m *Model) batchSession() *BatchSession {
	if s, ok := m.batchSessions.Get().(*BatchSession); ok {
		return s
	}
	return NewBatchSession(m)
}

// embedSimple computes one node's operation/metadata/bitmap embeddings
// (the predicate segment is filled by the predicate sweep), exploiting input
// sparsity: one-hot and bitmap features touch only the weight columns of
// their set bits.
func (m *Model) embedSimple(node *feature.EncodedNode, dst []float64) {
	off := 0
	sparseLinearReLU(dst[off:off+m.eOp], m.opL, node.Op)
	off += m.eOp
	sparseLinearReLU(dst[off:off+m.eMeta], m.metaL, node.Meta)
	off += m.eMeta
	if m.bmL != nil {
		if node.Bitmap != nil {
			sparseLinearReLU(dst[off:off+m.eBm], m.bmL, node.Bitmap)
		} else {
			biasReLU(dst[off:off+m.eBm], m.bmL)
		}
		off += m.eBm
	}
	pred := dst[off : off+m.ePred]
	for i := range pred {
		pred[i] = 0
	}
}

// sparseLinearReLU computes dst = ReLU(Wx + b) visiting only non-zero x.
func sparseLinearReLU(dst []float64, l *nn.Linear, x []float64) {
	copy(dst, l.B.Vec())
	w := l.W.Mat()
	for j, v := range x {
		if v != 0 {
			tensor.AddColumn(dst, w, j, v)
		}
	}
	for i, v := range dst {
		if v < 0 {
			dst[i] = 0
		}
	}
}

// sparseLinearBackward accumulates a linear layer's parameter gradients for
// upstream gradient dy and sparse input x, visiting only the weight columns
// of non-zero x (the gradient mirror of sparseLinearReLU; no input gradient
// — embedding inputs are data). Element-for-element identical to
// Linear.Backward(nil, dy, x), just skipping the zero columns.
func sparseLinearBackward(l *nn.Linear, dy, x []float64) {
	w := l.W.GradMat()
	for j, v := range x {
		if v != 0 {
			tensor.AddToColumn(w, j, v, dy)
		}
	}
	tensor.AddTo(l.B.GradVec(), dy)
}

// biasReLU is the zero-input case: ReLU(b).
func biasReLU(dst []float64, l *nn.Linear) {
	for i, v := range l.B.Vec() {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

func sigmoidScalar(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// resolveWorkers maps the shared workers-knob convention onto a concrete
// goroutine count: `workers <= 0` means one worker per available CPU
// (runtime.GOMAXPROCS(0)). Every runtime entry point that takes a workers
// parameter — EstimateBatch/EstimateBatchWithPool, Trainer.TrainEpochBatched
// (via BatchSession.run) and the data-parallel trainer — resolves through
// this one helper so the default cannot drift between paths.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// parallelFor runs f(0..n-1) across at most `workers` goroutines.
func parallelFor(n, workers int, f func(int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
