package core

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"costest/internal/fault"
	"costest/internal/feature"
)

// Checkpoint file layout around a path P:
//
//	P        the current checkpoint (always a complete file — see below)
//	P.prev   the previous checkpoint, kept as the last-good fallback
//	P.tmp    in-progress write; never read, removed by the next save
//
// SaveCheckpoint never overwrites P in place: the new checkpoint is written
// and fsynced to P.tmp, then P is renamed to P.prev and P.tmp to P — both
// atomic on POSIX filesystems. A crash at any instant leaves a loadable
// state:
//
//   - killed while writing P.tmp: P is the old, complete checkpoint;
//   - killed between the two renames: P is briefly absent but P.prev is the
//     old, complete checkpoint and LoadCheckpoint falls back to it;
//   - killed after the final rename: P is the new checkpoint.
//
// Fault hook points: "checkpoint.write" (before the temp write),
// "checkpoint.sync" (before fsync), "checkpoint.rename" (after the temp file
// is durable, before any rename — a Crash here is the kill-mid-checkpoint
// case the smoke test drives), "checkpoint.read" (before parsing a file).

// SaveCheckpoint atomically replaces path with m's serialized checkpoint,
// keeping the previous checkpoint at path+".prev" as a last-good fallback.
// On any error the file at path is untouched.
func SaveCheckpoint(path string, m *Model) error {
	tmp := path + ".tmp"
	_ = os.Remove(tmp) // stale leftover from a writer killed mid-checkpoint
	if err := fault.Point(fault.SiteCheckpointWrite); err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", path, err)
	}
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", path, err)
	}
	if err := m.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint %s: %w", path, err)
	}
	syncErr := fault.Point(fault.SiteCheckpointSync)
	if syncErr == nil {
		syncErr = f.Sync()
	}
	if syncErr != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint %s: fsync: %w", path, syncErr)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint %s: close: %w", path, err)
	}
	// The temp file is durable; make it current. A Crash injected here (or a
	// real kill) leaves path intact — the cold-start still loads last-good.
	if err := fault.Point(fault.SiteCheckpointRename); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint %s: %w", path, err)
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+".prev"); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("core: checkpoint %s: keep last-good: %w", path, err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: checkpoint %s: install: %w", path, err)
	}
	// Make the renames durable too (best effort: not every filesystem
	// supports directory fsync, and the data files already are durable).
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadCheckpoint cold-loads the self-describing checkpoint at path,
// falling back to path+".prev" when the primary is missing, corrupt or
// truncated (the crash windows SaveCheckpoint can leave behind). It returns
// the loaded model and the file that actually served it. When neither file
// exists the error matches fs.ErrNotExist — "no checkpoint yet", distinct
// from corruption, which reports every file it rejected.
func LoadCheckpoint(path string, enc *feature.Encoder) (*Model, string, error) {
	var corrupt []error
	for _, p := range []string{path, path + ".prev"} {
		m, err := loadCheckpointFile(p, enc)
		if err == nil {
			return m, p, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			corrupt = append(corrupt, fmt.Errorf("%s: %w", p, err))
		}
	}
	if len(corrupt) == 0 {
		return nil, "", fmt.Errorf("core: checkpoint %s: %w", path, fs.ErrNotExist)
	}
	return nil, "", fmt.Errorf("core: no loadable checkpoint: %w", errors.Join(corrupt...))
}

// loadCheckpointFile reads one checkpoint file through the injectable read
// hook (chaos tests fail reads here without touching the filesystem).
func loadCheckpointFile(p string, enc *feature.Encoder) (*Model, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := fault.Point(fault.SiteCheckpointRead); err != nil {
		return nil, err
	}
	return LoadModel(f, enc)
}
