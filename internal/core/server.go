package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"costest/internal/feature"
)

// Server is the hot-swap serving runtime: it binds the inference sessions,
// batch sessions and the representation memory pool to the current
// ModelSnapshot, re-resolving the snapshot pointer on every request. A
// long-lived optimizer process keeps one Server; a Trainer retrains the
// live model in place and calls Publish between epochs, while concurrent
// Estimate/EstimateBatch callers keep serving — requests in flight finish
// on the snapshot they started with, later requests pick up the new one,
// and no request ever observes torn weights.
//
// The memory pool is generation-tagged with the snapshot version, so a
// publish invalidates every pooled representation in O(1) (SetGeneration)
// instead of flushing the pool: entries from the old generation are
// rejected by new-generation lookups and evicted lazily.
//
// Sessions are recycled through internal sync.Pools and lazily rebound to
// the current snapshot on checkout, so steady-state Estimate does the same
// zero-allocation work as a session held directly against a fixed model.
// EstimateBatch allocates only its result slice (the session-owned slab
// cannot outlive the checkout), len(eps) Estimates per call.
type Server struct {
	cur  atomic.Pointer[ModelSnapshot]
	pool *MemoryPool

	// pubMu serializes publishers and makes each publication atomic: the
	// snapshot build, the pool-generation bump and the snapshot install
	// happen as one unit, so racing publishers can never interleave a
	// version install with an older generation bump. Readers are lock-free.
	pubMu sync.Mutex

	// delta is the delta-publication state (lazily initialized by the first
	// PublishDelta, reset when the source model changes); guarded by pubMu.
	delta *deltaPub

	// retiredHW is the high-water mark of the retired-snapshot drain list —
	// how many superseded delta snapshots have ever been awaiting drain at
	// once. Steady-state double buffering holds it at 1; growth means retirees
	// are not draining (long-pinned snapshots or requests stuck on old
	// versions) and each stuck retiree is a full weight-buffer set that cannot
	// be recycled. Guarded by pubMu.
	retiredHW int

	// prewarm tracks the hottest served plans for post-publish pool
	// pre-warming (nil when disabled); prewarmMu serializes replays so they
	// never pile up across rapid publishes, and prewarmed records the last
	// version replayed so a foreground PrewarmNow and the background
	// post-publish replay of the same version don't run twice.
	prewarm   atomic.Pointer[hotTracker]
	prewarmMu sync.Mutex
	prewarmed atomic.Uint64
	// prewarmPending is true while a background replay worker is alive; a
	// publish only spawns a worker when it flips this false→true, so rapid
	// publication (per-minibatch delta) kicks one coalescing worker instead
	// of piling a goroutine per publish onto prewarmMu.
	prewarmPending atomic.Bool

	// publishHook, when set, observes every publication (full and delta)
	// with the source model and the freshly installed version, called under
	// pubMu on the publishing goroutine — i.e. with training quiesced, so
	// the hook may read m's parameter values and stamps exactly like the
	// publication itself did. This is the tap replication streams from: a
	// replica.Publisher registers here and serializes the dirty parameters
	// of each publication to its followers. Guarded by pubMu.
	publishHook func(m *Model, version uint64)

	sessions      sync.Pool
	batchSessions sync.Pool
}

// hotTracker records how often each distinct plan (keyed by its root
// signature) has been served, so a publish can replay the hottest ones
// through the new snapshot. Hit counts are halved at each replay, so the hot
// set adapts as the workload drifts. The tracker retains references to the
// served EncodedPlans; cap the working set with the EnablePrewarm limit.
type hotTracker struct {
	mu    sync.Mutex
	limit int
	plans map[string]*hotPlan
	// scratch buffers reused across replays.
	order []*hotPlan
	batch []*feature.EncodedPlan
}

type hotPlan struct {
	ep   *feature.EncodedPlan
	hits int64
}

// track counts one served plan. New plans are admitted while the tracked set
// is under twice the replay limit; replays prune it back down.
func (tr *hotTracker) track(ep *feature.EncodedPlan) {
	sig := ep.Nodes[ep.Root].Sig
	tr.mu.Lock()
	if hp := tr.plans[sig]; hp != nil {
		hp.hits++
	} else if len(tr.plans) < 2*tr.limit {
		tr.plans[sig] = &hotPlan{ep: ep, hits: 1}
	}
	tr.mu.Unlock()
}

// topPlans returns the hottest tracked plans (at most the replay limit, hit
// count descending, root signature as the deterministic tie-break), halves
// every hit count, and prunes cooled-off entries beyond the limit.
func (tr *hotTracker) topPlans() []*feature.EncodedPlan {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.order = tr.order[:0]
	for _, hp := range tr.plans {
		tr.order = append(tr.order, hp)
	}
	sort.Slice(tr.order, func(i, j int) bool {
		if tr.order[i].hits != tr.order[j].hits {
			return tr.order[i].hits > tr.order[j].hits
		}
		return tr.order[i].ep.Nodes[tr.order[i].ep.Root].Sig < tr.order[j].ep.Nodes[tr.order[j].ep.Root].Sig
	})
	tr.batch = tr.batch[:0]
	for i, hp := range tr.order {
		if i < tr.limit {
			tr.batch = append(tr.batch, hp.ep)
		} else if hp.hits <= 1 {
			delete(tr.plans, hp.ep.Nodes[hp.ep.Root].Sig)
		}
		hp.hits /= 2
	}
	return tr.batch
}

// NewServer returns a server whose initial snapshot (version 1) copies m's
// current weights. The pool may be nil to serve without representation
// caching; a non-nil pool is owned by the server from here on — its
// generation tracks the published version.
func NewServer(m *Model, pool *MemoryPool) *Server {
	srv := &Server{pool: pool}
	snap := newSnapshot(m, 1)
	srv.cur.Store(snap)
	if pool != nil {
		pool.SetGeneration(snap.version)
	}
	return srv
}

// Snapshot returns the currently served snapshot, pinned: callers may hold
// it indefinitely (for replay, validation, or shadow scoring); it never
// changes under them, even when the server publishes deltas (pinning
// excludes the snapshot's buffers from recycling).
func (srv *Server) Snapshot() *ModelSnapshot {
	for {
		s := srv.cur.Load()
		s.Pin()
		// Re-check after pinning: a racing PublishDelta could have retired
		// and reclaimed s between the load and the pin. Pinning a reclaimed
		// snapshot is harmless (its slot pointer is already gone); the
		// retry returns a snapshot whose pin is guaranteed to have landed
		// before any reclaim decision.
		if srv.cur.Load() == s {
			return s
		}
	}
}

// acquire checks the current snapshot out for one request. Full-copy
// snapshots are frozen forever, so the common non-delta path is the same
// single atomic load it has always been. Delta-backed snapshots are
// ref-counted: the count guarantees a delta publish never recycles their
// buffers mid-request, and the load/ref/re-check loop closes the race with
// a publisher that retires the snapshot between the load and the ref — a
// reader that loses the race releases and retries, never touching the
// stale snapshot's weights.
func (srv *Server) acquire() *ModelSnapshot {
	for {
		s := srv.cur.Load()
		if !s.deltaBacked {
			return s
		}
		s.refs.Add(1)
		if srv.cur.Load() == s {
			return s
		}
		s.refs.Add(-1)
	}
}

// release returns a snapshot checked out by acquire.
func (srv *Server) release(s *ModelSnapshot) {
	if s.deltaBacked {
		s.refs.Add(-1)
	}
}

// AcquireSnapshot checks the current snapshot out with an in-flight
// reference held, exactly as a served request does. Unlike Snapshot (whose
// pin is sticky and permanently excludes a delta snapshot's buffers from
// recycling), an acquired reference is returned with ReleaseSnapshot, at
// which point the buffers rejoin the recycling rotation — the right
// primitive for rotating retention like the scheduler's last-known-good
// fallback snapshot, which outlives publishes only until the next known-good
// version replaces it. While held, the snapshot's weights are guaranteed
// frozen.
func (srv *Server) AcquireSnapshot() *ModelSnapshot { return srv.acquire() }

// ReleaseSnapshot returns a reference taken by AcquireSnapshot.
func (srv *Server) ReleaseSnapshot(s *ModelSnapshot) { srv.release(s) }

// Version returns the currently served snapshot version.
func (srv *Server) Version() uint64 { return srv.cur.Load().version }

// Pool returns the server's memory pool (nil when serving uncached).
func (srv *Server) Pool() *MemoryPool { return srv.pool }

// Publish atomically installs a full copy of m's current weights as the
// next snapshot and advances the pool generation, logically invalidating
// every pooled representation computed under older weights. It returns the
// new snapshot, which stays frozen forever. The weight copy reads m on the
// calling goroutine: call from the goroutine that trains m (between
// optimizer steps), or with training otherwise quiesced. Concurrent serving
// needs no quiescing — that is the point.
func (srv *Server) Publish(m *Model) *ModelSnapshot {
	srv.pubMu.Lock()
	defer srv.pubMu.Unlock()
	snap := newSnapshot(m, srv.cur.Load().version+1)
	srv.install(snap)
	if srv.publishHook != nil {
		srv.publishHook(m, snap.version)
	}
	return snap
}

// SetPublishHook installs h to observe every subsequent publication (full
// and delta) with the source model and the new version. The hook runs on
// the publishing goroutine under the publication lock — training is
// quiesced there, so h may read m's parameters the way the publication did.
// Install before publishing begins; pass nil to remove.
func (srv *Server) SetPublishHook(h func(m *Model, version uint64)) {
	srv.pubMu.Lock()
	defer srv.pubMu.Unlock()
	srv.publishHook = h
}

// PublishDelta is Publish through the delta path: per-param dirty stamps
// (nn.ParamSet) tell it which parameters moved since the target buffer set
// was last synced, and only those are copied — between two publishes that
// trained a handful of parameters, publication cost drops from a full
// weight copy to the touched slice, making per-minibatch publication
// affordable. Buffers double-buffer in steady state: the snapshot retired
// by the previous publish drains its in-flight requests and is re-synced by
// the next one. The returned snapshot is therefore only guaranteed frozen
// until two further delta publishes — call Pin (or use Snapshot) to hold it
// longer; served estimates are unaffected either way, since a buffer is
// never recycled while a request or pin holds it.
//
// Delta and full publication interleave freely and produce bit-identical
// snapshots; the first PublishDelta for a given source model (or after the
// source changes) full-copies into a fresh buffer set. Like Publish, call
// with training quiesced on m. Dirty tracking covers Adam steps,
// ParamSet.Load and InitXavier; code that writes parameter values directly
// must call nn.ParamSet.MarkAllUpdated first.
func (srv *Server) PublishDelta(m *Model) *ModelSnapshot {
	srv.pubMu.Lock()
	defer srv.pubMu.Unlock()
	if srv.delta == nil || srv.delta.src != m {
		srv.delta = &deltaPub{src: m}
	}
	sl := srv.delta.takeSlot()
	if sl == nil {
		sl = newSlot(m)
	}
	srv.delta.lastCopied = sl.sync(m)
	snap := &ModelSnapshot{version: srv.cur.Load().version + 1, model: sl.model, slot: sl, deltaBacked: true}
	srv.install(snap)
	if srv.publishHook != nil {
		srv.publishHook(m, snap.version)
	}
	return snap
}

// LastDeltaCopied reports how many parameters the most recent PublishDelta
// copied (the rest were already current in the reused buffer set) — an
// observability hook for tests and publication metrics.
func (srv *Server) LastDeltaCopied() int {
	srv.pubMu.Lock()
	defer srv.pubMu.Unlock()
	if srv.delta == nil {
		return 0
	}
	return srv.delta.lastCopied
}

// DrainStats reports the state of the retired-snapshot-slot drain list:
// Retired is the number of superseded delta snapshots currently awaiting
// drain (their weight buffers cannot be recycled until every in-flight
// request and pin on them clears), RetiredHighWater the most that have ever
// waited at once. Healthy steady-state delta publication double-buffers, so
// the high water sits at 1; a climbing mark is the observable symptom of
// requests or pins holding old versions alive.
type DrainStats struct {
	Retired          int
	RetiredHighWater int
}

// SnapshotDrainStats returns the server's current drain-list statistics.
func (srv *Server) SnapshotDrainStats() DrainStats {
	srv.pubMu.Lock()
	defer srv.pubMu.Unlock()
	st := DrainStats{RetiredHighWater: srv.retiredHW}
	if srv.delta != nil {
		st.Retired = len(srv.delta.retired)
	}
	return st
}

// install makes snap the served snapshot: generation bump first, then the
// snapshot store, so a snapshot is never observable before the pool accepts
// its generation; the retiring delta snapshot (if any) joins the drain list
// for buffer reuse. Caller holds pubMu.
func (srv *Server) install(snap *ModelSnapshot) {
	if srv.pool != nil {
		srv.pool.SetGeneration(snap.version)
	}
	prev := srv.cur.Load()
	srv.cur.Store(snap)
	if prev != nil && prev.slot != nil && srv.delta != nil {
		srv.delta.retired = append(srv.delta.retired, prev)
		if n := len(srv.delta.retired); n > srv.retiredHW {
			srv.retiredHW = n
		}
	}
	if srv.pool != nil && srv.prewarm.Load() != nil &&
		srv.prewarmPending.CompareAndSwap(false, true) {
		// Hide the post-swap stale transient from foreground requests:
		// replay the hottest signatures through the new snapshot in the
		// background, repopulating the pool at the new generation. At most
		// one worker runs; publishes landing while it works are coalesced
		// into its catch-up loop.
		go srv.prewarmBackground()
	}
}

// EnablePrewarm turns on post-publish pool pre-warming: the server tracks
// the hottest served plans (up to limit replayed per publish) and, after
// every Publish, re-evaluates them against the new snapshot in a background
// goroutine so their representations are already resident at the new pool
// generation when foreground requests arrive — the stale-lookup transient a
// swap otherwise causes is paid off the request path. limit <= 0 disables.
// Enable before serving begins; tracking adds one small critical section per
// request. On a server without a pool the call is a no-op (there is nothing
// to pre-warm, so no tracking overhead is installed either).
func (srv *Server) EnablePrewarm(limit int) {
	if limit <= 0 || srv.pool == nil {
		srv.prewarm.Store(nil)
		return
	}
	srv.prewarm.Store(&hotTracker{limit: limit, plans: make(map[string]*hotPlan)})
}

// PrewarmNow replays the hottest tracked plans through the currently served
// snapshot synchronously, returning how many were replayed — the foreground
// form of the background pass Publish schedules (deterministic hooks for
// tests and warm-up scripts). Concurrent publishes are safe: the replay
// re-resolves the snapshot under the replay lock and verifies it against
// the pool generation, so it can never warm the pool through weights older
// than the generation it stamps.
func (srv *Server) PrewarmNow() int {
	return srv.prewarmReplay(0)
}

// prewarmBackground is the post-publish replay worker: it replays the
// currently served version and loops until the replayed version has caught
// up with the served one, coalescing every publish that landed while it
// worked into a single catch-up pass. The prewarmPending handshake with
// install guarantees at most one worker is ever replaying and that a
// publish landing in the exit window re-kicks (its CompareAndSwap only
// succeeds once this worker has cleared the flag and decided to exit).
func (srv *Server) prewarmBackground() {
	for {
		if srv.prewarm.Load() == nil {
			srv.prewarmPending.Store(false)
			return // pre-warming was disabled mid-flight
		}
		cur := srv.cur.Load().version
		if srv.prewarmed.Load() < cur {
			srv.prewarmReplay(cur)
		}
		srv.prewarmPending.Store(false)
		if srv.prewarmed.Load() >= srv.cur.Load().version {
			return // caught up; the next publish kicks a fresh worker
		}
		if !srv.prewarmPending.CompareAndSwap(false, true) {
			return // a racing publish already kicked its own worker
		}
	}
}

// prewarmReplay re-evaluates the hottest tracked plans against the
// currently served snapshot, inserting their sub-plan representations into
// the pool at that snapshot's generation. Replays are serialized, and two
// guards close the racing-publish windows:
//
//   - wantVersion > 0 (a publish-scheduled replay) is skipped when the
//     served snapshot has moved past it — the newer publish scheduled its
//     own replay.
//   - A replay only proceeds when the pool generation equals the resolved
//     snapshot's version. A publish installs generation-then-snapshot, so a
//     mismatch means an install is mid-flight; replaying would observe a
//     generation older than the snapshot about to serve. The installer's
//     own replay follows immediately.
//
// The snapshot is ref-acquired for the whole replay, so a delta publish can
// never recycle its weight buffers mid-replay.
func (srv *Server) prewarmReplay(wantVersion uint64) int {
	tr := srv.prewarm.Load()
	if tr == nil || srv.pool == nil {
		return 0
	}
	srv.prewarmMu.Lock()
	defer srv.prewarmMu.Unlock()
	snap := srv.acquire()
	defer srv.release(snap)
	if wantVersion != 0 && snap.version != wantVersion {
		return 0
	}
	if srv.pool.Generation() != snap.version {
		return 0
	}
	// The guards passed: this version is being handled, record it (under
	// prewarmMu) even if nothing is tracked yet — the background worker's
	// catch-up loop terminates on this mark, not on the replay size.
	if srv.prewarmed.Load() < snap.version {
		srv.prewarmed.Store(snap.version)
	}
	plans := tr.topPlans()
	if len(plans) == 0 {
		return 0
	}
	// One worker: pre-warming is a background nicety and must not steal
	// cores from foreground serving.
	s := srv.batchSession(snap)
	s.EstimateBatchWithPool(plans, srv.pool, 1)
	s.releasePlans()
	srv.batchSessions.Put(s)
	return len(plans)
}

// Estimate serves one plan against the current snapshot through the
// server's pool, returning denormalized cost/cardinality estimates and the
// snapshot version that produced them. The estimate is bit-identical to a
// single-threaded evaluation of that version's weights.
//
// costlint:noalloc
func (srv *Server) Estimate(ep *feature.EncodedPlan) (cost, card float64, version uint64) {
	snap := srv.acquire()
	s := srv.session(snap)
	cost, card = s.EstimateWithPool(ep, srv.pool)
	srv.sessions.Put(s)
	srv.release(snap)
	if tr := srv.prewarm.Load(); tr != nil {
		tr.track(ep)
	}
	return cost, card, snap.version
}

// EstimateBatch serves a batch of plans against the current snapshot
// through the server's pool (see Model.EstimateBatch for the level-batched
// algorithm and the meaning of workers), returning one estimate per plan
// and the snapshot version that produced them. The whole batch is served
// by a single snapshot resolution, so every returned estimate belongs to
// the same version.
func (srv *Server) EstimateBatch(eps []*feature.EncodedPlan, workers int) ([]Estimate, uint64) {
	snap := srv.acquire()
	out := srv.EstimateBatchOn(snap, eps, workers)
	srv.release(snap)
	return out, snap.version
}

// EstimateBatchOn is EstimateBatch against a snapshot the caller already
// holds (acquired via AcquireSnapshot, or pinned): the caller's hold is what
// keeps the weights frozen for the duration, so the batch is bit-identical
// to a single-threaded evaluation of snap's version even when it is no
// longer the currently served one. This is the serving path for callers that
// need the exact snapshot identity back — the scheduler's circuit breaker
// retains the snapshot of each successful batch as its degraded-mode
// fallback.
func (srv *Server) EstimateBatchOn(snap *ModelSnapshot, eps []*feature.EncodedPlan, workers int) []Estimate {
	if len(eps) == 0 {
		return nil
	}
	return srv.EstimateBatchInto(snap, eps, make([]Estimate, len(eps)), workers)
}

// EstimateBatchInto is EstimateBatchOn writing the estimates into
// caller-provided storage: out must have len(eps) elements and is returned
// filled. The warm path performs zero heap allocations — the micro-batching
// scheduler's dispatcher reuses one result buffer across batches, which is
// what keeps Submit→served round trips allocation-free in steady state.
//
// costlint:noalloc
func (srv *Server) EstimateBatchInto(snap *ModelSnapshot, eps []*feature.EncodedPlan, out []Estimate, workers int) []Estimate {
	if len(eps) == 0 {
		return out[:0]
	}
	s := srv.batchSession(snap)
	copy(out, s.EstimateBatchWithPool(eps, srv.pool, workers))
	s.releasePlans()
	srv.batchSessions.Put(s)
	if tr := srv.prewarm.Load(); tr != nil {
		for _, ep := range eps {
			tr.track(ep)
		}
	}
	return out
}

// session checks a recycled inference session out of the pool, rebinding
// it to snap when it last served a different version (one pointer store;
// the warm arenas carry over because all snapshots share a configuration).
func (srv *Server) session(snap *ModelSnapshot) *InferenceSession {
	if v := srv.sessions.Get(); v != nil {
		s := v.(*InferenceSession)
		if s.poolGen != snap.version {
			s.Rebind(snap.model)
			s.poolGen = snap.version
		}
		return s
	}
	s := NewSession(snap.model)
	s.poolGen = snap.version
	return s
}

// batchSession is session for the batch path.
func (srv *Server) batchSession(snap *ModelSnapshot) *BatchSession {
	if v := srv.batchSessions.Get(); v != nil {
		s := v.(*BatchSession)
		if s.poolGen != snap.version {
			s.Rebind(snap.model)
			s.poolGen = snap.version
		}
		return s
	}
	s := NewBatchSession(snap.model)
	s.poolGen = snap.version
	return s
}
