package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"costest/internal/feature"
)

// Server is the hot-swap serving runtime: it binds the inference sessions,
// batch sessions and the representation memory pool to the current
// ModelSnapshot, re-resolving the snapshot pointer on every request. A
// long-lived optimizer process keeps one Server; a Trainer retrains the
// live model in place and calls Publish between epochs, while concurrent
// Estimate/EstimateBatch callers keep serving — requests in flight finish
// on the snapshot they started with, later requests pick up the new one,
// and no request ever observes torn weights.
//
// The memory pool is generation-tagged with the snapshot version, so a
// publish invalidates every pooled representation in O(1) (SetGeneration)
// instead of flushing the pool: entries from the old generation are
// rejected by new-generation lookups and evicted lazily.
//
// Sessions are recycled through internal sync.Pools and lazily rebound to
// the current snapshot on checkout, so steady-state Estimate does the same
// zero-allocation work as a session held directly against a fixed model.
// EstimateBatch allocates only its result slice (the session-owned slab
// cannot outlive the checkout), len(eps) Estimates per call.
type Server struct {
	cur  atomic.Pointer[ModelSnapshot]
	pool *MemoryPool

	// pubMu serializes publishers; readers are lock-free.
	pubMu sync.Mutex

	// prewarm tracks the hottest served plans for post-publish pool
	// pre-warming (nil when disabled); prewarmMu serializes background
	// replays so they never pile up across rapid publishes.
	prewarm   atomic.Pointer[hotTracker]
	prewarmMu sync.Mutex

	sessions      sync.Pool
	batchSessions sync.Pool
}

// hotTracker records how often each distinct plan (keyed by its root
// signature) has been served, so a publish can replay the hottest ones
// through the new snapshot. Hit counts are halved at each replay, so the hot
// set adapts as the workload drifts. The tracker retains references to the
// served EncodedPlans; cap the working set with the EnablePrewarm limit.
type hotTracker struct {
	mu    sync.Mutex
	limit int
	plans map[string]*hotPlan
	// scratch buffers reused across replays.
	order []*hotPlan
	batch []*feature.EncodedPlan
}

type hotPlan struct {
	ep   *feature.EncodedPlan
	hits int64
}

// track counts one served plan. New plans are admitted while the tracked set
// is under twice the replay limit; replays prune it back down.
func (tr *hotTracker) track(ep *feature.EncodedPlan) {
	sig := ep.Nodes[ep.Root].Sig
	tr.mu.Lock()
	if hp := tr.plans[sig]; hp != nil {
		hp.hits++
	} else if len(tr.plans) < 2*tr.limit {
		tr.plans[sig] = &hotPlan{ep: ep, hits: 1}
	}
	tr.mu.Unlock()
}

// topPlans returns the hottest tracked plans (at most the replay limit, hit
// count descending, root signature as the deterministic tie-break), halves
// every hit count, and prunes cooled-off entries beyond the limit.
func (tr *hotTracker) topPlans() []*feature.EncodedPlan {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.order = tr.order[:0]
	for _, hp := range tr.plans {
		tr.order = append(tr.order, hp)
	}
	sort.Slice(tr.order, func(i, j int) bool {
		if tr.order[i].hits != tr.order[j].hits {
			return tr.order[i].hits > tr.order[j].hits
		}
		return tr.order[i].ep.Nodes[tr.order[i].ep.Root].Sig < tr.order[j].ep.Nodes[tr.order[j].ep.Root].Sig
	})
	tr.batch = tr.batch[:0]
	for i, hp := range tr.order {
		if i < tr.limit {
			tr.batch = append(tr.batch, hp.ep)
		} else if hp.hits <= 1 {
			delete(tr.plans, hp.ep.Nodes[hp.ep.Root].Sig)
		}
		hp.hits /= 2
	}
	return tr.batch
}

// NewServer returns a server whose initial snapshot (version 1) copies m's
// current weights. The pool may be nil to serve without representation
// caching; a non-nil pool is owned by the server from here on — its
// generation tracks the published version.
func NewServer(m *Model, pool *MemoryPool) *Server {
	srv := &Server{pool: pool}
	snap := newSnapshot(m, 1)
	srv.cur.Store(snap)
	if pool != nil {
		pool.SetGeneration(snap.version)
	}
	return srv
}

// Snapshot returns the currently served snapshot. Callers may hold it
// indefinitely (for replay, validation, or shadow scoring); it never
// changes under them.
func (srv *Server) Snapshot() *ModelSnapshot { return srv.cur.Load() }

// Version returns the currently served snapshot version.
func (srv *Server) Version() uint64 { return srv.cur.Load().version }

// Pool returns the server's memory pool (nil when serving uncached).
func (srv *Server) Pool() *MemoryPool { return srv.pool }

// Publish atomically installs a copy of m's current weights as the next
// snapshot and advances the pool generation, logically invalidating every
// pooled representation computed under older weights. It returns the new
// snapshot. The weight copy reads m on the calling goroutine: call from
// the goroutine that trains m (between optimizer steps), or with training
// otherwise quiesced. Concurrent serving needs no quiescing — that is the
// point.
func (srv *Server) Publish(m *Model) *ModelSnapshot {
	srv.pubMu.Lock()
	snap := newSnapshot(m, srv.cur.Load().version+1)
	srv.cur.Store(snap)
	srv.pubMu.Unlock()
	if srv.pool != nil {
		srv.pool.SetGeneration(snap.version)
		if srv.prewarm.Load() != nil {
			// Hide the post-swap stale transient from foreground requests:
			// replay the hottest signatures through the new snapshot in the
			// background, repopulating the pool at the new generation.
			go srv.prewarmReplay(snap)
		}
	}
	return snap
}

// EnablePrewarm turns on post-publish pool pre-warming: the server tracks
// the hottest served plans (up to limit replayed per publish) and, after
// every Publish, re-evaluates them against the new snapshot in a background
// goroutine so their representations are already resident at the new pool
// generation when foreground requests arrive — the stale-lookup transient a
// swap otherwise causes is paid off the request path. limit <= 0 disables.
// Enable before serving begins; tracking adds one small critical section per
// request. On a server without a pool the call is a no-op (there is nothing
// to pre-warm, so no tracking overhead is installed either).
func (srv *Server) EnablePrewarm(limit int) {
	if limit <= 0 || srv.pool == nil {
		srv.prewarm.Store(nil)
		return
	}
	srv.prewarm.Store(&hotTracker{limit: limit, plans: make(map[string]*hotPlan)})
}

// PrewarmNow replays the hottest tracked plans through the currently served
// snapshot synchronously, returning how many were replayed — the foreground
// form of the background pass Publish schedules (deterministic hooks for
// tests and warm-up scripts).
func (srv *Server) PrewarmNow() int {
	return srv.prewarmReplay(srv.cur.Load())
}

// prewarmReplay re-evaluates the hottest tracked plans against snap,
// inserting their sub-plan representations into the pool at snap's
// generation. Replays are serialized, and a replay whose snapshot has been
// superseded is skipped (the newer publish scheduled its own).
func (srv *Server) prewarmReplay(snap *ModelSnapshot) int {
	tr := srv.prewarm.Load()
	if tr == nil || srv.pool == nil {
		return 0
	}
	srv.prewarmMu.Lock()
	defer srv.prewarmMu.Unlock()
	if srv.cur.Load() != snap {
		return 0
	}
	plans := tr.topPlans()
	if len(plans) == 0 {
		return 0
	}
	// One worker: pre-warming is a background nicety and must not steal
	// cores from foreground serving.
	s := srv.batchSession(snap)
	s.EstimateBatchWithPool(plans, srv.pool, 1)
	s.releasePlans()
	srv.batchSessions.Put(s)
	return len(plans)
}

// Estimate serves one plan against the current snapshot through the
// server's pool, returning denormalized cost/cardinality estimates and the
// snapshot version that produced them. The estimate is bit-identical to a
// single-threaded evaluation of that version's weights.
func (srv *Server) Estimate(ep *feature.EncodedPlan) (cost, card float64, version uint64) {
	snap := srv.cur.Load()
	s := srv.session(snap)
	cost, card = s.EstimateWithPool(ep, srv.pool)
	srv.sessions.Put(s)
	if tr := srv.prewarm.Load(); tr != nil {
		tr.track(ep)
	}
	return cost, card, snap.version
}

// EstimateBatch serves a batch of plans against the current snapshot
// through the server's pool (see Model.EstimateBatch for the level-batched
// algorithm and the meaning of workers), returning one estimate per plan
// and the snapshot version that produced them. The whole batch is served
// by a single snapshot resolution, so every returned estimate belongs to
// the same version.
func (srv *Server) EstimateBatch(eps []*feature.EncodedPlan, workers int) ([]Estimate, uint64) {
	snap := srv.cur.Load()
	if len(eps) == 0 {
		return nil, snap.version
	}
	s := srv.batchSession(snap)
	out := make([]Estimate, len(eps))
	copy(out, s.EstimateBatchWithPool(eps, srv.pool, workers))
	s.releasePlans()
	srv.batchSessions.Put(s)
	if tr := srv.prewarm.Load(); tr != nil {
		for _, ep := range eps {
			tr.track(ep)
		}
	}
	return out, snap.version
}

// session checks a recycled inference session out of the pool, rebinding
// it to snap when it last served a different version (one pointer store;
// the warm arenas carry over because all snapshots share a configuration).
func (srv *Server) session(snap *ModelSnapshot) *InferenceSession {
	if v := srv.sessions.Get(); v != nil {
		s := v.(*InferenceSession)
		if s.poolGen != snap.version {
			s.Rebind(snap.model)
			s.poolGen = snap.version
		}
		return s
	}
	s := NewSession(snap.model)
	s.poolGen = snap.version
	return s
}

// batchSession is session for the batch path.
func (srv *Server) batchSession(snap *ModelSnapshot) *BatchSession {
	if v := srv.batchSessions.Get(); v != nil {
		s := v.(*BatchSession)
		if s.poolGen != snap.version {
			s.Rebind(snap.model)
			s.poolGen = snap.version
		}
		return s
	}
	s := NewBatchSession(snap.model)
	s.poolGen = snap.version
	return s
}
