package core

import (
	"sync"
	"sync/atomic"

	"costest/internal/feature"
)

// Server is the hot-swap serving runtime: it binds the inference sessions,
// batch sessions and the representation memory pool to the current
// ModelSnapshot, re-resolving the snapshot pointer on every request. A
// long-lived optimizer process keeps one Server; a Trainer retrains the
// live model in place and calls Publish between epochs, while concurrent
// Estimate/EstimateBatch callers keep serving — requests in flight finish
// on the snapshot they started with, later requests pick up the new one,
// and no request ever observes torn weights.
//
// The memory pool is generation-tagged with the snapshot version, so a
// publish invalidates every pooled representation in O(1) (SetGeneration)
// instead of flushing the pool: entries from the old generation are
// rejected by new-generation lookups and evicted lazily.
//
// Sessions are recycled through internal sync.Pools and lazily rebound to
// the current snapshot on checkout, so steady-state Estimate does the same
// zero-allocation work as a session held directly against a fixed model.
// EstimateBatch allocates only its result slice (the session-owned slab
// cannot outlive the checkout), len(eps) Estimates per call.
type Server struct {
	cur  atomic.Pointer[ModelSnapshot]
	pool *MemoryPool

	// pubMu serializes publishers; readers are lock-free.
	pubMu sync.Mutex

	sessions      sync.Pool
	batchSessions sync.Pool
}

// NewServer returns a server whose initial snapshot (version 1) copies m's
// current weights. The pool may be nil to serve without representation
// caching; a non-nil pool is owned by the server from here on — its
// generation tracks the published version.
func NewServer(m *Model, pool *MemoryPool) *Server {
	srv := &Server{pool: pool}
	snap := newSnapshot(m, 1)
	srv.cur.Store(snap)
	if pool != nil {
		pool.SetGeneration(snap.version)
	}
	return srv
}

// Snapshot returns the currently served snapshot. Callers may hold it
// indefinitely (for replay, validation, or shadow scoring); it never
// changes under them.
func (srv *Server) Snapshot() *ModelSnapshot { return srv.cur.Load() }

// Version returns the currently served snapshot version.
func (srv *Server) Version() uint64 { return srv.cur.Load().version }

// Pool returns the server's memory pool (nil when serving uncached).
func (srv *Server) Pool() *MemoryPool { return srv.pool }

// Publish atomically installs a copy of m's current weights as the next
// snapshot and advances the pool generation, logically invalidating every
// pooled representation computed under older weights. It returns the new
// snapshot. The weight copy reads m on the calling goroutine: call from
// the goroutine that trains m (between optimizer steps), or with training
// otherwise quiesced. Concurrent serving needs no quiescing — that is the
// point.
func (srv *Server) Publish(m *Model) *ModelSnapshot {
	srv.pubMu.Lock()
	snap := newSnapshot(m, srv.cur.Load().version+1)
	srv.cur.Store(snap)
	srv.pubMu.Unlock()
	if srv.pool != nil {
		srv.pool.SetGeneration(snap.version)
	}
	return snap
}

// Estimate serves one plan against the current snapshot through the
// server's pool, returning denormalized cost/cardinality estimates and the
// snapshot version that produced them. The estimate is bit-identical to a
// single-threaded evaluation of that version's weights.
func (srv *Server) Estimate(ep *feature.EncodedPlan) (cost, card float64, version uint64) {
	snap := srv.cur.Load()
	s := srv.session(snap)
	cost, card = s.EstimateWithPool(ep, srv.pool)
	srv.sessions.Put(s)
	return cost, card, snap.version
}

// EstimateBatch serves a batch of plans against the current snapshot
// through the server's pool (see Model.EstimateBatch for the level-batched
// algorithm and the meaning of workers), returning one estimate per plan
// and the snapshot version that produced them. The whole batch is served
// by a single snapshot resolution, so every returned estimate belongs to
// the same version.
func (srv *Server) EstimateBatch(eps []*feature.EncodedPlan, workers int) ([]Estimate, uint64) {
	snap := srv.cur.Load()
	if len(eps) == 0 {
		return nil, snap.version
	}
	s := srv.batchSession(snap)
	out := make([]Estimate, len(eps))
	copy(out, s.EstimateBatchWithPool(eps, srv.pool, workers))
	s.releasePlans()
	srv.batchSessions.Put(s)
	return out, snap.version
}

// session checks a recycled inference session out of the pool, rebinding
// it to snap when it last served a different version (one pointer store;
// the warm arenas carry over because all snapshots share a configuration).
func (srv *Server) session(snap *ModelSnapshot) *InferenceSession {
	if v := srv.sessions.Get(); v != nil {
		s := v.(*InferenceSession)
		if s.poolGen != snap.version {
			s.Rebind(snap.model)
			s.poolGen = snap.version
		}
		return s
	}
	s := NewSession(snap.model)
	s.poolGen = snap.version
	return s
}

// batchSession is session for the batch path.
func (srv *Server) batchSession(snap *ModelSnapshot) *BatchSession {
	if v := srv.batchSessions.Get(); v != nil {
		s := v.(*BatchSession)
		if s.poolGen != snap.version {
			s.Rebind(snap.model)
			s.poolGen = snap.version
		}
		return s
	}
	s := NewBatchSession(snap.model)
	s.poolGen = snap.version
	return s
}
