package core

import (
	"math"
	"sync"

	"costest/internal/feature"
	"costest/internal/tensor"
)

// ParallelTrainer is the data-parallel training runtime: it extends the
// batched trainer by sharding every minibatch across a fixed number of
// long-lived worker BatchSessions, each accumulating into a private gradient
// ParamSet that shadows the live weights, with a deterministic ordered
// reduction into the shared optimizer state before each SGD step.
//
// Determinism contract (tested):
//
//   - The shard count is fixed at construction and shard assignment is a pure
//     function of (minibatch length, shards): shard i always takes the i-th
//     contiguous chunk of the shuffled minibatch. The `workers` knob of
//     TrainEpochParallel only caps how many shards *execute* concurrently, so
//     trained weights are bit-identical across worker counts — scheduling can
//     never perturb the result.
//   - Gradients are reduced in ascending shard order through
//     tensor.AddVecsInto's strict left-to-right accumulation, then clipped
//     and stepped exactly like TrainEpochBatched. With shards=1 the runtime
//     degenerates to TrainEpochBatched bit for bit; with more shards the
//     per-parameter sums reassociate across shard boundaries, so weights
//     match the sequential trainer to floating-point reassociation (≤1e-6
//     relative, the same tolerance as the GEMM-vs-recursive backward).
//
// Each worker's shadow model aliases the live model's weight storage
// (nn.ParamSet.AliasValues) — forwards read the real weights with no copying
// — while its gradient accumulators stay private, so concurrent workers
// never write shared state. The optimizer steps only between worker joins,
// which is also when Publish may run: the hot-swap serving topology of PR 3
// composes unchanged, since serving never touches the training model.
//
// Workers are goroutines with session-sized arenas, started lazily on the
// first epoch; call Close when done training to release them. A
// ParallelTrainer is driven from one goroutine at a time (like Trainer).
type ParallelTrainer struct {
	*Trainer

	// shards is the fixed data-parallel width (resolved once at
	// construction; <= 0 meant GOMAXPROCS).
	shards int

	workers []*trainWorker
	// sem caps concurrently executing shards at the `workers` argument of
	// the current epoch; rebuilt only when the cap changes.
	sem    chan struct{}
	semCap int
	wg     sync.WaitGroup

	// mainGrads[p] is the live model's gradient for parameter p;
	// gradSrcs[p][s] is shard s's private gradient for the same parameter.
	// Built once so the per-minibatch reduction is allocation-free.
	mainGrads []tensor.Vec
	gradSrcs  [][]tensor.Vec

	// pub is the auto-publish hook (nil when disabled): pubSrv receives the
	// snapshots, pubOpts selects gating/delta/per-minibatch cadence,
	// pubSteps counts optimizer steps since the last mid-epoch publish and
	// pubBest tracks the best published validation error for the gate.
	pubSrv   *Server
	pubOpts  AutoPublishOptions
	pubSteps int
	pubBest  float64

	// stop is the early-stopping configuration of Fit (zero Patience
	// disables it).
	stop EarlyStopOptions
}

// EarlyStopOptions configures validation-based early stopping in
// ParallelTrainer.Fit.
type EarlyStopOptions struct {
	// Patience is how many consecutive epochs the combined validation
	// q-error (cost + card) may fail to improve before Fit stops; <= 0
	// disables early stopping.
	Patience int
	// MinDelta is the least absolute improvement over the best combined
	// validation error that counts as progress; epochs inside the band count
	// against the patience budget.
	MinDelta float64
}

// AutoPublishOptions configures the publish hook of ParallelTrainer.Fit.
type AutoPublishOptions struct {
	// Gated publishes after an epoch only when its combined validation
	// q-error (cost + card) improves on the best previously published
	// epoch; ungated publishes after every epoch.
	Gated bool
	// Delta routes epoch publishes through Server.PublishDelta instead of
	// the full-copy Publish.
	Delta bool
	// EveryBatches > 0 additionally publishes mid-epoch after every N
	// optimizer steps — always through the delta path, which is what makes
	// per-minibatch cadence affordable. Mid-epoch publishes are not gated
	// (there is no validation signal between minibatches).
	EveryBatches int
}

// trainWorker is one shard's long-lived state: a shadow model whose
// parameters alias the live weights but carry private gradients, the
// worker's forward/backward arena bound to that shadow, and its task
// channel.
type trainWorker struct {
	shadow *Model
	sess   *BatchSession
	work   chan workerTask
	// loss is the shard's last summed supervision-normalized loss; written
	// by the worker, read by the coordinator after the join.
	loss float64
}

// workerTask is one shard's slice of a minibatch. sem serializes execution
// down to the epoch's worker cap; wg joins the minibatch.
type workerTask struct {
	eps []*feature.EncodedPlan
	sem chan struct{}
	wg  *sync.WaitGroup
}

// NewParallelTrainer builds a data-parallel trainer for the live model with
// a fixed shard count (shards <= 0 resolves to GOMAXPROCS, like every other
// workers knob). The shard count — not the per-epoch worker cap — is what
// determines the trained bits; see the type comment.
func NewParallelTrainer(m *Model, shards int) *ParallelTrainer {
	return &ParallelTrainer{Trainer: NewTrainer(m), shards: resolveWorkers(shards)}
}

// Shards returns the fixed data-parallel width.
func (pt *ParallelTrainer) Shards() int { return pt.shards }

// AutoPublish installs srv as the trainer's publication target: Fit
// publishes after qualifying epochs (see AutoPublishOptions), and with
// EveryBatches > 0 TrainEpochParallel delta-publishes mid-epoch every N
// optimizer steps. Pass a nil server to disable. The hook publishes from
// the training goroutine between optimizer steps, so the weight reads never
// race an update — the same contract as calling Publish by hand.
func (pt *ParallelTrainer) AutoPublish(srv *Server, opts AutoPublishOptions) {
	pt.pubSrv = srv
	pt.pubOpts = opts
	pt.pubSteps = 0
	pt.pubBest = math.Inf(1)
}

// EarlyStop installs validation-based early stopping on Fit: training stops
// once the combined validation q-error has gone opts.Patience consecutive
// epochs without improving its best value by more than opts.MinDelta, so a
// long `epochs` budget terminates when the model plateaus instead of burning
// the remaining epochs. Zero Patience (the default) disables stopping.
func (pt *ParallelTrainer) EarlyStop(opts EarlyStopOptions) {
	pt.stop = opts
}

// Fit trains for the given number of epochs through the data-parallel
// runtime, mirroring Trainer.Fit: normalizers are fitted on the training
// set, each epoch runs shuffled minibatches (sharded across the trainer's
// workers, concurrency capped by workers), and validation q-errors are
// reported per epoch through cb (which may be nil). With shards = 1 the
// epoch schedule degenerates to TrainEpochBatched, so per-epoch losses
// match Trainer.Fit to floating-point reassociation; more shards
// reassociate gradient sums across shard boundaries only.
//
// When AutoPublish has been configured, each epoch's stats drive the hook:
// ungated, every epoch publishes; gated, only epochs improving the best
// published combined validation q-error do. The installed version is
// recorded in the returned stats. When EarlyStop has been configured, Fit
// may return before `epochs` epochs — the history's length is the number
// actually run. Fit returns the stats history — the data behind the paper's
// validation-error curves (Figures 7 and 8).
func (pt *ParallelTrainer) Fit(train, valid []*feature.EncodedPlan, epochs, batchSize, workers int,
	cb func(EpochStats)) []EpochStats {
	pt.FitNormalizers(train)
	history := make([]EpochStats, 0, epochs)
	best, sinceBest := math.Inf(1), 0
	for e := 0; e < epochs; e++ {
		loss := pt.TrainEpochParallel(train, batchSize, workers)
		vc, vd := pt.M.ValidationError(valid)
		st := EpochStats{Epoch: e, TrainLoss: loss, ValidCost: vc, ValidCard: vd}
		if pt.pubSrv != nil && (!pt.pubOpts.Gated || vc+vd < pt.pubBest) {
			var snap *ModelSnapshot
			if pt.pubOpts.Delta {
				snap = pt.pubSrv.PublishDelta(pt.M)
			} else {
				snap = pt.pubSrv.Publish(pt.M)
			}
			pt.pubBest = vc + vd
			st.Published = snap.Version()
		}
		history = append(history, st)
		if cb != nil {
			cb(st)
		}
		if vc+vd < best-pt.stop.MinDelta {
			best, sinceBest = vc+vd, 0
		} else if sinceBest++; pt.stop.Patience > 0 && sinceBest >= pt.stop.Patience {
			break
		}
	}
	return history
}

// Close shuts the worker goroutines down. The trainer remains usable — its
// sequential TrainEpoch/TrainEpochBatched paths are untouched, and a later
// TrainEpochParallel call restarts fresh workers.
func (pt *ParallelTrainer) Close() {
	for _, w := range pt.workers {
		close(w.work)
	}
	pt.workers = nil
	pt.mainGrads, pt.gradSrcs = nil, nil
}

// ensureWorkers lazily builds the shard workers, their shadow models and the
// flattened gradient views the reduction sweeps over.
func (pt *ParallelTrainer) ensureWorkers() {
	if pt.workers != nil {
		return
	}
	pt.workers = make([]*trainWorker, pt.shards)
	for i := range pt.workers {
		shadow := newShadowModel(pt.M)
		w := &trainWorker{
			shadow: shadow,
			sess:   NewBatchSession(shadow),
			work:   make(chan workerTask, 1),
		}
		pt.workers[i] = w
		go pt.workerLoop(w)
	}
	params := pt.M.PS.Params()
	pt.mainGrads = make([]tensor.Vec, len(params))
	pt.gradSrcs = make([][]tensor.Vec, len(params))
	for pi, p := range params {
		pt.mainGrads[pi] = p.Grad
		pt.gradSrcs[pi] = make([]tensor.Vec, pt.shards)
		for si, w := range pt.workers {
			pt.gradSrcs[pi][si] = w.shadow.PS.Params()[pi].Grad
		}
	}
}

// newShadowModel builds a model that reads m's live weights (value storage
// is aliased, so optimizer steps are visible without copying) but owns
// private gradient accumulators — one data-parallel worker's view.
func newShadowModel(m *Model) *Model {
	s := New(m.Cfg, m.Enc)
	s.PS.AliasValues(m.PS)
	s.CostNorm, s.CardNorm = m.CostNorm, m.CardNorm
	return s
}

// ensureSem sizes the execution-cap semaphore for this epoch's worker count.
func (pt *ParallelTrainer) ensureSem(workers int) {
	if workers == pt.semCap {
		return
	}
	pt.sem = make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		pt.sem <- struct{}{}
	}
	pt.semCap = workers
}

// workerLoop drains one shard's task channel until Close.
func (pt *ParallelTrainer) workerLoop(w *trainWorker) {
	for task := range w.work {
		<-task.sem
		w.loss = pt.shardAccumulate(w, task.eps)
		task.sem <- struct{}{}
		task.wg.Done()
	}
}

// shardAccumulate runs forward + backward for one shard of a minibatch
// through the worker's private session and gradient set, returning the
// shard's summed per-sample loss. Inner kernels run single-worker, so the
// warm path performs zero heap allocations — the parallelism lives across
// shards, not inside them.
func (pt *ParallelTrainer) shardAccumulate(w *trainWorker, eps []*feature.EncodedPlan) float64 {
	w.shadow.PS.ZeroGrad()
	w.sess.run(eps, nil, 1, true)
	loss := pt.batchLossAndGrads(w.sess)
	w.sess.backward()
	return loss
}

// Warmup sizes every worker's arenas by running one full training pass of
// samples through each worker session (the gradients land in the worker's
// private set and are discarded). Per-level arena shapes are additive over
// plans, so the full corpus is a superset of every minibatch shard a later
// shuffle can produce — after Warmup, epochs over any subset of samples run
// at zero heap allocations per worker, no matter how the shuffle falls
// (without it, a new shuffle can still raise a high-water mark mid-epoch).
func (pt *ParallelTrainer) Warmup(samples []*feature.EncodedPlan) {
	if pt.costLoss == nil {
		pt.rebuildLosses()
	}
	pt.ensureWorkers()
	if len(samples) == 0 {
		return
	}
	for _, w := range pt.workers {
		pt.shardAccumulate(w, samples)
	}
}

// TrainEpochParallel runs one epoch like TrainEpochBatched, but shards each
// shuffled minibatch across the trainer's worker sessions: every shard
// forwards and backwards its chunk concurrently into private gradients,
// the shards are reduced in fixed order into the live ParamSet, and one
// clipped Adam step applies — data-parallel SGD with the sequential
// trainer's semantics. workers caps concurrent shard execution (<= 0 means
// GOMAXPROCS; capped at the shard count) and cannot affect the trained
// bits. Returns the mean per-sample loss.
func (pt *ParallelTrainer) TrainEpochParallel(samples []*feature.EncodedPlan, batchSize, workers int) float64 {
	if pt.costLoss == nil {
		pt.rebuildLosses()
	}
	if batchSize <= 0 {
		batchSize = 32
	}
	pt.ensureWorkers()
	workers = resolveWorkers(workers)
	if workers > pt.shards {
		workers = pt.shards
	}
	pt.ensureSem(workers)

	idx := pt.permute(len(samples))
	var total float64
	for start := 0; start < len(idx); start += batchSize {
		end := start + batchSize
		if end > len(idx) {
			end = len(idx)
		}
		pt.batchBuf = pt.batchBuf[:0]
		for _, i := range idx[start:end] {
			pt.batchBuf = append(pt.batchBuf, samples[i])
		}
		total += pt.stepParallel(pt.batchBuf)
	}
	return total / float64(len(samples))
}

// treeReduceMinShards is the active-shard count at which the gradient
// reduction switches from the flat left-to-right sweep to the fixed-pair
// tree. Below it the flat sweep's single destination pass is cheaper; above
// it the tree halves the live partial count per round, which is the shape a
// future multi-core reduction parallelizes without changing a single bit
// (the association is fixed by the shard count alone).
const treeReduceMinShards = 8

// treeReduceGrads reduces the active shards' gradients into the live
// ParamSet via a deterministic fixed-pair tree: round r combines shard i
// with shard i+2^r for every i ≡ 0 (mod 2^(r+1)), each combine a strict
// left-to-right tensor.AddVecsInto accumulation into the lower shard, until
// shard 0 holds the tree's root sum, which is copied into the main
// gradients. The pairing is a pure function of `active` — bit-identical
// across runs and worker caps; versus the flat sweep it reassociates the
// same per-element sums, so results agree to floating-point reassociation
// (≤1e-6 relative, the established cross-shard tolerance). Shard gradient
// buffers are scratch here: every shard re-zeroes its set at the start of
// its next accumulation, so mutating them between joins is free.
func (pt *ParallelTrainer) treeReduceGrads(active int) {
	for stride := 1; stride < active; stride *= 2 {
		for i := 0; i+stride < active; i += 2 * stride {
			for pi := range pt.mainGrads {
				srcs := pt.gradSrcs[pi]
				tensor.AddVecsInto(srcs[i], srcs[i+stride])
			}
		}
	}
	for pi, dst := range pt.mainGrads {
		copy(dst, pt.gradSrcs[pi][0])
	}
}

// stepParallel processes one minibatch: fixed contiguous shard assignment,
// concurrent shard accumulation, ordered gradient reduction, then the
// clip + Adam step of the sequential trainer.
func (pt *ParallelTrainer) stepParallel(batch []*feature.EncodedPlan) float64 {
	// Shard assignment depends only on (len(batch), shards): shard i takes
	// rows [i*chunk, (i+1)*chunk). Worker-count invariance starts here.
	chunk := (len(batch) + pt.shards - 1) / pt.shards
	active := (len(batch) + chunk - 1) / chunk
	pt.wg.Add(active)
	for i := 0; i < active; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		pt.workers[i].work <- workerTask{eps: batch[lo:hi], sem: pt.sem, wg: &pt.wg}
	}
	pt.wg.Wait()

	// Ordered reduction: shard 0's gradient is copied (bit-exact — with one
	// shard this path IS TrainEpochBatched), the rest accumulate in
	// ascending shard order via the deterministic reduction kernel. At high
	// shard counts the flat left-to-right sweep is replaced by a fixed-pair
	// tree (see treeReduceGrads): still a pure function of the active shard
	// count — never of scheduling — just a different fixed association.
	var loss float64
	for i := 0; i < active; i++ {
		loss += pt.workers[i].loss
	}
	if active >= treeReduceMinShards {
		pt.treeReduceGrads(active)
	} else {
		for pi, dst := range pt.mainGrads {
			srcs := pt.gradSrcs[pi]
			copy(dst, srcs[0])
			tensor.AddVecsInto(dst, srcs[1:active]...)
		}
	}
	pt.M.PS.ClipGradNorm(pt.M.Cfg.GradClip * float64(len(batch)))
	pt.Opt.Step(pt.M.PS)

	// Mid-epoch publication: weights are quiesced here (workers joined, the
	// optimizer stepped), so a delta publish reads a consistent state. The
	// delta path keeps per-minibatch cadence affordable — only parameters
	// touched since the target buffers' last sync are copied.
	if pt.pubSrv != nil && pt.pubOpts.EveryBatches > 0 {
		pt.pubSteps++
		if pt.pubSteps >= pt.pubOpts.EveryBatches {
			pt.pubSteps = 0
			pt.pubSrv.PublishDelta(pt.M)
		}
	}
	return loss
}
