package core

import (
	"math"
	"sync"
	"testing"

	"costest/internal/feature"
)

// TestBatchSessionReuseMatchesFresh drives one batch session across varying
// batch shapes (full corpus, subsets, reversed order) and checks every
// estimate matches a fresh session's bit for bit — stale per-level state
// leaking between calls would show up here.
func TestBatchSessionReuseMatchesFresh(t *testing.T) {
	eps := benchCorpus(t, 16)
	for _, variant := range sessionVariants {
		cfg := TestConfig()
		variant.mod(&cfg)
		m := New(cfg, testEnc)
		sess := NewBatchSession(m)
		check := func(batch []*feature.EncodedPlan) {
			got := sess.EstimateBatch(batch, 1)
			want := NewBatchSession(m).EstimateBatch(batch, 1)
			for i := range batch {
				if got[i] != want[i] {
					t.Fatalf("%s: reused session %+v != fresh session %+v at plan %d",
						variant.name, got[i], want[i], i)
				}
			}
		}
		check(eps)
		check(eps[:4])
		rev := make([]*feature.EncodedPlan, len(eps))
		for i := range eps {
			rev[i] = eps[len(eps)-1-i]
		}
		check(rev)
		check(eps[7:9])
		check(eps)
	}
}

// TestBatchSessionMatchesSequential checks the session batch path against
// the single-plan path for every architecture variant (the session is the
// engine behind Model.EstimateBatch, but assert it directly too). The match
// is bit-exact: every tensor kernel accumulates each output element in
// dotKernel's canonical sequential order, so batching must not perturb even
// the last bit — the invariant the hot-swap serving tests build on.
func TestBatchSessionMatchesSequential(t *testing.T) {
	eps := benchCorpus(t, 20)
	for _, variant := range sessionVariants {
		cfg := TestConfig()
		variant.mod(&cfg)
		m := New(cfg, testEnc)
		sess := NewBatchSession(m)
		for _, workers := range []int{1, 4} {
			batch := sess.EstimateBatch(eps, workers)
			for i, ep := range eps {
				cost, card := m.Estimate(ep)
				if batch[i].Cost != cost || batch[i].Card != card {
					t.Fatalf("%s/workers=%d: batch[%d] = (%g,%g), sequential = (%g,%g)",
						variant.name, workers, i, batch[i].Cost, batch[i].Card, cost, card)
				}
			}
		}
	}
}

// TestBatchSessionZeroAlloc asserts the tentpole property: after warm-up, a
// single-worker EstimateBatch performs zero heap allocations per call across
// all architecture variants. (Multi-worker runs pay only the goroutine
// fan-out of parallelFor; the per-call arenas are shared.)
func TestBatchSessionZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	eps := benchCorpus(t, 12)
	for _, variant := range sessionVariants {
		cfg := TestConfig()
		variant.mod(&cfg)
		m := New(cfg, testEnc)
		sess := NewBatchSession(m)
		sess.EstimateBatch(eps, 1) // warm-up sizes every arena
		sess.EstimateBatch(eps[:5], 1)
		allocs := testing.AllocsPerRun(100, func() {
			sess.EstimateBatch(eps, 1)
		})
		if allocs != 0 {
			t.Errorf("%s: warm EstimateBatch allocates %.1f objects/op, want 0", variant.name, allocs)
		}
		// Smaller batches of already-seen plans must stay allocation-free too.
		allocs = testing.AllocsPerRun(100, func() {
			sess.EstimateBatch(eps[:5], 1)
		})
		if allocs != 0 {
			t.Errorf("%s: warm sub-batch EstimateBatch allocates %.1f objects/op, want 0", variant.name, allocs)
		}
	}
}

// TestEstimateBatchWithPool checks the pooled batch path end to end: results
// must match the unpooled batch bit for bit, both on a cold pool (all misses
// + inserts) and a warm pool (subtree hits skip level rows) — pooled
// representations carry exactly the values recomputation would produce.
func TestEstimateBatchWithPool(t *testing.T) {
	eps := benchCorpus(t, 16)
	for _, variant := range sessionVariants {
		cfg := TestConfig()
		variant.mod(&cfg)
		m := New(cfg, testEnc)
		want := m.EstimateBatch(eps, 2)
		pool := NewMemoryPool()

		cold := m.EstimateBatchWithPool(eps, pool, 2)
		if pool.Len() == 0 {
			t.Fatalf("%s: pool empty after cold batch", variant.name)
		}
		warm := m.EstimateBatchWithPool(eps, pool, 2)
		if pool.HitRate() == 0 {
			t.Fatalf("%s: warm batch produced no pool hits", variant.name)
		}
		for i := range eps {
			for name, got := range map[string]Estimate{"cold": cold[i], "warm": warm[i]} {
				if got != want[i] {
					t.Fatalf("%s: %s pooled batch[%d] = %+v, want %+v", variant.name, name, i, got, want[i])
				}
			}
		}
		// Pooled batch must agree with the pooled single-plan path sharing
		// the same pool.
		sess := NewSession(m)
		for i, ep := range eps {
			c, d := sess.EstimateWithPool(ep, pool)
			if warm[i].Cost != c || warm[i].Card != d {
				t.Fatalf("%s: pooled batch[%d] = %+v, single-plan pooled = (%g,%g)",
					variant.name, i, warm[i], c, d)
			}
		}
	}
}

// TestEstimateBatchWithPoolEvictedCardNode forces the bounded-pool shape: a
// plan's root representation is resident but its cardinality node's entry
// was evicted. The batch path must recompute that subtree rather than
// degrade the cardinality estimate.
func TestEstimateBatchWithPoolEvictedCardNode(t *testing.T) {
	eps := benchCorpus(t, 16)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	want := m.EstimateBatch(eps, 1)
	tested := 0
	for i, ep := range eps {
		if ep.CardNode == ep.Root {
			continue
		}
		full := NewMemoryPool()
		m.EstimateBatchWithPool(eps[i:i+1], full, 1)
		g, r, ok := full.Get(ep.Nodes[ep.Root].Sig)
		if !ok {
			t.Fatal("root representation missing from warm pool")
		}
		// A pool holding only the root: Get(root) hits, Get(cardNode)
		// misses — exactly the post-eviction shape.
		pool := NewMemoryPool()
		pool.Put(ep.Nodes[ep.Root].Sig, g, r)
		got := m.EstimateBatchWithPool(eps[i:i+1], pool, 1)
		// Recomputing the card subtree regroups its GEMM levels, but the
		// canonical kernel order makes level grouping irrelevant to the
		// result: compare bit-exactly.
		if got[0] != want[i] {
			t.Fatalf("evicted card node degraded batch estimate: %+v vs %+v", got[0], want[i])
		}
		tested++
	}
	if tested == 0 {
		t.Skip("no plan in corpus with CardNode != Root")
	}
}

// TestTrainEpochBatchedGradientsMatch is the backward-pass equivalence gate:
// accumulating one minibatch through the level-wise GEMM backward must
// reproduce the per-sample recursive backward's parameter gradients within
// floating-point reassociation tolerance, for every architecture variant and
// for both supervision modes.
func TestTrainEpochBatchedGradientsMatch(t *testing.T) {
	eps := benchCorpus(t, 12)
	for _, variant := range sessionVariants {
		for _, subplan := range []bool{true, false} {
			cfg := TestConfig()
			variant.mod(&cfg)
			cfg.SubplanLoss = subplan
			mA := New(cfg, testEnc)
			mB := New(cfg, testEnc) // identical seed → identical weights
			trA := NewTrainer(mA)
			trB := NewTrainer(mB)
			trA.FitNormalizers(eps)
			trB.FitNormalizers(eps)

			mA.PS.ZeroGrad()
			var lossA float64
			for _, ep := range eps {
				lossA += trA.accumulate(ep)
			}
			mB.PS.ZeroGrad()
			trB.bsess = NewBatchSession(mB)
			lossB := trB.accumulateBatch(eps, 2)

			if math.Abs(lossA-lossB) > 1e-6*math.Max(1, math.Abs(lossA)) {
				t.Errorf("%s/subplan=%v: loss %g (per-sample) vs %g (batched)",
					variant.name, subplan, lossA, lossB)
			}
			paramsA := mA.PS.Params()
			paramsB := mB.PS.Params()
			for p := range paramsA {
				ga, gb := paramsA[p].Grad, paramsB[p].Grad
				for i := range ga {
					if math.Abs(ga[i]-gb[i]) > 1e-6*math.Max(1, math.Abs(ga[i])) {
						t.Fatalf("%s/subplan=%v: %s grad[%d] = %g (per-sample) vs %g (batched)",
							variant.name, subplan, paramsA[p].Name, i, ga[i], gb[i])
					}
				}
			}
		}
	}
}

// TestTrainEpochBatchedReducesLoss trains end to end through the batched
// path and checks learning actually happens (optimizer wiring, not just
// gradient math).
func TestTrainEpochBatchedReducesLoss(t *testing.T) {
	eps := labeledPlans(t, 303, 60, false)
	train := eps[:len(eps)*8/10]
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(train)
	first := tr.TrainEpochBatched(train, 16, 2)
	var last float64
	for e := 0; e < 11; e++ {
		last = tr.TrainEpochBatched(train, 16, 2)
	}
	if last >= first {
		t.Fatalf("batched training loss did not decrease: %g -> %g", first, last)
	}
}

// TestBatchedTrainingConcurrentWithPooledEstimates exercises the paper's
// serving topology under the race detector: one goroutine trains a model
// with the batched runtime while serving goroutines hammer a second model's
// pooled single-plan and batch paths against a shared memory pool.
func TestBatchedTrainingConcurrentWithPooledEstimates(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	trainM := New(cfg, testEnc)
	serveM := New(cfg, testEnc)
	tr := NewTrainer(trainM)
	tr.FitNormalizers(eps)
	pool := NewBoundedMemoryPool(256)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := 0; e < 3; e++ {
			tr.TrainEpochBatched(eps, 8, 2)
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := NewSession(serveM)
			for k := 0; k < 30; k++ {
				sess.EstimateWithPool(eps[(w+k)%len(eps)], pool)
				serveM.EstimateBatchWithPool(eps, pool, 2)
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkEstimateBatch measures the steady-state batch serving path: 24
// plans per call through a warm BatchSession (workers = GOMAXPROCS).
func BenchmarkEstimateBatch(b *testing.B) {
	eps := benchCorpus(b, 24)
	for _, variant := range []struct {
		name string
		mod  func(*Config)
	}{
		{"pool", func(c *Config) {}},
		{"predlstm", func(c *Config) { c.Pred = PredLSTM }},
		{"repnn", func(c *Config) { c.Rep = RepNN }},
	} {
		cfg := TestConfig()
		variant.mod(&cfg)
		m := New(cfg, testEnc)
		sess := NewBatchSession(m)
		sess.EstimateBatch(eps, 0)
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sess.EstimateBatch(eps, 0)
			}
		})
	}
}

// BenchmarkEstimateBatchPooled measures the pooled batch path against a warm
// representation memory pool.
func BenchmarkEstimateBatchPooled(b *testing.B) {
	eps := benchCorpus(b, 24)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	sess := NewBatchSession(m)
	pool := NewMemoryPool()
	sess.EstimateBatchWithPool(eps, pool, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.EstimateBatchWithPool(eps, pool, 0)
	}
	b.ReportMetric(pool.HitRate()*100, "hit%")
}

// BenchmarkTrainEpoch measures the per-sample reference trainer (one epoch,
// 64 samples, batch 16) — the baseline TrainEpochBatched must beat.
func BenchmarkTrainEpoch(b *testing.B) {
	eps := benchCorpus(b, 64)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	tr.TrainEpoch(eps, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainEpoch(eps, 16)
	}
}

// BenchmarkTrainEpochBatched measures the level-wise batched trainer on the
// same workload as BenchmarkTrainEpoch.
func BenchmarkTrainEpochBatched(b *testing.B) {
	eps := benchCorpus(b, 64)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	tr.TrainEpochBatched(eps, 16, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainEpochBatched(eps, 16, 0)
	}
}
