package core

import (
	"costest/internal/feature"
)

// InferenceSession owns every per-node forward buffer the model needs to
// evaluate one plan — embedding segments, predicate-tree states, cell
// states, head scratch — sized from the model config and reused across
// calls. After warm-up on the largest plan shape it has seen, steady-state
// Estimate/EstimateWithPool performs zero heap allocations per plan, the
// property that lets the estimator sit inside an optimizer's
// plan-enumeration loop (the paper's Table 12 use case).
//
// A session is bound to one model and is NOT safe for concurrent use; give
// each goroutine its own (Model.Estimate maintains an internal sync.Pool of
// sessions for the convenience API).
type InferenceSession struct {
	m *Model

	// nodes[i] is the reusable forward state for plan node i; visited marks
	// which slots the current call filled (pool hits skip subtrees).
	nodes   []nodeState
	visited []bool

	// preds is a bump-allocated arena of predicate-tree node states; predOff
	// is the high-water mark of the current call.
	preds   []*predState
	predOff int

	// scratch evaluates the estimation heads on representations that have no
	// node slot (cardinality nodes served straight from the memory pool).
	scratch nodeState

	// out1 is the shared 1-wide output buffer of the head sigmoid layers.
	out1 []float64

	// poolGen is the snapshot generation this session stamps on memory-pool
	// traffic: GetGen only accepts entries recorded under the same
	// generation and PutGen records it. Zero for standalone sessions
	// (matching a fresh pool's generation); a Server sets it to the bound
	// snapshot's version so pooled representations never cross a hot swap.
	poolGen uint64

	// grads is the training-only backward arena; hg the reusable per-node
	// head-gradient buffer.
	grads f64Arena
	hg    []headGrad
}

// NewSession returns a session bound to m with warm head scratch. Node and
// predicate buffers grow on first contact with each plan shape and are
// reused afterwards.
func NewSession(m *Model) *InferenceSession {
	s := &InferenceSession{m: m, out1: make([]float64, 1)}
	s.initSlot(&s.scratch)
	return s
}

// Rebind points the session at a different model sharing the original's
// configuration and encoder — a hot-swapped snapshot. Every buffer is sized
// by the configuration alone, so the warm arenas carry over and the rebind
// itself is one pointer store; it panics if the models are not
// interchangeable. The caller owns concurrency: a session must not be
// rebound while it is evaluating.
func (s *InferenceSession) Rebind(m *Model) {
	if m.Cfg != s.m.Cfg || m.Enc != s.m.Enc {
		panic("core: Rebind across different model configurations")
	}
	s.m = m
}

// begin prepares the session for one plan evaluation.
func (s *InferenceSession) begin(ep *feature.EncodedPlan) {
	n := len(ep.Nodes)
	for len(s.nodes) < n {
		s.nodes = append(s.nodes, nodeState{})
		s.initSlot(&s.nodes[len(s.nodes)-1])
	}
	if cap(s.visited) < n {
		s.visited = make([]bool, n)
	}
	s.visited = s.visited[:n]
	for i := range s.visited {
		s.visited[i] = false
	}
	s.predOff = 0
}

// initSlot allocates one node slot's buffers for the model's configuration.
func (s *InferenceSession) initSlot(ns *nodeState) {
	m := s.m
	ns.opOut = make([]float64, m.eOp)
	ns.metaOut = make([]float64, m.eMeta)
	if m.bmL != nil {
		ns.bmOut = make([]float64, m.eBm)
	}
	ns.predOut = make([]float64, m.ePred)
	ns.e = make([]float64, m.embedDim())
	switch m.Cfg.Rep {
	case RepLSTM:
		ns.cell = m.repCell.newState()
	case RepNN:
		ns.nnZ = make([]float64, m.embedDim()+2*m.Cfg.Hidden)
		ns.nnR = make([]float64, m.Cfg.Hidden)
		ns.nnG = make([]float64, m.Cfg.Hidden) // unused channel stays zero
	}
	ns.costHOut = make([]float64, m.Cfg.EstHidden)
	ns.cardHOut = make([]float64, m.Cfg.EstHidden)
}

// takePreds hands out n predicate-state slots from the arena, growing it on
// first contact with a larger predicate tree.
func (s *InferenceSession) takePreds(n int) []*predState {
	for len(s.preds) < s.predOff+n {
		s.preds = append(s.preds, &predState{})
	}
	out := s.preds[s.predOff : s.predOff+n]
	s.predOff += n
	return out
}

// Estimate runs the model over an encoded plan and returns denormalized
// estimates: the cost at the root, and the cardinality at the topmost
// non-aggregate node (aggregates always emit one row, so the query's
// cardinality is defined below them).
//
// costlint:noalloc
func (s *InferenceSession) Estimate(ep *feature.EncodedPlan) (cost, card float64) {
	return s.EstimateWithPool(ep, nil)
}

// EstimateWithPool is Estimate with a representation memory pool: sub-plans
// already in the pool reuse their stored representations, and new sub-plan
// representations are inserted (the paper's online workflow, Section 3).
//
// costlint:noalloc
func (s *InferenceSession) EstimateWithPool(ep *feature.EncodedPlan, pool *MemoryPool) (cost, card float64) {
	m := s.m
	s.begin(ep)
	root := s.forwardNode(ep, ep.Root, pool)
	s.forwardHeads(root)
	cardNS := root
	if ep.CardNode != ep.Root {
		cardNS = nil
		if s.visited[ep.CardNode] {
			cardNS = &s.nodes[ep.CardNode]
		}
		if cardNS == nil && pool != nil {
			// The cardinality node was skipped because an enclosing sub-plan
			// came from the pool; fetch its representation by signature.
			if _, r, ok := pool.GetGen(ep.Nodes[ep.CardNode].Sig, s.poolGen); ok {
				s.scratch.r = r
				cardNS = &s.scratch
			}
		}
		if cardNS == nil {
			// A bounded pool may have evicted the cardinality node while an
			// enclosing sub-plan stayed resident: recompute its subtree.
			cardNS = s.forwardNode(ep, ep.CardNode, pool)
		}
		if cardNS != root {
			s.forwardHeads(cardNS)
		}
	}
	return m.CostNorm.Denormalize(root.costS), m.CardNorm.Denormalize(cardNS.cardS)
}

// forwardTrain runs a full forward pass evaluating the estimation heads at
// every node, which training (and sub-plan supervision) needs.
func (s *InferenceSession) forwardTrain(ep *feature.EncodedPlan) {
	s.begin(ep)
	s.forwardNode(ep, ep.Root, nil)
	for i := range ep.Nodes {
		s.forwardHeads(&s.nodes[i])
	}
}

// f64Arena is a bump allocator over one float64 slab, reset per backward
// pass. When a pass outgrows the slab the overflow falls back to the heap
// and the slab is resized at the next reset, so steady-state passes over
// plans no larger than already seen allocate nothing.
type f64Arena struct {
	slab     []float64
	off      int
	overflow int
}

// take returns a zeroed length-n slice carved from the slab.
func (a *f64Arena) take(n int) []float64 {
	if a.off+n <= len(a.slab) {
		s := a.slab[a.off : a.off+n : a.off+n]
		a.off += n
		for i := range s {
			s[i] = 0
		}
		return s
	}
	a.overflow += n
	return make([]float64, n)
}

// reset reclaims the slab, growing it if the last pass overflowed.
func (a *f64Arena) reset() {
	if a.overflow > 0 {
		a.slab = make([]float64, len(a.slab)+a.overflow+a.overflow/2)
		a.overflow = 0
	}
	a.off = 0
}
