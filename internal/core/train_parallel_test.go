package core

import (
	"math"
	"sync"
	"testing"
)

// compareWeights asserts every parameter of a and b agrees within relative
// tolerance tol; tol == 0 demands bit-exact equality.
func compareWeights(t *testing.T, label string, a, b *Model, tol float64) {
	t.Helper()
	pa, pb := a.PS.Params(), b.PS.Params()
	for p := range pa {
		va, vb := pa[p].Value, pb[p].Value
		for i := range va {
			if tol == 0 {
				if va[i] != vb[i] {
					t.Fatalf("%s: %s value[%d] = %g vs %g (want bit-identical)",
						label, pa[p].Name, i, va[i], vb[i])
				}
				continue
			}
			if math.Abs(va[i]-vb[i]) > tol*math.Max(1, math.Abs(va[i])) {
				t.Fatalf("%s: %s value[%d] = %g vs %g (tol %g)",
					label, pa[p].Name, i, va[i], vb[i], tol)
			}
		}
	}
}

// TestTrainEpochParallelMatchesSequential is the gradient-parity gate: for
// every architecture variant, weights trained by the data-parallel runtime
// (3 shards) must match the sequential TrainEpochBatched result to 1e-6
// relative after two epochs — the shard split only reassociates the
// per-parameter gradient sums.
func TestTrainEpochParallelMatchesSequential(t *testing.T) {
	eps := benchCorpus(t, 24)
	for _, variant := range sessionVariants {
		cfg := TestConfig()
		variant.mod(&cfg)
		mSeq := New(cfg, testEnc)
		mPar := New(cfg, testEnc) // identical seed → identical weights
		seq := NewTrainer(mSeq)
		par := NewParallelTrainer(mPar, 3)
		seq.FitNormalizers(eps)
		par.FitNormalizers(eps)

		for e := 0; e < 2; e++ {
			lossSeq := seq.TrainEpochBatched(eps, 8, 1)
			lossPar := par.TrainEpochParallel(eps, 8, 2)
			if math.Abs(lossSeq-lossPar) > 1e-6*math.Max(1, math.Abs(lossSeq)) {
				t.Errorf("%s epoch %d: loss %g (sequential) vs %g (parallel)",
					variant.name, e, lossSeq, lossPar)
			}
		}
		compareWeights(t, variant.name, mSeq, mPar, 1e-6)
		par.Close()
	}
}

// TestTrainEpochParallelSingleShardBitIdentical pins the degenerate case:
// with one shard the parallel runtime routes the whole minibatch through one
// worker session and copies its gradient — it must reproduce
// TrainEpochBatched bit for bit, losses included.
func TestTrainEpochParallelSingleShardBitIdentical(t *testing.T) {
	eps := benchCorpus(t, 20)
	cfg := TestConfig()
	mSeq := New(cfg, testEnc)
	mPar := New(cfg, testEnc)
	seq := NewTrainer(mSeq)
	par := NewParallelTrainer(mPar, 1)
	defer par.Close()
	seq.FitNormalizers(eps)
	par.FitNormalizers(eps)
	for e := 0; e < 3; e++ {
		lossSeq := seq.TrainEpochBatched(eps, 8, 1)
		lossPar := par.TrainEpochParallel(eps, 8, 1)
		if lossSeq != lossPar {
			t.Fatalf("epoch %d: loss %g (sequential) vs %g (1-shard parallel), want bit-identical", e, lossSeq, lossPar)
		}
	}
	compareWeights(t, "shards=1", mSeq, mPar, 0)
}

// TestTrainEpochParallelWorkerCountInvariant pins the determinism contract:
// with a fixed shard count, the workers knob only caps concurrency — weights
// after training must be bit-identical whether shards execute one at a time
// or all at once.
func TestTrainEpochParallelWorkerCountInvariant(t *testing.T) {
	eps := benchCorpus(t, 24)
	cfg := TestConfig()
	models := make([]*Model, 0, 3)
	for _, workers := range []int{1, 2, 4} {
		m := New(cfg, testEnc)
		pt := NewParallelTrainer(m, 4)
		pt.FitNormalizers(eps)
		for e := 0; e < 2; e++ {
			pt.TrainEpochParallel(eps, 8, workers)
		}
		pt.Close()
		models = append(models, m)
	}
	compareWeights(t, "workers 1 vs 2", models[0], models[1], 0)
	compareWeights(t, "workers 1 vs 4", models[0], models[2], 0)
}

// TestTreeReductionDeterministic exercises the fixed-pair tree reduction
// (>= treeReduceMinShards active shards) that the 3-4 shard tests above
// never reach. Two contracts: worker-count invariance holds bit-exactly on
// the tree path (its pairing is a pure function of the active shard count,
// never of scheduling), and the tree result agrees with the sequential
// trainer to the established cross-shard reassociation tolerance.
func TestTreeReductionDeterministic(t *testing.T) {
	eps := benchCorpus(t, 24)
	cfg := TestConfig()
	shards := treeReduceMinShards + 4 // 12: chunk 2 over the 24-sample batch
	models := make([]*Model, 0, 3)
	for _, workers := range []int{1, 3, shards} {
		m := New(cfg, testEnc)
		pt := NewParallelTrainer(m, shards)
		pt.FitNormalizers(eps)
		for e := 0; e < 2; e++ {
			// One batch spanning every sample => active == shards >= the
			// tree threshold on every step.
			pt.TrainEpochParallel(eps, len(eps), workers)
		}
		pt.Close()
		models = append(models, m)
	}
	compareWeights(t, "tree workers 1 vs 3", models[0], models[1], 0)
	compareWeights(t, "tree workers 1 vs 12", models[0], models[2], 0)

	mSeq := New(cfg, testEnc)
	seq := NewTrainer(mSeq)
	seq.FitNormalizers(eps)
	for e := 0; e < 2; e++ {
		seq.TrainEpochBatched(eps, len(eps), 1)
	}
	compareWeights(t, "tree vs sequential", mSeq, models[0], 1e-6)
}

// TestTrainEpochParallelReducesLoss trains end to end through the parallel
// runtime and checks learning actually happens (reduction + optimizer
// wiring, not just gradient math).
func TestTrainEpochParallelReducesLoss(t *testing.T) {
	eps := labeledPlans(t, 404, 60, false)
	train := eps[:len(eps)*8/10]
	cfg := TestConfig()
	m := New(cfg, testEnc)
	pt := NewParallelTrainer(m, 2)
	defer pt.Close()
	pt.FitNormalizers(train)
	first := pt.TrainEpochParallel(train, 16, 2)
	var last float64
	for e := 0; e < 11; e++ {
		last = pt.TrainEpochParallel(train, 16, 2)
	}
	if last >= first {
		t.Fatalf("parallel training loss did not decrease: %g -> %g", first, last)
	}
}

// TestTrainEpochParallelZeroAlloc asserts the warm-path allocation contract:
// after the worker arenas have seen the epoch's shapes, a full parallel
// epoch — shuffle, shard dispatch, forward/backward in every worker,
// reduction, clip, Adam — performs zero heap allocations.
func TestTrainEpochParallelZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	eps := benchCorpus(t, 24)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	pt := NewParallelTrainer(m, 2)
	defer pt.Close()
	pt.FitNormalizers(eps)
	pt.Warmup(eps) // sizes every worker arena for any shard of this corpus
	pt.TrainEpochParallel(eps, 8, 2)
	allocs := testing.AllocsPerRun(10, func() {
		pt.TrainEpochParallel(eps, 8, 2)
	})
	if allocs != 0 {
		t.Errorf("warm TrainEpochParallel allocates %.1f objects/op, want 0", allocs)
	}
}

// TestParallelTrainingConcurrentServingAndPublish is the -race stress for
// the PR 3 + PR 4 composition: the data-parallel trainer retrains the live
// model (workers mutate private gradients, read shared weights) and
// publishes snapshots between epochs, while serving goroutines hammer the
// server's pooled single-plan and batch paths throughout. Every served
// estimate must belong to a published version; the race detector enforces
// that worker reads never overlap optimizer or publish writes.
func TestParallelTrainingConcurrentServingAndPublish(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	pt := NewParallelTrainer(m, 3)
	defer pt.Close()
	pt.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(256))
	srv.EnablePrewarm(4) // background replays join the race coverage

	const epochs = 4
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for e := 0; e < epochs; e++ {
			pt.TrainEpochParallel(eps, 8, 2)
			pt.Publish(srv)
		}
	}()
	var maxV sync.Map
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; ; k++ {
				_, _, v := srv.Estimate(eps[(w+k)%len(eps)])
				if v == 0 {
					panic("unversioned estimate")
				}
				ests, bv := srv.EstimateBatch(eps, 2)
				if len(ests) != len(eps) {
					panic("short batch")
				}
				maxV.Store(w, bv)
				select {
				case <-done:
					return
				default:
				}
			}
		}(w)
	}
	wg.Wait()
	if got := srv.Version(); got != epochs+1 {
		t.Fatalf("server version %d after %d publishes, want %d", got, epochs, epochs+1)
	}
}

// BenchmarkTrainEpochParallel measures the data-parallel trainer on the
// BenchmarkTrainEpochBatched workload (64 samples, batch 16). shards1 is the
// degenerate single-worker configuration (TrainEpochBatched plus one
// gradient copy); shards2 adds the second worker and the ordered two-way
// reduction — on a multi-core box the shard forwards/backwards overlap, on
// this 1-core container the delta is the pure reduction overhead.
func BenchmarkTrainEpochParallel(b *testing.B) {
	eps := benchCorpus(b, 64)
	for _, shards := range []int{1, 2} {
		cfg := TestConfig()
		m := New(cfg, testEnc)
		pt := NewParallelTrainer(m, shards)
		pt.FitNormalizers(eps)
		pt.Warmup(eps)
		pt.TrainEpochParallel(eps, 16, 0)
		b.Run(map[int]string{1: "shards1", 2: "shards2"}[shards], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pt.TrainEpochParallel(eps, 16, 0)
			}
		})
		pt.Close()
	}
}

// TestFitParallelMatchesSequentialFit pins the Fit acceptance gate: with
// shards = 1 the parallel epoch loop consumes the same shuffle stream as
// Trainer.Fit and routes whole minibatches through one worker, so per-epoch
// training losses and validation q-errors must match the sequential Fit to
// 1e-6 relative (the batched forward/backward reassociates per-parameter
// sums, nothing else).
func TestFitParallelMatchesSequentialFit(t *testing.T) {
	eps := benchCorpus(t, 30)
	train, valid := eps[:24], eps[24:]
	cfg := TestConfig()
	mSeq := New(cfg, testEnc)
	mPar := New(cfg, testEnc)
	seq := NewTrainer(mSeq)
	par := NewParallelTrainer(mPar, 1)
	defer par.Close()

	hSeq := seq.Fit(train, valid, 4, 8, nil)
	hPar := par.Fit(train, valid, 4, 8, 1, nil)
	if len(hSeq) != len(hPar) {
		t.Fatalf("history lengths differ: %d vs %d", len(hSeq), len(hPar))
	}
	close1 := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	for e := range hSeq {
		s, p := hSeq[e], hPar[e]
		if !close1(s.TrainLoss, p.TrainLoss) {
			t.Errorf("epoch %d: train loss %g (sequential Fit) vs %g (parallel Fit)", e, s.TrainLoss, p.TrainLoss)
		}
		if !close1(s.ValidCost, p.ValidCost) || !close1(s.ValidCard, p.ValidCard) {
			t.Errorf("epoch %d: validation (%g,%g) vs (%g,%g)", e, s.ValidCost, s.ValidCard, p.ValidCost, p.ValidCard)
		}
	}
	compareWeights(t, "Fit shards=1", mSeq, mPar, 1e-6)
}

// TestFitAutoPublishGated drives the validation-gated publish hook: only
// epochs improving the best published combined validation q-error publish,
// versions increase monotonically, and the server ends up serving the last
// published (not necessarily last trained) weights.
func TestFitAutoPublishGated(t *testing.T) {
	eps := benchCorpus(t, 30)
	train, valid := eps[:24], eps[24:]
	cfg := TestConfig()
	m := New(cfg, testEnc)
	pt := NewParallelTrainer(m, 2)
	defer pt.Close()
	srv := NewServer(m, NewBoundedMemoryPool(512))
	pt.AutoPublish(srv, AutoPublishOptions{Gated: true, Delta: true})

	hist := pt.Fit(train, valid, 6, 8, 2, nil)

	best := math.Inf(1)
	lastPub := uint64(1) // NewServer's initial snapshot
	published := 0
	for e, st := range hist {
		improved := st.ValidCost+st.ValidCard < best
		if improved {
			best = st.ValidCost + st.ValidCard
		}
		if improved != (st.Published != 0) {
			t.Fatalf("epoch %d: improved=%v but Published=%d", e, improved, st.Published)
		}
		if st.Published != 0 {
			if st.Published <= lastPub {
				t.Fatalf("epoch %d: version %d not increasing past %d", e, st.Published, lastPub)
			}
			lastPub = st.Published
			published++
		}
	}
	if published == 0 {
		t.Fatal("gated Fit never published (epoch 0 always improves +Inf)")
	}
	if hist[0].Published == 0 {
		t.Fatal("first epoch must publish: it always improves the +Inf gate")
	}
	if srv.Version() != lastPub {
		t.Fatalf("server serves version %d, last published %d", srv.Version(), lastPub)
	}
}

// TestFitPerMinibatchDeltaPublish turns on mid-epoch delta publication at
// every optimizer step: the server's version must advance once per step
// plus once per published epoch, and the served snapshot after Fit must be
// bit-identical to the live model — continuous publication never lags.
func TestFitPerMinibatchDeltaPublish(t *testing.T) {
	eps := benchCorpus(t, 24)
	train, valid := eps[:20], eps[20:]
	cfg := TestConfig()
	m := New(cfg, testEnc)
	pt := NewParallelTrainer(m, 2)
	defer pt.Close()
	srv := NewServer(m, NewBoundedMemoryPool(512))
	pt.AutoPublish(srv, AutoPublishOptions{Delta: true, EveryBatches: 1})

	const epochs = 3
	batch := 8
	hist := pt.Fit(train, valid, epochs, batch, 2, nil)

	stepsPerEpoch := (len(train) + batch - 1) / batch
	want := uint64(1 + epochs*stepsPerEpoch + epochs) // initial + per-step + per-epoch
	if srv.Version() != want {
		t.Fatalf("server version %d after per-minibatch publication, want %d", srv.Version(), want)
	}
	for _, st := range hist {
		if st.Published == 0 {
			t.Fatal("ungated Fit must publish every epoch")
		}
	}
	// The final served snapshot carries the final weights.
	snap := srv.Snapshot()
	compareWeights(t, "served vs live", snap.Model(), m, 0)
	ref := NewSession(snap.Model())
	for i, ep := range eps {
		c, d, v := srv.Estimate(ep)
		rc, rd := ref.Estimate(ep)
		if v != snap.Version() || c != rc || d != rd {
			t.Fatalf("plan %d: served (%g,%g) at v%d, snapshot replay (%g,%g) at v%d",
				i, c, d, v, rc, rd, snap.Version())
		}
	}
}

// TestFitPerMinibatchServingRace composes continuous per-minibatch delta
// publication with concurrent serving under -race: the training loop
// publishes after every optimizer step while servers hammer the pooled
// paths. Every served estimate must carry a version that was actually
// installed, and the delta buffers must never tear under the rotation.
func TestFitPerMinibatchServingRace(t *testing.T) {
	eps := benchCorpus(t, 24)
	train, valid := eps[:20], eps[20:]
	cfg := TestConfig()
	m := New(cfg, testEnc)
	pt := NewParallelTrainer(m, 2)
	defer pt.Close()
	srv := NewServer(m, NewBoundedMemoryPool(256))
	srv.EnablePrewarm(4)
	pt.AutoPublish(srv, AutoPublishOptions{Delta: true, EveryBatches: 1})

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		pt.Fit(train, valid, 3, 8, 2, nil)
	}()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; ; k++ {
				_, _, v := srv.Estimate(eps[(w+k)%len(eps)])
				if v == 0 || v > srv.Version() {
					panic("served an uninstalled version")
				}
				if ests, _ := srv.EstimateBatch(eps[:6], 2); len(ests) != 6 {
					panic("short batch")
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkFitParallel measures the continuous train-and-serve loop end to
// end at test dimensions: a 2-epoch Fit over 64 plans through the parallel
// runtime, without and with per-minibatch delta publication into a serving
// Server — the publication overhead of the continuous loop is the delta
// between the two.
func BenchmarkFitParallel(b *testing.B) {
	eps := benchCorpus(b, 64)
	train, valid := eps[:56], eps[56:]
	cfg := TestConfig()

	run := func(b *testing.B, publish bool) {
		m := New(cfg, testEnc)
		pt := NewParallelTrainer(m, 1)
		defer pt.Close()
		if publish {
			srv := NewServer(m, NewBoundedMemoryPool(1024))
			pt.AutoPublish(srv, AutoPublishOptions{Delta: true, EveryBatches: 1})
		}
		pt.FitNormalizers(train)
		pt.Warmup(train)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pt.Fit(train, valid, 2, 16, 1, nil)
		}
	}
	b.Run("noPublish", func(b *testing.B) { run(b, false) })
	b.Run("deltaEveryBatch", func(b *testing.B) { run(b, true) })
}

// TestFitEarlyStopping pins the patience contract: with a zero learning rate
// the validation error cannot improve after the first epoch, so Fit must
// stop after exactly 1 + patience epochs instead of burning the full budget;
// with early stopping disabled the same plateau runs every epoch.
func TestFitEarlyStopping(t *testing.T) {
	eps := benchCorpus(t, 12)
	train, valid := eps[:8], eps[8:]

	run := func(patience, epochs int) []EpochStats {
		cfg := TestConfig()
		cfg.LearnRate = 0 // frozen weights: epoch 0 sets the best, nothing improves after
		pt := NewParallelTrainer(New(cfg, testEnc), 1)
		defer pt.Close()
		pt.EarlyStop(EarlyStopOptions{Patience: patience})
		return pt.Fit(train, valid, epochs, 4, 1, nil)
	}

	if h := run(3, 20); len(h) != 4 {
		t.Fatalf("patience 3 on a plateau ran %d epochs, want 4 (1 best + 3 patience)", len(h))
	}
	if h := run(0, 6); len(h) != 6 {
		t.Fatalf("disabled early stopping ran %d epochs, want the full 6", len(h))
	}

	// An improving run must not stop early: every epoch that beats the best
	// resets the patience budget.
	cfg := TestConfig()
	pt := NewParallelTrainer(New(cfg, testEnc), 1)
	defer pt.Close()
	pt.EarlyStop(EarlyStopOptions{Patience: 2})
	h := pt.Fit(train, valid, 4, 4, 1, nil)
	improved := 0
	for i := 1; i < len(h); i++ {
		if h[i].ValidCost+h[i].ValidCard < h[i-1].ValidCost+h[i-1].ValidCard {
			improved++
		}
	}
	if improved == 0 && len(h) == 4 {
		t.Log("validation never improved; run length alone is not informative")
	}
	if len(h) > 4 {
		t.Fatalf("Fit ran %d epochs past its %d-epoch budget", len(h), 4)
	}

	// MinDelta: improvements smaller than the band count against patience.
	// A zero-lr run with a huge MinDelta behaves identically to the plateau.
	cfg2 := TestConfig()
	cfg2.LearnRate = 0
	pt2 := NewParallelTrainer(New(cfg2, testEnc), 1)
	defer pt2.Close()
	pt2.EarlyStop(EarlyStopOptions{Patience: 2, MinDelta: 1e9})
	if h := pt2.Fit(train, valid, 20, 4, 1, nil); len(h) != 3 {
		t.Fatalf("min-delta plateau ran %d epochs, want 3", len(h))
	}
}
