package core

import (
	"math"
	"sync"
	"testing"
)

// compareWeights asserts every parameter of a and b agrees within relative
// tolerance tol; tol == 0 demands bit-exact equality.
func compareWeights(t *testing.T, label string, a, b *Model, tol float64) {
	t.Helper()
	pa, pb := a.PS.Params(), b.PS.Params()
	for p := range pa {
		va, vb := pa[p].Value, pb[p].Value
		for i := range va {
			if tol == 0 {
				if va[i] != vb[i] {
					t.Fatalf("%s: %s value[%d] = %g vs %g (want bit-identical)",
						label, pa[p].Name, i, va[i], vb[i])
				}
				continue
			}
			if math.Abs(va[i]-vb[i]) > tol*math.Max(1, math.Abs(va[i])) {
				t.Fatalf("%s: %s value[%d] = %g vs %g (tol %g)",
					label, pa[p].Name, i, va[i], vb[i], tol)
			}
		}
	}
}

// TestTrainEpochParallelMatchesSequential is the gradient-parity gate: for
// every architecture variant, weights trained by the data-parallel runtime
// (3 shards) must match the sequential TrainEpochBatched result to 1e-6
// relative after two epochs — the shard split only reassociates the
// per-parameter gradient sums.
func TestTrainEpochParallelMatchesSequential(t *testing.T) {
	eps := benchCorpus(t, 24)
	for _, variant := range sessionVariants {
		cfg := TestConfig()
		variant.mod(&cfg)
		mSeq := New(cfg, testEnc)
		mPar := New(cfg, testEnc) // identical seed → identical weights
		seq := NewTrainer(mSeq)
		par := NewParallelTrainer(mPar, 3)
		seq.FitNormalizers(eps)
		par.FitNormalizers(eps)

		for e := 0; e < 2; e++ {
			lossSeq := seq.TrainEpochBatched(eps, 8, 1)
			lossPar := par.TrainEpochParallel(eps, 8, 2)
			if math.Abs(lossSeq-lossPar) > 1e-6*math.Max(1, math.Abs(lossSeq)) {
				t.Errorf("%s epoch %d: loss %g (sequential) vs %g (parallel)",
					variant.name, e, lossSeq, lossPar)
			}
		}
		compareWeights(t, variant.name, mSeq, mPar, 1e-6)
		par.Close()
	}
}

// TestTrainEpochParallelSingleShardBitIdentical pins the degenerate case:
// with one shard the parallel runtime routes the whole minibatch through one
// worker session and copies its gradient — it must reproduce
// TrainEpochBatched bit for bit, losses included.
func TestTrainEpochParallelSingleShardBitIdentical(t *testing.T) {
	eps := benchCorpus(t, 20)
	cfg := TestConfig()
	mSeq := New(cfg, testEnc)
	mPar := New(cfg, testEnc)
	seq := NewTrainer(mSeq)
	par := NewParallelTrainer(mPar, 1)
	defer par.Close()
	seq.FitNormalizers(eps)
	par.FitNormalizers(eps)
	for e := 0; e < 3; e++ {
		lossSeq := seq.TrainEpochBatched(eps, 8, 1)
		lossPar := par.TrainEpochParallel(eps, 8, 1)
		if lossSeq != lossPar {
			t.Fatalf("epoch %d: loss %g (sequential) vs %g (1-shard parallel), want bit-identical", e, lossSeq, lossPar)
		}
	}
	compareWeights(t, "shards=1", mSeq, mPar, 0)
}

// TestTrainEpochParallelWorkerCountInvariant pins the determinism contract:
// with a fixed shard count, the workers knob only caps concurrency — weights
// after training must be bit-identical whether shards execute one at a time
// or all at once.
func TestTrainEpochParallelWorkerCountInvariant(t *testing.T) {
	eps := benchCorpus(t, 24)
	cfg := TestConfig()
	models := make([]*Model, 0, 3)
	for _, workers := range []int{1, 2, 4} {
		m := New(cfg, testEnc)
		pt := NewParallelTrainer(m, 4)
		pt.FitNormalizers(eps)
		for e := 0; e < 2; e++ {
			pt.TrainEpochParallel(eps, 8, workers)
		}
		pt.Close()
		models = append(models, m)
	}
	compareWeights(t, "workers 1 vs 2", models[0], models[1], 0)
	compareWeights(t, "workers 1 vs 4", models[0], models[2], 0)
}

// TestTrainEpochParallelReducesLoss trains end to end through the parallel
// runtime and checks learning actually happens (reduction + optimizer
// wiring, not just gradient math).
func TestTrainEpochParallelReducesLoss(t *testing.T) {
	eps := labeledPlans(t, 404, 60, false)
	train := eps[:len(eps)*8/10]
	cfg := TestConfig()
	m := New(cfg, testEnc)
	pt := NewParallelTrainer(m, 2)
	defer pt.Close()
	pt.FitNormalizers(train)
	first := pt.TrainEpochParallel(train, 16, 2)
	var last float64
	for e := 0; e < 11; e++ {
		last = pt.TrainEpochParallel(train, 16, 2)
	}
	if last >= first {
		t.Fatalf("parallel training loss did not decrease: %g -> %g", first, last)
	}
}

// TestTrainEpochParallelZeroAlloc asserts the warm-path allocation contract:
// after the worker arenas have seen the epoch's shapes, a full parallel
// epoch — shuffle, shard dispatch, forward/backward in every worker,
// reduction, clip, Adam — performs zero heap allocations.
func TestTrainEpochParallelZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	eps := benchCorpus(t, 24)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	pt := NewParallelTrainer(m, 2)
	defer pt.Close()
	pt.FitNormalizers(eps)
	pt.Warmup(eps) // sizes every worker arena for any shard of this corpus
	pt.TrainEpochParallel(eps, 8, 2)
	allocs := testing.AllocsPerRun(10, func() {
		pt.TrainEpochParallel(eps, 8, 2)
	})
	if allocs != 0 {
		t.Errorf("warm TrainEpochParallel allocates %.1f objects/op, want 0", allocs)
	}
}

// TestParallelTrainingConcurrentServingAndPublish is the -race stress for
// the PR 3 + PR 4 composition: the data-parallel trainer retrains the live
// model (workers mutate private gradients, read shared weights) and
// publishes snapshots between epochs, while serving goroutines hammer the
// server's pooled single-plan and batch paths throughout. Every served
// estimate must belong to a published version; the race detector enforces
// that worker reads never overlap optimizer or publish writes.
func TestParallelTrainingConcurrentServingAndPublish(t *testing.T) {
	eps := benchCorpus(t, 12)
	cfg := TestConfig()
	m := New(cfg, testEnc)
	pt := NewParallelTrainer(m, 3)
	defer pt.Close()
	pt.FitNormalizers(eps)
	srv := NewServer(m, NewBoundedMemoryPool(256))
	srv.EnablePrewarm(4) // background replays join the race coverage

	const epochs = 4
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for e := 0; e < epochs; e++ {
			pt.TrainEpochParallel(eps, 8, 2)
			pt.Publish(srv)
		}
	}()
	var maxV sync.Map
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; ; k++ {
				_, _, v := srv.Estimate(eps[(w+k)%len(eps)])
				if v == 0 {
					panic("unversioned estimate")
				}
				ests, bv := srv.EstimateBatch(eps, 2)
				if len(ests) != len(eps) {
					panic("short batch")
				}
				maxV.Store(w, bv)
				select {
				case <-done:
					return
				default:
				}
			}
		}(w)
	}
	wg.Wait()
	if got := srv.Version(); got != epochs+1 {
		t.Fatalf("server version %d after %d publishes, want %d", got, epochs, epochs+1)
	}
}

// BenchmarkTrainEpochParallel measures the data-parallel trainer on the
// BenchmarkTrainEpochBatched workload (64 samples, batch 16). shards1 is the
// degenerate single-worker configuration (TrainEpochBatched plus one
// gradient copy); shards2 adds the second worker and the ordered two-way
// reduction — on a multi-core box the shard forwards/backwards overlap, on
// this 1-core container the delta is the pure reduction overhead.
func BenchmarkTrainEpochParallel(b *testing.B) {
	eps := benchCorpus(b, 64)
	for _, shards := range []int{1, 2} {
		cfg := TestConfig()
		m := New(cfg, testEnc)
		pt := NewParallelTrainer(m, shards)
		pt.FitNormalizers(eps)
		pt.Warmup(eps)
		pt.TrainEpochParallel(eps, 16, 0)
		b.Run(map[int]string{1: "shards1", 2: "shards2"}[shards], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pt.TrainEpochParallel(eps, 16, 0)
			}
		})
		pt.Close()
	}
}
