package core

import (
	"math"
	"sync"

	"costest/internal/feature"
	"costest/internal/nn"
	"costest/internal/tensor"
)

// BatchSession owns every per-call buffer the width-first batch evaluator
// needs — node/level arenas, the eBuf/gBuf/rBuf representation slabs, the
// predicate level buffers and the per-level gate matrices — sized by
// high-water mark and reused across calls. After warming up on the largest
// batch shape it has seen, steady-state EstimateBatch performs zero heap
// allocations, the batch-path counterpart of InferenceSession (PR 1).
//
// The parallel kernels are bound once at construction (the fn* fields) so
// that repeated calls never materialize fresh closures; per-level context
// travels through session fields (lvi/plvi) instead of captures. With
// workers <= 1 every kernel runs inline, which is the allocation-free path
// that AllocsPerRun tests enforce; with more workers the same kernels are
// fanned out through parallelFor.
//
// A session is bound to one model and is NOT safe for concurrent use; give
// each goroutine its own (Model.EstimateBatch maintains an internal
// sync.Pool of sessions for the convenience API).
//
// Training passes (Trainer.TrainEpochBatched) run the same forward with
// retention switched on: per-level gate activations, tanh caches and
// all-node head activations stay resident for the level-wise backward in
// batch_backward.go.
type BatchSession struct {
	m *Model
	// Cached model dimensions.
	de, dh, eh, epd, atomDim int

	// poolGen is the snapshot generation stamped on memory-pool traffic
	// (see InferenceSession.poolGen); zero for standalone sessions.
	poolGen uint64

	workers int
	train   bool

	// Per-call plan addressing.
	eps     []*feature.EncodedPlan
	offsets []int
	total   int
	levels  [][]levelItem
	all     []levelItem

	// cardPath marks, per global node id, the ancestors of each plan's
	// cardinality node (pool-integration bookkeeping).
	cardPath []bool

	// Node slabs: embedding, G/R representations, tanh(G) cache (training).
	eBuf, gBuf, rBuf, tBuf []float64

	// Per-level GEMM state. zt/gPrev are node-major ([n×in], [n×dh]); the
	// gate pre-activation outputs f/k1/r/k2 are gate-major ([dh×n]); nnPre
	// is the RepNN pre-activation ([dh×n]). Retained per level so training
	// backward can replay them.
	zt, gPrev, f, k1, r, k2, nnPre []tensor.Mat

	// Predicate-tree machinery.
	predBase         []int
	items            []predItem
	itemHeights      []int
	byLevel          [][]predItem
	predHs           []int
	pOut, pG         []float64
	ptBuf            []float64 // tanh of predicate G (training, PredLSTM)
	pzt, pgPrev      []tensor.Mat
	pf, pk1, pr, pk2 []tensor.Mat
	pxt, pleafOut    tensor.Mat // pool-variant leaf GEMM (level 0)

	// Estimation heads.
	headItems    []headItem
	headR        tensor.Mat
	rView        tensor.Mat // node-major view over rBuf (training heads)
	hCost, hCard tensor.Mat
	sCost, sCard []float64
	out          []Estimate

	// Current-level context read by the prebound kernels.
	lvi  int // plan level index
	plvi int // predicate level index

	// Backward state (training only, sized lazily; see batch_backward.go).
	dCostS, dCardS                   []float64
	dG, dR, dE                       []float64
	dPre                             []float64
	dH                               tensor.Mat
	dF, dK1, dRM, dK2, dGp, dZ       tensor.Mat
	dPOut, dPG                       []float64
	dPF, dPK1, dPRM, dPK2, dPGp, dPZ tensor.Mat
	dLeaf                            tensor.Mat
	// Head-backward context read by fnHeadBack (headBackOne runs twice per
	// pass, once per estimation head).
	bwdH  *tensor.Mat
	bwdWo []float64

	// Prebound parallel kernels (see bindKernels and bindBackwardKernels).
	fnEmbed, fnPredRoot                 func(int)
	fnPredLeafGather, fnPredLeafScatter func(int)
	fnPredPoolCombine                   func(int)
	fnPredCellFill, fnPredCellFinish    func(int)
	fnCellFill, fnCellFinish            func(int)
	fnNNFill, fnNNFinish                func(int)
	fnHeadFinish                        func(int)
	fnHeadBack                          func(int)
	fnBwdCellGrads, fnBwdCellScatter    func(int)
	fnBwdNNGrads, fnBwdNNScatter        func(int)
	fnBwdPredPool                       func(int)
	fnBwdPredGrads, fnBwdPredScatter    func(int)
}

// headItem addresses one head evaluation: a plan's root (cost) or its
// cardinality node.
type headItem struct {
	plan int
	node int32
}

// NewBatchSession returns a batch session bound to m. Buffers grow on first
// contact with each batch shape and are reused afterwards.
func NewBatchSession(m *Model) *BatchSession {
	s := &BatchSession{
		m: m, de: m.embedDim(), dh: m.Cfg.Hidden, eh: m.Cfg.EstHidden,
		epd: m.ePred, atomDim: m.Enc.AtomDim(),
	}
	s.bindKernels()
	s.bindBackwardKernels()
	return s
}

// Rebind points the session at a different model sharing the original's
// configuration and encoder — a hot-swapped snapshot. Arenas are sized by
// the configuration alone and the prebound kernels read s.m per call, so
// the rebind is one pointer store; it panics if the models are not
// interchangeable. The caller owns concurrency: a session must not be
// rebound while it is evaluating.
func (s *BatchSession) Rebind(m *Model) {
	if m.Cfg != s.m.Cfg || m.Enc != s.m.Enc {
		panic("core: Rebind across different model configurations")
	}
	s.m = m
}

// EstimateBatch evaluates many plans with the width-first batching of
// Section 4.3 (see Model.EstimateBatch for the algorithm). The returned
// slice is owned by the session and overwritten by the next call.
func (s *BatchSession) EstimateBatch(eps []*feature.EncodedPlan, workers int) []Estimate {
	return s.run(eps, nil, workers, false)
}

// EstimateBatchWithPool is EstimateBatch with a representation memory pool
// (Section 3): sub-plans whose signatures hit the pool have their stored
// G/R injected into the batch slabs up front and their subtrees skip the
// level sweep entirely; newly computed sub-plan representations are
// inserted afterwards. The returned slice is owned by the session.
func (s *BatchSession) EstimateBatchWithPool(eps []*feature.EncodedPlan, pool *MemoryPool, workers int) []Estimate {
	return s.run(eps, pool, workers, false)
}

// slab accessors

func (s *BatchSession) eOf(id int) []float64 { return s.eBuf[id*s.de : (id+1)*s.de] }
func (s *BatchSession) gOf(id int) []float64 { return s.gBuf[id*s.dh : (id+1)*s.dh] }
func (s *BatchSession) rOf(id int) []float64 { return s.rBuf[id*s.dh : (id+1)*s.dh] }
func (s *BatchSession) tOf(id int) []float64 { return s.tBuf[id*s.dh : (id+1)*s.dh] }

func (s *BatchSession) pOutOf(flat int) []float64 { return s.pOut[flat*s.epd : (flat+1)*s.epd] }
func (s *BatchSession) pGOf(flat int) []float64   { return s.pG[flat*s.epd : (flat+1)*s.epd] }
func (s *BatchSession) ptOf(flat int) []float64   { return s.ptBuf[flat*s.epd : (flat+1)*s.epd] }

// flatOf maps one predicate-tree node of one plan node to its arena slot (a
// tree's nodes occupy consecutive slots from the tree's base).
func (s *BatchSession) flatOf(plan int, node int32, pidx int) int {
	return s.predBase[s.offsets[plan]+int(node)] + pidx
}

// releasePlans drops the session's references to the last batch's plans (the
// item/level lists hold only indices) so an idle pooled session does not pin
// caller memory. Arenas stay warm.
func (s *BatchSession) releasePlans() { s.eps = nil }

// parRun executes fn(0..n-1), inline when the session is single-worker and
// via parallelFor otherwise. fn must be one of the prebound kernels so the
// sequential path stays allocation-free.
func (s *BatchSession) parRun(n int, fn func(int)) {
	if s.workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	parallelFor(n, s.workers, fn)
}

// run is the shared forward driver for inference and training passes.
func (s *BatchSession) run(eps []*feature.EncodedPlan, pool *MemoryPool, workers int, train bool) []Estimate {
	s.workers = resolveWorkers(workers)
	s.train = train
	s.eps = eps
	if len(eps) == 0 {
		return nil
	}
	s.layout(pool)

	// Phase 1: simple-feature embeddings (parallel, sparse), then predicate
	// embeddings batched level-wise across every predicate tree.
	s.parRun(len(s.all), s.fnEmbed)
	s.batchPreds()

	// Phase 2: level-by-level batched representation evaluation.
	for d := range s.levels {
		lv := s.levels[d]
		if len(lv) == 0 {
			continue
		}
		s.lvi = d
		n := len(lv)
		switch s.m.Cfg.Rep {
		case RepLSTM:
			matInto(&s.zt[d], n, s.dh+s.de)
			matInto(&s.gPrev[d], n, s.dh)
			matInto(&s.f[d], s.dh, n)
			matInto(&s.k1[d], s.dh, n)
			matInto(&s.r[d], s.dh, n)
			matInto(&s.k2[d], s.dh, n)
			s.parRun(n, s.fnCellFill)
			s.runGates(s.m.repCell, &s.zt[d], &s.f[d], &s.k1[d], &s.r[d], &s.k2[d])
			s.parRun(n, s.fnCellFinish)
		case RepNN:
			matInto(&s.zt[d], n, s.de+2*s.dh)
			matInto(&s.nnPre[d], s.dh, n)
			s.parRun(n, s.fnNNFill)
			tensor.MatMulTransBInto(&s.nnPre[d], s.m.repNN.W.Mat(), &s.zt[d])
			s.parRun(n, s.fnNNFinish)
		}
	}

	// Phase 3: estimation heads — every node for training (sub-plan
	// supervision), only roots and cardinality nodes for serving.
	if train {
		s.rView = tensor.Mat{Rows: s.total, Cols: s.dh, Data: s.rBuf[:s.total*s.dh]}
		s.evalHeadsMat(&s.rView)
		return nil
	}
	s.headsTop()
	if pool != nil {
		s.insertAll(pool)
	}
	return s.out
}

// layout computes the global node addressing for this batch, sizes the
// slabs, and builds the level lists — excluding subtrees served from the
// memory pool, whose representations are injected into gBuf/rBuf directly.
func (s *BatchSession) layout(pool *MemoryPool) {
	eps := s.eps
	s.offsets = growSlice(s.offsets, len(eps)+1)
	s.offsets[0] = 0
	maxDepth := 0
	for i, ep := range eps {
		s.offsets[i+1] = s.offsets[i] + len(ep.Nodes)
		if ep.Depth() > maxDepth {
			maxDepth = ep.Depth()
		}
	}
	s.total = s.offsets[len(eps)]
	s.eBuf = growSlice(s.eBuf, s.total*s.de)
	s.gBuf = growSlice(s.gBuf, s.total*s.dh)
	s.rBuf = growSlice(s.rBuf, s.total*s.dh)
	if s.train {
		s.tBuf = growSlice(s.tBuf, s.total*s.dh)
	}
	if s.m.Cfg.Rep == RepNN {
		// RepNN has no G channel; keep the slab zero so pool inserts and
		// the single-plan path agree on a zero G.
		for i := range s.gBuf {
			s.gBuf[i] = 0
		}
	}

	s.levels = growOuter(s.levels, maxDepth)
	s.zt = growMats(s.zt, maxDepth)
	s.gPrev = growMats(s.gPrev, maxDepth)
	s.f = growMats(s.f, maxDepth)
	s.k1 = growMats(s.k1, maxDepth)
	s.r = growMats(s.r, maxDepth)
	s.k2 = growMats(s.k2, maxDepth)
	s.nnPre = growMats(s.nnPre, maxDepth)

	if pool == nil {
		for pi, ep := range eps {
			for d, nodes := range ep.Levels {
				for _, n := range nodes {
					s.levels[d] = append(s.levels[d], levelItem{plan: pi, node: n})
				}
			}
		}
	} else {
		s.cardPath = growSlice(s.cardPath, s.total)
		for i := range s.cardPath {
			s.cardPath[i] = false
		}
		for pi, ep := range eps {
			s.markCardPath(pi, ep, ep.Root)
		}
		for pi, ep := range eps {
			s.placeNode(pi, ep, ep.Root, pool)
		}
	}

	s.all = s.all[:0]
	for _, lv := range s.levels {
		s.all = append(s.all, lv...)
	}
}

// markCardPath flags idx and its ancestors when the subtree contains the
// plan's cardinality node; returns whether it does.
func (s *BatchSession) markCardPath(pi int, ep *feature.EncodedPlan, idx int) bool {
	node := &ep.Nodes[idx]
	found := idx == ep.CardNode
	if !found && node.Left >= 0 {
		found = s.markCardPath(pi, ep, node.Left)
	}
	if !found && node.Right >= 0 {
		found = s.markCardPath(pi, ep, node.Right)
	}
	if found {
		s.cardPath[s.offsets[pi]+idx] = true
	}
	return found
}

// placeNode assigns the subtree at idx to level lists, skipping sub-plans
// whose representations the pool already holds (their G/R are copied into
// the slabs so parents and heads read them like computed rows). Returns the
// node's level, or -1 when the subtree was served from the pool.
func (s *BatchSession) placeNode(pi int, ep *feature.EncodedPlan, idx int, pool *MemoryPool) int {
	node := &ep.Nodes[idx]
	id := s.offsets[pi] + idx
	if g, r, ok := pool.GetGen(node.Sig, s.poolGen); ok {
		usable := true
		if s.cardPath[id] && idx != ep.CardNode {
			// The plan's cardinality node sits strictly inside this pooled
			// subtree. Taking the hit is only sound if its representation
			// is itself resident (a bounded pool may have evicted it);
			// otherwise fall through and recompute the subtree, exactly
			// like the single-plan path.
			cid := s.offsets[pi] + ep.CardNode
			if cg, cr, cok := pool.GetGen(ep.Nodes[ep.CardNode].Sig, s.poolGen); cok {
				copy(s.gOf(cid), cg)
				copy(s.rOf(cid), cr)
			} else {
				usable = false
			}
		}
		if usable {
			copy(s.gOf(id), g)
			copy(s.rOf(id), r)
			return -1
		}
	}
	h := 0
	if node.Left >= 0 {
		if lh := s.placeNode(pi, ep, node.Left, pool) + 1; lh > h {
			h = lh
		}
	}
	if node.Right >= 0 {
		if rh := s.placeNode(pi, ep, node.Right, pool) + 1; rh > h {
			h = rh
		}
	}
	s.levels[h] = append(s.levels[h], levelItem{plan: pi, node: int32(idx)})
	return h
}

// insertAll stores every freshly computed sub-plan representation in the
// pool (the paper's online workflow).
func (s *BatchSession) insertAll(pool *MemoryPool) {
	for _, it := range s.all {
		id := s.offsets[it.plan] + int(it.node)
		pool.PutGen(s.eps[it.plan].Nodes[it.node].Sig, s.gOf(id), s.rOf(id), s.poolGen)
	}
}

// batchPreds embeds every predicate tree in the batch, level by level: leaf
// vectors run through W_p (pool variants) or the predicate cell (LSTM
// variant) as one GEMM per level, pooling connectives combine elementwise.
// Results land in the pred segment of each node's embedding.
func (s *BatchSession) batchPreds() {
	m := s.m
	s.items = s.items[:0]
	s.itemHeights = s.itemHeights[:0]
	s.predBase = growSlice(s.predBase, s.total)
	for i := range s.predBase {
		s.predBase[i] = -1
	}
	maxH := -1
	for _, it := range s.all {
		node := &s.eps[it.plan].Nodes[it.node]
		if node.Pred.Empty() {
			continue
		}
		if cap(s.predHs) < len(node.Pred.Nodes) {
			s.predHs = make([]int, len(node.Pred.Nodes))
		}
		hs := s.predHs[:len(node.Pred.Nodes)]
		predHeightsInto(&node.Pred, 0, hs)
		s.predBase[s.offsets[it.plan]+int(it.node)] = len(s.items)
		for pidx := range node.Pred.Nodes {
			s.items = append(s.items, predItem{plan: it.plan, node: it.node,
				pidx: int32(pidx), flat: len(s.items)})
			s.itemHeights = append(s.itemHeights, hs[pidx])
			if hs[pidx] > maxH {
				maxH = hs[pidx]
			}
		}
	}
	if len(s.items) == 0 {
		return
	}
	s.pOut = growSlice(s.pOut, len(s.items)*s.epd)
	if m.Cfg.Pred == PredLSTM {
		s.pG = growSlice(s.pG, len(s.items)*s.epd)
		if s.train {
			s.ptBuf = growSlice(s.ptBuf, len(s.items)*s.epd)
		}
		s.pzt = growMats(s.pzt, maxH+1)
		s.pgPrev = growMats(s.pgPrev, maxH+1)
		s.pf = growMats(s.pf, maxH+1)
		s.pk1 = growMats(s.pk1, maxH+1)
		s.pr = growMats(s.pr, maxH+1)
		s.pk2 = growMats(s.pk2, maxH+1)
	}
	s.byLevel = growOuter(s.byLevel, maxH+1)
	for k, it := range s.items {
		s.byLevel[s.itemHeights[k]] = append(s.byLevel[s.itemHeights[k]], it)
	}

	for h := range s.byLevel {
		lv := s.byLevel[h]
		if len(lv) == 0 {
			continue
		}
		s.plvi = h
		n := len(lv)
		switch m.Cfg.Pred {
		case PredPool, PredPoolMean:
			if h == 0 {
				// All leaves: one GEMM through W_p.
				matInto(&s.pxt, n, s.atomDim)
				s.parRun(n, s.fnPredLeafGather)
				matInto(&s.pleafOut, s.epd, n)
				tensor.MatMulTransBInto(&s.pleafOut, m.predLeaf.W.Mat(), &s.pxt)
				s.parRun(n, s.fnPredLeafScatter)
			} else {
				s.parRun(n, s.fnPredPoolCombine)
			}
		case PredLSTM:
			matInto(&s.pzt[h], n, s.epd+s.atomDim)
			matInto(&s.pgPrev[h], n, s.epd)
			matInto(&s.pf[h], s.epd, n)
			matInto(&s.pk1[h], s.epd, n)
			matInto(&s.pr[h], s.epd, n)
			matInto(&s.pk2[h], s.epd, n)
			s.parRun(n, s.fnPredCellFill)
			s.runGates(m.predCell, &s.pzt[h], &s.pf[h], &s.pk1[h], &s.pr[h], &s.pk2[h])
			s.parRun(n, s.fnPredCellFinish)
		}
	}

	// Copy each tree root (pidx 0) into its node's embedding segment.
	s.parRun(len(s.items), s.fnPredRoot)
}

// runGates evaluates the four cell gates over a level: pre = W·ztᵀ, then
// bias + nonlinearity in place. The four products are independent; they run
// inline on a single-worker session and overlapped otherwise.
func (s *BatchSession) runGates(cell *lstmCell, zt *tensor.Mat, f, k1, r, k2 *tensor.Mat) {
	if s.workers <= 1 {
		gateRun(f, cell.wf, zt, sigmoidScalar)
		gateRun(k1, cell.wk1, zt, sigmoidScalar)
		gateRun(r, cell.wr, zt, math.Tanh)
		gateRun(k2, cell.wk2, zt, sigmoidScalar)
		return
	}
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { defer wg.Done(); gateRun(f, cell.wf, zt, sigmoidScalar) }()
	go func() { defer wg.Done(); gateRun(k1, cell.wk1, zt, sigmoidScalar) }()
	go func() { defer wg.Done(); gateRun(r, cell.wr, zt, math.Tanh) }()
	go func() { defer wg.Done(); gateRun(k2, cell.wk2, zt, sigmoidScalar) }()
	wg.Wait()
}

// gateRun computes one gate's pre-activations for a level (dst = W·ztᵀ) and
// applies bias and nonlinearity in place.
func gateRun(dst *tensor.Mat, l *nn.Linear, zt *tensor.Mat, act func(float64) float64) {
	tensor.MatMulTransBInto(dst, l.W.Mat(), zt)
	b := l.B.Vec()
	n := zt.Rows
	for i := 0; i < dst.Rows; i++ {
		row := dst.Data[i*n : (i+1)*n]
		bi := b[i]
		for j := range row {
			row[j] = act(row[j] + bi)
		}
	}
}

// headsTop evaluates the estimation heads for each plan's root and
// cardinality node as batched GEMMs and denormalizes into s.out.
func (s *BatchSession) headsTop() {
	s.headItems = s.headItems[:0]
	for i, ep := range s.eps {
		s.headItems = append(s.headItems, headItem{plan: i, node: int32(ep.Root)})
		if ep.CardNode != ep.Root {
			s.headItems = append(s.headItems, headItem{plan: i, node: int32(ep.CardNode)})
		}
	}
	nh := len(s.headItems)
	matInto(&s.headR, nh, s.dh)
	for j, it := range s.headItems {
		copy(s.headR.Row(j), s.rOf(s.offsets[it.plan]+int(it.node)))
	}
	s.evalHeadsMat(&s.headR)

	s.out = growSlice(s.out, len(s.eps))
	for j, it := range s.headItems {
		ep := s.eps[it.plan]
		if int(it.node) == ep.Root {
			s.out[it.plan].Cost = s.m.CostNorm.Denormalize(s.sCost[j])
			if ep.CardNode == ep.Root {
				s.out[it.plan].Card = s.m.CardNorm.Denormalize(s.sCard[j])
			}
		} else {
			s.out[it.plan].Card = s.m.CardNorm.Denormalize(s.sCard[j])
		}
	}
}

// evalHeadsMat runs both estimation heads over a node-major representation
// matrix: the hidden layers are single GEMMs (H = R·Wᵀ), the 1-wide sigmoid
// outputs reduce per row. Hidden activations stay resident (hCost/hCard)
// for training backward.
func (s *BatchSession) evalHeadsMat(R *tensor.Mat) {
	nh := R.Rows
	matInto(&s.hCost, nh, s.eh)
	matInto(&s.hCard, nh, s.eh)
	s.sCost = growSlice(s.sCost, nh)
	s.sCard = growSlice(s.sCard, nh)
	tensor.MatMulTransBInto(&s.hCost, R, s.m.costH.W.Mat())
	tensor.MatMulTransBInto(&s.hCard, R, s.m.cardH.W.Mat())
	s.parRun(nh, s.fnHeadFinish)
}

// predHeightsInto writes each predicate node's height above the leaves into
// hs and returns the subtree height at i.
func predHeightsInto(ep *feature.EncodedPred, i int, hs []int) int {
	pn := &ep.Nodes[i]
	if pn.IsLeaf {
		hs[i] = 0
		return 0
	}
	l := predHeightsInto(ep, pn.Left, hs)
	r := predHeightsInto(ep, pn.Right, hs)
	h := l
	if r > h {
		h = r
	}
	hs[i] = h + 1
	return h + 1
}

// bindKernels allocates the session's parallel kernels once. Each reads its
// loop context from session fields (lvi/plvi and the per-level matrices) so
// steady-state calls never materialize new closures.
func (s *BatchSession) bindKernels() {
	// Kernels resolve s.m on every call (not a captured copy) so Rebind can
	// hot-swap the model without re-binding closures.
	s.fnEmbed = func(k int) {
		it := s.all[k]
		node := &s.eps[it.plan].Nodes[it.node]
		s.m.embedSimple(node, s.eOf(s.offsets[it.plan]+int(it.node)))
	}

	s.fnPredRoot = func(k int) {
		it := s.items[k]
		if it.pidx != 0 {
			return
		}
		m := s.m
		predSegOff := m.eOp + m.eMeta + m.eBm
		id := s.offsets[it.plan] + int(it.node)
		copy(s.eOf(id)[predSegOff:predSegOff+s.epd], s.pOutOf(it.flat))
	}

	s.fnPredLeafGather = func(j int) {
		it := s.byLevel[s.plvi][j]
		copy(s.pxt.Row(j), s.eps[it.plan].Nodes[it.node].Pred.Nodes[it.pidx].Vec)
	}

	s.fnPredLeafScatter = func(j int) {
		lv := s.byLevel[s.plvi]
		n := len(lv)
		b := s.m.predLeaf.B.Vec()
		dst := s.pOutOf(lv[j].flat)
		for i := 0; i < s.epd; i++ {
			dst[i] = s.pleafOut.Data[i*n+j] + b[i]
		}
	}

	s.fnPredPoolCombine = func(j int) {
		it := s.byLevel[s.plvi][j]
		pn := &s.eps[it.plan].Nodes[it.node].Pred.Nodes[it.pidx]
		l := s.pOutOf(s.flatOf(it.plan, it.node, pn.Left))
		r := s.pOutOf(s.flatOf(it.plan, it.node, pn.Right))
		dst := s.pOutOf(it.flat)
		switch {
		case s.m.Cfg.Pred == PredPoolMean:
			tensor.Mean(dst, l, r)
		case pn.Bool == 0:
			tensor.MinInto(dst, l, r)
		default:
			tensor.MaxInto(dst, l, r)
		}
	}

	s.fnPredCellFill = func(j int) {
		it := s.byLevel[s.plvi][j]
		pn := &s.eps[it.plan].Nodes[it.node].Pred.Nodes[it.pidx]
		epd := s.epd
		var gl, rl, gr, rr []float64
		if pn.Left >= 0 {
			fl := s.flatOf(it.plan, it.node, pn.Left)
			gl, rl = s.pGOf(fl), s.pOutOf(fl)
		}
		if pn.Right >= 0 {
			fr := s.flatOf(it.plan, it.node, pn.Right)
			gr, rr = s.pGOf(fr), s.pOutOf(fr)
		}
		zRow := s.pzt[s.plvi].Row(j)
		gRow := s.pgPrev[s.plvi].Row(j)
		for i := 0; i < epd; i++ {
			var g, r float64
			if gl != nil {
				g += gl[i]
				r += rl[i]
			}
			if gr != nil {
				g += gr[i]
				r += rr[i]
			}
			gRow[i] = g / 2
			zRow[i] = r / 2
		}
		copy(zRow[epd:], pn.Vec)
	}

	s.fnPredCellFinish = func(j int) {
		lv := s.byLevel[s.plvi]
		n := len(lv)
		it := lv[j]
		g := s.pGOf(it.flat)
		rOut := s.pOutOf(it.flat)
		gRow := s.pgPrev[s.plvi].Row(j)
		f, k1, r, k2 := &s.pf[s.plvi], &s.pk1[s.plvi], &s.pr[s.plvi], &s.pk2[s.plvi]
		if s.train {
			tRow := s.ptOf(it.flat)
			for i := 0; i < s.epd; i++ {
				gt := f.Data[i*n+j]*gRow[i] + k1.Data[i*n+j]*r.Data[i*n+j]
				g[i] = gt
				t := math.Tanh(gt)
				tRow[i] = t
				rOut[i] = k2.Data[i*n+j] * t
			}
			return
		}
		for i := 0; i < s.epd; i++ {
			gt := f.Data[i*n+j]*gRow[i] + k1.Data[i*n+j]*r.Data[i*n+j]
			g[i] = gt
			rOut[i] = k2.Data[i*n+j] * math.Tanh(gt)
		}
	}

	s.fnCellFill = func(j int) {
		it := s.levels[s.lvi][j]
		node := &s.eps[it.plan].Nodes[it.node]
		base := s.offsets[it.plan]
		dh := s.dh
		var gl, rl, gr, rr []float64
		if node.Left >= 0 {
			gl, rl = s.gOf(base+node.Left), s.rOf(base+node.Left)
		}
		if node.Right >= 0 {
			gr, rr = s.gOf(base+node.Right), s.rOf(base+node.Right)
		}
		zRow := s.zt[s.lvi].Row(j)
		gRow := s.gPrev[s.lvi].Row(j)
		for i := 0; i < dh; i++ {
			var g, r float64
			if gl != nil {
				g += gl[i]
				r += rl[i]
			}
			if gr != nil {
				g += gr[i]
				r += rr[i]
			}
			gRow[i] = g / 2
			zRow[i] = r / 2
		}
		copy(zRow[dh:], s.eOf(base+int(it.node)))
	}

	s.fnCellFinish = func(j int) {
		lv := s.levels[s.lvi]
		n := len(lv)
		it := lv[j]
		id := s.offsets[it.plan] + int(it.node)
		g := s.gOf(id)
		rOut := s.rOf(id)
		gRow := s.gPrev[s.lvi].Row(j)
		f, k1, r, k2 := &s.f[s.lvi], &s.k1[s.lvi], &s.r[s.lvi], &s.k2[s.lvi]
		if s.train {
			tRow := s.tOf(id)
			for i := 0; i < s.dh; i++ {
				gt := f.Data[i*n+j]*gRow[i] + k1.Data[i*n+j]*r.Data[i*n+j]
				g[i] = gt
				t := math.Tanh(gt)
				tRow[i] = t
				rOut[i] = k2.Data[i*n+j] * t
			}
			return
		}
		for i := 0; i < s.dh; i++ {
			gt := f.Data[i*n+j]*gRow[i] + k1.Data[i*n+j]*r.Data[i*n+j]
			g[i] = gt
			rOut[i] = k2.Data[i*n+j] * math.Tanh(gt)
		}
	}

	s.fnNNFill = func(j int) {
		it := s.levels[s.lvi][j]
		node := &s.eps[it.plan].Nodes[it.node]
		base := s.offsets[it.plan]
		de, dh := s.de, s.dh
		zRow := s.zt[s.lvi].Row(j)
		copy(zRow, s.eOf(base+int(it.node)))
		if node.Left >= 0 {
			copy(zRow[de:de+dh], s.rOf(base+node.Left))
		} else {
			// Reused buffers: absent children must be re-zeroed explicitly.
			for i := de; i < de+dh; i++ {
				zRow[i] = 0
			}
		}
		if node.Right >= 0 {
			copy(zRow[de+dh:], s.rOf(base+node.Right))
		} else {
			for i := de + dh; i < len(zRow); i++ {
				zRow[i] = 0
			}
		}
	}

	s.fnNNFinish = func(j int) {
		lv := s.levels[s.lvi]
		n := len(lv)
		it := lv[j]
		r := s.rOf(s.offsets[it.plan] + int(it.node))
		pre := &s.nnPre[s.lvi]
		b := s.m.repNN.B.Vec()
		for i := 0; i < s.dh; i++ {
			v := pre.Data[i*n+j] + b[i]
			if v < 0 {
				v = 0
			}
			r[i] = v
		}
	}

	s.fnHeadFinish = func(j int) {
		m := s.m
		hb := m.costH.B.Vec()
		row := s.hCost.Row(j)
		for i, bi := range hb {
			v := row[i] + bi
			if v < 0 {
				v = 0
			}
			row[i] = v
		}
		s.sCost[j] = sigmoidScalar(tensor.Dot(row, m.costO.W.Mat().Data) + m.costO.B.Vec()[0])

		hb = m.cardH.B.Vec()
		row = s.hCard.Row(j)
		for i, bi := range hb {
			v := row[i] + bi
			if v < 0 {
				v = 0
			}
			row[i] = v
		}
		s.sCard[j] = sigmoidScalar(tensor.Dot(row, m.cardO.W.Mat().Data) + m.cardO.B.Vec()[0])
	}
}

// sizing helpers

// matInto resizes m to rows×cols, reusing its backing array when possible.
// Contents are unspecified — callers overwrite every element.
func matInto(m *tensor.Mat, rows, cols int) {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
}

// growSlice returns a length-n slice, reusing s's backing array when it is
// large enough. Contents are unspecified.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// growOuter resizes a slice of per-level lists to n levels, keeping every
// inner list's backing array and resetting each to length 0.
func growOuter[T any](s [][]T, n int) [][]T {
	if cap(s) < n {
		ns := make([][]T, n)
		copy(ns, s[:cap(s)])
		s = ns
	}
	s = s[:n]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

// growMats resizes a per-level matrix list, keeping existing matrices (and
// their backing arrays) intact.
func growMats(s []tensor.Mat, n int) []tensor.Mat {
	if cap(s) < n {
		ns := make([]tensor.Mat, n)
		copy(ns, s[:cap(s)])
		s = ns
	}
	return s[:n]
}
