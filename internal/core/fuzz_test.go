package core

import (
	"bytes"
	"testing"
)

// savedModelBytes serializes a small trained-shape model — the valid-input
// seed for the checkpoint fuzzers.
func savedModelBytes(tb testing.TB) []byte {
	tb.Helper()
	m := New(TestConfig(), testEnc)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		tb.Fatalf("save: %v", err)
	}
	return buf.Bytes()
}

// FuzzLoadModel drives the self-describing checkpoint loader with arbitrary
// bytes: it must return a model or an error, never panic, and never trust a
// header enough to allocate unboundedly (the Config sanity guard exists for
// exactly the inputs this fuzzer constructs).
func FuzzLoadModel(f *testing.F) {
	valid := savedModelBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])       // truncated mid-payload
	f.Add(valid[:len(modelMagic)+10]) // truncated mid-header
	f.Add([]byte(modelMagic))         // magic only
	f.Add([]byte("COSTESTX garbage")) // wrong magic
	f.Add([]byte{})                   // empty
	corrupt := append([]byte(nil), valid...)
	corrupt[len(modelMagic)+4] ^= 0xFF // flipped header byte
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadModel(bytes.NewReader(data), testEnc)
		if err == nil && m == nil {
			t.Fatal("LoadModel returned nil model and nil error")
		}
	})
}

// FuzzModelLoad drives the in-place loader (which also accepts the legacy
// headerless format, i.e. a bare gob stream) with arbitrary bytes. The
// validate-then-commit contract means a failed load must leave the model's
// weights untouched.
func FuzzModelLoad(f *testing.F) {
	valid := savedModelBytes(f)
	f.Add(valid)
	f.Add(valid[len(modelMagic):]) // headerless-looking: bare gob stream
	f.Add(valid[:10])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := New(TestConfig(), testEnc)
		before := snapshotBits(m)
		if err := m.Load(bytes.NewReader(data)); err != nil {
			if got := snapshotBits(m); !bytes.Equal(before, got) {
				t.Fatal("failed Load mutated model weights")
			}
		}
	})
}

// snapshotBits captures every parameter value bit-exactly for
// mutation-on-error checks.
func snapshotBits(m *Model) []byte {
	var buf bytes.Buffer
	if err := m.PS.Save(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
