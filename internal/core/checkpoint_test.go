package core

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"costest/internal/fault"
)

// trainedCheckpointModel builds a small trained model for checkpoint tests.
func trainedCheckpointModel(t *testing.T) *Model {
	t.Helper()
	eps := benchCorpus(t, 8)
	m := New(TestConfig(), testEnc)
	tr := NewTrainer(m)
	tr.FitNormalizers(eps)
	tr.TrainEpochBatched(eps, 4, 1)
	return m
}

// sameEstimates fails the test unless a and b estimate the corpus
// bit-identically.
func sameEstimates(t *testing.T, a, b *Model) {
	t.Helper()
	for i, ep := range benchCorpus(t, 8) {
		c1, d1 := a.Estimate(ep)
		c2, d2 := b.Estimate(ep)
		if c1 != c2 || d1 != d2 {
			t.Fatalf("plan %d: estimates (%g,%g) vs (%g,%g)", i, c2, d2, c1, d1)
		}
	}
}

// TestSaveCheckpointAtomicRoundTrip: the happy path writes path (and, on the
// second save, path+".prev"), leaves no temp file behind, and LoadCheckpoint
// reproduces the saved model bit for bit.
func TestSaveCheckpointAtomicRoundTrip(t *testing.T) {
	m := trainedCheckpointModel(t)
	path := filepath.Join(t.TempDir(), "model.ckpt")

	if err := SaveCheckpoint(path, m); err != nil {
		t.Fatalf("first save: %v", err)
	}
	if _, err := os.Stat(path + ".prev"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("first save created .prev: %v", err)
	}
	if err := SaveCheckpoint(path, m); err != nil {
		t.Fatalf("second save: %v", err)
	}
	if _, err := os.Stat(path + ".prev"); err != nil {
		t.Fatalf("second save kept no last-good copy: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}

	got, src, err := LoadCheckpoint(path, testEnc)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if src != path {
		t.Fatalf("loaded from %s, want primary %s", src, path)
	}
	sameEstimates(t, m, got)
}

// TestLoadCheckpointMissing: with neither file present the error matches
// fs.ErrNotExist — the "train fresh, nothing to be loud about" signal.
func TestLoadCheckpointMissing(t *testing.T) {
	_, _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "none.ckpt"), testEnc)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing checkpoint error = %v, want fs.ErrNotExist", err)
	}
}

// TestLoadCheckpointFallsBackToPrev simulates the crash windows around the
// rename dance: a corrupt or truncated primary (or a primary missing
// entirely, as between the two renames) must fall back to the last-good
// .prev file; a stray .tmp from a killed writer is ignored.
func TestLoadCheckpointFallsBackToPrev(t *testing.T) {
	m := trainedCheckpointModel(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	if err := SaveCheckpoint(path, m); err != nil {
		t.Fatal(err)
	}

	// Kill between rename(path -> .prev) and rename(tmp -> path): primary
	// gone, .prev good, tmp holds the unrenamed new checkpoint.
	if err := os.Rename(path, path+".prev"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp", []byte("COSTESTM torn mid-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, src, err := LoadCheckpoint(path, testEnc)
	if err != nil {
		t.Fatalf("load after simulated mid-rename kill: %v", err)
	}
	if src != path+".prev" {
		t.Fatalf("loaded from %s, want .prev fallback", src)
	}
	sameEstimates(t, m, got)

	// Corrupt primary (torn in-place write, disk fault): .prev still wins.
	if err := os.WriteFile(path, []byte("COSTESTM garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, src, err = LoadCheckpoint(path, testEnc)
	if err != nil {
		t.Fatalf("load with corrupt primary: %v", err)
	}
	if src != path+".prev" {
		t.Fatalf("loaded from %s, want .prev fallback", src)
	}
	sameEstimates(t, m, got)

	// Both corrupt: a descriptive error that is NOT fs.ErrNotExist, naming
	// every rejected file.
	if err := os.WriteFile(path+".prev", []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadCheckpoint(path, testEnc)
	if err == nil || errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("both-corrupt error = %v, want corruption report", err)
	}
}

// TestSaveCheckpointInjectedIOError: a fault-injected write failure leaves
// the existing checkpoint (and its .prev) byte-for-byte untouched — a failed
// save can never eat the last-good state.
func TestSaveCheckpointInjectedIOError(t *testing.T) {
	m := trainedCheckpointModel(t)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveCheckpoint(path, m); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, site := range []string{"checkpoint.write", "checkpoint.sync", "checkpoint.rename"} {
		fault.Enable(fault.New(1).Add(fault.Rule{Site: site, Kind: fault.Error, Count: 1}))
		err := SaveCheckpoint(path, m)
		fault.Disable()
		if err == nil {
			t.Fatalf("%s: injected error did not surface", site)
		}
		after, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("%s: checkpoint unreadable after failed save: %v", site, rerr)
		}
		if string(after) != string(before) {
			t.Fatalf("%s: failed save modified the checkpoint", site)
		}
		if _, err := os.Stat(path + ".tmp"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("%s: failed save left a temp file", site)
		}
	}
}

// TestLoadCheckpointInjectedReadError: an injected read failure on the
// primary falls back to .prev; failing both reads reports corruption. This
// is the I/O-fault version of the corrupt-file fallback.
func TestLoadCheckpointInjectedReadError(t *testing.T) {
	m := trainedCheckpointModel(t)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveCheckpoint(path, m); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, m); err != nil { // creates .prev
		t.Fatal(err)
	}

	fault.Enable(fault.New(1).Add(fault.Rule{Site: "checkpoint.read", Kind: fault.Error, Count: 1}))
	got, src, err := LoadCheckpoint(path, testEnc)
	fault.Disable()
	if err != nil {
		t.Fatalf("load with failing primary read: %v", err)
	}
	if src != path+".prev" {
		t.Fatalf("loaded from %s, want .prev fallback", src)
	}
	sameEstimates(t, m, got)

	fault.Enable(fault.New(1).Add(fault.Rule{Site: "checkpoint.read", Kind: fault.Error}))
	_, _, err = LoadCheckpoint(path, testEnc)
	fault.Disable()
	if err == nil || errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("both reads failing = %v, want corruption report", err)
	}
}
