package core

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// poolShardCount is the number of independent shards a MemoryPool splits its
// signature space across. Must be a power of two so the shard index is a
// cheap mask of the signature hash.
const poolShardCount = 32

// MemoryPool is the Representation Memory Pool of Section 3: a mapping from
// sub-plan signatures to their learned representations, letting the online
// estimator skip re-evaluating sub-plans the optimizer has asked about
// before. It is safe for concurrent use.
//
// The map is sharded by signature hash and the hit/miss statistics are plain
// atomics, so the read path takes only one shard's RLock — concurrent
// optimizer threads probing the pool never serialize on a single mutex.
type MemoryPool struct {
	hits   atomic.Int64
	misses atomic.Int64
	// maxPerShard bounds each shard's entry count (0 = unbounded), keeping a
	// long-lived serving process from growing without limit.
	maxPerShard int
	shards      [poolShardCount]poolShard
}

type poolShard struct {
	mu sync.RWMutex
	m  map[string]*poolEntry
	// ring holds the shard's resident entries in clock order (bounded pools
	// only); hand is the clock sweep position.
	ring []*poolEntry
	hand int
}

type poolEntry struct {
	sig  string
	g, r []float64
	// ref is the second-chance bit: set on every Get (an atomic, so the read
	// path stays under the shard RLock), cleared by the clock sweep.
	ref atomic.Bool
}

// NewMemoryPool returns an empty, unbounded pool.
func NewMemoryPool() *MemoryPool {
	return NewBoundedMemoryPool(0)
}

// NewBoundedMemoryPool returns an empty pool holding at most maxEntries
// sub-plan representations (0 means unbounded). The bound is approximate —
// it is enforced per shard — and eviction follows a per-shard
// clock/second-chance policy: every Get marks its entry referenced, and the
// clock sweep evicts the first entry it finds unreferenced, clearing marks
// as it passes. Hot sub-plan signatures (the optimizer re-probing common
// join prefixes) therefore survive a stream of one-off insertions, which
// arbitrary-victim eviction could not guarantee.
func NewBoundedMemoryPool(maxEntries int) *MemoryPool {
	p := &MemoryPool{}
	if maxEntries > 0 {
		p.maxPerShard = (maxEntries + poolShardCount - 1) / poolShardCount
	}
	for i := range p.shards {
		p.shards[i].m = make(map[string]*poolEntry)
	}
	return p
}

// poolHashSeed keys the shard hash; one process-wide seed keeps sharding
// deterministic within a run while defeating adversarial signature layouts.
var poolHashSeed = maphash.MakeSeed()

// shardFor hashes sig (hardware-accelerated maphash; signatures are long
// subtree descriptors, so a byte-at-a-time hash would dominate Get) to its
// shard. Allocation-free.
func (p *MemoryPool) shardFor(sig string) *poolShard {
	return &p.shards[maphash.String(poolHashSeed, sig)&(poolShardCount-1)]
}

// Get returns the stored representation for a sub-plan signature, marking
// the entry referenced for the second-chance eviction sweep.
func (p *MemoryPool) Get(sig string) (g, r []float64, ok bool) {
	s := p.shardFor(sig)
	s.mu.RLock()
	e, found := s.m[sig]
	if found {
		g, r = e.g, e.r
		e.ref.Store(true)
	}
	s.mu.RUnlock()
	if !found {
		p.misses.Add(1)
		return nil, nil, false
	}
	p.hits.Add(1)
	return g, r, true
}

// Put stores a representation (copied) under the signature. When a bounded
// shard is full, the clock hand sweeps the shard's ring: entries referenced
// since the last pass get a second chance (their bit is cleared), and the
// first unreferenced entry is evicted, its ring slot reused for the new
// entry. The sweep terminates within two passes — the first pass can clear
// every bit, the second must find a victim.
func (p *MemoryPool) Put(sig string, g, r []float64) {
	gc := make([]float64, len(g))
	rc := make([]float64, len(r))
	copy(gc, g)
	copy(rc, r)
	s := p.shardFor(sig)
	s.mu.Lock()
	if e, resident := s.m[sig]; resident {
		// Refresh in place; readers that already fetched the old slices keep
		// them (Put copies, entries never mutate a published slice).
		e.g, e.r = gc, rc
		s.mu.Unlock()
		return
	}
	e := &poolEntry{sig: sig, g: gc, r: rc}
	if p.maxPerShard > 0 {
		if len(s.ring) >= p.maxPerShard {
			for {
				v := s.ring[s.hand]
				if v.ref.CompareAndSwap(true, false) {
					s.hand = (s.hand + 1) % len(s.ring)
					continue
				}
				delete(s.m, v.sig)
				s.ring[s.hand] = e
				s.hand = (s.hand + 1) % len(s.ring)
				break
			}
		} else {
			s.ring = append(s.ring, e)
		}
	}
	s.m[sig] = e
	s.mu.Unlock()
}

// Len returns the number of cached sub-plans.
func (p *MemoryPool) Len() int {
	total := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.RLock()
		total += len(s.m)
		s.mu.RUnlock()
	}
	return total
}

// HitRate returns hits/(hits+misses) over the pool's lifetime.
func (p *MemoryPool) HitRate() float64 {
	hits := p.hits.Load()
	total := hits + p.misses.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Reset clears contents and counters. All shard locks are held for the
// clear, so it is a point-in-time barrier like the seed's single-mutex
// Reset: no Put that completed before Reset returns survives it. (Hit/miss
// counters are updated outside the locks, so a Get racing Reset may count
// against the fresh statistics; that skew is cosmetic.)
func (p *MemoryPool) Reset() {
	for i := range p.shards {
		p.shards[i].mu.Lock()
	}
	for i := range p.shards {
		p.shards[i].m = make(map[string]*poolEntry)
		p.shards[i].ring = p.shards[i].ring[:0]
		p.shards[i].hand = 0
	}
	p.hits.Store(0)
	p.misses.Store(0)
	for i := range p.shards {
		p.shards[i].mu.Unlock()
	}
}
