package core

import "sync"

// MemoryPool is the Representation Memory Pool of Section 3: a mapping from
// sub-plan signatures to their learned representations, letting the online
// estimator skip re-evaluating sub-plans the optimizer has asked about
// before. It is safe for concurrent use.
type MemoryPool struct {
	mu     sync.RWMutex
	m      map[string]poolEntry
	hits   int
	misses int
}

type poolEntry struct {
	g, r []float64
}

// NewMemoryPool returns an empty pool.
func NewMemoryPool() *MemoryPool {
	return &MemoryPool{m: make(map[string]poolEntry)}
}

// Get returns the stored representation for a sub-plan signature.
func (p *MemoryPool) Get(sig string) (g, r []float64, ok bool) {
	p.mu.RLock()
	e, found := p.m[sig]
	p.mu.RUnlock()
	p.mu.Lock()
	if found {
		p.hits++
	} else {
		p.misses++
	}
	p.mu.Unlock()
	if !found {
		return nil, nil, false
	}
	return e.g, e.r, true
}

// Put stores a representation (copied) under the signature.
func (p *MemoryPool) Put(sig string, g, r []float64) {
	gc := make([]float64, len(g))
	rc := make([]float64, len(r))
	copy(gc, g)
	copy(rc, r)
	p.mu.Lock()
	p.m[sig] = poolEntry{g: gc, r: rc}
	p.mu.Unlock()
}

// Len returns the number of cached sub-plans.
func (p *MemoryPool) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.m)
}

// HitRate returns hits/(hits+misses) over the pool's lifetime.
func (p *MemoryPool) HitRate() float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}

// Reset clears contents and counters.
func (p *MemoryPool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m = make(map[string]poolEntry)
	p.hits, p.misses = 0, 0
}
