package core

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// poolShardCount is the number of independent shards a MemoryPool splits its
// signature space across. Must be a power of two so the shard index is a
// cheap mask of the signature hash.
const poolShardCount = 32

// MemoryPool is the Representation Memory Pool of Section 3: a mapping from
// sub-plan signatures to their learned representations, letting the online
// estimator skip re-evaluating sub-plans the optimizer has asked about
// before. It is safe for concurrent use.
//
// The map is sharded by signature hash and the hit/miss statistics are plain
// atomics, so the read path takes only one shard's RLock — concurrent
// optimizer threads probing the pool never serialize on a single mutex.
//
// Pooled representations are functions of the model weights, so a pool
// serving a hot-swappable model is generation-tagged: every entry records
// the snapshot generation it was computed under (PutGen), lookups only
// accept entries of the caller's generation (GetGen), and publishing new
// weights advances the pool's generation (SetGeneration) — an O(1)
// invalidation instead of a stop-the-world flush. Entries from superseded
// generations are evicted lazily as lookups touch them. Standalone pools
// never leave generation 0, where Get/Put behave exactly as before.
type MemoryPool struct {
	hits   atomic.Int64
	misses atomic.Int64
	// stale counts Get/GetGen calls that found an entry whose generation did
	// not match the caller's (a subset of misses).
	stale atomic.Int64
	// gen is the pool's current generation: the snapshot version whose
	// representations the pool considers live. Entries below it are evicted
	// lazily on lookup.
	gen atomic.Uint64
	// maxPerShard bounds each shard's entry count (0 = unbounded), keeping a
	// long-lived serving process from growing without limit. Atomic so
	// SetBound can retune a live pool between generations.
	maxPerShard atomic.Int64
	// adviseMu guards the Advise window below (the counters themselves are
	// the atomics above; the window is the last values Advise sampled).
	adviseMu                        sync.Mutex
	lastHits, lastMisses, lastStale int64
	shards                          [poolShardCount]poolShard
}

type poolShard struct {
	mu sync.RWMutex
	m  map[string]*poolEntry
	// ring holds the shard's resident entries in clock order (bounded pools
	// only); hand is the clock sweep position.
	ring []*poolEntry
	hand int
}

type poolEntry struct {
	sig  string
	g, r []float64
	// gen is the snapshot generation the representation was computed under.
	gen uint64
	// dead marks an entry lazily evicted for generation staleness: it has
	// left the map but still occupies a ring slot, which the next clock
	// sweep reclaims first. Guarded by the shard write lock.
	dead bool
	// ref is the second-chance bit: set on every Get (an atomic, so the read
	// path stays under the shard RLock), cleared by the clock sweep.
	ref atomic.Bool
}

// NewMemoryPool returns an empty, unbounded pool.
func NewMemoryPool() *MemoryPool {
	return NewBoundedMemoryPool(0)
}

// NewBoundedMemoryPool returns an empty pool holding at most maxEntries
// sub-plan representations (0 means unbounded). The bound is approximate —
// it is enforced per shard — and eviction follows a per-shard
// clock/second-chance policy: every Get marks its entry referenced, and the
// clock sweep evicts the first entry it finds unreferenced, clearing marks
// as it passes. Hot sub-plan signatures (the optimizer re-probing common
// join prefixes) therefore survive a stream of one-off insertions, which
// arbitrary-victim eviction could not guarantee. Entries already evicted for
// generation staleness are reclaimed by the sweep before anything live.
func NewBoundedMemoryPool(maxEntries int) *MemoryPool {
	p := &MemoryPool{}
	if maxEntries > 0 {
		p.maxPerShard.Store(int64((maxEntries + poolShardCount - 1) / poolShardCount))
	}
	for i := range p.shards {
		p.shards[i].m = make(map[string]*poolEntry)
	}
	return p
}

// poolHashSeed keys the shard hash; one process-wide seed keeps sharding
// deterministic within a run while defeating adversarial signature layouts.
var poolHashSeed = maphash.MakeSeed()

// shardFor hashes sig (hardware-accelerated maphash; signatures are long
// subtree descriptors, so a byte-at-a-time hash would dominate Get) to its
// shard. Allocation-free.
func (p *MemoryPool) shardFor(sig string) *poolShard {
	return &p.shards[maphash.String(poolHashSeed, sig)&(poolShardCount-1)]
}

// Generation returns the pool's current generation.
func (p *MemoryPool) Generation() uint64 { return p.gen.Load() }

// SetGeneration advances the pool to generation gen, logically invalidating
// every entry recorded under an earlier generation in O(1): lookups stop
// accepting them immediately and they are physically evicted as later
// lookups touch them. Generations are monotonic — a lower or equal gen is a
// no-op — so concurrent publishers cannot move the pool backwards.
func (p *MemoryPool) SetGeneration(gen uint64) {
	for {
		cur := p.gen.Load()
		if gen <= cur || p.gen.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// Get returns the stored representation for a sub-plan signature at the
// pool's current generation, marking the entry referenced for the
// second-chance eviction sweep.
//
// costlint:noalloc
func (p *MemoryPool) Get(sig string) (g, r []float64, ok bool) {
	return p.GetGen(sig, p.gen.Load())
}

// GetGen is Get pinned to the caller's snapshot generation: it returns a
// representation only if the entry was recorded under exactly gen, so a
// request serving snapshot N can never consume weights-dependent state from
// snapshot N±1, even while a publish is in flight. An entry found under a
// generation older than the pool's current one is lazily evicted.
//
// costlint:noalloc
func (p *MemoryPool) GetGen(sig string, gen uint64) (g, r []float64, ok bool) {
	s := p.shardFor(sig)
	s.mu.RLock()
	e, found := s.m[sig]
	var egen uint64
	if found {
		g, r = e.g, e.r
		egen = e.gen
		e.ref.Store(true)
	}
	s.mu.RUnlock()
	if !found {
		p.misses.Add(1)
		return nil, nil, false
	}
	if egen != gen {
		p.stale.Add(1)
		p.misses.Add(1)
		if egen < p.gen.Load() {
			// The entry belongs to a superseded generation: evict it now
			// rather than letting dead weight crowd the shard. Re-check under
			// the write lock — a concurrent PutGen may have refreshed it.
			s.mu.Lock()
			if cur, resident := s.m[sig]; resident && cur == e && e.gen < p.gen.Load() {
				delete(s.m, sig)
				e.dead = true
				e.ref.Store(false)
			}
			s.mu.Unlock()
		}
		return nil, nil, false
	}
	p.hits.Add(1)
	return g, r, true
}

// Put stores a representation (copied) under the signature at the pool's
// current generation.
func (p *MemoryPool) Put(sig string, g, r []float64) {
	p.PutGen(sig, g, r, p.gen.Load())
}

// PutGen is Put tagged with the snapshot generation the representation was
// computed under — the caller's generation, not the pool's, so a request
// that resolved its snapshot before a publish records its entries honestly
// and they are rejected (not served) by readers of the new generation.
//
// When a bounded shard is full, the clock hand sweeps the shard's ring:
// slots holding generation-evicted (dead) entries are reclaimed first,
// entries referenced since the last pass get a second chance (their bit is
// cleared), and otherwise the first unreferenced entry is evicted, its ring
// slot reused for the new entry. The sweep terminates within two passes —
// the first pass can clear every bit, the second must find a victim.
func (p *MemoryPool) PutGen(sig string, g, r []float64, gen uint64) {
	gc := make([]float64, len(g))
	rc := make([]float64, len(r))
	copy(gc, g)
	copy(rc, r)
	s := p.shardFor(sig)
	s.mu.Lock()
	if e, resident := s.m[sig]; resident {
		// Refresh in place; readers that already fetched the old slices keep
		// them (Put copies, entries never mutate a published slice).
		e.g, e.r = gc, rc
		e.gen = gen
		s.mu.Unlock()
		return
	}
	e := &poolEntry{sig: sig, g: gc, r: rc, gen: gen}
	if max := int(p.maxPerShard.Load()); max > 0 {
		// A shrunk bound (SetBound) may leave the ring oversized; evict down
		// before placing the new entry so residency converges on the bound.
		for len(s.ring) > max {
			s.evictOneLocked()
		}
		if len(s.ring) == max {
			for {
				v := s.ring[s.hand]
				if !v.dead {
					if v.ref.CompareAndSwap(true, false) {
						s.hand = (s.hand + 1) % len(s.ring)
						continue
					}
					delete(s.m, v.sig)
				}
				s.ring[s.hand] = e
				s.hand = (s.hand + 1) % len(s.ring)
				break
			}
		} else {
			s.ring = append(s.ring, e)
		}
	}
	s.m[sig] = e
	s.mu.Unlock()
}

// evictOneLocked removes one ring slot by the clock policy — dead slots are
// reclaimed first, referenced entries get their second chance — compacting
// the ring. Called with the shard write lock held, only on the shrink path
// (the steady-state full-shard path reuses slots in place instead).
func (s *poolShard) evictOneLocked() {
	for {
		v := s.ring[s.hand]
		if !v.dead {
			if v.ref.CompareAndSwap(true, false) {
				s.hand = (s.hand + 1) % len(s.ring)
				continue
			}
			delete(s.m, v.sig)
		}
		s.ring = append(s.ring[:s.hand], s.ring[s.hand+1:]...)
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		return
	}
}

// Len returns the number of cached sub-plans.
func (p *MemoryPool) Len() int {
	total := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.RLock()
		total += len(s.m)
		s.mu.RUnlock()
	}
	return total
}

// HitRate returns hits/(hits+misses) over the pool's lifetime.
func (p *MemoryPool) HitRate() float64 {
	hits := p.hits.Load()
	total := hits + p.misses.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// StaleRate returns the fraction of lookups that found an entry of the
// wrong generation — the transient cost of a hot swap, decaying to zero as
// the new generation repopulates the pool.
func (p *MemoryPool) StaleRate() float64 {
	total := p.hits.Load() + p.misses.Load()
	if total == 0 {
		return 0
	}
	return float64(p.stale.Load()) / float64(total)
}

// Bound returns the pool's configured residency bound (0 = unbounded),
// rounded up to a whole number of per-shard slots.
func (p *MemoryPool) Bound() int {
	per := p.maxPerShard.Load()
	if per == 0 {
		return 0
	}
	return int(per) * poolShardCount
}

// SetBound re-targets the pool's residency bound across generations
// (0 disables bounding). Like the constructor's bound it is approximate —
// enforced per shard — and it applies to a live pool: growth takes effect
// immediately, shrinking evicts down to the new bound right away using the
// clock policy (dead generation-evicted slots reclaimed first, referenced
// entries keeping their second chance). A pool constructed unbounded builds
// its clock ring here on first bounding; that ring's initial order follows
// map iteration, so the first sweep order over pre-existing entries is
// arbitrary — subsequent behavior is the standard clock policy.
func (p *MemoryPool) SetBound(maxEntries int) {
	var per int64
	if maxEntries > 0 {
		per = int64((maxEntries + poolShardCount - 1) / poolShardCount)
	}
	p.maxPerShard.Store(per)
	if per == 0 {
		// Unbounded: drop the rings; a later SetBound rebuilds them.
		for i := range p.shards {
			s := &p.shards[i]
			s.mu.Lock()
			s.ring = s.ring[:0]
			s.hand = 0
			s.mu.Unlock()
		}
		return
	}
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		if len(s.ring) < len(s.m) {
			// Previously unbounded (or rings dropped): rebuild the ring over
			// the resident entries.
			s.ring = s.ring[:0]
			s.hand = 0
			for _, e := range s.m {
				s.ring = append(s.ring, e)
			}
		}
		for len(s.ring) > int(per) {
			s.evictOneLocked()
		}
		s.mu.Unlock()
	}
}

// PoolAdvice is a sizing recommendation computed from the pool's observed
// behavior since the previous Advise call.
type PoolAdvice struct {
	// Bound is the configured residency bound at advice time (0 unbounded);
	// Entries the resident count.
	Bound   int
	Entries int
	// HitRate and StaleRate cover the window since the last Advise call
	// (unlike the lifetime MemoryPool.HitRate/StaleRate).
	HitRate   float64
	StaleRate float64
	// Recommended is the suggested bound; pass it to SetBound to apply.
	// Equal to Bound when no change is warranted.
	Recommended int
	// Reason explains the recommendation (for operator logs).
	Reason string
}

// Advise returns a bound recommendation from the pool's hit/stale rates and
// occupancy over the window since the last Advise call — the adaptive-sizing
// hook for hot-swap serving, where each publish briefly doubles the live
// working set (old-generation entries decay lazily while the new generation
// repopulates). Call it at a coarse cadence (per publish, or per N seconds)
// and apply with SetBound; the heuristics:
//
//   - High stale rate → a generation turnover is in flight and stale entries
//     double-book capacity: recommend transient headroom proportional to the
//     stale share so the new generation doesn't evict its own entries.
//   - Low hit rate with the pool near its bound → the working set does not
//     fit: recommend doubling.
//   - High hit rate with the pool at most half full → the bound is oversized
//     for the workload: recommend shrinking toward the resident set (25%
//     headroom).
//   - Unbounded pools are recommended a bound that holds the resident set
//     with 25% headroom, so long-lived processes can cap growth.
func (p *MemoryPool) Advise() PoolAdvice {
	p.adviseMu.Lock()
	hits, misses, stale := p.hits.Load(), p.misses.Load(), p.stale.Load()
	dh, dm, ds := hits-p.lastHits, misses-p.lastMisses, stale-p.lastStale
	p.lastHits, p.lastMisses, p.lastStale = hits, misses, stale
	p.adviseMu.Unlock()

	a := PoolAdvice{Bound: p.Bound(), Entries: p.Len()}
	a.Recommended = a.Bound
	total := dh + dm
	if total > 0 {
		a.HitRate = float64(dh) / float64(total)
		a.StaleRate = float64(ds) / float64(total)
	}
	withHeadroom := a.Entries + a.Entries/4
	switch {
	case total == 0:
		a.Reason = "no lookups in window; keep bound"
	case a.Bound == 0:
		a.Recommended = withHeadroom
		a.Reason = "unbounded; bound to resident set + 25% headroom"
	case a.StaleRate > 0.1:
		a.Recommended = a.Bound + int(a.StaleRate*float64(a.Bound))
		a.Reason = "generation turnover in flight; transient headroom for double-booked entries"
	case a.HitRate < 0.5 && a.Entries >= a.Bound*9/10:
		a.Recommended = a.Bound * 2
		a.Reason = "working set exceeds bound (low hit rate at full residency); grow"
	case a.HitRate > 0.9 && a.Entries <= a.Bound/2:
		a.Recommended = withHeadroom
		a.Reason = "bound oversized for workload (high hit rate, low occupancy); shrink"
	default:
		a.Reason = "hit/occupancy within band; keep bound"
	}
	return a
}

// Reset clears contents and counters. All shard locks are held for the
// clear, so it is a point-in-time barrier like the seed's single-mutex
// Reset: no Put that completed before Reset returns survives it. (Hit/miss
// counters are updated outside the locks, so a Get racing Reset may count
// against the fresh statistics; that skew is cosmetic.) The generation is
// preserved — it tracks the served weights, not the pool contents.
func (p *MemoryPool) Reset() {
	for i := range p.shards {
		p.shards[i].mu.Lock()
	}
	for i := range p.shards {
		p.shards[i].m = make(map[string]*poolEntry)
		p.shards[i].ring = p.shards[i].ring[:0]
		p.shards[i].hand = 0
	}
	p.hits.Store(0)
	p.misses.Store(0)
	p.stale.Store(0)
	p.adviseMu.Lock()
	p.lastHits, p.lastMisses, p.lastStale = 0, 0, 0
	p.adviseMu.Unlock()
	for i := range p.shards {
		p.shards[i].mu.Unlock()
	}
}
