package dataset

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// testDB caches a small instance shared across tests in this package.
var testDB = GenerateIMDB(Config{Seed: 1, Scale: 0.03})

func TestSchemaWellFormed(t *testing.T) {
	s := IMDBSchema()
	if got := len(s.Tables); got != 21 {
		t.Fatalf("tables = %d, want 21", got)
	}
	if s.NumColumns() == 0 || s.NumIndexes() == 0 {
		t.Fatal("empty column/index id space")
	}
	// Every join edge must be resolvable both ways.
	for _, j := range s.Joins {
		if s.JoinBetween(j.FKTable, j.PKTable) == nil {
			t.Errorf("JoinBetween(%s, %s) = nil", j.FKTable, j.PKTable)
		}
		if s.JoinBetween(j.PKTable, j.FKTable) == nil {
			t.Errorf("JoinBetween(%s, %s) = nil (reverse)", j.PKTable, j.FKTable)
		}
	}
	// Primary keys have indexes.
	for _, tab := range s.Tables {
		if s.IndexOn(tab.Name, "id") == nil {
			t.Errorf("no PK index on %s", tab.Name)
		}
	}
}

func TestColumnIDsDense(t *testing.T) {
	s := IMDBSchema()
	seen := make(map[int]bool)
	for _, tab := range s.Tables {
		for _, c := range tab.Columns {
			id := s.ColumnID(tab.Name, c.Name)
			if id < 0 || id >= s.NumColumns() {
				t.Fatalf("column id out of range for %s.%s: %d", tab.Name, c.Name, id)
			}
			if seen[id] {
				t.Fatalf("duplicate column id %d", id)
			}
			seen[id] = true
			if got := s.ColumnByID(id); got.Table != tab.Name || got.Name != c.Name {
				t.Fatalf("ColumnByID(%d) = %v, want %s.%s", id, got, tab.Name, c.Name)
			}
		}
	}
	if len(seen) != s.NumColumns() {
		t.Fatalf("column ids not dense: %d vs %d", len(seen), s.NumColumns())
	}
}

func TestConnectedSubset(t *testing.T) {
	s := IMDBSchema()
	cases := []struct {
		tables []string
		want   bool
	}{
		{[]string{"title"}, true},
		{[]string{"title", "movie_companies"}, true},
		{[]string{"title", "movie_companies", "company_type"}, true},
		{[]string{"company_type", "keyword"}, false},
		{[]string{"title", "keyword"}, false}, // needs movie_keyword bridge
		{[]string{"title", "movie_keyword", "keyword"}, true},
		{nil, false},
	}
	for _, c := range cases {
		if got := s.ConnectedSubset(c.tables); got != c.want {
			t.Errorf("ConnectedSubset(%v) = %v, want %v", c.tables, got, c.want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateIMDB(Config{Seed: 7, Scale: 0.01})
	b := GenerateIMDB(Config{Seed: 7, Scale: 0.01})
	for name, ta := range a.Tables {
		tb := b.Tables[name]
		if ta.NumRows != tb.NumRows {
			t.Fatalf("%s row count differs: %d vs %d", name, ta.NumRows, tb.NumRows)
		}
	}
	ta, tb := a.Tables["movie_companies"], b.Tables["movie_companies"]
	na, nb := ta.StrColumn("note"), tb.StrColumn("note")
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("nondeterministic note at row %d: %q vs %q", i, na[i], nb[i])
		}
	}
	c := GenerateIMDB(Config{Seed: 8, Scale: 0.01})
	diff := false
	nc := c.Tables["movie_companies"].StrColumn("note")
	for i := 0; i < len(na) && i < len(nc); i++ {
		if na[i] != nc[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical data")
	}
}

func TestForeignKeysValid(t *testing.T) {
	db := testDB
	for _, j := range db.Schema.Joins {
		fk := db.Table(j.FKTable)
		pk := db.Table(j.PKTable)
		col := fk.IntColumn(j.FKColumn)
		if col == nil {
			t.Fatalf("FK column %s.%s missing", j.FKTable, j.FKColumn)
		}
		for i, v := range col {
			if pk.PKRow(v) < 0 {
				t.Fatalf("dangling FK %s.%s=%d at row %d (pk table has %d rows)",
					j.FKTable, j.FKColumn, v, i, pk.NumRows)
			}
		}
	}
}

func TestPrimaryKeysContiguous(t *testing.T) {
	for name, tab := range testDB.Tables {
		ids := tab.IntColumn("id")
		if ids == nil {
			t.Fatalf("%s has no id column", name)
		}
		for i, v := range ids {
			if v != int64(i+1) {
				t.Fatalf("%s id at row %d is %d, want %d", name, i, v, i+1)
			}
		}
	}
}

func TestPlantedNotePatterns(t *testing.T) {
	mc := testDB.Table("movie_companies")
	notes := mc.StrColumn("note")
	var counts = map[string]int{}
	for _, n := range notes {
		switch {
		case n == "(co-production)":
			counts["co"]++
		case n == "(presents)":
			counts["presents"]++
		case strings.HasPrefix(n, "(as "):
			counts["as"]++
		case strings.Contains(n, "(TV)"):
			counts["tv"]++
		}
	}
	for _, k := range []string{"co", "presents", "as", "tv"} {
		if counts[k] == 0 {
			t.Errorf("pattern family %q absent from generated notes", k)
		}
	}
}

// The planted correlation: (co-production) must be much more frequent for
// movies from 2000 on than before — the kind of cross-table correlation a
// per-column histogram cannot capture.
func TestYearNoteCorrelation(t *testing.T) {
	mc := testDB.Table("movie_companies")
	title := testDB.Table("title")
	years := title.IntColumn("production_year")
	notes := mc.StrColumn("note")
	movieIDs := mc.IntColumn("movie_id")
	types := mc.IntColumn("company_type_id")
	var newCo, newTotal, oldCo, oldTotal int
	for i, n := range notes {
		if types[i] != 1 {
			continue
		}
		y := years[title.PKRow(movieIDs[i])]
		if y >= 2000 {
			newTotal++
			if n == "(co-production)" {
				newCo++
			}
		} else {
			oldTotal++
			if n == "(co-production)" {
				oldCo++
			}
		}
	}
	if newTotal == 0 || oldTotal == 0 {
		t.Skip("scale too small for correlation check")
	}
	newRate := float64(newCo) / float64(newTotal)
	oldRate := float64(oldCo) / float64(oldTotal)
	if newRate < 3*oldRate {
		t.Errorf("co-production correlation too weak: new=%.3f old=%.3f", newRate, oldRate)
	}
}

func TestTop250RankPresent(t *testing.T) {
	mi := testDB.Table("movie_info_idx")
	types := mi.IntColumn("info_type_id")
	n := 0
	for _, v := range types {
		if v == 101 {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no top 250 rank rows generated")
	}
}

func TestJoinFanoutSkewed(t *testing.T) {
	ci := testDB.Table("cast_info")
	movieIDs := ci.IntColumn("movie_id")
	counts := map[int64]int{}
	for _, m := range movieIDs {
		counts[m]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(len(movieIDs)) / float64(len(counts))
	if float64(maxC) < 5*mean {
		t.Errorf("fan-out not skewed: max=%d mean=%.1f", maxC, mean)
	}
}

func TestZipfPickBounds(t *testing.T) {
	g := &gen{cfg: Config{Seed: 1, Scale: 1}, rng: rand.New(rand.NewSource(5))}
	f := func(n uint8) bool {
		m := int(n%50) + 1
		v := g.zipfPick(m, 1.3)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRowPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab := NewTable(IMDBSchema().Table("kind_type"))
	tab.AppendRow(int64(1)) // missing kind value
}

func TestColumnAccessors(t *testing.T) {
	tab := testDB.Table("title")
	if tab.IntColumn("production_year") == nil {
		t.Fatal("production_year should be an int column")
	}
	if tab.IntColumn("title") != nil {
		t.Fatal("title is a string column, IntColumn must return nil")
	}
	if tab.StrColumn("title") == nil {
		t.Fatal("title string column missing")
	}
	if tab.ColIndex("nope") != -1 {
		t.Fatal("missing column should have index -1")
	}
	if tab.PKRow(0) != -1 || tab.PKRow(int64(tab.NumRows)+1) != -1 {
		t.Fatal("out-of-range PK must map to -1")
	}
	if tab.PKRow(1) != 0 {
		t.Fatal("PK 1 must map to row 0")
	}
}
