package dataset

import "costest/internal/schema"

// IMDBSchema builds the IMDB-style schema used throughout the paper's
// experiments: 21 tables joined on primary/foreign keys, with indexes on
// every primary key (Section 6.1: "We build indexes on primary keys").
func IMDBSchema() *schema.Schema {
	ic := func(name string, pred bool) schema.Column {
		return schema.Column{Name: name, Type: schema.IntCol, Predicable: pred}
	}
	sc := func(name string, pred bool) schema.Column {
		return schema.Column{Name: name, Type: schema.StringCol, Predicable: pred}
	}
	tables := []*schema.Table{
		{Name: "title", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), sc("title", true), ic("kind_id", true),
			ic("production_year", true), ic("season_nr", true), ic("episode_nr", true),
		}},
		{Name: "kind_type", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), sc("kind", true),
		}},
		{Name: "movie_companies", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), ic("movie_id", false), ic("company_id", false),
			ic("company_type_id", true), sc("note", true),
		}},
		{Name: "company_name", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), sc("name", true), sc("country_code", true),
		}},
		{Name: "company_type", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), sc("kind", true),
		}},
		{Name: "movie_info", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), ic("movie_id", false), ic("info_type_id", true), sc("info", true),
		}},
		{Name: "movie_info_idx", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), ic("movie_id", false), ic("info_type_id", true), sc("info", true),
		}},
		{Name: "info_type", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), sc("info", true),
		}},
		{Name: "movie_keyword", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), ic("movie_id", false), ic("keyword_id", true),
		}},
		{Name: "keyword", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), sc("keyword", true),
		}},
		{Name: "cast_info", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), ic("person_id", false), ic("movie_id", false),
			ic("role_id", true), ic("nr_order", true), sc("note", true),
		}},
		{Name: "role_type", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), sc("role", true),
		}},
		{Name: "name", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), sc("name", true), sc("gender", true),
		}},
		{Name: "char_name", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), sc("name", true),
		}},
		{Name: "aka_name", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), ic("person_id", false), sc("name", true),
		}},
		{Name: "aka_title", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), ic("movie_id", false), sc("title", true), ic("production_year", true),
		}},
		{Name: "person_info", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), ic("person_id", false), ic("info_type_id", true), sc("info", true),
		}},
		{Name: "movie_link", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), ic("movie_id", false), ic("linked_movie_id", false), ic("link_type_id", true),
		}},
		{Name: "link_type", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), sc("link", true),
		}},
		{Name: "complete_cast", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), ic("movie_id", false), ic("subject_id", true), ic("status_id", true),
		}},
		{Name: "comp_cast_type", PrimaryKey: "id", Columns: []schema.Column{
			ic("id", false), sc("kind", true),
		}},
	}

	var indexes []*schema.Index
	for _, t := range tables {
		indexes = append(indexes, &schema.Index{
			Name: t.Name + "_pkey", Table: t.Name, Column: "id",
		})
	}
	// FK indexes on the big fact tables' movie_id columns (PostgreSQL's IMDB
	// setup for JOB typically adds these; they enable index nested loops).
	for _, t := range []string{"movie_companies", "movie_info", "movie_info_idx", "movie_keyword", "cast_info", "aka_title", "complete_cast", "movie_link"} {
		indexes = append(indexes, &schema.Index{
			Name: t + "_movie_id_idx", Table: t, Column: "movie_id",
		})
	}
	indexes = append(indexes,
		&schema.Index{Name: "cast_info_person_id_idx", Table: "cast_info", Column: "person_id"},
		&schema.Index{Name: "person_info_person_id_idx", Table: "person_info", Column: "person_id"},
		&schema.Index{Name: "aka_name_person_id_idx", Table: "aka_name", Column: "person_id"},
	)

	joins := []schema.JoinEdge{
		{FKTable: "title", FKColumn: "kind_id", PKTable: "kind_type", PKColumn: "id"},
		{FKTable: "movie_companies", FKColumn: "movie_id", PKTable: "title", PKColumn: "id"},
		{FKTable: "movie_companies", FKColumn: "company_id", PKTable: "company_name", PKColumn: "id"},
		{FKTable: "movie_companies", FKColumn: "company_type_id", PKTable: "company_type", PKColumn: "id"},
		{FKTable: "movie_info", FKColumn: "movie_id", PKTable: "title", PKColumn: "id"},
		{FKTable: "movie_info", FKColumn: "info_type_id", PKTable: "info_type", PKColumn: "id"},
		{FKTable: "movie_info_idx", FKColumn: "movie_id", PKTable: "title", PKColumn: "id"},
		{FKTable: "movie_info_idx", FKColumn: "info_type_id", PKTable: "info_type", PKColumn: "id"},
		{FKTable: "movie_keyword", FKColumn: "movie_id", PKTable: "title", PKColumn: "id"},
		{FKTable: "movie_keyword", FKColumn: "keyword_id", PKTable: "keyword", PKColumn: "id"},
		{FKTable: "cast_info", FKColumn: "movie_id", PKTable: "title", PKColumn: "id"},
		{FKTable: "cast_info", FKColumn: "person_id", PKTable: "name", PKColumn: "id"},
		{FKTable: "cast_info", FKColumn: "role_id", PKTable: "role_type", PKColumn: "id"},
		{FKTable: "aka_name", FKColumn: "person_id", PKTable: "name", PKColumn: "id"},
		{FKTable: "aka_title", FKColumn: "movie_id", PKTable: "title", PKColumn: "id"},
		{FKTable: "person_info", FKColumn: "person_id", PKTable: "name", PKColumn: "id"},
		{FKTable: "person_info", FKColumn: "info_type_id", PKTable: "info_type", PKColumn: "id"},
		{FKTable: "movie_link", FKColumn: "movie_id", PKTable: "title", PKColumn: "id"},
		{FKTable: "movie_link", FKColumn: "link_type_id", PKTable: "link_type", PKColumn: "id"},
		{FKTable: "complete_cast", FKColumn: "movie_id", PKTable: "title", PKColumn: "id"},
		{FKTable: "complete_cast", FKColumn: "subject_id", PKTable: "comp_cast_type", PKColumn: "id"},
	}

	s, err := schema.New(tables, indexes, joins)
	if err != nil {
		panic("dataset: IMDB schema invalid: " + err.Error())
	}
	return s
}
