package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Config controls synthetic IMDB generation.
type Config struct {
	Seed  int64
	Scale float64 // 1.0 ≈ 330k total rows; tests use much smaller scales
}

// DefaultConfig is the full-size generation configuration.
func DefaultConfig() Config { return Config{Seed: 1, Scale: 1.0} }

// Fixed dimension-table vocabularies. These include the exact literals the
// paper's running examples use so the string-embedding pipeline sees the same
// predicate families ("production companies", "top 250 rank", ...).
var (
	kindTypes = []string{"movie", "tv series", "tv movie", "video movie", "tv mini series", "video game", "episode"}

	companyTypes = []string{"production companies", "distributors", "special effects companies", "miscellaneous companies"}

	roleTypes = []string{"actor", "actress", "producer", "writer", "cinematographer", "composer",
		"costume designer", "director", "editor", "miscellaneous crew", "production designer", "guest"}

	linkTypes = []string{"follows", "followed by", "remake of", "remade as", "references", "referenced in",
		"spoofs", "spoofed in", "features", "featured in", "spin off from", "spin off",
		"version of", "similar to", "edited into", "edited from", "alternate language version of", "unknown link"}

	compCastTypes = []string{"cast", "crew", "complete", "complete+verified"}

	genres = []string{"Drama", "Comedy", "Documentary", "Action", "Thriller", "Horror",
		"Romance", "Animation", "Crime", "Adventure", "Family", "Sci-Fi"}

	languages = []string{"English", "French", "German", "Spanish", "Japanese", "Italian", "Mandarin", "Hindi"}

	countries = []string{"USA", "UK", "France", "Germany", "Japan", "Canada", "Italy", "Spain", "India", "Australia"}

	countryCodes = []string{"[us]", "[gb]", "[fr]", "[de]", "[jp]", "[ca]", "[it]", "[es]", "[in]", "[au]"}

	companySuffixes = []string{"Pictures", "Films", "Entertainment", "Productions", "Studios", "Media", "Bros.", "Television"}

	keywordWords = []string{"murder", "love", "death", "revenge", "friendship", "police", "family",
		"war", "money", "school", "dream", "blood", "night", "city", "secret", "island",
		"doctor", "king", "robot", "alien", "ghost", "dance", "song", "fire", "winter"}

	syllables = []string{"ka", "ro", "mi", "ta", "lo", "san", "ber", "din", "sch", "vel", "mar",
		"ton", "el", "ri", "na", "gus", "hol", "win", "ter", "bro", "ak", "os", "in", "kas", "tra", "la"}
)

// Named info_type entries; the rest of the 113 rows are filler types.
var infoTypeNames = map[int]string{
	1:   "runtimes",
	2:   "color info",
	3:   "genres",
	4:   "languages",
	8:   "countries",
	16:  "release dates",
	98:  "plot",
	99:  "votes",
	100: "rating",
	101: "top 250 rank",
	102: "bottom 10 rank",
	105: "budget",
	107: "gross",
}

// gen carries generation state.
type gen struct {
	rng *rand.Rand
	cfg Config
	db  *DB

	nTitle, nName, nCompany, nKeyword, nChar int
	titleYear                                []int64 // cached for cross-table correlation
	titleKind                                []int64
	titleGenre                               []int     // genre index per movie (hidden correlate)
	titlePop                                 []float64 // popularity weight (Zipf-ish by id)
	companyCountry                           []int     // country index per company
	companyName                              []string
	nameGender                               []string
}

// GenerateIMDB builds a complete synthetic IMDB instance. Generation is
// deterministic in cfg.Seed.
func GenerateIMDB(cfg Config) *DB {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	s := IMDBSchema()
	db := &DB{Schema: s, Tables: make(map[string]*Table, len(s.Tables))}
	for _, t := range s.Tables {
		db.Tables[t.Name] = NewTable(t)
	}
	g := &gen{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg, db: db}

	g.genDimensions()
	g.genCompanies()
	g.genPeople()
	g.genKeywords()
	g.genTitles()
	g.genAkaTitles()
	g.genMovieCompanies()
	g.genMovieInfo()
	g.genMovieInfoIdx()
	g.genMovieKeyword()
	g.genCastInfo()
	g.genAkaNames()
	g.genPersonInfo()
	g.genMovieLink()
	g.genCompleteCast()
	return db
}

func (g *gen) scaled(n int, floor int) int {
	v := int(math.Round(float64(n) * g.cfg.Scale))
	if v < floor {
		v = floor
	}
	return v
}

// zipfPick returns a random index in [0, n) with Zipf-like skew (low indices
// are much more frequent).
func (g *gen) zipfPick(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF sampling of a bounded Pareto keeps this independent of
	// rand.Zipf internals and lets s vary per call site.
	u := g.rng.Float64()
	x := math.Pow(float64(n), 1-s)
	v := math.Pow(u*(1-x)+x, 1/(1-s))
	idx := int(float64(n) / v)
	if idx >= n {
		idx = n - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

func (g *gen) word(capital bool) string {
	n := 1 + g.rng.Intn(2)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syllables[g.rng.Intn(len(syllables))])
	}
	w := b.String()
	if capital {
		w = strings.ToUpper(w[:1]) + w[1:]
	}
	return w
}

func (g *gen) phrase(words int) string {
	parts := make([]string, words)
	for i := range parts {
		parts[i] = g.word(true)
	}
	return strings.Join(parts, " ")
}

func (g *gen) genDimensions() {
	fill := func(name string, vals []string) {
		t := g.db.Tables[name]
		for i, v := range vals {
			t.AppendRow(int64(i+1), v)
		}
	}
	fill("kind_type", kindTypes)
	fill("company_type", companyTypes)
	fill("role_type", roleTypes)
	fill("link_type", linkTypes)
	fill("comp_cast_type", compCastTypes)

	it := g.db.Tables["info_type"]
	for i := 1; i <= 113; i++ {
		name, ok := infoTypeNames[i]
		if !ok {
			name = fmt.Sprintf("info type %d", i)
		}
		it.AppendRow(int64(i), name)
	}
}

func (g *gen) genCompanies() {
	g.nCompany = g.scaled(3000, 60)
	t := g.db.Tables["company_name"]
	g.companyCountry = make([]int, g.nCompany)
	g.companyName = make([]string, g.nCompany)
	for i := 0; i < g.nCompany; i++ {
		ci := g.zipfPick(len(countryCodes), 1.4)
		g.companyCountry[i] = ci
		name := g.phrase(1+g.rng.Intn(2)) + " " + companySuffixes[g.rng.Intn(len(companySuffixes))]
		g.companyName[i] = name
		t.AppendRow(int64(i+1), name, countryCodes[ci])
	}
}

func (g *gen) genPeople() {
	g.nName = g.scaled(12000, 200)
	t := g.db.Tables["name"]
	g.nameGender = make([]string, g.nName)
	for i := 0; i < g.nName; i++ {
		gender := "m"
		if g.rng.Float64() < 0.4 {
			gender = "f"
		}
		g.nameGender[i] = gender
		name := g.word(true) + ", " + g.word(true)
		t.AppendRow(int64(i+1), name, gender)
	}
	g.nChar = g.scaled(6000, 100)
	cn := g.db.Tables["char_name"]
	for i := 0; i < g.nChar; i++ {
		cn.AppendRow(int64(i+1), g.phrase(1+g.rng.Intn(2)))
	}
}

func (g *gen) genKeywords() {
	g.nKeyword = g.scaled(2000, 50)
	t := g.db.Tables["keyword"]
	for i := 0; i < g.nKeyword; i++ {
		base := keywordWords[i%len(keywordWords)]
		kw := base
		if i >= len(keywordWords) {
			kw = base + "-" + g.word(false)
		}
		t.AppendRow(int64(i+1), kw)
	}
}

// kindWeights skew title kinds: movies and episodes dominate.
var kindWeights = []float64{0.55, 0.08, 0.07, 0.08, 0.02, 0.04, 0.16}

func (g *gen) pickWeighted(weights []float64) int {
	u := g.rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

func (g *gen) genTitles() {
	g.nTitle = g.scaled(20000, 400)
	t := g.db.Tables["title"]
	g.titleYear = make([]int64, g.nTitle)
	g.titleKind = make([]int64, g.nTitle)
	g.titleGenre = make([]int, g.nTitle)
	g.titlePop = make([]float64, g.nTitle)
	for i := 0; i < g.nTitle; i++ {
		kind := g.pickWeighted(kindWeights) + 1
		// Year skewed to recent decades; episodes even more recent.
		age := int(g.rng.ExpFloat64() * 18)
		if kind == 7 { // episode
			age = int(g.rng.ExpFloat64() * 8)
		}
		year := 2017 - age
		if year < 1880 {
			year = 1880 + g.rng.Intn(30)
		}
		var season, episode int64
		if kind == 7 {
			season = int64(1 + g.zipfPick(25, 1.5))
			episode = int64(1 + g.zipfPick(50, 1.2))
		} else if kind == 2 && g.rng.Float64() < 0.3 {
			season = int64(1 + g.zipfPick(15, 1.5))
		}
		// Genre correlates with kind: video games skew Action/Sci-Fi,
		// episodes skew Drama/Comedy.
		genre := g.zipfPick(len(genres), 1.2)
		if kind == 6 && g.rng.Float64() < 0.5 {
			genre = 3 + g.rng.Intn(2) // Action/Thriller
		}
		if kind == 7 && g.rng.Float64() < 0.5 {
			genre = g.rng.Intn(2) // Drama/Comedy
		}
		g.titleYear[i] = int64(year)
		g.titleKind[i] = int64(kind)
		g.titleGenre[i] = genre
		// Popularity: Zipf in id with noise; older famous movies exist too.
		g.titlePop[i] = 1.0/math.Pow(float64(i+2), 0.8) + g.rng.Float64()*1e-4
		t.AppendRow(int64(i+1), g.phrase(1+g.rng.Intn(3)), int64(kind), int64(year), season, episode)
	}
}

// popularMovie draws a movie row index with Zipf skew so that a few movies
// account for a large share of fact-table rows (the join-skew the paper's
// histogram baselines cannot capture).
func (g *gen) popularMovie() int { return g.zipfPick(g.nTitle, 1.25) }

func (g *gen) genAkaTitles() {
	n := g.scaled(3000, 60)
	t := g.db.Tables["aka_title"]
	for i := 0; i < n; i++ {
		m := g.popularMovie()
		year := g.titleYear[m]
		// Alternate titles carry "(YYYY-MM-DD)" date suffixes — the
		// substring family from Table 3 of the paper.
		month := 1 + g.rng.Intn(12)
		day := 1 + g.rng.Intn(28)
		title := fmt.Sprintf("%s (%d-%02d-%02d)", g.phrase(1+g.rng.Intn(2)), year, month, day)
		t.AppendRow(int64(i+1), int64(m+1), title, year)
	}
}

func (g *gen) genMovieCompanies() {
	n := g.scaled(35000, 700)
	t := g.db.Tables["movie_companies"]
	for i := 0; i < n; i++ {
		m := g.popularMovie()
		c := g.zipfPick(g.nCompany, 1.3)
		year := g.titleYear[m]
		// Company type skewed: production companies and distributors dominate.
		ct := g.pickWeighted([]float64{0.5, 0.35, 0.07, 0.08}) + 1
		note := g.companyNote(ct, year, c)
		t.AppendRow(int64(i+1), int64(m+1), int64(c+1), int64(ct), note)
	}
}

// companyNote generates movie_companies.note with the paper's pattern
// families and a planted year correlation: "(co-production)" is far more
// common for movies after 2000, which a per-column histogram cannot see.
func (g *gen) companyNote(companyType int, year int64, company int) string {
	switch companyType {
	case 1: // production companies
		u := g.rng.Float64()
		coProb := 0.02
		if year >= 2010 {
			coProb = 0.40
		}
		switch {
		case u < coProb:
			return "(co-production)"
		case u < coProb+0.20:
			return "(presents)"
		case u < coProb+0.32:
			return "(as " + g.companyName[company] + ")"
		case u < coProb+0.38:
			return "(in association with)"
		default:
			return ""
		}
	case 2: // distributors: "(YYYY) (CC) (TV)" patterns
		cc := countries[g.companyCountry[company]]
		u := g.rng.Float64()
		y := year + int64(g.rng.Intn(3))
		switch {
		case u < 0.40:
			return fmt.Sprintf("(%d) (%s) (TV)", y, cc)
		case u < 0.70:
			return fmt.Sprintf("(%d) (%s)", y, cc)
		case u < 0.80:
			return fmt.Sprintf("(%d) (worldwide) (TV)", y)
		default:
			return ""
		}
	default:
		if g.rng.Float64() < 0.25 {
			return "(uncredited)"
		}
		return ""
	}
}

func (g *gen) genMovieInfo() {
	n := g.scaled(45000, 900)
	t := g.db.Tables["movie_info"]
	// Info types present in movie_info with their weights.
	infoIDs := []int{3, 4, 8, 1, 16, 2, 105, 107, 98}
	weights := []float64{0.22, 0.15, 0.15, 0.12, 0.14, 0.08, 0.05, 0.04, 0.05}
	for i := 0; i < n; i++ {
		m := g.popularMovie()
		ti := g.pickWeighted(weights)
		infoType := infoIDs[ti]
		var info string
		switch infoType {
		case 3:
			info = genres[g.titleGenre[m]] // consistent genre per movie
		case 4:
			info = languages[g.zipfPick(len(languages), 1.5)]
		case 8:
			info = countries[g.zipfPick(len(countries), 1.4)]
		case 1:
			info = fmt.Sprintf("%d", 60+g.rng.Intn(120))
		case 16:
			info = fmt.Sprintf("%s: %d %s %d", countries[g.zipfPick(len(countries), 1.4)],
				1+g.rng.Intn(28), []string{"January", "March", "June", "September", "December"}[g.rng.Intn(5)],
				g.titleYear[m])
		case 2:
			if g.titleYear[m] < 1960 {
				info = "Black and White"
			} else {
				info = "Color"
			}
		case 105:
			info = fmt.Sprintf("$%d,000,000", 1+g.zipfPick(200, 1.3))
		case 107:
			info = fmt.Sprintf("$%d,481,354", 1+g.zipfPick(400, 1.2))
		default:
			info = g.phrase(3)
		}
		t.AppendRow(int64(i+1), int64(m+1), int64(infoType), info)
	}
}

func (g *gen) genMovieInfoIdx() {
	n := g.scaled(20000, 400)
	t := g.db.Tables["movie_info_idx"]
	id := int64(1)
	// top 250 rank: the most popular movies (ids lowest) with enough age —
	// a planted correlation between rank rows and join fan-out.
	nTop := 250
	if nTop > g.nTitle/10 {
		nTop = g.nTitle / 10
	}
	rank := 1
	for m := 0; m < g.nTitle && rank <= nTop; m++ {
		if g.titleKind[m] != 1 || g.titleYear[m] > 2015 {
			continue
		}
		t.AppendRow(id, int64(m+1), int64(101), fmt.Sprintf("%d", rank))
		id++
		rank++
	}
	// bottom 10 rank.
	for k := 0; k < 10 && k < g.nTitle; k++ {
		m := g.nTitle - 1 - k
		t.AppendRow(id, int64(m+1), int64(102), fmt.Sprintf("%d", k+1))
		id++
	}
	// votes + rating rows for a popularity-skewed subset.
	for int(id) <= n {
		m := g.popularMovie()
		votes := int(2000.0*g.titlePop[m]*float64(g.nTitle)) + g.rng.Intn(100) + 5
		t.AppendRow(id, int64(m+1), int64(99), fmt.Sprintf("%d", votes))
		id++
		if int(id) > n {
			break
		}
		rating := 5.0 + 4.5*g.titlePop[m]*float64(g.nTitle)/float64(g.nTitle) + g.rng.Float64()*2 - 1
		if rating > 9.9 {
			rating = 9.9
		}
		if rating < 1 {
			rating = 1
		}
		t.AppendRow(id, int64(m+1), int64(100), fmt.Sprintf("%.1f", rating))
		id++
	}
}

func (g *gen) genMovieKeyword() {
	n := g.scaled(30000, 600)
	t := g.db.Tables["movie_keyword"]
	for i := 0; i < n; i++ {
		m := g.popularMovie()
		// Keyword correlates with genre: offset the Zipf pick by genre so
		// e.g. Horror movies share keyword clusters.
		k := (g.zipfPick(g.nKeyword, 1.3) + g.titleGenre[m]*7) % g.nKeyword
		t.AppendRow(int64(i+1), int64(m+1), int64(k+1))
	}
}

func (g *gen) genCastInfo() {
	n := g.scaled(60000, 1200)
	t := g.db.Tables["cast_info"]
	for i := 0; i < n; i++ {
		m := g.popularMovie()
		p := g.zipfPick(g.nName, 1.2)
		// Role: actors/actresses dominate; actress correlates with gender.
		role := g.pickWeighted([]float64{0.34, 0.22, 0.08, 0.10, 0.03, 0.04, 0.02, 0.07, 0.04, 0.04, 0.01, 0.01}) + 1
		if role == 2 && g.nameGender[p] == "m" {
			role = 1 // keep actress≈female correlation strong
		}
		nrOrder := int64(1 + g.zipfPick(40, 1.1))
		note := ""
		u := g.rng.Float64()
		voiceProb := 0.05
		if g.titleKind[m] == 6 || g.titleGenre[m] == 7 { // video game or Animation
			voiceProb = 0.55
		}
		switch {
		case u < voiceProb:
			note = "(voice)"
		case u < voiceProb+0.08:
			note = "(uncredited)"
		case u < voiceProb+0.12:
			note = "(as " + g.word(true) + ")"
		case u < voiceProb+0.14:
			note = "(archive footage)"
		}
		t.AppendRow(int64(i+1), int64(p+1), int64(m+1), int64(role), nrOrder, note)
	}
}

func (g *gen) genAkaNames() {
	n := g.scaled(4000, 80)
	t := g.db.Tables["aka_name"]
	for i := 0; i < n; i++ {
		p := g.zipfPick(g.nName, 1.2)
		t.AppendRow(int64(i+1), int64(p+1), g.word(true)+", "+g.word(true))
	}
}

func (g *gen) genPersonInfo() {
	n := g.scaled(15000, 300)
	t := g.db.Tables["person_info"]
	infoIDs := []int{98, 16, 8}
	for i := 0; i < n; i++ {
		p := g.zipfPick(g.nName, 1.2)
		it := infoIDs[g.rng.Intn(len(infoIDs))]
		var info string
		switch it {
		case 98:
			info = g.phrase(4)
		case 16:
			info = fmt.Sprintf("%d-%02d-%02d", 1920+g.rng.Intn(85), 1+g.rng.Intn(12), 1+g.rng.Intn(28))
		default:
			info = countries[g.zipfPick(len(countries), 1.4)]
		}
		t.AppendRow(int64(i+1), int64(p+1), int64(it), info)
	}
}

func (g *gen) genMovieLink() {
	n := g.scaled(1500, 30)
	t := g.db.Tables["movie_link"]
	for i := 0; i < n; i++ {
		m := g.popularMovie()
		m2 := g.popularMovie()
		lt := g.zipfPick(len(linkTypes), 1.3)
		t.AppendRow(int64(i+1), int64(m+1), int64(m2+1), int64(lt+1))
	}
}

func (g *gen) genCompleteCast() {
	n := g.scaled(2000, 40)
	t := g.db.Tables["complete_cast"]
	for i := 0; i < n; i++ {
		m := g.popularMovie()
		subject := int64(1 + g.rng.Intn(2))
		status := int64(3 + g.rng.Intn(2))
		t.AppendRow(int64(i+1), int64(m+1), subject, status)
	}
}
