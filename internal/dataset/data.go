// Package dataset provides the in-memory column-store database the estimator
// is trained and evaluated on, together with a seeded generator producing an
// IMDB-like instance. The real IMDB snapshot used by the paper is replaced by
// synthetic data that plants the same properties the paper's experiments
// depend on: skewed fan-outs, cross-column and cross-table correlations, and
// string columns built from the pattern families the paper quotes
// ("(co-production)", "(presents)", "top 250 rank", "(2006) (USA) (TV)", ...).
package dataset

import (
	"fmt"

	"costest/internal/schema"
)

// Column holds one column's values. Exactly one of Ints/Strs is non-nil,
// matching the column's declared type.
type Column struct {
	Type schema.ColType
	Ints []int64
	Strs []string
}

// Len returns the number of values.
func (c *Column) Len() int {
	if c.Type == schema.IntCol {
		return len(c.Ints)
	}
	return len(c.Strs)
}

// Table is the materialized contents of one table. Rows are addressed by
// dense indices 0..NumRows-1; primary keys are the contiguous ids 1..NumRows,
// so the PK index is the identity mapping (id-1 == row index).
type Table struct {
	Meta    *schema.Table
	Cols    []*Column
	colIdx  map[string]int
	NumRows int
}

// NewTable allocates an empty table for the given schema table.
func NewTable(meta *schema.Table) *Table {
	t := &Table{Meta: meta, colIdx: make(map[string]int, len(meta.Columns))}
	for i, c := range meta.Columns {
		t.colIdx[c.Name] = i
		col := &Column{Type: c.Type}
		t.Cols = append(t.Cols, col)
		_ = i
	}
	return t
}

// ColIndex returns the ordinal of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// IntColumn returns the int64 vector of the named column, or nil. This
// implements sqlpred.ColumnAccessor.
func (t *Table) IntColumn(name string) []int64 {
	i := t.ColIndex(name)
	if i < 0 || t.Cols[i].Type != schema.IntCol {
		return nil
	}
	return t.Cols[i].Ints
}

// StrColumn returns the string vector of the named column, or nil. This
// implements sqlpred.ColumnAccessor.
func (t *Table) StrColumn(name string) []string {
	i := t.ColIndex(name)
	if i < 0 || t.Cols[i].Type != schema.StringCol {
		return nil
	}
	return t.Cols[i].Strs
}

// AppendRow appends one row; vals must follow the schema column order with
// int64 for IntCol and string for StringCol.
func (t *Table) AppendRow(vals ...any) {
	if len(vals) != len(t.Cols) {
		panic(fmt.Sprintf("dataset: table %s expects %d values, got %d", t.Meta.Name, len(t.Cols), len(vals)))
	}
	for i, v := range vals {
		switch t.Cols[i].Type {
		case schema.IntCol:
			t.Cols[i].Ints = append(t.Cols[i].Ints, v.(int64))
		case schema.StringCol:
			t.Cols[i].Strs = append(t.Cols[i].Strs, v.(string))
		}
	}
	t.NumRows++
}

// PKRow returns the row index of the given primary key, or -1. Primary keys
// are contiguous 1..NumRows.
func (t *Table) PKRow(id int64) int {
	if id < 1 || id > int64(t.NumRows) {
		return -1
	}
	return int(id - 1)
}

// DB is a complete database instance.
type DB struct {
	Schema *schema.Schema
	Tables map[string]*Table
}

// Table returns the named table's data, or nil.
func (db *DB) Table(name string) *Table { return db.Tables[name] }

// TotalRows returns the number of rows across all tables.
func (db *DB) TotalRows() int {
	n := 0
	for _, t := range db.Tables {
		n += t.NumRows
	}
	return n
}
