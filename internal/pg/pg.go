// Package pg implements the PostgreSQL-style baseline estimator the paper
// compares against (PGCard / PGCost): histogram-based selectivity with
// attribute independence, distinct-count join selectivity, and the classic
// page/CPU cost model with tunable GUC weights. A calibration step scales
// cost units into the executor's milliseconds, mirroring the paper's "we
// have tuned the factor of page IO so that the unit of the estimated cost
// equals the unit of time".
package pg

import (
	"math"

	"costest/internal/exec"
	"costest/internal/plan"
	"costest/internal/sqlpred"
	"costest/internal/stats"
)

// Estimator annotates plans with PostgreSQL-style cardinality and cost
// estimates.
type Estimator struct {
	Cat *stats.Catalog

	// Cost GUCs (PostgreSQL defaults).
	SeqPageCost       float64
	RandomPageCost    float64
	CPUTupleCost      float64
	CPUIndexTupleCost float64
	CPUOperatorCost   float64

	// UnitMS converts raw cost units into the executor's milliseconds;
	// set by Calibrate, defaults to 1.
	UnitMS float64
}

// New returns an estimator with PostgreSQL's default cost weights.
func New(cat *stats.Catalog) *Estimator {
	return &Estimator{
		Cat:               cat,
		SeqPageCost:       1.0,
		RandomPageCost:    4.0,
		CPUTupleCost:      0.01,
		CPUIndexTupleCost: 0.005,
		CPUOperatorCost:   0.0025,
		UnitMS:            1.0,
	}
}

// Annotate fills EstRows and EstCost (cumulative, in calibrated ms) for
// every node of the plan, bottom-up, never looking at true values.
func (e *Estimator) Annotate(root *plan.Node) {
	e.annotate(root)
}

// annotate returns (rows, cumulative raw cost).
func (e *Estimator) annotate(n *plan.Node) (rows, cost float64) {
	if n == nil {
		return 0, 0
	}
	switch n.Type {
	case plan.SeqScan:
		rows, cost = e.seqScan(n)
	case plan.IndexScan:
		rows, cost = e.indexScan(n, 1)
	case plan.HashJoin, plan.MergeJoin, plan.NestedLoop:
		rows, cost = e.join(n)
	case plan.Sort:
		inRows, inCost := e.annotate(n.Left)
		rows = inRows
		cost = inCost + comparisonCost(inRows)*e.CPUOperatorCost + e.CPUTupleCost*inRows
	case plan.Aggregate:
		inRows, inCost := e.annotate(n.Left)
		rows = 1
		cost = inCost + e.CPUTupleCost*inRows*math.Max(1, float64(len(n.Aggs)))
	}
	if rows < 1 {
		rows = 1
	}
	n.EstRows = rows
	n.EstCost = cost * e.UnitMS
	return rows, cost
}

func comparisonCost(n float64) float64 {
	return 2 * n * math.Log2(n+2)
}

func (e *Estimator) tableRows(table string) float64 {
	if ts := e.Cat.Table(table); ts != nil {
		return float64(ts.RowCount)
	}
	return 1000
}

func (e *Estimator) seqScan(n *plan.Node) (rows, cost float64) {
	total := e.tableRows(n.Table)
	sel := e.Cat.PredSelectivity(n.Filter)
	rows = total * sel
	pages := math.Ceil(total / exec.RowsPerPage)
	atoms := float64(sqlpred.CountAtoms(n.Filter))
	cost = e.SeqPageCost*pages + e.CPUTupleCost*total + e.CPUOperatorCost*total*atoms
	return rows, cost
}

// indexScan estimates a filter-driven or parameterized index scan. loops is
// the number of outer probes (1 for filter-driven scans).
func (e *Estimator) indexScan(n *plan.Node, loops float64) (rows, cost float64) {
	total := e.tableRows(n.Table)
	var matched float64 // rows fetched from the index per loop
	switch {
	case n.IndexCond != nil:
		matched = total * e.Cat.AtomSelectivity(n.IndexCond)
	case n.ParamJoin != nil:
		// Equality probe: total/ndv rows per outer tuple.
		innerRef := n.ParamJoin.Left
		if innerRef.Table != n.Table {
			innerRef = n.ParamJoin.Right
		}
		matched = total / e.columnNDV(innerRef.Table, innerRef.Column)
	default:
		matched = total
	}
	residual := e.Cat.PredSelectivity(n.Filter)
	rows = matched * residual
	atoms := float64(sqlpred.CountAtoms(n.Filter))
	perLoop := e.RandomPageCost*math.Max(1, matched/exec.RowsPerPage*4) +
		e.CPUIndexTupleCost*matched +
		e.CPUTupleCost*matched +
		e.CPUOperatorCost*(matched*atoms+math.Log2(total+2))
	cost = perLoop * loops
	return rows, cost
}

func (e *Estimator) columnNDV(table, column string) float64 {
	cs := e.Cat.Column(table, column)
	if cs == nil || cs.NDV == 0 {
		return 1
	}
	return float64(cs.NDV)
}

// joinSelectivity is PostgreSQL's eqjoinsel: 1/max(ndv_left, ndv_right).
func (e *Estimator) joinSelectivity(c *plan.JoinCond) float64 {
	l := e.columnNDV(c.Left.Table, c.Left.Column)
	r := e.columnNDV(c.Right.Table, c.Right.Column)
	return 1 / math.Max(math.Max(l, r), 1)
}

func (e *Estimator) join(n *plan.Node) (rows, cost float64) {
	lRows, lCost := e.annotate(n.Left)

	// Index nested loop: the inner parameterized scan is costed per loop.
	if n.Type == plan.NestedLoop && n.Right != nil &&
		n.Right.Type == plan.IndexScan && n.Right.ParamJoin != nil {
		innerRows, innerCost := e.indexScan(n.Right, math.Max(lRows, 1))
		n.Right.EstRows = math.Max(innerRows, 1)
		n.Right.EstCost = innerCost * e.UnitMS
		rows = lRows * innerRows
		cost = lCost + innerCost + e.CPUTupleCost*rows
		return rows, cost
	}

	rRows, rCost := e.annotate(n.Right)
	sel := 1.0
	if n.JoinCond != nil {
		sel = e.joinSelectivity(n.JoinCond)
	}
	rows = lRows * rRows * sel
	switch n.Type {
	case plan.HashJoin:
		cost = lCost + rCost +
			e.CPUOperatorCost*(lRows+rRows) + // hashing both sides
			e.CPUTupleCost*(rRows+rows) // build + emit
	case plan.MergeJoin:
		cost = lCost + rCost +
			e.CPUOperatorCost*(comparisonCost(lRows)+comparisonCost(rRows)+lRows+rRows) +
			e.CPUTupleCost*rows
	default: // naive nested loop
		cost = lCost + rCost + e.CPUOperatorCost*lRows*rRows + e.CPUTupleCost*rows
	}
	return rows, cost
}

// EstimateCard returns the PG cardinality estimate for the query-level
// cardinality (the topmost non-aggregate node), annotating the plan.
func (e *Estimator) EstimateCard(root *plan.Node) float64 {
	e.Annotate(root)
	return root.CardinalityNode().EstRows
}

// EstimateCost returns the PG cost estimate for the whole plan in calibrated
// milliseconds, annotating the plan.
func (e *Estimator) EstimateCost(root *plan.Node) float64 {
	e.Annotate(root)
	return root.EstCost
}

// Calibrate tunes UnitMS so raw cost units align with the executor's
// milliseconds, using the geometric mean of true/estimated ratios over a
// calibration set of executed plans (plans must carry TrueCost).
func (e *Estimator) Calibrate(roots []*plan.Node) {
	saved := e.UnitMS
	e.UnitMS = 1
	var sumLog float64
	var n int
	for _, r := range roots {
		if r.TrueCost <= 0 {
			continue
		}
		raw := e.EstimateCost(r)
		if raw <= 0 {
			continue
		}
		sumLog += math.Log(r.TrueCost / raw)
		n++
	}
	if n == 0 {
		e.UnitMS = saved
		return
	}
	e.UnitMS = math.Exp(sumLog / float64(n))
}
