package pg

import (
	"math"
	"testing"

	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/plan"
	"costest/internal/sqlpred"
	"costest/internal/stats"
)

var (
	testDB  = dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.03})
	testCat = stats.Collect(testDB, stats.Options{Buckets: 40, SampleSize: 64, Seed: 1})
	testEng = exec.NewEngine(testDB)
)

func scan(table string, f sqlpred.Pred) *plan.Node {
	return &plan.Node{Type: plan.SeqScan, Table: table, Filter: f}
}

var mcTitle = plan.JoinCond{
	Left:  plan.ColRef{Table: "movie_companies", Column: "movie_id"},
	Right: plan.ColRef{Table: "title", Column: "id"},
}

func TestSeqScanCardEstimate(t *testing.T) {
	est := New(testCat)
	f := &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGt, NumVal: 2000}
	n := scan("title", f)
	card := est.EstimateCard(n)
	if _, err := testEng.Run(n); err != nil {
		t.Fatal(err)
	}
	q := math.Max(card, n.TrueRows) / math.Min(math.Max(card, 1), math.Max(n.TrueRows, 1))
	if q > 2 {
		t.Errorf("single-table range: est=%.0f true=%.0f q=%.1f", card, n.TrueRows, q)
	}
}

func TestFKJoinCardEstimate(t *testing.T) {
	est := New(testCat)
	n := &plan.Node{Type: plan.HashJoin, JoinCond: &mcTitle,
		Left: scan("movie_companies", nil), Right: scan("title", nil)}
	card := est.EstimateCard(n)
	if _, err := testEng.Run(n); err != nil {
		t.Fatal(err)
	}
	// Unfiltered PK-FK join: the NDV formula should be nearly exact.
	q := math.Max(card, n.TrueRows) / math.Min(card, n.TrueRows)
	if q > 1.5 {
		t.Errorf("FK join: est=%.0f true=%.0f q=%.2f", card, n.TrueRows, q)
	}
}

// The headline effect the paper exploits: PG underestimates correlated
// multi-predicate + join cardinalities badly.
func TestCorrelatedEstimateIsWrong(t *testing.T) {
	est := New(testCat)
	yearF := &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGe, NumVal: 2010}
	noteF := &sqlpred.Atom{Table: "movie_companies", Column: "note", Op: sqlpred.OpEq,
		StrVal: "(co-production)", IsStr: true}
	n := &plan.Node{Type: plan.HashJoin, JoinCond: &mcTitle,
		Left: scan("movie_companies", noteF), Right: scan("title", yearF)}
	cardEst := est.EstimateCard(n)
	if _, err := testEng.Run(n); err != nil {
		t.Fatal(err)
	}
	if n.TrueRows == 0 {
		t.Skip("no matching rows at this scale")
	}
	if cardEst >= n.TrueRows {
		t.Logf("note: PG did not underestimate here (est=%.0f true=%.0f)", cardEst, n.TrueRows)
	}
	q := math.Max(cardEst, n.TrueRows) / math.Min(math.Max(cardEst, 1), n.TrueRows)
	if q < 1.3 {
		t.Errorf("correlated join estimate suspiciously good: q=%.2f (est=%.0f true=%.0f)",
			q, cardEst, n.TrueRows)
	}
}

func TestAnnotateFillsEveryNode(t *testing.T) {
	est := New(testCat)
	n := &plan.Node{Type: plan.Aggregate,
		Aggs: []plan.AggSpec{{Func: plan.AggCount}},
		Left: &plan.Node{Type: plan.HashJoin, JoinCond: &mcTitle,
			Left: scan("movie_companies", nil), Right: scan("title", nil)},
	}
	est.Annotate(n)
	n.Walk(func(m *plan.Node) {
		if m.EstRows < 1 {
			t.Errorf("node %v EstRows = %g", m.Type, m.EstRows)
		}
		if m.EstCost <= 0 {
			t.Errorf("node %v EstCost = %g", m.Type, m.EstCost)
		}
	})
	if n.EstRows != 1 {
		t.Errorf("aggregate EstRows = %g, want 1", n.EstRows)
	}
	if n.EstCost <= n.Left.EstCost {
		t.Error("cumulative cost must grow upward")
	}
}

func TestIndexNLEstimate(t *testing.T) {
	est := New(testCat)
	inner := &plan.Node{Type: plan.IndexScan, Table: "title", Index: "title_pkey", ParamJoin: &mcTitle}
	n := &plan.Node{Type: plan.NestedLoop, JoinCond: &mcTitle,
		Left: scan("movie_companies", nil), Right: inner}
	card := est.EstimateCard(n)
	if _, err := testEng.Run(n); err != nil {
		t.Fatal(err)
	}
	q := math.Max(card, n.TrueRows) / math.Min(math.Max(card, 1), math.Max(n.TrueRows, 1))
	if q > 2 {
		t.Errorf("index NL: est=%.0f true=%.0f", card, n.TrueRows)
	}
	if inner.EstRows < 1 || inner.EstCost <= 0 {
		t.Error("inner parameterized scan not annotated")
	}
}

func TestCalibrate(t *testing.T) {
	est := New(testCat)
	var plans []*plan.Node
	for _, y := range []float64{1990, 2000, 2010} {
		f := &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGt, NumVal: y}
		n := &plan.Node{Type: plan.HashJoin, JoinCond: &mcTitle,
			Left: scan("movie_companies", nil), Right: scan("title", f)}
		if _, err := testEng.Run(n); err != nil {
			t.Fatal(err)
		}
		plans = append(plans, n)
	}
	est.Calibrate(plans)
	if est.UnitMS <= 0 {
		t.Fatalf("UnitMS = %g", est.UnitMS)
	}
	// After calibration the geometric mean ratio must be ~1.
	var sumLog float64
	for _, p := range plans {
		sumLog += math.Log(p.TrueCost / est.EstimateCost(p))
	}
	if math.Abs(sumLog/float64(len(plans))) > 0.01 {
		t.Errorf("calibration off: mean log ratio %g", sumLog/3)
	}
}

func TestCalibrateEmptySet(t *testing.T) {
	est := New(testCat)
	est.UnitMS = 2.5
	est.Calibrate(nil)
	if est.UnitMS != 2.5 {
		t.Error("calibration with no plans must not change UnitMS")
	}
}

func TestEstimatesPositiveAndFinite(t *testing.T) {
	est := New(testCat)
	n := &plan.Node{Type: plan.Sort,
		SortKeys: []plan.ColRef{{Table: "title", Column: "production_year"}},
		Left:     scan("title", nil)}
	est.Annotate(n)
	if math.IsNaN(n.EstCost) || math.IsInf(n.EstCost, 0) || n.EstCost <= 0 {
		t.Fatalf("sort EstCost = %g", n.EstCost)
	}
	if n.EstRows != n.Left.EstRows {
		t.Error("sort must preserve estimated rows")
	}
}
