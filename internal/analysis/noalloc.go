package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoAlloc proves the zero-allocation contract statically: a function whose
// doc comment carries the marker `// costlint:noalloc` must contain no
// allocating construct in its body. The AllocsPerRun tests prove the warm
// path empirically, but only along the inputs they exercise; this analyzer
// is their static complement — a new `make`, closure, boxing call or string
// concat anywhere in an annotated function fails the build gate before a
// benchmark ever runs.
//
// Flagged constructs: make / new, slice and map composite literals,
// address-of composite literals (&T{...} escapes), non-self append (append
// whose result lands in a different slice — guaranteed fresh backing), func
// literals (closure allocation), `go` statements, non-constant string
// concatenation, string<->[]byte/[]rune conversions, implicit boxing of
// non-pointer values into interface parameters, and calls into
// known-allocating stdlib helpers (fmt, errors, strings/strconv/sort
// formatters).
//
// Deliberate carve-outs, each matching a proven steady-state idiom:
//
//   - self-append `x = append(x, ...)` — amortized high-water growth into a
//     caller-retained buffer; AllocsPerRun proves it settles to zero;
//   - arguments of panic(...) — shape-violation panics are fatal paths;
//   - return statements whose final result is a non-nil error — failure
//     paths may construct errors (fmt.Errorf and friends); the contract
//     covers the success path, exactly like the AllocsPerRun harnesses;
//   - pointer-shaped values (pointers, maps, chans, funcs) passed to
//     interface parameters — the interface data word holds them unboxed.
//
// The check is body-local by design: callees carry their own annotation (or
// their own AllocsPerRun coverage), so annotating a function is a statement
// about its own lines, reviewable in isolation.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated // costlint:noalloc must not contain allocating constructs",
	Run:  runNoAlloc,
}

// NoAllocMarker is the annotation, written on its own doc-comment line.
const NoAllocMarker = "costlint:noalloc"

func runNoAlloc(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasMarker(fd.Doc, NoAllocMarker) {
				continue
			}
			checkNoAllocBody(pass, fd)
		}
	}
}

// hasMarker reports whether doc contains a comment line that is exactly the
// marker (after stripping the comment prefix).
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker {
			return true
		}
	}
	return false
}

// noAllocWalker carries the per-function state of the body check.
type noAllocWalker struct {
	pass *Pass
	info *types.Info
	// appendParents maps append calls to the single-assignment statement
	// they are the sole right-hand side of, for the self-append test.
	appendParents map[*ast.CallExpr]*ast.AssignStmt
}

func checkNoAllocBody(pass *Pass, fd *ast.FuncDecl) {
	w := &noAllocWalker{pass: pass, info: pass.Pkg.Info, appendParents: make(map[*ast.CallExpr]*ast.AssignStmt)}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
				w.appendParents[call] = as
			}
		}
		return true
	})
	sig, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	errResult := sig != nil && lastResultIsError(sig.Type().(*types.Signature))
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			// Failure-path carve-out: a return delivering a non-nil error is
			// cold by contract; its error construction may allocate.
			if errResult && len(n.Results) > 0 {
				if last := n.Results[len(n.Results)-1]; !isNilIdent(last) {
					return false
				}
			}
			return true
		case *ast.CallExpr:
			if isPanicCall(w.info, n) {
				return false // fatal path: panic argument construction exempt
			}
			w.checkCall(n)
			return true
		case *ast.CompositeLit:
			w.checkCompositeLit(n, false)
			return true
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok && n.Op.String() == "&" {
				w.checkCompositeLit(lit, true)
				ast.Inspect(lit, func(inner ast.Node) bool {
					if inner == lit {
						return true
					}
					return walk(inner)
				})
				return false
			}
			return true
		case *ast.FuncLit:
			w.pass.Reportf(n.Pos(), "function literal in noalloc function: closures allocate")
			return false
		case *ast.GoStmt:
			w.pass.Reportf(n.Pos(), "go statement in noalloc function: spawning a goroutine allocates")
			return true
		case *ast.BinaryExpr:
			w.checkStringConcat(n)
			return true
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkCall flags allocating calls: make/new, non-self append, conversions
// between string and byte/rune slices, deny-listed stdlib helpers, and
// implicit interface boxing of non-pointer arguments.
func (w *noAllocWalker) checkCall(call *ast.CallExpr) {
	info := w.info
	// Type conversions: string <-> []byte / []rune allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := types.Unalias(tv.Type).Underlying()
		if from, ok := info.Types[call.Args[0]]; ok {
			if isStringByteConv(to, from.Type.Underlying()) {
				w.pass.Reportf(call.Pos(), "string conversion allocates in noalloc function")
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.pass.Reportf(call.Pos(), "make allocates in noalloc function")
			case "new":
				w.pass.Reportf(call.Pos(), "new allocates in noalloc function")
			case "append":
				if !w.isSelfAppend(call) {
					w.pass.Reportf(call.Pos(), "append into a different slice allocates in noalloc function (self-append `x = append(x, ...)` is the amortized-growth idiom)")
				}
			}
			return
		}
	}
	if path, name := calleePkgFunc(info, call); path != "" {
		if allocDenied(path, name) {
			w.pass.Reportf(call.Pos(), "%s.%s allocates in noalloc function", pkgBase(path), name)
			return
		}
	}
	w.checkBoxing(call)
}

// isSelfAppend reports whether call is `append(x, ...)` whose result is
// assigned back to x in the enclosing statement. The walker only needs a
// syntactic answer: the assignment parent is found by re-walking the match
// candidates recorded during checkNoAllocBody would be heavy, so instead the
// check accepts the common shapes x = append(x, ...) and x := append(x, ...)
// by scanning the append's first argument against the assignment it sits in.
func (w *noAllocWalker) isSelfAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	parent := w.appendParents[call]
	if parent == nil {
		return false
	}
	if len(parent.Lhs) != 1 || len(parent.Rhs) != 1 || parent.Rhs[0] != call {
		return false
	}
	return types.ExprString(parent.Lhs[0]) == types.ExprString(call.Args[0])
}

// isStringByteConv reports a conversion between string and []byte/[]rune.
func isStringByteConv(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// checkCompositeLit flags slice/map literals and address-of literals.
func (w *noAllocWalker) checkCompositeLit(lit *ast.CompositeLit, addressed bool) {
	tv, ok := w.info.Types[lit]
	if !ok {
		return
	}
	switch types.Unalias(tv.Type).Underlying().(type) {
	case *types.Slice:
		w.pass.Reportf(lit.Pos(), "slice literal allocates in noalloc function")
	case *types.Map:
		w.pass.Reportf(lit.Pos(), "map literal allocates in noalloc function")
	default:
		if addressed {
			w.pass.Reportf(lit.Pos(), "address-of composite literal escapes to the heap in noalloc function")
		}
	}
}

// checkStringConcat flags non-constant string concatenation.
func (w *noAllocWalker) checkStringConcat(e *ast.BinaryExpr) {
	if e.Op.String() != "+" {
		return
	}
	tv, ok := w.info.Types[e]
	if !ok || tv.Value != nil { // constant-folded concat is free
		return
	}
	if isString(tv.Type.Underlying()) {
		w.pass.Reportf(e.Pos(), "string concatenation allocates in noalloc function")
	}
}

// checkBoxing flags arguments implicitly converted to interface parameters
// when the concrete value is not pointer-shaped (so the conversion heap-boxes
// it). Pointer-shaped values live directly in the interface data word.
func (w *noAllocWalker) checkBoxing(call *ast.CallExpr) {
	tv, ok := w.info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := types.Unalias(tv.Type).Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, not boxing elements
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at, ok := w.info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		argT := types.Default(at.Type)
		if types.IsInterface(argT.Underlying()) || isUntypedNil(at.Type) || pointerShaped(argT) {
			continue
		}
		w.pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes it on the heap in noalloc function", argT.String())
	}
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t fit the interface data word
// without boxing.
func pointerShaped(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		b := types.Unalias(t).Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// lastResultIsError reports whether the signature's final result is error.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	named, ok := types.Unalias(res.At(res.Len() - 1).Type()).(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// calleePkgFunc resolves a call to (package path, function name) for
// package-level functions; "" otherwise.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (string, string) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", ""
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "" // methods are not in the deny-list
	}
	return fn.Pkg().Path(), fn.Name()
}

func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// allocDenied lists stdlib helpers that always allocate their result.
func allocDenied(path, name string) bool {
	switch path {
	case "fmt":
		return true
	case "errors":
		return name == "New" || name == "Join"
	case "strings":
		switch name {
		case "Join", "Repeat", "Replace", "ReplaceAll", "Split", "SplitN",
			"Fields", "ToUpper", "ToLower", "Title", "Map", "Clone", "Concat":
			return true
		}
	case "strconv":
		switch name {
		case "Itoa", "Quote", "FormatFloat", "FormatInt", "FormatUint", "FormatBool", "FormatComplex":
			return true
		}
	case "sort":
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return true
		}
	}
	return false
}
