package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FaultSite proves the fault-injection registry invariant: every site name
// that production code hands to fault.Point, fault.Calls or a fault.Rule
// literal is a Site* constant declared in internal/fault/sites.go, and
// (whole-program, enabled for full-module runs) every registered constant is
// consulted by at least one fault.Point. A bare string literal — even one
// whose value happens to match a registered site — is rejected: provenance
// through the registry constant is what lets a rename refactor find every
// consumer, and what makes an unregistered name a compile-gate failure
// instead of a chaos rule that silently never fires.
//
// ParseSpec calls whose spec argument is a compile-time constant get the
// same validation per rule; non-constant specs (the -faults CLI flag) are
// runtime input and are validated by ParseSpec itself.
//
// The fault package itself is exempt: it is the trusted base that constructs
// rules from runtime strings by design.
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc:  "fault-injection site names must come from the internal/fault registry",
	Run:  runFaultSite,
	Finish: func(prog *Program) []Diagnostic {
		if !prog.CheckUnusedSites {
			return nil
		}
		return finishFaultSite(prog)
	},
}

func runFaultSite(pass *Pass) {
	if isPkgPath(pass.Pkg.PkgPath, faultPkgSuffix) {
		return
	}
	faultPkg := importedPackage(pass.Pkg, faultPkgSuffix)
	if faultPkg == nil {
		return
	}
	registry := faultRegistry(faultPkg)
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				switch calleeName(info, n, faultPkg) {
				case "Point", "Calls":
					if len(n.Args) == 1 {
						checkSiteExpr(pass, registry, n.Args[0], calleeName(info, n, faultPkg) == "Point")
					}
				case "ParseSpec":
					if len(n.Args) >= 1 {
						checkSpecConst(pass, registry, n.Args[0])
					}
				}
			case *ast.CompositeLit:
				if tv, ok := info.Types[n]; ok && isFaultRule(tv.Type, faultPkg) {
					if site := ruleSiteExpr(n); site != nil {
						checkSiteExpr(pass, registry, site, false)
					}
				}
			}
			return true
		})
	}
}

// faultRegistry maps registered site values to their constant names, read
// from the fault package's exported Site* constants.
func faultRegistry(faultPkg *types.Package) map[string]string {
	reg := make(map[string]string)
	scope := faultPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Site") || c.Val().Kind() != constant.String {
			continue
		}
		reg[constant.StringVal(c.Val())] = name
	}
	return reg
}

// checkSiteExpr validates one expression expected to name a fault site.
// isPoint marks arguments of fault.Point, whose registry constants feed the
// whole-program unused-site evidence.
func checkSiteExpr(pass *Pass, registry map[string]string, e ast.Expr, isPoint bool) {
	e = ast.Unparen(e)
	if obj := constObjectOf(pass.Pkg.Info, e); obj != nil {
		if obj.Pkg() != nil && isPkgPath(obj.Pkg().Path(), faultPkgSuffix) && strings.HasPrefix(obj.Name(), "Site") {
			if isPoint {
				pass.Prog.markFaultPointUse(constant.StringVal(obj.Val()))
			}
			return // a registry constant — the only accepted form
		}
	}
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(e.Pos(), "fault site must be a Site* constant from the internal/fault registry (internal/fault/sites.go), not a computed value")
		return
	}
	val := constant.StringVal(tv.Value)
	if name, known := registry[val]; known {
		pass.Reportf(e.Pos(), "fault site %q must be referenced via its registry constant fault.%s, not an ad-hoc literal or constant", val, name)
	} else {
		pass.Reportf(e.Pos(), "unknown fault site %q: not registered in internal/fault/sites.go", val)
	}
}

// checkSpecConst validates the sites inside a compile-time-constant
// ParseSpec specification ("site:kind[:k=v...];...").
func checkSpecConst(pass *Pass, registry map[string]string, e ast.Expr) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // runtime spec (CLI flag): ParseSpec validates shape, chaos tests own the content
	}
	spec := constant.StringVal(tv.Value)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, _, _ := strings.Cut(part, ":")
		if site == "" {
			continue // malformed; ParseSpec reports it at runtime
		}
		if _, known := registry[site]; !known {
			pass.Reportf(e.Pos(), "unknown fault site %q in constant spec: not registered in internal/fault/sites.go", site)
		}
	}
}

// finishFaultSite reports registered sites never consulted by fault.Point in
// any analyzed package — a dead chaos hook, or a registry entry that
// outlived its code.
func finishFaultSite(prog *Program) []Diagnostic {
	var faultPkg *Package
	for _, pkg := range prog.Packages {
		if isPkgPath(pkg.PkgPath, faultPkgSuffix) {
			faultPkg = pkg
			break
		}
	}
	if faultPkg == nil {
		return nil
	}
	var diags []Diagnostic
	for _, file := range faultPkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := faultPkg.Info.Defs[name].(*types.Const)
					if !ok || !strings.HasPrefix(name.Name, "Site") || c.Val().Kind() != constant.String {
						continue
					}
					if val := constant.StringVal(c.Val()); !prog.faultPointUses[val] {
						diags = append(diags, Diagnostic{
							Pos:      name.Pos(),
							Position: prog.Fset.Position(name.Pos()),
							Analyzer: "faultsite",
							Message:  "fault site " + name.Name + " (" + val + ") is registered but never consulted by fault.Point in production code",
						})
					}
				}
			}
		}
	}
	return diags
}

// calleeName returns the name of the called function when it is a
// package-level function of pkg, else "".
func calleeName(info *types.Info, call *ast.CallExpr, pkg *types.Package) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return ""
	}
	if fn, ok := info.Uses[id].(*types.Func); ok && fn.Pkg() == pkg {
		return fn.Name()
	}
	return ""
}

// constObjectOf returns the constant object e resolves to, when e is a
// (possibly package-qualified) identifier naming a constant.
func constObjectOf(info *types.Info, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := info.Uses[id].(*types.Const)
	return c
}

// isFaultRule reports whether t is the fault package's Rule struct.
func isFaultRule(t types.Type, faultPkg *types.Package) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rule" && obj.Pkg() == faultPkg
}

// ruleSiteExpr extracts the Site field expression from a fault.Rule
// composite literal (keyed or positional).
func ruleSiteExpr(lit *ast.CompositeLit) ast.Expr {
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Site" {
				return kv.Value
			}
			continue
		}
		if i == 0 {
			return elt // positional literal: Site is the first field
		}
	}
	return nil
}
