package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CanonicalDot proves the bit-identity contract's structural half: outside
// internal/tensor, no code may run a raw float64 reduction loop over slice
// elements. Every order-sensitive accumulation must route through the
// canonical kernels (tensor.Dot / dotKernel's strictly sequential order,
// tensor.Sum, tensor.AddVecsInto's fixed left-to-right reduction), because
// the serving contract — bit-identical estimates across replicas, versions,
// batch compositions and worker counts — is exactly the statement that one
// accumulation order exists and everything uses it. A hand-rolled
// `s += x[i]*y[i]` loop is a second accumulation order waiting to diverge
// the moment someone unrolls or parallelizes it.
//
// Scope, precisely: an augmented assignment `s += expr` (or `s -= expr`,
// or `s = s + expr`) is flagged when
//
//   - s is a float64 scalar declared outside the loop (a cross-iteration
//     accumulator), and
//   - expr is "raw": built only of identifiers, field selections, index
//     expressions, parens, numeric literals and +,-,*,/ — no function
//     calls, and
//   - expr reads at least one float64-slice element sequentially: x[i]
//     with i the loop's own index variable, or the range value of a
//     []float64 range.
//
// Gather loops (x[idx[i]]), reductions through function calls
// (s += math.Log(v)) and elementwise updates (dst[i] += v) are out of
// scope: their accumulation order is either not slice-sequential or not a
// plain sum, and the kernels' contract does not cover them. Loops that can
// exit early (break, return, goto in the body) are likewise exempt: they
// are scans or searches, not complete reductions — no kernel can express a
// data-dependent stopping point, and the exit condition pins the iteration
// order right there in the code.
var CanonicalDot = &Analyzer{
	Name: "canonicaldot",
	Doc:  "raw float64 reduction loops over slices must live in internal/tensor's canonical kernels",
	Run:  runCanonicalDot,
}

func runCanonicalDot(pass *Pass) {
	if isPkgPath(pass.Pkg.PkgPath, tensorPkgSuffix) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		var loops []loopCtx
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, forLoopCtx(info, n))
				ast.Inspect(n.Body, walk)
				if n.Post != nil {
					ast.Inspect(n.Post, walk)
				}
				loops = loops[:len(loops)-1]
				return false
			case *ast.RangeStmt:
				loops = append(loops, rangeLoopCtx(info, n))
				ast.Inspect(n.Body, walk)
				loops = loops[:len(loops)-1]
				return false
			case *ast.AssignStmt:
				if len(loops) > 0 {
					checkReduction(pass, loops, n)
				}
				return true
			}
			return true
		}
		ast.Inspect(file, walk)
	}
}

// loopCtx is one enclosing loop's reduction-relevant variables.
type loopCtx struct {
	pos token.Pos
	// indexVars are objects usable as sequential indices (for-loop counters,
	// range keys over float64 slices).
	indexVars map[types.Object]bool
	// elemVars are range-value objects that are float64 slice elements.
	elemVars map[types.Object]bool
	// earlyExit marks loops whose body can stop iteration early — scans, not
	// complete reductions.
	earlyExit bool
}

func forLoopCtx(info *types.Info, n *ast.ForStmt) loopCtx {
	ctx := loopCtx{pos: n.Pos(), indexVars: map[types.Object]bool{}, elemVars: map[types.Object]bool{}, earlyExit: loopExitsEarly(n.Body)}
	if init, ok := n.Init.(*ast.AssignStmt); ok {
		for _, lhs := range init.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := objectOf(info, id); obj != nil {
					ctx.indexVars[obj] = true
				}
			}
		}
	}
	return ctx
}

func rangeLoopCtx(info *types.Info, n *ast.RangeStmt) loopCtx {
	ctx := loopCtx{pos: n.Pos(), indexVars: map[types.Object]bool{}, elemVars: map[types.Object]bool{}, earlyExit: loopExitsEarly(n.Body)}
	overF64 := false
	if tv, ok := info.Types[n.X]; ok {
		overF64 = isFloat64Slice(tv.Type)
	}
	if id, ok := n.Key.(*ast.Ident); ok {
		if obj := objectOf(info, id); obj != nil {
			ctx.indexVars[obj] = true
		}
	}
	if id, ok := n.Value.(*ast.Ident); ok && overF64 {
		if obj := objectOf(info, id); obj != nil {
			ctx.elemVars[obj] = true
		}
	}
	return ctx
}

// checkReduction flags `s += raw-expr-reading-slice-elements` accumulations.
func checkReduction(pass *Pass, loops []loopCtx, as *ast.AssignStmt) {
	var rhs ast.Expr
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		rhs = as.Rhs[0]
	case token.ASSIGN:
		// s = s + expr
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		bin, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return
		}
		lid, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		xid, ok := ast.Unparen(bin.X).(*ast.Ident)
		if !ok || objectOf(pass.Pkg.Info, xid) != objectOf(pass.Pkg.Info, lid) {
			return
		}
		rhs = bin.Y
	default:
		return
	}
	acc, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := objectOf(pass.Pkg.Info, acc)
	if obj == nil || !isFloat64(obj.Type()) {
		return
	}
	innermost := loops[len(loops)-1]
	if obj.Pos() >= innermost.pos {
		return // declared inside the loop: not a cross-iteration accumulator
	}
	for _, l := range loops {
		if l.earlyExit {
			return // a scan/search, not a complete reduction
		}
	}
	if !isRawExpr(pass.Pkg.Info, rhs) {
		return
	}
	if !readsSequentialElement(pass.Pkg.Info, loops, rhs) {
		return
	}
	pass.Reportf(as.Pos(), "raw float64 reduction over slice elements outside internal/tensor: accumulation order is part of the bit-identity contract — use tensor.Dot, tensor.Sum or tensor.AddVecsInto")
}

// loopExitsEarly reports whether body can leave its loop before all
// iterations complete: a return, a goto, a labeled branch, or an unlabeled
// break at the loop's own level (breaks belonging to nested loops, switches
// and selects target those constructs instead). Function literals are
// opaque — their returns do not exit the loop.
func loopExitsEarly(body *ast.BlockStmt) bool {
	exits := false
	depth := 0 // nesting inside constructs that capture unlabeled break
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if capturesBreak(top) {
				depth--
			}
			return true
		}
		if exits {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		stack = append(stack, n)
		if capturesBreak(n) {
			depth++
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			switch {
			case n.Tok == token.GOTO, n.Label != nil:
				exits = true
			case n.Tok == token.BREAK && depth == 0:
				exits = true
			}
		}
		return true
	})
	return exits
}

func capturesBreak(n ast.Node) bool {
	switch n.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return true
	}
	return false
}

// isRawExpr reports whether e is built purely of identifiers, selections,
// index expressions, literals, parens and +,-,*,/ arithmetic.
func isRawExpr(info *types.Info, e ast.Expr) bool {
	raw := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case nil, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.ParenExpr, *ast.BasicLit:
			return true
		case *ast.UnaryExpr:
			if n.Op == token.SUB || n.Op == token.ADD {
				return true
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				return true
			}
		}
		raw = false
		return false
	})
	return raw
}

// readsSequentialElement reports whether e reads a float64-slice element
// indexed by one of the enclosing loops' own variables (or a range value of
// a []float64 range).
func readsSequentialElement(info *types.Info, loops []loopCtx, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := objectOf(info, n); obj != nil {
				for _, l := range loops {
					if l.elemVars[obj] {
						found = true
					}
				}
			}
		case *ast.IndexExpr:
			tv, ok := info.Types[n.X]
			if !ok || !isFloat64Slice(tv.Type) {
				return true
			}
			id, ok := ast.Unparen(n.Index).(*ast.Ident)
			if !ok {
				return true
			}
			if obj := objectOf(info, id); obj != nil {
				for _, l := range loops {
					if l.indexVars[obj] {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func isFloat64(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func isFloat64Slice(t types.Type) bool {
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	return ok && isFloat64(s.Elem())
}
