// Package fixture exercises the noalloc analyzer: one function per
// allocating construct, plus the carved-out steady-state idioms that must
// stay silent.
package fixture

import (
	"errors"
	"fmt"
	"sort"
)

// makes allocates in every flagged way.
//
// costlint:noalloc
func makes(n int) {
	_ = make([]int, n)   // want `make allocates`
	_ = new(int)         // want `new allocates`
	_ = []int{1, 2}      // want `slice literal allocates`
	_ = map[string]int{} // want `map literal allocates`
	_ = &point{x: 1}     // want `address-of composite literal escapes`
	f := func() {}       // want `function literal in noalloc function: closures allocate`
	f()
	go work() // want `go statement in noalloc function`
}

type point struct{ x, y int }

func work() {}

// appends: only self-append is the sanctioned growth idiom.
//
// costlint:noalloc
func appends(dst, src []int) []int {
	dst = append(dst, 1) // self-append: amortized high-water growth, exempt
	dst = append(src, 2) // want `append into a different slice allocates`
	return dst
}

// strings allocate through concat, conversion and deny-listed helpers.
//
// costlint:noalloc
func stringwork(a, b string, bs []byte) int {
	_ = a + b           // want `string concatenation allocates`
	_ = a + "suffix"    // want `string concatenation allocates`
	const c = "x" + "y" // constant-folded: free
	_ = c
	_ = []byte(a)            // want `string conversion allocates`
	_ = string(bs)           // want `string conversion allocates`
	_ = fmt.Sprintf("%s", a) // want `fmt\.Sprintf allocates`
	sort.Strings(nil)        // want `sort\.Strings allocates`
	return len(a)
}

// boxing: non-pointer-shaped values crossing into interface parameters.
//
// costlint:noalloc
func boxing(n int, p *point, m map[string]int) {
	sink(n)        // want `passing int to interface parameter boxes it`
	sink(p)        // pointer-shaped: lives in the interface word, exempt
	sink(m)        // pointer-shaped, exempt
	sink(nil)      // nil interface, exempt
	variadic(n, n) // want `passing int to interface parameter boxes it` `passing int to interface parameter boxes it`
}

func sink(v any)         {}
func variadic(vs ...any) {}

// coldPaths: panic arguments and error-delivering returns are carved out —
// the contract covers the success path, exactly like AllocsPerRun harnesses.
//
// costlint:noalloc
func coldPaths(n int) (int, error) {
	if n < 0 {
		panic(fmt.Sprintf("negative: %d", n)) // fatal path: exempt
	}
	if n == 0 {
		return 0, fmt.Errorf("zero input %d", n) // failure path: exempt
	}
	if n == 1 {
		return 0, errors.New("one") // failure path: exempt
	}
	return n, nil
}

// unannotated allocates freely: the analyzer only audits marked functions.
func unannotated(n int) []int {
	s := make([]int, n)
	return append(s, len(fmt.Sprint(n)))
}
