// Package fixture exercises the faultsite analyzer: every rejected way of
// naming a fault-injection site, next to every accepted registry form.
package fixture

import (
	"costest/internal/fault"
)

// localSite duplicates a registered value outside the registry — provenance
// through internal/fault/sites.go is what the analyzer demands, not value
// equality.
const localSite = "serve.batch"

func bad() {
	fault.Point("serve.batch")                            // want `fault site "serve\.batch" must be referenced via its registry constant fault\.SiteServeBatch`
	fault.Point("no.such.site")                           // want `unknown fault site "no\.such\.site"`
	fault.Point(localSite)                                // want `must be referenced via its registry constant fault\.SiteServeBatch`
	_ = fault.Calls("daemon.retrain")                     // want `must be referenced via its registry constant fault\.SiteDaemonRetrain`
	_ = fault.Rule{Site: "replica.send"}                  // want `must be referenced via its registry constant fault\.SiteReplicaSend`
	_ = fault.Rule{"checkpoint.sync", 0, 0, 0, 0, nil, 0} // want `must be referenced via its registry constant fault\.SiteCheckpointSync`
	_, _ = fault.ParseSpec("bogus.site:error:count=1", 1) // want `unknown fault site "bogus\.site" in constant spec`
}

func computed(name string) {
	fault.Point(name) // want `must be a Site\* constant from the internal/fault registry`
}

func good() {
	fault.Point(fault.SiteServeBatch)
	_ = fault.Calls(fault.SiteDaemonRetrain)
	_ = fault.Rule{Site: fault.SiteCheckpointWrite}
	_, _ = fault.ParseSpec(fault.SiteServeBatch+":error:count=1", 1)
	_, _ = fault.ParseSpec(fault.SiteCheckpointSync+":crash:count=1;"+fault.SiteReplicaRecv+":error:p=0.5", 7)
}
