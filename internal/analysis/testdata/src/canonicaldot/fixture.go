// Package fixture exercises the canonicaldot analyzer: raw sequential
// float64 reductions that must route through the tensor kernels, alongside
// every out-of-scope shape that must stay silent.
package fixture

import "math"

func dotIndexed(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i] // want `raw float64 reduction over slice elements outside internal/tensor`
	}
	return s
}

func sumRange(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x // want `raw float64 reduction over slice elements outside internal/tensor`
	}
	return s
}

func assignForm(xs []float64) float64 {
	s := 0.0
	for i := 0; i < len(xs); i++ {
		s = s + xs[i] // want `raw float64 reduction over slice elements outside internal/tensor`
	}
	return s
}

func subtractForm(xs []float64) float64 {
	var s float64
	for i := 0; i < len(xs); i++ {
		s -= xs[i] // want `raw float64 reduction over slice elements outside internal/tensor`
	}
	return s
}

func nested(rows [][]float64) float64 {
	var s float64
	for _, row := range rows {
		for j := range row {
			s += row[j] // want `raw float64 reduction over slice elements outside internal/tensor`
		}
	}
	return s
}

// callTransformed is exempt: the RHS routes through a function, so the
// accumulation is not a plain ordered sum the kernels cover.
func callTransformed(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return s
}

// gather is exempt: x[idx[i]] is not a sequential read of the slice.
func gather(xs []float64, idx []int) float64 {
	var s float64
	for i := range idx {
		s += xs[idx[i]]
	}
	return s
}

// elementwise is exempt: dst[i] += v is an update, not a scalar reduction.
func elementwise(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// cdfScan is exempt: the loop can exit early, so it is a search with a
// locally pinned order, not a complete reduction a kernel could replace.
func cdfScan(weights []float64, u float64) int {
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// perIteration is exempt: the accumulator is declared inside the loop body,
// so nothing accumulates across iterations.
func perIteration(xs []float64) float64 {
	var last float64
	for i := range xs {
		v := 0.0
		v += xs[i]
		last = v
	}
	return last
}

// intSum is exempt: only float64 accumulation orders are contractual.
func intSum(xs []int) int {
	var s int
	for i := range xs {
		s += xs[i]
	}
	return s
}
