// Package fixture exercises the atomichygiene analyzer: an old-style
// sync/atomic access anywhere pins the field program-wide, so every plain
// access elsewhere is a diagnosed data race. Typed atomics stay silent.
package fixture

import "sync/atomic"

type counter struct {
	n     uint64        // accessed via atomic.AddUint64: plain access is a race
	typed atomic.Uint64 // typed atomic: plain access cannot compile, never flagged
	cold  uint64        // never touched atomically: plain access is fine
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1) // the atomic evidence that pins c.n
	c.typed.Add(1)
}

func (c *counter) read() uint64 {
	return c.n // want `plain access to counter\.n, which is accessed atomically at`
}

func (c *counter) reset() {
	c.n = 0 // want `plain access to counter\.n`
	c.cold = 0
}

func (c *counter) typedRead() uint64 {
	return c.typed.Load() + c.cold
}

var pkgFlag uint32

func raiseFlag() {
	atomic.StoreUint32(&pkgFlag, 1)
}

func readFlag() bool {
	return pkgFlag == 1 // want `plain access to pkgFlag`
}
