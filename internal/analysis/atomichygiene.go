package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicHygiene proves memory-order hygiene across the whole program: a
// struct field or package-level variable that is accessed through the
// sync/atomic functions anywhere must never be read or written plainly
// anywhere else. Mixed atomic/plain access is a data race that the race
// detector only reports when a test happens to interleave the two sides;
// statically, the mix is visible at every commit.
//
// The typed atomics (atomic.Uint64, atomic.Pointer[T], ...) — the only form
// the production tree uses — are immune by construction: their inner word is
// unexported, so a plain access cannot compile. This analyzer therefore
// guards the regression path: the first old-style atomic.LoadUint64(&s.f)
// that slips in pins f as atomic program-wide, and every plain f read
// elsewhere becomes a build-gate failure (including the tempting "it's only
// initialization" write — initialize before publication via the composite
// literal instead, or use a typed atomic).
//
// The check is whole-program (Finish): atomic evidence in one package flags
// plain access in another, keyed by (package, type, field) so source-checked
// and export-data views of the same field unify.
var AtomicHygiene = &Analyzer{
	Name:   "atomichygiene",
	Doc:    "fields accessed via sync/atomic must never be accessed plainly",
	Finish: finishAtomicHygiene,
}

// atomicKey names a field or package-level variable position-independently.
func atomicKey(obj types.Object, recv *types.Named) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if recv != nil {
		return pkg + ":" + recv.Obj().Name() + "." + obj.Name()
	}
	return pkg + ":" + obj.Name()
}

func finishAtomicHygiene(prog *Program) []Diagnostic {
	atomicUses := make(map[string]string) // key -> example position (string for messages)
	exempt := make(map[ast.Node]bool)     // &x.f nodes inside atomic calls
	type access struct {
		key string
		pos ast.Node
		pkg *Package
	}
	var plain []access

	// Pass 1: collect atomic evidence and the exact argument nodes it lives
	// in, so pass 2 can skip them.
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isSyncAtomicCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op.String() != "&" {
						continue
					}
					key, ok := addressedKey(pkg.Info, un.X)
					if !ok {
						continue
					}
					if _, seen := atomicUses[key]; !seen {
						atomicUses[key] = prog.Fset.Position(un.Pos()).String()
					}
					exempt[un] = true
				}
				return true
			})
		}
	}
	if len(atomicUses) == 0 {
		return nil
	}

	// Pass 2: find plain accesses of the recorded fields/variables.
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				if exempt[n] {
					return false
				}
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if key, ok := addressedKey(pkg.Info, n); ok {
						if _, hot := atomicUses[key]; hot {
							plain = append(plain, access{key: key, pos: n, pkg: pkg})
						}
					}
					return true
				case *ast.Ident:
					if obj, ok := pkg.Info.Uses[n].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
						key := atomicKey(obj, nil)
						if _, hot := atomicUses[key]; hot {
							plain = append(plain, access{key: key, pos: n, pkg: pkg})
						}
					}
					return true
				}
				return true
			}
			ast.Inspect(file, walk)
		}
	}

	var diags []Diagnostic
	for _, a := range plain {
		diags = append(diags, Diagnostic{
			Pos:      a.pos.Pos(),
			Position: prog.Fset.Position(a.pos.Pos()),
			Analyzer: "atomichygiene",
			Message: "plain access to " + a.key[strings.Index(a.key, ":")+1:] +
				", which is accessed atomically at " + atomicUses[a.key] +
				" — mixed atomic/plain access is a data race; use a typed atomic (atomic.Uint64, atomic.Pointer) or atomic accessors everywhere",
		})
	}
	return diags
}

// addressedKey resolves expr (the operand of & in an atomic call, or a
// selector read) to an atomic hygiene key: a struct field selection or a
// package-level variable. Returns ok=false for locals and non-variables —
// atomics on locals cannot be mixed across packages, and intra-function
// mixes are caught by the same key when the local is a named field.
func addressedKey(info *types.Info, expr ast.Expr) (string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return "", false
		}
		recv := sel.Recv()
		if ptr, ok := types.Unalias(recv).Underlying().(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := types.Unalias(recv).(*types.Named)
		if !ok {
			return "", false
		}
		return atomicKey(sel.Obj(), named), true
	case *ast.Ident:
		obj, ok := info.Uses[e].(*types.Var)
		if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
			return "", false
		}
		return atomicKey(obj, nil), true
	}
	return "", false
}

// isSyncAtomicCall reports whether call invokes a package-level sync/atomic
// function (Load*/Store*/Add*/Swap*/CompareAndSwap*).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // typed-atomic methods are safe by construction
	}
	return true
}
