// Package analysis is the project's static-analysis layer: four custom
// analyzers that prove, at build-gate time and over every call site, the
// serving invariants the dynamic test suites can only sample —
//
//   - faultsite: every fault-injection site name reaching fault.Point,
//     fault.Calls or a fault.Rule literal in production code is a constant
//     from the central registry (internal/fault/sites.go), and every
//     registered site is actually consulted somewhere (no typo'd or dead
//     chaos hooks);
//   - noalloc: functions annotated `// costlint:noalloc` contain no
//     allocating constructs — the static, every-line complement to the
//     AllocsPerRun tests, which prove the warm path empirically but only at
//     the call sites they exercise;
//   - canonicaldot: no raw float64 reduction loops over slices outside
//     internal/tensor — every order-sensitive accumulation routes through
//     the canonical kernels (tensor.Dot, tensor.Sum, tensor.AddVecsInto)
//     that pin the bit-identical estimate contract;
//   - atomichygiene: a variable or struct field accessed through sync/atomic
//     anywhere is never read or written plainly elsewhere (mixed access is a
//     data race the race detector only finds when a test happens to
//     interleave it).
//
// The framework is deliberately dependency-free: the container that builds
// this repo has no module proxy access, so instead of
// golang.org/x/tools/go/analysis the package drives the same underlying
// substrate directly — `go list -export` for package metadata and compiled
// export data, go/parser + go/types for syntax and type information (see
// load.go). The Analyzer/Pass surface mirrors x/tools so the analyzers could
// be ported to a multichecker verbatim if the dependency ever lands.
//
// Test files are never analyzed: the loader reads only GoFiles (non-test
// sources), because tests intentionally allocate, name ad-hoc fault sites
// and touch shared state single-threaded. The contracts these analyzers
// prove are production serving contracts.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run (optional) is invoked once per loaded
// package; Finish (optional) is invoked once after every package has been
// visited, for whole-program checks that need cross-package state (unused
// fault sites, mixed atomic access across packages).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
	// Finish reports whole-program diagnostics after all Run calls. The
	// prog argument carries every loaded package.
	Finish func(prog *Program) []Diagnostic
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Prog.diags = append(p.Prog.diags, Diagnostic{
		Pos:      pos,
		Position: p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// Package is one type-checked target package.
type Package struct {
	PkgPath string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Program is a set of loaded packages plus accumulated diagnostics.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	// CheckUnusedSites enables faultsite's whole-program
	// registered-but-never-injected check. Only meaningful when the loaded
	// pattern covers the entire module (cmd/costlint sets it for ./... runs);
	// a partial load would report every site the absent packages consult.
	CheckUnusedSites bool

	diags []Diagnostic
	// faultPointUses records registry-constant values consulted by
	// fault.Point across all packages — faultsite.Finish's evidence for the
	// registered-but-never-injected check.
	faultPointUses map[string]bool
}

// markFaultPointUse records that a registry constant with the given value
// reached a fault.Point call.
func (p *Program) markFaultPointUse(val string) {
	if p.faultPointUses == nil {
		p.faultPointUses = make(map[string]bool)
	}
	p.faultPointUses[val] = true
}

// Analyzers returns the project's analyzer suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{FaultSite, NoAlloc, CanonicalDot, AtomicHygiene}
}

// RunAnalyzers applies every analyzer to prog and returns the diagnostics
// sorted by position.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range prog.Packages {
				a.Run(&Pass{Analyzer: a, Prog: prog, Pkg: pkg})
			}
		}
		if a.Finish != nil {
			prog.diags = append(prog.diags, a.Finish(prog)...)
		}
	}
	sort.Slice(prog.diags, func(i, j int) bool {
		a, b := prog.diags[i].Position, prog.diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return prog.diags[i].Message < prog.diags[j].Message
	})
	return prog.diags
}

// faultPkgSuffix identifies the fault-injection package by import-path
// suffix, so fixtures under testdata resolve the same registry the
// production tree does.
const faultPkgSuffix = "internal/fault"

// tensorPkgSuffix identifies the canonical-kernel package.
const tensorPkgSuffix = "internal/tensor"

// isPkgPath reports whether path is exactly suffix or ends with "/"+suffix.
func isPkgPath(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// importedPackage returns the directly imported package whose path matches
// suffix, or nil.
func importedPackage(pkg *Package, suffix string) *types.Package {
	for _, imp := range pkg.Types.Imports() {
		if isPkgPath(imp.Path(), suffix) {
			return imp
		}
	}
	return nil
}
