package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest convention with the
// stdlib only: each package under testdata/src/<analyzer> is a real,
// compilable package (loadable by explicit path, invisible to ./...), and
// every line carrying a `// want` comment must produce exactly the
// diagnostics whose quoted regexps follow it — no more, no fewer.

// wantRE captures the quoted regexps of a `// want` comment; both backquoted
// and double-quoted forms are accepted.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// fixtureExpectations scans every .go file in dir for `// want` comments.
func fixtureExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			quoted := wantRE.FindAllString(line[idx+len("// want "):], -1)
			if len(quoted) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted regexp", e.Name(), i+1)
			}
			for _, q := range quoted {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: unquoting %s: %v", e.Name(), i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: compiling %q: %v", e.Name(), i+1, pat, err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no expectations", dir)
	}
	return wants
}

// runFixture loads one fixture package, runs a single analyzer over it, and
// checks the produced diagnostics against the `// want` expectations.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	prog, err := Load("./" + dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunAnalyzers(prog, []*Analyzer{a})
	wants := fixtureExpectations(t, dir)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == filepath.Base(d.Position.Filename) &&
				w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d.String())
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestFaultSiteFixture(t *testing.T)     { runFixture(t, FaultSite, "faultsite") }
func TestNoAllocFixture(t *testing.T)       { runFixture(t, NoAlloc, "noalloc") }
func TestCanonicalDotFixture(t *testing.T)  { runFixture(t, CanonicalDot, "canonicaldot") }
func TestAtomicHygieneFixture(t *testing.T) { runFixture(t, AtomicHygiene, "atomichygiene") }

// TestCostlintTreeClean is the self-application gate: the shipped tree must
// hold every invariant the analyzers prove, with zero findings and zero
// suppressions — including the whole-program registered-but-never-injected
// check over the fault-site registry.
func TestCostlintTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := Load("costest/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	prog.CheckUnusedSites = true
	for _, d := range RunAnalyzers(prog, Analyzers()) {
		t.Errorf("%s", d.String())
	}
}
