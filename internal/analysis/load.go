package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// load.go is the package loader: the offline, dependency-free equivalent of
// golang.org/x/tools/go/packages in LoadAllSyntax mode, for the subset this
// project needs. One `go list -deps -export -json` invocation yields, for
// every target package and every transitive dependency, the package's source
// files and the path of its compiled export data in the build cache. Target
// packages (the ones the patterns named) are parsed and type-checked from
// source; their dependencies — including the standard library — are imported
// through the gc export-data importer, which is exactly how the compiler
// itself sees them. No network, no GOPATH assumptions, no vendoring.

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (any `go list` patterns:
// ./..., explicit directories, import paths) and returns them as a Program.
// Directories under testdata are loadable only by explicit path, exactly as
// with the go tool — which is how fixtures stay out of production builds
// while remaining real, compilable packages.
func Load(patterns ...string) (*Program, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	prog := &Program{Fset: fset}
	for _, lp := range targets {
		if lp.Incomplete {
			return nil, fmt.Errorf("analysis: package %s did not build cleanly", lp.ImportPath)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// check parses and type-checks one listed package from source.
func check(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{PkgPath: lp.ImportPath, Files: files, Types: tpkg, Info: info}, nil
}
