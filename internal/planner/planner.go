// Package planner converts logical queries into physical plans by bottom-up
// dynamic programming over join orders, pricing candidates with the
// PostgreSQL-style estimator. It plays the paper's role of "obtaining query
// plans from PostgreSQL": plan choices depend on (sometimes wrong) histogram
// estimates, producing realistic plans with realistic mistakes.
package planner

import (
	"fmt"
	"math"
	"math/bits"

	"costest/internal/pg"
	"costest/internal/plan"
	"costest/internal/query"
	"costest/internal/schema"
	"costest/internal/sqlpred"
)

// Planner builds physical plans.
type Planner struct {
	Est    *pg.Estimator
	Schema *schema.Schema
}

// New returns a planner over the given estimator and schema.
func New(est *pg.Estimator, s *schema.Schema) *Planner {
	return &Planner{Est: est, Schema: s}
}

// Plan produces the cheapest physical plan for q under the PG cost model.
func (p *Planner) Plan(q *query.Query) (*plan.Node, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	n := len(q.Tables)
	if n == 0 {
		return nil, fmt.Errorf("planner: query with no tables")
	}
	if n > 12 {
		return nil, fmt.Errorf("planner: %d tables exceeds the DP limit", n)
	}

	type entry struct {
		node *plan.Node
		cost float64
	}
	best := make(map[uint32]entry)

	// Base relations: best access path per table.
	for i, t := range q.Tables {
		node := p.bestAccessPath(t, q.Filter(t))
		cost := p.Est.EstimateCost(node)
		best[1<<uint(i)] = entry{node: node, cost: cost}
	}

	// tableBit maps table name to its bit.
	tableBit := make(map[string]uint32, n)
	for i, t := range q.Tables {
		tableBit[t] = 1 << uint(i)
	}
	// Join edges as (maskA, maskB, cond).
	type edge struct {
		a, b uint32
		cond plan.JoinCond
	}
	var edges []edge
	for _, j := range q.Joins {
		edges = append(edges, edge{tableBit[j.Left.Table], tableBit[j.Right.Table], j})
	}

	full := uint32(1<<uint(n)) - 1
	for mask := uint32(1); mask <= full; mask++ {
		if bits.OnesCount32(mask) < 2 {
			continue // base relations already seeded
		}
		var cur entry
		cur.cost = math.Inf(1)
		// Enumerate proper sub-splits of mask.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			rest := mask &^ sub
			lhs, okL := best[sub]
			rhs, okR := best[rest]
			if !okL || !okR {
				continue
			}
			// Find a join condition connecting the two sides.
			var cond *plan.JoinCond
			for i := range edges {
				e := edges[i]
				if (e.a&sub != 0 && e.b&rest != 0) || (e.a&rest != 0 && e.b&sub != 0) {
					cond = &edges[i].cond
					break
				}
			}
			if cond == nil {
				continue // avoid cross products
			}
			for _, cand := range p.joinCandidates(q, cond, lhs.node, rhs.node, rest) {
				c := p.Est.EstimateCost(cand)
				if c < cur.cost {
					cur = entry{node: cand, cost: c}
				}
			}
		}
		if !math.IsInf(cur.cost, 1) {
			best[mask] = cur
		}
	}

	top, ok := best[full]
	if !ok {
		return nil, fmt.Errorf("planner: join graph disconnected for %v", q.Tables)
	}
	root := top.node
	if len(q.Aggs) > 0 {
		root = &plan.Node{Type: plan.Aggregate, Aggs: q.Aggs, Left: root}
	}
	p.Est.Annotate(root)
	return root, nil
}

// bestAccessPath picks SeqScan vs (filter-driven) IndexScan for one table.
func (p *Planner) bestAccessPath(table string, filter sqlpred.Pred) *plan.Node {
	seq := &plan.Node{Type: plan.SeqScan, Table: table, Filter: filter}
	bestNode, bestCost := seq, p.Est.EstimateCost(seq)

	// An index scan is possible when a top-level AND-conjunct constrains the
	// primary key.
	pk := p.Schema.Table(table).PrimaryKey
	if pk == "" {
		return bestNode
	}
	idx := p.Schema.IndexOn(table, pk)
	if idx == nil {
		return bestNode
	}
	cond, residual := extractPKCond(filter, table, pk)
	if cond == nil {
		return bestNode
	}
	is := &plan.Node{Type: plan.IndexScan, Table: table, Index: idx.Name,
		IndexCond: cond, Filter: residual}
	if c := p.Est.EstimateCost(is); c < bestCost {
		bestNode = is
	}
	return bestNode
}

// extractPKCond pulls one PK range/equality atom out of the top-level AND
// chain, returning it and the residual predicate.
func extractPKCond(filter sqlpred.Pred, table, pk string) (*sqlpred.Atom, sqlpred.Pred) {
	switch n := filter.(type) {
	case *sqlpred.Atom:
		if n.Table == table && n.Column == pk && !n.IsStr && n.Op != sqlpred.OpNe {
			return n, nil
		}
	case *sqlpred.Bool:
		if n.Kind != sqlpred.And {
			return nil, filter
		}
		if a, rest := extractPKCond(n.Left, table, pk); a != nil {
			return a, sqlpred.AndAll(rest, n.Right)
		}
		if a, rest := extractPKCond(n.Right, table, pk); a != nil {
			return a, sqlpred.AndAll(n.Left, rest)
		}
	}
	return nil, filter
}

// joinCandidates proposes physical joins of lhs and rhs. rhsMask is used to
// recognize single-table right sides eligible for index nested loops.
func (p *Planner) joinCandidates(q *query.Query, cond *plan.JoinCond, lhs, rhs *plan.Node, rhsMask uint32) []*plan.Node {
	mk := func(t plan.NodeType, l, r *plan.Node) *plan.Node {
		return &plan.Node{Type: t, JoinCond: cond, Left: l.Clone(), Right: r.Clone()}
	}
	out := []*plan.Node{
		mk(plan.HashJoin, lhs, rhs),
		mk(plan.HashJoin, rhs, lhs),
		mk(plan.MergeJoin, lhs, rhs),
	}
	// Index nested loop: right side must be a bare table whose join column
	// is indexed.
	if bits.OnesCount32(rhsMask) == 1 && rhs.Type.IsScan() && rhs.IndexCond == nil {
		innerRef := cond.Left
		if innerRef.Table != rhs.Table {
			innerRef = cond.Right
		}
		if innerRef.Table == rhs.Table {
			if idx := p.Schema.IndexOn(rhs.Table, innerRef.Column); idx != nil {
				inner := &plan.Node{Type: plan.IndexScan, Table: rhs.Table, Index: idx.Name,
					ParamJoin: cond, Filter: q.Filter(rhs.Table)}
				out = append(out, &plan.Node{Type: plan.NestedLoop, JoinCond: cond,
					Left: lhs.Clone(), Right: inner})
			}
		}
	}
	return out
}
