package planner

import (
	"testing"

	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/pg"
	"costest/internal/plan"
	"costest/internal/query"
	"costest/internal/sqlpred"
	"costest/internal/stats"
)

var (
	testDB  = dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.03})
	testCat = stats.Collect(testDB, stats.Options{Buckets: 40, SampleSize: 64, Seed: 1})
	testEng = exec.NewEngine(testDB)
)

func newPlanner() *Planner {
	return New(pg.New(testCat), testDB.Schema)
}

func simpleQuery(tables []string, joins []plan.JoinCond, filters map[string]sqlpred.Pred) *query.Query {
	return &query.Query{Tables: tables, Joins: joins, Filters: filters,
		Aggs: []plan.AggSpec{{Func: plan.AggCount}}}
}

var mcTitle = plan.JoinCond{
	Left:  plan.ColRef{Table: "movie_companies", Column: "movie_id"},
	Right: plan.ColRef{Table: "title", Column: "id"},
}
var mcCt = plan.JoinCond{
	Left:  plan.ColRef{Table: "movie_companies", Column: "company_type_id"},
	Right: plan.ColRef{Table: "company_type", Column: "id"},
}

func TestPlanSingleTable(t *testing.T) {
	p := newPlanner()
	f := &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGt, NumVal: 2000}
	q := simpleQuery([]string{"title"}, nil, map[string]sqlpred.Pred{"title": f})
	root, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if root.Type != plan.Aggregate {
		t.Fatalf("root = %v, want Aggregate", root.Type)
	}
	if !root.Left.Type.IsScan() {
		t.Fatalf("child = %v, want scan", root.Left.Type)
	}
	if _, err := testEng.Run(root); err != nil {
		t.Fatalf("planned query does not execute: %v", err)
	}
}

func TestPlanTwoWayJoinExecutes(t *testing.T) {
	p := newPlanner()
	q := simpleQuery([]string{"movie_companies", "title"}, []plan.JoinCond{mcTitle}, nil)
	root, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := testEng.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 1 { // aggregate output
		t.Fatalf("aggregate rows = %d", rel.NumRows())
	}
	card := root.CardinalityNode().TrueRows
	if card != float64(testDB.Table("movie_companies").NumRows) {
		t.Errorf("join cardinality %g, want full FK size", card)
	}
}

func TestPlanThreeWayJoin(t *testing.T) {
	p := newPlanner()
	f := &sqlpred.Atom{Table: "company_type", Column: "kind", Op: sqlpred.OpEq,
		StrVal: "production companies", IsStr: true}
	q := simpleQuery([]string{"movie_companies", "title", "company_type"},
		[]plan.JoinCond{mcTitle, mcCt},
		map[string]sqlpred.Pred{"company_type": f})
	root, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	joins := 0
	root.Walk(func(n *plan.Node) {
		if n.Type.IsJoin() {
			joins++
		}
	})
	if joins != 2 {
		t.Fatalf("plan has %d joins, want 2:\n%s", joins, root)
	}
	if _, err := testEng.Run(root); err != nil {
		t.Fatalf("planned query fails: %v\n%s", err, root)
	}
}

// All join orders/methods must agree on the final cardinality — the planner
// must only change cost, never semantics.
func TestPlannerPreservesSemantics(t *testing.T) {
	p := newPlanner()
	f := &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGt, NumVal: 2005}
	q := simpleQuery([]string{"movie_companies", "title", "company_type"},
		[]plan.JoinCond{mcTitle, mcCt},
		map[string]sqlpred.Pred{"title": f})
	root, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := testEng.Run(root); err != nil {
		t.Fatal(err)
	}
	got := root.CardinalityNode().TrueRows

	// Brute-force oracle.
	mc := testDB.Table("movie_companies")
	title := testDB.Table("title")
	years := title.IntColumn("production_year")
	movieIDs := mc.IntColumn("movie_id")
	want := 0
	for _, m := range movieIDs {
		if years[title.PKRow(m)] > 2005 {
			want++
		}
	}
	if int(got) != want {
		t.Fatalf("planned cardinality %g, oracle %d\n%s", got, want, root)
	}
}

func TestPlanUsesIndexForSelectiveFilter(t *testing.T) {
	p := newPlanner()
	// Highly selective PK condition: planner should pick the index scan.
	f := &sqlpred.Atom{Table: "title", Column: "id", Op: sqlpred.OpEq, NumVal: 5}
	q := simpleQuery([]string{"title"}, nil, map[string]sqlpred.Pred{"title": f})
	root, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if root.Left.Type != plan.IndexScan {
		t.Errorf("access path = %v, want IndexScan\n%s", root.Left.Type, root)
	}
}

func TestPlanRejectsDisconnected(t *testing.T) {
	p := newPlanner()
	q := simpleQuery([]string{"title", "keyword"}, nil, nil)
	if _, err := p.Plan(q); err == nil {
		t.Fatal("disconnected query must fail to plan")
	}
}

func TestQueryValidate(t *testing.T) {
	bad := &query.Query{Tables: []string{"a", "a"}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate tables must fail")
	}
	bad = &query.Query{Tables: []string{"a"}, Joins: []plan.JoinCond{mcTitle}}
	if err := bad.Validate(); err == nil {
		t.Error("join on unlisted table must fail")
	}
	bad = &query.Query{Tables: []string{"title"},
		Filters: map[string]sqlpred.Pred{"title": &sqlpred.Atom{Table: "other", Column: "x", Op: sqlpred.OpEq}}}
	if err := bad.Validate(); err == nil {
		t.Error("filter referencing other table must fail")
	}
}

func TestQuerySQLRendering(t *testing.T) {
	f := &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGt, NumVal: 2000}
	q := &query.Query{
		Tables:  []string{"movie_companies", "title"},
		Joins:   []plan.JoinCond{mcTitle},
		Filters: map[string]sqlpred.Pred{"title": f},
		Aggs: []plan.AggSpec{
			{Func: plan.AggMin, Col: plan.ColRef{Table: "title", Column: "production_year"}},
			{Func: plan.AggCount},
		},
	}
	sql := q.SQL()
	for _, want := range []string{"SELECT MIN(title.production_year), COUNT(*)",
		"FROM movie_companies, title",
		"movie_companies.movie_id = title.id",
		"title.production_year > 2000"} {
		if !contains(sql, want) {
			t.Errorf("SQL %q missing %q", sql, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
