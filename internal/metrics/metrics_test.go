package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	errs := []float64{1, 2, 3, 4, 100}
	s := Summarize(errs)
	if s.Median != 3 {
		t.Errorf("median = %g", s.Median)
	}
	if s.Max != 100 {
		t.Errorf("max = %g", s.Max)
	}
	if math.Abs(s.Mean-22) > 1e-9 {
		t.Errorf("mean = %g", s.Mean)
	}
	if s.N != 5 {
		t.Errorf("n = %d", s.N)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Max != 0 || s.N != 0 {
		t.Fatal("empty summary must be zero")
	}
}

func TestPercentileOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = 1 + rng.Float64()*1000
		}
		s := Summarize(vals)
		return s.Median <= s.P90+1e-12 && s.P90 <= s.P95+1e-12 &&
			s.P95 <= s.P99+1e-12 && s.P99 <= s.Max+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileExact(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if p := Percentile(sorted, 0); p != 10 {
		t.Errorf("p0 = %g", p)
	}
	if p := Percentile(sorted, 100); p != 40 {
		t.Errorf("p100 = %g", p)
	}
	if p := Percentile(sorted, 50); p != 25 {
		t.Errorf("p50 = %g", p)
	}
}

func TestQError(t *testing.T) {
	if QError(10, 100) != 10 || QError(100, 10) != 10 {
		t.Fatal("q-error not symmetric")
	}
	if QError(0, 0) != 1 {
		t.Fatal("floored q-error should be 1")
	}
}

func TestBoxStats(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 1000}
	b := Box(vals)
	if b.P25 >= b.P50 || b.P50 >= b.P75 {
		t.Fatalf("quartiles out of order: %+v", b)
	}
	if b.WhiskHi > b.Hi || b.WhiskLo < b.Lo {
		t.Fatalf("whiskers outside data range: %+v", b)
	}
	// The outlier is beyond the upper whisker.
	if b.WhiskHi >= 1000 {
		t.Fatalf("whisker should exclude the outlier: %+v", b)
	}
}

func TestRowFormatting(t *testing.T) {
	s := Summarize([]float64{1.5, 2.5, 3.5})
	row := s.Row("PGCard")
	if !strings.Contains(row, "PGCard") {
		t.Fatal("row missing method name")
	}
	h := Header("JOB-light")
	if !strings.Contains(h, "median") || !strings.Contains(h, "max") {
		t.Fatal("header missing columns")
	}
	if len(strings.Split(strings.TrimSpace(row), " ")) < 7 {
		t.Fatal("row has too few columns")
	}
}

func TestBoxRender(t *testing.T) {
	b := Box([]float64{1, 2, 3, 10, 100})
	out := b.Render("method", 40)
	if !strings.Contains(out, "method") || !strings.Contains(out, "|") {
		t.Fatalf("render = %q", out)
	}
	empty := Box(nil).Render("none", 40)
	if !strings.Contains(empty, "no data") {
		t.Fatal("empty render should say no data")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("geomean = %g", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable("Table 7", "JOB-light", []string{"row1", "row2"})
	if !strings.Contains(out, "Table 7") || !strings.Contains(out, "row2") {
		t.Fatal("table formatting wrong")
	}
}
