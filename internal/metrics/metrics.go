// Package metrics computes the error statistics the paper reports: q-error
// summaries with median/90th/95th/99th/max/mean columns (Tables 7-11) and
// box-plot statistics (Figure 9).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"costest/internal/tensor"
)

// QError returns max(est,truth)/min(est,truth) with both values floored at 1.
func QError(est, truth float64) float64 {
	est = math.Max(est, 1)
	truth = math.Max(truth, 1)
	if est > truth {
		return est / truth
	}
	return truth / est
}

// Summary holds the paper's table columns for one method on one workload.
type Summary struct {
	Median float64
	P90    float64
	P95    float64
	P99    float64
	Max    float64
	Mean   float64
	N      int
}

// Summarize computes a Summary over a set of errors.
func Summarize(errs []float64) Summary {
	if len(errs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(errs))
	copy(sorted, errs)
	sort.Float64s(sorted)
	sum := tensor.Sum(sorted)
	return Summary{
		Median: Percentile(sorted, 50),
		P90:    Percentile(sorted, 90),
		P95:    Percentile(sorted, 95),
		P99:    Percentile(sorted, 99),
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
		N:      len(sorted),
	}
}

// Percentile returns the p-th percentile (0-100) of pre-sorted values using
// linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if hi >= len(sorted) {
		hi = len(sorted) - 1
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Row formats the summary as a paper-style table row.
func (s Summary) Row(name string) string {
	return fmt.Sprintf("%-18s %8s %8s %8s %8s %9s %8s",
		name, fmtErr(s.Median), fmtErr(s.P90), fmtErr(s.P95),
		fmtErr(s.P99), fmtErr(s.Max), fmtErr(s.Mean))
}

// Header returns the column header matching Row.
func Header(label string) string {
	return fmt.Sprintf("%-18s %8s %8s %8s %8s %9s %8s",
		label, "median", "90th", "95th", "99th", "max", "mean")
}

func fmtErr(v float64) string {
	switch {
	case v == 0:
		return "-"
	case v >= 1e5:
		return fmt.Sprintf("%.2e", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// BoxStats holds box-plot statistics (Figure 9): quartiles plus whiskers at
// 1.5 IQR clamped to the data range.
type BoxStats struct {
	P25, P50, P75    float64
	WhiskLo, WhiskHi float64
	Lo, Hi           float64
}

// Box computes box-plot statistics over errors.
func Box(errs []float64) BoxStats {
	if len(errs) == 0 {
		return BoxStats{}
	}
	sorted := make([]float64, len(errs))
	copy(sorted, errs)
	sort.Float64s(sorted)
	b := BoxStats{
		P25: Percentile(sorted, 25),
		P50: Percentile(sorted, 50),
		P75: Percentile(sorted, 75),
		Lo:  sorted[0],
		Hi:  sorted[len(sorted)-1],
	}
	iqr := b.P75 - b.P25
	b.WhiskLo = math.Max(b.Lo, b.P25-1.5*iqr)
	b.WhiskHi = math.Min(b.Hi, b.P75+1.5*iqr)
	return b
}

// Render draws a rough ASCII box plot on a log scale, for terminal reports.
func (b BoxStats) Render(name string, width int) string {
	if width < 20 {
		width = 40
	}
	if b.Hi <= 0 {
		return fmt.Sprintf("%-18s (no data)", name)
	}
	logPos := func(v float64) int {
		if v < 1 {
			v = 1
		}
		maxLog := math.Log10(math.Max(b.Hi, 10))
		p := int(math.Log10(v) / maxLog * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	row := make([]byte, width)
	for i := range row {
		row[i] = ' '
	}
	for i := logPos(b.WhiskLo); i <= logPos(b.WhiskHi); i++ {
		row[i] = '-'
	}
	for i := logPos(b.P25); i <= logPos(b.P75); i++ {
		row[i] = '='
	}
	row[logPos(b.P50)] = '|'
	return fmt.Sprintf("%-18s [%s] p25=%.1f p50=%.1f p75=%.1f max=%.0f",
		name, string(row), b.P25, b.P50, b.P75, b.Hi)
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// FormatTable joins header and rows for terminal output.
func FormatTable(title, label string, rows []string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	b.WriteString(Header(label))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}
