package schema

import "testing"

func tinySchema(t *testing.T) *Schema {
	t.Helper()
	tables := []*Table{
		{Name: "a", PrimaryKey: "id", Columns: []Column{
			{Name: "id", Type: IntCol},
			{Name: "x", Type: IntCol, Predicable: true},
			{Name: "s", Type: StringCol, Predicable: true},
		}},
		{Name: "b", PrimaryKey: "id", Columns: []Column{
			{Name: "id", Type: IntCol},
			{Name: "a_id", Type: IntCol},
		}},
		{Name: "c", PrimaryKey: "id", Columns: []Column{
			{Name: "id", Type: IntCol},
		}},
	}
	indexes := []*Index{
		{Name: "a_pkey", Table: "a", Column: "id"},
		{Name: "b_a_id", Table: "b", Column: "a_id"},
	}
	joins := []JoinEdge{
		{FKTable: "b", FKColumn: "a_id", PKTable: "a", PKColumn: "id"},
	}
	s, err := New(tables, indexes, joins)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidSchema(t *testing.T) {
	s := tinySchema(t)
	if s.NumTables() != 3 || s.NumColumns() != 6 || s.NumIndexes() != 2 {
		t.Fatalf("sizes: tables=%d cols=%d idx=%d", s.NumTables(), s.NumColumns(), s.NumIndexes())
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	mk := func(name string) *Table {
		return &Table{Name: name, PrimaryKey: "id", Columns: []Column{{Name: "id", Type: IntCol}}}
	}
	if _, err := New([]*Table{mk("a"), mk("a")}, nil, nil); err == nil {
		t.Error("duplicate table accepted")
	}
	bad := &Table{Name: "a", PrimaryKey: "nope", Columns: []Column{{Name: "id", Type: IntCol}}}
	if _, err := New([]*Table{bad}, nil, nil); err == nil {
		t.Error("missing primary key column accepted")
	}
	if _, err := New([]*Table{mk("a")}, []*Index{{Name: "i", Table: "zzz", Column: "id"}}, nil); err == nil {
		t.Error("index on unknown table accepted")
	}
	if _, err := New([]*Table{mk("a")}, nil,
		[]JoinEdge{{FKTable: "a", FKColumn: "nope", PKTable: "a", PKColumn: "id"}}); err == nil {
		t.Error("join on unknown column accepted")
	}
	dup := &Table{Name: "d", PrimaryKey: "id", Columns: []Column{
		{Name: "id", Type: IntCol}, {Name: "id", Type: IntCol}}}
	if _, err := New([]*Table{dup}, nil, nil); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestLookups(t *testing.T) {
	s := tinySchema(t)
	if s.TableID("a") != 0 || s.TableID("c") != 2 || s.TableID("zzz") != -1 {
		t.Error("TableID wrong")
	}
	id := s.ColumnID("a", "x")
	if id < 0 {
		t.Fatal("ColumnID missing")
	}
	col := s.ColumnByID(id)
	if col.Table != "a" || col.Name != "x" {
		t.Error("ColumnByID wrong")
	}
	if s.ColumnID("a", "nope") != -1 {
		t.Error("unknown column should be -1")
	}
	if s.IndexID("b_a_id") < 0 || s.IndexID("zzz") != -1 {
		t.Error("IndexID wrong")
	}
	if s.IndexOn("b", "a_id") == nil || s.IndexOn("a", "x") != nil {
		t.Error("IndexOn wrong")
	}
	if s.Table("b").Column("a_id") == nil {
		t.Error("Table/Column accessors wrong")
	}
}

func TestJoinGraph(t *testing.T) {
	s := tinySchema(t)
	if len(s.JoinsOf("a")) != 1 || len(s.JoinsOf("c")) != 0 {
		t.Error("JoinsOf wrong")
	}
	if s.JoinBetween("a", "b") == nil || s.JoinBetween("b", "a") == nil {
		t.Error("JoinBetween must be symmetric")
	}
	if s.JoinBetween("a", "c") != nil {
		t.Error("phantom join")
	}
	if !s.ConnectedSubset([]string{"a", "b"}) {
		t.Error("a-b should be connected")
	}
	if s.ConnectedSubset([]string{"a", "c"}) {
		t.Error("a-c should be disconnected")
	}
	if !s.ConnectedSubset([]string{"c"}) {
		t.Error("singleton should be connected")
	}
	if s.ConnectedSubset(nil) {
		t.Error("empty set should not be connected")
	}
}

func TestPredicableColumns(t *testing.T) {
	s := tinySchema(t)
	cols := s.PredicableColumns("a")
	if len(cols) != 2 || cols[0].Name != "s" || cols[1].Name != "x" {
		t.Fatalf("PredicableColumns = %v (want sorted s, x)", cols)
	}
	if s.PredicableColumns("zzz") != nil {
		t.Error("unknown table should return nil")
	}
}

func TestJoinEdgeString(t *testing.T) {
	e := JoinEdge{FKTable: "b", FKColumn: "a_id", PKTable: "a", PKColumn: "id"}
	if e.String() != "b.a_id = a.id" {
		t.Errorf("String = %q", e.String())
	}
}
