// Package schema defines the logical database schema the estimator operates
// over: tables, typed columns, primary-key indexes and the PK-FK join graph.
// It also assigns the stable integer ids that the one-hot feature encodings
// (Section 4.1 of the paper) are built from.
package schema

import (
	"fmt"
	"sort"
)

// ColType is the type of a column.
type ColType int

// Column types. The paper's feature encoding distinguishes numeric operands
// (normalized floats) from string operands (learned embeddings).
const (
	IntCol ColType = iota
	StringCol
)

func (t ColType) String() string {
	if t == IntCol {
		return "int"
	}
	return "string"
}

// Column describes one column of a table.
type Column struct {
	Table string
	Name  string
	Type  ColType
	// Predicable marks columns the workload generators may place filter
	// predicates on (id/FK columns participate in joins instead).
	Predicable bool
}

// QualifiedName returns "table.column".
func (c Column) QualifiedName() string { return c.Table + "." + c.Name }

// Table describes one table.
type Table struct {
	Name       string
	Columns    []Column
	PrimaryKey string // column name; "" if none
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return &t.Columns[i]
		}
	}
	return nil
}

// Index describes a secondary or primary-key index on a single column.
type Index struct {
	Name   string
	Table  string
	Column string
}

// JoinEdge is a PK-FK join relationship: fkTable.fkColumn = pkTable.pkColumn.
type JoinEdge struct {
	FKTable, FKColumn string
	PKTable, PKColumn string
}

// String renders the edge as a join condition.
func (e JoinEdge) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", e.FKTable, e.FKColumn, e.PKTable, e.PKColumn)
}

// Schema is the complete logical schema plus the id spaces used by one-hot
// encoders.
type Schema struct {
	Tables  []*Table
	Indexes []*Index
	Joins   []JoinEdge

	tableByName map[string]*Table
	tableID     map[string]int
	columnID    map[string]int // key: table.column
	indexID     map[string]int
	columns     []Column // flattened, in id order
}

// New assembles a schema and freezes its id spaces. Tables keep their given
// order (ids follow it); columns are numbered table-by-table.
func New(tables []*Table, indexes []*Index, joins []JoinEdge) (*Schema, error) {
	s := &Schema{
		Tables:      tables,
		Indexes:     indexes,
		Joins:       joins,
		tableByName: make(map[string]*Table, len(tables)),
		tableID:     make(map[string]int, len(tables)),
		columnID:    make(map[string]int),
		indexID:     make(map[string]int, len(indexes)),
	}
	for i, t := range tables {
		if _, dup := s.tableByName[t.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate table %q", t.Name)
		}
		s.tableByName[t.Name] = t
		s.tableID[t.Name] = i
		for j := range t.Columns {
			c := &t.Columns[j]
			c.Table = t.Name
			key := c.QualifiedName()
			if _, dup := s.columnID[key]; dup {
				return nil, fmt.Errorf("schema: duplicate column %q", key)
			}
			s.columnID[key] = len(s.columns)
			s.columns = append(s.columns, *c)
		}
		if t.PrimaryKey != "" && t.Column(t.PrimaryKey) == nil {
			return nil, fmt.Errorf("schema: table %q primary key %q not a column", t.Name, t.PrimaryKey)
		}
	}
	for i, idx := range indexes {
		tab := s.tableByName[idx.Table]
		if tab == nil {
			return nil, fmt.Errorf("schema: index %q on unknown table %q", idx.Name, idx.Table)
		}
		if tab.Column(idx.Column) == nil {
			return nil, fmt.Errorf("schema: index %q on unknown column %s.%s", idx.Name, idx.Table, idx.Column)
		}
		if _, dup := s.indexID[idx.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate index %q", idx.Name)
		}
		s.indexID[idx.Name] = i
	}
	for _, j := range joins {
		for _, ref := range [][2]string{{j.FKTable, j.FKColumn}, {j.PKTable, j.PKColumn}} {
			tab := s.tableByName[ref[0]]
			if tab == nil || tab.Column(ref[1]) == nil {
				return nil, fmt.Errorf("schema: join %v references unknown column %s.%s", j, ref[0], ref[1])
			}
		}
	}
	return s, nil
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table { return s.tableByName[name] }

// NumTables returns the size of the table one-hot space.
func (s *Schema) NumTables() int { return len(s.Tables) }

// NumColumns returns the size of the column one-hot space.
func (s *Schema) NumColumns() int { return len(s.columns) }

// NumIndexes returns the size of the index one-hot space.
func (s *Schema) NumIndexes() int { return len(s.Indexes) }

// TableID returns the one-hot id of a table; -1 if unknown.
func (s *Schema) TableID(name string) int {
	if id, ok := s.tableID[name]; ok {
		return id
	}
	return -1
}

// ColumnID returns the one-hot id of table.column; -1 if unknown.
func (s *Schema) ColumnID(table, column string) int {
	if id, ok := s.columnID[table+"."+column]; ok {
		return id
	}
	return -1
}

// ColumnByID returns the column with the given id.
func (s *Schema) ColumnByID(id int) Column { return s.columns[id] }

// IndexID returns the one-hot id of an index; -1 if unknown.
func (s *Schema) IndexID(name string) int {
	if id, ok := s.indexID[name]; ok {
		return id
	}
	return -1
}

// IndexOn returns the index covering table.column, or nil.
func (s *Schema) IndexOn(table, column string) *Index {
	for _, idx := range s.Indexes {
		if idx.Table == table && idx.Column == column {
			return idx
		}
	}
	return nil
}

// JoinsOf returns every join edge touching the given table.
func (s *Schema) JoinsOf(table string) []JoinEdge {
	var out []JoinEdge
	for _, j := range s.Joins {
		if j.FKTable == table || j.PKTable == table {
			out = append(out, j)
		}
	}
	return out
}

// JoinBetween returns the edge joining tables a and b (in either direction),
// or nil if they are not adjacent in the join graph.
func (s *Schema) JoinBetween(a, b string) *JoinEdge {
	for i := range s.Joins {
		j := &s.Joins[i]
		if (j.FKTable == a && j.PKTable == b) || (j.FKTable == b && j.PKTable == a) {
			return j
		}
	}
	return nil
}

// ConnectedSubset reports whether the given tables form a connected subgraph
// of the join graph (a requirement for generated queries, Section 4.3).
func (s *Schema) ConnectedSubset(tables []string) bool {
	if len(tables) == 0 {
		return false
	}
	if len(tables) == 1 {
		return s.Table(tables[0]) != nil
	}
	in := make(map[string]bool, len(tables))
	for _, t := range tables {
		in[t] = true
	}
	seen := map[string]bool{tables[0]: true}
	frontier := []string{tables[0]}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, j := range s.JoinsOf(cur) {
			other := j.FKTable
			if other == cur {
				other = j.PKTable
			}
			if in[other] && !seen[other] {
				seen[other] = true
				frontier = append(frontier, other)
			}
		}
	}
	return len(seen) == len(tables)
}

// PredicableColumns returns the predicate-eligible columns of a table,
// sorted by name for determinism.
func (s *Schema) PredicableColumns(table string) []Column {
	t := s.Table(table)
	if t == nil {
		return nil
	}
	var out []Column
	for _, c := range t.Columns {
		if c.Predicable {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
