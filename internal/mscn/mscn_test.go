package mscn

import (
	"math"
	"testing"

	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/nn"
	"costest/internal/pg"
	"costest/internal/planner"
	"costest/internal/stats"
	"costest/internal/workload"
)

var (
	testDB  = dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.02})
	testCat = stats.Collect(testDB, stats.Options{Buckets: 30, SampleSize: 48, Seed: 1})
	testEng = exec.NewEngine(testDB)
	testPl  = planner.New(pg.New(testCat), testDB.Schema)
)

func trainingSamples(t *testing.T, m *Model, n int) []*Sample {
	t.Helper()
	qs := workload.TrainingNumeric(testDB, 17, n)
	lab := &workload.Labeler{Planner: testPl, Engine: testEng}
	labeled := lab.Label(qs)
	var out []*Sample
	for _, l := range labeled {
		f, err := m.Featurize(l.Query)
		if err != nil {
			t.Fatalf("featurize: %v", err)
		}
		out = append(out, &Sample{F: f, Target: l.Card})
	}
	if len(out) < n/2 {
		t.Fatalf("only %d samples", len(out))
	}
	return out
}

func TestFeaturizeShapes(t *testing.T) {
	m := New(Config{Hidden: 16, SampleBitmap: true, LearnRate: 0.001, GradClip: 5, Seed: 1}, testCat)
	qs := workload.TrainingNumeric(testDB, 3, 10)
	for _, q := range qs {
		f, err := m.Featurize(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Tables) != len(q.Tables) {
			t.Fatalf("table set size %d, want %d", len(f.Tables), len(q.Tables))
		}
		if len(f.Joins) == 0 || len(f.Preds) == 0 {
			t.Fatal("empty sets must be zero-padded")
		}
		for _, v := range f.Tables {
			if len(v) != m.tableDim {
				t.Fatal("table vector dim wrong")
			}
		}
	}
}

func TestSampleBitmapChangesDim(t *testing.T) {
	with := New(Config{Hidden: 8, SampleBitmap: true, Seed: 1}, testCat)
	without := New(Config{Hidden: 8, SampleBitmap: false, Seed: 1}, testCat)
	if with.tableDim != without.tableDim+testCat.SampleSize {
		t.Fatalf("dims %d vs %d", with.tableDim, without.tableDim)
	}
}

func TestTrainingImprovesCardEstimates(t *testing.T) {
	m := New(Config{Hidden: 24, SampleBitmap: true, LearnRate: 0.005, GradClip: 5, Seed: 2}, testCat)
	samples := trainingSamples(t, m, 60)
	cut := len(samples) * 8 / 10
	tr := NewTrainer(m)
	hist := tr.Fit(samples[:cut], samples[cut:], 15, 16)
	if hist[len(hist)-1].TrainLoss >= hist[0].TrainLoss {
		t.Fatalf("loss did not decrease: %g -> %g", hist[0].TrainLoss, hist[len(hist)-1].TrainLoss)
	}
	final := hist[len(hist)-1].ValidQ
	if math.IsNaN(final) || final <= 0 {
		t.Fatalf("invalid validation error %g", final)
	}
}

func TestEstimatePositive(t *testing.T) {
	m := New(Config{Hidden: 8, SampleBitmap: true, Seed: 3}, testCat)
	qs := workload.TrainingNumeric(testDB, 5, 5)
	for _, q := range qs {
		est, err := m.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		if est <= 0 || math.IsNaN(est) {
			t.Fatalf("estimate %g", est)
		}
	}
}

func TestBatchMatchesSequential(t *testing.T) {
	m := New(Config{Hidden: 16, SampleBitmap: true, Seed: 4}, testCat)
	qs := workload.TrainingNumeric(testDB, 7, 12)
	var fs []*Features
	for _, q := range qs {
		f, err := m.Featurize(q)
		if err != nil {
			t.Fatal(err)
		}
		fs = append(fs, f)
	}
	batch := m.EstimateBatch(fs, 4)
	for i, f := range fs {
		seq := m.EstimateFeatures(f)
		if math.Abs(batch[i]-seq) > 1e-9*math.Max(1, seq) {
			t.Fatalf("batch[%d]=%g, sequential=%g", i, batch[i], seq)
		}
	}
}

// MSCN gradient check through pooling.
func TestMSCNGradCheck(t *testing.T) {
	m := New(Config{Hidden: 6, SampleBitmap: false, LearnRate: 0.001, GradClip: 100, Seed: 5}, testCat)
	qs := workload.TrainingNumeric(testDB, 9, 4)
	f, err := m.Featurize(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	s := &Sample{F: f, Target: 1234}
	tr := NewTrainer(m)
	tr.FitNormalizer([]*Sample{s, {F: f, Target: 1}})
	// Use the smooth MSLE loss for finite-difference comparison.
	tr.loss = nn.MSLELoss{Norm: m.Norm}

	objective := func() float64 {
		l, _ := tr.loss.Eval(m.forward(f), s.Target)
		return l
	}
	m.PS.ZeroGrad()
	tr.step(s)
	checked, failed := 0, 0
	for _, p := range m.PS.Params() {
		stride := len(p.Value)/5 + 1
		for i := 0; i < len(p.Value); i += stride {
			orig := p.Value[i]
			const h = 1e-6
			p.Value[i] = orig + h
			up := objective()
			p.Value[i] = orig - h
			down := objective()
			p.Value[i] = orig
			want := (up - down) / (2 * h)
			if math.Abs(p.Grad[i]-want) > 1e-4*math.Max(1, math.Abs(want)) {
				failed++
			}
			checked++
		}
	}
	if failed > checked/30 {
		t.Fatalf("%d/%d MSCN gradient checks failed", failed, checked)
	}
}

func TestStatelessForwardMatchesStateful(t *testing.T) {
	m := New(Config{Hidden: 12, SampleBitmap: true, Seed: 6}, testCat)
	qs := workload.TrainingNumeric(testDB, 11, 5)
	for _, q := range qs {
		f, err := m.Featurize(q)
		if err != nil {
			t.Fatal(err)
		}
		a := m.forward(f)
		b := m.forwardStateless(f)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("stateless %g != stateful %g", b, a)
		}
	}
}
