package mscn

import (
	"math/rand"

	"costest/internal/nn"
)

// Trainer optimizes an MSCN model with q-error loss and Adam.
type Trainer struct {
	M    *Model
	Opt  *nn.Adam
	rng  *rand.Rand
	loss nn.Loss
}

// NewTrainer builds a trainer for the model.
func NewTrainer(m *Model) *Trainer {
	return &Trainer{M: m, Opt: nn.NewAdam(m.Cfg.LearnRate),
		rng: rand.New(rand.NewSource(m.Cfg.Seed + 77))}
}

// FitNormalizer fits the target normalizer on training targets.
func (t *Trainer) FitNormalizer(samples []*Sample) {
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = s.Target
	}
	t.M.Norm = nn.NewNormalizer(vals)
	t.loss = nn.QErrorLoss{Norm: t.M.Norm, GradClip: 50}
}

// TrainEpoch runs one shuffled epoch, returning the mean q-error loss.
func (t *Trainer) TrainEpoch(samples []*Sample, batchSize int) float64 {
	if t.loss == nil {
		t.FitNormalizer(samples)
	}
	if batchSize <= 0 {
		batchSize = 32
	}
	idx := t.rng.Perm(len(samples))
	var total float64
	for start := 0; start < len(idx); start += batchSize {
		end := start + batchSize
		if end > len(idx) {
			end = len(idx)
		}
		t.M.PS.ZeroGrad()
		for _, i := range idx[start:end] {
			total += t.step(samples[i])
		}
		t.M.PS.ClipGradNorm(t.M.Cfg.GradClip * float64(end-start))
		t.Opt.Step(t.M.PS)
	}
	return total / float64(len(samples))
}

// step accumulates gradients for one sample and returns its loss.
func (t *Trainer) step(s *Sample) float64 {
	m := t.M
	h := m.Cfg.Hidden
	concat := make([]float64, 3*h)
	poolInto(concat[0:h], m.tableNet, s.F.Tables)
	poolInto(concat[h:2*h], m.joinNet, s.F.Joins)
	poolInto(concat[2*h:], m.predNet, s.F.Preds)
	out := []float64{0}
	m.outNet.Forward(out, concat)

	loss, grad := t.loss.Eval(out[0], s.Target)

	dConcat := make([]float64, 3*h)
	m.outNet.Backward(dConcat, []float64{grad})

	// Average pooling distributes the gradient uniformly over set elements;
	// each element is re-forwarded to restore the MLP caches before its
	// backward pass.
	backPool(m.tableNet, s.F.Tables, dConcat[0:h])
	backPool(m.joinNet, s.F.Joins, dConcat[h:2*h])
	backPool(m.predNet, s.F.Preds, dConcat[2*h:])
	return loss
}

func backPool(net *nn.MLP, set [][]float64, d []float64) {
	inv := 1 / float64(len(set))
	dElem := make([]float64, len(d))
	for i := range d {
		dElem[i] = d[i] * inv
	}
	tmp := make([]float64, len(d))
	for _, x := range set {
		net.Forward(tmp, x)
		net.Backward(nil, dElem)
	}
}

// EpochStats mirrors core.EpochStats for validation-curve reporting.
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	ValidQ    float64
}

// Fit trains for the given epochs, tracking mean validation q-error.
func (t *Trainer) Fit(train, valid []*Sample, epochs, batchSize int) []EpochStats {
	t.FitNormalizer(train)
	hist := make([]EpochStats, 0, epochs)
	for e := 0; e < epochs; e++ {
		loss := t.TrainEpoch(train, batchSize)
		hist = append(hist, EpochStats{Epoch: e, TrainLoss: loss, ValidQ: t.M.ValidationError(valid)})
	}
	return hist
}

// ValidationError returns the mean q-error over samples.
func (m *Model) ValidationError(samples []*Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		est := m.EstimateFeatures(s.F)
		sum += nn.QError(est, s.Target)
	}
	return sum / float64(len(samples))
}
