// Package mscn implements the multi-set convolutional network baseline
// (Kipf et al., CIDR 2019) the paper compares against: per-set MLPs over
// table, join and predicate feature sets, average pooling per set, and a
// final MLP with sigmoid output predicting one normalized target
// (cardinality or cost). Variants with and without the per-table sample
// bitmap reproduce the paper's MSCNCard / MSCNNSCard ladder.
package mscn

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"costest/internal/nn"
	"costest/internal/query"
	"costest/internal/sqlpred"
	"costest/internal/stats"
)

// Config holds MSCN hyperparameters.
type Config struct {
	Hidden       int
	SampleBitmap bool
	LearnRate    float64
	GradClip     float64
	Seed         int64
}

// DefaultConfig mirrors the published MSCN setup at reduced width.
func DefaultConfig() Config {
	return Config{Hidden: 64, SampleBitmap: true, LearnRate: 0.001, GradClip: 5, Seed: 1}
}

// Features is one query's set-structured featurization.
type Features struct {
	Tables [][]float64
	Joins  [][]float64
	Preds  [][]float64
}

// Sample pairs features with a training target (cardinality or cost).
type Sample struct {
	F      *Features
	Target float64
}

// Model is the MSCN network.
type Model struct {
	Cfg Config
	Cat *stats.Catalog
	PS  *nn.ParamSet

	tableNet *nn.MLP
	joinNet  *nn.MLP
	predNet  *nn.MLP
	outNet   *nn.MLP

	Norm nn.Normalizer

	tableDim, joinDim, predDim int
}

// New builds an MSCN model over the catalog's schema.
func New(cfg Config, cat *stats.Catalog) *Model {
	if cfg.Hidden <= 0 {
		cfg.Hidden = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ps := nn.NewParamSet()
	s := cat.DB.Schema
	m := &Model{Cfg: cfg, Cat: cat, PS: ps}
	m.tableDim = s.NumTables()
	if cfg.SampleBitmap {
		m.tableDim += cat.SampleSize
	}
	m.joinDim = len(s.Joins)
	m.predDim = s.NumColumns() + int(sqlpred.NumOps) + 1

	h := cfg.Hidden
	m.tableNet = nn.NewMLP(ps, "mscn.table", []int{m.tableDim, h, h}, nn.ActReLU, rng)
	m.joinNet = nn.NewMLP(ps, "mscn.join", []int{m.joinDim, h, h}, nn.ActReLU, rng)
	m.predNet = nn.NewMLP(ps, "mscn.pred", []int{m.predDim, h, h}, nn.ActReLU, rng)
	m.outNet = nn.NewMLP(ps, "mscn.out", []int{3 * h, h, 1}, nn.ActSigmoid, rng)
	m.Norm = nn.NewNormalizer([]float64{1, 1e8})
	return m
}

// Featurize converts a query into MSCN's set representation. Only numeric
// atoms enter the predicate set (MSCN does not model string predicates or
// disjunctions — a limitation the paper's tree model removes).
func (m *Model) Featurize(q *query.Query) (*Features, error) {
	s := m.Cat.DB.Schema
	f := &Features{}
	for _, t := range q.Tables {
		vec := make([]float64, m.tableDim)
		id := s.TableID(t)
		if id < 0 {
			return nil, fmt.Errorf("mscn: unknown table %q", t)
		}
		vec[id] = 1
		if m.Cfg.SampleBitmap {
			bm, err := m.Cat.SampleBitmap(t, q.Filter(t))
			if err != nil {
				return nil, err
			}
			copy(vec[s.NumTables():], bm)
		}
		f.Tables = append(f.Tables, vec)
	}
	for _, j := range q.Joins {
		vec := make([]float64, m.joinDim)
		found := false
		for i, e := range s.Joins {
			if (e.FKTable == j.Left.Table && e.FKColumn == j.Left.Column &&
				e.PKTable == j.Right.Table && e.PKColumn == j.Right.Column) ||
				(e.FKTable == j.Right.Table && e.FKColumn == j.Right.Column &&
					e.PKTable == j.Left.Table && e.PKColumn == j.Left.Column) {
				vec[i] = 1
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("mscn: join %v not in schema join vocabulary", j)
		}
		f.Joins = append(f.Joins, vec)
	}
	for _, t := range q.Tables {
		sqlpred.Walk(q.Filter(t), func(a *sqlpred.Atom) {
			if a.IsStr {
				return
			}
			vec := make([]float64, m.predDim)
			if id := s.ColumnID(a.Table, a.Column); id >= 0 {
				vec[id] = 1
			}
			vec[s.NumColumns()+int(a.Op)] = 1
			vec[s.NumColumns()+int(sqlpred.NumOps)] = m.Cat.NormalizeNumeric(a.Table, a.Column, a.NumVal)
			f.Preds = append(f.Preds, vec)
		})
	}
	// Empty sets are represented by a single zero element so pooling stays
	// well-defined (MSCN's zero-padding).
	if len(f.Joins) == 0 {
		f.Joins = append(f.Joins, make([]float64, m.joinDim))
	}
	if len(f.Preds) == 0 {
		f.Preds = append(f.Preds, make([]float64, m.predDim))
	}
	return f, nil
}

// forward computes the sigmoid output for one featurized query.
func (m *Model) forward(f *Features) float64 {
	h := m.Cfg.Hidden
	concat := make([]float64, 3*h)
	poolInto(concat[0:h], m.tableNet, f.Tables)
	poolInto(concat[h:2*h], m.joinNet, f.Joins)
	poolInto(concat[2*h:], m.predNet, f.Preds)
	out := []float64{0}
	m.outNet.Forward(out, concat)
	return out[0]
}

func poolInto(dst []float64, net *nn.MLP, set [][]float64) {
	tmp := make([]float64, len(dst))
	for _, x := range set {
		net.Forward(tmp, x)
		for i := range dst {
			dst[i] += tmp[i]
		}
	}
	inv := 1 / float64(len(set))
	for i := range dst {
		dst[i] *= inv
	}
}

// Estimate returns the denormalized prediction for a query.
func (m *Model) Estimate(q *query.Query) (float64, error) {
	f, err := m.Featurize(q)
	if err != nil {
		return 0, err
	}
	return m.Norm.Denormalize(m.forward(f)), nil
}

// EstimateFeatures returns the denormalized prediction for pre-built
// features (used by the batch path and the efficiency benchmark).
func (m *Model) EstimateFeatures(f *Features) float64 {
	return m.Norm.Denormalize(m.forward(f))
}

// EstimateBatch evaluates many featurized queries in parallel — the "Batch"
// variant of Table 12.
func (m *Model) EstimateBatch(fs []*Features, workers int) []float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]float64, len(fs))
	var wg sync.WaitGroup
	chunk := (len(fs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(fs) {
			hi = len(fs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Each worker uses a private forward buffer by cloning nothing:
			// MLP forward caches are not thread-safe, so batch workers
			// evaluate through a lightweight stateless path.
			for i := lo; i < hi; i++ {
				out[i] = m.Norm.Denormalize(m.forwardStateless(fs[i]))
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// forwardStateless evaluates without touching the shared MLP caches, making
// concurrent inference safe.
func (m *Model) forwardStateless(f *Features) float64 {
	h := m.Cfg.Hidden
	concat := make([]float64, 3*h)
	statelessPool(concat[0:h], m.tableNet, f.Tables)
	statelessPool(concat[h:2*h], m.joinNet, f.Joins)
	statelessPool(concat[2*h:], m.predNet, f.Preds)
	return statelessMLP(m.outNet, concat)
}

func statelessPool(dst []float64, net *nn.MLP, set [][]float64) {
	for _, x := range set {
		cur := x
		for li, l := range net.Layers {
			next := make([]float64, l.Out)
			l.Forward(next, cur)
			if li < len(net.Layers)-1 || net.OutAct == nn.ActReLU {
				nn.ReLU(next, next)
			} else if net.OutAct == nn.ActSigmoid {
				nn.Sigmoid(next, next)
			}
			cur = next
		}
		for i := range dst {
			dst[i] += cur[i]
		}
	}
	inv := 1 / float64(len(set))
	for i := range dst {
		dst[i] *= inv
	}
}

func statelessMLP(net *nn.MLP, x []float64) float64 {
	cur := x
	for li, l := range net.Layers {
		next := make([]float64, l.Out)
		l.Forward(next, cur)
		if li < len(net.Layers)-1 || net.OutAct == nn.ActReLU {
			nn.ReLU(next, next)
		} else if net.OutAct == nn.ActSigmoid {
			nn.Sigmoid(next, next)
		}
		cur = next
	}
	return cur[0]
}
