// Package query defines the logical query specification produced by the
// workload generators and consumed by the planner: a connected set of
// tables, the PK-FK join conditions linking them, per-table filter
// predicates, and the aggregate projection list (Section 4.3's generated
// queries: SELECT MIN/MAX/COUNT ... FROM ... WHERE joins AND predicates).
package query

import (
	"fmt"
	"strings"

	"costest/internal/plan"
	"costest/internal/sqlpred"
)

// Query is a logical select-project-join-aggregate query.
type Query struct {
	Tables  []string
	Joins   []plan.JoinCond
	Filters map[string]sqlpred.Pred // keyed by table
	Aggs    []plan.AggSpec
}

// Filter returns the predicate on a table (nil if none).
func (q *Query) Filter(table string) sqlpred.Pred {
	if q.Filters == nil {
		return nil
	}
	return q.Filters[table]
}

// NumJoins returns the number of join conditions.
func (q *Query) NumJoins() int { return len(q.Joins) }

// SQL renders the query as SQL text (for logs and examples).
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(q.Aggs) == 0 {
		b.WriteString("*")
	} else {
		parts := make([]string, len(q.Aggs))
		for i, a := range q.Aggs {
			if a.Func == plan.AggCount && a.Col.Table == "" {
				parts[i] = "COUNT(*)"
			} else {
				parts[i] = fmt.Sprintf("%s(%s)", a.Func, a.Col)
			}
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(q.Tables, ", "))
	var conds []string
	for _, j := range q.Joins {
		conds = append(conds, j.String())
	}
	for _, t := range q.Tables {
		if f := q.Filter(t); f != nil {
			conds = append(conds, f.String())
		}
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	b.WriteString(";")
	return b.String()
}

// Validate checks structural consistency: every join side and every filter
// references a listed table.
func (q *Query) Validate() error {
	in := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		if in[t] {
			return fmt.Errorf("query: duplicate table %q", t)
		}
		in[t] = true
	}
	for _, j := range q.Joins {
		if !in[j.Left.Table] || !in[j.Right.Table] {
			return fmt.Errorf("query: join %v references unlisted table", j)
		}
	}
	for t, f := range q.Filters {
		if !in[t] {
			return fmt.Errorf("query: filter on unlisted table %q", t)
		}
		bad := false
		sqlpred.Walk(f, func(a *sqlpred.Atom) {
			if a.Table != t {
				bad = true
			}
		})
		if bad {
			return fmt.Errorf("query: filter keyed %q references another table", t)
		}
	}
	if len(q.Tables) > 1 && len(q.Joins) < len(q.Tables)-1 {
		return fmt.Errorf("query: %d tables but only %d joins", len(q.Tables), len(q.Joins))
	}
	return nil
}
