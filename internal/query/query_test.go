package query

import (
	"strings"
	"testing"

	"costest/internal/plan"
	"costest/internal/sqlpred"
)

var mcTitle = plan.JoinCond{
	Left:  plan.ColRef{Table: "movie_companies", Column: "movie_id"},
	Right: plan.ColRef{Table: "title", Column: "id"},
}

func validQuery() *Query {
	return &Query{
		Tables: []string{"movie_companies", "title"},
		Joins:  []plan.JoinCond{mcTitle},
		Filters: map[string]sqlpred.Pred{
			"title": &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGt, NumVal: 2000},
		},
		Aggs: []plan.AggSpec{{Func: plan.AggCount}},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validQuery().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Query)
	}{
		{"duplicate table", func(q *Query) { q.Tables = []string{"title", "title"} }},
		{"join on unlisted table", func(q *Query) { q.Tables = []string{"title"} }},
		{"filter on unlisted table", func(q *Query) {
			q.Filters["keyword"] = &sqlpred.Atom{Table: "keyword", Column: "keyword", Op: sqlpred.OpEq, IsStr: true}
		}},
		{"filter crossing tables", func(q *Query) {
			q.Filters["title"] = &sqlpred.Atom{Table: "movie_companies", Column: "note", Op: sqlpred.OpEq, IsStr: true}
		}},
		{"missing joins", func(q *Query) { q.Joins = nil }},
	}
	for _, c := range cases {
		q := validQuery()
		c.mod(q)
		if err := q.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestFilterAccessor(t *testing.T) {
	q := validQuery()
	if q.Filter("title") == nil {
		t.Error("title filter missing")
	}
	if q.Filter("movie_companies") != nil {
		t.Error("unexpected filter")
	}
	empty := &Query{Tables: []string{"title"}}
	if empty.Filter("title") != nil {
		t.Error("nil filter map must return nil")
	}
}

func TestNumJoins(t *testing.T) {
	if validQuery().NumJoins() != 1 {
		t.Error("NumJoins wrong")
	}
}

func TestSQLRendersAllClauses(t *testing.T) {
	sql := validQuery().SQL()
	for _, want := range []string{"SELECT COUNT(*)", "FROM movie_companies, title",
		"WHERE", "movie_companies.movie_id = title.id", "title.production_year > 2000"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q: %s", want, sql)
		}
	}
	if !strings.HasSuffix(sql, ";") {
		t.Error("SQL must end with a semicolon")
	}
}

func TestSQLStarProjection(t *testing.T) {
	q := validQuery()
	q.Aggs = nil
	if !strings.Contains(q.SQL(), "SELECT *") {
		t.Errorf("SQL = %s", q.SQL())
	}
}

func TestSQLNamedAggregates(t *testing.T) {
	q := validQuery()
	q.Aggs = []plan.AggSpec{
		{Func: plan.AggMin, Col: plan.ColRef{Table: "title", Column: "production_year"}},
		{Func: plan.AggMax, Col: plan.ColRef{Table: "title", Column: "episode_nr"}},
	}
	sql := q.SQL()
	if !strings.Contains(sql, "MIN(title.production_year)") || !strings.Contains(sql, "MAX(title.episode_nr)") {
		t.Errorf("SQL = %s", sql)
	}
}
