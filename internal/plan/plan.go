// Package plan defines the physical query-plan algebra the estimators
// operate on: scans, joins, sorts and aggregates arranged in a binary tree,
// mirroring the plan operations the paper extracts from PostgreSQL (Table 1).
package plan

import (
	"fmt"
	"strings"

	"costest/internal/sqlpred"
)

// NodeType is a physical operator.
type NodeType int

// Physical operators (the paper's operation one-hot vocabulary).
const (
	SeqScan NodeType = iota
	IndexScan
	HashJoin
	MergeJoin
	NestedLoop
	Sort
	Aggregate
	NumNodeTypes // size of the operation one-hot space
)

var nodeTypeNames = [...]string{
	"Seq Scan", "Index Scan", "Hash Join", "Merge Join", "Nested Loop", "Sort", "Aggregate",
}

func (t NodeType) String() string {
	if int(t) < len(nodeTypeNames) {
		return nodeTypeNames[t]
	}
	return fmt.Sprintf("NodeType(%d)", int(t))
}

// IsJoin reports whether the operator combines two inputs.
func (t NodeType) IsJoin() bool {
	return t == HashJoin || t == MergeJoin || t == NestedLoop
}

// IsScan reports whether the operator reads a base table.
func (t NodeType) IsScan() bool { return t == SeqScan || t == IndexScan }

// ColRef names a column of a table.
type ColRef struct {
	Table, Column string
}

func (c ColRef) String() string { return c.Table + "." + c.Column }

// JoinCond is an equi-join condition left = right.
type JoinCond struct {
	Left, Right ColRef
}

func (j JoinCond) String() string { return j.Left.String() + " = " + j.Right.String() }

// AggFunc is an aggregate function.
type AggFunc int

// Aggregate functions used by the paper's generated projections
// (Section 4.3: MIN, MAX, COUNT).
const (
	AggMin AggFunc = iota
	AggMax
	AggCount
)

func (f AggFunc) String() string {
	switch f {
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "COUNT"
	}
}

// AggSpec is one output aggregate.
type AggSpec struct {
	Func AggFunc
	Col  ColRef // ignored for COUNT(*)
}

// Node is a physical plan node. Scans populate Table/Index/Filter; joins
// populate JoinCond; Sort populates SortKeys; Aggregate populates Aggs.
// Estimation annotations (Est*) are written by estimators and ground-truth
// annotations (True*) by the executor.
type Node struct {
	Type NodeType

	// Scan fields.
	Table  string
	Index  string       // index name for IndexScan
	Filter sqlpred.Pred // residual single-table filter evaluated at this node

	// IndexScan range/equality condition on the indexed column, when the
	// scan is driven by a filter. For the inner side of an index nested
	// loop the condition instead comes from the outer tuple at runtime
	// (ParamJoin is set on the scan).
	IndexCond *sqlpred.Atom
	ParamJoin *JoinCond // inner index scan parameterized by outer join key

	// Join fields.
	JoinCond *JoinCond

	// Sort fields.
	SortKeys []ColRef

	// Aggregate fields.
	Aggs []AggSpec

	Left, Right *Node

	// Estimates (filled by the estimator under evaluation).
	EstRows float64
	EstCost float64
	// Ground truth (filled by the executor).
	TrueRows float64
	TrueCost float64
}

// Tables returns the base tables covered by the subtree, in DFS order.
func (n *Node) Tables() []string {
	var out []string
	n.Walk(func(m *Node) {
		if m.Type.IsScan() {
			out = append(out, m.Table)
		}
	})
	return out
}

// Walk visits the subtree pre-order.
func (n *Node) Walk(f func(*Node)) {
	if n == nil {
		return
	}
	f(n)
	n.Left.Walk(f)
	n.Right.Walk(f)
}

// Count returns the number of nodes in the subtree.
func (n *Node) Count() int {
	c := 0
	n.Walk(func(*Node) { c++ })
	return c
}

// Depth returns the height of the subtree (leaf = 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// Signature returns a canonical string identifying the logical content of
// the subtree; the Representation Memory Pool (Section 3) keys on it.
func (n *Node) Signature() string {
	var b strings.Builder
	n.writeSignature(&b)
	return b.String()
}

func (n *Node) writeSignature(b *strings.Builder) {
	if n == nil {
		b.WriteByte('_')
		return
	}
	fmt.Fprintf(b, "%d[", int(n.Type))
	if n.Table != "" {
		b.WriteString(n.Table)
	}
	if n.Index != "" {
		b.WriteByte('/')
		b.WriteString(n.Index)
	}
	if n.Filter != nil {
		b.WriteByte('|')
		b.WriteString(n.Filter.String())
	}
	if n.IndexCond != nil {
		b.WriteByte('@')
		b.WriteString(n.IndexCond.String())
	}
	if n.ParamJoin != nil {
		b.WriteByte('#')
		b.WriteString(n.ParamJoin.String())
	}
	if n.JoinCond != nil {
		b.WriteString(n.JoinCond.String())
	}
	for _, k := range n.SortKeys {
		b.WriteString(k.String())
		b.WriteByte(',')
	}
	for _, a := range n.Aggs {
		b.WriteString(a.Func.String())
		b.WriteString(a.Col.String())
		b.WriteByte(',')
	}
	b.WriteByte(']')
	if n.Left != nil || n.Right != nil {
		b.WriteByte('(')
		n.Left.writeSignature(b)
		b.WriteByte(',')
		n.Right.writeSignature(b)
		b.WriteByte(')')
	}
}

// String renders the plan as an indented EXPLAIN-style tree.
func (n *Node) String() string {
	var b strings.Builder
	n.format(&b, 0)
	return b.String()
}

func (n *Node) format(b *strings.Builder, depth int) {
	if n == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Type.String())
	if n.Table != "" {
		fmt.Fprintf(b, " on %s", n.Table)
	}
	if n.Index != "" {
		fmt.Fprintf(b, " using %s", n.Index)
	}
	if n.JoinCond != nil {
		fmt.Fprintf(b, " (%s)", n.JoinCond)
	}
	if n.ParamJoin != nil {
		fmt.Fprintf(b, " [param %s]", n.ParamJoin)
	}
	if n.IndexCond != nil {
		fmt.Fprintf(b, " [cond %s]", n.IndexCond)
	}
	if n.Filter != nil {
		fmt.Fprintf(b, " filter: %s", n.Filter)
	}
	if n.TrueRows > 0 || n.EstRows > 0 {
		fmt.Fprintf(b, "  (est=%.0f real=%.0f)", n.EstRows, n.TrueRows)
	}
	b.WriteByte('\n')
	n.Left.format(b, depth+1)
	n.Right.format(b, depth+1)
}

// Clone deep-copies the plan tree (annotations included; predicates shared,
// as they are immutable).
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.Left = n.Left.Clone()
	c.Right = n.Right.Clone()
	return &c
}

// CardinalityNode returns the node whose output cardinality defines "the
// query's cardinality": the topmost non-aggregate, non-sort node. Aggregates
// always output one row, so query-level cardinality metrics (and the paper's
// card targets) are taken below them.
func (n *Node) CardinalityNode() *Node {
	cur := n
	for cur != nil && (cur.Type == Aggregate || cur.Type == Sort) {
		cur = cur.Left
	}
	if cur == nil {
		return n
	}
	return cur
}
