package plan

import (
	"strings"
	"testing"

	"costest/internal/sqlpred"
)

func sampleTree() *Node {
	return &Node{Type: Aggregate,
		Aggs: []AggSpec{{Func: AggCount}},
		Left: &Node{Type: HashJoin,
			JoinCond: &JoinCond{
				Left:  ColRef{Table: "movie_companies", Column: "movie_id"},
				Right: ColRef{Table: "title", Column: "id"},
			},
			Left: &Node{Type: SeqScan, Table: "movie_companies"},
			Right: &Node{Type: SeqScan, Table: "title",
				Filter: &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGt, NumVal: 2000}},
		},
	}
}

func TestNodeTypePredicates(t *testing.T) {
	if !HashJoin.IsJoin() || !MergeJoin.IsJoin() || !NestedLoop.IsJoin() {
		t.Error("join predicates wrong")
	}
	if SeqScan.IsJoin() || Aggregate.IsJoin() {
		t.Error("non-joins classified as joins")
	}
	if !SeqScan.IsScan() || !IndexScan.IsScan() {
		t.Error("scan predicates wrong")
	}
	if HashJoin.IsScan() {
		t.Error("join classified as scan")
	}
}

func TestNodeTypeStrings(t *testing.T) {
	names := map[NodeType]string{
		SeqScan: "Seq Scan", IndexScan: "Index Scan", HashJoin: "Hash Join",
		MergeJoin: "Merge Join", NestedLoop: "Nested Loop", Sort: "Sort", Aggregate: "Aggregate",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}

func TestWalkOrder(t *testing.T) {
	var order []NodeType
	sampleTree().Walk(func(n *Node) { order = append(order, n.Type) })
	want := []NodeType{Aggregate, HashJoin, SeqScan, SeqScan}
	if len(order) != len(want) {
		t.Fatalf("walk visited %d nodes", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("walk order %v", order)
		}
	}
}

func TestCountDepthTables(t *testing.T) {
	n := sampleTree()
	if n.Count() != 4 {
		t.Errorf("Count = %d", n.Count())
	}
	if n.Depth() != 3 {
		t.Errorf("Depth = %d", n.Depth())
	}
	tabs := n.Tables()
	if len(tabs) != 2 || tabs[0] != "movie_companies" || tabs[1] != "title" {
		t.Errorf("Tables = %v", tabs)
	}
}

func TestSignatureDistinguishesPlans(t *testing.T) {
	a := sampleTree()
	b := sampleTree()
	if a.Signature() != b.Signature() {
		t.Error("identical plans must share signatures")
	}
	b.Left.Type = MergeJoin
	if a.Signature() == b.Signature() {
		t.Error("different operators must change the signature")
	}
	c := sampleTree()
	c.Left.Right.Filter = &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGt, NumVal: 2001}
	if a.Signature() == c.Signature() {
		t.Error("different predicate constants must change the signature")
	}
}

func TestSignatureSubtreesDiffer(t *testing.T) {
	n := sampleTree()
	seen := map[string]bool{}
	n.Walk(func(m *Node) {
		sig := m.Signature()
		if seen[sig] {
			t.Errorf("duplicate subtree signature %q", sig)
		}
		seen[sig] = true
	})
}

func TestCloneIndependence(t *testing.T) {
	a := sampleTree()
	a.TrueRows = 42
	b := a.Clone()
	if b.TrueRows != 42 {
		t.Error("clone must copy annotations")
	}
	b.Left.TrueRows = 7
	if a.Left.TrueRows == 7 {
		t.Error("clone must not share child nodes")
	}
}

func TestCardinalityNode(t *testing.T) {
	n := sampleTree()
	if n.CardinalityNode() != n.Left {
		t.Error("CardinalityNode must skip the aggregate")
	}
	scan := &Node{Type: SeqScan, Table: "title"}
	if scan.CardinalityNode() != scan {
		t.Error("scan is its own cardinality node")
	}
	sorted := &Node{Type: Sort, Left: scan}
	if sorted.CardinalityNode() != scan {
		t.Error("CardinalityNode must skip sorts")
	}
}

func TestStringRendering(t *testing.T) {
	out := sampleTree().String()
	for _, want := range []string{"Aggregate", "Hash Join", "Seq Scan on title",
		"movie_companies.movie_id = title.id", "production_year > 2000"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan string missing %q:\n%s", want, out)
		}
	}
}

func TestAggFuncStrings(t *testing.T) {
	if AggMin.String() != "MIN" || AggMax.String() != "MAX" || AggCount.String() != "COUNT" {
		t.Error("aggregate function names wrong")
	}
}
