package stats

import (
	"math"

	"costest/internal/schema"
	"costest/internal/sqlpred"
)

// defaultMatchSel is PostgreSQL's DEFAULT_MATCH_SEL fallback for pattern
// predicates when neither MCVs nor histogram bounds provide signal.
const defaultMatchSel = 0.005

// defaultEqSel is the fallback equality selectivity for columns with no
// statistics.
const defaultEqSel = 0.005

// AtomSelectivity estimates the fraction of a table's rows satisfying one
// atomic predicate, the way PostgreSQL's scalar selectivity functions do:
// MCV lists answer equality exactly for frequent values, equi-depth
// histograms answer ranges, and pattern predicates are evaluated against the
// MCVs and histogram bounds.
func (c *Catalog) AtomSelectivity(a *sqlpred.Atom) float64 {
	cs := c.Column(a.Table, a.Column)
	if cs == nil {
		return defaultEqSel
	}
	var sel float64
	if cs.Type == schema.IntCol && !a.IsStr {
		sel = c.numAtomSel(cs, a)
	} else if cs.Type == schema.StringCol && a.IsStr {
		sel = c.strAtomSel(cs, a)
	} else {
		sel = defaultEqSel
	}
	return clampSel(sel)
}

func clampSel(s float64) float64 {
	if math.IsNaN(s) {
		return defaultEqSel
	}
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func (c *Catalog) numAtomSel(cs *ColumnStats, a *sqlpred.Atom) float64 {
	v := a.NumVal
	switch a.Op {
	case sqlpred.OpEq:
		return numEqSel(cs, v)
	case sqlpred.OpNe:
		return 1 - numEqSel(cs, v)
	case sqlpred.OpLt:
		return cs.NumHist.SelLess(v)
	case sqlpred.OpLe:
		return cs.NumHist.SelLess(v) + numEqSel(cs, v)
	case sqlpred.OpGt:
		return 1 - cs.NumHist.SelLess(v) - numEqSel(cs, v)
	case sqlpred.OpGe:
		return 1 - cs.NumHist.SelLess(v)
	default:
		return defaultEqSel
	}
}

func numEqSel(cs *ColumnStats, v float64) float64 {
	for _, m := range cs.MCVs {
		if m.Num == v {
			return m.Freq
		}
	}
	rest := float64(cs.NDV - len(cs.MCVs))
	if rest <= 0 {
		return 0
	}
	if v < cs.Min || v > cs.Max {
		return 0
	}
	return (1 - cs.MCVFreqTotal) / rest
}

func (c *Catalog) strAtomSel(cs *ColumnStats, a *sqlpred.Atom) float64 {
	switch a.Op {
	case sqlpred.OpEq:
		return strEqSel(cs, a.StrVal)
	case sqlpred.OpNe:
		return 1 - strEqSel(cs, a.StrVal)
	case sqlpred.OpIn:
		var s float64
		for _, v := range a.InVals {
			s += strEqSel(cs, v)
		}
		return s
	case sqlpred.OpLike:
		return patternSel(cs, a.StrVal)
	case sqlpred.OpNotLike:
		return 1 - patternSel(cs, a.StrVal)
	default:
		return defaultMatchSel
	}
}

func strEqSel(cs *ColumnStats, v string) float64 {
	for _, m := range cs.MCVs {
		if m.Str == v {
			return m.Freq
		}
	}
	rest := float64(cs.NDV - len(cs.MCVs))
	if rest <= 0 {
		return 0
	}
	return (1 - cs.MCVFreqTotal) / rest
}

// patternSel estimates a LIKE pattern's selectivity by evaluating it against
// the MCV list and the histogram bounds, PostgreSQL's histogram_selectivity
// approach for pattern matching.
func patternSel(cs *ColumnStats, pattern string) float64 {
	var mcvMatch float64
	for _, m := range cs.MCVs {
		if sqlpred.LikeMatch(pattern, m.Str) {
			mcvMatch += m.Freq
		}
	}
	histSel := defaultMatchSel
	if cs.StrHist != nil && len(cs.StrHist.Bounds) > 1 {
		n := 0
		for _, b := range cs.StrHist.Bounds {
			if sqlpred.LikeMatch(pattern, b) {
				n++
			}
		}
		if n > 0 {
			histSel = float64(n) / float64(len(cs.StrHist.Bounds))
		}
	}
	return mcvMatch + histSel*(1-cs.MCVFreqTotal)
}

// PredSelectivity estimates a (possibly compound) predicate's selectivity
// under PostgreSQL's independence assumption: AND multiplies, OR applies
// inclusion-exclusion. This assumption is exactly what breaks on correlated
// data — the effect the learned estimator removes.
func (c *Catalog) PredSelectivity(p sqlpred.Pred) float64 {
	switch n := p.(type) {
	case nil:
		return 1
	case *sqlpred.Atom:
		return c.AtomSelectivity(n)
	case *sqlpred.Bool:
		l := c.PredSelectivity(n.Left)
		r := c.PredSelectivity(n.Right)
		if n.Kind == sqlpred.And {
			return clampSel(l * r)
		}
		return clampSel(l + r - l*r)
	default:
		return defaultEqSel
	}
}

// TrueSelectivity evaluates p exactly by scanning the table — used by tests
// and the executor oracle, not by the baseline estimator.
func (c *Catalog) TrueSelectivity(table string, p sqlpred.Pred) (float64, error) {
	data := c.DB.Table(table)
	if data == nil || data.NumRows == 0 {
		return 0, nil
	}
	match, err := sqlpred.Compile(p, table, data)
	if err != nil {
		return 0, err
	}
	n := 0
	for row := 0; row < data.NumRows; row++ {
		if match(row) {
			n++
		}
	}
	return float64(n) / float64(data.NumRows), nil
}
