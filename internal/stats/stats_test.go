package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"costest/internal/dataset"
	"costest/internal/sqlpred"
)

var (
	testDB  = dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.03})
	testCat = Collect(testDB, Options{Buckets: 40, SampleSize: 64, MaxMCVs: 20, Seed: 1})
)

func TestCollectCoversAllColumns(t *testing.T) {
	for _, tab := range testDB.Schema.Tables {
		ts := testCat.Table(tab.Name)
		if ts == nil {
			t.Fatalf("no stats for %s", tab.Name)
		}
		if ts.RowCount != testDB.Table(tab.Name).NumRows {
			t.Fatalf("%s row count mismatch", tab.Name)
		}
		for _, c := range tab.Columns {
			if ts.Cols[c.Name] == nil {
				t.Fatalf("no stats for %s.%s", tab.Name, c.Name)
			}
		}
	}
}

func TestHistogramSelLessMonotone(t *testing.T) {
	cs := testCat.Column("title", "production_year")
	h := cs.NumHist
	prev := -1.0
	for v := cs.Min; v <= cs.Max; v += (cs.Max - cs.Min) / 50 {
		s := h.SelLess(v)
		if s < prev-1e-12 {
			t.Fatalf("SelLess not monotone at %g: %g < %g", v, s, prev)
		}
		if s < 0 || s > 1 {
			t.Fatalf("SelLess out of range: %g", s)
		}
		prev = s
	}
	if h.SelLess(cs.Min-1) != 0 || h.SelLess(cs.Max+1) != 1 {
		t.Fatal("SelLess boundary behaviour wrong")
	}
}

// Property: equi-depth bounds are sorted and cover the data range.
func TestEquiDepthBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(500)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		sort.Float64s(vals)
		b := equiDepthBounds(vals, 10)
		if b[0] != vals[0] || b[len(b)-1] != vals[n-1] {
			return false
		}
		return sort.Float64sAreSorted(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Histogram range estimates must be close to truth on the (uncorrelated)
// single-column case — histograms are good at exactly this.
func TestRangeEstimateAccuracy(t *testing.T) {
	a := &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGt, NumVal: 2000}
	est := testCat.AtomSelectivity(a)
	truth, err := testCat.TrueSelectivity("title", a)
	if err != nil {
		t.Fatal(err)
	}
	if truth == 0 {
		t.Skip("no rows match at this scale")
	}
	q := math.Max(est, truth) / math.Min(math.Max(est, 1e-6), math.Max(truth, 1e-6))
	if q > 1.6 {
		t.Errorf("single-column range estimate too far off: est=%.4f truth=%.4f q=%.2f", est, truth, q)
	}
}

func TestEqEstimateViaMCV(t *testing.T) {
	// company_type_id has 4 values; all should be MCVs with exact freqs.
	a := &sqlpred.Atom{Table: "movie_companies", Column: "company_type_id", Op: sqlpred.OpEq, NumVal: 1}
	est := testCat.AtomSelectivity(a)
	truth, _ := testCat.TrueSelectivity("movie_companies", a)
	if math.Abs(est-truth) > 0.01 {
		t.Errorf("MCV equality estimate: est=%.4f truth=%.4f", est, truth)
	}
}

func TestStringEqEstimate(t *testing.T) {
	a := &sqlpred.Atom{Table: "company_type", Column: "kind", Op: sqlpred.OpEq,
		StrVal: "production companies", IsStr: true}
	est := testCat.AtomSelectivity(a)
	if est <= 0 || est > 1 {
		t.Fatalf("string eq selectivity out of range: %g", est)
	}
	truth, _ := testCat.TrueSelectivity("company_type", a)
	if math.Abs(est-truth) > 0.3 {
		t.Errorf("tiny-table string eq: est=%.3f truth=%.3f", est, truth)
	}
}

func TestLikeSelectivityViaMCVs(t *testing.T) {
	// "(co-production)" is a frequent exact note value, so the MCV pass
	// should make LIKE '%(co-production)%' selectivity non-trivial.
	a := &sqlpred.Atom{Table: "movie_companies", Column: "note", Op: sqlpred.OpLike,
		StrVal: "%(co-production)%", IsStr: true}
	est := testCat.AtomSelectivity(a)
	truth, _ := testCat.TrueSelectivity("movie_companies", a)
	if truth == 0 {
		t.Skip("no co-production notes at this scale")
	}
	if est <= 0 {
		t.Errorf("LIKE estimate should be positive, got %g (truth %.4f)", est, truth)
	}
}

func TestNotLikeComplement(t *testing.T) {
	like := &sqlpred.Atom{Table: "movie_companies", Column: "note", Op: sqlpred.OpLike, StrVal: "%(TV)%", IsStr: true}
	notLike := &sqlpred.Atom{Table: "movie_companies", Column: "note", Op: sqlpred.OpNotLike, StrVal: "%(TV)%", IsStr: true}
	a, b := testCat.AtomSelectivity(like), testCat.AtomSelectivity(notLike)
	if math.Abs(a+b-1) > 1e-9 {
		t.Errorf("LIKE + NOT LIKE = %g, want 1", a+b)
	}
}

func TestCompoundIndependence(t *testing.T) {
	a := &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGt, NumVal: 2000}
	b := &sqlpred.Atom{Table: "title", Column: "kind_id", Op: sqlpred.OpEq, NumVal: 1}
	sa, sb := testCat.AtomSelectivity(a), testCat.AtomSelectivity(b)
	and := testCat.PredSelectivity(sqlpred.AndAll(a, b))
	or := testCat.PredSelectivity(sqlpred.OrAll(a, b))
	if math.Abs(and-sa*sb) > 1e-9 {
		t.Errorf("AND independence: %g vs %g", and, sa*sb)
	}
	if math.Abs(or-(sa+sb-sa*sb)) > 1e-9 {
		t.Errorf("OR inclusion-exclusion: %g vs %g", or, sa+sb-sa*sb)
	}
	if testCat.PredSelectivity(nil) != 1 {
		t.Error("nil predicate selectivity must be 1")
	}
}

// The planted correlation must break the independence assumption: the AND of
// year>=2000 and note=(co-production) is truly far more frequent than the
// product of marginals.
func TestIndependenceAssumptionBreaks(t *testing.T) {
	mc := testDB.Table("movie_companies")
	title := testDB.Table("title")
	years := title.IntColumn("production_year")
	notes := mc.StrColumn("note")
	movieIDs := mc.IntColumn("movie_id")
	co, coNew := 0, 0
	nNew := 0
	for i := range notes {
		isNew := years[title.PKRow(movieIDs[i])] >= 2010
		if isNew {
			nNew++
		}
		if notes[i] == "(co-production)" {
			co++
			if isNew {
				coNew++
			}
		}
	}
	if co == 0 || nNew == 0 {
		t.Skip("scale too small")
	}
	total := float64(mc.NumRows)
	joint := float64(coNew) / total
	indep := (float64(co) / total) * (float64(nNew) / total)
	if joint < 1.5*indep {
		t.Errorf("correlation too weak for the experiment: joint=%.5f indep=%.5f", joint, indep)
	}
}

func TestSampleBitmap(t *testing.T) {
	p := &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGt, NumVal: 1900}
	bm, err := testCat.SampleBitmap("title", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(bm) != 64 {
		t.Fatalf("bitmap length %d, want sample size 64", len(bm))
	}
	ones := 0
	for _, b := range bm {
		if b != 0 && b != 1 {
			t.Fatalf("bitmap value %g not 0/1", b)
		}
		if b == 1 {
			ones++
		}
	}
	if ones == 0 {
		t.Error("broad predicate should match some sample rows")
	}
	// Bitmap fraction should roughly track true selectivity.
	truth, _ := testCat.TrueSelectivity("title", p)
	frac := float64(ones) / 64
	if math.Abs(frac-truth) > 0.35 {
		t.Errorf("bitmap fraction %.2f far from truth %.2f", frac, truth)
	}
}

func TestSampleBitmapUnknownTable(t *testing.T) {
	bm, err := testCat.SampleBitmap("nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bm {
		if b != 0 {
			t.Fatal("unknown table bitmap must be all zeros")
		}
	}
}

func TestReservoirProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := reservoir(1000, 50, rng)
	if len(s) != 50 {
		t.Fatalf("sample size %d, want 50", len(s))
	}
	if !sort.IntsAreSorted(s) {
		t.Fatal("sample must be sorted")
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 1000 {
			t.Fatalf("sample index %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample index %d", v)
		}
		seen[v] = true
	}
	// Small population: identity.
	s2 := reservoir(10, 50, rng)
	if len(s2) != 10 || s2[0] != 0 || s2[9] != 9 {
		t.Fatalf("small-population sample = %v", s2)
	}
}

func TestNormalizeNumeric(t *testing.T) {
	v := testCat.NormalizeNumeric("title", "production_year", 2100)
	if v != 1 {
		t.Errorf("above-max normalize = %g, want 1", v)
	}
	v = testCat.NormalizeNumeric("title", "production_year", 1700)
	if v != 0 {
		t.Errorf("below-min normalize = %g, want 0", v)
	}
	v = testCat.NormalizeNumeric("nope", "nope", 5)
	if v != 0.5 {
		t.Errorf("unknown column normalize = %g, want 0.5", v)
	}
}

func TestSelectivityClamped(t *testing.T) {
	f := func(v float64) bool {
		a := &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpLt, NumVal: v}
		s := testCat.AtomSelectivity(a)
		return s >= 0 && s <= 1 && !math.IsNaN(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
