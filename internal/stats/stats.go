// Package stats collects PostgreSQL-ANALYZE-style statistics over the
// in-memory database: equi-depth histograms, most-common-value lists,
// distinct counts and per-table reservoir samples. The PG baseline estimator
// derives selectivities from them, and the feature encoder derives sample
// bitmaps (Section 4.1) and numeric-operand normalization from them.
package stats

import (
	"math/rand"
	"sort"

	"costest/internal/dataset"
	"costest/internal/schema"
	"costest/internal/sqlpred"
)

// DefaultBuckets is the histogram resolution (PostgreSQL's
// default_statistics_target is 100).
const DefaultBuckets = 100

// DefaultSampleSize matches the paper's sample-bitmap length of 1000
// (Section 6.2); tests and benches shrink it.
const DefaultSampleSize = 1000

// MCV is a most-common-value entry with its frequency (fraction of rows).
type MCV struct {
	Num  float64
	Str  string
	Freq float64
}

// NumHistogram is an equi-depth histogram over a numeric column. Bounds has
// B+1 entries; each bucket holds ~1/B of the non-MCV rows.
type NumHistogram struct {
	Bounds []float64
}

// SelLess estimates P(col < v) over the histogram's population.
func (h *NumHistogram) SelLess(v float64) float64 {
	b := h.Bounds
	if len(b) < 2 {
		return 0.5
	}
	if v <= b[0] {
		return 0
	}
	if v >= b[len(b)-1] {
		return 1
	}
	// Find bucket i with b[i] <= v < b[i+1].
	i := sort.SearchFloat64s(b, v)
	if i > 0 && (i >= len(b) || b[i] != v) {
		i--
	}
	if i >= len(b)-1 {
		i = len(b) - 2
	}
	frac := 0.5
	if b[i+1] > b[i] {
		frac = (v - b[i]) / (b[i+1] - b[i])
	}
	nb := float64(len(b) - 1)
	return (float64(i) + frac) / nb
}

// StrHistogram is an equi-depth histogram over a string column in
// lexicographic order.
type StrHistogram struct {
	Bounds []string
}

// SelLess estimates P(col < v) lexicographically.
func (h *StrHistogram) SelLess(v string) float64 {
	b := h.Bounds
	if len(b) < 2 {
		return 0.5
	}
	if v <= b[0] {
		return 0
	}
	if v > b[len(b)-1] {
		return 1
	}
	i := sort.SearchStrings(b, v)
	if i > 0 {
		i--
	}
	if i >= len(b)-1 {
		i = len(b) - 2
	}
	nb := float64(len(b) - 1)
	return (float64(i) + 0.5) / nb
}

// ColumnStats holds statistics for a single column.
type ColumnStats struct {
	Table, Column string
	Type          schema.ColType
	RowCount      int
	NDV           int
	MCVs          []MCV
	MCVFreqTotal  float64
	// Numeric columns:
	Min, Max float64
	NumHist  *NumHistogram
	// String columns:
	StrHist *StrHistogram
}

// TableStats holds statistics and the reservoir sample for one table.
type TableStats struct {
	Table    string
	RowCount int
	Cols     map[string]*ColumnStats
	// Sample holds row indices of the fixed-size uniform sample used for
	// sample-bitmap features and for the paper's sample-based baselines.
	Sample []int
}

// Catalog is the statistics catalog of a database.
type Catalog struct {
	DB         *dataset.DB
	Tables     map[string]*TableStats
	SampleSize int
}

// Options configures statistics collection.
type Options struct {
	Buckets    int
	SampleSize int
	MaxMCVs    int
	Seed       int64
}

// DefaultOptions returns production-sized collection options.
func DefaultOptions() Options {
	return Options{Buckets: DefaultBuckets, SampleSize: DefaultSampleSize, MaxMCVs: 25, Seed: 1}
}

// Collect gathers statistics for every table and column of db.
func Collect(db *dataset.DB, opt Options) *Catalog {
	if opt.Buckets <= 0 {
		opt.Buckets = DefaultBuckets
	}
	if opt.SampleSize <= 0 {
		opt.SampleSize = DefaultSampleSize
	}
	if opt.MaxMCVs <= 0 {
		opt.MaxMCVs = 25
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	cat := &Catalog{DB: db, Tables: make(map[string]*TableStats, len(db.Tables)), SampleSize: opt.SampleSize}
	for _, tab := range db.Schema.Tables {
		data := db.Table(tab.Name)
		ts := &TableStats{
			Table:    tab.Name,
			RowCount: data.NumRows,
			Cols:     make(map[string]*ColumnStats, len(tab.Columns)),
			Sample:   reservoir(data.NumRows, opt.SampleSize, rng),
		}
		for _, col := range tab.Columns {
			cs := collectColumn(data, col, opt)
			ts.Cols[col.Name] = cs
		}
		cat.Tables[tab.Name] = ts
	}
	return cat
}

// reservoir draws a uniform sample of up to k row indices, sorted ascending.
func reservoir(n, k int, rng *rand.Rand) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = i
	}
	for i := k; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < k {
			out[j] = i
		}
	}
	sort.Ints(out)
	return out
}

func collectColumn(data *dataset.Table, col schema.Column, opt Options) *ColumnStats {
	cs := &ColumnStats{Table: data.Meta.Name, Column: col.Name, Type: col.Type, RowCount: data.NumRows}
	if col.Type == schema.IntCol {
		vals := data.IntColumn(col.Name)
		collectNumeric(cs, vals, opt)
	} else {
		vals := data.StrColumn(col.Name)
		collectString(cs, vals, opt)
	}
	return cs
}

func collectNumeric(cs *ColumnStats, vals []int64, opt Options) {
	if len(vals) == 0 {
		cs.NumHist = &NumHistogram{}
		return
	}
	sorted := make([]float64, len(vals))
	for i, v := range vals {
		sorted[i] = float64(v)
	}
	sort.Float64s(sorted)
	cs.Min, cs.Max = sorted[0], sorted[len(sorted)-1]

	// Distinct count + frequency map for MCVs.
	freq := make(map[float64]int)
	for _, v := range sorted {
		freq[v]++
	}
	cs.NDV = len(freq)
	cs.MCVs, cs.MCVFreqTotal = topMCVsNum(freq, len(vals), opt.MaxMCVs)

	cs.NumHist = &NumHistogram{Bounds: equiDepthBounds(sorted, opt.Buckets)}
}

func collectString(cs *ColumnStats, vals []string, opt Options) {
	if len(vals) == 0 {
		cs.StrHist = &StrHistogram{}
		return
	}
	sorted := make([]string, len(vals))
	copy(sorted, vals)
	sort.Strings(sorted)
	freq := make(map[string]int)
	for _, v := range sorted {
		freq[v]++
	}
	cs.NDV = len(freq)
	cs.MCVs, cs.MCVFreqTotal = topMCVsStr(freq, len(vals), opt.MaxMCVs)

	nb := opt.Buckets
	bounds := make([]string, 0, nb+1)
	for i := 0; i <= nb; i++ {
		idx := i * (len(sorted) - 1) / nb
		bounds = append(bounds, sorted[idx])
	}
	cs.StrHist = &StrHistogram{Bounds: bounds}
}

// equiDepthBounds returns B+1 bucket boundaries over sorted values.
func equiDepthBounds(sorted []float64, nb int) []float64 {
	bounds := make([]float64, 0, nb+1)
	for i := 0; i <= nb; i++ {
		idx := i * (len(sorted) - 1) / nb
		bounds = append(bounds, sorted[idx])
	}
	return bounds
}

// mcvThreshold: values must cover at least this fraction of rows to be kept
// as MCVs (mirrors PostgreSQL keeping only values clearly more common than
// average).
const mcvThreshold = 0.002

func topMCVsNum(freq map[float64]int, n, maxMCVs int) ([]MCV, float64) {
	type kv struct {
		v float64
		c int
	}
	items := make([]kv, 0, len(freq))
	for v, c := range freq {
		items = append(items, kv{v, c})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].c != items[j].c {
			return items[i].c > items[j].c
		}
		return items[i].v < items[j].v
	})
	var out []MCV
	var total float64
	for _, it := range items {
		f := float64(it.c) / float64(n)
		if len(out) >= maxMCVs || f < mcvThreshold {
			break
		}
		out = append(out, MCV{Num: it.v, Freq: f})
		total += f
	}
	return out, total
}

func topMCVsStr(freq map[string]int, n, maxMCVs int) ([]MCV, float64) {
	type kv struct {
		v string
		c int
	}
	items := make([]kv, 0, len(freq))
	for v, c := range freq {
		items = append(items, kv{v, c})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].c != items[j].c {
			return items[i].c > items[j].c
		}
		return items[i].v < items[j].v
	})
	var out []MCV
	var total float64
	for _, it := range items {
		f := float64(it.c) / float64(n)
		if len(out) >= maxMCVs || f < mcvThreshold {
			break
		}
		out = append(out, MCV{Str: it.v, Freq: f})
		total += f
	}
	return out, total
}

// Table returns the stats of the named table, or nil.
func (c *Catalog) Table(name string) *TableStats { return c.Tables[name] }

// Column returns the stats for table.column, or nil.
func (c *Catalog) Column(table, column string) *ColumnStats {
	if ts := c.Tables[table]; ts != nil {
		return ts.Cols[column]
	}
	return nil
}

// NormalizeNumeric maps a numeric operand to [0,1] using the column's
// min/max, the operand encoding of Section 4.1 ("a normalized float").
func (c *Catalog) NormalizeNumeric(table, column string, v float64) float64 {
	cs := c.Column(table, column)
	if cs == nil || cs.Max <= cs.Min {
		return 0.5
	}
	s := (v - cs.Min) / (cs.Max - cs.Min)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// SampleBitmap evaluates pred over the table's sample rows, returning one
// 0/1 per sample row (the paper's Sample Bitmap feature). The slice length
// always equals the catalog SampleSize, zero-padded when the table has fewer
// sampled rows, so the feature has a fixed dimension.
func (c *Catalog) SampleBitmap(table string, pred sqlpred.Pred) ([]float64, error) {
	out := make([]float64, c.SampleSize)
	ts := c.Tables[table]
	if ts == nil {
		return out, nil
	}
	data := c.DB.Table(table)
	match, err := sqlpred.Compile(pred, table, data)
	if err != nil {
		return nil, err
	}
	for i, row := range ts.Sample {
		if i >= len(out) {
			break
		}
		if match(row) {
			out[i] = 1
		}
	}
	return out, nil
}
