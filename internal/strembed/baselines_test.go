package strembed

import "testing"

func TestOneHotEncoder(t *testing.T) {
	e := NewOneHotEncoder([]string{"(presents)", "(co-production)", "(presents)"}, 0)
	if e.Dim() != 2 {
		t.Fatalf("Dim = %d, want 2 (dedup)", e.Dim())
	}
	a := e.Embed("(presents)")
	ones := 0
	for _, v := range a {
		if v == 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("one-hot has %d ones", ones)
	}
	// Pattern wildcards resolve to the core string.
	b := e.Embed("%(presents)%")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pattern core must map to the same bit")
		}
	}
	// The paper's criticism: unseen strings carry no information.
	for _, v := range e.Embed("unseen value") {
		if v != 0 {
			t.Fatal("unseen string must embed to zeros")
		}
	}
}

func TestOneHotEncoderCap(t *testing.T) {
	e := NewOneHotEncoder([]string{"a", "b", "c", "d"}, 2)
	if e.Dim() != 2 {
		t.Fatalf("Dim = %d, want capped 2", e.Dim())
	}
	if len(e.Embed("a")) != 2 {
		t.Fatal("embed length must equal capped dim")
	}
}

func TestSelectivityEncoder(t *testing.T) {
	e := SelectivityEncoder{Sel: func(p string) float64 {
		if p == "%rare%" {
			return 0.001
		}
		return 2.5 // deliberately out of range
	}}
	if e.Dim() != 1 {
		t.Fatal("Dim must be 1")
	}
	if v := e.Embed("%rare%"); v[0] != 0.001 {
		t.Fatalf("Embed = %v", v)
	}
	if v := e.Embed("%common%"); v[0] != 1 {
		t.Fatalf("out-of-range selectivity must clamp, got %v", v)
	}
	var nilSel SelectivityEncoder
	if v := nilSel.Embed("x"); v[0] != 0 {
		t.Fatal("nil selectivity func must embed 0")
	}
}
