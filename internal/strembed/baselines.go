package strembed

import "sort"

// Section 5 enumerates four intuitive string representations before the
// learned embedding: one-hot, selectivity, sample bitmap and hash bitmap.
// HashEmbedder lives in hash.go (it is the paper's measured baseline); this
// file completes the enumeration with the one-hot and selectivity encoders
// so the design space is fully explorable from the library.

// OneHotEncoder maps each string seen at construction to its own bit. The
// paper's criticism — "it cannot estimate an approximate result for unseen
// string values" — is directly observable: unknown strings embed to zero.
type OneHotEncoder struct {
	index map[string]int
	dim   int
}

// NewOneHotEncoder builds the encoder over a vocabulary, capping the
// dimension at maxDim (extra strings share the zero vector).
func NewOneHotEncoder(vocab []string, maxDim int) *OneHotEncoder {
	sorted := make([]string, len(vocab))
	copy(sorted, vocab)
	sort.Strings(sorted)
	e := &OneHotEncoder{index: make(map[string]int, len(sorted))}
	for _, s := range sorted {
		if _, dup := e.index[s]; dup {
			continue
		}
		if maxDim > 0 && e.dim >= maxDim {
			break
		}
		e.index[s] = e.dim
		e.dim++
	}
	if maxDim > 0 {
		e.dim = maxDim
	}
	return e
}

// Dim returns the vocabulary dimension.
func (e *OneHotEncoder) Dim() int { return e.dim }

// Embed returns the one-hot vector of the pattern core; unseen strings are
// all zeros (the generalization failure the paper calls out).
func (e *OneHotEncoder) Embed(pattern string) []float64 {
	out := make([]float64, e.dim)
	core, _, _ := patternCore(pattern)
	if i, ok := e.index[core]; ok {
		out[i] = 1
	}
	return out
}

// SelectivityFunc estimates the fraction of rows matching a pattern; the
// stats catalog's pattern selectivity is the natural implementation.
type SelectivityFunc func(pattern string) float64

// SelectivityEncoder is the paper's "selectivity embedding": the string is
// represented by a single number, its estimated selectivity. It generalizes
// to unseen strings but, as the paper notes, "can not reflect the details on
// which tuples satisfy the predicate".
type SelectivityEncoder struct {
	Sel SelectivityFunc
}

// Dim returns 1.
func (e SelectivityEncoder) Dim() int { return 1 }

// Embed returns the one-element selectivity vector.
func (e SelectivityEncoder) Embed(pattern string) []float64 {
	if e.Sel == nil {
		return []float64{0}
	}
	s := e.Sel(pattern)
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return []float64{s}
}
