package strembed

// HashEmbedder is the paper's hash-bitmap baseline (Section 5): a zero
// vector where, for every character of the string, position hash(c) % dim is
// set to 1. It captures character overlap between strings but not
// co-occurrence, which is exactly the gap the learned embedding closes.
type HashEmbedder struct {
	DimN int
}

// Dim returns the bitmap length.
func (h HashEmbedder) Dim() int { return h.DimN }

// Embed returns the character hash bitmap of the pattern core (wildcards are
// ignored: they carry no character information).
func (h HashEmbedder) Embed(pattern string) []float64 {
	out := make([]float64, h.DimN)
	if h.DimN == 0 {
		return out
	}
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		if c == '%' {
			continue
		}
		// FNV-1a single-byte hash for stable spread.
		hash := uint32(2166136261)
		hash ^= uint32(c)
		hash *= 16777619
		out[hash%uint32(h.DimN)] = 1
	}
	return out
}

// EmbedMany ORs the bitmaps of several strings (IN lists).
func (h HashEmbedder) EmbedMany(values []string) []float64 {
	out := make([]float64, h.DimN)
	for _, v := range values {
		b := h.Embed(v)
		for i := range out {
			if b[i] == 1 {
				out[i] = 1
			}
		}
	}
	return out
}

// ZeroEncoder embeds every string as an empty vector; numeric-only
// experiments use it so the atom encoding carries no string dimensions.
type ZeroEncoder struct{}

// Dim returns 0.
func (ZeroEncoder) Dim() int { return 0 }

// Embed returns nil.
func (ZeroEncoder) Embed(string) []float64 { return nil }
