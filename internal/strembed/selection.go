package strembed

import "sort"

// SelectionResult reports the outcome of rule selection.
type SelectionResult struct {
	Rules []Rule
	// Dict is S_R: every substring extracted by the selected rules.
	Dict map[string]bool
	// Covered counts workload strings covered by the dictionary.
	Covered int
}

// SelectRules implements Algorithm 1: greedily pick the minimum number of
// rules whose extracted substring set S_R covers the workload strings S_W,
// subject to |S_R| <= budget. Each candidate is evaluated over the distinct
// values of its own column (valuesByColumn is keyed "table.column").
//
// The paper's pseudocode orders candidates by extraneous extraction count
// |S_r − S_W| and evicts the rule with the worst useful ratio
// |S_R ∩ S_W|/|S_R| when the budget is exceeded; this implementation keeps
// both behaviours: candidates are greedily chosen to maximize newly covered
// workload strings with ties broken toward fewer extraneous extractions, and
// budget violations evict the worst-ratio rule and mark it ineligible.
func SelectRules(cands []Rule, sw []WorkloadString, valuesByColumn map[string][]string, budget int) SelectionResult {
	want := make(map[string]bool, len(sw))
	for _, w := range sw {
		want[w.S] = true
	}
	type scored struct {
		rule    Rule
		extract map[string]bool // S_r
		useful  int             // |S_r ∩ S_W|
	}
	items := make([]scored, 0, len(cands))
	for _, r := range cands {
		vals := valuesByColumn[r.Table+"."+r.Column]
		ex := make(map[string]bool)
		for _, v := range vals {
			for _, s := range r.Extract(v) {
				ex[s] = true
			}
		}
		useful := 0
		for s := range ex {
			if want[s] {
				useful++
			}
		}
		if useful == 0 {
			continue // rules covering nothing can never help
		}
		items = append(items, scored{rule: r, extract: ex, useful: useful})
	}
	// Deterministic base order: fewer extraneous extractions first (the
	// paper's |S_r − S_W| sort), then rule key.
	sort.Slice(items, func(i, j int) bool {
		ei := len(items[i].extract) - items[i].useful
		ej := len(items[j].extract) - items[j].useful
		if ei != ej {
			return ei < ej
		}
		return items[i].rule.Key() < items[j].rule.Key()
	})

	covered := make(map[string]bool)
	dict := make(map[string]bool)
	var selected []scored
	banned := make(map[string]bool)

	for {
		bestIdx, bestGain, bestExtra := -1, 0, 0
		for i := range items {
			if banned[items[i].rule.Key()] {
				continue
			}
			gain := 0
			for s := range items[i].extract {
				if want[s] && !covered[s] {
					gain++
				}
			}
			extra := len(items[i].extract) - items[i].useful
			if gain > bestGain || (gain == bestGain && gain > 0 && extra < bestExtra) {
				bestIdx, bestGain, bestExtra = i, gain, extra
			}
		}
		if bestIdx < 0 || bestGain == 0 {
			break
		}
		pick := items[bestIdx]
		banned[pick.rule.Key()] = true
		selected = append(selected, pick)
		for s := range pick.extract {
			dict[s] = true
			if want[s] {
				covered[s] = true
			}
		}
		// Budget enforcement: evict the rule with the worst useful ratio.
		for budget > 0 && len(dict) > budget && len(selected) > 1 {
			worst, worstRatio := -1, 2.0
			for i, sel := range selected {
				ratio := float64(sel.useful) / float64(len(sel.extract))
				if ratio < worstRatio {
					worst, worstRatio = i, ratio
				}
			}
			if worst < 0 {
				break
			}
			selected = append(selected[:worst], selected[worst+1:]...)
			// Rebuild dict and coverage from the survivors.
			dict = make(map[string]bool)
			covered = make(map[string]bool)
			for _, sel := range selected {
				for s := range sel.extract {
					dict[s] = true
					if want[s] {
						covered[s] = true
					}
				}
			}
		}
	}

	res := SelectionResult{Dict: dict, Covered: len(covered)}
	for _, sel := range selected {
		res.Rules = append(res.Rules, sel.rule)
	}
	return res
}
