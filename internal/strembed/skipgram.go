package strembed

import (
	"math"
	"math/rand"
	"sort"

	"costest/internal/tensor"
)

// SkipGramConfig controls word2vec training (Mikolov-style skip-gram with
// negative sampling), which the paper uses to learn coexistence-aware string
// representations from per-tuple token "sentences" (Section 5.1).
type SkipGramConfig struct {
	Dim         int
	Epochs      int
	NegSamples  int
	LearnRate   float64
	MinCount    int
	MaxSentence int // sentences are truncated to bound cost
	Seed        int64
}

// DefaultSkipGramConfig returns training settings sized for this corpus.
func DefaultSkipGramConfig() SkipGramConfig {
	return SkipGramConfig{Dim: 32, Epochs: 3, NegSamples: 4, LearnRate: 0.025,
		MinCount: 1, MaxSentence: 16, Seed: 1}
}

// SkipGram holds a trained embedding table.
type SkipGram struct {
	Dim     int
	Vocab   map[string]int
	Words   []string
	Vectors [][]float64 // input vectors; one per vocab word
}

// TrainSkipGram learns embeddings from sentences (each a bag of tokens that
// co-occur in one tuple). Training is deterministic in cfg.Seed.
func TrainSkipGram(sentences [][]string, cfg SkipGramConfig) *SkipGram {
	if cfg.Dim <= 0 {
		cfg.Dim = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 3
	}
	if cfg.NegSamples <= 0 {
		cfg.NegSamples = 4
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.025
	}
	if cfg.MaxSentence <= 0 {
		cfg.MaxSentence = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Vocabulary with counts.
	counts := map[string]int{}
	for _, s := range sentences {
		for _, w := range s {
			counts[w]++
		}
	}
	words := make([]string, 0, len(counts))
	for w, c := range counts {
		if c >= cfg.MinCount {
			words = append(words, w)
		}
	}
	sort.Strings(words) // deterministic vocab order
	vocab := make(map[string]int, len(words))
	for i, w := range words {
		vocab[w] = i
	}
	sg := &SkipGram{Dim: cfg.Dim, Vocab: vocab, Words: words}
	if len(words) == 0 {
		return sg
	}

	// Input and output vector tables.
	sg.Vectors = make([][]float64, len(words))
	out := make([][]float64, len(words))
	for i := range sg.Vectors {
		v := make([]float64, cfg.Dim)
		for j := range v {
			v[j] = (rng.Float64() - 0.5) / float64(cfg.Dim)
		}
		sg.Vectors[i] = v
		out[i] = make([]float64, cfg.Dim)
	}

	// Unigram^(3/4) negative-sampling table.
	negTable := buildNegTable(words, counts)

	grad := make([]float64, cfg.Dim)
	lr := cfg.LearnRate
	totalSteps := cfg.Epochs * len(sentences)
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, sent := range sentences {
			step++
			// Linear learning-rate decay with a floor.
			lr = cfg.LearnRate * (1 - float64(step)/float64(totalSteps+1))
			if lr < cfg.LearnRate*0.05 {
				lr = cfg.LearnRate * 0.05
			}
			ids := tokenIDs(sent, vocab, cfg.MaxSentence)
			for i, center := range ids {
				for j, ctx := range ids {
					if i == j {
						continue
					}
					trainPair(sg.Vectors[center], out, ctx, negTable, rng, cfg.NegSamples, lr, grad)
				}
			}
		}
	}
	return sg
}

func tokenIDs(sent []string, vocab map[string]int, maxLen int) []int {
	ids := make([]int, 0, len(sent))
	for _, w := range sent {
		if id, ok := vocab[w]; ok {
			ids = append(ids, id)
			if len(ids) >= maxLen {
				break
			}
		}
	}
	return ids
}

func buildNegTable(words []string, counts map[string]int) []int32 {
	const tableSize = 1 << 16
	table := make([]int32, 0, tableSize)
	pows := make([]float64, len(words))
	for i, w := range words {
		pows[i] = math.Pow(float64(counts[w]), 0.75)
	}
	total := tensor.Sum(pows)
	for i := range words {
		n := int(pows[i] / total * tableSize)
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			table = append(table, int32(i))
		}
	}
	return table
}

// trainPair applies one SGNS update: positive (center, ctx) plus negatives.
func trainPair(center []float64, out [][]float64, ctx int, negTable []int32,
	rng *rand.Rand, negSamples int, lr float64, grad []float64) {
	for i := range grad {
		grad[i] = 0
	}
	for k := 0; k <= negSamples; k++ {
		var target int
		var label float64
		if k == 0 {
			target, label = ctx, 1
		} else {
			target = int(negTable[rng.Intn(len(negTable))])
			if target == ctx {
				continue
			}
			label = 0
		}
		o := out[target]
		g := (label - sigmoid(tensor.Dot(center, o))) * lr
		for i := range center {
			grad[i] += g * o[i]
			o[i] += g * center[i]
		}
	}
	for i := range center {
		center[i] += grad[i]
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Vector returns the embedding of a word, or nil.
func (s *SkipGram) Vector(w string) []float64 {
	if id, ok := s.Vocab[w]; ok {
		return s.Vectors[id]
	}
	return nil
}

// Similarity returns the cosine similarity of two vocabulary words (0 when
// either is missing).
func (s *SkipGram) Similarity(a, b string) float64 {
	va, vb := s.Vector(a), s.Vector(b)
	if va == nil || vb == nil {
		return 0
	}
	dot := tensor.Dot(va, vb)
	na := tensor.Dot(va, va)
	nb := tensor.Dot(vb, vb)
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
