package strembed

import (
	"sort"
	"strings"

	"costest/internal/dataset"
)

// StringEncoder maps a query string (possibly a LIKE pattern containing %)
// to a fixed-dimension vector. Implementations: the trained Embedder and the
// HashEmbedder baseline.
type StringEncoder interface {
	Dim() int
	Embed(pattern string) []float64
}

// Config controls Embedder construction.
type Config struct {
	Dim int
	// UseRules enables rule generation/selection; without it the dictionary
	// holds only the full string values of the referenced columns (the
	// paper's "EmbNR" variant).
	UseRules bool
	// Budget bounds the substring dictionary size (Algorithm 1's B).
	Budget int
	// MaxValuesPerColumn caps the distinct values enumerated per column.
	MaxValuesPerColumn int
	// MaxPairsPerString caps (workload string, value) candidate pairs.
	MaxPairsPerString int
	SkipGram          SkipGramConfig
}

// DefaultConfig returns full-size build settings.
func DefaultConfig() Config {
	return Config{
		Dim:                32,
		UseRules:           true,
		Budget:             20000,
		MaxValuesPerColumn: 20000,
		MaxPairsPerString:  3,
		SkipGram:           DefaultSkipGramConfig(),
	}
}

// Embedder is the trained string-embedding index: skip-gram vectors behind
// prefix and suffix tries (Section 5.3).
type Embedder struct {
	dim     int
	vectors [][]float64
	exact   map[string]int
	prefix  *Trie
	suffix  *Trie
	// Rules kept for inspection/reporting.
	Rules    []Rule
	DictSize int
}

// Dim returns the embedding dimensionality.
func (e *Embedder) Dim() int { return e.dim }

// Build trains an Embedder for the workload strings over db. Only the
// columns referenced by ws contribute values and sentences.
func Build(db *dataset.DB, ws []WorkloadString, cfg Config) *Embedder {
	if cfg.Dim <= 0 {
		cfg.Dim = 32
	}
	if cfg.MaxValuesPerColumn <= 0 {
		cfg.MaxValuesPerColumn = 20000
	}
	if cfg.MaxPairsPerString <= 0 {
		cfg.MaxPairsPerString = 3
	}
	cfg.SkipGram.Dim = cfg.Dim

	e := &Embedder{dim: cfg.Dim, exact: map[string]int{}, prefix: NewTrie(), suffix: NewTrie()}

	// Referenced columns and their distinct values.
	type colKey struct{ table, column string }
	colSet := map[colKey]bool{}
	for _, w := range ws {
		colSet[colKey{w.Table, w.Column}] = true
	}
	cols := make([]colKey, 0, len(colSet))
	for k := range colSet {
		cols = append(cols, k)
	}
	sort.Slice(cols, func(i, j int) bool {
		return cols[i].table+"."+cols[i].column < cols[j].table+"."+cols[j].column
	})

	valuesByColumn := map[string][]string{}
	for _, c := range cols {
		tab := db.Table(c.table)
		if tab == nil {
			continue
		}
		col := tab.StrColumn(c.column)
		if col == nil {
			continue
		}
		seen := map[string]bool{}
		var vals []string
		for _, v := range col {
			if v == "" || seen[v] {
				continue
			}
			seen[v] = true
			vals = append(vals, v)
			if len(vals) >= cfg.MaxValuesPerColumn {
				break
			}
		}
		valuesByColumn[c.table+"."+c.column] = vals
	}

	// Dictionary: full values always; rule-extracted substrings if enabled.
	dict := map[string]bool{}
	for _, vals := range valuesByColumn {
		for _, v := range vals {
			dict[v] = true
		}
	}
	// perValueTokens maps "table.column" -> value -> extracted tokens.
	perValueTokens := map[string]map[string][]string{}
	if cfg.UseRules {
		var cands []Rule
		for _, w := range ws {
			vals := valuesByColumn[w.Table+"."+w.Column]
			pairs := 0
			for _, v := range vals {
				if !matchesKind(w, v) {
					continue
				}
				cands = append(cands, CandidateRules(w, v)...)
				pairs++
				if pairs >= cfg.MaxPairsPerString {
					break
				}
			}
		}
		cands = dedupRules(cands)
		sel := SelectRules(cands, ws, valuesByColumn, cfg.Budget)
		e.Rules = sel.Rules
		for s := range sel.Dict {
			dict[s] = true
		}
		// Apply selected rules per value for sentence construction.
		for _, r := range sel.Rules {
			key := r.Table + "." + r.Column
			m := perValueTokens[key]
			if m == nil {
				m = map[string][]string{}
				perValueTokens[key] = m
			}
			for _, v := range valuesByColumn[key] {
				for _, s := range r.Extract(v) {
					m[v] = append(m[v], s)
				}
			}
		}
	}
	e.DictSize = len(dict)

	// Sentences: per tuple, the value plus its extracted substrings across
	// all referenced string columns of the table (coexistence in a tuple).
	colsByTable := map[string][]string{}
	for _, c := range cols {
		colsByTable[c.table] = append(colsByTable[c.table], c.column)
	}
	var sentences [][]string
	for table, columns := range colsByTable {
		tab := db.Table(table)
		if tab == nil {
			continue
		}
		colVecs := make([][]string, 0, len(columns))
		keys := make([]string, 0, len(columns))
		for _, c := range columns {
			if v := tab.StrColumn(c); v != nil {
				colVecs = append(colVecs, v)
				keys = append(keys, table+"."+c)
			}
		}
		for row := 0; row < tab.NumRows; row++ {
			var sent []string
			for i, vec := range colVecs {
				v := vec[row]
				if v == "" {
					continue
				}
				if dict[v] {
					sent = append(sent, v)
				}
				if m := perValueTokens[keys[i]]; m != nil {
					sent = append(sent, m[v]...)
				}
			}
			if len(sent) >= 2 {
				sentences = append(sentences, dedupStrings(sent))
			}
		}
	}

	sg := TrainSkipGram(sentences, cfg.SkipGram)

	// Index every dictionary token that received a vector; tokens unseen in
	// sentences get deterministic pseudo-vectors derived from the hash
	// embedding so lookups never silently fail.
	hash := HashEmbedder{DimN: cfg.Dim}
	dictTokens := make([]string, 0, len(dict))
	for s := range dict {
		dictTokens = append(dictTokens, s)
	}
	sort.Strings(dictTokens)
	for _, s := range dictTokens {
		var vec []float64
		if v := sg.Vector(s); v != nil {
			vec = v
		} else {
			vec = hash.Embed(s)
		}
		id := len(e.vectors)
		e.vectors = append(e.vectors, vec)
		e.exact[s] = id
		e.prefix.Insert(s, id)
		e.suffix.Insert(reverseString(s), id)
	}
	return e
}

func matchesKind(w WorkloadString, v string) bool {
	switch w.Kind {
	case MatchExact:
		return v == w.S
	case MatchPrefix:
		return strings.HasPrefix(v, w.S)
	case MatchSuffix:
		return strings.HasSuffix(v, w.S)
	default:
		return strings.Contains(v, w.S)
	}
}

// Embed maps a query string or LIKE pattern to its representation using the
// paper's online search: exact hit, else longest prefix and/or suffix match
// depending on the pattern anchoring, picking the longest match. Unknown
// strings return the zero vector.
func (e *Embedder) Embed(pattern string) []float64 {
	out := make([]float64, e.dim)
	core, hasPrefixWild, hasSuffixWild := patternCore(pattern)
	if core == "" {
		return out
	}
	if id, ok := e.exact[core]; ok {
		copy(out, e.vectors[id])
		return out
	}
	bestID, bestLen := -1, 0
	// Prefix search applies when the pattern anchors the core at the start
	// (no leading %), or for containment searches (paper: try both).
	if !hasPrefixWild || hasSuffixWild {
		if id, l := e.prefix.LongestPrefix(core); id >= 0 && l > bestLen {
			bestID, bestLen = id, l
		}
	}
	if hasPrefixWild || !hasSuffixWild {
		if id, l := e.suffix.LongestPrefix(reverseString(core)); id >= 0 && l > bestLen {
			bestID, bestLen = id, l
		}
	}
	if bestID >= 0 {
		copy(out, e.vectors[bestID])
	}
	return out
}

// patternCore extracts the longest literal segment of a LIKE pattern and
// reports whether a wildcard precedes/follows it.
func patternCore(pattern string) (core string, prefixWild, suffixWild bool) {
	if !strings.Contains(pattern, "%") {
		return pattern, false, false
	}
	parts := strings.Split(pattern, "%")
	best, bestIdx := "", -1
	for i, p := range parts {
		if len(p) > len(best) {
			best, bestIdx = p, i
		}
	}
	if bestIdx < 0 || best == "" {
		return "", true, true
	}
	return best, bestIdx > 0, bestIdx < len(parts)-1
}

// EmbedMany averages the embeddings of several strings (IN lists).
func (e *Embedder) EmbedMany(values []string) []float64 {
	out := make([]float64, e.dim)
	if len(values) == 0 {
		return out
	}
	for _, v := range values {
		vec := e.Embed(v)
		for i := range out {
			out[i] += vec[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(values))
	}
	return out
}

// PatternParts exposes LIKE-pattern analysis: the longest literal segment
// and whether a wildcard precedes/follows it.
func PatternParts(pattern string) (core string, prefixWild, suffixWild bool) {
	return patternCore(pattern)
}
