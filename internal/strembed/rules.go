// Package strembed implements the paper's string-embedding pipeline
// (Section 5): pattern-rule generation and greedy budgeted selection
// (Algorithm 1), substring dictionaries, skip-gram embeddings trained on
// per-tuple co-occurrence, prefix/suffix trie indexes with longest-match
// online lookup, and the hash-bitmap baseline embedding.
package strembed

import (
	"fmt"
	"strings"
)

// Class is a pattern-token class from the paper's DSL: capital letters P_C,
// lowercase letters P_l, digits P_n, whitespace P_s, and exact tokens P_t(T).
type Class int

// Pattern token classes.
const (
	ClassUpper Class = iota // P_C = [A-Z]+
	ClassLower              // P_l = [a-z]+
	ClassDigit              // P_n = [0-9]+
	ClassSpace              // P_s = whitespace+
	ClassLit                // P_t(T): exact token
)

// PatToken is one element of a pattern.
type PatToken struct {
	Class Class
	Lit   string // for ClassLit
}

func (t PatToken) String() string {
	switch t.Class {
	case ClassUpper:
		return "PC"
	case ClassLower:
		return "Pl"
	case ClassDigit:
		return "Pn"
	case ClassSpace:
		return "Ps"
	default:
		return fmt.Sprintf("Pt(%q)", t.Lit)
	}
}

// Fn is the rule's string function: extract the match's prefix or suffix.
type Fn int

// String functions.
const (
	Prefix Fn = iota
	Suffix
)

func (f Fn) String() string {
	if f == Prefix {
		return "Prefix"
	}
	return "Suffix"
}

// Rule is ⟨F, P, L⟩: apply pattern P to tuple values, extract the prefix or
// suffix of length L from every match.
type Rule struct {
	Fn      Fn
	Pattern []PatToken
	Length  int
	// Table/Column scope the rule to the column whose values produced it.
	Table, Column string
}

// Key returns a canonical identity string for deduplication.
func (r Rule) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d|%s.%s|", r.Fn, r.Length, r.Table, r.Column)
	for _, t := range r.Pattern {
		b.WriteString(t.String())
	}
	return b.String()
}

func (r Rule) String() string {
	toks := make([]string, len(r.Pattern))
	for i, t := range r.Pattern {
		toks[i] = t.String()
	}
	return fmt.Sprintf("⟨%s, %s, %d⟩", r.Fn, strings.Join(toks, ""), r.Length)
}

// classOf buckets a byte into its run class; punctuation and other bytes get
// ClassLit.
func classOf(c byte) Class {
	switch {
	case c >= 'A' && c <= 'Z':
		return ClassUpper
	case c >= 'a' && c <= 'z':
		return ClassLower
	case c >= '0' && c <= '9':
		return ClassDigit
	case c == ' ' || c == '\t':
		return ClassSpace
	default:
		return ClassLit
	}
}

// segment splits s into maximal same-class runs; punctuation runs become
// exact-token runs.
func segment(s string) []PatToken {
	var out []PatToken
	for i := 0; i < len(s); {
		c := classOf(s[i])
		j := i + 1
		for j < len(s) && classOf(s[j]) == c {
			j++
		}
		tok := PatToken{Class: c}
		if c == ClassLit {
			tok.Lit = s[i:j]
		}
		out = append(out, tok)
		i = j
	}
	return out
}

// matchAt attempts to match the pattern at position start of s using greedy
// maximal-run semantics, returning the end offset and ok.
func matchAt(s string, start int, pattern []PatToken) (int, bool) {
	pos := start
	for _, t := range pattern {
		if t.Class == ClassLit {
			if !strings.HasPrefix(s[pos:], t.Lit) {
				return 0, false
			}
			pos += len(t.Lit)
			continue
		}
		// Maximal run of the class; must be non-empty.
		j := pos
		for j < len(s) && classOf(s[j]) == t.Class {
			j++
		}
		if j == pos {
			return 0, false
		}
		pos = j
	}
	return pos, true
}

// Extract applies the rule to a tuple value, returning the extracted
// substrings (one per pattern match; overlapping matches at different start
// positions are all considered, as the paper's extraction is exhaustive).
func (r Rule) Extract(value string) []string {
	var out []string
	for start := 0; start < len(value); start++ {
		end, ok := matchAt(value, start, r.Pattern)
		if !ok {
			continue
		}
		m := value[start:end]
		if len(m) < r.Length {
			continue
		}
		if r.Fn == Prefix {
			out = append(out, m[:r.Length])
		} else {
			out = append(out, m[len(m)-r.Length:])
		}
		// Matches starting inside this match are still explored, but the
		// common case advances past single-position duplicates quickly.
	}
	return dedupStrings(out)
}

func dedupStrings(in []string) []string {
	if len(in) < 2 {
		return in
	}
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// MatchKind classifies how a workload query string matches tuple values.
type MatchKind int

// Match kinds: exact (=/IN), anchored prefix (LIKE 'q%'), anchored suffix
// (LIKE '%q') and containment (LIKE '%q%').
const (
	MatchExact MatchKind = iota
	MatchPrefix
	MatchSuffix
	MatchContains
)

// WorkloadString is one string literal from the query workload, scoped to
// the column it filters.
type WorkloadString struct {
	Table, Column string
	S             string // the pattern core, % stripped
	Kind          MatchKind
}

// maxCandidateRegions bounds region growth per occurrence; combos per region
// are bounded by maxComboRuns class runs.
const (
	maxCandidateRegions = 6
	maxComboRuns        = 5
)

// CandidateRules generates candidate rules for a workload string against one
// matching tuple value, the way Tables 4 and 5 of the paper enumerate them:
// every region extending the occurrence to successive run boundaries, with
// every class/literal pattern combination for the region.
func CandidateRules(w WorkloadString, value string) []Rule {
	if w.S == "" || len(w.S) > len(value) {
		return nil
	}
	var rules []Rule
	add := func(fn Fn, region string, endAtBoundary bool) {
		for _, pat := range regionPatterns(region, w.S, fn) {
			if fn == Suffix && !suffixPatternSound(pat, w.S, endAtBoundary) {
				continue
			}
			rules = append(rules, Rule{Fn: fn, Pattern: pat, Length: len(w.S),
				Table: w.Table, Column: w.Column})
		}
	}
	// Occurrences of the query string inside the value.
	for off := 0; ; {
		i := strings.Index(value[off:], w.S)
		if i < 0 {
			break
		}
		pos := off + i
		end := pos + len(w.S)
		if w.Kind == MatchPrefix || w.Kind == MatchContains || w.Kind == MatchExact {
			// Regions grow rightward from the occurrence to run boundaries.
			// Greedy matching only overshoots to the right, which the
			// prefix-L cut absorbs, so every grown region is sound.
			for n, stop := 0, end; n < maxCandidateRegions; n++ {
				add(Prefix, value[pos:stop], true)
				next := runBoundaryRight(value, stop)
				if next == stop {
					break
				}
				stop = next
			}
		}
		if w.Kind == MatchSuffix || w.Kind == MatchContains {
			// Regions grow leftward from the occurrence. If the occurrence
			// ends mid-run, greedy class matching would extend past it, so
			// only literal-terminated patterns stay sound (checked in add).
			boundary := end == len(value) || classOf(value[end]) != classOf(value[end-1])
			for n, start := 0, pos; n < maxCandidateRegions; n++ {
				add(Suffix, value[start:end], boundary)
				next := runBoundaryLeft(value, start)
				if next == start {
					break
				}
				start = next
			}
		}
		off = pos + 1
	}
	return dedupRules(rules)
}

// runBoundaryRight returns the end of the class run beginning at pos (or pos
// if at end of string).
func runBoundaryRight(s string, pos int) int {
	if pos >= len(s) {
		return pos
	}
	c := classOf(s[pos])
	j := pos + 1
	for j < len(s) && classOf(s[j]) == c {
		j++
	}
	return j
}

// runBoundaryLeft returns the start of the class run ending just before pos
// (or pos if at the beginning).
func runBoundaryLeft(s string, pos int) int {
	if pos <= 0 {
		return pos
	}
	c := classOf(s[pos-1])
	j := pos - 1
	for j > 0 && classOf(s[j-1]) == c {
		j--
	}
	return j
}

// regionPatterns enumerates patterns matching the region whose Prefix/Suffix
// of len(q) equals q: all class/literal run combinations, plus the anchored
// pattern that pins q itself as a literal.
func regionPatterns(region, q string, fn Fn) [][]PatToken {
	runs := segment(region)
	var out [][]PatToken
	if len(runs) <= maxComboRuns {
		combos := 1 << uint(len(runs))
		for c := 0; c < combos; c++ {
			pat := make([]PatToken, len(runs))
			pos := 0
			for i, r := range runs {
				runLen := runLength(region, pos, r)
				if c&(1<<uint(i)) != 0 || r.Class == ClassLit {
					pat[i] = PatToken{Class: ClassLit, Lit: region[pos : pos+runLen]}
				} else {
					pat[i] = r
				}
				pos += runLen
			}
			out = append(out, pat)
		}
	} else {
		// Region too fragmented: keep the all-class pattern only.
		out = append(out, segment(region))
	}
	// Anchored pattern: P_t(q) followed/preceded by the class runs of the
	// remainder (e.g. ⟨Prefix, Pt("Din")Pl, 3⟩).
	if fn == Prefix && len(q) < len(region) && strings.HasPrefix(region, q) {
		rest := segment(region[len(q):])
		out = append(out, append([]PatToken{{Class: ClassLit, Lit: q}}, rest...))
	}
	if fn == Suffix && len(q) < len(region) && strings.HasSuffix(region, q) {
		rest := segment(region[:len(region)-len(q)])
		out = append(out, append(rest, PatToken{Class: ClassLit, Lit: q}))
	}
	return out
}

// suffixPatternSound rejects suffix patterns that greedy maximal-run
// matching cannot anchor at the query string: (a) class-terminated patterns
// whose region ends mid-run in the source value would overshoot to the
// right; (b) anchored patterns whose P_t(q) literal follows a class token of
// q's own starting class would have the class token swallow q.
func suffixPatternSound(pat []PatToken, q string, endAtBoundary bool) bool {
	if len(pat) == 0 || len(q) == 0 {
		return false
	}
	last := pat[len(pat)-1]
	if last.Class != ClassLit && !endAtBoundary {
		return false
	}
	if last.Class == ClassLit && last.Lit == q && len(pat) > 1 {
		prev := pat[len(pat)-2]
		if prev.Class != ClassLit && prev.Class == classOf(q[0]) {
			return false
		}
	}
	return true
}

func runLength(region string, pos int, tok PatToken) int {
	if tok.Class == ClassLit && tok.Lit != "" {
		return len(tok.Lit)
	}
	return runBoundaryRight(region, pos) - pos
}

func dedupRules(in []Rule) []Rule {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, r := range in {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}
