package strembed

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"costest/internal/dataset"
)

func TestSegment(t *testing.T) {
	toks := segment("Dinos in Kas")
	want := []Class{ClassUpper, ClassLower, ClassSpace, ClassLower, ClassSpace, ClassUpper, ClassLower}
	if len(toks) != len(want) {
		t.Fatalf("segment = %v", toks)
	}
	for i, w := range want {
		if toks[i].Class != w {
			t.Fatalf("segment[%d] = %v, want class %d", i, toks[i], w)
		}
	}
	toks = segment("(2002-06-29)")
	// "(" lit, 2002 digit, "-" lit, 06 digit, "-" lit, 29 digit, ")" lit
	if len(toks) != 7 || toks[0].Lit != "(" || toks[1].Class != ClassDigit || toks[6].Lit != ")" {
		t.Fatalf("segment parens = %v", toks)
	}
}

func TestRuleExtractPrefix(t *testing.T) {
	// ⟨Prefix, PC Pl, 3⟩ applied to "Dinos in Kas" extracts Din and Kas.
	r := Rule{Fn: Prefix, Pattern: []PatToken{{Class: ClassUpper}, {Class: ClassLower}}, Length: 3}
	got := r.Extract("Dinos in Kas")
	if len(got) != 2 || got[0] != "Din" || got[1] != "Kas" {
		t.Fatalf("Extract = %v, want [Din Kas]", got)
	}
}

func TestRuleExtractTable5(t *testing.T) {
	// ⟨Suffix, Pt("(")Pn Pt("-")Pn, 2⟩ over "(2002-06-29)" extracts "06".
	r := Rule{Fn: Suffix, Length: 2, Pattern: []PatToken{
		{Class: ClassLit, Lit: "("}, {Class: ClassDigit}, {Class: ClassLit, Lit: "-"}, {Class: ClassDigit},
	}}
	got := r.Extract("(2002-06-29)")
	if len(got) != 1 || got[0] != "06" {
		t.Fatalf("Extract = %v, want [06]", got)
	}
	// The general rule also extracts "08" from the other date family.
	got = r.Extract("(2014-08-26)")
	if len(got) != 1 || got[0] != "08" {
		t.Fatalf("Extract = %v, want [08]", got)
	}
}

func TestRuleExtractAnchoredLiteral(t *testing.T) {
	// ⟨Prefix, Pt("Din")Pl, 3⟩ matches Dinos but not Dinners? "Dinners":
	// Pt("Din") then Pl matches "ners" — it does match; anchored literal
	// rules generalize by the class tail.
	r := Rule{Fn: Prefix, Length: 3, Pattern: []PatToken{
		{Class: ClassLit, Lit: "Din"}, {Class: ClassLower},
	}}
	if got := r.Extract("Dinos in Kas"); len(got) != 1 || got[0] != "Din" {
		t.Fatalf("Extract = %v", got)
	}
	if got := r.Extract("Schla in Tra"); len(got) != 0 {
		t.Fatalf("Extract on non-matching value = %v", got)
	}
}

func TestCandidateRulesCoverPaperExamples(t *testing.T) {
	w := WorkloadString{Table: "t", Column: "title", S: "Din", Kind: MatchPrefix}
	rules := CandidateRules(w, "Dinos in Kas")
	if len(rules) == 0 {
		t.Fatal("no candidates generated")
	}
	// Every candidate must re-extract "Din" from the source value.
	for _, r := range rules {
		found := false
		for _, s := range r.Extract("Dinos in Kas") {
			if s == "Din" {
				found = true
			}
		}
		if !found {
			t.Fatalf("rule %s does not re-extract Din", r)
		}
	}
	// The anchored Pt("Din")Pl rule from Table 4 must be among them.
	foundAnchored := false
	for _, r := range rules {
		if r.Key() == (Rule{Fn: Prefix, Length: 3, Table: "t", Column: "title",
			Pattern: []PatToken{{Class: ClassLit, Lit: "Din"}, {Class: ClassLower}}}).Key() {
			foundAnchored = true
		}
	}
	if !foundAnchored {
		t.Error("anchored Pt(Din)Pl candidate missing")
	}
}

func TestCandidateRulesContains(t *testing.T) {
	w := WorkloadString{Table: "t", Column: "title", S: "06", Kind: MatchContains}
	rules := CandidateRules(w, "(2002-06-29)")
	var prefixes, suffixes int
	for _, r := range rules {
		if r.Fn == Prefix {
			prefixes++
		} else {
			suffixes++
		}
		found := false
		for _, s := range r.Extract("(2002-06-29)") {
			if s == "06" {
				found = true
			}
		}
		if !found {
			t.Fatalf("rule %s does not re-extract 06", r)
		}
	}
	if prefixes == 0 || suffixes == 0 {
		t.Fatalf("contains search must generate both prefix (%d) and suffix (%d) rules", prefixes, suffixes)
	}
}

// Property: every candidate rule re-extracts its workload string from the
// pair value it was generated from.
func TestCandidateRulesSoundProperty(t *testing.T) {
	values := []string{"Dinos in Kas", "(2002-06-29)", "top 250 rank", "(co-production)", "Warner Bros. Pictures"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := values[rng.Intn(len(values))]
		if len(v) < 4 {
			return true
		}
		start := rng.Intn(len(v) - 3)
		ln := 2 + rng.Intn(3)
		if start+ln > len(v) {
			ln = len(v) - start
		}
		q := v[start : start+ln]
		kinds := []MatchKind{MatchPrefix, MatchSuffix, MatchContains}
		w := WorkloadString{Table: "t", Column: "c", S: q, Kind: kinds[rng.Intn(3)]}
		if (w.Kind == MatchPrefix && !strings.HasPrefix(v, q)) ||
			(w.Kind == MatchSuffix && !strings.HasSuffix(v, q)) {
			return true // kind does not apply to this pair
		}
		for _, r := range CandidateRules(w, v) {
			ok := false
			for _, s := range r.Extract(v) {
				if s == q {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectRulesCoversWorkload(t *testing.T) {
	values := map[string][]string{
		"t.title": {"Dinos in Kas", "Dinas Tra", "Schla in Tra", "(2002-06-29)", "(2014-08-26)"},
	}
	ws := []WorkloadString{
		{Table: "t", Column: "title", S: "Din", Kind: MatchPrefix},
		{Table: "t", Column: "title", S: "Sch", Kind: MatchPrefix},
		{Table: "t", Column: "title", S: "06", Kind: MatchContains},
		{Table: "t", Column: "title", S: "08", Kind: MatchContains},
	}
	var cands []Rule
	for _, w := range ws {
		for _, v := range values["t.title"] {
			cands = append(cands, CandidateRules(w, v)...)
		}
	}
	cands = dedupRules(cands)
	res := SelectRules(cands, ws, values, 1000)
	if res.Covered != len(ws) {
		t.Fatalf("covered %d/%d workload strings", res.Covered, len(ws))
	}
	for _, w := range ws {
		if !res.Dict[w.S] {
			t.Errorf("dictionary missing %q", w.S)
		}
	}
	// A general rule should cover both Din and Sch (e.g. ⟨Prefix, PC Pl, 3⟩),
	// so selection needs fewer rules than workload strings.
	if len(res.Rules) >= len(ws) {
		t.Logf("selection used %d rules for %d strings (generalization weak but acceptable)",
			len(res.Rules), len(ws))
	}
}

func TestSelectRulesBudget(t *testing.T) {
	values := map[string][]string{"t.c": make([]string, 0, 50)}
	for i := 0; i < 50; i++ {
		values["t.c"] = append(values["t.c"], "Abc"+strings.Repeat("x", i%7)+" Xyz")
	}
	ws := []WorkloadString{{Table: "t", Column: "c", S: "Abc", Kind: MatchPrefix}}
	var cands []Rule
	for _, v := range values["t.c"] {
		cands = append(cands, CandidateRules(ws[0], v)...)
	}
	res := SelectRules(dedupRules(cands), ws, values, 3)
	if len(res.Dict) > 3 && len(res.Rules) > 1 {
		t.Fatalf("budget violated: dict=%d rules=%d", len(res.Dict), len(res.Rules))
	}
}

func TestTrieLongestPrefix(t *testing.T) {
	tr := NewTrie()
	tr.Insert("Din", 0)
	tr.Insert("Dino", 1)
	tr.Insert("D", 2)
	id, l := tr.LongestPrefix("Dinosaur")
	if id != 1 || l != 4 {
		t.Fatalf("LongestPrefix = (%d, %d), want (1, 4)", id, l)
	}
	id, l = tr.LongestPrefix("Da")
	if id != 2 || l != 1 {
		t.Fatalf("LongestPrefix = (%d, %d), want (2, 1)", id, l)
	}
	id, _ = tr.LongestPrefix("xyz")
	if id != -1 {
		t.Fatalf("LongestPrefix miss = %d, want -1", id)
	}
	if tr.Lookup("Din") != 0 || tr.Lookup("Dinos") != -1 {
		t.Fatal("Lookup wrong")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

// Property: LongestPrefix of an inserted string returns that string's id.
func TestTrieRoundTripProperty(t *testing.T) {
	f := func(keys []string) bool {
		tr := NewTrie()
		clean := make([]string, 0, len(keys))
		for _, k := range keys {
			if k != "" {
				clean = append(clean, k)
			}
		}
		for i, k := range clean {
			tr.Insert(k, i)
		}
		for i, k := range clean {
			id := tr.Lookup(k)
			// Later duplicates overwrite earlier ids.
			if id < 0 || clean[id] != k {
				_ = i
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipGramCooccurrence(t *testing.T) {
	// Tokens a/b always co-occur; c/d always co-occur; the pairs never mix.
	var sentences [][]string
	for i := 0; i < 300; i++ {
		sentences = append(sentences, []string{"alpha", "beta"})
		sentences = append(sentences, []string{"gamma", "delta"})
	}
	cfg := DefaultSkipGramConfig()
	cfg.Dim = 16
	cfg.Epochs = 5
	sg := TrainSkipGram(sentences, cfg)
	same := sg.Similarity("alpha", "beta")
	cross := sg.Similarity("alpha", "gamma")
	if same <= cross {
		t.Fatalf("co-occurring pair similarity %.3f not above non-co-occurring %.3f", same, cross)
	}
}

func TestSkipGramDeterministic(t *testing.T) {
	sentences := [][]string{{"a", "b"}, {"b", "c"}, {"a", "c"}}
	cfg := DefaultSkipGramConfig()
	cfg.Dim = 8
	s1 := TrainSkipGram(sentences, cfg)
	s2 := TrainSkipGram(sentences, cfg)
	for i := range s1.Vectors {
		for j := range s1.Vectors[i] {
			if s1.Vectors[i][j] != s2.Vectors[i][j] {
				t.Fatal("skip-gram training nondeterministic")
			}
		}
	}
}

func TestHashEmbedder(t *testing.T) {
	h := HashEmbedder{DimN: 64}
	a := h.Embed("abc")
	b := h.Embed("abc%")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("wildcards must not change the hash bitmap")
		}
	}
	// Shared characters produce overlapping bits.
	c := h.Embed("cab")
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("anagrams must share the bitmap")
		}
	}
	if len(h.EmbedMany([]string{"ab", "cd"})) != 64 {
		t.Fatal("EmbedMany dim wrong")
	}
}

func TestPatternCore(t *testing.T) {
	cases := []struct {
		pat, core string
		pre, suf  bool
	}{
		{"Din%", "Din", false, true},
		{"%rank", "rank", true, false},
		{"%(co-production)%", "(co-production)", true, true},
		{"plain", "plain", false, false},
		{"a%bcd%e", "bcd", true, true},
		{"%%", "", true, true},
	}
	for _, c := range cases {
		core, pre, suf := patternCore(c.pat)
		if core != c.core || pre != c.pre || suf != c.suf {
			t.Errorf("patternCore(%q) = (%q,%v,%v), want (%q,%v,%v)",
				c.pat, core, pre, suf, c.core, c.pre, c.suf)
		}
	}
}

func TestBuildEmbedderEndToEnd(t *testing.T) {
	db := dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.02})
	ws := []WorkloadString{
		{Table: "movie_companies", Column: "note", S: "(co-production)", Kind: MatchContains},
		{Table: "movie_companies", Column: "note", S: "(presents)", Kind: MatchContains},
		{Table: "company_type", Column: "kind", S: "production companies", Kind: MatchExact},
		{Table: "info_type", Column: "info", S: "top 250 rank", Kind: MatchExact},
	}
	cfg := DefaultConfig()
	cfg.Dim = 16
	cfg.MaxValuesPerColumn = 2000
	cfg.SkipGram.Epochs = 2
	e := Build(db, ws, cfg)

	if e.Dim() != 16 {
		t.Fatalf("Dim = %d", e.Dim())
	}
	// Known pattern must embed to a non-zero vector.
	v := e.Embed("%(co-production)%")
	if norm(v) == 0 {
		t.Fatal("known pattern embedded to zero vector")
	}
	// Exact workload strings are in the dictionary.
	if norm(e.Embed("top 250 rank")) == 0 {
		t.Fatal("exact workload string missing from index")
	}
	// Unseen-but-prefix-matching pattern resolves via the trie.
	v2 := e.Embed("(co-production) extra%")
	if norm(v2) == 0 {
		t.Fatal("prefix fallback failed")
	}
	// Completely unknown alphabet yields zeros.
	if norm(e.Embed("ZZZZQQQ999###")) != 0 {
		t.Log("note: unknown string matched some dictionary prefix (acceptable)")
	}
}

func TestBuildEmbedderRulesHelpCoverage(t *testing.T) {
	db := dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.02})
	// A prefix pattern whose core is NOT a full value: rules should add the
	// substring to the dictionary, the NR variant should miss it.
	titles := db.Table("aka_title").StrColumn("title")
	var q string
	for _, v := range titles {
		if len(v) >= 4 {
			q = v[:4]
			break
		}
	}
	if q == "" {
		t.Skip("no usable title")
	}
	ws := []WorkloadString{{Table: "aka_title", Column: "title", S: q, Kind: MatchPrefix}}
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.SkipGram.Epochs = 1
	cfg.MaxValuesPerColumn = 1000

	withRules := Build(db, ws, cfg)
	cfg.UseRules = false
	noRules := Build(db, ws, cfg)

	if withRules.DictSize <= noRules.DictSize {
		t.Errorf("rules did not grow the dictionary: %d vs %d", withRules.DictSize, noRules.DictSize)
	}
	if len(withRules.Rules) == 0 {
		t.Error("no rules selected")
	}
}

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
