package strembed

// Trie is a byte-wise prefix trie mapping strings to vector ids, supporting
// the paper's longest-prefix online search (Section 5.3). Suffix search uses
// a second trie over reversed strings.
type Trie struct {
	root *trieNode
	size int
}

type trieNode struct {
	children map[byte]*trieNode
	vecID    int32 // -1 when not a terminal
}

// NewTrie returns an empty trie.
func NewTrie() *Trie {
	return &Trie{root: &trieNode{vecID: -1}}
}

// Len returns the number of stored strings.
func (t *Trie) Len() int { return t.size }

// Insert stores s with the given vector id, overwriting any previous id.
func (t *Trie) Insert(s string, vecID int) {
	n := t.root
	for i := 0; i < len(s); i++ {
		if n.children == nil {
			n.children = make(map[byte]*trieNode)
		}
		c := s[i]
		next := n.children[c]
		if next == nil {
			next = &trieNode{vecID: -1}
			n.children[c] = next
		}
		n = next
	}
	if n.vecID < 0 {
		t.size++
	}
	n.vecID = int32(vecID)
}

// Lookup returns the vector id of exactly s, or -1.
func (t *Trie) Lookup(s string) int {
	n := t.root
	for i := 0; i < len(s); i++ {
		n = n.children[s[i]]
		if n == nil {
			return -1
		}
	}
	return int(n.vecID)
}

// LongestPrefix returns the vector id of the longest stored string that is a
// prefix of s, with the match length; (-1, 0) when none exists.
func (t *Trie) LongestPrefix(s string) (vecID, length int) {
	vecID, length = -1, 0
	n := t.root
	if n.vecID >= 0 {
		vecID = int(n.vecID)
	}
	for i := 0; i < len(s); i++ {
		n = n.children[s[i]]
		if n == nil {
			return vecID, length
		}
		if n.vecID >= 0 {
			vecID, length = int(n.vecID), i+1
		}
	}
	return vecID, length
}

// reverseString reverses a byte string (dictionary entries are treated as
// byte sequences throughout).
func reverseString(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}
