package experiments

import (
	"fmt"

	"costest/internal/core"
	"costest/internal/feature"
	"costest/internal/metrics"
	"costest/internal/mscn"
	"costest/internal/plan"
	"costest/internal/query"
	"costest/internal/strembed"
	"costest/internal/workload"
)

// MethodErrors is one method's q-errors over one workload.
type MethodErrors struct {
	Name    string
	Errors  []float64
	Summary metrics.Summary
}

// WorkloadTable is one workload's method ladder (one block of Table 7/8).
type WorkloadTable struct {
	Workload string
	Methods  []MethodErrors
}

// Curve is a named per-epoch series (Figures 7 and 8).
type Curve struct {
	Name   string
	Values []float64
}

// NumericResults reproduces Section 6.2.
type NumericResults struct {
	Table7   []WorkloadTable // cardinality errors: JOB-light, Synthetic, Scale
	Table8   []WorkloadTable // cost errors
	Figure7a []Curve         // card validation error vs epoch
	Figure7b []Curve         // cost validation error vs epoch
}

// numericModels bundles everything trained for the numeric suite.
type numericModels struct {
	encS  *feature.Encoder // with sample bitmap
	encNS *feature.Encoder // without

	tlstmCard   *core.Model // TLSTMCard: LSTM rep, single-task card, samples
	tlstmNSCard *core.Model // TLSTMNSCard: no samples
	tnnCard     *core.Model // TNNCard: NN rep
	tlstmCost   *core.Model // TLSTMCost: single-task cost
	tlstmMCost  *core.Model // TLSTMMCost: multitask
	tnnMCost    *core.Model // TNNMCost: NN rep, multitask

	mscnCard   *mscn.Model
	mscnNSCard *mscn.Model
	mscnCost   *mscn.Model

	fig7a []Curve
	fig7b []Curve
}

// RunNumeric trains every numeric-workload method and evaluates Tables 7-8
// and Figure 7.
func (e *Env) RunNumeric() (*NumericResults, error) {
	cfg := e.Cfg

	trainQ := workload.TrainingNumeric(e.DB, cfg.Seed+10, cfg.TrainNumeric)
	labeled := e.Labeler.Label(trainQ)
	if len(labeled) < cfg.TrainNumeric/2 {
		return nil, fmt.Errorf("experiments: only %d/%d numeric training queries labeled", len(labeled), cfg.TrainNumeric)
	}
	train, valid := workload.Split(labeled, 0.9)

	m, err := e.trainNumericModels(train, valid)
	if err != nil {
		return nil, err
	}
	e.PG.Calibrate(plansOf(train))

	res := &NumericResults{Figure7a: m.fig7a, Figure7b: m.fig7b}

	tests := []struct {
		name string
		qs   []*query.Query
	}{
		{"JOB-light", workload.JOBLight(e.DB, cfg.Seed+20, cfg.TestJOBLight)},
		{"Synthetic", workload.Synthetic(e.DB, cfg.Seed+21, cfg.TestSynthetic)},
		{"Scale", workload.Scale(e.DB, cfg.Seed+22, cfg.TestScale)},
	}
	for _, tw := range tests {
		samples := e.Labeler.Label(tw.qs)
		if len(samples) == 0 {
			return nil, fmt.Errorf("experiments: workload %s produced no labeled queries", tw.name)
		}
		card, cost, err := e.evalNumeric(m, samples)
		if err != nil {
			return nil, err
		}
		res.Table7 = append(res.Table7, WorkloadTable{Workload: tw.name, Methods: card})
		res.Table8 = append(res.Table8, WorkloadTable{Workload: tw.name, Methods: cost})
	}
	return res, nil
}

func plansOf(samples []*workload.Labeled) []*plan.Node {
	out := make([]*plan.Node, len(samples))
	for i, s := range samples {
		out[i] = s.Plan
	}
	return out
}

// trainNumericModels trains the six tree models and three MSCN variants.
func (e *Env) trainNumericModels(train, valid []*workload.Labeled) (*numericModels, error) {
	cfg := e.Cfg
	m := &numericModels{
		encS:  feature.NewEncoder(e.Cat, strembed.ZeroEncoder{}, true),
		encNS: feature.NewEncoder(e.Cat, strembed.ZeroEncoder{}, false),
	}

	encode := func(enc *feature.Encoder, samples []*workload.Labeled) ([]*feature.EncodedPlan, error) {
		out := make([]*feature.EncodedPlan, 0, len(samples))
		for _, s := range samples {
			ep, err := enc.Encode(s.Plan)
			if err != nil {
				return nil, err
			}
			out = append(out, ep)
		}
		return out, nil
	}
	trS, err := encode(m.encS, train)
	if err != nil {
		return nil, err
	}
	vaS, err := encode(m.encS, valid)
	if err != nil {
		return nil, err
	}
	trNS, err := encode(m.encNS, train)
	if err != nil {
		return nil, err
	}
	vaNS, err := encode(m.encNS, valid)
	if err != nil {
		return nil, err
	}

	fit := func(model *core.Model, tr, va []*feature.EncodedPlan) []core.EpochStats {
		return e.fitModel(model, tr, va)
	}
	cardCurve := func(h []core.EpochStats) []float64 {
		out := make([]float64, len(h))
		for i, s := range h {
			out[i] = s.ValidCard
		}
		return out
	}
	costCurve := func(h []core.EpochStats) []float64 {
		out := make([]float64, len(h))
		for i, s := range h {
			out[i] = s.ValidCost
		}
		return out
	}

	// Numeric methods use the tree-LSTM predicate model (Table 6).
	m.tlstmCard = core.New(e.coreConfig(core.PredLSTM, core.RepLSTM, core.TargetCard), m.encS)
	hTL := fit(m.tlstmCard, trS, vaS)
	m.tlstmNSCard = core.New(e.coreConfig(core.PredLSTM, core.RepLSTM, core.TargetCard), m.encNS)
	hTLNS := fit(m.tlstmNSCard, trNS, vaNS)
	m.tnnCard = core.New(e.coreConfig(core.PredLSTM, core.RepNN, core.TargetCard), m.encS)
	fit(m.tnnCard, trS, vaS)
	m.tlstmCost = core.New(e.coreConfig(core.PredLSTM, core.RepLSTM, core.TargetCost), m.encS)
	hTC := fit(m.tlstmCost, trS, vaS)
	m.tlstmMCost = core.New(e.coreConfig(core.PredLSTM, core.RepLSTM, core.TargetBoth), m.encS)
	hTM := fit(m.tlstmMCost, trS, vaS)
	m.tnnMCost = core.New(e.coreConfig(core.PredLSTM, core.RepNN, core.TargetBoth), m.encS)
	fit(m.tnnMCost, trS, vaS)

	// MSCN variants.
	mkMSCN := func(sample bool, target func(*workload.Labeled) float64) (*mscn.Model, []mscn.EpochStats, error) {
		model := mscn.New(mscn.Config{
			Hidden: cfg.MSCNWidth, SampleBitmap: sample,
			LearnRate: 0.003, GradClip: 5, Seed: cfg.Seed,
		}, e.Cat)
		var trF, vaF []*mscn.Sample
		for _, s := range train {
			f, err := model.Featurize(s.Query)
			if err != nil {
				return nil, nil, err
			}
			trF = append(trF, &mscn.Sample{F: f, Target: target(s)})
		}
		for _, s := range valid {
			f, err := model.Featurize(s.Query)
			if err != nil {
				return nil, nil, err
			}
			vaF = append(vaF, &mscn.Sample{F: f, Target: target(s)})
		}
		tr := mscn.NewTrainer(model)
		hist := tr.Fit(trF, vaF, cfg.Epochs, cfg.BatchSize)
		return model, hist, nil
	}
	cardOf := func(s *workload.Labeled) float64 { return s.Card }
	costOf := func(s *workload.Labeled) float64 { return s.Cost }

	var hist []mscn.EpochStats
	if m.mscnCard, hist, err = mkMSCN(true, cardOf); err != nil {
		return nil, err
	}
	mscnCardCurve := mscnCurve(hist)
	if m.mscnNSCard, hist, err = mkMSCN(false, cardOf); err != nil {
		return nil, err
	}
	mscnNSCurve := mscnCurve(hist)
	if m.mscnCost, _, err = mkMSCN(true, costOf); err != nil {
		return nil, err
	}

	m.fig7a = []Curve{
		{Name: "MSCNNSCard", Values: mscnNSCurve},
		{Name: "MSCNCard", Values: mscnCardCurve},
		{Name: "TLSTMNSCard", Values: cardCurve(hTLNS)},
		{Name: "TLSTMCard", Values: cardCurve(hTL)},
	}
	m.fig7b = []Curve{
		{Name: "TLSTMCost", Values: costCurve(hTC)},
		{Name: "TLSTMMCost", Values: costCurve(hTM)},
	}
	return m, nil
}

func mscnCurve(h []mscn.EpochStats) []float64 {
	out := make([]float64, len(h))
	for i, s := range h {
		out[i] = s.ValidQ
	}
	return out
}

// evalNumeric computes the card (Table 7) and cost (Table 8) ladders on one
// labeled test workload.
func (e *Env) evalNumeric(m *numericModels, samples []*workload.Labeled) (card, cost []MethodErrors, err error) {
	n := len(samples)
	pgCard := make([]float64, 0, n)
	pgCost := make([]float64, 0, n)
	mscnCardE := make([]float64, 0, n)
	mscnNSCardE := make([]float64, 0, n)
	mscnCostE := make([]float64, 0, n)
	tlstmCardE := make([]float64, 0, n)
	tlstmNSCardE := make([]float64, 0, n)
	tnnCardE := make([]float64, 0, n)
	tlstmCostE := make([]float64, 0, n)
	tlstmMCostE := make([]float64, 0, n)
	tnnMCostE := make([]float64, 0, n)

	for _, s := range samples {
		p := s.Plan.Clone()
		pgCard = append(pgCard, metrics.QError(e.PG.EstimateCard(p), s.Card))
		pgCost = append(pgCost, metrics.QError(e.PG.EstimateCost(p), s.Cost))

		if est, err2 := m.mscnCard.Estimate(s.Query); err2 == nil {
			mscnCardE = append(mscnCardE, metrics.QError(est, s.Card))
		}
		if est, err2 := m.mscnNSCard.Estimate(s.Query); err2 == nil {
			mscnNSCardE = append(mscnNSCardE, metrics.QError(est, s.Card))
		}
		if est, err2 := m.mscnCost.Estimate(s.Query); err2 == nil {
			mscnCostE = append(mscnCostE, metrics.QError(est, s.Cost))
		}

		epS, err2 := m.encS.Encode(s.Plan)
		if err2 != nil {
			return nil, nil, err2
		}
		epNS, err2 := m.encNS.Encode(s.Plan)
		if err2 != nil {
			return nil, nil, err2
		}
		_, c := m.tlstmCard.Estimate(epS)
		tlstmCardE = append(tlstmCardE, metrics.QError(c, s.Card))
		_, c = m.tlstmNSCard.Estimate(epNS)
		tlstmNSCardE = append(tlstmNSCardE, metrics.QError(c, s.Card))
		_, c = m.tnnCard.Estimate(epS)
		tnnCardE = append(tnnCardE, metrics.QError(c, s.Card))

		co, _ := m.tlstmCost.Estimate(epS)
		tlstmCostE = append(tlstmCostE, metrics.QError(co, s.Cost))
		co, _ = m.tlstmMCost.Estimate(epS)
		tlstmMCostE = append(tlstmMCostE, metrics.QError(co, s.Cost))
		co, _ = m.tnnMCost.Estimate(epS)
		tnnMCostE = append(tnnMCostE, metrics.QError(co, s.Cost))
	}

	mk := func(name string, errs []float64) MethodErrors {
		return MethodErrors{Name: name, Errors: errs, Summary: metrics.Summarize(errs)}
	}
	card = []MethodErrors{
		mk("PGCard", pgCard),
		mk("MSCNCard", mscnCardE),
		mk("MSCNNSCard", mscnNSCardE),
		mk("TLSTMNSCard", tlstmNSCardE),
		mk("TNNCard", tnnCardE),
		mk("TLSTMCard", tlstmCardE),
	}
	cost = []MethodErrors{
		mk("PGCost", pgCost),
		mk("MSCNCost", mscnCostE),
		mk("TLSTMCost", tlstmCostE),
		mk("TNNMCost", tnnMCostE),
		mk("TLSTMMCost", tlstmMCostE),
	}
	return card, cost, nil
}
