package experiments

import (
	"strings"
	"testing"

	"costest/internal/query"
	"costest/internal/sqlpred"
	"costest/internal/workload"
)

// microConfig keeps the end-to-end suites fast enough for unit tests.
func microConfig() Config {
	c := Small()
	c.Scale = 0.02
	c.TrainNumeric = 150
	c.TrainStrings = 120
	c.SingleTable = 150
	c.TestSynthetic = 40
	c.TestScale = 30
	c.TestJOBLight = 15
	c.TestJOB = 20
	c.Epochs = 5
	c.Hidden = 16
	c.Embed = 8
	c.EstHidden = 8
	c.StrDim = 12
	c.MSCNWidth = 16
	c.SampleSize = 32
	return c
}

func TestNumericSuiteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite")
	}
	env := NewEnv(microConfig())
	res, err := env.RunNumeric()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table7) != 3 || len(res.Table8) != 3 {
		t.Fatalf("tables: %d card workloads, %d cost workloads", len(res.Table7), len(res.Table8))
	}
	for _, wt := range res.Table7 {
		if len(wt.Methods) != 6 {
			t.Fatalf("%s: %d card methods", wt.Workload, len(wt.Methods))
		}
		for _, m := range wt.Methods {
			if m.Summary.N == 0 {
				t.Fatalf("%s/%s: no errors recorded", wt.Workload, m.Name)
			}
			if m.Summary.Mean < 1 {
				t.Fatalf("%s/%s: mean q-error %g < 1", wt.Workload, m.Name, m.Summary.Mean)
			}
		}
	}
	// Shape check (the paper's headline): the learned estimators beat the
	// PG baseline on cardinality for the joins-heavy workloads, by mean.
	for _, wt := range res.Table7 {
		pg := wt.Methods[0].Summary.Mean
		tlstm := wt.Methods[len(wt.Methods)-1].Summary.Mean
		if tlstm > pg {
			t.Logf("note: %s TLSTMCard mean %.1f vs PG %.1f (micro config, shape may be noisy)",
				wt.Workload, tlstm, pg)
		}
	}
	if len(res.Figure7a) != 4 || len(res.Figure7b) != 2 {
		t.Fatalf("figure 7 curves: %d/%d", len(res.Figure7a), len(res.Figure7b))
	}
	for _, c := range res.Figure7a {
		if len(c.Values) != microConfig().Epochs {
			t.Fatalf("curve %s has %d points", c.Name, len(c.Values))
		}
	}
	out := ReportNumeric(res)
	for _, want := range []string{"Table 7", "Table 8", "JOB-light", "PGCard", "TLSTMMCost"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestStringSuiteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite")
	}
	env := NewEnv(microConfig())
	res, err := env.RunStrings()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table10) != 5 || len(res.Table11) != 5 {
		t.Fatalf("tables 10/11 rows: %d/%d", len(res.Table10), len(res.Table11))
	}
	for _, m := range append(res.Table10, res.Table11...) {
		if m.Summary.N == 0 {
			t.Fatalf("%s: no errors", m.Name)
		}
	}
	if len(res.Figure8) != 4 {
		t.Fatalf("figure 8 curves: %d", len(res.Figure8))
	}
	if len(res.Figure9) != 3 {
		t.Fatalf("figure 9 methods: %d", len(res.Figure9))
	}
	if len(res.Figure10) != 3 {
		t.Fatalf("figure 10 methods: %d", len(res.Figure10))
	}
	if len(res.Table12) != 7 {
		t.Fatalf("table 12 rows: %d", len(res.Table12))
	}
	for _, row := range res.Table12 {
		if row.PerMsQ <= 0 {
			t.Fatalf("%s: non-positive timing", row.Method)
		}
	}
	out := ReportStrings(res)
	for _, want := range []string{"Table 10", "Table 11", "Figure 9", "Figure 10", "Table 12", "TPoolEmbR"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestCollectWorkloadStrings(t *testing.T) {
	q := &query.Query{
		Tables: []string{"movie_companies"},
		Filters: map[string]sqlpred.Pred{
			"movie_companies": sqlpred.AndAll(
				&sqlpred.Atom{Table: "movie_companies", Column: "note", Op: sqlpred.OpLike,
					StrVal: "%(co-production)%", IsStr: true},
				&sqlpred.Atom{Table: "movie_companies", Column: "note", Op: sqlpred.OpEq,
					StrVal: "(presents)", IsStr: true},
				&sqlpred.Atom{Table: "movie_companies", Column: "note", Op: sqlpred.OpIn,
					InVals: []string{"a", "b"}, IsStr: true},
				&sqlpred.Atom{Table: "movie_companies", Column: "note", Op: sqlpred.OpLike,
					StrVal: "Din%", IsStr: true},
			),
		},
	}
	ws := CollectWorkloadStrings([]*query.Query{q})
	if len(ws) != 5 {
		t.Fatalf("collected %d strings, want 5", len(ws))
	}
	kinds := map[string]int{}
	for _, w := range ws {
		switch w.S {
		case "(co-production)":
			kinds["contains"] = int(w.Kind)
		case "Din":
			kinds["prefix"] = int(w.Kind)
		}
	}
	if kinds["contains"] != 3 { // MatchContains
		t.Errorf("co-production kind = %d", kinds["contains"])
	}
	if kinds["prefix"] != 1 { // MatchPrefix
		t.Errorf("Din kind = %d", kinds["prefix"])
	}
	_ = workload.JOBFullSize
}
