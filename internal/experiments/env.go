// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6): cardinality and cost q-error tables on the numeric
// workloads (Tables 7-8), the string-predicate JOB workload (Tables 10-11),
// validation-error curves (Figures 7-8), error distributions (Figures 9-10)
// and the efficiency comparison (Table 12). The harness builds the database,
// statistics, workloads and models once per suite and shares them across
// experiments.
package experiments

import (
	"costest/internal/core"
	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/feature"
	"costest/internal/pg"
	"costest/internal/planner"
	"costest/internal/stats"
	"costest/internal/workload"
)

// Config sizes a reproduction run. Small() fits in seconds for benches and
// CI; Full() approaches the paper's workload sizes (minutes of CPU).
type Config struct {
	Seed  int64
	Scale float64 // dataset scale factor

	SampleSize int // sample-bitmap length (paper: 1000)
	Buckets    int // histogram resolution

	TrainNumeric int // numeric training queries (Section 6.2)
	TrainStrings int // string training queries (Section 6.3.2)
	SingleTable  int // single-table string workload size (Section 6.3.1)

	TestSynthetic int // paper: 5000
	TestScale     int // paper: 500
	TestJOBLight  int // paper: 70
	TestJOB       int // paper: 113

	Epochs    int
	BatchSize int

	Hidden    int // representation width
	Embed     int // per-feature embedding width
	EstHidden int
	StrDim    int // string embedding width
	MSCNWidth int

	Workers int

	// Trainer selects the model-training runtime: "parallel" drives every
	// core-model fit through ParallelTrainer.Fit (the data-parallel epoch
	// loop), "sequential" through the per-sample Trainer.Fit. The parallel
	// path with Shards > 1 reassociates gradient sums across shard
	// boundaries, so q-errors match the sequential path to floating-point
	// reassociation, not bit for bit.
	Trainer string
	// Shards is the data-parallel width of the parallel trainer (<= 0
	// resolves to GOMAXPROCS).
	Shards int
}

// Trainer runtime selectors for Config.Trainer.
const (
	TrainerSequential = "sequential"
	TrainerParallel   = "parallel"
)

// Small returns a configuration that runs the full suite in roughly a
// minute of CPU — the default for `go test -bench`.
func Small() Config {
	return Config{
		Seed:          1,
		Scale:         0.04,
		SampleSize:    64,
		Buckets:       40,
		TrainNumeric:  550,
		TrainStrings:  420,
		SingleTable:   500,
		TestSynthetic: 150,
		TestScale:     90,
		TestJOBLight:  40,
		TestJOB:       60,
		Epochs:        14,
		BatchSize:     16,
		Hidden:        24,
		Embed:         12,
		EstHidden:     12,
		StrDim:        16,
		MSCNWidth:     32,
		Workers:       0,
		Trainer:       TrainerParallel,
		Shards:        0,
	}
}

// Full returns a configuration at the paper's workload sizes. Expect tens
// of minutes of CPU.
func Full() Config {
	return Config{
		Seed:          1,
		Scale:         1.0,
		SampleSize:    1000,
		Buckets:       100,
		TrainNumeric:  10000,
		TrainStrings:  8000,
		SingleTable:   5000,
		TestSynthetic: workload.SyntheticSize,
		TestScale:     workload.ScaleSize,
		TestJOBLight:  workload.JOBLightSize,
		TestJOB:       workload.JOBFullSize,
		Epochs:        30,
		BatchSize:     64,
		Hidden:        64,
		Embed:         32,
		EstHidden:     32,
		StrDim:        32,
		MSCNWidth:     64,
		Workers:       0,
		Trainer:       TrainerParallel,
		Shards:        0,
	}
}

// Env is the shared experimental environment.
type Env struct {
	Cfg     Config
	DB      *dataset.DB
	Cat     *stats.Catalog
	Eng     *exec.Engine
	PG      *pg.Estimator
	Planner *planner.Planner
	Labeler *workload.Labeler
}

// NewEnv generates the database, collects statistics and wires the engine,
// baseline estimator and planner.
func NewEnv(cfg Config) *Env {
	db := dataset.GenerateIMDB(dataset.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	cat := stats.Collect(db, stats.Options{
		Buckets: cfg.Buckets, SampleSize: cfg.SampleSize, Seed: cfg.Seed,
	})
	eng := exec.NewEngine(db)
	est := pg.New(cat)
	pl := planner.New(est, db.Schema)
	return &Env{
		Cfg:     cfg,
		DB:      db,
		Cat:     cat,
		Eng:     eng,
		PG:      est,
		Planner: pl,
		Labeler: &workload.Labeler{Planner: pl, Engine: eng, Parallelism: cfg.Workers},
	}
}

// fitModel trains model on tr with per-epoch validation on va through the
// runtime Config.Trainer selects — the single entry point every suite's
// model fits go through, so the whole pipeline switches trainers together.
// An empty selector defaults to the sequential runtime (zero-valued Configs
// keep their historical behavior).
func (e *Env) fitModel(model *core.Model, tr, va []*feature.EncodedPlan) []core.EpochStats {
	if e.Cfg.Trainer == TrainerParallel {
		pt := core.NewParallelTrainer(model, e.Cfg.Shards)
		defer pt.Close()
		return pt.Fit(tr, va, e.Cfg.Epochs, e.Cfg.BatchSize, e.Cfg.Workers, nil)
	}
	return core.NewTrainer(model).Fit(tr, va, e.Cfg.Epochs, e.Cfg.BatchSize, nil)
}

// coreConfig builds a model config at the environment's sizes.
func (e *Env) coreConfig(pred core.PredModel, rep core.RepModel, target core.Target) core.Config {
	c := core.DefaultConfig()
	c.OpEmbed, c.MetaEmbed, c.BitmapEmbed, c.PredEmbed = e.Cfg.Embed, e.Cfg.Embed, e.Cfg.Embed, e.Cfg.Embed
	c.Hidden = e.Cfg.Hidden
	c.EstHidden = e.Cfg.EstHidden
	c.Pred = pred
	c.Rep = rep
	c.Target = target
	c.Seed = e.Cfg.Seed
	c.LearnRate = 0.003
	return c
}
