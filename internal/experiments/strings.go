package experiments

import (
	"fmt"

	"costest/internal/core"
	"costest/internal/feature"
	"costest/internal/metrics"
	"costest/internal/query"
	"costest/internal/sqlpred"
	"costest/internal/strembed"
	"costest/internal/workload"
)

// CostPoint pairs a real cost with a method's estimate (Figure 10).
type CostPoint struct {
	Real float64
	Est  float64
}

// StringResults reproduces Section 6.3 plus the efficiency study.
type StringResults struct {
	Table10  []MethodErrors     // cardinality errors on the JOB workload
	Table11  []MethodErrors     // cost errors on the JOB workload
	Figure8  []Curve            // single-table card validation curves
	Figure9  map[string]BoxPair // card+cost box stats per method
	Figure10 map[string][]CostPoint
	Table12  []TimingRow
}

// BoxPair holds Figure 9's card and cost boxes for one method.
type BoxPair struct {
	Card metrics.BoxStats
	Cost metrics.BoxStats
}

// TimingRow is one Table 12 entry.
type TimingRow struct {
	Method string
	Batch  bool
	PerMsQ float64 // milliseconds per query
}

// stringModels bundles the string-workload method ladder.
type stringModels struct {
	encHash *feature.Encoder
	encNR   *feature.Encoder
	encR    *feature.Encoder

	tlstmHash  *core.Model // TLSTMHashMCost/Card (multitask)
	tlstmEmbNR *core.Model
	tlstmEmbR  *core.Model
	tpoolEmbR  *core.Model
}

// RunStrings trains the string-predicate ladder and evaluates Tables 10-12
// and Figures 8-10.
func (e *Env) RunStrings() (*StringResults, error) {
	cfg := e.Cfg

	trainQ := workload.TrainingStrings(e.DB, cfg.Seed+30, cfg.TrainStrings)
	labeled := e.Labeler.Label(trainQ)
	if len(labeled) < cfg.TrainStrings/3 {
		return nil, fmt.Errorf("experiments: only %d/%d string training queries labeled", len(labeled), cfg.TrainStrings)
	}
	train, valid := workload.Split(labeled, 0.9)

	// String encoders are built from the training workload's literals.
	ws := CollectWorkloadStrings(queriesOf(train))
	embCfg := strembed.DefaultConfig()
	embCfg.Dim = cfg.StrDim
	embCfg.MaxValuesPerColumn = 4000
	embCfg.SkipGram.Epochs = 2
	embCfg.SkipGram.Seed = cfg.Seed
	embCfg.UseRules = false
	embNR := strembed.Build(e.DB, ws, embCfg)
	embCfg.UseRules = true
	embR := strembed.Build(e.DB, ws, embCfg)

	m := &stringModels{
		encHash: feature.NewEncoder(e.Cat, strembed.HashEmbedder{DimN: cfg.StrDim}, true),
		encNR:   feature.NewEncoder(e.Cat, embNR, true),
		encR:    feature.NewEncoder(e.Cat, embR, true),
	}

	fit := func(pred core.PredModel, enc *feature.Encoder) (*core.Model, error) {
		model := core.New(e.coreConfig(pred, core.RepLSTM, core.TargetBoth), enc)
		tr, err := encodeAll(enc, train)
		if err != nil {
			return nil, err
		}
		va, err := encodeAll(enc, valid)
		if err != nil {
			return nil, err
		}
		e.fitModel(model, tr, va)
		return model, nil
	}
	var err error
	if m.tlstmHash, err = fit(core.PredLSTM, m.encHash); err != nil {
		return nil, err
	}
	if m.tlstmEmbNR, err = fit(core.PredLSTM, m.encNR); err != nil {
		return nil, err
	}
	if m.tlstmEmbR, err = fit(core.PredLSTM, m.encR); err != nil {
		return nil, err
	}
	if m.tpoolEmbR, err = fit(core.PredPool, m.encR); err != nil {
		return nil, err
	}

	e.PG.Calibrate(plansOf(train))

	jobQ := workload.JOBFull(e.DB, cfg.Seed+40, cfg.TestJOB)
	jobSamples := e.Labeler.Label(jobQ)
	if len(jobSamples) == 0 {
		return nil, fmt.Errorf("experiments: no labelable JOB queries")
	}

	res := &StringResults{
		Figure9:  map[string]BoxPair{},
		Figure10: map[string][]CostPoint{},
	}
	if err := e.evalStrings(m, jobSamples, res); err != nil {
		return nil, err
	}
	if res.Figure8, err = e.runSingleTable(); err != nil {
		return nil, err
	}
	if res.Table12, err = e.runTiming(m, jobSamples); err != nil {
		return nil, err
	}
	return res, nil
}

func queriesOf(samples []*workload.Labeled) []*query.Query {
	out := make([]*query.Query, len(samples))
	for i, s := range samples {
		out[i] = s.Query
	}
	return out
}

func encodeAll(enc *feature.Encoder, samples []*workload.Labeled) ([]*feature.EncodedPlan, error) {
	out := make([]*feature.EncodedPlan, 0, len(samples))
	for _, s := range samples {
		ep, err := enc.Encode(s.Plan)
		if err != nil {
			return nil, err
		}
		out = append(out, ep)
	}
	return out, nil
}

// CollectWorkloadStrings extracts the string literals of a query set, scoped
// to their columns and classified by match kind — the S_W of Section 5.
func CollectWorkloadStrings(qs []*query.Query) []strembed.WorkloadString {
	var out []strembed.WorkloadString
	seen := map[string]bool{}
	add := func(w strembed.WorkloadString) {
		key := w.Table + "|" + w.Column + "|" + w.S + "|" + fmt.Sprint(w.Kind)
		if w.S != "" && !seen[key] {
			seen[key] = true
			out = append(out, w)
		}
	}
	for _, q := range qs {
		for _, f := range q.Filters {
			sqlpred.Walk(f, func(a *sqlpred.Atom) {
				if !a.IsStr {
					return
				}
				switch a.Op {
				case sqlpred.OpEq, sqlpred.OpNe:
					add(strembed.WorkloadString{Table: a.Table, Column: a.Column,
						S: a.StrVal, Kind: strembed.MatchExact})
				case sqlpred.OpIn:
					for _, v := range a.InVals {
						add(strembed.WorkloadString{Table: a.Table, Column: a.Column,
							S: v, Kind: strembed.MatchExact})
					}
				case sqlpred.OpLike, sqlpred.OpNotLike:
					core, pre, suf := strembed.PatternParts(a.StrVal)
					kind := strembed.MatchExact
					switch {
					case pre && suf:
						kind = strembed.MatchContains
					case pre:
						kind = strembed.MatchSuffix
					case suf:
						kind = strembed.MatchPrefix
					}
					add(strembed.WorkloadString{Table: a.Table, Column: a.Column,
						S: core, Kind: kind})
				}
			})
		}
	}
	return out
}

// evalStrings fills Tables 10-11 and Figures 9-10 from the JOB samples.
func (e *Env) evalStrings(m *stringModels, samples []*workload.Labeled, res *StringResults) error {
	type ladder struct {
		name  string
		model *core.Model
		enc   *feature.Encoder
	}
	methods := []ladder{
		{"TLSTMHash", m.tlstmHash, m.encHash},
		{"TLSTMEmbNR", m.tlstmEmbNR, m.encNR},
		{"TLSTMEmbR", m.tlstmEmbR, m.encR},
		{"TPoolEmbR", m.tpoolEmbR, m.encR},
	}

	pgCardE := make([]float64, 0, len(samples))
	pgCostE := make([]float64, 0, len(samples))
	cardE := make(map[string][]float64)
	costE := make(map[string][]float64)
	for _, s := range samples {
		p := s.Plan.Clone()
		pgCardE = append(pgCardE, metrics.QError(e.PG.EstimateCard(p), s.Card))
		pgCost := e.PG.EstimateCost(p)
		pgCostE = append(pgCostE, metrics.QError(pgCost, s.Cost))
		res.Figure10["PGCost"] = append(res.Figure10["PGCost"], CostPoint{Real: s.Cost, Est: pgCost})

		for _, md := range methods {
			ep, err := md.enc.Encode(s.Plan)
			if err != nil {
				return err
			}
			cost, card := md.model.Estimate(ep)
			cardE[md.name] = append(cardE[md.name], metrics.QError(card, s.Card))
			costE[md.name] = append(costE[md.name], metrics.QError(cost, s.Cost))
			if md.name == "TLSTMEmbNR" || md.name == "TPoolEmbR" {
				res.Figure10[md.name+"MCost"] = append(res.Figure10[md.name+"MCost"],
					CostPoint{Real: s.Cost, Est: cost})
			}
		}
	}

	mk := func(name string, errs []float64) MethodErrors {
		return MethodErrors{Name: name, Errors: errs, Summary: metrics.Summarize(errs)}
	}
	res.Table10 = []MethodErrors{
		mk("PGCard", pgCardE),
		mk("TLSTMHashCard", cardE["TLSTMHash"]),
		mk("TLSTMEmbNRCard", cardE["TLSTMEmbNR"]),
		mk("TLSTMEmbRCard", cardE["TLSTMEmbR"]),
		mk("TPoolEmbRCard", cardE["TPoolEmbR"]),
	}
	res.Table11 = []MethodErrors{
		mk("PGCost", pgCostE),
		mk("TLSTMHashMCost", costE["TLSTMHash"]),
		mk("TLSTMEmbNRMCost", costE["TLSTMEmbNR"]),
		mk("TLSTMEmbRMCost", costE["TLSTMEmbR"]),
		mk("TPoolEmbRMCost", costE["TPoolEmbR"]),
	}

	res.Figure9["PG"] = BoxPair{Card: metrics.Box(pgCardE), Cost: metrics.Box(pgCostE)}
	res.Figure9["TLSTMHashM"] = BoxPair{Card: metrics.Box(cardE["TLSTMHash"]), Cost: metrics.Box(costE["TLSTMHash"])}
	res.Figure9["TPoolEmbRM"] = BoxPair{Card: metrics.Box(cardE["TPoolEmbR"]), Cost: metrics.Box(costE["TPoolEmbR"])}
	return nil
}

// runSingleTable reproduces Figure 8: per-epoch card validation error of
// the four string-predicate variants on a single-table workload.
func (e *Env) runSingleTable() ([]Curve, error) {
	cfg := e.Cfg
	qs := workload.SingleTableStrings(e.DB, cfg.Seed+50, cfg.SingleTable)
	labeled := e.Labeler.Label(qs)
	if len(labeled) < cfg.SingleTable/3 {
		return nil, fmt.Errorf("experiments: only %d single-table queries labeled", len(labeled))
	}
	train, valid := workload.Split(labeled, 0.9)

	ws := CollectWorkloadStrings(queriesOf(train))
	embCfg := strembed.DefaultConfig()
	embCfg.Dim = cfg.StrDim
	embCfg.MaxValuesPerColumn = 4000
	embCfg.SkipGram.Epochs = 2
	embCfg.SkipGram.Seed = cfg.Seed
	embCfg.UseRules = false
	embNR := strembed.Build(e.DB, ws, embCfg)
	embCfg.UseRules = true
	embR := strembed.Build(e.DB, ws, embCfg)

	variants := []struct {
		name string
		pred core.PredModel
		enc  *feature.Encoder
	}{
		{"TLSTMHashCard", core.PredLSTM, feature.NewEncoder(e.Cat, strembed.HashEmbedder{DimN: cfg.StrDim}, true)},
		{"TLSTMEmbNRCard", core.PredLSTM, feature.NewEncoder(e.Cat, embNR, true)},
		{"TLSTMEmbRCard", core.PredLSTM, feature.NewEncoder(e.Cat, embR, true)},
		{"TPoolEmbRCard", core.PredPool, feature.NewEncoder(e.Cat, embR, true)},
	}
	var curves []Curve
	for _, v := range variants {
		tr, err := encodeAll(v.enc, train)
		if err != nil {
			return nil, err
		}
		va, err := encodeAll(v.enc, valid)
		if err != nil {
			return nil, err
		}
		model := core.New(e.coreConfig(v.pred, core.RepLSTM, core.TargetCard), v.enc)
		hist := e.fitModel(model, tr, va)
		vals := make([]float64, len(hist))
		for i, h := range hist {
			vals[i] = h.ValidCard
		}
		curves = append(curves, Curve{Name: v.name, Values: vals})
	}
	return curves, nil
}
