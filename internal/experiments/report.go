package experiments

import (
	"fmt"
	"sort"
	"strings"

	"costest/internal/metrics"
)

// ReportNumeric renders Tables 7-8 and Figure 7 as the paper lays them out.
func ReportNumeric(r *NumericResults) string {
	var b strings.Builder
	b.WriteString("=== Table 7: Cardinality errors on numeric workloads ===\n")
	for _, wt := range r.Table7 {
		writeWorkloadTable(&b, wt)
	}
	b.WriteString("\n=== Table 8: Cost errors on numeric workloads ===\n")
	for _, wt := range r.Table8 {
		writeWorkloadTable(&b, wt)
	}
	b.WriteString("\n=== Figure 7a: Card validation error vs epoch ===\n")
	writeCurves(&b, r.Figure7a)
	b.WriteString("\n=== Figure 7b: Cost validation error vs epoch ===\n")
	writeCurves(&b, r.Figure7b)
	return b.String()
}

// ReportStrings renders Tables 10-12 and Figures 8-10.
func ReportStrings(r *StringResults) string {
	var b strings.Builder
	b.WriteString("=== Table 10: Cardinality errors on the JOB workload ===\n")
	b.WriteString(metrics.Header("Cardinality"))
	b.WriteByte('\n')
	for _, m := range r.Table10 {
		b.WriteString(m.Summary.Row(m.Name))
		b.WriteByte('\n')
	}
	b.WriteString("\n=== Table 11: Cost errors on the JOB workload ===\n")
	b.WriteString(metrics.Header("Cost"))
	b.WriteByte('\n')
	for _, m := range r.Table11 {
		b.WriteString(m.Summary.Row(m.Name))
		b.WriteByte('\n')
	}
	b.WriteString("\n=== Figure 8: Single-table card validation error vs epoch ===\n")
	writeCurves(&b, r.Figure8)

	b.WriteString("\n=== Figure 9: Error distribution on the JOB workload (log-scale boxes) ===\n")
	names := make([]string, 0, len(r.Figure9))
	for k := range r.Figure9 {
		names = append(names, k)
	}
	sort.Strings(names)
	b.WriteString("Cardinality:\n")
	for _, n := range names {
		b.WriteString("  " + r.Figure9[n].Card.Render(n, 40) + "\n")
	}
	b.WriteString("Cost:\n")
	for _, n := range names {
		b.WriteString("  " + r.Figure9[n].Cost.Render(n, 40) + "\n")
	}

	b.WriteString("\n=== Figure 10: Estimated vs real cost (per real-cost quartile) ===\n")
	fnames := make([]string, 0, len(r.Figure10))
	for k := range r.Figure10 {
		fnames = append(fnames, k)
	}
	sort.Strings(fnames)
	for _, n := range fnames {
		b.WriteString(figure10Row(n, r.Figure10[n]))
	}

	b.WriteString("\n=== Table 12: Efficiency (ms per query, JOB workload) ===\n")
	fmt.Fprintf(&b, "%-12s %6s %10s\n", "Method", "Batch", "Time(ms)")
	for _, row := range r.Table12 {
		batch := "No"
		if row.Batch {
			batch = "Yes"
		}
		fmt.Fprintf(&b, "%-12s %6s %10.3f\n", row.Method, batch, row.PerMsQ)
	}
	return b.String()
}

func writeWorkloadTable(b *strings.Builder, wt WorkloadTable) {
	b.WriteString(metrics.Header(wt.Workload))
	b.WriteByte('\n')
	for _, m := range wt.Methods {
		b.WriteString(m.Summary.Row(m.Name))
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
}

func writeCurves(b *strings.Builder, curves []Curve) {
	for _, c := range curves {
		fmt.Fprintf(b, "%-16s", c.Name)
		for _, v := range c.Values {
			fmt.Fprintf(b, " %7.2f", v)
		}
		b.WriteByte('\n')
	}
}

// figure10Row summarizes a method's estimate/real ratio per real-cost
// quartile (the textual equivalent of the scatter plot).
func figure10Row(name string, pts []CostPoint) string {
	if len(pts) == 0 {
		return fmt.Sprintf("%-18s (no data)\n", name)
	}
	sorted := make([]CostPoint, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Real < sorted[j].Real })
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", name)
	for q := 0; q < 4; q++ {
		lo := q * len(sorted) / 4
		hi := (q + 1) * len(sorted) / 4
		if hi <= lo {
			hi = lo + 1
		}
		ratios := make([]float64, 0, hi-lo)
		for _, p := range sorted[lo:min(hi, len(sorted))] {
			if p.Real > 0 && p.Est > 0 {
				ratios = append(ratios, p.Est/p.Real)
			}
		}
		fmt.Fprintf(&b, "  Q%d est/real=%.2f", q+1, metrics.GeoMean(ratios))
	}
	b.WriteByte('\n')
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
