package experiments

import (
	"time"

	"costest/internal/core"
	"costest/internal/feature"
	"costest/internal/mscn"
	"costest/internal/workload"
)

// timingRepeats: each latency measurement is repeated and the minimum taken,
// shielding Table 12 against GC pauses and scheduler noise from the training
// phases that ran in the same process.
const timingRepeats = 5

// runTiming reproduces Table 12: per-query estimation latency on the JOB
// workload for PostgreSQL-style costing, MSCN, and the tree models with and
// without width-first batching.
func (e *Env) runTiming(m *stringModels, samples []*workload.Labeled) ([]TimingRow, error) {
	n := len(samples)
	if n == 0 {
		return nil, nil
	}

	best := func(f func()) float64 {
		bestMS := 0.0
		for r := 0; r < timingRepeats; r++ {
			t0 := time.Now()
			f()
			ms := msPerQuery(t0, n)
			if r == 0 || ms < bestMS {
				bestMS = ms
			}
		}
		return bestMS
	}

	// PostgreSQL: cost model evaluation over the plan tree.
	plans := plansOf(samples)
	pgMS := best(func() {
		for _, p := range plans {
			e.PG.EstimateCost(p)
		}
	})

	// MSCN: architecture cost is what Table 12 measures, not accuracy, so an
	// untrained model of the right shape suffices; featurization is
	// precomputed for all methods alike.
	mscnModel := mscn.New(mscn.Config{Hidden: e.Cfg.MSCNWidth, SampleBitmap: true, Seed: e.Cfg.Seed}, e.Cat)
	var feats []*mscn.Features
	for _, s := range samples {
		f, err := mscnModel.Featurize(s.Query)
		if err != nil {
			return nil, err
		}
		feats = append(feats, f)
	}
	mscnMS := best(func() {
		for _, f := range feats {
			mscnModel.EstimateFeatures(f)
		}
	})
	mscnBatchMS := best(func() { mscnModel.EstimateBatch(feats, e.Cfg.Workers) })

	timeTree := func(model *core.Model, enc *feature.Encoder) (seq, batch float64, err error) {
		eps, err := encodeAll(enc, samples)
		if err != nil {
			return 0, 0, err
		}
		seq = best(func() {
			for _, ep := range eps {
				model.Estimate(ep)
			}
		})
		batch = best(func() { model.EstimateBatch(eps, e.Cfg.Workers) })
		return seq, batch, nil
	}
	tlstmMS, tlstmBatchMS, err := timeTree(m.tlstmEmbR, m.encR)
	if err != nil {
		return nil, err
	}
	tpoolMS, tpoolBatchMS, err := timeTree(m.tpoolEmbR, m.encR)
	if err != nil {
		return nil, err
	}

	return []TimingRow{
		{Method: "PostgreSQL", PerMsQ: pgMS},
		{Method: "MSCN", PerMsQ: mscnMS},
		{Method: "MSCNBatch", Batch: true, PerMsQ: mscnBatchMS},
		{Method: "TLSTM", PerMsQ: tlstmMS},
		{Method: "TLSTMBatch", Batch: true, PerMsQ: tlstmBatchMS},
		{Method: "TPool", PerMsQ: tpoolMS},
		{Method: "TPoolBatch", Batch: true, PerMsQ: tpoolBatchMS},
	}, nil
}

func msPerQuery(start time.Time, n int) float64 {
	return float64(time.Since(start).Microseconds()) / 1000 / float64(n)
}
