package fault

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
	"testing"
)

// registeredSites parses sites.go and returns constant name -> site value
// for every Site* string constant — the same view the costlint faultsite
// analyzer takes of the registry, so this test drifts with the source file
// itself, not with a hand-maintained list.
func registeredSites(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "sites.go", nil, 0)
	if err != nil {
		t.Fatalf("parse sites.go: %v", err)
	}
	sites := make(map[string]string)
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if !strings.HasPrefix(name.Name, "Site") || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				val, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("unquote %s: %v", name.Name, err)
				}
				sites[name.Name] = val
			}
		}
	}
	if len(sites) == 0 {
		t.Fatal("no Site* constants found in sites.go")
	}
	return sites
}

// TestSiteExamples proves the registry and its documentation cannot drift
// apart: every Site* constant declared in sites.go has a SiteExamples entry,
// every entry's spec parses through ParseSpec, every parsed rule targets
// exactly the site it documents, and no example is keyed by an unregistered
// name.
func TestSiteExamples(t *testing.T) {
	registered := registeredSites(t)

	values := make(map[string]string, len(registered)) // site value -> const name
	for name, val := range registered {
		if prev, dup := values[val]; dup {
			t.Errorf("site value %q registered twice: %s and %s", val, prev, name)
		}
		values[val] = name
	}

	for name, val := range registered {
		example, ok := SiteExamples[val]
		if !ok {
			t.Errorf("registered site %s (%q) has no SiteExamples entry", name, val)
			continue
		}
		inj, err := ParseSpec(example, 1)
		if err != nil {
			t.Errorf("SiteExamples[%s] = %q does not parse: %v", name, example, err)
			continue
		}
		if _, ok := inj.sites[val]; !ok {
			t.Errorf("SiteExamples[%s] = %q parses but installs no rule for %q", name, example, val)
		}
		for target := range inj.sites {
			if _, known := values[target]; !known {
				t.Errorf("SiteExamples[%s] = %q installs a rule for unregistered site %q", name, example, target)
			}
		}
	}

	for key := range SiteExamples {
		if _, ok := values[key]; !ok {
			t.Errorf("SiteExamples key %q is not a registered Site* constant value", key)
		}
	}
}
