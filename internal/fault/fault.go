// Package fault is a deterministic, seedable fault injector for robustness
// testing. Production code consults named hook points (Point) at the places
// where real systems break — I/O, model dispatch, retrain cycles — and an
// installed Injector decides per call whether to inject an error, a latency
// spike, a panic, or a process crash. With no injector installed (the
// production default) a hook point is a single atomic pointer load: zero
// allocations, sub-nanosecond, nothing on the hot path to pay for.
//
// Triggering is deterministic and seedable so every chaos test is
// reproducible: nth-call windows (After/Count) fire on exact call numbers,
// and probabilistic rules (P) draw from a per-rule rand.Rand seeded at
// construction — the same seed and call sequence always injects the same
// faults.
//
//	inj := fault.New(7).
//		Add(fault.Rule{Site: "serve.batch", Kind: fault.Error, After: 5, Count: 4}).
//		Add(fault.Rule{Site: "daemon.retrain", Kind: fault.Panic, Count: 2})
//	fault.Enable(inj)
//	defer fault.Disable()
package fault

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an injected fault does at its hook point.
type Kind uint8

const (
	// Error makes Point return the rule's error — an injected I/O or
	// estimator failure the caller must handle.
	Error Kind = iota
	// Panic makes Point panic — an injected crash the caller's recovery
	// (supervisor, dispatcher) must contain.
	Panic
	// Latency makes Point sleep for the rule's Delay, then continue — an
	// injected spike; other rules at the site still apply.
	Latency
	// Crash terminates the process immediately (exit status 3) — the
	// kill-mid-operation case no in-process recovery can mask. Tests can
	// intercept it via Injector.Exit.
	Crash
)

// String returns the spec-format name of the kind.
func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Latency:
		return "latency"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// crashExitCode is the process exit status of a Crash fault — distinct from
// clean exits (0) and log.Fatal (1) so harnesses can tell an injected kill
// from an organic failure.
const crashExitCode = 3

// Rule is one injected fault at one hook point. Triggering, evaluated
// against the site's 1-based call counter:
//
//   - the first After calls never fire (After = n-1, Count = 1 is "exactly
//     the nth call");
//   - at most Count calls fire (0 = unlimited);
//   - P > 0 additionally gates each firing on a seeded coin flip.
type Rule struct {
	// Site names the hook point this rule applies to (e.g. "serve.batch").
	Site string
	// Kind selects the injected behavior.
	Kind Kind
	// P is the per-call firing probability; 0 fires deterministically.
	P float64
	// After skips the site's first After calls.
	After uint64
	// Count caps how many calls fire; 0 is unlimited.
	Count uint64
	// Err overrides the injected error for Error rules.
	Err error
	// Delay is the injected sleep for Latency rules.
	Delay time.Duration
}

// rule is a compiled Rule with its firing state.
type rule struct {
	Rule
	err   error
	mu    sync.Mutex // guards rng and fired
	rng   *rand.Rand
	fired uint64
}

// triggers reports whether this rule fires on the site's nth call.
func (r *rule) triggers(n uint64) bool {
	if n <= r.After {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Count > 0 && r.fired >= r.Count {
		return false
	}
	if r.P > 0 && r.rng.Float64() >= r.P {
		return false
	}
	r.fired++
	return true
}

// site is one hook point's compiled state: a call counter and its rules in
// registration order.
type site struct {
	calls atomic.Uint64
	rules []*rule
}

// Injector is a compiled set of fault rules. Build with New + Add, install
// with Enable. Safe for concurrent hook points once installed; Add is not
// safe after Enable.
type Injector struct {
	seed  int64
	n     int
	sites map[string]*site
	// Exit intercepts Crash faults (nil uses os.Exit) — a test hook; the
	// production daemon leaves it nil so a Crash is a real kill.
	Exit func(code int)
}

// New returns an empty injector whose probabilistic rules derive from seed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, sites: make(map[string]*site)}
}

// Add compiles one rule into the injector and returns it for chaining.
func (in *Injector) Add(r Rule) *Injector {
	st := in.sites[r.Site]
	if st == nil {
		st = &site{}
		in.sites[r.Site] = st
	}
	in.n++
	cr := &rule{Rule: r, err: r.Err, rng: rand.New(rand.NewSource(in.seed + int64(in.n)*7919))}
	if cr.err == nil {
		cr.err = errors.New("fault: injected error at " + r.Site)
	}
	st.rules = append(st.rules, cr)
	return in
}

// point evaluates the site's rules against its next call number.
func (in *Injector) point(name string) error {
	st := in.sites[name]
	if st == nil {
		return nil
	}
	n := st.calls.Add(1)
	for _, r := range st.rules {
		if !r.triggers(n) {
			continue
		}
		switch r.Kind {
		case Latency:
			time.Sleep(r.Delay)
			// A spike delays the call but does not fail it; later rules at
			// the site still apply.
		case Error:
			return r.err
		case Panic:
			panic(fmt.Sprintf("fault: injected panic at %s (call %d)", name, n))
		case Crash:
			exit := in.Exit
			if exit == nil {
				exit = os.Exit
			}
			fmt.Fprintf(os.Stderr, "fault: injected crash at %s (call %d)\n", name, n)
			exit(crashExitCode)
		}
	}
	return nil
}

// active is the process-wide installed injector; nil means every hook point
// is a no-op costing one atomic load.
var active atomic.Pointer[Injector]

// Enable installs inj as the process-wide injector consulted by Point.
func Enable(inj *Injector) { active.Store(inj) }

// Disable removes the installed injector; hook points return to no-ops.
func Disable() { active.Store(nil) }

// Enabled reports whether an injector is installed.
func Enabled() bool { return active.Load() != nil }

// Point is the hook production code places at a failure-prone operation:
// it returns an injected error, sleeps, panics, or crashes when an installed
// rule fires, and is a single atomic load returning nil when no injector is
// installed (the production default).
//
// costlint:noalloc
func Point(name string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.point(name)
}

// Calls reports how many times the named site has been consulted on the
// installed injector (0 when disabled or the site has no rules) — test
// observability for "did the code path actually run".
func Calls(name string) uint64 {
	inj := active.Load()
	if inj == nil {
		return 0
	}
	st := inj.sites[name]
	if st == nil {
		return 0
	}
	return st.calls.Load()
}

// ParseSpec compiles a command-line fault specification, rules separated by
// ';', each rule "site:kind[:key=value...]":
//
//	checkpoint.rename:crash:count=1
//	serve.batch:error:after=5:count=4
//	daemon.retrain:panic:p=0.1;serve.batch:latency:delay=50ms
//
// Kinds: error, panic, latency, crash. Keys: p (probability), after, count,
// delay (Go duration). Probabilistic rules draw from seed.
func ParseSpec(spec string, seed int64) (*Injector, error) {
	inj := New(seed)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault: rule %q: want site:kind[:key=value...]", part)
		}
		if strings.TrimSpace(fields[0]) == "" {
			return nil, fmt.Errorf("fault: rule %q: empty site", part)
		}
		r := Rule{Site: fields[0]}
		switch fields[1] {
		case "error":
			r.Kind = Error
		case "panic":
			r.Kind = Panic
		case "latency":
			r.Kind = Latency
		case "crash":
			r.Kind = Crash
		default:
			return nil, fmt.Errorf("fault: rule %q: unknown kind %q", part, fields[1])
		}
		for _, kv := range fields[2:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: rule %q: option %q is not key=value", part, kv)
			}
			var err error
			switch key {
			case "p":
				r.P, err = strconv.ParseFloat(val, 64)
				if err == nil && (math.IsNaN(r.P) || r.P < 0 || r.P > 1) {
					err = fmt.Errorf("probability %v outside [0, 1]", val)
				}
			case "after":
				r.After, err = strconv.ParseUint(val, 10, 64)
			case "count":
				r.Count, err = strconv.ParseUint(val, 10, 64)
			case "delay":
				r.Delay, err = time.ParseDuration(val)
				if err == nil && r.Delay < 0 {
					err = fmt.Errorf("negative delay %v", val)
				}
			default:
				return nil, fmt.Errorf("fault: rule %q: unknown option %q", part, key)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q: option %q: %v", part, kv, err)
			}
		}
		inj.Add(r)
	}
	return inj, nil
}
