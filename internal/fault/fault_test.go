package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDisabledIsNoOp: with no injector installed, Point is nil-error,
// Calls is zero, and the hot path performs zero heap allocations — the
// production cost of carrying the hooks.
func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() true with no injector installed")
	}
	if err := Point("anything"); err != nil {
		t.Fatalf("disabled Point returned %v", err)
	}
	if Calls("anything") != 0 {
		t.Fatal("disabled Calls nonzero")
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if Point("serve.batch") != nil {
			t.Fatal("fired")
		}
	}); allocs != 0 {
		t.Fatalf("disabled Point allocates %.1f per call, want 0", allocs)
	}
}

// TestNthCallWindow: After/Count windows fire on exact call numbers — the
// deterministic triggering chaos tests are built on.
func TestNthCallWindow(t *testing.T) {
	Enable(New(1).Add(Rule{Site: "s", Kind: Error, After: 1, Count: 2}))
	defer Disable()
	var got []bool
	for i := 0; i < 5; i++ {
		got = append(got, Point("s") != nil)
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d fired=%v, want %v (pattern %v)", i+1, got[i], want[i], got)
		}
	}
	if Calls("s") != 5 {
		t.Fatalf("Calls = %d, want 5", Calls("s"))
	}
}

// TestErrorIdentity: a rule's custom error is returned as-is so callers can
// match it with errors.Is.
func TestErrorIdentity(t *testing.T) {
	sentinel := errors.New("disk on fire")
	Enable(New(1).Add(Rule{Site: "io", Kind: Error, Count: 1, Err: sentinel}))
	defer Disable()
	if err := Point("io"); !errors.Is(err, sentinel) {
		t.Fatalf("Point returned %v, want sentinel", err)
	}
	if err := Point("io"); err != nil {
		t.Fatalf("count-exhausted rule still fired: %v", err)
	}
}

// TestProbabilisticDeterminism: two injectors with the same seed inject the
// same fault sequence; a different seed diverges (reproducibility contract).
func TestProbabilisticDeterminism(t *testing.T) {
	pattern := func(seed int64) string {
		Enable(New(seed).Add(Rule{Site: "p", Kind: Error, P: 0.5}))
		defer Disable()
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if Point("p") != nil {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := pattern(42), pattern(42)
	if a != b {
		t.Fatalf("same seed, different fault sequences:\n%s\n%s", a, b)
	}
	if c := pattern(43); c == a {
		t.Fatalf("different seeds produced identical sequences: %s", a)
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Fatalf("p=0.5 over 64 calls should mix hits and misses: %s", a)
	}
}

// TestPanicAndLatencyKinds: Panic panics with a descriptive message; Latency
// sleeps at least the configured delay and does not fail the call.
func TestPanicAndLatencyKinds(t *testing.T) {
	Enable(New(1).
		Add(Rule{Site: "boom", Kind: Panic, Count: 1}).
		Add(Rule{Site: "slow", Kind: Latency, Count: 1, Delay: 20 * time.Millisecond}))
	defer Disable()

	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("Panic rule did not panic")
			}
			if !strings.Contains(p.(string), "boom") {
				t.Fatalf("panic message %q does not name the site", p)
			}
		}()
		Point("boom")
	}()

	start := time.Now()
	if err := Point("slow"); err != nil {
		t.Fatalf("Latency rule failed the call: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Latency rule slept %v, want >= 20ms", d)
	}
}

// TestCrashUsesExitHook: Crash routes through Injector.Exit with the
// dedicated exit code (tests intercept; production leaves it nil = os.Exit).
func TestCrashUsesExitHook(t *testing.T) {
	var code int
	inj := New(1).Add(Rule{Site: "kill", Kind: Crash, Count: 1})
	inj.Exit = func(c int) { code = c }
	Enable(inj)
	defer Disable()
	if err := Point("kill"); err != nil {
		t.Fatalf("Crash returned error %v", err)
	}
	if code != crashExitCode {
		t.Fatalf("exit code %d, want %d", code, crashExitCode)
	}
}

// TestConcurrentPoints: concurrent hook-point traffic respects Count caps
// exactly (run under -race in CI).
func TestConcurrentPoints(t *testing.T) {
	Enable(New(1).Add(Rule{Site: "c", Kind: Error, Count: 10}))
	defer Disable()
	var wg sync.WaitGroup
	var fired sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 100; i++ {
				if Point("c") != nil {
					n++
				}
			}
			fired.Store(g, n)
		}(g)
	}
	wg.Wait()
	total := 0
	fired.Range(func(_, v any) bool { total += v.(int); return true })
	if total != 10 {
		t.Fatalf("Count=10 rule fired %d times under concurrency", total)
	}
	if Calls("c") != 800 {
		t.Fatalf("Calls = %d, want 800", Calls("c"))
	}
}

// TestParseSpec: the daemon's -faults flag format round-trips into working
// rules, and malformed specs are descriptive errors.
func TestParseSpec(t *testing.T) {
	inj, err := ParseSpec("io:error:after=1:count=2; slow:latency:delay=5ms;kill:crash:count=1", 9)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	inj.Exit = func(int) {}
	Enable(inj)
	defer Disable()
	if err := Point("io"); err != nil {
		t.Fatalf("io call 1 fired early: %v", err)
	}
	if err := Point("io"); err == nil {
		t.Fatal("io call 2 did not fire")
	}
	if err := Point("slow"); err != nil {
		t.Fatalf("latency rule errored: %v", err)
	}

	for _, bad := range []string{
		"siteonly",
		"s:explode",
		"s:error:count",
		"s:error:count=x",
		"s:error:weird=1",
		"s:latency:delay=fast",
	} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Fatalf("ParseSpec(%q) accepted a malformed spec", bad)
		}
	}
}

// TestParseSpecErrors pins every rejection branch of the spec grammar to a
// descriptive error naming the offending rule — the -faults flag is operator
// input, and "which rule, which option, why" is the difference between a
// typo fixed in seconds and one debugged from injector behavior.
func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"missing kind", "siteonly", "want site:kind"},
		{"empty site", ":error:p=1", "empty site"},
		{"blank site", "  :error", "empty site"},
		{"unknown kind", "s:explode", `unknown kind "explode"`},
		{"option without value", "s:error:count", "not key=value"},
		{"unknown option", "s:error:weird=1", `unknown option "weird"`},
		{"bad probability syntax", "s:error:p=often", `option "p=often"`},
		{"probability above one", "s:error:p=1.5", "outside [0, 1]"},
		{"negative probability", "s:error:p=-0.1", "outside [0, 1]"},
		{"NaN probability", "s:error:p=NaN", "outside [0, 1]"},
		{"bad after", "s:error:after=-1", `option "after=-1"`},
		{"bad count", "s:error:count=x", `option "count=x"`},
		{"bad delay syntax", "s:latency:delay=fast", `option "delay=fast"`},
		{"negative delay", "s:latency:delay=-5ms", "negative delay"},
		{"later rule fails", "ok:error:p=0.5;s:latency:delay=oops", `option "delay=oops"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj, err := ParseSpec(tc.spec, 1)
			if err == nil {
				t.Fatalf("ParseSpec(%q) accepted a malformed spec: %+v", tc.spec, inj)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseSpec(%q) error %q does not mention %q", tc.spec, err, tc.want)
			}
		})
	}

	// Boundary values that must parse: the probability endpoints, a zero
	// delay, empty rules from stray separators, and surrounding whitespace.
	for _, good := range []string{
		"",
		";;",
		" s:error:p=0 ; t:error:p=1 ",
		"s:latency:delay=0s",
		"s:error:after=0:count=0",
	} {
		if _, err := ParseSpec(good, 1); err != nil {
			t.Fatalf("ParseSpec(%q) rejected a valid spec: %v", good, err)
		}
	}
}

// BenchmarkPointDisabled measures the production cost of a hook point with
// no injector installed — the number PERFORMANCE.md quotes for "fault hooks
// are free when disabled".
func BenchmarkPointDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Point("serve.batch") != nil {
			b.Fatal("fired")
		}
	}
}

// BenchmarkPointEnabledMiss measures an installed injector whose rules never
// fire at the probed site — the cost when chaos testing is on but this site
// is quiet.
func BenchmarkPointEnabledMiss(b *testing.B) {
	Enable(New(1).Add(Rule{Site: "other", Kind: Error}))
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Point("serve.batch") != nil {
			b.Fatal("fired")
		}
	}
}
