package fault

// This file is the central fault-site registry: every hook point the
// production code consults (fault.Point) or observes (fault.Calls) is
// declared here, once, as a Site* constant. The costlint faultsite analyzer
// (internal/analysis) enforces the registry statically: outside this package
// and outside test files, every site name reaching Point, Calls or a
// Rule{Site: ...} literal must be one of these constants — a typo'd or
// ad-hoc string literal is a build-gate failure, not a silently dead chaos
// hook. The analyzer also reports registry rot in the other direction: a
// Site* constant that no production Point/Calls consults is flagged as
// registered-but-never-injected.
//
// Adding a hook point is therefore a three-line change: declare the Site*
// constant, add its SiteExamples entry (a ParseSpec-parseable example that
// keeps the -faults CLI documentation honest — TestSiteExamples round-trips
// every entry through ParseSpec), and consult it via fault.Point.

const (
	// SiteCheckpointWrite fires inside core.SaveCheckpoint while streaming
	// the model into the temporary file — a torn write before anything
	// durable happened.
	SiteCheckpointWrite = "checkpoint.write"
	// SiteCheckpointSync fires at the fsync making the temporary file
	// durable — the classic power-loss window.
	SiteCheckpointSync = "checkpoint.sync"
	// SiteCheckpointRename fires at the atomic rename publishing the
	// checkpoint — after the bytes are durable, before they are visible.
	SiteCheckpointRename = "checkpoint.rename"
	// SiteCheckpointRead fires in core.LoadCheckpoint before a candidate
	// file is parsed — an unreadable or corrupt checkpoint at boot.
	SiteCheckpointRead = "checkpoint.read"

	// SiteServeBatch fires in the scheduler dispatcher immediately before a
	// coalesced batch is estimated — the injected model-dispatch failure the
	// circuit breaker must absorb.
	SiteServeBatch = "serve.batch"

	// SiteDaemonRetrain fires at the top of each supervised retrain cycle in
	// cmd/costestd — the injected trainer crash the supervisor must contain.
	SiteDaemonRetrain = "daemon.retrain"

	// SiteReplicaSend fires before a frame is written to a follower
	// connection — an injected send failure or latency spike on the
	// replication stream.
	SiteReplicaSend = "replica.send"
	// SiteReplicaSendCorrupt corrupts one payload byte of an outbound frame
	// when it fires — the checksum-rejection path a follower must heal by
	// resync, never by applying the frame.
	SiteReplicaSendCorrupt = "replica.send.corrupt"
	// SiteReplicaRecv fires as a follower pulls the next frame off the wire
	// — an injected receive failure forcing a reconnect.
	SiteReplicaRecv = "replica.recv"
	// SiteReplicaHeartbeatSend suppresses outbound heartbeats when it fires
	// — simulated primary silence driving lease expiry on the other end.
	SiteReplicaHeartbeatSend = "replica.heartbeat.send"
	// SiteReplicaHeartbeatRecv drops inbound heartbeats when it fires — a
	// follower that stops hearing a live primary.
	SiteReplicaHeartbeatRecv = "replica.heartbeat.recv"
	// SiteReplicaLeaseRenew suppresses a follower's lease renewal when it
	// fires — liveness evidence discarded so promotion logic can be driven
	// deterministically.
	SiteReplicaLeaseRenew = "replica.lease.renew"
	// SiteReplicaLeasePromote fires as a cluster member begins promotion
	// after its lease lapsed — an injected failure mid-takeover.
	SiteReplicaLeasePromote = "replica.lease.promote"
)

// SiteExamples maps every registered site to a documented -faults
// specification exercising it (the strings quoted in README/--help). The
// registry drift test parses each through ParseSpec and asserts it targets
// its own key, so CLI documentation cannot outlive a renamed site.
var SiteExamples = map[string]string{
	SiteCheckpointWrite:      SiteCheckpointWrite + ":error:count=1",
	SiteCheckpointSync:       SiteCheckpointSync + ":crash:count=1",
	SiteCheckpointRename:     SiteCheckpointRename + ":crash:count=1",
	SiteCheckpointRead:       SiteCheckpointRead + ":error:count=1",
	SiteServeBatch:           SiteServeBatch + ":error:after=5:count=4",
	SiteDaemonRetrain:        SiteDaemonRetrain + ":panic:count=2",
	SiteReplicaSend:          SiteReplicaSend + ":latency:p=0.2:delay=200us",
	SiteReplicaSendCorrupt:   SiteReplicaSendCorrupt + ":error:p=0.25",
	SiteReplicaRecv:          SiteReplicaRecv + ":error:count=1",
	SiteReplicaHeartbeatSend: SiteReplicaHeartbeatSend + ":error:count=3",
	SiteReplicaHeartbeatRecv: SiteReplicaHeartbeatRecv + ":error:count=3",
	SiteReplicaLeaseRenew:    SiteReplicaLeaseRenew + ":error:p=1",
	SiteReplicaLeasePromote:  SiteReplicaLeasePromote + ":error:count=1",
}
