package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"costest/internal/tensor"
)

// numericalGrad estimates dOut/dParam[i] for a scalar-valued forward function
// by central finite differences.
func numericalGrad(f func() float64, param []float64, i int) float64 {
	const h = 1e-6
	orig := param[i]
	param[i] = orig + h
	up := f()
	param[i] = orig - h
	down := f()
	param[i] = orig
	return (up - down) / (2 * h)
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps := NewParamSet()
	l := NewLinear(ps, "l", 4, 3, rng)
	x := tensor.NewVec(4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := tensor.NewVec(3)
	// Scalar objective: sum(Wx+b).
	obj := func() float64 {
		l.Forward(y, x)
		var s float64
		for _, v := range y {
			s += v
		}
		return s
	}
	obj()
	ps.ZeroGrad()
	dy := tensor.Vec{1, 1, 1}
	dx := tensor.NewVec(4)
	l.Backward(dx, dy, x)

	for i := range l.W.Value {
		want := numericalGrad(obj, l.W.Value, i)
		if math.Abs(l.W.Grad[i]-want) > 1e-5 {
			t.Fatalf("W grad[%d] = %g, want %g", i, l.W.Grad[i], want)
		}
	}
	for i := range l.B.Value {
		want := numericalGrad(obj, l.B.Value, i)
		if math.Abs(l.B.Grad[i]-want) > 1e-5 {
			t.Fatalf("B grad[%d] = %g, want %g", i, l.B.Grad[i], want)
		}
	}
	for i := range x {
		want := numericalGrad(obj, x, i)
		if math.Abs(dx[i]-want) > 1e-5 {
			t.Fatalf("input grad[%d] = %g, want %g", i, dx[i], want)
		}
	}
}

func TestMLPGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := NewParamSet()
	m := NewMLP(ps, "mlp", []int{3, 5, 2}, ActSigmoid, rng)
	x := tensor.Vec{0.3, -0.7, 1.1}
	out := tensor.NewVec(2)
	obj := func() float64 {
		m.Forward(out, x)
		return out[0]*2 + out[1]*-1
	}
	obj()
	ps.ZeroGrad()
	dx := tensor.NewVec(3)
	m.Backward(dx, tensor.Vec{2, -1})

	for _, p := range ps.Params() {
		for i := range p.Value {
			want := numericalGrad(obj, p.Value, i)
			if math.Abs(p.Grad[i]-want) > 1e-5 {
				t.Fatalf("%s grad[%d] = %g, want %g", p.Name, i, p.Grad[i], want)
			}
		}
	}
	for i := range x {
		want := numericalGrad(obj, x, i)
		if math.Abs(dx[i]-want) > 1e-5 {
			t.Fatalf("input grad[%d] = %g, want %g", i, dx[i], want)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	ps := NewParamSet()
	p := ps.NewParam("x", 2, 1)
	p.Value[0], p.Value[1] = 5, -3
	opt := NewAdam(0.05)
	for i := 0; i < 2000; i++ {
		ps.ZeroGrad()
		// f(x) = (x0-1)^2 + (x1-2)^2
		p.Grad[0] = 2 * (p.Value[0] - 1)
		p.Grad[1] = 2 * (p.Value[1] - 2)
		opt.Step(ps)
	}
	if math.Abs(p.Value[0]-1) > 1e-2 || math.Abs(p.Value[1]-2) > 1e-2 {
		t.Fatalf("Adam did not converge: %v", p.Value)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := NewParamSet()
	m := NewMLP(ps, "xor", []int{2, 8, 1}, ActSigmoid, rng)
	opt := NewAdam(0.05)
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	out := tensor.NewVec(1)
	for epoch := 0; epoch < 2000; epoch++ {
		ps.ZeroGrad()
		for k, in := range inputs {
			m.Forward(out, in)
			d := out[0] - targets[k]
			m.Backward(nil, tensor.Vec{2 * d})
		}
		opt.Step(ps)
	}
	for k, in := range inputs {
		m.Forward(out, in)
		if math.Abs(out[0]-targets[k]) > 0.2 {
			t.Fatalf("XOR(%v) = %g, want %g", in, out[0], targets[k])
		}
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	n := NewNormalizer([]float64{1, 10, 100, 100000})
	for _, v := range []float64{1, 5, 99, 12345} {
		s := n.Normalize(v)
		if s < 0 || s > 1 {
			t.Fatalf("Normalize(%g) = %g out of [0,1]", v, s)
		}
		back := n.Denormalize(s)
		if math.Abs(math.Log(back)-math.Log(v)) > 1e-9 {
			t.Fatalf("round trip %g -> %g", v, back)
		}
	}
}

func TestNormalizerDegenerate(t *testing.T) {
	n := NewNormalizer([]float64{42, 42, 42})
	s := n.Normalize(42)
	if math.IsNaN(s) || s < 0 || s > 1 {
		t.Fatalf("degenerate Normalize = %g", s)
	}
	if NewNormalizer(nil).Span() <= 0 {
		t.Fatal("empty normalizer must have positive span")
	}
}

// Property: q-error is symmetric and >= 1.
func TestQErrorProperties(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a)+1, math.Abs(b)+1
		q := QError(a, b)
		return q >= 1 && math.Abs(q-QError(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQErrorExact(t *testing.T) {
	if q := QError(10, 10); q != 1 {
		t.Fatalf("QError(10,10) = %g", q)
	}
	if q := QError(100, 10); q != 10 {
		t.Fatalf("QError(100,10) = %g", q)
	}
	if q := QError(0, 10); q != 10 { // zero floored to 1
		t.Fatalf("QError(0,10) = %g", q)
	}
}

func TestQErrorLossGradientDirection(t *testing.T) {
	norm := NewNormalizer([]float64{1, 1e6})
	l := QErrorLoss{Norm: norm}
	truth := 1000.0
	sTrue := norm.Normalize(truth)
	// Overestimate: positive gradient pushes s down.
	_, g := l.Eval(sTrue+0.2, truth)
	if g <= 0 {
		t.Fatalf("overestimate gradient = %g, want > 0", g)
	}
	// Underestimate: negative gradient pushes s up.
	_, g = l.Eval(sTrue-0.2, truth)
	if g >= 0 {
		t.Fatalf("underestimate gradient = %g, want < 0", g)
	}
}

func TestQErrorLossMatchesNumericalGradient(t *testing.T) {
	norm := NewNormalizer([]float64{1, 1e6})
	l := QErrorLoss{Norm: norm}
	truth := 512.0
	for _, s := range []float64{0.2, 0.5, 0.8} {
		_, grad := l.Eval(s, truth)
		const h = 1e-7
		up, _ := l.Eval(s+h, truth)
		down, _ := l.Eval(s-h, truth)
		want := (up - down) / (2 * h)
		if math.Abs(grad-want) > 1e-3*math.Max(1, math.Abs(want)) {
			t.Fatalf("q-error grad at s=%g: %g, want %g", s, grad, want)
		}
	}
}

func TestQErrorLossClipping(t *testing.T) {
	norm := NewNormalizer([]float64{1, 1e9})
	l := QErrorLoss{Norm: norm, GradClip: 10}
	_, g := l.Eval(0.999, 2)
	if math.Abs(g) > 10 {
		t.Fatalf("clipped gradient = %g, |g| must be <= 10", g)
	}
}

func TestMSLELoss(t *testing.T) {
	norm := NewNormalizer([]float64{1, 1e6})
	l := MSLELoss{Norm: norm}
	truth := 100.0
	loss, grad := l.Eval(norm.Normalize(truth), truth)
	if loss > 1e-12 || grad > 1e-6 {
		t.Fatalf("perfect prediction loss=%g grad=%g", loss, grad)
	}
}

func TestClipGradNorm(t *testing.T) {
	ps := NewParamSet()
	p := ps.NewParam("p", 2, 1)
	p.Grad[0], p.Grad[1] = 3, 4 // norm 5
	pre := ps.ClipGradNorm(1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %g, want 5", pre)
	}
	if math.Abs(ps.GradNorm()-1) > 1e-9 {
		t.Fatalf("post-clip norm = %g, want 1", ps.GradNorm())
	}
	// NaN gradients must be neutralized.
	p.Grad[0] = math.NaN()
	ps.ClipGradNorm(1)
	if math.IsNaN(p.Grad[0]) {
		t.Fatal("NaN gradient survived clipping")
	}
}

func TestParamSetSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := NewParamSet()
	NewLinear(ps, "a", 3, 2, rng)
	NewLinear(ps, "b", 2, 2, rng)
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		t.Fatal(err)
	}

	ps2 := NewParamSet()
	NewLinear(ps2, "a", 3, 2, rng)
	NewLinear(ps2, "b", 2, 2, rng)
	if err := ps2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i, p := range ps.Params() {
		q := ps2.Params()[i]
		for j := range p.Value {
			if p.Value[j] != q.Value[j] {
				t.Fatalf("param %s[%d] mismatch after load", p.Name, j)
			}
		}
	}
}

func TestParamSetLoadShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := NewParamSet()
	NewLinear(ps, "a", 3, 2, rng)
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ps2 := NewParamSet()
	NewLinear(ps2, "a", 4, 2, rng)
	if err := ps2.Load(&buf); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestDuplicateParamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate parameter name")
		}
	}()
	ps := NewParamSet()
	ps.NewParam("x", 1, 1)
	ps.NewParam("x", 1, 1)
}

// TestAliasValues pins the gradient-shadow contract: after AliasValues the
// shadow reads the source's live weights (including later source mutations)
// while its gradients stay private, and mismatched sets panic.
func TestAliasValues(t *testing.T) {
	build := func() *ParamSet {
		ps := NewParamSet()
		ps.NewParam("w", 2, 3)
		ps.NewParam("b", 2, 1)
		return ps
	}
	src, shadow := build(), build()
	for i, p := range src.Params() {
		for j := range p.Value {
			p.Value[j] = float64(i*10 + j)
		}
	}
	shadow.AliasValues(src)
	src.Get("w").Value[4] = -7 // live mutation must be visible through the shadow
	if got := shadow.Get("w").Value[4]; got != -7 {
		t.Fatalf("shadow value = %g, want source's live -7", got)
	}
	shadow.Get("w").Grad[0] = 1
	if src.Get("w").Grad[0] != 0 {
		t.Fatal("shadow gradient leaked into source")
	}
	src.Get("b").Grad[1] = 2
	if shadow.Get("b").Grad[1] != 0 {
		t.Fatal("source gradient leaked into shadow")
	}
	if shadow.Get("w").m != nil || shadow.Get("w").v != nil {
		t.Fatal("shadow kept Adam moment buffers after aliasing")
	}
	if src.Get("w").m == nil || src.Get("w").v == nil {
		t.Fatal("aliasing released the source's Adam moments")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("expected panic aliasing mismatched param sets")
		}
	}()
	other := NewParamSet()
	other.NewParam("w", 2, 3)
	other.AliasValues(src)
}

func TestActivations(t *testing.T) {
	x := tensor.Vec{-1, 0, 2}
	y := tensor.NewVec(3)
	ReLU(y, x)
	if y[0] != 0 || y[1] != 0 || y[2] != 2 {
		t.Fatalf("ReLU = %v", y)
	}
	Sigmoid(y, tensor.Vec{0, 100, -100})
	if math.Abs(y[0]-0.5) > 1e-12 || y[1] < 0.999 || y[2] > 0.001 {
		t.Fatalf("Sigmoid = %v", y)
	}
	Tanh(y, tensor.Vec{0, 10, -10})
	if y[0] != 0 || y[1] < 0.999 || y[2] > -0.999 {
		t.Fatalf("Tanh = %v", y)
	}
}

// TestParamSetLoadValidation pins the Load hardening: count mismatches,
// unknown names, duplicates and corrupt value lengths must all fail with an
// error before any value is written — a failed load never leaves the
// receiving set partially overwritten.
func TestParamSetLoadValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	build := func() *ParamSet {
		ps := NewParamSet()
		NewLinear(ps, "a", 3, 2, rng)
		NewLinear(ps, "b", 2, 2, rng)
		return ps
	}
	src := build()
	var full bytes.Buffer
	if err := src.Save(&full); err != nil {
		t.Fatal(err)
	}

	// Count mismatch: a snapshot covering fewer parameters than the set
	// would silently leave the uncovered ones at their initial values.
	smaller := NewParamSet()
	NewLinear(smaller, "a", 3, 2, rng)
	var partial bytes.Buffer
	if err := smaller.Save(&partial); err != nil {
		t.Fatal(err)
	}
	dst := build()
	before := make([][]float64, len(dst.Params()))
	for i, p := range dst.Params() {
		before[i] = append([]float64(nil), p.Value...)
	}
	if err := dst.Load(&partial); err == nil {
		t.Fatal("expected count-mismatch error loading a partial snapshot")
	}
	// ...and the superset direction.
	bigger := build()
	NewLinear(bigger, "c", 2, 1, rng)
	dst2 := build()
	var super bytes.Buffer
	if err := bigger.Save(&super); err != nil {
		t.Fatal(err)
	}
	if err := dst2.Load(&super); err == nil {
		t.Fatal("expected count-mismatch error loading a superset snapshot")
	}

	// Duplicate names in the payload.
	dup := []paramBlob{
		{Name: "a.W", Rows: 2, Cols: 3, Value: make([]float64, 6)},
		{Name: "a.W", Rows: 2, Cols: 3, Value: make([]float64, 6)},
		{Name: "a.B", Rows: 2, Cols: 1, Value: make([]float64, 2)},
		{Name: "b.W", Rows: 2, Cols: 2, Value: make([]float64, 4)},
	}
	if err := build().loadBlobs(dup); err == nil {
		t.Fatal("expected duplicate-parameter error")
	}

	// Corrupt value payload: length disagreeing with the declared shape
	// would previously copy a short prefix and silently keep a stale tail.
	short := []paramBlob{
		{Name: "a.W", Rows: 2, Cols: 3, Value: make([]float64, 3)},
		{Name: "a.B", Rows: 2, Cols: 1, Value: make([]float64, 2)},
		{Name: "b.W", Rows: 2, Cols: 2, Value: make([]float64, 4)},
		{Name: "b.B", Rows: 2, Cols: 1, Value: make([]float64, 2)},
	}
	if err := build().loadBlobs(short); err == nil {
		t.Fatal("expected corrupt-length error")
	}

	// Every failed load above must be side-effect free.
	for i, p := range dst.Params() {
		for j := range p.Value {
			if p.Value[j] != before[i][j] {
				t.Fatalf("failed load mutated %s[%d]", p.Name, j)
			}
		}
	}
}

// TestDirtyStamps pins the delta-publication substrate: parameters are
// stamped at registration and re-stamped by every tracked mutation (Adam
// step, Load, InitXavier, MarkAllUpdated), while parameters an optimizer
// step provably does not move keep their stamp.
func TestDirtyStamps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := NewParamSet()
	la := NewLinear(ps, "a", 3, 2, rng)
	lb := NewLinear(ps, "b", 2, 2, rng)
	for _, p := range ps.Params() {
		if p.Stamp() == 0 {
			t.Fatalf("param %s unstamped at registration", p.Name)
		}
	}

	// An Adam step with gradients only on layer a must stamp exactly a's
	// parameters; b's update is an exact no-op and must stay clean.
	opt := NewAdam(0.01)
	stA := la.W.Stamp()
	stBW, stBB := lb.W.Stamp(), lb.B.Stamp()
	valB := append([]float64(nil), lb.W.Value...)
	ps.ZeroGrad()
	la.W.Grad[0] = 0.5
	la.B.Grad[1] = -0.25
	opt.Step(ps)
	if la.W.Stamp() <= stA || la.B.Stamp() <= stA {
		t.Fatal("Adam step did not stamp updated params")
	}
	if lb.W.Stamp() != stBW || lb.B.Stamp() != stBB {
		t.Fatal("Adam step stamped a parameter it provably did not move")
	}
	for i := range valB {
		if lb.W.Value[i] != valB[i] {
			t.Fatal("skipped parameter moved")
		}
	}

	// Once a parameter's moments are live, later zero-gradient steps keep
	// moving (and stamping) it: the moment decay changes values.
	valA0 := la.W.Value[0]
	st := la.W.Stamp()
	ps.ZeroGrad()
	opt.Step(ps)
	if la.W.Stamp() <= st {
		t.Fatal("live parameter not stamped on zero-gradient step")
	}
	if la.W.Value[0] == valA0 {
		t.Fatal("live parameter did not move on zero-gradient step (moment decay)")
	}

	// Load and InitXavier stamp everything they touch.
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		t.Fatal(err)
	}
	st = lb.W.Stamp()
	if err := ps.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if lb.W.Stamp() <= st {
		t.Fatal("Load did not stamp parameters")
	}
	st = lb.W.Stamp()
	ps.InitXavier(rng)
	if lb.W.Stamp() <= st {
		t.Fatal("InitXavier did not stamp parameters")
	}
	st = lb.W.Stamp()
	ps.MarkAllUpdated()
	if lb.W.Stamp() <= st {
		t.Fatal("MarkAllUpdated did not stamp parameters")
	}
	if ps.Clock() < lb.W.Stamp() {
		t.Fatal("clock behind latest stamp")
	}
}

// TestAdamSkipIsBitExact drives two identical parameter sets through the
// same gradient schedule — one whose zero-gradient parameter is exercised
// through the skip path, one through a forced update (live flag set) — and
// checks the skipped parameter's values, moments and subsequent trajectory
// are bit-identical. The all-zero skip must be a provable no-op, not an
// approximation.
func TestAdamSkipIsBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	build := func() (*ParamSet, *Linear, *Linear) {
		ps := NewParamSet()
		a := NewLinear(ps, "a", 3, 2, rng)
		b := NewLinear(ps, "b", 2, 2, rng)
		return ps, a, b
	}
	psSkip, aSkip, bSkip := build()
	rng = rand.New(rand.NewSource(11)) // identical init draws
	psLive, aLive, bLive := build()
	for i := range aSkip.W.Value {
		aLive.W.Value[i] = aSkip.W.Value[i]
	}
	for i := range bSkip.W.Value {
		bLive.W.Value[i] = bSkip.W.Value[i]
	}
	bLive.W.live, bLive.B.live = true, true // force the update path

	optSkip, optLive := NewAdam(0.01), NewAdam(0.01)
	for step := 0; step < 5; step++ {
		psSkip.ZeroGrad()
		psLive.ZeroGrad()
		aSkip.W.Grad[step] = float64(step + 1)
		aLive.W.Grad[step] = float64(step + 1)
		optSkip.Step(psSkip)
		optLive.Step(psLive)
	}
	for i := range bSkip.W.Value {
		if bSkip.W.Value[i] != bLive.W.Value[i] {
			t.Fatalf("skip path diverged from update path at b.W[%d]", i)
		}
		if bSkip.W.m[i] != bLive.W.m[i] || bSkip.W.v[i] != bLive.W.v[i] {
			t.Fatalf("skip path moment mismatch at b.W[%d]", i)
		}
	}
}
