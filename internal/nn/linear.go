package nn

import (
	"fmt"
	"math/rand"

	"costest/internal/tensor"
)

// Linear is a fully connected layer y = Wx + b with Out x In weights.
type Linear struct {
	In, Out int
	W, B    *Param
}

// NewLinear registers a linear layer's parameters in ps under name.W/name.B
// and initializes the weights with Xavier initialization.
func NewLinear(ps *ParamSet, name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In: in, Out: out,
		W: ps.NewParam(name+".W", out, in),
		B: ps.NewParam(name+".B", out, 1),
	}
	l.W.Mat().XavierInit(rng)
	return l
}

// Forward computes dst = Wx + b. dst must have length Out.
func (l *Linear) Forward(dst, x tensor.Vec) {
	tensor.MatVecAdd(dst, l.W.Mat(), x, l.B.Vec())
}

// Backward accumulates parameter gradients for upstream gradient dy and the
// input x used in the forward pass, and writes the input gradient into dx
// (set semantics). Pass dx == nil when the input needs no gradient.
func (l *Linear) Backward(dx, dy, x tensor.Vec) {
	tensor.AddOuter(l.W.GradMat(), dy, x)
	tensor.AddTo(l.B.GradVec(), dy)
	if dx != nil {
		tensor.MatTVec(dx, l.W.Mat(), dy)
	}
}

// MLP is a stack of Linear layers with ReLU between hidden layers. The final
// layer's activation is chosen by OutAct.
type MLP struct {
	Layers []*Linear
	OutAct Activation
	// scratch activations per layer, reused across calls; index 0 is the
	// input copy, index i the output of layer i-1.
	acts [][]float64
	pre  [][]float64 // pre-activation outputs for backward
	dtmp [][]float64
}

// Activation selects the output nonlinearity of an MLP.
type Activation int

// Supported output activations.
const (
	ActIdentity Activation = iota
	ActReLU
	ActSigmoid
)

// NewMLP builds an MLP with the given layer sizes, e.g. sizes = [in, h, out].
func NewMLP(ps *ParamSet, name string, sizes []int, outAct Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: MLP needs at least 2 sizes, got %v", sizes))
	}
	m := &MLP{OutAct: outAct}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(ps, fmt.Sprintf("%s.%d", name, i), sizes[i], sizes[i+1], rng))
	}
	m.acts = make([][]float64, len(m.Layers)+1)
	m.pre = make([][]float64, len(m.Layers))
	m.dtmp = make([][]float64, len(m.Layers)+1)
	m.acts[0] = make([]float64, sizes[0])
	m.dtmp[0] = make([]float64, sizes[0])
	for i, l := range m.Layers {
		m.acts[i+1] = make([]float64, l.Out)
		m.pre[i] = make([]float64, l.Out)
		m.dtmp[i+1] = make([]float64, l.Out)
	}
	return m
}

// InDim returns the input dimensionality.
func (m *MLP) InDim() int { return m.Layers[0].In }

// OutDim returns the output dimensionality.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].Out }

// Forward runs the MLP and writes the result into dst. The internal
// activations are retained for a subsequent Backward call.
func (m *MLP) Forward(dst, x tensor.Vec) {
	tensor.Copy(m.acts[0], x)
	for i, l := range m.Layers {
		l.Forward(m.pre[i], m.acts[i])
		last := i == len(m.Layers)-1
		switch {
		case !last: // hidden layers always ReLU
			ReLU(m.acts[i+1], m.pre[i])
		case m.OutAct == ActReLU:
			ReLU(m.acts[i+1], m.pre[i])
		case m.OutAct == ActSigmoid:
			Sigmoid(m.acts[i+1], m.pre[i])
		default:
			tensor.Copy(m.acts[i+1], m.pre[i])
		}
	}
	tensor.Copy(dst, m.acts[len(m.Layers)])
}

// Backward propagates dy (gradient w.r.t. the MLP output of the most recent
// Forward) into parameter gradients, writing the input gradient into dx when
// dx is non-nil.
func (m *MLP) Backward(dx, dy tensor.Vec) {
	n := len(m.Layers)
	cur := m.dtmp[n]
	tensor.Copy(cur, dy)
	for i := n - 1; i >= 0; i-- {
		last := i == n-1
		switch {
		case !last:
			ReLUBackwardInPlace(cur, m.acts[i+1])
		case m.OutAct == ActReLU:
			ReLUBackwardInPlace(cur, m.acts[i+1])
		case m.OutAct == ActSigmoid:
			SigmoidBackwardInPlace(cur, m.acts[i+1])
		}
		var down tensor.Vec
		if i > 0 {
			down = m.dtmp[i]
		} else if dx != nil {
			down = dx
		}
		m.Layers[i].Backward(down, cur, m.acts[i])
		if i > 0 {
			cur = m.dtmp[i]
		}
	}
}
