package nn

import (
	"math"

	"costest/internal/tensor"
)

// ReLU computes dst = max(0, x) elementwise.
func ReLU(dst, x tensor.Vec) {
	for i, v := range x {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// ReLUBackwardInPlace masks the upstream gradient d by the activation output
// y: d[i] = 0 where y[i] <= 0.
func ReLUBackwardInPlace(d, y tensor.Vec) {
	for i := range d {
		if y[i] <= 0 {
			d[i] = 0
		}
	}
}

// Sigmoid computes dst = 1/(1+e^-x) elementwise.
func Sigmoid(dst, x tensor.Vec) {
	for i, v := range x {
		dst[i] = 1 / (1 + math.Exp(-v))
	}
}

// SigmoidBackwardInPlace converts the upstream gradient d (w.r.t. the sigmoid
// output y) into the gradient w.r.t. the pre-activation: d *= y*(1-y).
func SigmoidBackwardInPlace(d, y tensor.Vec) {
	for i := range d {
		d[i] *= y[i] * (1 - y[i])
	}
}

// Tanh computes dst = tanh(x) elementwise.
func Tanh(dst, x tensor.Vec) {
	for i, v := range x {
		dst[i] = math.Tanh(v)
	}
}

// TanhBackwardInPlace converts the upstream gradient d (w.r.t. tanh output y)
// into the pre-activation gradient: d *= 1 - y².
func TanhBackwardInPlace(d, y tensor.Vec) {
	for i := range d {
		d[i] *= 1 - y[i]*y[i]
	}
}
