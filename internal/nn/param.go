// Package nn implements the neural-network substrate the estimator is built
// on: trainable parameters, linear layers, activations, the Adam optimizer,
// q-error / MSLE losses and min-max log normalization. The paper trains its
// model with a deep-learning framework; no such framework exists in the Go
// standard library, so this package provides the minimal equivalent with
// explicit (manual) backpropagation.
package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"costest/internal/tensor"
)

// Param is a trainable tensor with its gradient accumulator and Adam moments.
// A vector parameter is stored as Rows x 1.
type Param struct {
	Name       string
	Rows, Cols int
	Value      []float64
	Grad       []float64
	m, v       []float64 // Adam first/second moment estimates

	// stamp is the owning ParamSet's clock value at the last mutation of
	// Value through a tracked path (registration, Adam step, Load,
	// InitXavier, MarkAllUpdated) — the substrate of delta publication:
	// a consumer that recorded a param's stamp can tell whether the values
	// moved since. Code that writes Value directly (tests, ad-hoc surgery)
	// must call ParamSet.MarkAllUpdated afterwards or delta consumers will
	// treat the param as clean.
	stamp uint64
	// live records that Adam has ever applied a non-zero gradient: once the
	// moment estimates are non-zero the parameter keeps moving every step
	// (the moments decay geometrically but never reach zero), so the
	// all-zero-gradient skip in Adam.Step is only exact while !live.
	live bool
}

// Stamp returns the ParamSet clock value at which Value last changed.
func (p *Param) Stamp() uint64 { return p.stamp }

// Mat returns a matrix view over the parameter values.
func (p *Param) Mat() *tensor.Mat {
	return &tensor.Mat{Rows: p.Rows, Cols: p.Cols, Data: p.Value}
}

// GradMat returns a matrix view over the parameter gradient.
func (p *Param) GradMat() *tensor.Mat {
	return &tensor.Mat{Rows: p.Rows, Cols: p.Cols, Data: p.Grad}
}

// Vec returns the parameter values as a vector (for bias parameters).
func (p *Param) Vec() tensor.Vec { return p.Value }

// GradVec returns the parameter gradient as a vector.
func (p *Param) GradVec() tensor.Vec { return p.Grad }

// ParamSet owns every trainable parameter of a model, so optimizers,
// clipping and serialization can treat the model uniformly.
type ParamSet struct {
	params []*Param
	byName map[string]*Param

	// clock is a logical mutation counter: every tracked write to parameter
	// values (registration, an Adam step, Load, InitXavier, MarkAllUpdated)
	// advances it once and stamps the touched parameters with the new value.
	// Delta publication compares stamps against a recorded clock to copy
	// only the parameters that moved.
	clock uint64
}

// Clock returns the set's current mutation counter.
func (ps *ParamSet) Clock() uint64 { return ps.clock }

// tick advances the mutation counter and returns its new value.
func (ps *ParamSet) tick() uint64 {
	ps.clock++
	return ps.clock
}

// MarkAllUpdated stamps every parameter as mutated at a fresh clock value.
// Call it after writing parameter values directly (bypassing Adam, Load and
// InitXavier) so delta consumers see the change.
func (ps *ParamSet) MarkAllUpdated() {
	t := ps.tick()
	for _, p := range ps.params {
		p.stamp = t
	}
}

// MarkParamsUpdated stamps exactly the given parameters as mutated at one
// fresh clock value — the targeted form of MarkAllUpdated for writers that
// know which parameters they touched (a replication follower applying a
// delta frame writes a handful of parameters and must not force delta
// publication to re-copy the rest). The parameters must belong to this set;
// stamping a foreign parameter would desynchronize its owner's clock.
func (ps *ParamSet) MarkParamsUpdated(params []*Param) {
	if len(params) == 0 {
		return
	}
	t := ps.tick()
	for _, p := range params {
		p.stamp = t
	}
}

// NewParamSet returns an empty parameter set.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: make(map[string]*Param)}
}

// NewParam allocates and registers a rows x cols parameter. Names must be
// unique within the set; duplicates panic since they indicate a wiring bug.
func (ps *ParamSet) NewParam(name string, rows, cols int) *Param {
	if _, dup := ps.byName[name]; dup {
		panic(fmt.Sprintf("nn: duplicate parameter %q", name))
	}
	n := rows * cols
	p := &Param{
		Name: name, Rows: rows, Cols: cols,
		Value: make([]float64, n),
		Grad:  make([]float64, n),
		m:     make([]float64, n),
		v:     make([]float64, n),
		// Registration stamps the param as mutated: constructors initialize
		// values (e.g. NewLinear's Xavier init) right after registering, and
		// a non-zero stamp means a fresh delta consumer (recorded stamp 0)
		// always copies the initial values.
		stamp: ps.tick(),
	}
	ps.params = append(ps.params, p)
	ps.byName[name] = p
	return p
}

// Get returns the named parameter, or nil if absent.
func (ps *ParamSet) Get(name string) *Param { return ps.byName[name] }

// Params returns all registered parameters in registration order.
func (ps *ParamSet) Params() []*Param { return ps.params }

// NumParams returns the total number of scalar parameters.
func (ps *ParamSet) NumParams() int {
	n := 0
	for _, p := range ps.params {
		n += len(p.Value)
	}
	return n
}

// ZeroGrad clears all gradient accumulators.
func (ps *ParamSet) ZeroGrad() {
	for _, p := range ps.params {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// GradNorm returns the global L2 norm across all parameter gradients.
func (ps *ParamSet) GradNorm() float64 {
	var s float64
	for _, p := range ps.params {
		s += tensor.Dot(p.Grad, p.Grad)
	}
	return math.Sqrt(s)
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most max.
// It returns the pre-clipping norm. Non-finite gradients are zeroed first so a
// single diverged sample cannot poison the step.
func (ps *ParamSet) ClipGradNorm(max float64) float64 {
	for _, p := range ps.params {
		for i, g := range p.Grad {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				p.Grad[i] = 0
			}
		}
	}
	norm := ps.GradNorm()
	if norm > max && norm > 0 {
		scale := max / norm
		for _, p := range ps.params {
			tensor.Scale(p.Grad, scale)
		}
	}
	return norm
}

// AliasValues re-points every parameter's value storage at the matching
// parameter of src, making ps a gradient shadow of src: forward passes
// through ps read src's live weights with no copying, while gradients stay
// private to ps. This is the substrate of data-parallel training — each
// worker accumulates into its own shadow ParamSet and the shards are
// reduced deterministically into the real optimizer state.
//
// A shadow accumulates gradients but is never stepped, so its Adam moment
// buffers (and its discarded initial values) are released — after aliasing,
// each parameter keeps only its Grad live. Stepping an aliased set panics.
//
// Both sets must have been built by the same construction path: parameters
// are matched positionally and must agree in name and shape (a mismatch
// panics, since it indicates a wiring bug, mirroring snapshot copying).
// Callers own the synchronization: shadow readers must not overlap writes to
// src's values (the parallel trainer steps the optimizer only between
// worker joins).
func (ps *ParamSet) AliasValues(src *ParamSet) {
	if len(ps.params) != len(src.params) {
		panic(fmt.Sprintf("nn: AliasValues parameter count mismatch: %d vs %d", len(ps.params), len(src.params)))
	}
	for i, p := range ps.params {
		sp := src.params[i]
		if p.Name != sp.Name || p.Rows != sp.Rows || p.Cols != sp.Cols {
			panic(fmt.Sprintf("nn: AliasValues parameter mismatch: %q %dx%d vs %q %dx%d",
				p.Name, p.Rows, p.Cols, sp.Name, sp.Rows, sp.Cols))
		}
		p.Value = sp.Value
		p.m, p.v = nil, nil
	}
}

// paramBlob is the gob wire format for a parameter.
type paramBlob struct {
	Name       string
	Rows, Cols int
	Value      []float64
}

// Save serializes all parameter values (not optimizer state) to w.
func (ps *ParamSet) Save(w io.Writer) error {
	return ps.EncodeGob(gob.NewEncoder(w))
}

// EncodeGob writes the parameter payload through an existing gob encoder, so
// callers can embed it in a larger single-stream format (core.Model.Save's
// versioned checkpoint does).
func (ps *ParamSet) EncodeGob(enc *gob.Encoder) error {
	blobs := make([]paramBlob, len(ps.params))
	for i, p := range ps.params {
		blobs[i] = paramBlob{Name: p.Name, Rows: p.Rows, Cols: p.Cols, Value: p.Value}
	}
	return enc.Encode(blobs)
}

// DecodeGob is Load reading through an existing gob decoder, with the same
// validation guarantees.
func (ps *ParamSet) DecodeGob(dec *gob.Decoder) error {
	var blobs []paramBlob
	if err := dec.Decode(&blobs); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	return ps.loadBlobs(blobs)
}

// Load restores parameter values previously written by Save. The snapshot
// must cover the receiving set exactly: every registered parameter present
// once, no unknown or duplicate names, shapes and value lengths matching.
// On any mismatch Load returns a descriptive error before writing a single
// value, so a failed load never leaves the set partially overwritten.
func (ps *ParamSet) Load(r io.Reader) error {
	return ps.DecodeGob(gob.NewDecoder(r))
}

// loadBlobs validates blobs against the registered parameters and then
// copies the values in (validate-then-commit, so errors are side-effect
// free).
func (ps *ParamSet) loadBlobs(blobs []paramBlob) error {
	if len(blobs) != len(ps.params) {
		return fmt.Errorf("nn: parameter count mismatch: model has %d parameters, snapshot has %d",
			len(ps.params), len(blobs))
	}
	seen := make(map[string]bool, len(blobs))
	for _, b := range blobs {
		p := ps.byName[b.Name]
		if p == nil {
			return fmt.Errorf("nn: unknown parameter %q in snapshot", b.Name)
		}
		if seen[b.Name] {
			return fmt.Errorf("nn: duplicate parameter %q in snapshot", b.Name)
		}
		seen[b.Name] = true
		if p.Rows != b.Rows || p.Cols != b.Cols {
			return fmt.Errorf("nn: parameter %q shape mismatch: model %dx%d, snapshot %dx%d",
				b.Name, p.Rows, p.Cols, b.Rows, b.Cols)
		}
		if len(b.Value) != b.Rows*b.Cols {
			return fmt.Errorf("nn: parameter %q has %d values, want %d (%dx%d); snapshot corrupt",
				b.Name, len(b.Value), b.Rows*b.Cols, b.Rows, b.Cols)
		}
	}
	t := ps.tick()
	for _, b := range blobs {
		p := ps.byName[b.Name]
		copy(p.Value, b.Value)
		p.stamp = t
	}
	return nil
}

// InitXavier applies Xavier initialization to every matrix parameter and
// zeroes every vector (bias) parameter.
func (ps *ParamSet) InitXavier(rng *rand.Rand) {
	t := ps.tick()
	for _, p := range ps.params {
		if p.Cols > 1 {
			p.Mat().XavierInit(rng)
		} else {
			for i := range p.Value {
				p.Value[i] = 0
			}
		}
		p.stamp = t
	}
}
