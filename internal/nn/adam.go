package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba). The paper trains with
// Adam at learning rate 0.001 (Section 6.3.1).
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	steps int
}

// NewAdam returns an Adam optimizer with the paper's learning rate and the
// standard moment decay rates.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update to every parameter in ps using the gradients
// currently accumulated, then the caller typically calls ps.ZeroGrad.
//
// Each updated parameter is stamped with a fresh ParamSet clock value, the
// per-param dirty tracking delta publication reads. A parameter whose
// gradient is all zero and whose moment estimates have never left zero is
// skipped entirely — the update would be an exact no-op (m, v and Value all
// bit-unchanged), so skipping preserves bit-identical training while
// leaving never-trained parameters (e.g. the unused head of a single-task
// model) clean for delta consumers.
//
// costlint:noalloc
func (a *Adam) Step(ps *ParamSet) {
	a.steps++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.steps))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.steps))
	t := ps.tick()
	for _, p := range ps.params {
		if !p.live && !anyNonZero(p.Grad) {
			continue
		}
		p.live = true
		for i, g := range p.Grad {
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mHat := p.m[i] / bc1
			vHat := p.v[i] / bc2
			p.Value[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
		p.stamp = t
	}
}

// anyNonZero reports whether g has any non-zero entry (early exit: in dense
// training the first gradient element is almost always non-zero).
func anyNonZero(g []float64) bool {
	for _, v := range g {
		if v != 0 {
			return true
		}
	}
	return false
}

// Steps reports how many optimizer steps have been applied.
func (a *Adam) Steps() int { return a.steps }
