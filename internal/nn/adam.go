package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba). The paper trains with
// Adam at learning rate 0.001 (Section 6.3.1).
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	steps int
}

// NewAdam returns an Adam optimizer with the paper's learning rate and the
// standard moment decay rates.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update to every parameter in ps using the gradients
// currently accumulated, then the caller typically calls ps.ZeroGrad.
func (a *Adam) Step(ps *ParamSet) {
	a.steps++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.steps))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.steps))
	for _, p := range ps.params {
		for i, g := range p.Grad {
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mHat := p.m[i] / bc1
			vHat := p.v[i] / bc2
			p.Value[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// Steps reports how many optimizer steps have been applied.
func (a *Adam) Steps() int { return a.steps }
