package nn

import (
	"math"
)

// epsValue floors true/estimated values so q-error and logarithms stay finite
// for zero-cardinality results.
const epsValue = 1.0

// Normalizer maps positive targets (costs, cardinalities) to [0,1] by min-max
// scaling in log space, matching the paper's "normalized true cost /
// cardinality" targets that the sigmoid output layer predicts.
type Normalizer struct {
	MinLog, MaxLog float64
}

// NewNormalizer fits a normalizer on the training targets. The range is
// widened by a small margin so slightly out-of-range test values do not
// saturate the sigmoid target exactly at 0 or 1.
func NewNormalizer(values []float64) Normalizer {
	if len(values) == 0 {
		return Normalizer{MinLog: 0, MaxLog: 1}
	}
	minLog, maxLog := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		l := math.Log(math.Max(v, epsValue))
		if l < minLog {
			minLog = l
		}
		if l > maxLog {
			maxLog = l
		}
	}
	if maxLog-minLog < 1e-6 {
		maxLog = minLog + 1
	}
	margin := (maxLog - minLog) * 0.05
	return Normalizer{MinLog: minLog - margin, MaxLog: maxLog + margin}
}

// Span returns the width of the log range.
func (n Normalizer) Span() float64 { return n.MaxLog - n.MinLog }

// Normalize maps a raw positive value to [0,1].
func (n Normalizer) Normalize(v float64) float64 {
	s := (math.Log(math.Max(v, epsValue)) - n.MinLog) / n.Span()
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Denormalize maps a [0,1] model output back to the raw value scale.
func (n Normalizer) Denormalize(s float64) float64 {
	return math.Exp(s*n.Span() + n.MinLog)
}

// QError returns max(est,truth)/min(est,truth), the paper's error metric and
// training loss. Both operands are floored at 1 so the ratio is always >= 1.
func QError(est, truth float64) float64 {
	est = math.Max(est, epsValue)
	truth = math.Max(truth, epsValue)
	if est > truth {
		return est / truth
	}
	return truth / est
}

// QErrorLoss computes the q-error between the denormalized model output s and
// the raw truth, plus the loss gradient with respect to s. The per-sample
// gradient is clamped at gradClip to keep rare huge-error samples from
// destabilizing Adam (the paper's framework relies on the same kind of
// clipping for stability).
type QErrorLoss struct {
	Norm     Normalizer
	GradClip float64 // 0 means no per-sample clipping
}

// Eval returns (loss, dLoss/ds) for sigmoid output s and raw target truth.
func (l QErrorLoss) Eval(s, truth float64) (loss, grad float64) {
	est := math.Max(l.Norm.Denormalize(s), epsValue)
	truth = math.Max(truth, epsValue)
	span := l.Norm.Span()
	if est >= truth {
		loss = est / truth
		grad = loss * span // d(est/truth)/ds = est*span/truth
	} else {
		loss = truth / est
		grad = -loss * span // d(truth/est)/ds = -truth*span/est
	}
	if l.GradClip > 0 {
		if grad > l.GradClip {
			grad = l.GradClip
		} else if grad < -l.GradClip {
			grad = -l.GradClip
		}
	}
	return loss, grad
}

// MSLELoss is the mean-squared error on the normalized log scale — the common
// surrogate for q-error used by reproduction studies. Provided for the loss
// ablation benchmark.
type MSLELoss struct {
	Norm Normalizer
}

// Eval returns (loss, dLoss/ds) for sigmoid output s and raw target truth.
func (l MSLELoss) Eval(s, truth float64) (loss, grad float64) {
	t := l.Norm.Normalize(truth)
	d := s - t
	return d * d, 2 * d
}

// Loss is the interface shared by q-error and MSLE losses.
type Loss interface {
	Eval(s, truth float64) (loss, grad float64)
}
