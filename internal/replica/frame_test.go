package replica

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"

	"costest/internal/core"
	"costest/internal/nn"
)

// modelBits captures every parameter value and the normalizers bitwise.
func modelBits(m *core.Model) []uint64 {
	var bits []uint64
	for _, v := range []float64{m.CostNorm.MinLog, m.CostNorm.MaxLog, m.CardNorm.MinLog, m.CardNorm.MaxLog} {
		bits = append(bits, math.Float64bits(v))
	}
	for _, p := range m.PS.Params() {
		for _, v := range p.Value {
			bits = append(bits, math.Float64bits(v))
		}
	}
	return bits
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := map[FrameType][]byte{
		FrameHello:     {1, 2, 3, 4, 5, 6, 7, 8},
		FrameSnapshot:  bytes.Repeat([]byte{0xAB}, 100),
		FrameDelta:     {},
		FrameAck:       nil,
		FrameResync:    nil,
		FrameHeartbeat: nil,
		FrameFenced:    nil,
	}
	var stream []byte
	order := []FrameType{FrameHello, FrameSnapshot, FrameDelta, FrameAck, FrameResync, FrameHeartbeat, FrameFenced}
	for i, typ := range order {
		stream = AppendFrame(stream, typ, uint64(9000+i), uint64(100+i), uint64(i), payloads[typ])
	}
	fr := NewFrameReader(bytes.NewReader(stream))
	for i, typ := range order {
		f, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != typ || f.Epoch != uint64(9000+i) || f.Gen != uint64(100+i) || f.Prev != uint64(i) {
			t.Fatalf("frame %d: got %v epoch %d gen %d prev %d", i, f.Type, f.Epoch, f.Gen, f.Prev)
		}
		if !bytes.Equal(f.Payload, payloads[typ]) {
			t.Fatalf("frame %d: payload %x, want %x", i, f.Payload, payloads[typ])
		}
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("after stream end: %v, want EOF", err)
	}
}

func TestFrameReaderRejects(t *testing.T) {
	valid := AppendFrame(nil, FrameDelta, 1, 7, 6, []byte{1, 2, 3, 4})
	mutate := func(mod func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mod(b)
		return b
	}
	cases := []struct {
		name    string
		stream  []byte
		errLike string
	}{
		{"bad magic", mutate(func(b []byte) { b[0] = 'X' }), "magic"},
		{"bad version", mutate(func(b []byte) { b[4] = 99 }), "version"},
		{"zero type", mutate(func(b []byte) { b[5] = 0 }), "type"},
		{"unknown type", mutate(func(b []byte) { b[5] = 42 }), "type"},
		{"oversize payload", mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[30:], MaxPayload+1)
		}), "exceeds limit"},
		{"truncated header", valid[:10], "EOF"},
		{"truncated body", valid[:len(valid)-2], "short frame body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewFrameReader(bytes.NewReader(tc.stream)).Read()
			if err == nil {
				t.Fatal("decoded a malformed frame")
			}
			if !strings.Contains(err.Error(), tc.errLike) {
				t.Fatalf("error %q does not mention %q", err, tc.errLike)
			}
		})
	}

	// A checksum failure consumes the frame whole and keeps the stream in
	// sync: the next frame still decodes.
	flipped := mutate(func(b []byte) { b[headerSize+1] ^= 0xFF })
	stream := append(append([]byte(nil), flipped...), valid...)
	fr := NewFrameReader(bytes.NewReader(stream))
	if _, err := fr.Read(); err != ErrChecksum {
		t.Fatalf("corrupt frame: %v, want ErrChecksum", err)
	}
	f, err := fr.Read()
	if err != nil || f.Gen != 7 {
		t.Fatalf("frame after corrupt one: %+v, %v", f, err)
	}
}

func TestApplyModelPayloadErrors(t *testing.T) {
	m := core.New(core.TestConfig(), testEnc)
	m.CostNorm = nn.Normalizer{MinLog: 1, MaxLog: 2}
	m.CardNorm = nn.Normalizer{MinLog: 3, MaxLog: 4}
	before := modelBits(m)
	nParams := len(m.PS.Params())

	valid := AppendModelPayload(nil, m, []int{0, 2})
	mutate := func(mod func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mod(b)
		return b
	}
	cases := []struct {
		name    string
		payload []byte
		full    bool
		errLike string
	}{
		{"too short", valid[:10], false, "at least"},
		{"snapshot count mismatch", valid, true, "model has"},
		{"index out of range", mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[normsSize+4:], uint32(nParams))
		}), false, "out of range"},
		{"value length mismatch", mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[normsSize+8:], 3)
		}), false, "values"},
		{"record truncated", valid[:normsSize+4+6], false, "truncated"},
		{"values truncated", valid[:len(valid)-4], false, "truncated"},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xEE), false, "trailing"},
		{"duplicate param", AppendModelPayload(nil, m, []int{1, 1}), false, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			touched, err := ApplyModelPayload(m, tc.payload, tc.full, nil)
			if err == nil {
				t.Fatal("malformed payload applied")
			}
			if !strings.Contains(err.Error(), tc.errLike) {
				t.Fatalf("error %q does not mention %q", err, tc.errLike)
			}
			if len(touched) != 0 {
				t.Fatalf("error returned %d touched params", len(touched))
			}
			after := modelBits(m)
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("model mutated at word %d despite error (validate-then-commit broken)", i)
				}
			}
		})
	}

	// The valid payload does apply, exactly.
	src := core.New(core.TestConfig(), testEnc)
	for i, p := range src.PS.Params() {
		for j := range p.Value {
			p.Value[j] = float64(i) + float64(j)*0.25
		}
	}
	src.CostNorm = nn.Normalizer{MinLog: -1, MaxLog: 5}
	src.CardNorm = nn.Normalizer{MinLog: 0, MaxLog: 9}
	allIdx := make([]int, nParams)
	for i := range allIdx {
		allIdx[i] = i
	}
	full := AppendModelPayload(nil, src, allIdx)
	touched, err := ApplyModelPayload(m, full, true, nil)
	if err != nil {
		t.Fatalf("full payload: %v", err)
	}
	if len(touched) != nParams {
		t.Fatalf("touched %d params, want %d", len(touched), nParams)
	}
	want, got := modelBits(src), modelBits(m)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("word %d differs after full apply", i)
		}
	}
}

func TestSchemaHash(t *testing.T) {
	a := core.New(core.TestConfig(), testEnc)
	b := core.New(core.TestConfig(), testEnc)
	if SchemaHash(a) != SchemaHash(b) {
		t.Fatal("identical architectures hash differently")
	}
	cfg := core.TestConfig()
	cfg.Hidden += 4
	c := core.New(cfg, testEnc)
	if SchemaHash(a) == SchemaHash(c) {
		t.Fatal("different architectures share a schema hash")
	}
}

// TestFrameApplyAllocs pins the follower's frame-apply hot path — decode,
// validate, write values, stamp — at zero heap allocations steady-state.
func TestFrameApplyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is enforced in the non-race pass")
	}
	m := core.New(core.TestConfig(), testEnc)
	frame := AppendFrame(nil, FrameDelta, 1, 2, 1, AppendModelPayload(nil, m, []int{0, 3, 5}))
	br := bytes.NewReader(frame)
	fr := NewFrameReader(br)
	touched := make([]*nn.Param, 0, len(m.PS.Params()))

	apply := func() {
		br.Reset(frame)
		fm, err := fr.Read()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		touched, err = ApplyModelPayload(m, fm.Payload, false, touched)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		m.PS.MarkParamsUpdated(touched)
	}
	apply() // warm: size the reader buffer
	if avg := testing.AllocsPerRun(200, apply); avg != 0 {
		t.Fatalf("frame apply allocates %v/op, want 0", avg)
	}
}
