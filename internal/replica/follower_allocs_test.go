package replica

import (
	"testing"

	"costest/internal/core"
)

// TestFollowerApplyPublishAllocs pins the follower's warm apply→PublishDelta
// round trip — applyFrame: payload decode, dirty-stamp, delta republish,
// generation bookkeeping — at the delta publisher's constant snapshot-header
// cost, with nothing proportional to model size or payload length. The
// `costlint:noalloc` annotation on applyFrame is this test's static
// cross-check: the test proves the callees' amortized steady state, the
// analyzer proves the body itself can never grow a new allocation site.
func TestFollowerApplyPublishAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is enforced in the non-race pass")
	}
	primary := core.New(core.TestConfig(), testEnc)
	model := core.New(core.TestConfig(), testEnc)
	f := NewFollower(FollowerConfig{
		Addr:   "unused:0",
		Server: core.NewServer(model, core.NewMemoryPool()),
		Model:  model,
	})

	idx := []int{0, 2, 4}
	gen := uint64(1)
	var payload []byte
	apply := func() {
		payload = AppendModelPayload(payload[:0], primary, idx)
		fm := Frame{Type: FrameDelta, Epoch: 1, Gen: gen, Prev: gen - 1, Payload: payload}
		if err := f.applyFrame(fm, false); err != nil {
			t.Fatalf("applyFrame: %v", err)
		}
		gen++
	}
	// Warm until every amortized structure reaches its high-water mark: the
	// touched scratch, the delta publisher's double buffers, and the
	// version→generation map, which stops growing once the eviction ring is
	// full (genMapCap entries).
	for i := 0; i < genMapCap+8; i++ {
		apply()
	}
	avg := testing.AllocsPerRun(200, apply)
	// PublishDelta allocates exactly one constant-size ModelSnapshot header
	// per publication; everything else — frame decode, parameter writes,
	// ring bookkeeping, buffer re-sync — must not touch the allocator.
	if avg > 1 {
		t.Errorf("apply→PublishDelta round trip allocates %.1f allocs/op, want <= 1 (the snapshot header)", avg)
	}
}
