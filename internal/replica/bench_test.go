package replica

import (
	"bytes"
	"testing"

	"costest/internal/core"
	"costest/internal/nn"
)

// benchPayload builds a frame-wrapped payload over idx and returns the raw
// frame bytes (as a follower would read them off the wire).
func benchPayload(b *testing.B, m *core.Model, idx []int) []byte {
	b.Helper()
	payload := AppendModelPayload(nil, m, idx)
	return AppendFrame(nil, FrameSnapshot, 1, 1, 0, payload)
}

// benchApply measures the follower's hot loop: read one frame from a byte
// stream, validate its checksum, and apply the payload into the model.
func benchApply(b *testing.B, m *core.Model, frame []byte, requireFull bool) {
	b.Helper()
	br := bytes.NewReader(frame)
	fr := NewFrameReader(br)
	var touched []*nn.Param
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(frame)
		fm, err := fr.Read()
		if err != nil {
			b.Fatalf("read: %v", err)
		}
		touched, err = ApplyModelPayload(m, fm.Payload, requireFull, touched[:0])
		if err != nil {
			b.Fatalf("apply: %v", err)
		}
	}
}

// BenchmarkApplySnapshot: full-model frame apply — the bootstrap/resync path.
func BenchmarkApplySnapshot(b *testing.B) {
	m := core.New(core.TestConfig(), testEnc)
	idx := make([]int, len(m.PS.Params()))
	for i := range idx {
		idx[i] = i
	}
	benchApply(b, m, benchPayload(b, m, idx), true)
}

// BenchmarkApplySparseDelta: single-parameter delta apply — the steady-state
// path for incremental publications.
func BenchmarkApplySparseDelta(b *testing.B) {
	m := core.New(core.TestConfig(), testEnc)
	benchApply(b, m, benchPayload(b, m, []int{0}), false)
}
