package replica

import (
	"math"
	"sync"
	"testing"
	"time"

	"costest/internal/fault"
)

// obs is one estimate observation: which process served it, at which
// replication generation, and the exact result bits.
type obs struct {
	src      int // 0 = primary, 1+ = replica index + 1
	gen      uint64
	plan     int
	costBits uint64
	cardBits uint64
}

// TestReplicationConformance is the headline acceptance suite: a primary
// training and publishing under load, two replicas following over TCP, and
// concurrent estimate streams against all three. Every estimate is recorded
// with its replication generation; grouped by (generation, plan), all
// observations must be bit-identical regardless of which process served
// them. The run survives — and the identity must hold across — a follower
// restart, a forced mid-stream disconnect of every follower, and
// fault-injected frame corruption and latency on the replication link
// (corrupt frames are rejected by checksum and never applied).
//
// Run under -race in CI: the suite doubles as the data-race proof for the
// replication runtime.
func TestReplicationConformance(t *testing.T) {
	samples := labeledSamples(t, 7, 24)
	primEps := encodePlans(t, samples)
	m, tr := trainedModel(t, primEps, 1)
	srv, pub, addr := startPrimary(t, m, tr)

	replicas := []*testReplica{
		newTestReplica(t, m.Cfg, samples, addr),
		newTestReplica(t, m.Cfg, samples, addr),
	}
	for _, r := range replicas {
		r.start()
	}
	for _, r := range replicas {
		waitFor(t, 15*time.Second, "replica bootstrap", func() bool {
			return r.follower().Generation() == srv.Version()
		})
	}

	// Chaos on the replication link: one in four frames transmitted
	// corrupted, one in five delayed. Corrupt frames must be caught by
	// checksum and healed by snapshot resync; they must never reach a model.
	inj, err := fault.ParseSpec(
		fault.SiteReplicaSendCorrupt+":error:p=0.25;"+fault.SiteReplicaSend+":latency:p=0.2:delay=200us", 42)
	if err != nil {
		t.Fatalf("fault spec: %v", err)
	}
	fault.Enable(inj)
	defer fault.Disable()

	// corruptRejected accumulates across follower restarts (a restart
	// discards the Follower instance and its counters).
	var corruptRejected uint64

	// Concurrent load: one estimate stream per process, each recording into
	// a private slice.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	recorded := make([][]obs, 1+len(replicas))
	runLoad := func(src int, estimate func(plan int) (obs, bool)) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for plan := range primEps {
				if o, ok := estimate(plan); ok {
					recorded[src] = append(recorded[src], o)
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}
	wg.Add(1 + len(replicas))
	go runLoad(0, func(plan int) (obs, bool) {
		cost, card, ver := srv.Estimate(primEps[plan])
		// The primary's server version is the replication generation.
		return obs{src: 0, gen: ver, plan: plan,
			costBits: math.Float64bits(cost), cardBits: math.Float64bits(card)}, true
	})
	for ri, r := range replicas {
		ri, r := ri, r
		go runLoad(1+ri, func(plan int) (obs, bool) {
			cost, card, ver := r.srv.Estimate(r.eps[plan])
			gen, ok := r.follower().GenOf(ver)
			if !ok {
				// Version predates this follower instance (e.g. served across
				// a restart); no generation to anchor the comparison to.
				return obs{}, false
			}
			return obs{src: 1 + ri, gen: gen, plan: plan,
				costBits: math.Float64bits(cost), cardBits: math.Float64bits(card)}, true
		})
	}

	// Churn: train-and-publish rounds with a follower restart and a forced
	// disconnect of everything in the middle.
	const rounds = 24
	for round := 0; round < rounds; round++ {
		tr.TrainEpoch(primEps, 8)
		tr.PublishDelta(srv)
		time.Sleep(2 * time.Millisecond)
		switch round {
		case rounds / 3:
			corruptRejected += replicas[0].follower().Stats().CorruptRejected
			replicas[0].stop()
			replicas[0].start()
		case 2 * rounds / 3:
			pub.DisconnectAll()
		}
	}

	// Convergence: everyone must reach the primary's final generation.
	// Publications are the heal trigger for followers flagged after a
	// dropped frame, so nudge with further publications while waiting.
	converged := func() bool {
		for _, r := range replicas {
			if r.follower().Generation() != srv.Version() {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(60 * time.Second)
	for !converged() {
		if time.Now().After(deadline) {
			for i, r := range replicas {
				t.Logf("replica %d: %+v", i, r.follower().Stats())
			}
			t.Fatalf("replicas never converged to generation %d (publisher: %+v)", srv.Version(), pub.Stats())
		}
		// Let the followers chase the current generation for a while before
		// nudging: every nudge moves the target, so nudging too eagerly
		// (e.g. under -race, where catch-up round-trips are slow) would keep
		// convergence forever out of reach.
		patience := time.Now().Add(2 * time.Second)
		for time.Now().Before(patience) && !converged() {
			time.Sleep(10 * time.Millisecond)
		}
		if !converged() {
			tr.PublishDelta(srv)
		}
	}
	close(stop)
	wg.Wait()

	// Final state: every replica serves the head generation bit-identically.
	for _, r := range replicas {
		expectBitIdentical(t, srv, primEps, r)
	}

	// History: group every observation by (generation, plan); all recorded
	// bits must agree, whichever process served them.
	type key struct {
		gen  uint64
		plan int
	}
	type val struct {
		costBits, cardBits uint64
		srcMask            int
	}
	groups := make(map[key]*val)
	mismatches := 0
	for _, sl := range recorded {
		for _, o := range sl {
			k := key{o.gen, o.plan}
			v := groups[k]
			if v == nil {
				groups[k] = &val{costBits: o.costBits, cardBits: o.cardBits, srcMask: 1 << o.src}
				continue
			}
			v.srcMask |= 1 << o.src
			if v.costBits != o.costBits || v.cardBits != o.cardBits {
				mismatches++
				if mismatches <= 5 {
					t.Errorf("generation %d plan %d: src %d served (%x, %x), earlier observation (%x, %x)",
						o.gen, o.plan, o.src, o.costBits, o.cardBits, v.costBits, v.cardBits)
				}
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d bit-identity mismatches across %d (generation, plan) groups", mismatches, len(groups))
	}
	crossChecked := 0
	for _, v := range groups {
		if v.srcMask&(v.srcMask-1) != 0 { // observed by >= 2 distinct processes
			crossChecked++
		}
	}
	if crossChecked < 20 {
		t.Fatalf("only %d (generation, plan) groups were observed by multiple processes — conformance check is vacuous", crossChecked)
	}
	t.Logf("conformance: %d groups, %d cross-process checked", len(groups), crossChecked)

	// The chaos actually happened and was survived, not skipped.
	pst := pub.Stats()
	if pst.CorruptInjected == 0 {
		t.Fatalf("no corrupt frames were injected: %+v", pst)
	}
	for _, r := range replicas {
		corruptRejected += r.follower().Stats().CorruptRejected
	}
	if corruptRejected == 0 {
		t.Fatalf("corrupt frames injected (%d) but none rejected by a follower", pst.CorruptInjected)
	}
	st0 := replicas[0].follower().Stats()
	if st0.SnapshotsApplied == 0 {
		t.Fatalf("restarted replica should have re-bootstrapped by snapshot: %+v", st0)
	}
	t.Logf("chaos: %d corrupt injected, %d rejected, publisher %+v", pst.CorruptInjected, corruptRejected, pst)
}
