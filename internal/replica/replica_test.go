package replica

import (
	"context"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"costest/internal/core"
	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/feature"
	"costest/internal/nn"
	"costest/internal/pg"
	"costest/internal/planner"
	"costest/internal/stats"
	"costest/internal/strembed"
	"costest/internal/workload"
)

var (
	testDB  = dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.02})
	testCat = stats.Collect(testDB, stats.Options{Buckets: 30, SampleSize: 48, Seed: 1})
	testEng = exec.NewEngine(testDB)
	testPl  = planner.New(pg.New(testCat), testDB.Schema)
	testEnc = feature.NewEncoder(testCat, strembed.HashEmbedder{DimN: 12}, true)
)

// labeledSamples builds a deterministic labeled workload. Samples carry the
// raw plans so each server under test can encode its own private
// EncodedPlans (servers must never share plan buffers in these tests — the
// point is proving cross-process bit-identity, not shared memory).
func labeledSamples(t testing.TB, seed int64, n int) []*workload.Labeled {
	t.Helper()
	queries := workload.TrainingNumeric(testDB, seed, n)
	lab := &workload.Labeler{Planner: testPl, Engine: testEng}
	samples := lab.Label(queries)
	if len(samples) < n/2 {
		t.Fatalf("only %d/%d samples labeled", len(samples), n)
	}
	return samples
}

// encodePlans encodes the samples into fresh, caller-private EncodedPlans.
func encodePlans(t testing.TB, samples []*workload.Labeled) []*feature.EncodedPlan {
	t.Helper()
	eps := make([]*feature.EncodedPlan, 0, len(samples))
	for _, s := range samples {
		ep, err := testEnc.Encode(s.Plan)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		eps = append(eps, ep)
	}
	return eps
}

// trainedModel builds and briefly trains a model on eps.
func trainedModel(t testing.TB, eps []*feature.EncodedPlan, epochs int) (*core.Model, *core.Trainer) {
	t.Helper()
	m := core.New(core.TestConfig(), testEnc)
	tr := core.NewTrainer(m)
	tr.FitNormalizers(eps)
	for i := 0; i < epochs; i++ {
		tr.TrainEpoch(eps, 8)
	}
	return m, tr
}

// startPrimary boots a serving primary with a replication listener on a
// loopback port and returns its server, publisher and listen address.
func startPrimary(t testing.TB, m *core.Model, tr *core.Trainer) (*core.Server, *Publisher, string) {
	t.Helper()
	srv := core.NewServer(m, core.NewMemoryPool())
	tr.Publish(srv)
	pub := NewPublisher(m, srv.Version(), PublisherConfig{Logf: t.Logf})
	srv.SetPublishHook(pub.OnPublish)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go pub.Serve(ln)
	t.Cleanup(pub.Close)
	return srv, pub, ln.Addr().String()
}

// testReplica is one replica process-equivalent: its own model, server and
// privately encoded plans, plus the running Follower.
type testReplica struct {
	t      testing.TB
	addr   string
	model  *core.Model
	srv    *core.Server
	eps    []*feature.EncodedPlan
	fptr   atomic.Pointer[Follower]
	cancel context.CancelFunc
	done   chan struct{}
}

func newTestReplica(t testing.TB, cfg core.Config, samples []*workload.Labeled, addr string) *testReplica {
	t.Helper()
	model := core.New(cfg, testEnc)
	return &testReplica{
		t:     t,
		addr:  addr,
		model: model,
		srv:   core.NewServer(model, core.NewMemoryPool()),
		eps:   encodePlans(t, samples),
	}
}

// start launches a fresh Follower (as after a process restart: all
// replication state forgotten, the local model keeps whatever weights it
// had).
func (r *testReplica) start() *Follower {
	f := NewFollower(FollowerConfig{
		Addr:     r.addr,
		Server:   r.srv,
		Model:    r.model,
		RetryMin: 5 * time.Millisecond,
		RetryMax: 50 * time.Millisecond,
		Logf:     r.t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx)
	}()
	r.fptr.Store(f)
	r.cancel, r.done = cancel, done
	r.t.Cleanup(r.stop)
	return f
}

func (r *testReplica) follower() *Follower { return r.fptr.Load() }

// stop cancels the follower and waits for its goroutine; idempotent.
func (r *testReplica) stop() {
	if r.cancel == nil {
		return
	}
	r.cancel()
	<-r.done
	r.cancel = nil
}

func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// expectBitIdentical asserts that the replica serves every plan with
// bit-identical cost and cardinality to the primary.
func expectBitIdentical(t testing.TB, prim *core.Server, primEps []*feature.EncodedPlan, r *testReplica) {
	t.Helper()
	for i, ep := range primEps {
		pc, pd, pv := prim.Estimate(ep)
		rc, rd, rv := r.srv.Estimate(r.eps[i])
		if math.Float64bits(pc) != math.Float64bits(rc) || math.Float64bits(pd) != math.Float64bits(rd) {
			t.Fatalf("plan %d: primary (%x, %x) at v%d, replica (%x, %x) at v%d",
				i, math.Float64bits(pc), math.Float64bits(pd), pv,
				math.Float64bits(rc), math.Float64bits(rd), rv)
		}
	}
}

// TestFollowerBootstrapAndDelta is the basic replication path: a follower
// bootstraps by snapshot, tracks delta publications, and serves
// bit-identical estimates; a one-parameter update travels as a delta frame
// measurably smaller than a snapshot.
func TestFollowerBootstrapAndDelta(t *testing.T) {
	samples := labeledSamples(t, 11, 16)
	primEps := encodePlans(t, samples)
	m, tr := trainedModel(t, primEps, 1)
	srv, pub, addr := startPrimary(t, m, tr)

	r := newTestReplica(t, m.Cfg, samples, addr)
	f := r.start()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.WaitReady(ctx); err != nil {
		t.Fatalf("follower never became ready: %v", err)
	}
	waitFor(t, 5*time.Second, "bootstrap catch-up", func() bool { return f.Generation() == srv.Version() })
	expectBitIdentical(t, srv, primEps, r)
	if st := f.Stats(); st.SnapshotsApplied == 0 {
		t.Fatalf("follower bootstrapped without a snapshot frame: %+v", st)
	}

	// Three delta publications from real training steps.
	for i := 0; i < 3; i++ {
		tr.TrainEpoch(primEps, 8)
		tr.PublishDelta(srv)
	}
	waitFor(t, 5*time.Second, "delta catch-up", func() bool { return f.Generation() == srv.Version() })
	expectBitIdentical(t, srv, primEps, r)
	if st := f.Stats(); st.DeltasApplied == 0 {
		t.Fatalf("no delta frames applied: %+v", st)
	}

	// A sparse update — one parameter — must travel as a delta frame far
	// smaller than a full snapshot.
	p0 := m.PS.Params()[0]
	p0.Value[0] += 0.5
	m.PS.MarkParamsUpdated([]*nn.Param{p0})
	srv.PublishDelta(m)
	waitFor(t, 5*time.Second, "sparse delta catch-up", func() bool { return f.Generation() == srv.Version() })
	expectBitIdentical(t, srv, primEps, r)
	st := pub.Stats()
	if st.LastDeltaBytes == 0 || st.LastSnapshotBytes == 0 {
		t.Fatalf("missing frame size stats: %+v", st)
	}
	if st.LastDeltaBytes*4 > st.LastSnapshotBytes {
		t.Fatalf("sparse delta frame (%d bytes) not measurably smaller than snapshot (%d bytes)",
			st.LastDeltaBytes, st.LastSnapshotBytes)
	}
	t.Logf("frame sizes: sparse delta %d bytes, full snapshot %d bytes", st.LastDeltaBytes, st.LastSnapshotBytes)

	// Lag is exposed and zero once caught up.
	if fst := f.Stats(); fst.Lag != 0 || !fst.Connected {
		t.Fatalf("caught-up follower reports lag %d connected %v", fst.Lag, fst.Connected)
	}
}

// TestFollowerReconnectCatchUp severs every follower connection, publishes
// while the follower is gone, and checks the reconnect handshake heals the
// gap by snapshot.
func TestFollowerReconnectCatchUp(t *testing.T) {
	samples := labeledSamples(t, 13, 12)
	primEps := encodePlans(t, samples)
	m, tr := trainedModel(t, primEps, 1)
	srv, pub, addr := startPrimary(t, m, tr)

	r := newTestReplica(t, m.Cfg, samples, addr)
	f := r.start()
	waitFor(t, 10*time.Second, "bootstrap", func() bool { return f.Generation() == srv.Version() })

	pub.DisconnectAll()
	for i := 0; i < 2; i++ {
		tr.TrainEpoch(primEps, 8)
		tr.PublishDelta(srv)
	}
	waitFor(t, 10*time.Second, "reconnect catch-up", func() bool { return f.Generation() == srv.Version() })
	expectBitIdentical(t, srv, primEps, r)
	if st := f.Stats(); st.SnapshotsApplied < 2 {
		t.Fatalf("reconnect should have healed by snapshot: %+v", st)
	}
}

// TestFollowerSchemaMismatch proves a follower with a different model
// architecture is refused at the handshake and never serves primary frames.
func TestFollowerSchemaMismatch(t *testing.T) {
	samples := labeledSamples(t, 17, 8)
	primEps := encodePlans(t, samples)
	m, tr := trainedModel(t, primEps, 1)
	_, pub, addr := startPrimary(t, m, tr)

	cfg := core.TestConfig()
	cfg.Hidden += 4 // different architecture => different schema hash
	r := newTestReplica(t, cfg, samples, addr)
	f := r.start()
	waitFor(t, 5*time.Second, "schema rejection", func() bool { return pub.Stats().RejectedConns > 0 })
	select {
	case <-f.ready:
		t.Fatal("mismatched follower became ready")
	default:
	}
	if g := f.Generation(); g != 0 {
		t.Fatalf("mismatched follower applied generation %d", g)
	}
}
