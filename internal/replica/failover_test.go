package replica

import (
	"context"
	"encoding/binary"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"costest/internal/core"
	"costest/internal/fault"
	"costest/internal/feature"
	"costest/internal/nn"
	"costest/internal/workload"
)

// testMember is one cluster-member process-equivalent: its own model and
// server, plus the running Member.
type testMember struct {
	t      testing.TB
	model  *core.Model
	srv    *core.Server
	member *Member
	cancel context.CancelFunc
	done   chan struct{}
}

// startMember boots a Member over a fresh blank model/server pair. The
// member encodes its own private plans; promotable members default to
// training on them after promotion.
func startMember(t testing.TB, cfg core.Config, samples []*workload.Labeled, mc MemberConfig) (*testMember, *core.Server, []*feature.EncodedPlan) {
	t.Helper()
	model := core.New(cfg, testEnc)
	srv := core.NewServer(model, core.NewMemoryPool())
	eps := encodePlans(t, samples)
	mc.Server, mc.Model = srv, model
	if mc.Train == nil && mc.Rank >= 0 {
		mc.Train = eps
	}
	m := NewMember(mc)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Run(ctx)
	}()
	tm := &testMember{t: t, model: model, srv: srv, member: m, cancel: cancel, done: done}
	t.Cleanup(tm.stop)
	return tm, srv, eps
}

func (tm *testMember) stop() {
	if tm.cancel == nil {
		return
	}
	tm.cancel()
	<-tm.done
	tm.cancel = nil
}

// TestFailoverConformance is the HA acceptance suite: primary A streams to
// rank-0 successor B and non-promotable member C under training churn with
// injected frame corruption and latency. A is killed mid-churn; B must
// detect the lapsed lease, promote within the configured bound, and publish
// under epoch 2 while C re-dials through the peer list onto B. A then comes
// back as a zombie still publishing epoch 1: its late frames must be
// provably rejected (fenced) by C, and the zombie must fence itself on the
// reply. Throughout, every estimate observation is recorded with its
// (epoch, generation) coordinates, and grouped by (epoch, generation, plan)
// all observations must be bit-identical whichever process served them.
//
// Run under -race in CI: the suite doubles as the data-race proof for the
// failover runtime.
func TestFailoverConformance(t *testing.T) {
	const (
		hb     = 40 * time.Millisecond
		peerTO = 200 * time.Millisecond
		leaseD = 400 * time.Millisecond
	)
	samples := labeledSamples(t, 29, 20)
	primEps := encodePlans(t, samples)
	mA, trA := trainedModel(t, primEps, 1)

	// Primary A on a pre-bound port, epoch 1.
	srvA := core.NewServer(mA, core.NewMemoryPool())
	trA.Publish(srvA)
	pubA := NewPublisher(mA, srvA.Version(), PublisherConfig{
		Epoch: 1, Heartbeat: hb, PeerTimeout: peerTO, Logf: t.Logf,
	})
	srvA.SetPublishHook(pubA.OnPublish)
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen A: %v", err)
	}
	addrA := lnA.Addr().String()
	go pubA.Serve(lnA)
	t.Cleanup(pubA.Close)

	// B is the designated successor: rank 0, with its promotion listener
	// pre-bound so every peer list can carry its address from the start.
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen B: %v", err)
	}
	addrB := lnB.Addr().String()
	B, srvB, epsB := startMember(t, mA.Cfg, samples, MemberConfig{
		Peers: []string{addrA}, Rank: 0, Listener: lnB,
		Lease: leaseD, Heartbeat: hb, PeerTimeout: peerTO,
		RetryMin: 5 * time.Millisecond, RetryMax: 50 * time.Millisecond,
		TrainInterval: 5 * time.Millisecond, BatchSize: 8,
		Logf: t.Logf,
	})
	// C never promotes; it walks the ordered peer list [A, B].
	C, srvC, epsC := startMember(t, mA.Cfg, samples, MemberConfig{
		Peers: []string{addrA, addrB}, Rank: -1,
		Heartbeat: hb, PeerTimeout: peerTO,
		RetryMin: 5 * time.Millisecond, RetryMax: 50 * time.Millisecond,
		Logf: t.Logf,
	})
	for _, m := range []*Member{B.member, C.member} {
		m := m
		waitFor(t, 15*time.Second, "member bootstrap", func() bool {
			return m.Follower().Generation() == srvA.Version()
		})
	}

	// Chaos on the wire for the whole failover: corrupt frames must be
	// rejected by checksum, latency must be absorbed by deadline slack.
	inj, err := fault.ParseSpec(
		fault.SiteReplicaSendCorrupt+":error:p=0.15;"+fault.SiteReplicaSend+":latency:p=0.2:delay=200us", 99)
	if err != nil {
		t.Fatalf("fault spec: %v", err)
	}
	fault.Enable(inj)
	defer fault.Disable()

	// Concurrent estimate load against all three processes, each observation
	// recorded with its cluster (epoch, generation) coordinates.
	type key struct {
		epoch, gen uint64
		plan       int
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	recorded := make([][]obsEG, 3)
	runLoad := func(src int, estimate func(plan int) (obsEG, bool)) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for plan := range primEps {
				if o, ok := estimate(plan); ok {
					recorded[src] = append(recorded[src], o)
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}
	wg.Add(3)
	go runLoad(0, func(plan int) (obsEG, bool) {
		cost, card, ver := srvA.Estimate(primEps[plan])
		gen, ok := pubA.GenOf(ver)
		if !ok {
			return obsEG{}, false // version predates the first churn publication
		}
		return obsEG{src: 0, epoch: pubA.Epoch(), gen: gen, plan: plan,
			costBits: math.Float64bits(cost), cardBits: math.Float64bits(card)}, true
	})
	go runLoad(1, func(plan int) (obsEG, bool) {
		cost, card, ver := srvB.Estimate(epsB[plan])
		ep, gen, ok := B.member.EpochGenOf(ver)
		if !ok {
			return obsEG{}, false
		}
		return obsEG{src: 1, epoch: ep, gen: gen, plan: plan,
			costBits: math.Float64bits(cost), cardBits: math.Float64bits(card)}, true
	})
	go runLoad(2, func(plan int) (obsEG, bool) {
		cost, card, ver := srvC.Estimate(epsC[plan])
		ep, gen, ok := C.member.EpochGenOf(ver)
		if !ok {
			return obsEG{}, false
		}
		return obsEG{src: 2, epoch: ep, gen: gen, plan: plan,
			costBits: math.Float64bits(cost), cardBits: math.Float64bits(card)}, true
	})

	// Churn on A, then kill it mid-stream: close the publisher (listener and
	// every connection die with it) exactly as a crashed process would look
	// from the outside.
	for round := 0; round < 12; round++ {
		trA.TrainEpoch(primEps, 8)
		trA.PublishDelta(srvA)
		time.Sleep(2 * time.Millisecond)
	}
	killAt := time.Now()
	pubA.Close()

	// B must promote within the lease bound (plus deadline and CI slack —
	// the container is 1-core and -race slows everything).
	promoBound := leaseD + 2*peerTO + 5*time.Second
	waitFor(t, promoBound, "rank-0 promotion", func() bool {
		return B.member.State() == StatePrimary
	})
	promoLat := time.Since(killAt)
	t.Logf("promotion latency: %v after primary kill (lease %v, bound %v)", promoLat.Round(time.Millisecond), leaseD, promoBound)
	if got := B.member.Stats(); got.Promotions != 1 {
		t.Fatalf("B promotions = %d, want 1 (%+v)", got.Promotions, got)
	}
	if ep := B.member.Epoch(); ep != 2 {
		t.Fatalf("promoted epoch = %d, want 2", ep)
	}

	// C must find B through the peer list and adopt epoch 2.
	waitFor(t, 30*time.Second, "C adopts epoch 2", func() bool {
		return C.member.Follower().Epoch() == 2
	})

	// The zombie: A comes back on its old address still claiming epoch 1.
	// Its frames must be rejected by any follower that lands on it, and the
	// FrameFenced reply must fence the zombie itself.
	zombie := NewPublisher(mA, srvA.Version(), PublisherConfig{
		Epoch: 1, Heartbeat: hb, PeerTimeout: peerTO, Logf: t.Logf,
	})
	lnZ, err := net.Listen("tcp", addrA)
	if err != nil {
		t.Fatalf("rebind zombie on %s: %v", addrA, err)
	}
	go zombie.Serve(lnZ)
	t.Cleanup(zombie.Close)

	// Kick C off the new primary until its peer-list walk lands on the
	// zombie (two peers: at most a couple of kicks).
	fencedDeadline := time.Now().Add(20 * time.Second)
	for !(zombie.Fenced() && C.member.Follower().Stats().FencedRejected >= 1) {
		if time.Now().After(fencedDeadline) {
			t.Fatalf("zombie never fenced: zombie %+v, C follower %+v", zombie.Stats(), C.member.Follower().Stats())
		}
		if bp := B.member.Publisher(); bp != nil {
			bp.DisconnectAll()
		}
		time.Sleep(150 * time.Millisecond)
	}
	zst := zombie.Stats()
	if !zst.Fenced || zst.FencedBy != 2 {
		t.Fatalf("zombie stats after fencing: %+v", zst)
	}

	// C must settle back on the real primary and keep replicating epoch 2.
	fault.Disable()
	headB := B.member.Generation()
	waitFor(t, 30*time.Second, "C re-converges on promoted primary", func() bool {
		st := C.member.Follower().Stats()
		return st.Connected && st.Epoch == 2 && C.member.Follower().Generation() >= headB
	})
	// Dwell on the now-clean wire: under -race on one core, C can spend the
	// whole chaos phase behind B and only touch the head generation at the
	// instant of convergence — too short a window for both load recorders to
	// observe a shared epoch-2 generation. Requiring a run of cleanly applied
	// epoch-2 deltas (plus a little slack) guarantees the cross-process check
	// below has epoch-2 groups to bite on.
	d0 := C.member.Follower().Stats().DeltasApplied
	waitFor(t, 30*time.Second, "epoch-2 delta stream at C", func() bool {
		return C.member.Follower().Stats().DeltasApplied >= d0+25
	})
	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()

	// History: group every observation by (epoch, generation, plan); all
	// recorded bits must agree, whichever process served them — across the
	// failover, the fencing, and the chaos.
	type val struct {
		costBits, cardBits uint64
		srcMask            int
	}
	groups := make(map[key]*val)
	mismatches := 0
	for _, sl := range recorded {
		for _, o := range sl {
			k := key{o.epoch, o.gen, o.plan}
			v := groups[k]
			if v == nil {
				groups[k] = &val{costBits: o.costBits, cardBits: o.cardBits, srcMask: 1 << o.src}
				continue
			}
			v.srcMask |= 1 << o.src
			if v.costBits != o.costBits || v.cardBits != o.cardBits {
				mismatches++
				if mismatches <= 5 {
					t.Errorf("epoch %d gen %d plan %d: src %d served (%x, %x), earlier observation (%x, %x)",
						o.epoch, o.gen, o.plan, o.src, o.costBits, o.cardBits, v.costBits, v.cardBits)
				}
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d bit-identity mismatches across %d (epoch, generation, plan) groups", mismatches, len(groups))
	}
	cross, cross2 := 0, 0
	for k, v := range groups {
		if v.srcMask&(v.srcMask-1) != 0 {
			cross++
			if k.epoch == 2 {
				cross2++
			}
		}
	}
	if cross < 10 {
		t.Fatalf("only %d (epoch, generation, plan) groups observed by multiple processes — conformance check is vacuous", cross)
	}
	if cross2 < 1 {
		t.Fatalf("no epoch-2 group was observed by multiple processes — post-failover conformance is vacuous (%d cross total)", cross)
	}
	t.Logf("conformance: %d groups, %d cross-process checked (%d at epoch 2)", len(groups), cross, cross2)

	// The chaos actually happened and was survived, not skipped.
	injected := pubA.Stats().CorruptInjected
	if bp := B.member.Publisher(); bp != nil {
		injected += bp.Stats().CorruptInjected
	}
	rejected := B.member.Follower().Stats().CorruptRejected + C.member.Follower().Stats().CorruptRejected
	if injected == 0 || rejected == 0 {
		t.Fatalf("chaos was a no-op: %d corrupt injected, %d rejected", injected, rejected)
	}
	t.Logf("chaos: %d corrupt injected, %d rejected; C fenced the zombie %d times",
		injected, rejected, C.member.Follower().Stats().FencedRejected)
}

// TestPromoteEpoch pins the promotion epoch seeding rule: strictly above the
// highest observed epoch, the member's own last published epoch, and the
// boot primary's DefaultEpoch — so a member that never heard from any
// primary cannot collide with a default-configured boot primary, and a
// demoted ex-primary never reuses an epoch it already published under.
func TestPromoteEpoch(t *testing.T) {
	cases := []struct{ observed, ownLast, want uint64 }{
		{0, 0, 2}, // never saw a frame: must clear the boot primary's default epoch 1
		{1, 0, 2}, // followed the boot primary
		{5, 0, 6},
		{0, 3, 4}, // ex-primary with no observed view: own epoch dominates
		{2, 7, 8},
		{9, 4, 10},
	}
	for _, tc := range cases {
		if got := promoteEpoch(tc.observed, tc.ownLast); got != tc.want {
			t.Errorf("promoteEpoch(%d, %d) = %d, want %d", tc.observed, tc.ownLast, got, tc.want)
		}
	}
}

// TestBootPromotionClearsBootEpoch boots a promotable member whose whole
// peer list is dead — the boot primary never came up. The lease lapses
// before any frame was ever applied, and the promoted epoch must still be
// above DefaultEpoch: were it 1, a later boot of the default-configured
// primary would stream under the same epoch and split the cluster.
func TestBootPromotionClearsBootEpoch(t *testing.T) {
	samples := labeledSamples(t, 43, 6)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	B, _, _ := startMember(t, core.TestConfig(), samples, MemberConfig{
		Peers: []string{"127.0.0.1:1"}, Rank: 0, Listener: ln,
		Lease: 150 * time.Millisecond, Heartbeat: 20 * time.Millisecond,
		RetryMin: 5 * time.Millisecond, RetryMax: 20 * time.Millisecond,
		TrainInterval: 5 * time.Millisecond, BatchSize: 8,
		Logf: t.Logf,
	})
	waitFor(t, 15*time.Second, "boot promotion", func() bool {
		return B.member.State() == StatePrimary
	})
	if ep := B.member.Epoch(); ep <= DefaultEpoch {
		t.Fatalf("boot promotion epoch = %d, must be above the boot primary's default %d", ep, DefaultEpoch)
	}
}

// TestLeaseBoundsFailoverUnderWedgedPeer wedges the only peer (accepts, then
// total silence) with an hour-long PeerTimeout and DialTimeout: the member's
// read deadline must be capped by the remaining lease, so the lapse is still
// detected and promotion happens on the lease bound — not lease + PeerTimeout.
func TestLeaseBoundsFailoverUnderWedgedPeer(t *testing.T) {
	samples := labeledSamples(t, 47, 6)
	wedged, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var mu sync.Mutex
	var held []net.Conn
	go func() {
		for {
			c, err := wedged.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, c) // hold open, never read or write
			mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		wedged.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range held {
			c.Close()
		}
	})

	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen B: %v", err)
	}
	const leaseD = 250 * time.Millisecond
	start := time.Now()
	B, _, _ := startMember(t, core.TestConfig(), samples, MemberConfig{
		Peers: []string{wedged.Addr().String()}, Rank: 0, Listener: lnB,
		Lease: leaseD, Heartbeat: 50 * time.Millisecond,
		PeerTimeout: time.Hour, DialTimeout: time.Hour, WriteTimeout: time.Hour,
		RetryMin: 5 * time.Millisecond, RetryMax: 20 * time.Millisecond,
		TrainInterval: 5 * time.Millisecond, BatchSize: 8,
		Logf: t.Logf,
	})
	// Generous CI bound — but hours below PeerTimeout, which is the point:
	// only the lease cap on the read deadline lets the lapse be seen at all.
	waitFor(t, 30*time.Second, "promotion past the wedged peer", func() bool {
		return B.member.State() == StatePrimary
	})
	t.Logf("promoted %v after boot (lease %v, peer timeout 1h)", time.Since(start).Round(time.Millisecond), leaseD)
}

// TestFenceRequiresHigherEpoch proves a healthy primary cannot be silenced
// by a bogus fence claim: FrameFenced at an equal or lower epoch is ignored,
// only a strictly higher epoch deposes the publisher.
func TestFenceRequiresHigherEpoch(t *testing.T) {
	samples := labeledSamples(t, 53, 6)
	primEps := encodePlans(t, samples)
	m, tr := trainedModel(t, primEps, 1)
	srv := core.NewServer(m, core.NewMemoryPool())
	tr.Publish(srv)
	pub := NewPublisher(m, srv.Version(), PublisherConfig{Epoch: 3, Logf: t.Logf})
	srv.SetPublishHook(pub.OnPublish)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go pub.Serve(ln)
	t.Cleanup(pub.Close)

	hello := make([]byte, 8)
	binary.LittleEndian.PutUint64(hello, SchemaHash(m))
	fence := func(epoch uint64) net.Conn {
		t.Helper()
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		if _, err := nc.Write(AppendFrame(nil, FrameHello, epoch, 0, 0, hello)); err != nil {
			t.Fatalf("hello: %v", err)
		}
		if _, err := nc.Write(AppendFrame(nil, FrameFenced, epoch, 0, 0, nil)); err != nil {
			t.Fatalf("fence frame: %v", err)
		}
		return nc
	}

	for _, bogus := range []uint64{0, 2, 3} { // zero, lower, equal
		nc := fence(bogus)
		time.Sleep(100 * time.Millisecond)
		if pub.Fenced() {
			t.Fatalf("publisher at epoch 3 fenced by a claim at epoch %d", bogus)
		}
		nc.Close()
	}
	nc := fence(4)
	defer nc.Close()
	waitFor(t, 10*time.Second, "fencing by a strictly higher epoch", func() bool {
		return pub.Fenced()
	})
	if by := pub.FencedBy(); by != 4 {
		t.Fatalf("FencedBy = %d, want 4", by)
	}
}

// TestDemotedMemberNeverReusesConsumedEpochs drives the full demote →
// re-promote cycle: a boot-promoted member (epoch 2) is fenced by a scripted
// follower claiming epoch 5, demotes, and — with its peer list still dead —
// promotes again. The second promotion must publish strictly above the
// fencing epoch (6), never reusing 2..5: a reused epoch would replay
// (epoch, generation) coordinates with different weights.
func TestDemotedMemberNeverReusesConsumedEpochs(t *testing.T) {
	samples := labeledSamples(t, 59, 6)
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	B, _, _ := startMember(t, core.TestConfig(), samples, MemberConfig{
		Peers: []string{"127.0.0.1:1"}, Rank: 0,
		Listener: lnB, Listen: lnB.Addr().String(), // re-promotion rebinds the same port
		Lease: 150 * time.Millisecond, Heartbeat: 20 * time.Millisecond,
		PeerTimeout: 100 * time.Millisecond,
		RetryMin:    5 * time.Millisecond, RetryMax: 20 * time.Millisecond,
		TrainInterval: 5 * time.Millisecond, BatchSize: 8,
		Logf: t.Logf,
	})
	waitFor(t, 15*time.Second, "boot promotion", func() bool {
		return B.member.State() == StatePrimary
	})
	if ep := B.member.Epoch(); ep != 2 {
		t.Fatalf("boot promotion epoch = %d, want 2", ep)
	}

	// A scripted follower at epoch 5 fences the member's publisher.
	nc, err := net.Dial("tcp", lnB.Addr().String())
	if err != nil {
		t.Fatalf("dial member: %v", err)
	}
	defer nc.Close()
	hello := make([]byte, 8)
	binary.LittleEndian.PutUint64(hello, SchemaHash(B.model))
	if _, err := nc.Write(AppendFrame(nil, FrameHello, 5, 0, 0, hello)); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if _, err := nc.Write(AppendFrame(nil, FrameFenced, 5, 0, 0, nil)); err != nil {
		t.Fatalf("fence frame: %v", err)
	}
	waitFor(t, 15*time.Second, "demotion", func() bool {
		return B.member.Stats().Demotions >= 1
	})

	// Peer list still dead: the lease lapses again and the member
	// re-promotes — strictly above the epoch that fenced it.
	waitFor(t, 15*time.Second, "re-promotion", func() bool {
		return B.member.State() == StatePrimary && B.member.Stats().Promotions >= 2
	})
	if ep := B.member.Epoch(); ep != 6 {
		t.Fatalf("re-promotion epoch = %d, want 6 (fenced by 5)", ep)
	}
}

// TestTokenlessPrimaryAcceptsAnyFollower pins the -replicate-token "empty
// disables" promise: a primary without a token accepts followers whether or
// not they present one, with zero auth rejects.
func TestTokenlessPrimaryAcceptsAnyFollower(t *testing.T) {
	samples := labeledSamples(t, 61, 8)
	primEps := encodePlans(t, samples)
	m, tr := trainedModel(t, primEps, 1)
	srv := core.NewServer(m, core.NewMemoryPool())
	tr.Publish(srv)
	pub := NewPublisher(m, srv.Version(), PublisherConfig{Logf: t.Logf}) // no token
	srv.SetPublishHook(pub.OnPublish)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go pub.Serve(ln)
	t.Cleanup(pub.Close)

	for _, token := range []string{"", "sekrit"} {
		model := core.New(m.Cfg, testEnc)
		f := NewFollower(FollowerConfig{
			Addr: ln.Addr().String(), Token: token,
			Server: core.NewServer(model, core.NewMemoryPool()), Model: model,
			RetryMin: 5 * time.Millisecond, RetryMax: 25 * time.Millisecond,
			Logf: t.Logf,
		})
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			f.Run(ctx)
		}()
		waitFor(t, 10*time.Second, "bootstrap (token "+token+")", func() bool {
			return f.Generation() == srv.Version()
		})
		cancel()
		<-done
	}
	if st := pub.Stats(); st.AuthRejects != 0 {
		t.Fatalf("tokenless primary rejected followers: %+v", st)
	}
}

// obsEG is an estimate observation carrying full cluster coordinates.
type obsEG struct {
	src        int
	epoch, gen uint64
	plan       int
	costBits   uint64
	cardBits   uint64
}

// TestBackoffDelay pins the reconnect backoff budget: exponential doubling
// from RetryMin, clamped to RetryMax, jitter of at most half the base, never
// past the cap — the min/max possible sleep for every attempt is table-pinned.
func TestBackoffDelay(t *testing.T) {
	const (
		minD = 10 * time.Millisecond
		maxD = 160 * time.Millisecond
	)
	cases := []struct {
		attempt  int
		min, max time.Duration // bounds on the returned sleep over all jit
	}{
		{0, 10 * time.Millisecond, 15 * time.Millisecond},
		{1, 20 * time.Millisecond, 30 * time.Millisecond},
		{2, 40 * time.Millisecond, 60 * time.Millisecond},
		{3, 80 * time.Millisecond, 120 * time.Millisecond},
		{4, 160 * time.Millisecond, 160 * time.Millisecond}, // capped, jitter clamped
		{9, 160 * time.Millisecond, 160 * time.Millisecond},
		{62, 160 * time.Millisecond, 160 * time.Millisecond}, // no overflow at silly attempts
	}
	for _, tc := range cases {
		if got := backoffDelay(tc.attempt, minD, maxD, 0); got != tc.min {
			t.Errorf("attempt %d jit 0: %v, want %v", tc.attempt, got, tc.min)
		}
		for _, jit := range []float64{0.25, 0.5, 0.999999} {
			got := backoffDelay(tc.attempt, minD, maxD, jit)
			if got < tc.min || got > tc.max {
				t.Errorf("attempt %d jit %v: %v outside [%v, %v]", tc.attempt, jit, got, tc.min, tc.max)
			}
		}
	}
	// Degenerate configs still behave: non-positive min gets a floor, an
	// inverted max is raised to min.
	if got := backoffDelay(3, 0, 0, 0.5); got <= 0 {
		t.Errorf("degenerate config returned %v", got)
	}
	if got := backoffDelay(0, 50*time.Millisecond, time.Millisecond, 0); got != 50*time.Millisecond {
		t.Errorf("inverted max: %v, want 50ms", got)
	}
}

// TestReplicationTokenAuth proves the pre-shared token gate: a follower with
// the wrong token is rejected at the handshake (before any payload field is
// parsed — the rejection counts as an auth reject, not a schema mismatch)
// and never serves a frame; the right token replicates normally.
func TestReplicationTokenAuth(t *testing.T) {
	samples := labeledSamples(t, 23, 8)
	primEps := encodePlans(t, samples)
	m, tr := trainedModel(t, primEps, 1)
	srv := core.NewServer(m, core.NewMemoryPool())
	tr.Publish(srv)
	pub := NewPublisher(m, srv.Version(), PublisherConfig{Token: "hunter2", Logf: t.Logf})
	srv.SetPublishHook(pub.OnPublish)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go pub.Serve(ln)
	t.Cleanup(pub.Close)
	addr := ln.Addr().String()

	runFollower := func(token string) (*Follower, context.CancelFunc, chan struct{}) {
		model := core.New(m.Cfg, testEnc)
		f := NewFollower(FollowerConfig{
			Addr: addr, Token: token,
			Server: core.NewServer(model, core.NewMemoryPool()), Model: model,
			RetryMin: 5 * time.Millisecond, RetryMax: 25 * time.Millisecond,
			Logf: t.Logf,
		})
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			f.Run(ctx)
		}()
		return f, cancel, done
	}

	bad, badCancel, badDone := runFollower("wrong")
	waitFor(t, 10*time.Second, "auth rejection", func() bool { return pub.Stats().AuthRejects >= 2 })
	if g := bad.Generation(); g != 0 {
		t.Fatalf("bad-token follower applied generation %d", g)
	}
	select {
	case <-bad.ready:
		t.Fatal("bad-token follower became ready")
	default:
	}
	badCancel()
	<-badDone
	if st := pub.Stats(); st.Followers != 0 {
		t.Fatalf("bad-token follower counted as connected: %+v", st)
	}

	good, goodCancel, goodDone := runFollower("hunter2")
	defer func() {
		goodCancel()
		<-goodDone
	}()
	waitFor(t, 10*time.Second, "authed bootstrap", func() bool { return good.Generation() == srv.Version() })
}

// TestHeartbeatKeepsIdleConnectionAlive proves the liveness layer: with no
// publications at all for many PeerTimeout windows, bidirectional heartbeats
// keep the connection fed (no deadline trips, no reconnects) and the
// connection still works when publication resumes.
func TestHeartbeatKeepsIdleConnectionAlive(t *testing.T) {
	samples := labeledSamples(t, 31, 8)
	primEps := encodePlans(t, samples)
	m, tr := trainedModel(t, primEps, 1)
	srv := core.NewServer(m, core.NewMemoryPool())
	tr.Publish(srv)
	pub := NewPublisher(m, srv.Version(), PublisherConfig{
		Heartbeat: 20 * time.Millisecond, PeerTimeout: 100 * time.Millisecond, Logf: t.Logf,
	})
	srv.SetPublishHook(pub.OnPublish)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go pub.Serve(ln)
	t.Cleanup(pub.Close)

	model := core.New(m.Cfg, testEnc)
	f := NewFollower(FollowerConfig{
		Addr:   ln.Addr().String(),
		Server: core.NewServer(model, core.NewMemoryPool()), Model: model,
		Heartbeat: 20 * time.Millisecond, PeerTimeout: 100 * time.Millisecond,
		RetryMin: 5 * time.Millisecond, RetryMax: 25 * time.Millisecond,
		Logf: t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx)
	}()
	defer func() {
		cancel()
		<-done
	}()
	waitFor(t, 10*time.Second, "bootstrap", func() bool { return f.Generation() == srv.Version() })

	time.Sleep(500 * time.Millisecond) // five PeerTimeout windows of publication silence
	st := f.Stats()
	if !st.Connected || st.Reconnects != 0 {
		t.Fatalf("idle connection did not survive: %+v", st)
	}
	if st.HeartbeatsReceived == 0 || st.HeartbeatsSent == 0 {
		t.Fatalf("no heartbeats flowed on the idle connection: %+v", st)
	}
	if ps := pub.Stats(); ps.HeartbeatsSent == 0 {
		t.Fatalf("publisher sent no heartbeats: %+v", ps)
	}

	tr.TrainEpoch(primEps, 8)
	tr.PublishDelta(srv)
	waitFor(t, 10*time.Second, "post-idle publication", func() bool { return f.Generation() == srv.Version() })
}

// TestSlowFollowerEviction proves the backpressure bound: a follower whose
// connection stalls (injected write latency) fills its bounded send queue,
// accumulates consecutive publish-time stalls, and is evicted instead of
// blocking the primary or growing memory; once the stall clears it
// reconnects and heals by snapshot.
func TestSlowFollowerEviction(t *testing.T) {
	samples := labeledSamples(t, 37, 8)
	primEps := encodePlans(t, samples)
	m, tr := trainedModel(t, primEps, 1)
	srv := core.NewServer(m, core.NewMemoryPool())
	tr.Publish(srv)
	pub := NewPublisher(m, srv.Version(), PublisherConfig{EvictAfter: 2, Logf: t.Logf})
	srv.SetPublishHook(pub.OnPublish)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go pub.Serve(ln)
	t.Cleanup(pub.Close)

	r := newTestReplica(t, m.Cfg, samples, ln.Addr().String())
	f := r.start()
	waitFor(t, 10*time.Second, "bootstrap", func() bool { return f.Generation() == srv.Version() })

	// Stall the wire: every publisher write takes 50ms, so the send queue
	// (depth 32) fills and publications start stalling.
	inj, err := fault.ParseSpec(fault.SiteReplicaSend+":latency:p=1:delay=50ms", 7)
	if err != nil {
		t.Fatalf("fault spec: %v", err)
	}
	fault.Enable(inj)
	p0 := m.PS.Params()[0]
	for i := 0; i < 300 && pub.Stats().Evictions == 0; i++ {
		p0.Value[0] += 0.001
		m.PS.MarkParamsUpdated([]*nn.Param{p0})
		srv.PublishDelta(m)
		time.Sleep(time.Millisecond)
	}
	fault.Disable()
	st := pub.Stats()
	if st.Evictions == 0 {
		t.Fatalf("slow follower was never evicted: %+v", st)
	}

	// Stall cleared: the evicted follower reconnects and heals by snapshot.
	waitFor(t, 15*time.Second, "post-eviction heal", func() bool {
		return r.follower().Generation() == srv.Version()
	})
	expectBitIdentical(t, srv, primEps, r)
	if fst := r.follower().Stats(); fst.Reconnects == 0 {
		t.Fatalf("evicted follower never reconnected: %+v", fst)
	}
}

// TestStatsUnderChurn hammers Follower.Stats and Publisher.Stats (including
// the per-connection counters) from a dedicated reader while publications,
// forced disconnects and reconnects churn underneath. Cumulative counters
// must be monotone across consecutive snapshots and -race must see no torn
// reads.
func TestStatsUnderChurn(t *testing.T) {
	samples := labeledSamples(t, 41, 10)
	primEps := encodePlans(t, samples)
	m, tr := trainedModel(t, primEps, 1)
	srv, pub, addr := startPrimary(t, m, tr)
	r := newTestReplica(t, m.Cfg, samples, addr)
	f := r.start()
	waitFor(t, 10*time.Second, "bootstrap", func() bool { return f.Generation() == srv.Version() })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var pf FollowerStats
		var pp PublisherStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			fs := r.follower().Stats()
			if fs.Acks < pf.Acks || fs.DeltasApplied < pf.DeltasApplied ||
				fs.SnapshotsApplied < pf.SnapshotsApplied || fs.Reconnects < pf.Reconnects ||
				fs.CorruptRejected < pf.CorruptRejected || fs.HeartbeatsReceived < pf.HeartbeatsReceived {
				t.Errorf("follower counters went backwards: %+v then %+v", pf, fs)
				return
			}
			pf = fs
			ps := pub.Stats()
			if ps.Publications < pp.Publications || ps.DeltaFrames < pp.DeltaFrames ||
				ps.SnapshotFrames < pp.SnapshotFrames || ps.DroppedFrames < pp.DroppedFrames ||
				ps.Evictions < pp.Evictions || ps.HeartbeatsSent < pp.HeartbeatsSent {
				t.Errorf("publisher counters went backwards: %+v then %+v", pp, ps)
				return
			}
			for _, c := range ps.Conns {
				if c.Remote == "" {
					t.Errorf("per-connection stats missing remote: %+v", c)
					return
				}
			}
			pp = ps
		}
	}()

	for round := 0; round < 30; round++ {
		tr.TrainEpoch(primEps, 8)
		tr.PublishDelta(srv)
		if round%7 == 3 {
			pub.DisconnectAll()
		}
		time.Sleep(time.Millisecond)
	}
	waitFor(t, 30*time.Second, "post-churn convergence", func() bool {
		return r.follower().Generation() == srv.Version()
	})
	close(stop)
	wg.Wait()

	fs := r.follower().Stats()
	if fs.Acks == 0 || fs.Reconnects == 0 {
		t.Fatalf("churn was a no-op: %+v", fs)
	}
}
