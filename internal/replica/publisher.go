package replica

import (
	"bufio"
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"

	"costest/internal/core"
	"costest/internal/fault"
)

// Fault-injection sites on the replication link (see internal/fault). The
// corrupt site is interpreted by the sender as "flip bytes in a private copy
// of the frame before writing" — the follower must reject it by checksum.
const (
	// SiteSend fires before every frame write on the primary; latency rules
	// delay the stream, error rules kill the connection.
	SiteSend = "replica.send"
	// SiteSendCorrupt fires before every frame write; an error rule makes
	// the primary transmit a deliberately corrupted copy of the frame.
	SiteSendCorrupt = "replica.send.corrupt"
	// SiteRecv fires before every frame decode on the follower; latency
	// rules delay apply, error rules drop the connection (reconnect path).
	SiteRecv = "replica.recv"
)

// connQueueDepth bounds the per-follower outbound frame queue. A follower
// that falls further behind than this stops receiving deltas and is healed
// with a snapshot at the next publication instead (slow followers must not
// block or bloat the primary).
const connQueueDepth = 32

// Publisher is the primary side of replication: it taps every Server
// publication (register OnPublish via core.Server.SetPublishHook), keeps a
// private mirror of the published weights, and streams delta frames to every
// connected follower. The mirror makes catch-up independent of training:
// snapshot frames for new or lagging followers are encoded from the mirror
// under the publisher's own lock, at any time, without touching the live
// (possibly mid-step) training model.
type Publisher struct {
	mu     sync.Mutex
	mirror *core.Model // publisher-owned copy of the last published weights
	stamps []uint64    // per-param source stamps at last mirror sync
	src    *core.Model // source model of the last publication
	gen    uint64      // generation of the mirror = primary Server version
	schema uint64
	conns  map[*pubConn]struct{}
	closed bool
	ln     net.Listener
	logf   func(format string, args ...any)
	wg     sync.WaitGroup

	dirty  []int // scratch: indices dirtied by the current publication
	allIdx []int // 0..nparams-1, for snapshot encoding

	publications      atomic.Uint64
	deltaFrames       atomic.Uint64
	snapshotFrames    atomic.Uint64
	deltaBytes        atomic.Uint64
	snapshotBytes     atomic.Uint64
	lastDeltaBytes    atomic.Uint64
	lastSnapshotBytes atomic.Uint64
	droppedFrames     atomic.Uint64
	corruptInjected   atomic.Uint64
	rejectedConns     atomic.Uint64
}

// pubConn is one follower connection. needsSnapshot and ready are guarded by
// Publisher.mu; acked is read by Stats without the lock.
type pubConn struct {
	nc            net.Conn
	out           chan []byte // immutable encoded frames, shared across conns
	done          chan struct{}
	closeOnce     sync.Once
	ready         bool // handshake complete, eligible for broadcast
	needsSnapshot bool // next publication must send a full snapshot
	acked         atomic.Uint64
}

func (c *pubConn) trySend(b []byte) bool {
	select {
	case c.out <- b:
		return true
	default:
		return false
	}
}

// NewPublisher builds a publisher mirroring m at generation gen (the owning
// Server's current version). The caller must have m quiesced — construct the
// publisher after the initial publish, before training starts — and then
// register pub.OnPublish with core.Server.SetPublishHook. logf may be nil.
func NewPublisher(m *core.Model, gen uint64, logf func(format string, args ...any)) *Publisher {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	params := m.PS.Params()
	p := &Publisher{
		mirror: core.New(m.Cfg, m.Enc),
		stamps: make([]uint64, len(params)),
		src:    m,
		gen:    gen,
		schema: SchemaHash(m),
		conns:  make(map[*pubConn]struct{}),
		logf:   logf,
		allIdx: make([]int, len(params)),
	}
	mir := p.mirror.PS.Params()
	for i, sp := range params {
		copy(mir[i].Value, sp.Value)
		p.stamps[i] = sp.Stamp()
		p.allIdx[i] = i
	}
	p.mirror.CostNorm, p.mirror.CardNorm = m.CostNorm, m.CardNorm
	return p
}

// OnPublish is the publish hook: called under the Server's publication lock
// with training quiesced, it syncs the dirty parameters into the mirror,
// encodes one immutable delta frame, and broadcasts it. Followers flagged
// for catch-up get a snapshot frame instead; a follower whose queue is full
// is skipped and flagged (healed by snapshot at a later publication).
func (p *Publisher) OnPublish(m *core.Model, version uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if m != p.src {
		// A different source model (e.g. a checkpoint swap): every recorded
		// stamp is meaningless, resync the whole mirror.
		p.src = m
		for i := range p.stamps {
			p.stamps[i] = 0
		}
	}
	p.dirty = p.dirty[:0]
	srcParams := m.PS.Params()
	mirParams := p.mirror.PS.Params()
	for i, sp := range srcParams {
		if st := sp.Stamp(); st > p.stamps[i] {
			p.stamps[i] = st
			copy(mirParams[i].Value, sp.Value)
			p.dirty = append(p.dirty, i)
		}
	}
	p.mirror.CostNorm, p.mirror.CardNorm = m.CostNorm, m.CardNorm
	prev := p.gen
	p.gen = version
	p.publications.Add(1)

	frame := AppendFrame(nil, FrameDelta, version, prev, AppendModelPayload(nil, p.mirror, p.dirty))
	p.lastDeltaBytes.Store(uint64(len(frame)))
	var snap []byte
	for c := range p.conns {
		if !c.ready {
			continue
		}
		if c.needsSnapshot {
			if snap == nil {
				snap = p.encodeSnapshotLocked()
			}
			if c.trySend(snap) {
				c.needsSnapshot = false
				p.snapshotFrames.Add(1)
				p.snapshotBytes.Add(uint64(len(snap)))
			}
		} else if c.trySend(frame) {
			p.deltaFrames.Add(1)
			p.deltaBytes.Add(uint64(len(frame)))
		} else {
			c.needsSnapshot = true
			p.droppedFrames.Add(1)
		}
	}
}

// encodeSnapshotLocked encodes a full-snapshot frame of the mirror at the
// current generation. Caller holds p.mu.
func (p *Publisher) encodeSnapshotLocked() []byte {
	b := AppendFrame(nil, FrameSnapshot, p.gen, p.gen, AppendModelPayload(nil, p.mirror, p.allIdx))
	p.lastSnapshotBytes.Store(uint64(len(b)))
	return b
}

// Serve accepts follower connections on ln until the listener is closed
// (Close does). Run it on its own goroutine.
func (p *Publisher) Serve(ln net.Listener) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		c := &pubConn{nc: nc, out: make(chan []byte, connQueueDepth), done: make(chan struct{})}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			nc.Close()
			return
		}
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.handleConn(c)
	}
}

// handleConn validates the hello handshake, starts the writer, and then
// consumes acks and resync requests until the connection dies.
func (p *Publisher) handleConn(c *pubConn) {
	defer p.wg.Done()
	defer p.drop(c)
	fr := NewFrameReader(bufio.NewReaderSize(c.nc, 32<<10))
	f, err := fr.Read()
	if err != nil || f.Type != FrameHello || len(f.Payload) != 8 {
		p.rejectedConns.Add(1)
		p.logf("replica: rejected connection from %s: bad hello (%v)", c.nc.RemoteAddr(), err)
		return
	}
	if got := binary.LittleEndian.Uint64(f.Payload); got != p.schema {
		p.rejectedConns.Add(1)
		p.logf("replica: rejected follower %s: schema %#x, primary has %#x", c.nc.RemoteAddr(), got, p.schema)
		return
	}

	p.mu.Lock()
	if _, live := p.conns[c]; !live {
		p.mu.Unlock()
		return
	}
	gen := p.gen
	c.ready = true
	if f.Gen == p.gen && f.Gen != 0 {
		// Reconnecting follower already at our generation: nothing to send.
		c.acked.Store(f.Gen)
	} else {
		snap := p.encodeSnapshotLocked()
		if c.trySend(snap) {
			p.snapshotFrames.Add(1)
			p.snapshotBytes.Add(uint64(len(snap)))
		} else {
			c.needsSnapshot = true
		}
	}
	p.mu.Unlock()
	p.logf("replica: follower %s connected at generation %d (primary at %d)", c.nc.RemoteAddr(), f.Gen, gen)

	p.wg.Add(1)
	go p.writeLoop(c)
	for {
		f, err := fr.Read()
		if err == ErrChecksum {
			continue // control frame corrupted in transit; follower will resend
		}
		if err != nil {
			return
		}
		switch f.Type {
		case FrameAck:
			c.acked.Store(f.Gen)
		case FrameResync:
			p.mu.Lock()
			if _, live := p.conns[c]; live {
				snap := p.encodeSnapshotLocked()
				if c.trySend(snap) {
					c.needsSnapshot = false
					p.snapshotFrames.Add(1)
					p.snapshotBytes.Add(uint64(len(snap)))
				} else {
					c.needsSnapshot = true
				}
			}
			p.mu.Unlock()
		}
	}
}

// writeLoop drains the connection's frame queue onto the socket, applying
// the fault-injection sites.
func (p *Publisher) writeLoop(c *pubConn) {
	defer p.wg.Done()
	for {
		select {
		case b := <-c.out:
			if err := p.writeFrame(c, b); err != nil {
				p.drop(c)
				return
			}
		case <-c.done:
			return
		}
	}
}

func (p *Publisher) writeFrame(c *pubConn, b []byte) error {
	if err := fault.Point(SiteSend); err != nil {
		return err
	}
	if fault.Point(SiteSendCorrupt) != nil {
		// Transmit a corrupted copy: the shared frame bytes stay pristine
		// (other followers send the same slice), the wire sees flipped bits
		// mid-frame. Framing fields are intact, so the follower consumes the
		// frame whole and must reject it by checksum.
		cb := append([]byte(nil), b...)
		cb[len(cb)/2] ^= 0x5A
		b = cb
		p.corruptInjected.Add(1)
	}
	_, err := c.nc.Write(b)
	return err
}

// drop unregisters and closes a connection; idempotent, callable from any
// goroutine.
func (p *Publisher) drop(c *pubConn) {
	p.mu.Lock()
	_, live := p.conns[c]
	delete(p.conns, c)
	p.mu.Unlock()
	c.closeOnce.Do(func() { close(c.done) })
	c.nc.Close()
	if live {
		p.logf("replica: follower %s disconnected", c.nc.RemoteAddr())
	}
}

// DisconnectAll severs every follower connection (they will reconnect and
// catch up) — a test and drain hook.
func (p *Publisher) DisconnectAll() {
	p.mu.Lock()
	conns := make([]*pubConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		p.drop(c)
	}
}

// Close stops accepting, severs every follower, and waits for connection
// goroutines to exit. The publisher stays registered as a publish hook but
// ignores further publications.
func (p *Publisher) Close() {
	p.mu.Lock()
	p.closed = true
	ln := p.ln
	conns := make([]*pubConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		p.drop(c)
	}
	p.wg.Wait()
}

// PublisherStats is the /statsz view of a publisher.
type PublisherStats struct {
	Generation        uint64 `json:"generation"`
	Followers         int    `json:"followers"`
	MinAckedGen       uint64 `json:"min_acked_generation"`
	Publications      uint64 `json:"publications"`
	DeltaFrames       uint64 `json:"delta_frames"`
	SnapshotFrames    uint64 `json:"snapshot_frames"`
	DeltaBytes        uint64 `json:"delta_bytes"`
	SnapshotBytes     uint64 `json:"snapshot_bytes"`
	LastDeltaBytes    uint64 `json:"last_delta_bytes"`
	LastSnapshotBytes uint64 `json:"last_snapshot_bytes"`
	DroppedFrames     uint64 `json:"dropped_frames"`
	CorruptInjected   uint64 `json:"corrupt_frames_injected"`
	RejectedConns     uint64 `json:"rejected_conns"`
}

// Stats snapshots the publisher's counters.
func (p *Publisher) Stats() PublisherStats {
	st := PublisherStats{
		Publications:      p.publications.Load(),
		DeltaFrames:       p.deltaFrames.Load(),
		SnapshotFrames:    p.snapshotFrames.Load(),
		DeltaBytes:        p.deltaBytes.Load(),
		SnapshotBytes:     p.snapshotBytes.Load(),
		LastDeltaBytes:    p.lastDeltaBytes.Load(),
		LastSnapshotBytes: p.lastSnapshotBytes.Load(),
		DroppedFrames:     p.droppedFrames.Load(),
		CorruptInjected:   p.corruptInjected.Load(),
		RejectedConns:     p.rejectedConns.Load(),
	}
	p.mu.Lock()
	st.Generation = p.gen
	for c := range p.conns {
		if !c.ready {
			continue
		}
		st.Followers++
		if a := c.acked.Load(); st.MinAckedGen == 0 || a < st.MinAckedGen {
			st.MinAckedGen = a
		}
	}
	p.mu.Unlock()
	return st
}

// MinAcked returns the lowest generation acknowledged by a currently
// connected follower, and whether any follower is connected. The
// conformance suite uses it to wait for convergence.
func (p *Publisher) MinAcked() (uint64, bool) {
	st := p.Stats()
	return st.MinAckedGen, st.Followers > 0
}
