package replica

import (
	"bufio"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"costest/internal/core"
	"costest/internal/fault"
)

// Fault-injection sites on the replication link live in the central
// registry (internal/fault/sites.go, enforced by the costlint faultsite
// analyzer): fault.SiteReplicaSend, fault.SiteReplicaSendCorrupt,
// fault.SiteReplicaRecv, fault.SiteReplicaHeartbeatSend and
// fault.SiteReplicaHeartbeatRecv. The corrupt site is interpreted by the
// sender as "flip bytes in a private copy of the frame before writing" —
// the follower must reject it by checksum.

// DefaultEpoch is the epoch a zero PublisherConfig publishes under — the
// boot primary's epoch. A promoting Member always seeds its epoch strictly
// above it (see promoteEpoch), so a member that never heard from any primary
// cannot collide with a default-configured boot primary.
const DefaultEpoch = 1

// connQueueDepth bounds the per-follower outbound frame queue. A follower
// that falls further behind than this stops receiving deltas and is healed
// with a snapshot at the next publication instead (slow followers must not
// block or bloat the primary).
const connQueueDepth = 32

// PublisherConfig tunes the primary side of replication. The zero value is
// usable: epoch 1, no auth token, 2s heartbeats.
type PublisherConfig struct {
	// Epoch is the primary epoch stamped into every frame — the cluster's
	// fencing token. Exactly one publisher may stream under a given epoch;
	// a promoted Member publishes under its predecessor's epoch + 1.
	// Defaults to 1.
	Epoch uint64
	// Token is the pre-shared replication auth token. When non-empty, every
	// follower hello must carry it (constant-time compare of fixed-length
	// digests) or the connection is rejected before any payload is parsed.
	// Empty disables the check entirely: a tokenless primary accepts
	// followers whether or not they present a token.
	Token string
	// Heartbeat is the interval between liveness frames on every follower
	// connection (default 2s).
	Heartbeat time.Duration
	// PeerTimeout bounds silence from a follower: each read arms a deadline
	// of this length, and follower heartbeats keep it fed. A wedged peer is
	// disconnected instead of blocking forever. Default 4 × Heartbeat.
	PeerTimeout time.Duration
	// WriteTimeout bounds every frame write (default PeerTimeout).
	WriteTimeout time.Duration
	// EvictAfter is how many consecutive publications may find a follower's
	// send queue full before the follower is evicted (disconnected; it
	// reconnects and heals by snapshot). Default 3.
	EvictAfter int
	// Logf receives lifecycle events; nil discards them.
	Logf func(format string, args ...any)
}

func (cfg *PublisherConfig) fill() {
	if cfg.Epoch == 0 {
		cfg.Epoch = DefaultEpoch
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 4 * cfg.Heartbeat
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = cfg.PeerTimeout
	}
	if cfg.EvictAfter <= 0 {
		cfg.EvictAfter = 3
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
}

// Publisher is the primary side of replication: it taps every Server
// publication (register OnPublish via core.Server.SetPublishHook), keeps a
// private mirror of the published weights, and streams delta frames to every
// connected follower. The mirror makes catch-up independent of training:
// snapshot frames for new or lagging followers are encoded from the mirror
// under the publisher's own lock, at any time, without touching the live
// (possibly mid-step) training model.
//
// The publisher owns the replication generation counter: every publication
// advances it by one, whatever the local Server version says. (A promoted
// Member's server has its own version history; the replication generation is
// the cluster-wide one.) GenOf maps local versions back to generations.
type Publisher struct {
	cfg PublisherConfig

	mu     sync.Mutex
	mirror *core.Model // publisher-owned copy of the last published weights
	stamps []uint64    // per-param source stamps at last mirror sync
	src    *core.Model // source model of the last publication
	gen    uint64      // replication generation of the mirror
	schema uint64
	conns  map[*pubConn]struct{}
	closed bool
	ln     net.Listener
	logf   func(format string, args ...any)
	wg     sync.WaitGroup

	dirty  []int // scratch: indices dirtied by the current publication
	allIdx []int // 0..nparams-1, for snapshot encoding

	genA   atomic.Uint64 // lock-free view of gen (heartbeats, stats)
	fenced atomic.Bool   // deposed: a follower proved a higher epoch exists
	seenEp atomic.Uint64 // highest foreign epoch reported by a FrameFenced

	verMu   sync.Mutex
	verGen  map[uint64]uint64 // local Server version -> replication generation
	verRing [genMapCap]uint64
	verHead int

	publications      atomic.Uint64
	deltaFrames       atomic.Uint64
	snapshotFrames    atomic.Uint64
	deltaBytes        atomic.Uint64
	snapshotBytes     atomic.Uint64
	lastDeltaBytes    atomic.Uint64
	lastSnapshotBytes atomic.Uint64
	droppedFrames     atomic.Uint64
	corruptInjected   atomic.Uint64
	rejectedConns     atomic.Uint64
	authRejects       atomic.Uint64
	heartbeatsSent    atomic.Uint64
	evictions         atomic.Uint64
	fencedDrops       atomic.Uint64 // publications ignored because fenced
}

// pubConn is one follower connection. needsSnapshot, ready and stalls are
// guarded by Publisher.mu; the counters are read by Stats without the lock.
type pubConn struct {
	nc            net.Conn
	out           chan []byte // immutable encoded frames, shared across conns
	done          chan struct{}
	closeOnce     sync.Once
	ready         bool // handshake complete, eligible for broadcast
	needsSnapshot bool // next publication must send a full snapshot
	stalls        int  // consecutive publications that found the queue full
	acked         atomic.Uint64
	framesSent    atomic.Uint64
	framesDropped atomic.Uint64
	hbOut         []byte // writeLoop-only heartbeat scratch
}

func (c *pubConn) trySend(b []byte) bool {
	select {
	case c.out <- b:
		return true
	default:
		return false
	}
}

// NewPublisher builds a publisher mirroring m at replication generation gen
// (the owning Server's current version on a fresh primary, or the sealed
// generation on a promoted Member). The caller must have m quiesced —
// construct the publisher after the initial publish, before training starts
// — and then register pub.OnPublish with core.Server.SetPublishHook.
func NewPublisher(m *core.Model, gen uint64, cfg PublisherConfig) *Publisher {
	cfg.fill()
	params := m.PS.Params()
	p := &Publisher{
		cfg:    cfg,
		mirror: core.New(m.Cfg, m.Enc),
		stamps: make([]uint64, len(params)),
		src:    m,
		gen:    gen,
		schema: SchemaHash(m),
		conns:  make(map[*pubConn]struct{}),
		logf:   cfg.Logf,
		allIdx: make([]int, len(params)),
		verGen: make(map[uint64]uint64, genMapCap),
	}
	p.genA.Store(gen)
	mir := p.mirror.PS.Params()
	for i, sp := range params {
		copy(mir[i].Value, sp.Value)
		p.stamps[i] = sp.Stamp()
		p.allIdx[i] = i
	}
	p.mirror.CostNorm, p.mirror.CardNorm = m.CostNorm, m.CardNorm
	return p
}

// Epoch returns the epoch this publisher streams under.
func (p *Publisher) Epoch() uint64 { return p.cfg.Epoch }

// Generation returns the current replication generation.
func (p *Publisher) Generation() uint64 { return p.genA.Load() }

// Fenced reports whether the publisher has been deposed by a higher epoch.
func (p *Publisher) Fenced() bool { return p.fenced.Load() }

// FencedBy returns the strictly higher epoch that deposed this publisher,
// 0 while unfenced.
func (p *Publisher) FencedBy() uint64 { return p.seenEp.Load() }

// OnPublish is the publish hook: called under the Server's publication lock
// with training quiesced, it advances the replication generation, syncs the
// dirty parameters into the mirror, encodes one immutable delta frame, and
// broadcasts it. Followers flagged for catch-up get a snapshot frame
// instead; a follower whose queue is full is skipped and flagged (healed by
// snapshot at a later publication), and after EvictAfter consecutive stalls
// it is evicted outright. A fenced publisher ignores publications entirely.
func (p *Publisher) OnPublish(m *core.Model, version uint64) {
	if p.fenced.Load() {
		p.fencedDrops.Add(1)
		return
	}
	var evict []*pubConn
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	if m != p.src {
		// A different source model (e.g. a checkpoint swap): every recorded
		// stamp is meaningless, resync the whole mirror.
		p.src = m
		for i := range p.stamps {
			p.stamps[i] = 0
		}
	}
	p.dirty = p.dirty[:0]
	srcParams := m.PS.Params()
	mirParams := p.mirror.PS.Params()
	for i, sp := range srcParams {
		if st := sp.Stamp(); st > p.stamps[i] {
			p.stamps[i] = st
			copy(mirParams[i].Value, sp.Value)
			p.dirty = append(p.dirty, i)
		}
	}
	p.mirror.CostNorm, p.mirror.CardNorm = m.CostNorm, m.CardNorm
	prev := p.gen
	p.gen++
	gen := p.gen
	p.genA.Store(gen)
	p.recordGen(version, gen)
	p.publications.Add(1)

	frame := AppendFrame(nil, FrameDelta, p.cfg.Epoch, gen, prev, AppendModelPayload(nil, p.mirror, p.dirty))
	p.lastDeltaBytes.Store(uint64(len(frame)))
	var snap []byte
	for c := range p.conns {
		if !c.ready {
			continue
		}
		if c.needsSnapshot {
			if snap == nil {
				snap = p.encodeSnapshotLocked()
			}
			if c.trySend(snap) {
				c.needsSnapshot = false
				c.stalls = 0
				p.snapshotFrames.Add(1)
				p.snapshotBytes.Add(uint64(len(snap)))
			} else if c.stalled(p.cfg.EvictAfter) {
				evict = append(evict, c)
			} else {
				p.droppedFrames.Add(1)
			}
		} else if c.trySend(frame) {
			c.stalls = 0
			p.deltaFrames.Add(1)
			p.deltaBytes.Add(uint64(len(frame)))
		} else {
			c.needsSnapshot = true
			if c.stalled(p.cfg.EvictAfter) {
				evict = append(evict, c)
			} else {
				p.droppedFrames.Add(1)
			}
		}
	}
	p.mu.Unlock()
	for _, c := range evict {
		p.evictions.Add(1)
		p.logf("replica: evicting slow follower %s (%d consecutive stalled publications)", c.nc.RemoteAddr(), p.cfg.EvictAfter)
		p.drop(c)
	}
}

// stalled records one more publish-time queue stall and reports whether the
// eviction budget is exhausted. Caller holds p.mu.
func (c *pubConn) stalled(evictAfter int) bool {
	c.stalls++
	c.framesDropped.Add(1)
	return c.stalls >= evictAfter
}

// recordGen remembers which local Server version a replication generation
// was published at, capped to the last genMapCap publications.
func (p *Publisher) recordGen(version, gen uint64) {
	p.verMu.Lock()
	if len(p.verGen) >= genMapCap {
		delete(p.verGen, p.verRing[p.verHead])
	}
	p.verRing[p.verHead] = version
	p.verHead = (p.verHead + 1) % genMapCap
	p.verGen[version] = gen
	p.verMu.Unlock()
}

// GenOf reports the replication generation published at the given local
// Server version — the bridge that anchors a primary's estimates to the
// cluster-wide (epoch, generation) coordinates.
func (p *Publisher) GenOf(version uint64) (uint64, bool) {
	p.verMu.Lock()
	g, ok := p.verGen[version]
	p.verMu.Unlock()
	return g, ok
}

// encodeSnapshotLocked encodes a full-snapshot frame of the mirror at the
// current generation. Caller holds p.mu.
func (p *Publisher) encodeSnapshotLocked() []byte {
	b := AppendFrame(nil, FrameSnapshot, p.cfg.Epoch, p.gen, p.gen, AppendModelPayload(nil, p.mirror, p.allIdx))
	p.lastSnapshotBytes.Store(uint64(len(b)))
	return b
}

// Serve accepts follower connections on ln until the listener is closed
// (Close does). Run it on its own goroutine.
func (p *Publisher) Serve(ln net.Listener) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		c := &pubConn{nc: nc, out: make(chan []byte, connQueueDepth), done: make(chan struct{})}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			nc.Close()
			return
		}
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.handleConn(c)
	}
}

// handleConn validates the hello handshake — auth token first, in constant
// time, before any payload field is parsed — starts the writer, and then
// consumes control frames until the connection dies. Every read arms a
// PeerTimeout deadline; the follower's heartbeats keep it fed.
func (p *Publisher) handleConn(c *pubConn) {
	defer p.wg.Done()
	defer p.drop(c)
	if p.fenced.Load() {
		p.rejectedConns.Add(1)
		return
	}
	fr := NewFrameReader(bufio.NewReaderSize(c.nc, 32<<10))
	c.nc.SetReadDeadline(time.Now().Add(p.cfg.PeerTimeout))
	f, err := fr.Read()
	if err != nil || f.Type != FrameHello || len(f.Payload) < 8 {
		p.rejectedConns.Add(1)
		p.logf("replica: rejected connection from %s: bad hello (%v)", c.nc.RemoteAddr(), err)
		return
	}
	if p.cfg.Token != "" {
		// Compare fixed-length digests: constant time for any presented
		// token (ConstantTimeCompare short-circuits on length mismatch,
		// which would leak the configured token's length).
		want := sha256.Sum256([]byte(p.cfg.Token))
		got := sha256.Sum256(f.Payload[8:])
		if subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
			p.rejectedConns.Add(1)
			p.authRejects.Add(1)
			p.logf("replica: rejected connection from %s: bad auth token", c.nc.RemoteAddr())
			return
		}
	}
	if got := binary.LittleEndian.Uint64(f.Payload); got != p.schema {
		p.rejectedConns.Add(1)
		p.logf("replica: rejected follower %s: schema %#x, primary has %#x", c.nc.RemoteAddr(), got, p.schema)
		return
	}
	if f.Epoch > p.cfg.Epoch {
		// The follower claims a higher epoch exists. Its first stale-epoch
		// frame from us will draw an authenticated FrameFenced reply, which
		// is what actually fences us — a hello alone doesn't depose a
		// primary, but it is worth logging.
		p.logf("replica: follower %s reports epoch %d above ours (%d)", c.nc.RemoteAddr(), f.Epoch, p.cfg.Epoch)
	}

	p.mu.Lock()
	if _, live := p.conns[c]; !live {
		p.mu.Unlock()
		return
	}
	gen := p.gen
	c.ready = true
	if f.Gen == p.gen && f.Gen != 0 && f.Epoch == p.cfg.Epoch {
		// Reconnecting follower already at our generation and epoch:
		// nothing to send.
		c.acked.Store(f.Gen)
	} else {
		snap := p.encodeSnapshotLocked()
		if c.trySend(snap) {
			p.snapshotFrames.Add(1)
			p.snapshotBytes.Add(uint64(len(snap)))
		} else {
			c.needsSnapshot = true
		}
	}
	p.mu.Unlock()
	p.logf("replica: follower %s connected at generation %d (primary at %d, epoch %d)", c.nc.RemoteAddr(), f.Gen, gen, p.cfg.Epoch)

	p.wg.Add(1)
	go p.writeLoop(c)
	for {
		c.nc.SetReadDeadline(time.Now().Add(p.cfg.PeerTimeout))
		f, err := fr.Read()
		if err == ErrChecksum {
			continue // control frame corrupted in transit; follower will resend
		}
		if err != nil {
			return
		}
		switch f.Type {
		case FrameAck:
			c.acked.Store(f.Gen)
		case FrameHeartbeat:
			// Liveness only: receiving it already re-armed the deadline.
		case FrameFenced:
			// An authenticated follower proved a higher epoch exists: we
			// are deposed. Fence ourselves — stop broadcasting, sever every
			// follower so they move to the new primary. Only a strictly
			// higher epoch is evidence of a successor: an equal, lower or
			// zero claim must not silence a healthy primary.
			if f.Epoch > p.cfg.Epoch {
				p.fence(f.Epoch)
				return
			}
			p.logf("replica: ignoring fence claim at epoch %d from %s (ours is %d)",
				f.Epoch, c.nc.RemoteAddr(), p.cfg.Epoch)
		case FrameResync:
			p.mu.Lock()
			if _, live := p.conns[c]; live {
				snap := p.encodeSnapshotLocked()
				if c.trySend(snap) {
					c.needsSnapshot = false
					p.snapshotFrames.Add(1)
					p.snapshotBytes.Add(uint64(len(snap)))
				} else {
					c.needsSnapshot = true
				}
			}
			p.mu.Unlock()
		}
	}
}

// fence marks the publisher deposed by a higher epoch. Publications become
// no-ops and every follower is severed so it can find the new primary.
func (p *Publisher) fence(higher uint64) {
	if p.fenced.Swap(true) {
		return
	}
	p.seenEp.Store(higher)
	p.logf("replica: FENCED — epoch %d deposed by epoch %d, ceasing publication", p.cfg.Epoch, higher)
	p.DisconnectAll()
}

// writeLoop drains the connection's frame queue onto the socket, applying
// the fault-injection sites, and interleaves heartbeat frames so the
// follower's lease and read deadline stay fed between publications.
func (p *Publisher) writeLoop(c *pubConn) {
	defer p.wg.Done()
	hb := time.NewTicker(p.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case b := <-c.out:
			if err := p.writeFrame(c, b); err != nil {
				p.drop(c)
				return
			}
			c.framesSent.Add(1)
		case <-hb.C:
			if fault.Point(fault.SiteReplicaHeartbeatSend) != nil {
				continue // injected heartbeat suppression: peer sees silence
			}
			c.hbOut = AppendFrame(c.hbOut[:0], FrameHeartbeat, p.cfg.Epoch, p.genA.Load(), 0, nil)
			if err := p.writeFrame(c, c.hbOut); err != nil {
				p.drop(c)
				return
			}
			c.framesSent.Add(1)
			p.heartbeatsSent.Add(1)
		case <-c.done:
			return
		}
	}
}

func (p *Publisher) writeFrame(c *pubConn, b []byte) error {
	if err := fault.Point(fault.SiteReplicaSend); err != nil {
		return err
	}
	if fault.Point(fault.SiteReplicaSendCorrupt) != nil {
		// Transmit a corrupted copy: the shared frame bytes stay pristine
		// (other followers send the same slice), the wire sees flipped bits
		// mid-frame. Framing fields are intact, so the follower consumes the
		// frame whole and must reject it by checksum.
		cb := append([]byte(nil), b...)
		cb[len(cb)/2] ^= 0x5A
		b = cb
		p.corruptInjected.Add(1)
	}
	c.nc.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	_, err := c.nc.Write(b)
	return err
}

// drop unregisters and closes a connection; idempotent, callable from any
// goroutine.
func (p *Publisher) drop(c *pubConn) {
	p.mu.Lock()
	_, live := p.conns[c]
	delete(p.conns, c)
	p.mu.Unlock()
	c.closeOnce.Do(func() { close(c.done) })
	c.nc.Close()
	if live {
		p.logf("replica: follower %s disconnected", c.nc.RemoteAddr())
	}
}

// DisconnectAll severs every follower connection (they will reconnect and
// catch up) — a fencing, test and drain hook.
func (p *Publisher) DisconnectAll() {
	p.mu.Lock()
	conns := make([]*pubConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		p.drop(c)
	}
}

// Close stops accepting, severs every follower, and waits for connection
// goroutines to exit. The publisher stays registered as a publish hook but
// ignores further publications.
func (p *Publisher) Close() {
	p.mu.Lock()
	p.closed = true
	ln := p.ln
	conns := make([]*pubConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		p.drop(c)
	}
	p.wg.Wait()
}

// PubConnStats is the per-follower-connection view inside PublisherStats.
type PubConnStats struct {
	Remote        string `json:"remote"`
	AckedGen      uint64 `json:"acked_generation"`
	FramesSent    uint64 `json:"frames_sent"`
	FramesDropped uint64 `json:"frames_dropped"`
}

// PublisherStats is the /statsz view of a publisher.
type PublisherStats struct {
	Epoch             uint64         `json:"epoch"`
	Fenced            bool           `json:"fenced"`
	FencedBy          uint64         `json:"fenced_by_epoch,omitempty"`
	Generation        uint64         `json:"generation"`
	Followers         int            `json:"followers"`
	MinAckedGen       uint64         `json:"min_acked_generation"`
	Publications      uint64         `json:"publications"`
	DeltaFrames       uint64         `json:"delta_frames"`
	SnapshotFrames    uint64         `json:"snapshot_frames"`
	DeltaBytes        uint64         `json:"delta_bytes"`
	SnapshotBytes     uint64         `json:"snapshot_bytes"`
	LastDeltaBytes    uint64         `json:"last_delta_bytes"`
	LastSnapshotBytes uint64         `json:"last_snapshot_bytes"`
	DroppedFrames     uint64         `json:"dropped_frames"`
	CorruptInjected   uint64         `json:"corrupt_frames_injected"`
	RejectedConns     uint64         `json:"rejected_conns"`
	AuthRejects       uint64         `json:"auth_rejects"`
	HeartbeatsSent    uint64         `json:"heartbeats_sent"`
	Evictions         uint64         `json:"slow_follower_evictions"`
	FencedDrops       uint64         `json:"fenced_publications_dropped"`
	Conns             []PubConnStats `json:"conns,omitempty"`
}

// Stats snapshots the publisher's counters.
func (p *Publisher) Stats() PublisherStats {
	st := PublisherStats{
		Epoch:             p.cfg.Epoch,
		Fenced:            p.fenced.Load(),
		FencedBy:          p.seenEp.Load(),
		Publications:      p.publications.Load(),
		DeltaFrames:       p.deltaFrames.Load(),
		SnapshotFrames:    p.snapshotFrames.Load(),
		DeltaBytes:        p.deltaBytes.Load(),
		SnapshotBytes:     p.snapshotBytes.Load(),
		LastDeltaBytes:    p.lastDeltaBytes.Load(),
		LastSnapshotBytes: p.lastSnapshotBytes.Load(),
		DroppedFrames:     p.droppedFrames.Load(),
		CorruptInjected:   p.corruptInjected.Load(),
		RejectedConns:     p.rejectedConns.Load(),
		AuthRejects:       p.authRejects.Load(),
		HeartbeatsSent:    p.heartbeatsSent.Load(),
		Evictions:         p.evictions.Load(),
		FencedDrops:       p.fencedDrops.Load(),
	}
	p.mu.Lock()
	st.Generation = p.gen
	for c := range p.conns {
		if !c.ready {
			continue
		}
		st.Followers++
		a := c.acked.Load()
		if st.MinAckedGen == 0 || a < st.MinAckedGen {
			st.MinAckedGen = a
		}
		st.Conns = append(st.Conns, PubConnStats{
			Remote:        c.nc.RemoteAddr().String(),
			AckedGen:      a,
			FramesSent:    c.framesSent.Load(),
			FramesDropped: c.framesDropped.Load(),
		})
	}
	p.mu.Unlock()
	return st
}

// MinAcked returns the lowest generation acknowledged by a currently
// connected follower, and whether any follower is connected. The
// conformance suite uses it to wait for convergence.
func (p *Publisher) MinAcked() (uint64, bool) {
	st := p.Stats()
	return st.MinAckedGen, st.Followers > 0
}
