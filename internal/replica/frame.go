// Package replica is the scale-out replication runtime: one trainer's delta
// publications streamed over TCP to N replica Server processes, so a single
// training loop can feed an arbitrary number of serving frontends with
// bit-identical models.
//
// The substrate is PR 5's delta publication: per-parameter dirty stamps
// (nn.ParamSet) already record exactly which parameters each publication
// touched, which makes them a replication log. The primary-side Publisher
// taps Server publications (core.Server.SetPublishHook), serializes only the
// dirty parameters into a delta frame, and streams frames to every connected
// follower; the replica-side Follower applies frames into a local mirror
// model and republishes them through its own Server.PublishDelta, so the
// replica's hot-swap serving runtime is byte-for-byte the primary's.
//
// The wire format is deliberately exact: parameter values travel as raw
// IEEE-754 bit patterns (math.Float64bits), never through a decimal
// round-trip, so an estimate served by any replica at generation G is
// bit-identical to the primary's at G — the conformance suite enforces this
// under concurrent load, follower restarts, reconnect catch-up and injected
// frame corruption.
//
// Frame layout (little-endian):
//
//	magic "CRPL" (4) | version (1) | type (1) | epoch (8) | gen (8) | prev (8) | payloadLen (4)
//	payload (payloadLen)
//	crc32c over header+payload (4)
//
// Every frame carries a CRC-32C checksum; a frame whose checksum fails is
// discarded whole (framing stays intact, the stream keeps its sync) and the
// follower requests a snapshot resync instead of ever applying suspect
// bytes. Delta frames chain generations: a follower only applies a delta
// whose prev matches its own generation; any gap — dropped frames for a slow
// follower, a rejected corrupt frame, a fresh connection — is healed by a
// full-snapshot catch-up frame.
//
// Every frame also carries the primary epoch — the cluster's fencing token.
// Exactly one publisher may ever stream under a given epoch; a promotion
// (see Member) seals the successor's last applied generation and begins
// publishing under epoch+1. A follower that has seen epoch E rejects every
// frame from an epoch < E without applying a byte: a deposed primary coming
// back from a partition or a stall cannot diverge the cluster, it is fenced
// by its own stale epoch and told so with a FrameFenced reply.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"

	"costest/internal/core"
	"costest/internal/nn"
)

// FrameType discriminates the replication frames.
type FrameType uint8

const (
	// FrameHello is the follower's handshake: gen carries its current
	// generation (0 when it has none), epoch the highest primary epoch it
	// has seen, and the payload its 8-byte schema hash followed by the
	// pre-shared auth token. The publisher verifies the token in constant
	// time before parsing anything else, refuses mismatched schemas, and
	// snapshots lagging followers.
	FrameHello FrameType = 1 + iota
	// FrameSnapshot carries every parameter at generation gen — the
	// bootstrap and catch-up frame.
	FrameSnapshot
	// FrameDelta carries only the parameters dirtied between generations
	// prev and gen; appliable only on a follower currently at prev.
	FrameDelta
	// FrameAck is the follower's acknowledgment that generation gen is
	// applied and locally published (served).
	FrameAck
	// FrameResync is the follower's catch-up request after a gap or a
	// rejected corrupt frame; gen carries the generation it is stuck at.
	FrameResync
	// FrameHeartbeat is the periodic liveness frame, sent in both
	// directions: the publisher's heartbeat renews the follower's primary
	// lease (gen carries the head generation so lag tracking stays fresh
	// between publications), the follower's keeps the publisher's read
	// deadline fed so a wedged peer is detected instead of blocking.
	FrameHeartbeat
	// FrameFenced is the follower's rejection of a stale-epoch frame: epoch
	// carries the higher epoch the follower has already seen. A publisher
	// receiving it knows it has been deposed and fences itself (stops
	// broadcasting, drops its followers).
	FrameFenced
)

// String returns the frame type's wire name.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameSnapshot:
		return "snapshot"
	case FrameDelta:
		return "delta"
	case FrameAck:
		return "ack"
	case FrameResync:
		return "resync"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameFenced:
		return "fenced"
	}
	return fmt.Sprintf("frametype(%d)", uint8(t))
}

const (
	frameMagic   = "CRPL"
	frameVersion = 2 // v2 added the epoch field (v1 streams are refused)
	headerSize   = 4 + 1 + 1 + 8 + 8 + 8 + 4
	trailerSize  = 4 // crc32c

	// MaxPayload bounds a frame's payload. Snapshots of the largest model
	// configuration are a few MB; 64 MiB leaves headroom while keeping a
	// corrupted-but-valid-looking length field from driving an allocation
	// attack.
	MaxPayload = 64 << 20
)

// ErrChecksum reports a frame whose CRC failed. The frame was fully
// consumed, so the stream is still in sync: the connection survives, the
// frame must not be applied, and the receiver should request a resync.
var ErrChecksum = errors.New("replica: frame checksum mismatch")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded replication frame. Payload aliases the reader's
// internal buffer and is valid only until the next Read.
type Frame struct {
	Type  FrameType
	Epoch uint64
	Gen   uint64
	Prev  uint64
	// Payload is the frame body (parameter records for snapshot/delta, the
	// schema hash + auth token for hello, empty for the control frames).
	Payload []byte
}

// AppendFrame appends one encoded frame to dst and returns the extended
// slice. The payload is copied; the checksum covers header and payload.
func AppendFrame(dst []byte, typ FrameType, epoch, gen, prev uint64, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, frameMagic...)
	dst = append(dst, frameVersion, byte(typ))
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	dst = binary.LittleEndian.AppendUint64(dst, gen)
	dst = binary.LittleEndian.AppendUint64(dst, prev)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	sum := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// FrameReader decodes frames from a byte stream into a reused buffer.
type FrameReader struct {
	r   io.Reader
	buf []byte
}

// NewFrameReader wraps r. The reader owns an internal buffer that grows to
// the largest frame seen and is aliased by every returned Frame's payload.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, buf: make([]byte, 0, 4096)}
}

// Read decodes the next frame. ErrChecksum reports a fully-consumed frame
// whose CRC failed (the stream is still usable); any other error — bad
// magic, unsupported version, oversized payload, short read — means framing
// is lost and the connection must be dropped.
func (fr *FrameReader) Read() (Frame, error) {
	if cap(fr.buf) < headerSize {
		fr.buf = make([]byte, 0, 4096)
	}
	hdr := fr.buf[:headerSize]
	if _, err := io.ReadFull(fr.r, hdr); err != nil {
		return Frame{}, err
	}
	if string(hdr[:4]) != frameMagic {
		return Frame{}, fmt.Errorf("replica: bad frame magic %q", hdr[:4])
	}
	if hdr[4] != frameVersion {
		return Frame{}, fmt.Errorf("replica: unsupported frame version %d", hdr[4])
	}
	typ := FrameType(hdr[5])
	if typ < FrameHello || typ > FrameFenced {
		return Frame{}, fmt.Errorf("replica: unknown frame type %d", hdr[5])
	}
	f := Frame{
		Type:  typ,
		Epoch: binary.LittleEndian.Uint64(hdr[6:]),
		Gen:   binary.LittleEndian.Uint64(hdr[14:]),
		Prev:  binary.LittleEndian.Uint64(hdr[22:]),
	}
	plen := binary.LittleEndian.Uint32(hdr[30:])
	if plen > MaxPayload {
		return Frame{}, fmt.Errorf("replica: frame payload %d exceeds limit %d", plen, MaxPayload)
	}
	total := headerSize + int(plen) + trailerSize
	if cap(fr.buf) < total {
		grown := make([]byte, total)
		copy(grown, hdr)
		fr.buf = grown[:0]
	}
	body := fr.buf[:total]
	if _, err := io.ReadFull(fr.r, body[headerSize:]); err != nil {
		return Frame{}, fmt.Errorf("replica: short frame body: %w", err)
	}
	want := binary.LittleEndian.Uint32(body[total-trailerSize:])
	if crc32.Checksum(body[:total-trailerSize], crcTable) != want {
		return Frame{}, ErrChecksum
	}
	f.Payload = body[headerSize : total-trailerSize]
	return f, nil
}

// SchemaHash fingerprints a model's parameter schema — every parameter's
// name, shape and registration order. Primary and follower exchange it in
// the handshake: replication streams raw values by parameter index, so a
// schema mismatch (different configuration, different encoder dimensions)
// must be refused at connect time instead of silently mis-applying weights.
func SchemaHash(m *core.Model) uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	for _, p := range m.PS.Params() {
		io.WriteString(h, p.Name)
		binary.LittleEndian.PutUint32(scratch[:4], uint32(p.Rows))
		binary.LittleEndian.PutUint32(scratch[4:], uint32(p.Cols))
		h.Write(scratch[:])
	}
	return h.Sum64()
}

// Model payload layout (the body of snapshot and delta frames):
//
//	costNorm.MinLog costNorm.MaxLog cardNorm.MinLog cardNorm.MaxLog  (4 × 8)
//	paramCount (4)
//	paramCount × [ index (4) | valueLen (4) | valueLen × float64 bits (8) ]
//
// Values are raw IEEE-754 bit patterns; apply reconstructs them with
// math.Float64frombits, so replication is exact by construction.

const normsSize = 4 * 8

// AppendModelPayload appends the replication payload carrying m's target
// normalizers and the parameters at the given indices (all of them for a
// snapshot, the dirty subset for a delta). Caller guarantees m's weights are
// quiesced (the publish-hook contract).
//
// costlint:noalloc
func AppendModelPayload(dst []byte, m *core.Model, idx []int) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.CostNorm.MinLog))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.CostNorm.MaxLog))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.CardNorm.MinLog))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.CardNorm.MaxLog))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(idx)))
	params := m.PS.Params()
	for _, i := range idx {
		p := params[i]
		dst = binary.LittleEndian.AppendUint32(dst, uint32(i))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Value)))
		for _, v := range p.Value {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// ApplyModelPayload validates payload against m and applies it: normalizers
// always, then every parameter record into the matching parameter's values.
// Validation runs over the whole payload before a single value is written
// (validate-then-commit, like nn.ParamSet.Load), so a malformed payload —
// truncated records, out-of-range indices, wrong value lengths — is a
// descriptive error with m untouched. requireFull additionally demands that
// every parameter is covered exactly once (the snapshot contract).
//
// touched is a reusable scratch slice; the returned slice holds the
// parameters written, ready for nn.ParamSet.MarkParamsUpdated. The warm
// path performs zero heap allocations.
//
// costlint:noalloc
func ApplyModelPayload(m *core.Model, payload []byte, requireFull bool, touched []*nn.Param) ([]*nn.Param, error) {
	params := m.PS.Params()
	if len(payload) < normsSize+4 {
		return touched[:0], fmt.Errorf("replica: payload %d bytes, want at least %d", len(payload), normsSize+4)
	}
	count := int(binary.LittleEndian.Uint32(payload[normsSize:]))
	if requireFull && count != len(params) {
		return touched[:0], fmt.Errorf("replica: snapshot covers %d parameters, model has %d", count, len(params))
	}

	// Pass 1: walk and validate every record. Indices must be in range with
	// matching value lengths, records must lie fully inside the payload, and
	// no index may repeat (a duplicate means a confused encoder; applying
	// both would be order-dependent).
	off := normsSize + 4
	seen := uint64(0) // bitmask over param indices; models have < 64 params
	useMask := len(params) <= 64
	prevIdx := -1
	for rec := 0; rec < count; rec++ {
		if len(payload)-off < 8 {
			return touched[:0], fmt.Errorf("replica: record %d/%d truncated at byte %d", rec, count, off)
		}
		idx := int(binary.LittleEndian.Uint32(payload[off:]))
		n := int(binary.LittleEndian.Uint32(payload[off+4:]))
		off += 8
		if idx >= len(params) {
			return touched[:0], fmt.Errorf("replica: record %d: parameter index %d out of range (%d params)", rec, idx, len(params))
		}
		if n != len(params[idx].Value) {
			return touched[:0], fmt.Errorf("replica: record %d: parameter %q has %d values, frame carries %d",
				rec, params[idx].Name, len(params[idx].Value), n)
		}
		if useMask {
			if seen&(1<<uint(idx)) != 0 {
				return touched[:0], fmt.Errorf("replica: duplicate record for parameter %q", params[idx].Name)
			}
			seen |= 1 << uint(idx)
		} else if idx <= prevIdx {
			// Fallback duplicate guard for very wide models: encoders emit
			// ascending indices, so any non-increase is a protocol error.
			return touched[:0], fmt.Errorf("replica: parameter records out of order at index %d", idx)
		}
		prevIdx = idx
		if len(payload)-off < n*8 {
			return touched[:0], fmt.Errorf("replica: record %d: values truncated at byte %d", rec, off)
		}
		off += n * 8
	}
	if off != len(payload) {
		return touched[:0], fmt.Errorf("replica: %d trailing bytes after %d records", len(payload)-off, count)
	}

	// Pass 2: commit.
	m.CostNorm.MinLog = math.Float64frombits(binary.LittleEndian.Uint64(payload[0:]))
	m.CostNorm.MaxLog = math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
	m.CardNorm.MinLog = math.Float64frombits(binary.LittleEndian.Uint64(payload[16:]))
	m.CardNorm.MaxLog = math.Float64frombits(binary.LittleEndian.Uint64(payload[24:]))
	touched = touched[:0]
	off = normsSize + 4
	for rec := 0; rec < count; rec++ {
		idx := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 8
		p := params[idx]
		for i := range p.Value {
			p.Value[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
		touched = append(touched, p)
	}
	return touched, nil
}
