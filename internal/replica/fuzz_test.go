package replica

import (
	"bytes"
	"testing"

	"costest/internal/core"
)

// FuzzFrameReader hammers the replication frame decoder with arbitrary
// bytes: it must return errors, never panic, never hand back a frame whose
// checksum did not verify, and keep its payload-length bound.
func FuzzFrameReader(f *testing.F) {
	m := core.New(core.TestConfig(), testEnc)
	valid := AppendFrame(nil, FrameDelta, 1, 7, 6, AppendModelPayload(nil, m, []int{0, 2}))
	f.Add(valid)
	f.Add(AppendFrame(nil, FrameAck, 1, 3, 0, nil))
	f.Add(AppendFrame(AppendFrame(nil, FrameHello, 0, 0, 0, make([]byte, 8)), FrameResync, 2, 5, 0, nil))
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("CRPL"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[headerSize+2] ^= 0x40
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for i := 0; i < 16; i++ {
			fm, err := fr.Read()
			if err == ErrChecksum {
				continue // stream stays usable after a checksum reject
			}
			if err != nil {
				return
			}
			if fm.Type < FrameHello || fm.Type > FrameFenced {
				t.Fatalf("decoded impossible frame type %d", fm.Type)
			}
			if len(fm.Payload) > MaxPayload {
				t.Fatalf("decoded payload of %d bytes past the limit", len(fm.Payload))
			}
		}
	})
}

// FuzzApplyModelPayload hammers the payload validator with arbitrary bytes
// against a real model: it must error or apply cleanly, never panic, and
// never leave the model partially written on error (spot-checked by the
// dedicated unit test; here we only chase panics and hangs).
func FuzzApplyModelPayload(f *testing.F) {
	m := core.New(core.TestConfig(), testEnc)
	allIdx := make([]int, len(m.PS.Params()))
	for i := range allIdx {
		allIdx[i] = i
	}
	f.Add(AppendModelPayload(nil, m, allIdx))
	f.Add(AppendModelPayload(nil, m, []int{0}))
	f.Add(AppendModelPayload(nil, m, nil))
	f.Add([]byte{})
	f.Add(make([]byte, normsSize+4))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ApplyModelPayload(m, data, false, nil)
		_, _ = ApplyModelPayload(m, data, true, nil)
	})
}
