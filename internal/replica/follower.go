package replica

import (
	"bufio"
	"context"
	"encoding/binary"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"costest/internal/core"
	"costest/internal/fault"
	"costest/internal/nn"
)

// genMapCap bounds the follower's local-version → generation map: enough to
// cover every snapshot a serving request could still be holding, tiny enough
// to never matter.
const genMapCap = 1024

// FollowerConfig configures a replica-side Follower.
type FollowerConfig struct {
	// Addr is the primary's replication listener ("host:port") — sugar for
	// a single-entry Peers list.
	Addr string
	// Peers is the ordered list of replication listeners the follower dials
	// through: the primary first, then promotion-ranked successors. On any
	// connection loss or fencing the follower advances to the next peer
	// with jittered backoff, cycling until one answers with a live epoch.
	Peers []string
	// Token is the pre-shared replication auth token sent in the hello.
	Token string
	// Server is the local serving runtime frames publish into.
	Server *core.Server
	// Model is the local mirror model the Server serves from; replication
	// frames write its parameters. Nothing else may mutate it while the
	// follower runs.
	Model *core.Model
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// RetryMin/RetryMax bound the reconnect backoff (default 100ms / 2s).
	// Each consecutive failed attempt doubles the base from RetryMin,
	// clamped to RetryMax, plus jitter of at most half the base (see
	// backoffDelay); a session that applies a frame resets the budget.
	RetryMin time.Duration
	RetryMax time.Duration
	// Heartbeat is the interval between follower→primary liveness frames
	// (default 2s). They keep the primary's read deadline fed.
	Heartbeat time.Duration
	// PeerTimeout bounds silence from the primary: each read arms a
	// deadline of this length, and primary heartbeats keep it fed. A dead
	// or wedged primary is detected within this bound instead of blocking
	// forever. Default 4 × Heartbeat.
	PeerTimeout time.Duration
	// WriteTimeout bounds every control-frame write (default PeerTimeout).
	WriteTimeout time.Duration
	// Lease is the primary liveness lease: every valid frame from a
	// current-epoch primary renews it, and when it lapses (no primary
	// reachable anywhere in Peers for this long) OnLeaseExpired fires.
	// Dial timeouts, read deadlines and reconnect sleeps are capped by the
	// remaining lease (see leaseBound), so the lapse is detected within the
	// lease bound even against a black-holed or wedged peer. Zero disables
	// lease tracking.
	Lease time.Duration
	// OnLeaseExpired is called (from the Run goroutine, between sessions)
	// when the lease lapses. Returning true stops Run — the callback has
	// promoted this replica and the follower's job is done. Nil means this
	// replica never promotes.
	OnLeaseExpired func() bool
	// Logf receives connection lifecycle events; nil discards them.
	Logf func(format string, args ...any)
}

// Follower is the replica side of replication: it dials through the peer
// list, applies snapshot and delta frames into its local model, republishes
// each applied generation through Server.PublishDelta (so local serving
// hot-swaps exactly like the primary's), and acknowledges it. Corrupt frames
// are rejected by checksum and never applied; generation gaps — missed
// frames, reconnects — trigger a full-snapshot resync; frames from a stale
// primary epoch are rejected outright and answered with FrameFenced, so a
// deposed primary can never diverge this replica. Run owns the model: no
// other writer may touch it.
type Follower struct {
	cfg    FollowerConfig
	schema uint64

	// touched is session-goroutine scratch: frame-apply is allocation-free
	// steady-state. outBuf is the control-frame scratch, guarded by writeMu
	// (the heartbeat goroutine and the session loop both send).
	touched []*nn.Param
	writeMu sync.Mutex
	outBuf  []byte

	gen        atomic.Uint64 // last applied + locally published generation
	epoch      atomic.Uint64 // highest primary epoch ever seen
	primaryGen atomic.Uint64 // highest generation heard from the primary
	connected  atomic.Bool
	lastRenew  atomic.Int64 // UnixNano of the last lease renewal

	readyOnce sync.Once
	ready     chan struct{}

	verMu   sync.Mutex
	verGen  map[uint64]epochGen // local Server version -> (epoch, generation)
	verRing [genMapCap]uint64
	verHead int

	snapshots      atomic.Uint64
	deltas         atomic.Uint64
	corrupt        atomic.Uint64
	gaps           atomic.Uint64
	reconnects     atomic.Uint64
	acks           atomic.Uint64
	fencedFrames   atomic.Uint64 // stale-epoch frames rejected
	heartbeatsIn   atomic.Uint64
	heartbeatsOut  atomic.Uint64
	lastApplyNanos atomic.Uint64
}

type epochGen struct{ epoch, gen uint64 }

// NewFollower builds a follower; call Run to start it. Server and Model
// must be non-nil and the model must be the one the server serves from.
func NewFollower(cfg FollowerConfig) *Follower {
	if cfg.Server == nil || cfg.Model == nil {
		panic("replica: FollowerConfig needs Server and Model")
	}
	if len(cfg.Peers) == 0 && cfg.Addr != "" {
		cfg.Peers = []string{cfg.Addr}
	}
	if len(cfg.Peers) == 0 {
		panic("replica: FollowerConfig needs Addr or Peers")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = 100 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryMin {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 4 * cfg.Heartbeat
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = cfg.PeerTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Follower{
		cfg:     cfg,
		schema:  SchemaHash(cfg.Model),
		touched: make([]*nn.Param, 0, len(cfg.Model.PS.Params())),
		verGen:  make(map[uint64]epochGen, genMapCap),
		ready:   make(chan struct{}),
	}
}

// backoffDelay computes the reconnect sleep for the given 0-based failed
// attempt: min doubled per attempt, clamped to max, plus jitter of at most
// half the base (jit in [0,1)), never exceeding max. Pure — the budget is
// fully pinned by a table test.
func backoffDelay(attempt int, minD, maxD time.Duration, jit float64) time.Duration {
	if minD <= 0 {
		minD = time.Millisecond
	}
	if maxD < minD {
		maxD = minD
	}
	base := minD
	for i := 0; i < attempt && base < maxD; i++ {
		base *= 2
	}
	if base > maxD {
		base = maxD
	}
	d := base + time.Duration(jit*float64(base/2))
	if d > maxD {
		d = maxD
	}
	return d
}

// Run dials through the peer list and replicates until ctx is canceled,
// advancing to the next peer with budgeted jittered backoff on any
// connection loss or fencing. Between sessions it checks the primary lease;
// on expiry OnLeaseExpired may promote this replica and end Run. It is the
// follower's only model-writing goroutine.
func (f *Follower) Run(ctx context.Context) {
	f.lastRenew.Store(time.Now().UnixNano())
	attempt := 0
	peer := 0
	for ctx.Err() == nil {
		addr := f.cfg.Peers[peer%len(f.cfg.Peers)]
		d := net.Dialer{Timeout: f.leaseBound(f.cfg.DialTimeout)}
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			delay := backoffDelay(attempt, f.cfg.RetryMin, f.cfg.RetryMax, rand.Float64())
			f.cfg.Logf("replica: dial %s: %v (next peer in %v)", addr, err, delay)
			if f.checkLease() {
				return
			}
			if !sleepCtx(ctx, f.leaseBound(delay)) {
				return
			}
			attempt++
			peer++
			continue
		}
		applied := f.session(ctx, nc, addr)
		f.connected.Store(false)
		if ctx.Err() != nil {
			return
		}
		f.reconnects.Add(1)
		if f.checkLease() {
			return
		}
		if applied {
			attempt = 0
		} else {
			attempt++
		}
		peer++
		if !sleepCtx(ctx, f.leaseBound(backoffDelay(attempt, f.cfg.RetryMin, f.cfg.RetryMax, rand.Float64()))) {
			return
		}
	}
}

// checkLease reports whether the primary lease has lapsed AND the expiry
// callback promoted this replica (Run must stop). Renewal bookkeeping is
// fault-gated at fault.SiteReplicaLeaseRenew, so chaos tests can starve the lease.
func (f *Follower) checkLease() bool {
	if f.cfg.Lease <= 0 || f.cfg.OnLeaseExpired == nil {
		return false
	}
	last := time.Unix(0, f.lastRenew.Load())
	if time.Since(last) < f.cfg.Lease {
		return false
	}
	f.cfg.Logf("replica: primary lease lapsed (last renewal %v ago, lease %v)", time.Since(last).Round(time.Millisecond), f.cfg.Lease)
	return f.cfg.OnLeaseExpired()
}

// renewLease stamps the primary as live now. Gated by the fault.SiteReplicaLeaseRenew
// fault site: an injected error suppresses the renewal, so the lease ages
// as if the primary had gone silent.
func (f *Follower) renewLease() {
	if fault.Point(fault.SiteReplicaLeaseRenew) != nil {
		return
	}
	f.lastRenew.Store(time.Now().UnixNano())
}

// leaseBound caps a dial timeout, read deadline or backoff sleep by the
// remaining primary lease, so a black-holed dial or wedged connection can
// never push the next lease-lapse check past the lease itself — failover
// latency tracks the configured lease, not lease + DialTimeout/PeerTimeout.
// A healthy stream is unaffected: frames keep the remaining lease pinned
// near its full length. Not lease-tracking members get d unchanged.
func (f *Follower) leaseBound(d time.Duration) time.Duration {
	if f.cfg.Lease <= 0 || f.cfg.OnLeaseExpired == nil {
		return d
	}
	rem := f.cfg.Lease - time.Since(time.Unix(0, f.lastRenew.Load()))
	// Floor keeps an already-lapsed lease from spinning the dial loop hot
	// while promotion attempts are aborted (fault injection, bind failure).
	const floor = 5 * time.Millisecond
	if rem < floor {
		rem = floor
	}
	if rem < d {
		return rem
	}
	return d
}

// ObserveEpoch raises the follower's highest-seen epoch to at least e. A
// demoting Member folds the epoch that fenced it back in before rejoining,
// so stale frames below it stay rejected and a later re-promotion seeds
// strictly above every epoch already consumed.
func (f *Follower) ObserveEpoch(e uint64) {
	for {
		cur := f.epoch.Load()
		if e <= cur || f.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// session runs one connection: hello handshake (schema + auth token), a
// heartbeat goroutine keeping the primary's read deadline fed, then apply
// frames until the stream breaks, a deadline lapses, or a stale-epoch frame
// fences the peer. It reports whether at least one frame was applied (used
// to reset the reconnect backoff budget).
func (f *Follower) session(ctx context.Context, nc net.Conn, addr string) (applied bool) {
	defer nc.Close()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	stop := context.AfterFunc(ctx, func() { nc.Close() })
	defer stop()

	hello := make([]byte, 8, 8+len(f.cfg.Token))
	binary.LittleEndian.PutUint64(hello, f.schema)
	hello = append(hello, f.cfg.Token...)
	if !f.send(nc, FrameHello, f.gen.Load(), hello) {
		f.cfg.Logf("replica: hello to %s: write failed", addr)
		return false
	}
	f.connected.Store(true)
	f.cfg.Logf("replica: connected to primary %s at generation %d (epoch %d)", addr, f.gen.Load(), f.epoch.Load())

	// Heartbeats keep the primary's read deadline fed between acks. The
	// goroutine dies with the session: closing hbStop (deferred) or the
	// socket (on write error) ends it.
	hbStop := make(chan struct{})
	var hbWg sync.WaitGroup
	hbWg.Add(1)
	go func() {
		defer hbWg.Done()
		t := time.NewTicker(f.cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				if fault.Point(fault.SiteReplicaHeartbeatSend) != nil {
					continue // injected heartbeat suppression
				}
				if !f.send(nc, FrameHeartbeat, f.gen.Load(), nil) {
					nc.Close()
					return
				}
				f.heartbeatsOut.Add(1)
			}
		}
	}()
	defer func() {
		close(hbStop)
		hbWg.Wait()
	}()

	fr := NewFrameReader(bufio.NewReaderSize(nc, 64<<10))
	for {
		if err := fault.Point(fault.SiteReplicaRecv); err != nil {
			f.cfg.Logf("replica: injected receive fault: %v", err)
			return applied
		}
		nc.SetReadDeadline(time.Now().Add(f.leaseBound(f.cfg.PeerTimeout)))
		fm, err := fr.Read()
		if err == ErrChecksum {
			// The frame was consumed whole; its bytes are untrusted and are
			// dropped without touching the model. Whatever generation it
			// carried is lost, so ask for a snapshot.
			f.corrupt.Add(1)
			f.cfg.Logf("replica: corrupt frame rejected, requesting resync at generation %d", f.gen.Load())
			if !f.send(nc, FrameResync, f.gen.Load(), nil) {
				return applied
			}
			continue
		}
		if err != nil {
			if ctx.Err() == nil {
				f.cfg.Logf("replica: stream from %s broke: %v", addr, err)
			}
			return applied
		}
		if ep := f.epoch.Load(); fm.Epoch < ep {
			// Stale-epoch frame: a deposed primary is still talking. Never
			// apply a byte of it — tell it the cluster has moved on and
			// walk away to the next peer.
			f.fencedFrames.Add(1)
			f.cfg.Logf("replica: fencing %s — %s frame from stale epoch %d (cluster is at %d)", addr, fm.Type, fm.Epoch, ep)
			f.send(nc, FrameFenced, f.gen.Load(), nil)
			return applied
		} else if fm.Epoch > ep {
			f.epoch.Store(fm.Epoch)
			f.cfg.Logf("replica: adopting primary epoch %d (was %d)", fm.Epoch, ep)
		}
		switch fm.Type {
		case FrameHeartbeat:
			if fault.Point(fault.SiteReplicaHeartbeatRecv) != nil {
				continue // injected: drop the heartbeat, lease not renewed
			}
			f.heartbeatsIn.Add(1)
			f.primaryGen.Store(fm.Gen)
			f.renewLease()
		case FrameSnapshot:
			f.primaryGen.Store(fm.Gen)
			f.renewLease()
			if !f.applyAndAck(nc, fm, true) {
				return applied
			}
			applied = true
		case FrameDelta:
			f.primaryGen.Store(fm.Gen)
			f.renewLease()
			if fm.Prev != f.gen.Load() {
				// Generation gap: this delta builds on a publication we never
				// applied (dropped for backpressure, lost to a reconnect, or
				// rejected as corrupt). Applying it would silently diverge —
				// skip it and catch up by snapshot.
				f.gaps.Add(1)
				f.cfg.Logf("replica: generation gap (have %d, delta builds on %d), requesting resync", f.gen.Load(), fm.Prev)
				if !f.send(nc, FrameResync, f.gen.Load(), nil) {
					return applied
				}
				continue
			}
			if !f.applyAndAck(nc, fm, false) {
				return applied
			}
			applied = true
		}
	}
}

// applyFrame is the warm apply core: decode the payload into the local
// model, republish it through the local Server, and record the generation.
// This is the follower half of the apply→PublishDelta round trip whose
// steady state the AllocsPerRun conformance test pins at zero; the ready
// signalling and ack I/O live in applyAndAck so this body stays
// allocation-free.
//
// costlint:noalloc
func (f *Follower) applyFrame(fm Frame, full bool) error {
	start := time.Now()
	touched, err := ApplyModelPayload(f.cfg.Model, fm.Payload, full, f.touched)
	f.touched = touched
	if err != nil {
		return err
	}
	f.cfg.Model.PS.MarkParamsUpdated(touched)
	snap := f.cfg.Server.PublishDelta(f.cfg.Model)
	f.recordGen(snap.Version(), fm.Epoch, fm.Gen)
	f.gen.Store(fm.Gen)
	f.lastApplyNanos.Store(uint64(time.Since(start)))
	if full {
		f.snapshots.Add(1)
	} else {
		f.deltas.Add(1)
	}
	return nil
}

// applyAndAck applies a validated frame into the local model, republishes it
// through the local Server, and acknowledges the generation. A payload that
// fails validation despite an intact checksum is a protocol bug — the
// session drops so the reconnect handshake renegotiates from a snapshot.
func (f *Follower) applyAndAck(nc net.Conn, fm Frame, full bool) bool {
	if err := f.applyFrame(fm, full); err != nil {
		f.cfg.Logf("replica: %s frame for generation %d failed to apply: %v", fm.Type, fm.Gen, err)
		return false
	}
	f.readyOnce.Do(func() { close(f.ready) })
	if !f.send(nc, FrameAck, fm.Gen, nil) {
		return false
	}
	f.acks.Add(1)
	return true
}

// send writes one follower frame (hello / ack / resync / heartbeat /
// fenced), stamped with the highest epoch seen. writeMu serializes the
// session loop and the heartbeat goroutine over the shared scratch buffer
// and the socket.
func (f *Follower) send(nc net.Conn, t FrameType, gen uint64, payload []byte) bool {
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	nc.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
	f.outBuf = AppendFrame(f.outBuf[:0], t, f.epoch.Load(), gen, 0, payload)
	_, err := nc.Write(f.outBuf)
	return err == nil
}

// recordGen remembers which (epoch, replication generation) a local Server
// version serves, capped to the last genMapCap publications.
func (f *Follower) recordGen(version, epoch, gen uint64) {
	f.verMu.Lock()
	if len(f.verGen) >= genMapCap {
		delete(f.verGen, f.verRing[f.verHead])
	}
	f.verRing[f.verHead] = version
	f.verHead = (f.verHead + 1) % genMapCap
	f.verGen[version] = epochGen{epoch: epoch, gen: gen}
	f.verMu.Unlock()
}

// GenOf reports the replication generation served by the given local Server
// version — the bridge the conformance suite uses to compare a follower's
// estimates against the primary's at the same generation.
func (f *Follower) GenOf(version uint64) (uint64, bool) {
	f.verMu.Lock()
	eg, ok := f.verGen[version]
	f.verMu.Unlock()
	return eg.gen, ok
}

// EpochGenOf reports the full (epoch, generation) coordinates served by the
// given local Server version.
func (f *Follower) EpochGenOf(version uint64) (epoch, gen uint64, ok bool) {
	f.verMu.Lock()
	eg, found := f.verGen[version]
	f.verMu.Unlock()
	return eg.epoch, eg.gen, found
}

// Generation returns the last applied and locally served generation.
func (f *Follower) Generation() uint64 { return f.gen.Load() }

// Epoch returns the highest primary epoch the follower has seen.
func (f *Follower) Epoch() uint64 { return f.epoch.Load() }

// WaitReady blocks until the follower has applied and published its first
// frame (it is serving primary weights), or ctx expires.
func (f *Follower) WaitReady(ctx context.Context) error {
	select {
	case <-f.ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FollowerStats is the /statsz view of a follower, lag included.
type FollowerStats struct {
	Connected          bool   `json:"connected"`
	Epoch              uint64 `json:"epoch"`
	Generation         uint64 `json:"generation"`
	PrimaryGeneration  uint64 `json:"primary_generation"`
	Lag                uint64 `json:"lag"`
	SnapshotsApplied   uint64 `json:"snapshot_frames_applied"`
	DeltasApplied      uint64 `json:"delta_frames_applied"`
	CorruptRejected    uint64 `json:"corrupt_frames_rejected"`
	FencedRejected     uint64 `json:"stale_epoch_frames_rejected"`
	GenerationGaps     uint64 `json:"generation_gaps"`
	Reconnects         uint64 `json:"reconnects"`
	Acks               uint64 `json:"acks"`
	HeartbeatsReceived uint64 `json:"heartbeats_received"`
	HeartbeatsSent     uint64 `json:"heartbeats_sent"`
	LastApplyNanos     uint64 `json:"last_apply_nanos"`
}

// Stats snapshots the follower's counters. Lag is how many generations the
// follower knows it is behind the primary (0 while caught up; between
// publications primary and follower agree).
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		Connected:          f.connected.Load(),
		Epoch:              f.epoch.Load(),
		Generation:         f.gen.Load(),
		PrimaryGeneration:  f.primaryGen.Load(),
		SnapshotsApplied:   f.snapshots.Load(),
		DeltasApplied:      f.deltas.Load(),
		CorruptRejected:    f.corrupt.Load(),
		FencedRejected:     f.fencedFrames.Load(),
		GenerationGaps:     f.gaps.Load(),
		Reconnects:         f.reconnects.Load(),
		Acks:               f.acks.Load(),
		HeartbeatsReceived: f.heartbeatsIn.Load(),
		HeartbeatsSent:     f.heartbeatsOut.Load(),
		LastApplyNanos:     f.lastApplyNanos.Load(),
	}
	if st.PrimaryGeneration > st.Generation {
		st.Lag = st.PrimaryGeneration - st.Generation
	}
	return st
}

// sleepCtx sleeps for d unless ctx expires first; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
