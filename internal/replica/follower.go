package replica

import (
	"bufio"
	"context"
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"costest/internal/core"
	"costest/internal/fault"
	"costest/internal/nn"
)

// genMapCap bounds the follower's local-version → generation map: enough to
// cover every snapshot a serving request could still be holding, tiny enough
// to never matter.
const genMapCap = 1024

// FollowerConfig configures a replica-side Follower.
type FollowerConfig struct {
	// Addr is the primary's replication listener ("host:port").
	Addr string
	// Server is the local serving runtime frames publish into.
	Server *core.Server
	// Model is the local mirror model the Server serves from; replication
	// frames write its parameters. Nothing else may mutate it while the
	// follower runs.
	Model *core.Model
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// RetryMin/RetryMax bound the reconnect backoff (default 100ms / 2s).
	RetryMin time.Duration
	RetryMax time.Duration
	// Logf receives connection lifecycle events; nil discards them.
	Logf func(format string, args ...any)
}

// Follower is the replica side of replication: it dials the primary,
// applies snapshot and delta frames into its local model, republishes each
// applied generation through Server.PublishDelta (so local serving hot-swaps
// exactly like the primary's), and acknowledges it. Corrupt frames are
// rejected by checksum and never applied; generation gaps — missed frames,
// reconnects — trigger a full-snapshot resync. Run owns the model: no other
// writer may touch it.
type Follower struct {
	cfg    FollowerConfig
	schema uint64

	// touched and outBuf are session-goroutine scratch: frame-apply and
	// control-frame sends are allocation-free steady-state.
	touched []*nn.Param
	outBuf  []byte

	gen        atomic.Uint64 // last applied + locally published generation
	primaryGen atomic.Uint64 // highest generation heard from the primary
	connected  atomic.Bool

	readyOnce sync.Once
	ready     chan struct{}

	verMu   sync.Mutex
	verGen  map[uint64]uint64 // local Server version -> generation
	verRing [genMapCap]uint64
	verHead int

	snapshots      atomic.Uint64
	deltas         atomic.Uint64
	corrupt        atomic.Uint64
	gaps           atomic.Uint64
	reconnects     atomic.Uint64
	acks           atomic.Uint64
	lastApplyNanos atomic.Uint64
}

// NewFollower builds a follower; call Run to start it. Server and Model
// must be non-nil and the model must be the one the server serves from.
func NewFollower(cfg FollowerConfig) *Follower {
	if cfg.Server == nil || cfg.Model == nil {
		panic("replica: FollowerConfig needs Server and Model")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = 100 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryMin {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Follower{
		cfg:     cfg,
		schema:  SchemaHash(cfg.Model),
		touched: make([]*nn.Param, 0, len(cfg.Model.PS.Params())),
		verGen:  make(map[uint64]uint64, genMapCap),
		ready:   make(chan struct{}),
	}
}

// Run dials the primary and replicates until ctx is canceled, reconnecting
// with capped backoff on any connection loss. It is the follower's only
// goroutine; the local model is mutated exclusively here.
func (f *Follower) Run(ctx context.Context) {
	backoff := f.cfg.RetryMin
	for ctx.Err() == nil {
		d := net.Dialer{Timeout: f.cfg.DialTimeout}
		nc, err := d.DialContext(ctx, "tcp", f.cfg.Addr)
		if err != nil {
			f.cfg.Logf("replica: dial %s: %v (retrying in %v)", f.cfg.Addr, err, backoff)
			if !sleepCtx(ctx, backoff) {
				return
			}
			backoff = min(backoff*2, f.cfg.RetryMax)
			continue
		}
		backoff = f.cfg.RetryMin
		f.session(ctx, nc)
		f.connected.Store(false)
		if ctx.Err() != nil {
			return
		}
		f.reconnects.Add(1)
		if !sleepCtx(ctx, f.cfg.RetryMin) {
			return
		}
	}
}

// session runs one connection: hello handshake, then apply frames until the
// stream breaks.
func (f *Follower) session(ctx context.Context, nc net.Conn) {
	defer nc.Close()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	stop := context.AfterFunc(ctx, func() { nc.Close() })
	defer stop()

	var hello [8]byte
	binary.LittleEndian.PutUint64(hello[:], f.schema)
	f.outBuf = AppendFrame(f.outBuf[:0], FrameHello, f.gen.Load(), 0, hello[:])
	if _, err := nc.Write(f.outBuf); err != nil {
		f.cfg.Logf("replica: hello to %s: %v", f.cfg.Addr, err)
		return
	}
	f.connected.Store(true)
	f.cfg.Logf("replica: connected to primary %s at generation %d", f.cfg.Addr, f.gen.Load())

	fr := NewFrameReader(bufio.NewReaderSize(nc, 64<<10))
	for {
		if err := fault.Point(SiteRecv); err != nil {
			f.cfg.Logf("replica: injected receive fault: %v", err)
			return
		}
		fm, err := fr.Read()
		if err == ErrChecksum {
			// The frame was consumed whole; its bytes are untrusted and are
			// dropped without touching the model. Whatever generation it
			// carried is lost, so ask for a snapshot.
			f.corrupt.Add(1)
			f.cfg.Logf("replica: corrupt frame rejected, requesting resync at generation %d", f.gen.Load())
			if !f.sendCtl(nc, FrameResync, f.gen.Load()) {
				return
			}
			continue
		}
		if err != nil {
			if ctx.Err() == nil {
				f.cfg.Logf("replica: stream from %s broke: %v", f.cfg.Addr, err)
			}
			return
		}
		switch fm.Type {
		case FrameSnapshot:
			f.primaryGen.Store(fm.Gen)
			if !f.applyAndAck(nc, fm, true) {
				return
			}
		case FrameDelta:
			f.primaryGen.Store(fm.Gen)
			if fm.Prev != f.gen.Load() {
				// Generation gap: this delta builds on a publication we never
				// applied (dropped for backpressure, lost to a reconnect, or
				// rejected as corrupt). Applying it would silently diverge —
				// skip it and catch up by snapshot.
				f.gaps.Add(1)
				f.cfg.Logf("replica: generation gap (have %d, delta builds on %d), requesting resync", f.gen.Load(), fm.Prev)
				if !f.sendCtl(nc, FrameResync, f.gen.Load()) {
					return
				}
				continue
			}
			if !f.applyAndAck(nc, fm, false) {
				return
			}
		}
	}
}

// applyAndAck applies a validated frame into the local model, republishes it
// through the local Server, and acknowledges the generation. A payload that
// fails validation despite an intact checksum is a protocol bug — the
// session drops so the reconnect handshake renegotiates from a snapshot.
func (f *Follower) applyAndAck(nc net.Conn, fm Frame, full bool) bool {
	start := time.Now()
	touched, err := ApplyModelPayload(f.cfg.Model, fm.Payload, full, f.touched)
	f.touched = touched
	if err != nil {
		f.cfg.Logf("replica: %s frame for generation %d failed to apply: %v", fm.Type, fm.Gen, err)
		return false
	}
	f.cfg.Model.PS.MarkParamsUpdated(touched)
	snap := f.cfg.Server.PublishDelta(f.cfg.Model)
	f.recordGen(snap.Version(), fm.Gen)
	f.gen.Store(fm.Gen)
	f.lastApplyNanos.Store(uint64(time.Since(start)))
	if full {
		f.snapshots.Add(1)
	} else {
		f.deltas.Add(1)
	}
	f.readyOnce.Do(func() { close(f.ready) })
	if !f.sendCtl(nc, FrameAck, fm.Gen) {
		return false
	}
	f.acks.Add(1)
	return true
}

// sendCtl writes a payload-free control frame (ack / resync).
func (f *Follower) sendCtl(nc net.Conn, t FrameType, gen uint64) bool {
	f.outBuf = AppendFrame(f.outBuf[:0], t, gen, 0, nil)
	_, err := nc.Write(f.outBuf)
	return err == nil
}

// recordGen remembers which replication generation a local Server version
// serves, capped to the last genMapCap publications.
func (f *Follower) recordGen(version, gen uint64) {
	f.verMu.Lock()
	if len(f.verGen) >= genMapCap {
		delete(f.verGen, f.verRing[f.verHead])
	}
	f.verRing[f.verHead] = version
	f.verHead = (f.verHead + 1) % genMapCap
	f.verGen[version] = gen
	f.verMu.Unlock()
}

// GenOf reports the replication generation served by the given local Server
// version — the bridge the conformance suite uses to compare a follower's
// estimates against the primary's at the same generation.
func (f *Follower) GenOf(version uint64) (uint64, bool) {
	f.verMu.Lock()
	g, ok := f.verGen[version]
	f.verMu.Unlock()
	return g, ok
}

// Generation returns the last applied and locally served generation.
func (f *Follower) Generation() uint64 { return f.gen.Load() }

// WaitReady blocks until the follower has applied and published its first
// frame (it is serving primary weights), or ctx expires.
func (f *Follower) WaitReady(ctx context.Context) error {
	select {
	case <-f.ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FollowerStats is the /statsz view of a follower, lag included.
type FollowerStats struct {
	Connected         bool   `json:"connected"`
	Generation        uint64 `json:"generation"`
	PrimaryGeneration uint64 `json:"primary_generation"`
	Lag               uint64 `json:"lag"`
	SnapshotsApplied  uint64 `json:"snapshot_frames_applied"`
	DeltasApplied     uint64 `json:"delta_frames_applied"`
	CorruptRejected   uint64 `json:"corrupt_frames_rejected"`
	GenerationGaps    uint64 `json:"generation_gaps"`
	Reconnects        uint64 `json:"reconnects"`
	Acks              uint64 `json:"acks"`
	LastApplyNanos    uint64 `json:"last_apply_nanos"`
}

// Stats snapshots the follower's counters. Lag is how many generations the
// follower knows it is behind the primary (0 while caught up; between
// publications primary and follower agree).
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		Connected:         f.connected.Load(),
		Generation:        f.gen.Load(),
		PrimaryGeneration: f.primaryGen.Load(),
		SnapshotsApplied:  f.snapshots.Load(),
		DeltasApplied:     f.deltas.Load(),
		CorruptRejected:   f.corrupt.Load(),
		GenerationGaps:    f.gaps.Load(),
		Reconnects:        f.reconnects.Load(),
		Acks:              f.acks.Load(),
		LastApplyNanos:    f.lastApplyNanos.Load(),
	}
	if st.PrimaryGeneration > st.Generation {
		st.Lag = st.PrimaryGeneration - st.Generation
	}
	return st
}

// sleepCtx sleeps for d unless ctx expires first; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
