package replica

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"costest/internal/core"
	"costest/internal/fault"
	"costest/internal/feature"
)

// Fault-injection sites on the liveness machinery live in the central
// registry (internal/fault/sites.go): fault.SiteReplicaLeaseRenew and
// fault.SiteReplicaLeasePromote.

// MemberState is a cluster member's role in the epoch/lease state machine.
type MemberState int32

const (
	// StateFollowing: replicating from a live primary, lease being renewed.
	StateFollowing MemberState = iota
	// StatePromoting: the lease lapsed; the member is sealing its last
	// applied generation and booting a publisher under epoch+1.
	StatePromoting
	// StatePrimary: the member publishes under its own epoch.
	StatePrimary
)

// String returns the state's wire name (served verbatim in /statsz).
func (s MemberState) String() string {
	switch s {
	case StateFollowing:
		return "following"
	case StatePromoting:
		return "promoting"
	case StatePrimary:
		return "primary"
	}
	return "unknown"
}

// MemberConfig configures a cluster Member.
type MemberConfig struct {
	// Peers is the ordered replication peer list shared by the whole
	// cluster: the boot primary first, then promotion-ranked successors.
	Peers []string
	// Rank is the member's promotion rank: rank 0 promotes first (its
	// lease is the configured Lease), rank r waits (r+1) × Lease, so a
	// higher-ranked successor always gets a full lease of head start.
	// Negative means this member never promotes.
	Rank int
	// Token is the pre-shared replication auth token.
	Token string
	// Server and Model are the local serving runtime and its mirror model,
	// exactly as for a Follower.
	Server *core.Server
	Model  *core.Model
	// Listen is the address the member's own replication listener binds on
	// promotion ("host:port"). Required when Rank >= 0 unless Listener is
	// set.
	Listen string
	// Listener, when non-nil, is a pre-bound listener used for the first
	// promotion instead of binding Listen (tests pick the port up front so
	// peers can be configured before anything is live).
	Listener net.Listener
	// Lease is the base primary-liveness lease (see Rank). Required for
	// promotable members.
	Lease time.Duration
	// Heartbeat, PeerTimeout, WriteTimeout, DialTimeout, RetryMin and
	// RetryMax tune the wire exactly as in FollowerConfig/PublisherConfig.
	Heartbeat    time.Duration
	PeerTimeout  time.Duration
	WriteTimeout time.Duration
	DialTimeout  time.Duration
	RetryMin     time.Duration
	RetryMax     time.Duration
	// Train is the training corpus a promoted member feeds its
	// ParallelTrainer; empty means the promoted member serves and
	// heartbeats but does not advance the model.
	Train []*feature.EncodedPlan
	// BatchSize, Workers and Shards tune the promoted trainer (defaults
	// 8, 1, 1).
	BatchSize int
	Workers   int
	Shards    int
	// TrainInterval is the pause between promoted training epochs
	// (default: none — train continuously).
	TrainInterval time.Duration
	// Logf receives lifecycle events; nil discards them.
	Logf func(format string, args ...any)
}

// Member is one replica in a self-healing cluster: it follows the live
// primary through the shared peer list, and — when promotable — watches the
// primary lease. On lease expiry it promotes: seals the last applied
// generation, boots a ParallelTrainer over its mirror model, and publishes
// under epoch+1 from its own replication listener, while the surviving
// followers' peer-list walk finds it. A promoted member that is later fenced
// by an even higher epoch demotes itself back to following and rejoins
// through the peer list (its diverged weights are healed by snapshot).
type Member struct {
	cfg   MemberConfig
	fol   *Follower
	state atomic.Int32

	mu      sync.Mutex
	pub     *Publisher // non-nil while primary (or fenced ex-primary)
	ln      net.Listener
	usedPre bool // cfg.Listener already consumed by a prior promotion

	lastEpoch atomic.Uint64 // highest epoch this member ever published under

	promotions     atomic.Uint64
	abortedPromos  atomic.Uint64
	demotions      atomic.Uint64
	promotionNanos atomic.Uint64 // lease-lapse detection → publishing live
}

// promoteEpoch seeds the epoch a promoting member publishes under: strictly
// above every epoch it has evidence of — the highest epoch it observed as a
// follower, the highest epoch it ever published under itself (a demoted
// ex-primary must never reuse an epoch whose (epoch, generation) coordinates
// may already be serving history), and the boot primary's DefaultEpoch (a
// member whose lease lapses before any frame ever arrives — the boot primary
// down at cluster start — must not collide with a default-configured primary
// and split the cluster under a shared epoch).
func promoteEpoch(observed, ownLast uint64) uint64 {
	e := observed
	if ownLast > e {
		e = ownLast
	}
	if e < DefaultEpoch {
		e = DefaultEpoch
	}
	return e + 1
}

// NewMember builds a member; call Run to start it.
func NewMember(cfg MemberConfig) *Member {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	m := &Member{cfg: cfg}
	fcfg := FollowerConfig{
		Peers:        cfg.Peers,
		Token:        cfg.Token,
		Server:       cfg.Server,
		Model:        cfg.Model,
		DialTimeout:  cfg.DialTimeout,
		RetryMin:     cfg.RetryMin,
		RetryMax:     cfg.RetryMax,
		Heartbeat:    cfg.Heartbeat,
		PeerTimeout:  cfg.PeerTimeout,
		WriteTimeout: cfg.WriteTimeout,
		Logf:         cfg.Logf,
	}
	if cfg.Rank >= 0 && cfg.Lease > 0 {
		// Rank-scaled lease: rank 0 moves first, each lower rank concedes a
		// full extra lease so two members never race to promote.
		fcfg.Lease = cfg.Lease * time.Duration(cfg.Rank+1)
		fcfg.OnLeaseExpired = m.onLeaseExpired
	}
	m.fol = NewFollower(fcfg)
	return m
}

// Run drives the member until ctx is canceled: follow, promote on lease
// expiry, publish as primary, demote and rejoin if fenced.
func (m *Member) Run(ctx context.Context) {
	for ctx.Err() == nil {
		m.fol.Run(ctx) // returns on ctx cancel or after a successful promotion
		if ctx.Err() != nil || m.State() != StatePrimary {
			break
		}
		m.primaryLoop(ctx)
		if ctx.Err() != nil {
			break
		}
		// Fenced by a higher epoch: demote and rejoin through the peer list.
		m.demotions.Add(1)
		m.state.Store(int32(StateFollowing))
		m.cfg.Logf("replica: demoted — rejoining cluster as follower")
	}
	m.closePrimary()
}

// onLeaseExpired is the follower's lease-expiry callback (runs on the
// follower goroutine, which owns the model — so the handoff from
// frame-applier to trainer is free of concurrent writers by construction).
// It returns true when the member is now primary and the follower must stop.
func (m *Member) onLeaseExpired() bool {
	start := time.Now()
	m.state.Store(int32(StatePromoting))
	if err := fault.Point(fault.SiteReplicaLeasePromote); err != nil {
		m.abortedPromos.Add(1)
		m.state.Store(int32(StateFollowing))
		m.cfg.Logf("replica: promotion aborted by injected fault: %v", err)
		return false
	}
	ln, err := m.listener()
	if err != nil {
		m.abortedPromos.Add(1)
		m.state.Store(int32(StateFollowing))
		m.cfg.Logf("replica: promotion aborted: listen %s: %v", m.cfg.Listen, err)
		return false
	}

	// Seal: the last applied (epoch, generation) is this member's final
	// word as a follower. The publisher continues the generation sequence
	// from the seal under the next epoch, so cross-epoch history never
	// reuses an (epoch, generation) coordinate.
	sealedGen := m.fol.Generation()
	epoch := promoteEpoch(m.fol.Epoch(), m.lastEpoch.Load())
	m.lastEpoch.Store(epoch)
	pub := NewPublisher(m.cfg.Model, sealedGen, PublisherConfig{
		Epoch:        epoch,
		Token:        m.cfg.Token,
		Heartbeat:    m.cfg.Heartbeat,
		PeerTimeout:  m.cfg.PeerTimeout,
		WriteTimeout: m.cfg.WriteTimeout,
		Logf:         m.cfg.Logf,
	})
	m.cfg.Server.SetPublishHook(pub.OnPublish)
	m.mu.Lock()
	m.pub, m.ln = pub, ln
	m.mu.Unlock()
	go pub.Serve(ln)
	// Announce the new epoch's head immediately: republishing the sealed
	// weights advances the generation to sealedGen+1 under epoch, and every
	// follower that connects is snapshotted onto it.
	m.cfg.Server.PublishDelta(m.cfg.Model)
	m.promotionNanos.Store(uint64(time.Since(start)))
	m.promotions.Add(1)
	m.state.Store(int32(StatePrimary))
	m.cfg.Logf("replica: PROMOTED to primary at epoch %d (sealed generation %d, promotion took %v)",
		epoch, sealedGen, time.Since(start).Round(time.Millisecond))
	return true
}

// listener returns the replication listener for a promotion: the pre-bound
// one the first time, a fresh bind of cfg.Listen after.
func (m *Member) listener() (net.Listener, error) {
	m.mu.Lock()
	pre, used := m.cfg.Listener, m.usedPre
	m.usedPre = true
	m.mu.Unlock()
	if pre != nil && !used {
		return pre, nil
	}
	return net.Listen("tcp", m.cfg.Listen)
}

// primaryLoop is the promoted member's publication loop: train epochs over
// the configured corpus and publish each one, until ctx cancels or a higher
// epoch fences this member.
func (m *Member) primaryLoop(ctx context.Context) {
	pub := m.Publisher()
	if len(m.cfg.Train) == 0 {
		// Nothing to train: the publisher's heartbeats keep follower leases
		// fed; just wait for cancellation or fencing.
		for ctx.Err() == nil && !pub.Fenced() {
			if !sleepCtx(ctx, 10*time.Millisecond) {
				break
			}
		}
	} else {
		tr := core.NewParallelTrainer(m.cfg.Model, m.cfg.Shards)
		defer tr.Close()
		for ctx.Err() == nil && !pub.Fenced() {
			tr.TrainEpochParallel(m.cfg.Train, m.cfg.BatchSize, m.cfg.Workers)
			if ctx.Err() != nil || pub.Fenced() {
				break
			}
			m.cfg.Server.PublishDelta(m.cfg.Model)
			if m.cfg.TrainInterval > 0 && !sleepCtx(ctx, m.cfg.TrainInterval) {
				break
			}
		}
	}
	if ctx.Err() == nil && pub.Fenced() {
		// Fold the fencing epoch back into the follower before rejoining:
		// frames below it stay rejected while following, and a later
		// re-promotion seeds strictly above it (the publisher only fences on
		// a strictly higher epoch, so FencedBy also bounds our own epoch).
		m.fol.ObserveEpoch(pub.FencedBy())
		m.closePrimary()
	}
}

// closePrimary tears the promoted-side machinery down (idempotent): the
// publish hook, the publisher and its listener.
func (m *Member) closePrimary() {
	m.mu.Lock()
	pub, ln := m.pub, m.ln
	m.pub, m.ln = nil, nil
	m.mu.Unlock()
	if pub == nil {
		return
	}
	m.cfg.Server.SetPublishHook(nil)
	if ln != nil {
		ln.Close()
	}
	pub.Close()
}

// State returns the member's current role.
func (m *Member) State() MemberState { return MemberState(m.state.Load()) }

// Follower returns the member's follower side (always non-nil).
func (m *Member) Follower() *Follower { return m.fol }

// Publisher returns the member's publisher, nil unless promoted.
func (m *Member) Publisher() *Publisher {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pub
}

// Epoch returns the member's current epoch view: the publishing epoch when
// primary, the highest observed epoch otherwise.
func (m *Member) Epoch() uint64 {
	if pub := m.Publisher(); pub != nil {
		return pub.Epoch()
	}
	return m.fol.Epoch()
}

// Generation returns the member's current replication generation.
func (m *Member) Generation() uint64 {
	if pub := m.Publisher(); pub != nil {
		return pub.Generation()
	}
	return m.fol.Generation()
}

// EpochGenOf maps a local Server version to cluster (epoch, generation)
// coordinates, consulting the publisher's ring when primary and the
// follower's otherwise (a version served before promotion still resolves).
func (m *Member) EpochGenOf(version uint64) (epoch, gen uint64, ok bool) {
	if pub := m.Publisher(); pub != nil {
		if g, found := pub.GenOf(version); found {
			return pub.Epoch(), g, true
		}
	}
	return m.fol.EpochGenOf(version)
}

// WaitReady blocks until the member serves cluster weights — its follower
// applied a frame, or it promoted — or ctx expires.
func (m *Member) WaitReady(ctx context.Context) error {
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-m.fol.ready:
			return nil
		case <-t.C:
			if m.State() == StatePrimary {
				return nil
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// MemberStats is the /statsz view of a cluster member.
type MemberStats struct {
	State              string          `json:"state"`
	Rank               int             `json:"rank"`
	Epoch              uint64          `json:"epoch"`
	Generation         uint64          `json:"generation"`
	LeaseMillis        int64           `json:"lease_ms,omitempty"`
	Promotions         uint64          `json:"promotions"`
	AbortedPromotions  uint64          `json:"aborted_promotions"`
	Demotions          uint64          `json:"demotions"`
	LastPromotionNanos uint64          `json:"last_promotion_nanos,omitempty"`
	Follower           FollowerStats   `json:"follower"`
	Publisher          *PublisherStats `json:"publisher,omitempty"`
}

// Stats snapshots the member's counters.
func (m *Member) Stats() MemberStats {
	st := MemberStats{
		State:              m.State().String(),
		Rank:               m.cfg.Rank,
		Epoch:              m.Epoch(),
		Generation:         m.Generation(),
		Promotions:         m.promotions.Load(),
		AbortedPromotions:  m.abortedPromos.Load(),
		Demotions:          m.demotions.Load(),
		LastPromotionNanos: m.promotionNanos.Load(),
		Follower:           m.fol.Stats(),
	}
	if m.cfg.Rank >= 0 && m.cfg.Lease > 0 {
		st.LeaseMillis = (m.cfg.Lease * time.Duration(m.cfg.Rank+1)).Milliseconds()
	}
	if pub := m.Publisher(); pub != nil {
		ps := pub.Stats()
		st.Publisher = &ps
	}
	return st
}
