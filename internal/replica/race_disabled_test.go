//go:build !race

package replica

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = false
