package replica

import (
	"context"
	"encoding/binary"
	"math"
	"net"
	"testing"
	"time"

	"costest/internal/core"
	"costest/internal/feature"
	"costest/internal/nn"
)

// scriptedPrimary lets a test play the primary's side of the protocol with
// hand-built frames against a real Follower.
type scriptedPrimary struct {
	t    *testing.T
	conn net.Conn
	fr   *FrameReader
}

func (sp *scriptedPrimary) expect(typ FrameType, gen uint64) {
	sp.t.Helper()
	sp.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := sp.fr.Read()
	if err != nil {
		sp.t.Fatalf("reading frame (want %v gen %d): %v", typ, gen, err)
	}
	if f.Type != typ || f.Gen != gen {
		sp.t.Fatalf("got %v gen %d, want %v gen %d", f.Type, f.Gen, typ, gen)
	}
}

func (sp *scriptedPrimary) send(b []byte) {
	sp.t.Helper()
	if _, err := sp.conn.Write(b); err != nil {
		sp.t.Fatalf("writing frame: %v", err)
	}
}

// expectEstimatesMatch compares the follower server's estimates bitwise
// against a reference server.
func expectEstimatesMatch(t *testing.T, what string, srv, ref *core.Server, srvEps, refEps []*feature.EncodedPlan) {
	t.Helper()
	for i := range srvEps {
		sc, sd, _ := srv.Estimate(srvEps[i])
		rc, rd, _ := ref.Estimate(refEps[i])
		if math.Float64bits(sc) != math.Float64bits(rc) || math.Float64bits(sd) != math.Float64bits(rd) {
			t.Fatalf("%s: plan %d: follower (%x, %x), reference (%x, %x)",
				what, i, math.Float64bits(sc), math.Float64bits(sd), math.Float64bits(rc), math.Float64bits(rd))
		}
	}
}

// TestFollowerProtocol drives a real Follower with scripted frames: snapshot
// bootstrap, a generation-gap delta that must trigger resync without being
// applied, a corrupt frame that must be rejected by checksum without being
// applied, and finally the clean delta.
func TestFollowerProtocol(t *testing.T) {
	samples := labeledSamples(t, 19, 8)
	refEps := encodePlans(t, samples)
	m, _ := trainedModel(t, refEps, 1)

	model := core.New(m.Cfg, testEnc)
	srv := core.NewServer(model, core.NewMemoryPool())
	srvEps := encodePlans(t, samples)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	f := NewFollower(FollowerConfig{
		Addr:     ln.Addr().String(),
		Server:   srv,
		Model:    model,
		RetryMin: 5 * time.Millisecond,
		RetryMax: 50 * time.Millisecond,
		// The scripted primary plays frames by hand at test pace: silence
		// the follower's heartbeats and read deadline so they never
		// interleave with the script.
		Heartbeat:   time.Hour,
		PeerTimeout: time.Hour,
		Logf:        t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx)
	}()
	defer func() {
		cancel()
		<-done
	}()

	conn, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	defer conn.Close()
	sp := &scriptedPrimary{t: t, conn: conn, fr: NewFrameReader(conn)}

	// Handshake: the follower introduces itself at generation 0 with the
	// model's schema hash.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	hf, err := sp.fr.Read()
	if err != nil || hf.Type != FrameHello || hf.Gen != 0 {
		t.Fatalf("bad hello: %+v, %v", hf, err)
	}
	if got := binary.LittleEndian.Uint64(hf.Payload); got != SchemaHash(model) {
		t.Fatalf("hello schema %#x, want %#x", got, SchemaHash(model))
	}

	// Snapshot bootstrap at generation 5.
	allIdx := make([]int, len(m.PS.Params()))
	for i := range allIdx {
		allIdx[i] = i
	}
	ref5 := core.NewServer(m, core.NewMemoryPool()) // reference for m's gen-5 weights
	sp.send(AppendFrame(nil, FrameSnapshot, 1, 5, 5, AppendModelPayload(nil, m, allIdx)))
	sp.expect(FrameAck, 5)
	if g := f.Generation(); g != 5 {
		t.Fatalf("generation %d after snapshot, want 5", g)
	}
	expectEstimatesMatch(t, "after snapshot", srv, ref5, srvEps, refEps)

	// Mutate one parameter on the scripted primary: generation 6.
	p0 := m.PS.Params()[0]
	p0.Value[0] += 0.25
	m.PS.MarkParamsUpdated([]*nn.Param{p0})
	ref6 := core.NewServer(m, core.NewMemoryPool())
	delta65 := AppendFrame(nil, FrameDelta, 1, 6, 5, AppendModelPayload(nil, m, []int{0}))

	// A delta building on generation 6 while the follower holds 5 is a gap:
	// it must be skipped (never applied) and answered with a resync request.
	sp.send(AppendFrame(nil, FrameDelta, 1, 7, 6, AppendModelPayload(nil, m, []int{0})))
	sp.expect(FrameResync, 5)
	if st := f.Stats(); st.GenerationGaps != 1 {
		t.Fatalf("generation gaps = %d, want 1 (%+v)", st.GenerationGaps, st)
	}
	expectEstimatesMatch(t, "after gap delta", srv, ref5, srvEps, refEps)

	// A corrupted copy of the clean delta must be rejected by checksum —
	// never applied — and answered with a resync request.
	corrupt := append([]byte(nil), delta65...)
	corrupt[len(corrupt)-7] ^= 0xFF // flip a payload byte
	sp.send(corrupt)
	sp.expect(FrameResync, 5)
	if st := f.Stats(); st.CorruptRejected != 1 {
		t.Fatalf("corrupt rejected = %d, want 1 (%+v)", st.CorruptRejected, st)
	}
	expectEstimatesMatch(t, "after corrupt delta", srv, ref5, srvEps, refEps)
	if g := f.Generation(); g != 5 {
		t.Fatalf("generation %d after rejected frames, want 5", g)
	}

	// The clean delta applies and the follower serves generation 6 bits.
	sp.send(delta65)
	sp.expect(FrameAck, 6)
	expectEstimatesMatch(t, "after clean delta", srv, ref6, srvEps, refEps)
	if st := f.Stats(); st.DeltasApplied != 1 || st.SnapshotsApplied != 1 {
		t.Fatalf("frame counters: %+v", st)
	}
}
