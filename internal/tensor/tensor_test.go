package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMatVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	x := Vec{1, 0, -1}
	dst := NewVec(2)
	MatVec(dst, m, x)
	if !almostEqual(dst[0], -2) || !almostEqual(dst[1], -2) {
		t.Fatalf("MatVec = %v, want [-2 -2]", dst)
	}
}

func TestMatVecAdd(t *testing.T) {
	m := NewMat(2, 2)
	copy(m.Data, []float64{1, 0, 0, 1})
	dst := NewVec(2)
	MatVecAdd(dst, m, Vec{3, 4}, Vec{1, -1})
	if !almostEqual(dst[0], 4) || !almostEqual(dst[1], 3) {
		t.Fatalf("MatVecAdd = %v, want [4 3]", dst)
	}
}

func TestMatTVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	x := Vec{1, 1}
	dst := NewVec(3)
	MatTVec(dst, m, x)
	want := Vec{5, 7, 9}
	for i := range want {
		if !almostEqual(dst[i], want[i]) {
			t.Fatalf("MatTVec = %v, want %v", dst, want)
		}
	}
}

// MatTVec must agree with an explicit transpose followed by MatVec.
func TestMatTVecMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMat(5, 4)
	m.XavierInit(rng)
	x := NewVec(5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := NewVec(4)
	MatTVec(got, m, x)

	mt := NewMat(4, 5)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			mt.Set(j, i, m.At(i, j))
		}
	}
	want := NewVec(4)
	MatVec(want, mt, x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MatTVec mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMat(2, 2)
	AddOuter(m, Vec{1, 2}, Vec{3, 4})
	want := []float64{3, 4, 6, 8}
	for i := range want {
		if !almostEqual(m.Data[i], want[i]) {
			t.Fatalf("AddOuter = %v, want %v", m.Data, want)
		}
	}
	// Accumulation, not overwrite.
	AddOuter(m, Vec{1, 0}, Vec{1, 1})
	if !almostEqual(m.At(0, 0), 4) || !almostEqual(m.At(0, 1), 5) {
		t.Fatalf("AddOuter should accumulate, got %v", m.Data)
	}
}

func TestConcat(t *testing.T) {
	dst := NewVec(5)
	n := Concat(dst, Vec{1, 2}, Vec{3}, Vec{4, 5})
	if n != 5 {
		t.Fatalf("Concat wrote %d elements, want 5", n)
	}
	for i, want := range []float64{1, 2, 3, 4, 5} {
		if dst[i] != want {
			t.Fatalf("Concat = %v", dst)
		}
	}
}

func TestMinMaxMean(t *testing.T) {
	a, b := Vec{1, 5, -2}, Vec{3, 2, -2}
	dst := NewVec(3)
	MinInto(dst, a, b)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != -2 {
		t.Fatalf("MinInto = %v", dst)
	}
	MaxInto(dst, a, b)
	if dst[0] != 3 || dst[1] != 5 || dst[2] != -2 {
		t.Fatalf("MaxInto = %v", dst)
	}
	Mean(dst, a, b)
	if dst[0] != 2 || dst[1] != 3.5 || dst[2] != -2 {
		t.Fatalf("Mean = %v", dst)
	}
}

// Property: dot(Mx, y) == dot(x, Mᵀy) (adjoint identity backprop relies on).
func TestAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMat(rows, cols)
		m.XavierInit(rng)
		x, y := NewVec(cols), NewVec(rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		mx := NewVec(rows)
		MatVec(mx, m, x)
		mty := NewVec(cols)
		MatTVec(mty, m, y)
		return math.Abs(Dot(mx, y)-Dot(x, mty)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: min(a,b) <= mean(a,b) <= max(a,b) elementwise.
func TestPoolingBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a, b := NewVec(n), NewVec(n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		lo, mid, hi := NewVec(n), NewVec(n), NewVec(n)
		MinInto(lo, a, b)
		Mean(mid, a, b)
		MaxInto(hi, a, b)
		for i := range lo {
			if lo[i] > mid[i]+1e-12 || mid[i] > hi[i]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAddScaled(t *testing.T) {
	v := Vec{1, 2, 3}
	Scale(v, 2)
	if v[0] != 2 || v[2] != 6 {
		t.Fatalf("Scale = %v", v)
	}
	AddScaled(v, -1, Vec{2, 4, 6})
	if Norm2(v) != 0 {
		t.Fatalf("AddScaled = %v, want zeros", v)
	}
}

// TestAddVecsInto pins the reduction kernel's ordered-sum contract: for any
// source count (covering the pair-blocked loop and its odd remainder), the
// result must be bit-identical to the strict left-to-right accumulation
// dst += s0; dst += s1; … — the order the data-parallel gradient reduction
// relies on for worker-count-invariant training.
func TestAddVecsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 37
	for _, k := range []int{0, 1, 2, 3, 4, 5, 8} {
		srcs := make([]Vec, k)
		for s := range srcs {
			srcs[s] = NewVec(n)
			for i := range srcs[s] {
				srcs[s][i] = rng.NormFloat64()
			}
		}
		got := NewVec(n)
		want := NewVec(n)
		for i := 0; i < n; i++ {
			got[i] = rng.NormFloat64()
			want[i] = got[i]
		}
		AddVecsInto(got, srcs...)
		for _, s := range srcs {
			AddTo(want, s)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: AddVecsInto[%d] = %g, ordered reference = %g", k, i, got[i], want[i])
			}
		}
	}
}

func BenchmarkAddVecsInto(b *testing.B) {
	const n = 4096
	srcs := make([]Vec, 4)
	for s := range srcs {
		srcs[s] = NewVec(n)
		for i := range srcs[s] {
			srcs[s][i] = float64(s*n + i)
		}
	}
	dst := NewVec(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddVecsInto(dst, srcs...)
	}
}

func TestInitDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMat(64, 64)
	m.XavierInit(rng)
	limit := math.Sqrt(6.0 / 128.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier value %g outside [-%g, %g]", v, limit, limit)
		}
	}
	m.KaimingInit(rng)
	var mean float64
	for _, v := range m.Data {
		mean += v
	}
	mean /= float64(len(m.Data))
	if math.Abs(mean) > 0.05 {
		t.Fatalf("Kaiming mean = %g, want ~0", mean)
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatVec(NewVec(3), NewMat(2, 2), NewVec(2))
}

// ---- Kernel microbenchmarks (hot-path trajectory tracked in BENCH_*.json) ----

func benchRng() *rand.Rand { return rand.New(rand.NewSource(7)) }

func randVec(rng *rand.Rand, n int) Vec {
	v := NewVec(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

var sinkF float64

func BenchmarkDot(b *testing.B) {
	rng := benchRng()
	x := randVec(rng, 256)
	y := randVec(rng, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = Dot(x, y)
	}
}

func BenchmarkMatVec(b *testing.B) {
	rng := benchRng()
	m := randMat(rng, 64, 128)
	x := randVec(rng, 128)
	dst := NewVec(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(dst, m, x)
	}
}

func BenchmarkMatMulTransBInto(b *testing.B) {
	rng := benchRng()
	a := randMat(rng, 64, 96)
	bt := randMat(rng, 48, 96)
	dst := NewMat(64, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(dst, a, bt)
	}
}

func BenchmarkMatMulInto(b *testing.B) {
	rng := benchRng()
	a := randMat(rng, 64, 96)
	bm := randMat(rng, 96, 48)
	dst := NewMat(64, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, bm)
	}
}

func TestMatVec4MatchesMatVec(t *testing.T) {
	rng := benchRng()
	for _, shape := range []struct{ r, c int }{{1, 1}, {3, 5}, {16, 48}, {7, 33}} {
		ms := make([]*Mat, 4)
		ds := make([]Vec, 4)
		want := make([]Vec, 4)
		for k := range ms {
			ms[k] = randMat(rng, shape.r, shape.c)
			ds[k] = NewVec(shape.r)
			want[k] = NewVec(shape.r)
		}
		x := randVec(rng, shape.c)
		MatVec4(ds[0], ds[1], ds[2], ds[3], ms[0], ms[1], ms[2], ms[3], x)
		for k := range ms {
			MatVec(want[k], ms[k], x)
			for i := range want[k] {
				if math.Abs(ds[k][i]-want[k][i]) > 1e-12 {
					t.Fatalf("shape %dx%d gate %d row %d: %g != %g",
						shape.r, shape.c, k, i, ds[k][i], want[k][i])
				}
			}
		}
	}
}

func BenchmarkMatVec4(b *testing.B) {
	rng := benchRng()
	ms := make([]*Mat, 4)
	ds := make([]Vec, 4)
	for k := range ms {
		ms[k] = randMat(rng, 16, 48)
		ds[k] = NewVec(16)
	}
	x := randVec(rng, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec4(ds[0], ds[1], ds[2], ds[3], ms[0], ms[1], ms[2], ms[3], x)
	}
}

// naiveAccum computes want += a(opA) * b(opB) elementwise for the accumulate
// GEMM tests.
func naiveAddMatMul(dst, a, b *Mat, transA bool) {
	for i := 0; i < dst.Rows; i++ {
		for j := 0; j < dst.Cols; j++ {
			var s float64
			if transA {
				for l := 0; l < a.Rows; l++ {
					s += a.At(l, i) * b.At(l, j)
				}
			} else {
				for l := 0; l < a.Cols; l++ {
					s += a.At(i, l) * b.At(l, j)
				}
			}
			dst.Data[i*dst.Cols+j] += s
		}
	}
}

func TestAddMatMulInto(t *testing.T) {
	rng := benchRng()
	for _, shape := range []struct{ m, k, n int }{{1, 1, 1}, {2, 3, 4}, {5, 7, 9}, {16, 48, 33}, {7, 2, 16}} {
		a := randMat(rng, shape.m, shape.k)
		bm := randMat(rng, shape.k, shape.n)
		dst := randMat(rng, shape.m, shape.n)
		want := dst.Clone()
		naiveAddMatMul(want, a, bm, false)
		AddMatMulInto(dst, a, bm)
		for i := range dst.Data {
			if math.Abs(dst.Data[i]-want.Data[i]) > 1e-10 {
				t.Fatalf("%dx%dx%d: dst[%d] = %g, want %g", shape.m, shape.k, shape.n, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulTransAInto(t *testing.T) {
	rng := benchRng()
	for _, shape := range []struct{ k, m, n int }{{1, 1, 1}, {3, 2, 4}, {7, 5, 9}, {48, 16, 33}, {2, 7, 16}} {
		a := randMat(rng, shape.k, shape.m)
		bm := randMat(rng, shape.k, shape.n)
		dst := randMat(rng, shape.m, shape.n)
		want := dst.Clone()
		naiveAddMatMul(want, a, bm, true)
		MatMulTransAInto(dst, a, bm)
		for i := range dst.Data {
			if math.Abs(dst.Data[i]-want.Data[i]) > 1e-10 {
				t.Fatalf("%dx%dx%d: dst[%d] = %g, want %g", shape.k, shape.m, shape.n, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

// The weight-gradient GEMM must agree with a loop of per-node outer products
// (the per-sample backward it replaces).
func TestMatMulTransAIntoMatchesAddOuter(t *testing.T) {
	rng := benchRng()
	const nodes, dh, in = 11, 6, 14
	dG := randMat(rng, nodes, dh)
	z := randMat(rng, nodes, in)
	got := NewMat(dh, in)
	want := NewMat(dh, in)
	for j := 0; j < nodes; j++ {
		AddOuter(want, dG.Row(j), z.Row(j))
	}
	MatMulTransAInto(got, dG, z)
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-10 {
			t.Fatalf("got[%d] = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestAddColumnSums(t *testing.T) {
	rng := benchRng()
	m := randMat(rng, 9, 5)
	dst := randVec(rng, 5)
	want := append(Vec(nil), dst...)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			want[j] += m.At(i, j)
		}
	}
	AddColumnSums(dst, m)
	for j := range dst {
		if math.Abs(dst[j]-want[j]) > 1e-12 {
			t.Fatalf("dst[%d] = %g, want %g", j, dst[j], want[j])
		}
	}
}

func BenchmarkAddMatMulInto(b *testing.B) {
	rng := benchRng()
	a := randMat(rng, 64, 96)
	bm := randMat(rng, 96, 48)
	dst := NewMat(64, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddMatMulInto(dst, a, bm)
	}
}

func BenchmarkMatMulTransAInto(b *testing.B) {
	rng := benchRng()
	a := randMat(rng, 96, 64)
	bm := randMat(rng, 96, 48)
	dst := NewMat(64, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransAInto(dst, a, bm)
	}
}

// TestCanonicalDotOrder pins the bit-level contract the serving runtime
// depends on: every forward kernel that emits a dot product — Dot, MatVec,
// MatVec4 and MatMulTransBInto (both its 2×2-blocked interior and its
// remainder rows/columns) — must produce bit-identical results for the same
// operand vectors, across odd and even shapes. Representations stored in the
// memory pool by one path and consumed by another, and the hot-swap test's
// single-threaded replays, all assume this equality is exact, not
// approximate.
func TestCanonicalDotOrder(t *testing.T) {
	rng := benchRng()
	for _, shape := range []struct{ m, k, n int }{
		{1, 1, 1}, {2, 2, 2}, {3, 5, 3}, {4, 7, 5}, {16, 48, 24}, {7, 33, 9}, {5, 8, 1},
	} {
		a := randMat(rng, shape.m, shape.k)
		bt := randMat(rng, shape.n, shape.k)
		gemm := NewMat(shape.m, shape.n)
		MatMulTransBInto(gemm, a, bt)

		mv := NewVec(shape.m)
		for j := 0; j < shape.n; j++ {
			x := bt.Row(j)
			MatVec(mv, a, x)
			for i := 0; i < shape.m; i++ {
				want := Dot(a.Row(i), x)
				if gemm.At(i, j) != want {
					t.Fatalf("%dx%dx%d: MatMulTransBInto[%d,%d] = %v, Dot = %v",
						shape.m, shape.k, shape.n, i, j, gemm.At(i, j), want)
				}
				if mv[i] != want {
					t.Fatalf("%dx%dx%d: MatVec[%d] = %v, Dot = %v",
						shape.m, shape.k, shape.n, i, mv[i], want)
				}
			}
		}

		d := [4]Vec{NewVec(shape.m), NewVec(shape.m), NewVec(shape.m), NewVec(shape.m)}
		ms := [4]*Mat{a, randMat(rng, shape.m, shape.k), randMat(rng, shape.m, shape.k), randMat(rng, shape.m, shape.k)}
		x := randVec(rng, shape.k)
		MatVec4(d[0], d[1], d[2], d[3], ms[0], ms[1], ms[2], ms[3], x)
		for g := range ms {
			for i := 0; i < shape.m; i++ {
				if want := Dot(ms[g].Row(i), x); d[g][i] != want {
					t.Fatalf("%dx%d: MatVec4 gate %d row %d = %v, Dot = %v",
						shape.m, shape.k, g, i, d[g][i], want)
				}
			}
		}
	}
}
