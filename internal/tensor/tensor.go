// Package tensor provides the small dense linear-algebra kernel that the
// neural-network stack is built on: vectors, row-major matrices, matrix-vector
// products, outer-product accumulation and elementwise operations.
//
// Everything is float64 and allocation-conscious: all hot-path functions take
// destination slices so training loops can preallocate buffers.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Vec is a dense float64 vector.
type Vec = []float64

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Mat is a dense row-major matrix: element (i, j) is Data[i*Cols+j].
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Mat) Row(i int) Vec { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to zero.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// XavierInit fills m with uniform Xavier/Glorot initialization using rng,
// which keeps forward/backward variance stable for tanh/sigmoid layers.
func (m *Mat) XavierInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// KaimingInit fills m with scaled normal init suited to ReLU layers.
func (m *Mat) KaimingInit(rng *rand.Rand) {
	std := math.Sqrt(2.0 / float64(m.Cols))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// MatVec computes dst = m * x. dst must have length m.Rows and x length
// m.Cols; dst must not alias x.
//
// Rows are processed four at a time so each element of x is loaded once per
// row quad, with one sequential accumulator chain per row (dotKernel's
// canonical order — remainder rows call it directly), so every output
// element is bit-identical to a plain dotKernel over its row.
//
// costlint:noalloc
func MatVec(dst Vec, m *Mat, x Vec) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch: m %dx%d, x %d, dst %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	c := m.Cols
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		r0 := m.Data[i*c : i*c+c]
		r1 := m.Data[(i+1)*c : (i+1)*c+c]
		r2 := m.Data[(i+2)*c : (i+2)*c+c]
		r3 := m.Data[(i+3)*c : (i+3)*c+c]
		var s0, s1, s2, s3 float64
		for j, xv := range x {
			s0 += r0[j] * xv
			s1 += r1[j] * xv
			s2 += r2[j] * xv
			s3 += r3[j] * xv
		}
		dst[i] = s0
		dst[i+1] = s1
		dst[i+2] = s2
		dst[i+3] = s3
	}
	for ; i < m.Rows; i++ {
		dst[i] = dotKernel(m.Data[i*c:i*c+c], x)
	}
}

// MatVec4 computes dK = mK * x for four equally shaped matrices in one
// interleaved pass: each element of x is loaded once per output row quad and
// feeds four independent accumulator chains, each in dotKernel's canonical
// sequential order so gate pre-activations match the batch path's GEMM
// (gateRun) bit for bit. This is the LSTM-style cell's gate kernel — the
// four gate weight matrices share the input [R_{t-1}, x].
//
// costlint:noalloc
func MatVec4(d0, d1, d2, d3 Vec, m0, m1, m2, m3 *Mat, x Vec) {
	rows, cols := m0.Rows, m0.Cols
	if m1.Rows != rows || m2.Rows != rows || m3.Rows != rows ||
		m1.Cols != cols || m2.Cols != cols || m3.Cols != cols {
		panic("tensor: MatVec4 matrix shape mismatch")
	}
	if len(d0) != rows || len(d1) != rows || len(d2) != rows || len(d3) != rows || len(x) != cols {
		panic("tensor: MatVec4 vector shape mismatch")
	}
	for i := 0; i < rows; i++ {
		r0 := m0.Data[i*cols : i*cols+cols]
		r1 := m1.Data[i*cols : i*cols+cols]
		r2 := m2.Data[i*cols : i*cols+cols]
		r3 := m3.Data[i*cols : i*cols+cols]
		var s0, s1, s2, s3 float64
		for j, xv := range x {
			s0 += r0[j] * xv
			s1 += r1[j] * xv
			s2 += r2[j] * xv
			s3 += r3[j] * xv
		}
		d0[i] = s0
		d1[i] = s1
		d2[i] = s2
		d3[i] = s3
	}
}

// MatVecAdd computes dst = m*x + b.
func MatVecAdd(dst Vec, m *Mat, x, b Vec) {
	MatVec(dst, m, x)
	AddTo(dst, b)
}

// MatTVec computes dst = mᵀ * x (used for input gradients). dst must have
// length m.Cols and x length m.Rows; dst must not alias x.
func MatTVec(dst Vec, m *Mat, x Vec) {
	if len(dst) != m.Cols || len(x) != m.Rows {
		panic(fmt.Sprintf("tensor: MatTVec shape mismatch: m %dx%d, x %d, dst %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		axpyKernel(xi, m.Data[i*m.Cols:(i+1)*m.Cols], dst)
	}
}

// AddOuter accumulates dst += a ⊗ b (outer product), the weight-gradient
// update for a linear layer with upstream gradient a and input b.
func AddOuter(dst *Mat, a, b Vec) {
	if len(a) != dst.Rows || len(b) != dst.Cols {
		panic(fmt.Sprintf("tensor: AddOuter shape mismatch: dst %dx%d, a %d, b %d", dst.Rows, dst.Cols, len(a), len(b)))
	}
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		row := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j, bj := range b {
			row[j] += ai * bj
		}
	}
}

// AddTo computes dst += src elementwise.
//
// costlint:noalloc
func AddTo(dst, src Vec) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: AddTo length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += v
	}
}

// AddScaled computes dst += alpha*src elementwise.
func AddScaled(dst Vec, alpha float64, src Vec) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: AddScaled length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += alpha * v
	}
}

// AddVecsInto accumulates dst += Σ srcs[k] elementwise. Each destination
// element is summed in strict left-to-right source order —
// ((dst[i] + srcs[0][i]) + srcs[1][i]) + … — so the result is a function of
// the argument order alone, never of how many goroutines produced the
// sources. This is the deterministic gradient-reduction kernel of the
// data-parallel trainer: per-shard gradient ParamSets are reduced into the
// shared optimizer state in fixed shard order, which is what makes training
// results invariant under the worker count. Sources are streamed in pairs so
// each destination element is loaded once per source pair.
//
// costlint:noalloc
func AddVecsInto(dst Vec, srcs ...Vec) {
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic(fmt.Sprintf("tensor: AddVecsInto length mismatch %d vs %d", len(dst), len(s)))
		}
	}
	k := 0
	for ; k+2 <= len(srcs); k += 2 {
		s0, s1 := srcs[k], srcs[k+1]
		s1 = s1[:len(s0)]
		for i, v := range s0 {
			// Left-to-right: (dst + s0) + s1 — the canonical ordered sum.
			dst[i] = dst[i] + v + s1[i]
		}
	}
	if k < len(srcs) {
		AddTo(dst, srcs[k])
	}
}

// Scale computes dst *= alpha elementwise.
func Scale(dst Vec, alpha float64) {
	for i := range dst {
		dst[i] *= alpha
	}
}

// MulTo computes dst *= src elementwise (Hadamard product).
func MulTo(dst, src Vec) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: MulTo length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] *= v
	}
}

// Copy copies src into dst.
func Copy(dst, src Vec) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Copy length mismatch %d vs %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// ZeroVec resets all elements of v to zero.
func ZeroVec(v Vec) {
	for i := range v {
		v[i] = 0
	}
}

// Dot returns the inner product of a and b.
//
// costlint:noalloc
func Dot(a, b Vec) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	return dotKernel(a, b)
}

// dotKernel is the canonical inner product: one accumulator summed in
// strictly ascending index order.
//
// Sequential order is the bit-level contract every forward-path kernel obeys
// for each output element: MatVec's row quads, MatVec4's interleaved gates
// and MatMulTransBInto's 2×2 register block all keep one sequential
// accumulator chain per output (their instruction-level parallelism comes
// from computing four outputs at once, not from splitting one sum), and
// their remainder rows/columns call dotKernel directly. An output element
// therefore depends only on its two operand vectors — never on which kernel
// computed it, its position inside a level, or how a batch was composed.
// That determinism is what lets the representation memory pool share
// entries between the single-plan and batched paths, and what lets the
// hot-swap serving tests replay any served estimate single-threaded and
// compare bit for bit. Do not "optimize" this into multiple accumulator
// chains without restructuring every blocked kernel to match.
//
// costlint:noalloc
func dotKernel(a, b Vec) float64 {
	b = b[:len(a)]
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Sum returns the sum of the elements of v, accumulated in strictly
// ascending index order — the same canonical single-chain order as
// dotKernel. Complete float64 reductions outside this package must route
// through Sum (or Dot) so that one accumulation order governs every
// order-sensitive result; the canonicaldot analyzer enforces this.
//
// costlint:noalloc
func Sum(v Vec) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// axpyKernel computes y += alpha*x with a 4-way unrolled loop.
//
// costlint:noalloc
func axpyKernel(alpha float64, x, y Vec) {
	y = y[:len(x)]
	n := len(x) &^ 3
	for i := 0; i < n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for i := n; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vec) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Concat writes the concatenation of parts into dst and returns the number of
// elements written. dst must be at least as long as the sum of part lengths.
func Concat(dst Vec, parts ...Vec) int {
	off := 0
	for _, p := range parts {
		n := copy(dst[off:], p)
		if n != len(p) {
			panic("tensor: Concat destination too short")
		}
		off += n
	}
	return off
}

// Mean computes dst = (a+b)/2 elementwise.
func Mean(dst, a, b Vec) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: Mean length mismatch")
	}
	for i := range dst {
		dst[i] = (a[i] + b[i]) / 2
	}
}

// MinInto computes dst = min(a, b) elementwise.
func MinInto(dst, a, b Vec) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: MinInto length mismatch")
	}
	for i := range dst {
		dst[i] = math.Min(a[i], b[i])
	}
}

// nzScratch recycles the zero-row bitmaps MatMulInto uses to skip sparse
// feature rows, keeping the kernel allocation-free at steady state.
var nzScratch = sync.Pool{New: func() any { return new([]bool) }}

// MatMulInto computes dst = a * b for row-major matrices (a: m×k, b: k×n,
// dst: m×n), overwriting dst. The ikj loop order streams b's rows, which is
// what makes level-batched evaluation beat repeated MatVec calls.
func MatMulInto(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch: a %dx%d, b %dx%d, dst %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	// Feature rows of b that are entirely zero (common for sparse one-hot
	// inputs) contribute nothing; skip them wholesale. The bitmap comes from
	// a pool so repeated calls don't allocate.
	nzp := nzScratch.Get().(*[]bool)
	nz := *nzp
	if cap(nz) < b.Rows {
		nz = make([]bool, b.Rows)
	}
	nz = nz[:b.Rows]
	for l := 0; l < b.Rows; l++ {
		nz[l] = false
		row := b.Data[l*b.Cols : (l+1)*b.Cols]
		for _, v := range row {
			if v != 0 {
				nz[l] = true
				break
			}
		}
	}
	for i := 0; i < a.Rows; i++ {
		aRow := a.Data[i*a.Cols : (i+1)*a.Cols]
		dRow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for l, av := range aRow {
			if av == 0 || !nz[l] {
				continue
			}
			axpyKernel(av, b.Data[l*b.Cols:(l+1)*b.Cols], dRow)
		}
	}
	*nzp = nz
	nzScratch.Put(nzp)
}

// AddColumn accumulates dst += scale * column j of m (dst length m.Rows).
// Sparse inputs (one-hot and bitmap features) turn a dense MatVec into a few
// column adds.
func AddColumn(dst Vec, m *Mat, j int, scale float64) {
	for i := 0; i < m.Rows; i++ {
		dst[i] += scale * m.Data[i*m.Cols+j]
	}
}

// AddToColumn accumulates column j of m += scale * v (v length m.Rows) —
// the gradient-side mirror of AddColumn: a linear layer's weight gradient
// against a sparse input touches only the columns of the set bits.
func AddToColumn(m *Mat, j int, scale float64, v Vec) {
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] += scale * v[i]
	}
}

// MatMulTransBInto computes dst = a * bᵀ for row-major matrices
// (a: m×k, bt: n×k, dst: m×n). Both operands stream contiguous rows — the
// cache-friendly kernel for level-batched evaluation, where bt holds one
// node's input per row.
func MatMulTransBInto(dst, a, bt *Mat) {
	if a.Cols != bt.Cols || dst.Rows != a.Rows || dst.Cols != bt.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shape mismatch: a %dx%d, bt %dx%d, dst %dx%d",
			a.Rows, a.Cols, bt.Rows, bt.Cols, dst.Rows, dst.Cols))
	}
	k := a.Cols
	n := bt.Rows
	// 2×2 register blocking: each pass over k feeds four dot products, so
	// every loaded element of a and bt is used twice. Each of the four
	// accumulators sums in dotKernel's canonical sequential order, so a
	// blocked element is bit-identical to the remainder path's dotKernel —
	// results never depend on where an element falls in the blocking or how
	// large a level was.
	i := 0
	for ; i+2 <= a.Rows; i += 2 {
		a0 := a.Data[i*k : i*k+k]
		a1 := a.Data[(i+1)*k : (i+1)*k+k]
		d0 := dst.Data[i*dst.Cols : i*dst.Cols+n]
		d1 := dst.Data[(i+1)*dst.Cols : (i+1)*dst.Cols+n]
		j := 0
		for ; j+2 <= n; j += 2 {
			b0 := bt.Data[j*k : j*k+k]
			b1 := bt.Data[(j+1)*k : (j+1)*k+k]
			var s00, s01, s10, s11 float64
			for l, av0 := range a0 {
				av1 := a1[l]
				bv0 := b0[l]
				bv1 := b1[l]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s10 += av1 * bv0
				s11 += av1 * bv1
			}
			d0[j] = s00
			d0[j+1] = s01
			d1[j] = s10
			d1[j+1] = s11
		}
		if j < n {
			bRow := bt.Data[j*k : j*k+k]
			d0[j] = dotKernel(a0, bRow)
			d1[j] = dotKernel(a1, bRow)
		}
	}
	if i < a.Rows {
		aRow := a.Data[i*k : i*k+k]
		dRow := dst.Data[i*dst.Cols : i*dst.Cols+n]
		for j := 0; j < n; j++ {
			dRow[j] = dotKernel(aRow, bt.Data[j*k:j*k+k])
		}
	}
}

// axpy2Kernel computes y += a0*x0 + a1*x1 with a 4-way unrolled loop — the
// shared inner kernel of the accumulate-GEMMs, which process two source rows
// per pass so every destination element is loaded once per row pair.
func axpy2Kernel(a0 float64, x0 Vec, a1 float64, x1 Vec, y Vec) {
	x1 = x1[:len(x0)]
	y = y[:len(x0)]
	n := len(x0) &^ 3
	for i := 0; i < n; i += 4 {
		y[i] += a0*x0[i] + a1*x1[i]
		y[i+1] += a0*x0[i+1] + a1*x1[i+1]
		y[i+2] += a0*x0[i+2] + a1*x1[i+2]
		y[i+3] += a0*x0[i+3] + a1*x1[i+3]
	}
	for i := n; i < len(x0); i++ {
		y[i] += a0*x0[i] + a1*x1[i]
	}
}

// AddMatMulInto accumulates dst += a * b for row-major matrices (a: m×k,
// b: k×n, dst: m×n). This is the input-gradient GEMM of the level-wise
// backward pass: dZ += dGates·W with one node per row of a and dst. The
// 2×2 blocking mirrors MatMulTransBInto — two rows of a advance together
// through k, so each streamed row of b feeds two destination rows.
func AddMatMulInto(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: AddMatMulInto shape mismatch: a %dx%d, b %dx%d, dst %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	k := a.Cols
	i := 0
	for ; i+2 <= a.Rows; i += 2 {
		a0 := a.Data[i*k : i*k+k]
		a1 := a.Data[(i+1)*k : (i+1)*k+k]
		d0 := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		d1 := dst.Data[(i+1)*dst.Cols : (i+2)*dst.Cols]
		l := 0
		for ; l+2 <= k; l += 2 {
			b0 := b.Data[l*b.Cols : (l+1)*b.Cols]
			b1 := b.Data[(l+1)*b.Cols : (l+2)*b.Cols]
			axpy2Kernel(a0[l], b0, a0[l+1], b1, d0)
			axpy2Kernel(a1[l], b0, a1[l+1], b1, d1)
		}
		if l < k {
			bRow := b.Data[l*b.Cols : (l+1)*b.Cols]
			axpyKernel(a0[l], bRow, d0)
			axpyKernel(a1[l], bRow, d1)
		}
	}
	if i < a.Rows {
		aRow := a.Data[i*k : i*k+k]
		dRow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for l, av := range aRow {
			if av == 0 {
				continue
			}
			axpyKernel(av, b.Data[l*b.Cols:(l+1)*b.Cols], dRow)
		}
	}
}

// MatMulTransAInto accumulates dst += aᵀ * b for row-major matrices
// (a: k×m, b: k×n, dst: m×n). This is the weight-gradient GEMM of the
// level-wise backward pass: with one node per row of a (upstream gate
// gradients) and b (layer inputs), dW += dGᵀ·Z sums every node's outer
// product in a single cache-friendly sweep. Two rows of a/b are processed
// per pass (the 2×2 blocking of MatMulTransBInto transposed), and zero
// gradient pairs skip their row updates — sparse upstream gradients (ReLU
// kills, unsupervised heads) cost nothing.
func MatMulTransAInto(dst, a, b *Mat) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shape mismatch: a %dx%d, b %dx%d, dst %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	m := a.Cols
	l := 0
	for ; l+2 <= a.Rows; l += 2 {
		aRow0 := a.Data[l*m : (l+1)*m]
		aRow1 := a.Data[(l+1)*m : (l+2)*m]
		bRow0 := b.Data[l*b.Cols : (l+1)*b.Cols]
		bRow1 := b.Data[(l+1)*b.Cols : (l+2)*b.Cols]
		for i := 0; i < m; i++ {
			a0, a1 := aRow0[i], aRow1[i]
			if a0 == 0 && a1 == 0 {
				continue
			}
			axpy2Kernel(a0, bRow0, a1, bRow1, dst.Data[i*dst.Cols:(i+1)*dst.Cols])
		}
	}
	if l < a.Rows {
		aRow := a.Data[l*m : (l+1)*m]
		bRow := b.Data[l*b.Cols : (l+1)*b.Cols]
		for i, av := range aRow {
			if av == 0 {
				continue
			}
			axpyKernel(av, bRow, dst.Data[i*dst.Cols:(i+1)*dst.Cols])
		}
	}
}

// AddColumnSums accumulates dst[j] += Σ_i m[i,j] — the bias-gradient
// companion of MatMulTransAInto (summing a level's per-node gate gradients).
func AddColumnSums(dst Vec, m *Mat) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: AddColumnSums length mismatch: dst %d, m %dx%d", len(dst), m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		AddTo(dst, m.Data[i*m.Cols:(i+1)*m.Cols])
	}
}

// MaxInto computes dst = max(a, b) elementwise.
func MaxInto(dst, a, b Vec) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: MaxInto length mismatch")
	}
	for i := range dst {
		dst[i] = math.Max(a[i], b[i])
	}
}
