// Package tensor provides the small dense linear-algebra kernel that the
// neural-network stack is built on: vectors, row-major matrices, matrix-vector
// products, outer-product accumulation and elementwise operations.
//
// Everything is float64 and allocation-conscious: all hot-path functions take
// destination slices so training loops can preallocate buffers.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec is a dense float64 vector.
type Vec = []float64

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Mat is a dense row-major matrix: element (i, j) is Data[i*Cols+j].
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Mat) Row(i int) Vec { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to zero.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// XavierInit fills m with uniform Xavier/Glorot initialization using rng,
// which keeps forward/backward variance stable for tanh/sigmoid layers.
func (m *Mat) XavierInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// KaimingInit fills m with scaled normal init suited to ReLU layers.
func (m *Mat) KaimingInit(rng *rand.Rand) {
	std := math.Sqrt(2.0 / float64(m.Cols))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// MatVec computes dst = m * x. dst must have length m.Rows and x length
// m.Cols; dst must not alias x.
func MatVec(dst Vec, m *Mat, x Vec) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch: m %dx%d, x %d, dst %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MatVecAdd computes dst = m*x + b.
func MatVecAdd(dst Vec, m *Mat, x, b Vec) {
	MatVec(dst, m, x)
	AddTo(dst, b)
}

// MatTVec computes dst = mᵀ * x (used for input gradients). dst must have
// length m.Cols and x length m.Rows; dst must not alias x.
func MatTVec(dst Vec, m *Mat, x Vec) {
	if len(dst) != m.Cols || len(x) != m.Rows {
		panic(fmt.Sprintf("tensor: MatTVec shape mismatch: m %dx%d, x %d, dst %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// AddOuter accumulates dst += a ⊗ b (outer product), the weight-gradient
// update for a linear layer with upstream gradient a and input b.
func AddOuter(dst *Mat, a, b Vec) {
	if len(a) != dst.Rows || len(b) != dst.Cols {
		panic(fmt.Sprintf("tensor: AddOuter shape mismatch: dst %dx%d, a %d, b %d", dst.Rows, dst.Cols, len(a), len(b)))
	}
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		row := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j, bj := range b {
			row[j] += ai * bj
		}
	}
}

// AddTo computes dst += src elementwise.
func AddTo(dst, src Vec) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: AddTo length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += v
	}
}

// AddScaled computes dst += alpha*src elementwise.
func AddScaled(dst Vec, alpha float64, src Vec) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: AddScaled length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += alpha * v
	}
}

// Scale computes dst *= alpha elementwise.
func Scale(dst Vec, alpha float64) {
	for i := range dst {
		dst[i] *= alpha
	}
}

// MulTo computes dst *= src elementwise (Hadamard product).
func MulTo(dst, src Vec) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: MulTo length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] *= v
	}
}

// Copy copies src into dst.
func Copy(dst, src Vec) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Copy length mismatch %d vs %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// ZeroVec resets all elements of v to zero.
func ZeroVec(v Vec) {
	for i := range v {
		v[i] = 0
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b Vec) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vec) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Concat writes the concatenation of parts into dst and returns the number of
// elements written. dst must be at least as long as the sum of part lengths.
func Concat(dst Vec, parts ...Vec) int {
	off := 0
	for _, p := range parts {
		n := copy(dst[off:], p)
		if n != len(p) {
			panic("tensor: Concat destination too short")
		}
		off += n
	}
	return off
}

// Mean computes dst = (a+b)/2 elementwise.
func Mean(dst, a, b Vec) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: Mean length mismatch")
	}
	for i := range dst {
		dst[i] = (a[i] + b[i]) / 2
	}
}

// MinInto computes dst = min(a, b) elementwise.
func MinInto(dst, a, b Vec) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: MinInto length mismatch")
	}
	for i := range dst {
		dst[i] = math.Min(a[i], b[i])
	}
}

// MatMulInto computes dst = a * b for row-major matrices (a: m×k, b: k×n,
// dst: m×n), overwriting dst. The ikj loop order streams b's rows, which is
// what makes level-batched evaluation beat repeated MatVec calls.
func MatMulInto(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch: a %dx%d, b %dx%d, dst %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	// Feature rows of b that are entirely zero (common for sparse one-hot
	// inputs) contribute nothing; skip them wholesale.
	nz := make([]bool, b.Rows)
	for l := 0; l < b.Rows; l++ {
		row := b.Data[l*b.Cols : (l+1)*b.Cols]
		for _, v := range row {
			if v != 0 {
				nz[l] = true
				break
			}
		}
	}
	for i := 0; i < a.Rows; i++ {
		aRow := a.Data[i*a.Cols : (i+1)*a.Cols]
		dRow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for l, av := range aRow {
			if av == 0 || !nz[l] {
				continue
			}
			bRow := b.Data[l*b.Cols : (l+1)*b.Cols]
			for j, bv := range bRow {
				dRow[j] += av * bv
			}
		}
	}
}

// AddColumn accumulates dst += scale * column j of m (dst length m.Rows).
// Sparse inputs (one-hot and bitmap features) turn a dense MatVec into a few
// column adds.
func AddColumn(dst Vec, m *Mat, j int, scale float64) {
	for i := 0; i < m.Rows; i++ {
		dst[i] += scale * m.Data[i*m.Cols+j]
	}
}

// MatMulTransBInto computes dst = a * bᵀ for row-major matrices
// (a: m×k, bt: n×k, dst: m×n). Both operands stream contiguous rows — the
// cache-friendly kernel for level-batched evaluation, where bt holds one
// node's input per row.
func MatMulTransBInto(dst, a, bt *Mat) {
	if a.Cols != bt.Cols || dst.Rows != a.Rows || dst.Cols != bt.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shape mismatch: a %dx%d, bt %dx%d, dst %dx%d",
			a.Rows, a.Cols, bt.Rows, bt.Cols, dst.Rows, dst.Cols))
	}
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		aRow := a.Data[i*k : (i+1)*k]
		dRow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := 0; j < bt.Rows; j++ {
			bRow := bt.Data[j*k : (j+1)*k]
			var s float64
			for l, av := range aRow {
				s += av * bRow[l]
			}
			dRow[j] = s
		}
	}
}

// MaxInto computes dst = max(a, b) elementwise.
func MaxInto(dst, a, b Vec) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: MaxInto length mismatch")
	}
	for i := range dst {
		dst[i] = math.Max(a[i], b[i])
	}
}
