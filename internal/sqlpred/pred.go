// Package sqlpred defines filter-predicate ASTs — atomic comparisons over
// numeric and string columns combined with AND/OR — together with their
// evaluation and the depth-first linearization used by the feature encoder
// (Figure 4 of the paper).
package sqlpred

import (
	"fmt"
	"strings"
)

// Op is a comparison operator in an atomic predicate.
type Op int

// Operators. The paper draws numeric operators from {>,<,=,!=} and string
// operators from {=,!=,LIKE,NOT LIKE,IN}; <=/>= are included for
// completeness of the library API.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpGt
	OpLe
	OpGe
	OpLike
	OpNotLike
	OpIn
	NumOps // size of the operator one-hot space
)

var opNames = [...]string{"=", "!=", "<", ">", "<=", ">=", "LIKE", "NOT LIKE", "IN"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Pred is a predicate tree node: either *Atom or *Bool.
type Pred interface {
	fmt.Stringer
	isPred()
}

// Atom is an atomic predicate ⟨column, operator, operand⟩ on a single table.
type Atom struct {
	Table  string
	Column string
	Op     Op
	// Exactly one operand family is used depending on the column type:
	NumVal float64  // numeric comparisons
	StrVal string   // string =/!=/LIKE/NOT LIKE (LIKE patterns use %)
	InVals []string // IN lists
	IsStr  bool     // operand kind
}

func (*Atom) isPred() {}

func (a *Atom) String() string {
	switch {
	case a.Op == OpIn:
		return fmt.Sprintf("%s.%s IN (%s)", a.Table, a.Column, strings.Join(a.InVals, ", "))
	case a.IsStr:
		return fmt.Sprintf("%s.%s %s '%s'", a.Table, a.Column, a.Op, a.StrVal)
	default:
		return fmt.Sprintf("%s.%s %s %g", a.Table, a.Column, a.Op, a.NumVal)
	}
}

// BoolKind is the connective of a compound predicate.
type BoolKind int

// Connectives. The paper's predicate embedding replaces AND with min pooling
// and OR with max pooling (Section 4.2.1).
const (
	And BoolKind = iota
	Or
)

func (k BoolKind) String() string {
	if k == And {
		return "AND"
	}
	return "OR"
}

// Bool is a binary AND/OR node.
type Bool struct {
	Kind        BoolKind
	Left, Right Pred
}

func (*Bool) isPred() {}

func (b *Bool) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Left, b.Kind, b.Right)
}

// Tables returns the distinct table names referenced by p, in first-seen
// order.
func Tables(p Pred) []string {
	var out []string
	seen := map[string]bool{}
	Walk(p, func(a *Atom) {
		if !seen[a.Table] {
			seen[a.Table] = true
			out = append(out, a.Table)
		}
	})
	return out
}

// Walk visits every atom of p in DFS (left-to-right) order.
func Walk(p Pred, f func(*Atom)) {
	switch n := p.(type) {
	case *Atom:
		f(n)
	case *Bool:
		Walk(n.Left, f)
		Walk(n.Right, f)
	case nil:
	default:
		panic(fmt.Sprintf("sqlpred: unknown node %T", p))
	}
}

// CountAtoms returns the number of atomic predicates in p.
func CountAtoms(p Pred) int {
	n := 0
	Walk(p, func(*Atom) { n++ })
	return n
}

// Depth returns the height of the predicate tree (an atom has depth 1).
func Depth(p Pred) int {
	switch n := p.(type) {
	case *Atom:
		return 1
	case *Bool:
		l, r := Depth(n.Left), Depth(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	case nil:
		return 0
	}
	return 0
}

// AndAll combines preds with left-deep AND nodes; nil for an empty slice.
func AndAll(preds ...Pred) Pred {
	return combine(And, preds)
}

// OrAll combines preds with left-deep OR nodes; nil for an empty slice.
func OrAll(preds ...Pred) Pred {
	return combine(Or, preds)
}

func combine(kind BoolKind, preds []Pred) Pred {
	var out Pred
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &Bool{Kind: kind, Left: out, Right: p}
		}
	}
	return out
}

// LikeMatch reports whether s matches the LIKE pattern, where '%' matches
// any (possibly empty) substring. '_' is not supported; the workloads in the
// paper only use '%'.
func LikeMatch(pattern, s string) bool {
	parts := strings.Split(pattern, "%")
	if len(parts) == 1 {
		return s == pattern
	}
	// Anchored prefix.
	if parts[0] != "" {
		if !strings.HasPrefix(s, parts[0]) {
			return false
		}
		s = s[len(parts[0]):]
	}
	// Anchored suffix.
	last := parts[len(parts)-1]
	if last != "" {
		if !strings.HasSuffix(s, last) {
			return false
		}
		s = s[:len(s)-len(last)]
	}
	// Middle parts must appear in order.
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		i := strings.Index(s, mid)
		if i < 0 {
			return false
		}
		s = s[i+len(mid):]
	}
	return true
}

// EvalAtomInt evaluates a numeric atom against value v.
func EvalAtomInt(a *Atom, v int64) bool {
	x := float64(v)
	switch a.Op {
	case OpEq:
		return x == a.NumVal
	case OpNe:
		return x != a.NumVal
	case OpLt:
		return x < a.NumVal
	case OpGt:
		return x > a.NumVal
	case OpLe:
		return x <= a.NumVal
	case OpGe:
		return x >= a.NumVal
	default:
		return false
	}
}

// EvalAtomStr evaluates a string atom against value v.
func EvalAtomStr(a *Atom, v string) bool {
	switch a.Op {
	case OpEq:
		return v == a.StrVal
	case OpNe:
		return v != a.StrVal
	case OpLike:
		return LikeMatch(a.StrVal, v)
	case OpNotLike:
		return !LikeMatch(a.StrVal, v)
	case OpIn:
		for _, s := range a.InVals {
			if v == s {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// ColumnAccessor provides column vectors for predicate compilation. A nil
// slice means the column does not exist with that type.
type ColumnAccessor interface {
	IntColumn(name string) []int64
	StrColumn(name string) []string
}

// Compile lowers a single-table predicate into a row-index filter over the
// accessor's column vectors. Every atom must reference the given table.
func Compile(p Pred, table string, acc ColumnAccessor) (func(row int) bool, error) {
	switch n := p.(type) {
	case nil:
		return func(int) bool { return true }, nil
	case *Atom:
		if n.Table != table {
			return nil, fmt.Errorf("sqlpred: atom on %s.%s compiled against table %s", n.Table, n.Column, table)
		}
		if n.IsStr {
			col := acc.StrColumn(n.Column)
			if col == nil {
				return nil, fmt.Errorf("sqlpred: no string column %s.%s", table, n.Column)
			}
			a := n
			switch a.Op {
			case OpEq:
				v := a.StrVal
				return func(row int) bool { return col[row] == v }, nil
			case OpNe:
				v := a.StrVal
				return func(row int) bool { return col[row] != v }, nil
			default:
				return func(row int) bool { return EvalAtomStr(a, col[row]) }, nil
			}
		}
		col := acc.IntColumn(n.Column)
		if col == nil {
			return nil, fmt.Errorf("sqlpred: no int column %s.%s", table, n.Column)
		}
		a := n
		return func(row int) bool { return EvalAtomInt(a, col[row]) }, nil
	case *Bool:
		l, err := Compile(n.Left, table, acc)
		if err != nil {
			return nil, err
		}
		r, err := Compile(n.Right, table, acc)
		if err != nil {
			return nil, err
		}
		if n.Kind == And {
			return func(row int) bool { return l(row) && r(row) }, nil
		}
		return func(row int) bool { return l(row) || r(row) }, nil
	default:
		return nil, fmt.Errorf("sqlpred: unknown node %T", p)
	}
}
