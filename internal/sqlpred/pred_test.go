package sqlpred

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func atomNum(table, col string, op Op, v float64) *Atom {
	return &Atom{Table: table, Column: col, Op: op, NumVal: v}
}

func atomStr(table, col string, op Op, v string) *Atom {
	return &Atom{Table: table, Column: col, Op: op, StrVal: v, IsStr: true}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"Din%", "Dinos in Kas", true},
		{"Din%", "Schla in Tra", false},
		{"%06%", "(2002-06-29)", true},
		{"%06%", "(2014-08-26)", false},
		{"%(co-production)%", "x (co-production) y", true},
		{"%(co-production)%", "(coproduction)", false},
		{"%rank", "top 250 rank", true},
		{"%rank", "rank top", false},
		{"abc", "abc", true},
		{"abc", "abcd", false},
		{"%", "", true},
		{"%", "anything", true},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "acb", false},
		{"%a%a%", "aa", true},
		{"%a%a%", "a", false},
	}
	for _, c := range cases {
		if got := LikeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("LikeMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

// Property: prefix pattern p% matches exactly strings with that prefix.
func TestLikePrefixProperty(t *testing.T) {
	f := func(prefix, rest string) bool {
		prefix = strings.ReplaceAll(prefix, "%", "")
		rest = strings.ReplaceAll(rest, "%", "")
		return LikeMatch(prefix+"%", prefix+rest) &&
			(LikeMatch(prefix+"%", rest) == strings.HasPrefix(rest, prefix))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvalAtomInt(t *testing.T) {
	cases := []struct {
		op   Op
		v    int64
		want bool
	}{
		{OpEq, 5, true}, {OpEq, 6, false},
		{OpNe, 5, false}, {OpNe, 4, true},
		{OpLt, 4, true}, {OpLt, 5, false},
		{OpGt, 6, true}, {OpGt, 5, false},
		{OpLe, 5, true}, {OpGe, 5, true},
	}
	for _, c := range cases {
		a := atomNum("t", "c", c.op, 5)
		if got := EvalAtomInt(a, c.v); got != c.want {
			t.Errorf("EvalAtomInt(%s, %d) = %v, want %v", c.op, c.v, got, c.want)
		}
	}
}

func TestEvalAtomStr(t *testing.T) {
	if !EvalAtomStr(atomStr("t", "c", OpEq, "x"), "x") {
		t.Error("= failed")
	}
	if EvalAtomStr(atomStr("t", "c", OpNe, "x"), "x") {
		t.Error("!= failed")
	}
	if !EvalAtomStr(atomStr("t", "c", OpLike, "%ab%"), "zabz") {
		t.Error("LIKE failed")
	}
	if !EvalAtomStr(atomStr("t", "c", OpNotLike, "%ab%"), "zz") {
		t.Error("NOT LIKE failed")
	}
	in := &Atom{Table: "t", Column: "c", Op: OpIn, InVals: []string{"a", "b"}, IsStr: true}
	if !EvalAtomStr(in, "b") || EvalAtomStr(in, "c") {
		t.Error("IN failed")
	}
}

type fakeAccessor struct {
	ints map[string][]int64
	strs map[string][]string
}

func (f fakeAccessor) IntColumn(name string) []int64  { return f.ints[name] }
func (f fakeAccessor) StrColumn(name string) []string { return f.strs[name] }

func TestCompile(t *testing.T) {
	acc := fakeAccessor{
		ints: map[string][]int64{"year": {1990, 2000, 2010, 2020}},
		strs: map[string][]string{"note": {"(presents)", "(co-production)", "", "(presents)"}},
	}
	p := AndAll(
		atomNum("t", "year", OpGt, 1995),
		atomStr("t", "note", OpLike, "%presents%"),
	)
	fn, err := Compile(p, "t", acc)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, false, true}
	for i, w := range want {
		if fn(i) != w {
			t.Errorf("row %d = %v, want %v", i, fn(i), w)
		}
	}
}

func TestCompileOr(t *testing.T) {
	acc := fakeAccessor{ints: map[string][]int64{"x": {1, 2, 3}}}
	p := OrAll(atomNum("t", "x", OpEq, 1), atomNum("t", "x", OpEq, 3))
	fn, err := Compile(p, "t", acc)
	if err != nil {
		t.Fatal(err)
	}
	if !fn(0) || fn(1) || !fn(2) {
		t.Error("OR compile wrong")
	}
}

func TestCompileNilPredicate(t *testing.T) {
	fn, err := Compile(nil, "t", fakeAccessor{})
	if err != nil {
		t.Fatal(err)
	}
	if !fn(0) {
		t.Error("nil predicate must accept everything")
	}
}

func TestCompileErrors(t *testing.T) {
	acc := fakeAccessor{}
	if _, err := Compile(atomNum("other", "x", OpEq, 1), "t", acc); err == nil {
		t.Error("cross-table atom must fail")
	}
	if _, err := Compile(atomNum("t", "missing", OpEq, 1), "t", acc); err == nil {
		t.Error("missing column must fail")
	}
}

func TestTablesAndCounts(t *testing.T) {
	p := AndAll(
		atomNum("a", "x", OpGt, 1),
		OrAll(atomNum("b", "y", OpLt, 2), atomNum("a", "z", OpEq, 3)),
	)
	tabs := Tables(p)
	if len(tabs) != 2 || tabs[0] != "a" || tabs[1] != "b" {
		t.Fatalf("Tables = %v", tabs)
	}
	if CountAtoms(p) != 3 {
		t.Fatalf("CountAtoms = %d", CountAtoms(p))
	}
	if Depth(p) != 3 {
		t.Fatalf("Depth = %d", Depth(p))
	}
}

// randPred builds a random predicate tree of the given depth budget.
func randPred(rng *rand.Rand, depth int) Pred {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return atomNum("t", "c", Op(rng.Intn(6)), float64(rng.Intn(100)))
		}
		return atomStr("t", "s", OpLike, "%v%")
	}
	kind := And
	if rng.Intn(2) == 0 {
		kind = Or
	}
	return &Bool{Kind: kind, Left: randPred(rng, depth-1), Right: randPred(rng, depth-1)}
}

func predEqual(a, b Pred) bool {
	switch x := a.(type) {
	case *Atom:
		y, ok := b.(*Atom)
		return ok && x.String() == y.String()
	case *Bool:
		y, ok := b.(*Bool)
		return ok && x.Kind == y.Kind && predEqual(x.Left, y.Left) && predEqual(x.Right, y.Right)
	case nil:
		return b == nil
	}
	return false
}

// Property: DFS linearization round-trips (the paper's one-to-one mapping).
func TestDFSRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPred(rng, 1+rng.Intn(4))
		seq := Linearize(p)
		back, ok := Delinearize(seq)
		return ok && predEqual(p, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct trees produce distinct sequences (injective mapping).
func TestDFSInjectiveOnStructure(t *testing.T) {
	a := atomNum("t", "c", OpEq, 1)
	b := atomNum("t", "c", OpEq, 2)
	c := atomNum("t", "c", OpEq, 3)
	// (a AND b) AND c vs a AND (b AND c) — same atom multiset, different shape.
	p1 := &Bool{Kind: And, Left: &Bool{Kind: And, Left: a, Right: b}, Right: c}
	p2 := &Bool{Kind: And, Left: a, Right: &Bool{Kind: And, Left: b, Right: c}}
	s1, s2 := Linearize(p1), Linearize(p2)
	same := len(s1) == len(s2)
	if same {
		for i := range s1 {
			if s1[i].Kind != s2[i].Kind || (s1[i].Kind == DFSAtom && s1[i].Atom != s2[i].Atom) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different tree shapes produced identical DFS sequences")
	}
}

func TestLinearizeMatchesFigure4Shape(t *testing.T) {
	// Figure 4: AND(OR(AND(p1,p2), AND(p3,p4)), p5) linearizes to
	// AND OR AND p1 _ p2 _ _ AND p3 _ p4 _ _ _ p5 _ (with _ = padding).
	p1 := atomNum("t", "season_nr", OpGt, 4)
	p2 := atomNum("t", "season_nr", OpLt, 12)
	p3 := atomNum("t", "season_nr", OpLt, 4)
	p4 := atomNum("t", "episode_nr", OpGt, 37)
	p5 := atomNum("t", "production_year", OpGt, 1922)
	tree := &Bool{Kind: And,
		Left: &Bool{Kind: Or,
			Left:  &Bool{Kind: And, Left: p1, Right: p2},
			Right: &Bool{Kind: And, Left: p3, Right: p4},
		},
		Right: p5,
	}
	seq := Linearize(tree)
	kinds := make([]DFSKind, len(seq))
	for i, n := range seq {
		kinds[i] = n.Kind
	}
	want := []DFSKind{
		DFSBool, DFSBool, DFSBool, DFSAtom, DFSPad, DFSAtom, DFSPad, DFSPad,
		DFSBool, DFSAtom, DFSPad, DFSAtom, DFSPad, DFSPad, DFSPad, DFSAtom, DFSPad,
	}
	if len(kinds) != len(want) {
		t.Fatalf("sequence length %d, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("position %d kind %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestAndAllOrAll(t *testing.T) {
	if AndAll() != nil {
		t.Error("empty AndAll should be nil")
	}
	a := atomNum("t", "c", OpEq, 1)
	if AndAll(a) != Pred(a) {
		t.Error("single AndAll should return the atom")
	}
	p := OrAll(a, a, a)
	if CountAtoms(p) != 3 || Depth(p) != 3 {
		t.Errorf("OrAll tree wrong: %v", p)
	}
}
