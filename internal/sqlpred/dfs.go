package sqlpred

// DFSNode is one element of the depth-first linearization of a predicate
// tree. Following Figure 4 of the paper, the tree is turned into a unique
// sequence by appending an explicit padding element for every backtracking
// step, which makes the encoding a one-to-one mapping.
type DFSNode struct {
	Kind DFSKind
	Bool BoolKind // valid when Kind == DFSBool
	Atom *Atom    // valid when Kind == DFSAtom
}

// DFSKind tags the kind of a linearized node.
type DFSKind int

// Linearized node kinds.
const (
	DFSAtom DFSKind = iota
	DFSBool
	DFSPad // backtracking marker ("None" in Figure 4)
)

// Linearize converts a predicate tree into its DFS sequence with backtrack
// padding. A nil predicate yields an empty sequence.
func Linearize(p Pred) []DFSNode {
	var seq []DFSNode
	var rec func(Pred)
	rec = func(n Pred) {
		switch v := n.(type) {
		case *Atom:
			seq = append(seq, DFSNode{Kind: DFSAtom, Atom: v})
		case *Bool:
			seq = append(seq, DFSNode{Kind: DFSBool, Bool: v.Kind})
			rec(v.Left)
			seq = append(seq, DFSNode{Kind: DFSPad})
			rec(v.Right)
			seq = append(seq, DFSNode{Kind: DFSPad})
		}
	}
	if p != nil {
		rec(p)
	}
	return seq
}

// Delinearize reconstructs the predicate tree from a DFS sequence produced
// by Linearize, proving the mapping is one-to-one. It returns nil for an
// empty sequence and false if the sequence is malformed.
func Delinearize(seq []DFSNode) (Pred, bool) {
	pos := 0
	var rec func() (Pred, bool)
	rec = func() (Pred, bool) {
		if pos >= len(seq) {
			return nil, false
		}
		n := seq[pos]
		pos++
		switch n.Kind {
		case DFSAtom:
			return n.Atom, true
		case DFSBool:
			left, ok := rec()
			if !ok {
				return nil, false
			}
			if pos >= len(seq) || seq[pos].Kind != DFSPad {
				return nil, false
			}
			pos++
			right, ok := rec()
			if !ok {
				return nil, false
			}
			if pos >= len(seq) || seq[pos].Kind != DFSPad {
				return nil, false
			}
			pos++
			return &Bool{Kind: n.Bool, Left: left, Right: right}, true
		default:
			return nil, false
		}
	}
	if len(seq) == 0 {
		return nil, true
	}
	p, ok := rec()
	if !ok || pos != len(seq) {
		return nil, false
	}
	return p, true
}
