package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"costest/internal/core"
	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/feature"
	"costest/internal/pg"
	"costest/internal/plan"
	"costest/internal/planner"
	"costest/internal/stats"
	"costest/internal/strembed"
	"costest/internal/workload"
)

var (
	testDB  = dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.02})
	testCat = stats.Collect(testDB, stats.Options{Buckets: 30, SampleSize: 48, Seed: 1})
	testEng = exec.NewEngine(testDB)
	testPl  = planner.New(pg.New(testCat), testDB.Schema)
	testEnc = feature.NewEncoder(testCat, strembed.HashEmbedder{DimN: 12}, true)
)

// testCorpus labels a small plan corpus and returns both the physical plans
// (for wire-format tests) and their encodings.
func testCorpus(tb testing.TB, seed int64, n int) ([]*plan.Node, []*feature.EncodedPlan) {
	tb.Helper()
	lab := &workload.Labeler{Planner: testPl, Engine: testEng}
	samples := lab.Label(workload.TrainingStrings(testDB, seed, n))
	plans := make([]*plan.Node, 0, len(samples))
	eps := make([]*feature.EncodedPlan, 0, len(samples))
	for _, s := range samples {
		ep, err := testEnc.Encode(s.Plan)
		if err != nil {
			tb.Fatalf("encode: %v", err)
		}
		plans = append(plans, s.Plan)
		eps = append(eps, ep)
	}
	if len(eps) < n/2 {
		tb.Fatalf("only %d/%d samples labeled", len(eps), n)
	}
	return plans, eps
}

// testServer builds a trained server plus its trainer (for publish-churn
// tests) over a generation-tagged bounded pool.
func testServer(tb testing.TB, eps []*feature.EncodedPlan) (*core.Server, *core.Trainer) {
	tb.Helper()
	m := core.New(core.TestConfig(), testEnc)
	tr := core.NewTrainer(m)
	tr.FitNormalizers(eps)
	tr.TrainEpochBatched(eps, 8, 1)
	srv := core.NewServer(m, core.NewBoundedMemoryPool(2048))
	return srv, tr
}

// waitDepth polls until the scheduler's queue holds want requests (the
// deterministic way to stage coalescing tests against an unstarted
// dispatcher).
func waitDepth(tb testing.TB, s *Scheduler, want int) {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().QueueDepth != want {
		if time.Now().After(deadline) {
			tb.Fatalf("queue depth never reached %d (at %d)", want, s.Stats().QueueDepth)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestSchedulerCoalescesIntoOneBatch stages 16 concurrent requests against a
// stopped dispatcher, then starts it: everything already queued must be
// served by a single EstimateBatch call, each response bit-identical to a
// single-threaded evaluation of the served snapshot and stamped with its
// version.
func TestSchedulerCoalescesIntoOneBatch(t *testing.T) {
	_, eps := testCorpus(t, 101, 20)
	srv, _ := testServer(t, eps)
	s := NewScheduler(srv, SchedulerConfig{QueueDepth: 32, MaxBatch: 32, Workers: 2})

	const n = 16
	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Submit(context.Background(), eps[i%len(eps)])
		}(i)
	}
	waitDepth(t, s, n)
	s.Start()
	wg.Wait()
	defer s.Close()

	snap := srv.Snapshot()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if results[i].Version != snap.Version() {
			t.Fatalf("request %d served version %d, want %d", i, results[i].Version, snap.Version())
		}
		c, d := snap.Model().Estimate(eps[i%len(eps)])
		if results[i].Cost != c || results[i].Card != d {
			t.Fatalf("request %d: batched estimate (%g,%g) != single-threaded (%g,%g)",
				i, results[i].Cost, results[i].Card, c, d)
		}
	}
	st := s.Stats()
	if st.Batches != 1 || st.MeanBatch != n {
		t.Fatalf("16 staged requests dispatched as %d batches (mean %.1f), want 1 of %d",
			st.Batches, st.MeanBatch, n)
	}
	if st.Served != n || st.Admitted != n {
		t.Fatalf("stats = %+v, want %d admitted and served", st, n)
	}
}

// TestSchedulerAdmissionControl pins the bounded-queue contract: a full
// queue rejects immediately with ErrOverloaded (no blocking, no growth), the
// rejected request is gone for good, and everything admitted before the
// rejection still completes once the dispatcher runs.
func TestSchedulerAdmissionControl(t *testing.T) {
	_, eps := testCorpus(t, 102, 8)
	srv, _ := testServer(t, eps)
	const depth = 4
	s := NewScheduler(srv, SchedulerConfig{QueueDepth: depth, MaxBatch: 8})

	var wg sync.WaitGroup
	errs := make([]error, depth)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Submit(context.Background(), eps[0])
		}(i)
	}
	waitDepth(t, s, depth)

	start := time.Now()
	if _, err := s.Submit(context.Background(), eps[0]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit to full queue returned %v, want ErrOverloaded", err)
	}
	if since := time.Since(start); since > time.Second {
		t.Fatalf("overload rejection took %v; admission must not block", since)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}

	s.Start()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted request %d failed: %v", i, err)
		}
	}
	s.Close()
	if _, err := s.Submit(context.Background(), eps[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after Close returned %v, want ErrDraining", err)
	}
}

// TestSchedulerDeadlineExpiry: a request whose context dies while queued is
// answered with the context error before batch dispatch — it never occupies
// a slot in the model call and is never served late. Fresh requests on the
// same scheduler keep working.
func TestSchedulerDeadlineExpiry(t *testing.T) {
	_, eps := testCorpus(t, 103, 8)
	srv, _ := testServer(t, eps)
	s := NewScheduler(srv, SchedulerConfig{QueueDepth: 8, MaxBatch: 8})

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var expiredErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, expiredErr = s.Submit(ctx, eps[0])
	}()
	waitDepth(t, s, 1)
	cancel() // the request is queued; kill it before the dispatcher exists
	s.Start()
	wg.Wait()
	defer s.Close()

	if !errors.Is(expiredErr, context.Canceled) {
		t.Fatalf("expired request returned %v, want context.Canceled", expiredErr)
	}
	st := s.Stats()
	if st.Expired != 1 || st.Batches != 0 {
		t.Fatalf("stats after expiry = %+v, want 1 expired and 0 batches", st)
	}
	if _, err := s.Submit(context.Background(), eps[1]); err != nil {
		t.Fatalf("live request after an expiry failed: %v", err)
	}
}

// TestSchedulerPanicRecovery poisons a batch with an unservable plan: the
// batch's requests fail with an error, the dispatcher survives, and the next
// request is served normally — a panic fails only the affected requests.
func TestSchedulerPanicRecovery(t *testing.T) {
	_, eps := testCorpus(t, 104, 8)
	srv, _ := testServer(t, eps)
	s := NewScheduler(srv, SchedulerConfig{QueueDepth: 8, MaxBatch: 8})
	s.Start()
	defer s.Close()

	poison := &feature.EncodedPlan{Nodes: make([]feature.EncodedNode, 1), Root: 7}
	if _, err := s.Submit(context.Background(), poison); err == nil {
		t.Fatal("poisoned plan was served without error")
	}
	if st := s.Stats(); st.Panics != 1 || st.Failed != 1 {
		t.Fatalf("stats after poison = %+v, want 1 panic and 1 failed", st)
	}
	res, err := s.Submit(context.Background(), eps[0])
	if err != nil {
		t.Fatalf("request after a panic failed: %v", err)
	}
	if res.Version == 0 {
		t.Fatal("request after a panic served version 0")
	}
}

// TestDrainContractUnderLoad is the graceful-drain acceptance test, run
// under -race in CI: sustained concurrent load, a trainer continuously
// delta-publishing mid-flight, and a Close racing all of it. Every admitted
// request must complete with no error and a result bit-identical to a
// single-threaded evaluation of the snapshot version it reports; admission
// after the drain begins fails fast; nothing is dropped after admission.
func TestDrainContractUnderLoad(t *testing.T) {
	_, eps := testCorpus(t, 105, 24)
	srv, tr := testServer(t, eps)
	s := NewScheduler(srv, SchedulerConfig{
		QueueDepth:  64,
		MaxBatch:    8,
		BatchWindow: 2 * time.Millisecond,
		Workers:     2,
	})
	s.Start()

	// Pin every published snapshot so each reported version can be replayed
	// bit for bit after the fact.
	var versions sync.Map
	v1 := srv.Snapshot()
	versions.Store(v1.Version(), v1)

	stopPub := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		for {
			select {
			case <-stopPub:
				return
			default:
			}
			tr.TrainEpochBatched(eps, 8, 1)
			snap := tr.PublishDelta(srv)
			snap.Pin()
			versions.Store(snap.Version(), snap)
		}
	}()

	type servedReq struct {
		ep  *feature.EncodedPlan
		res Result
	}
	const loaders = 8
	var (
		mu        sync.Mutex
		completed []servedReq
		rejected  int
	)
	var loadWG sync.WaitGroup
	for w := 0; w < loaders; w++ {
		loadWG.Add(1)
		go func(w int) {
			defer loadWG.Done()
			for k := 0; ; k++ {
				ep := eps[(w*31+k)%len(eps)]
				res, err := s.Submit(context.Background(), ep)
				switch {
				case err == nil:
					mu.Lock()
					completed = append(completed, servedReq{ep, res})
					mu.Unlock()
				case errors.Is(err, ErrOverloaded):
					mu.Lock()
					rejected++
					mu.Unlock()
				case errors.Is(err, ErrDraining):
					return
				default:
					t.Errorf("loader %d: admitted request failed: %v", w, err)
					return
				}
			}
		}(w)
	}

	time.Sleep(100 * time.Millisecond)
	s.Close() // races the loaders and the publisher — that is the point
	loadWG.Wait()
	close(stopPub)
	pubWG.Wait()

	st := s.Stats()
	if st.Admitted != st.Served+st.Expired {
		t.Fatalf("dropped after admission: admitted %d != served %d + expired %d",
			st.Admitted, st.Served, st.Expired)
	}
	if st.Failed != 0 || st.Expired != 0 {
		t.Fatalf("drain must complete admitted work cleanly: %+v", st)
	}
	if uint64(len(completed)) != st.Served {
		t.Fatalf("loaders recorded %d completions, scheduler served %d", len(completed), st.Served)
	}
	if len(completed) == 0 {
		t.Fatal("no requests completed; load generator broken")
	}
	if st.MeanBatch <= 1 {
		t.Fatalf("micro-batching did not coalesce under load: mean batch %.2f", st.MeanBatch)
	}

	// Bit-identity: every completed request replays exactly on the snapshot
	// version it reported, regardless of publish churn during its flight.
	distinct := map[uint64]bool{}
	for i, sr := range completed {
		v, ok := versions.Load(sr.res.Version)
		if !ok {
			t.Fatalf("request %d reported unknown version %d", i, sr.res.Version)
		}
		snap := v.(*core.ModelSnapshot)
		c, d := snap.Model().Estimate(sr.ep)
		if sr.res.Cost != c || sr.res.Card != d {
			t.Fatalf("request %d: served (%g,%g) at v%d, single-threaded replay (%g,%g)",
				i, sr.res.Cost, sr.res.Card, sr.res.Version, c, d)
		}
		distinct[sr.res.Version] = true
	}
	if len(distinct) < 2 {
		t.Logf("served %d requests all on one version; publish churn did not overlap load", len(completed))
	}
	t.Logf("drain contract held: %d served (%d rejected) across %d versions, mean batch %.2f, queue high water %d",
		len(completed), rejected, len(distinct), st.MeanBatch, st.QueueHighWater)
}
