package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"costest/internal/fault"
)

// httptest2 serves svc over a test HTTP server torn down with the test and
// returns its base URL (the scheduler's lifecycle stays with the caller —
// breaker tests need to control when it starts and drains).
func httptest2(t *testing.T, svc *Service) string {
	t.Helper()
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestBreakerTripsAndServesDegraded drives the full breaker arc with
// injected estimator failures: a healthy batch retains a last-known-good
// snapshot; consecutive failures trip the breaker; tripped, the scheduler
// answers from the fallback snapshot — bit-identical to the healthy answer,
// stamped with the fallback version, flagged degraded — without touching the
// failing primary path.
func TestBreakerTripsAndServesDegraded(t *testing.T) {
	_, eps := testCorpus(t, 301, 8)
	srv, _ := testServer(t, eps)
	s := NewScheduler(srv, SchedulerConfig{
		QueueDepth:      16,
		MaxBatch:        4,
		BreakerFailures: 2,
		BreakerCooldown: time.Hour, // no half-open probes in this test
	})
	s.Start()
	defer s.Close()

	// Healthy batch: establishes the last-known-good fallback.
	good, err := s.Submit(t.Context(), eps[0])
	if err != nil {
		t.Fatalf("healthy submit: %v", err)
	}
	if good.Degraded {
		t.Fatal("healthy answer flagged degraded")
	}

	// Every primary batch now fails at the injected hook point.
	fault.Enable(fault.New(11).Add(fault.Rule{Site: "serve.batch", Kind: fault.Error}))
	defer fault.Disable()

	// Failure 1: breaker still closed, the request is answered with the
	// estimator's error.
	if _, err := s.Submit(t.Context(), eps[0]); err == nil {
		t.Fatal("first failing batch returned no error")
	}
	if s.Degraded() {
		t.Fatal("breaker open after one failure, threshold is 2")
	}

	// Failure 2 trips the breaker; the tripping batch itself falls back.
	res, err := s.Submit(t.Context(), eps[0])
	if err != nil {
		t.Fatalf("tripping batch not served degraded: %v", err)
	}
	if !s.Degraded() {
		t.Fatal("breaker closed after hitting the failure threshold")
	}

	// Open breaker inside its cooldown: pure fallback, primary path untried.
	before := fault.Calls("serve.batch")
	res2, err := s.Submit(t.Context(), eps[0])
	if err != nil {
		t.Fatalf("degraded submit: %v", err)
	}
	if got := fault.Calls("serve.batch"); got != before {
		t.Fatalf("open breaker hit the primary path (%d -> %d calls)", before, got)
	}

	for _, r := range []Result{res, res2} {
		if !r.Degraded {
			t.Fatal("fallback answer not flagged degraded")
		}
		if r.Cost != good.Cost || r.Card != good.Card || r.Version != good.Version {
			t.Fatalf("degraded answer (%g,%g,v%d) != last-known-good (%g,%g,v%d)",
				r.Cost, r.Card, r.Version, good.Cost, good.Card, good.Version)
		}
	}

	st := s.Stats()
	if !st.BreakerOpen || st.BreakerTrips != 1 {
		t.Fatalf("stats: open=%v trips=%d, want open once", st.BreakerOpen, st.BreakerTrips)
	}
	if st.Degraded != 2 {
		t.Fatalf("stats: degraded=%d, want 2", st.Degraded)
	}
	if st.FallbackVersion != good.Version {
		t.Fatalf("stats: fallback_version=%d, want %d", st.FallbackVersion, good.Version)
	}
}

// TestBreakerHalfOpenRecovery: with the cooldown elapsed (negative cooldown
// probes every batch), an open breaker retries the primary path. A failing
// probe re-arms degraded serving; a succeeding probe closes the breaker and
// normal batched serving resumes.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	_, eps := testCorpus(t, 302, 8)
	srv, _ := testServer(t, eps)
	s := NewScheduler(srv, SchedulerConfig{
		QueueDepth:      16,
		MaxBatch:        4,
		BreakerFailures: 2,
		BreakerCooldown: -1, // every post-trip batch is a half-open probe
	})
	s.Start()
	defer s.Close()

	if _, err := s.Submit(t.Context(), eps[0]); err != nil {
		t.Fatalf("healthy submit: %v", err)
	}

	// Exactly 3 primary-path failures: two to trip, one failed probe.
	fault.Enable(fault.New(11).Add(fault.Rule{Site: "serve.batch", Kind: fault.Error, Count: 3}))
	defer fault.Disable()

	if _, err := s.Submit(t.Context(), eps[1]); err == nil {
		t.Fatal("first failure swallowed")
	}
	res, err := s.Submit(t.Context(), eps[1]) // trips, served degraded
	if err != nil || !res.Degraded {
		t.Fatalf("tripping batch: res=%+v err=%v, want degraded answer", res, err)
	}
	res, err = s.Submit(t.Context(), eps[1]) // probe fails -> still degraded
	if err != nil || !res.Degraded {
		t.Fatalf("failed probe: res=%+v err=%v, want degraded answer", res, err)
	}
	if !s.Degraded() {
		t.Fatal("breaker closed after a failing probe")
	}

	// The fault rule is spent: the next probe succeeds and closes the breaker.
	res, err = s.Submit(t.Context(), eps[2])
	if err != nil {
		t.Fatalf("recovering probe: %v", err)
	}
	if res.Degraded {
		t.Fatal("successful probe still flagged degraded")
	}
	if s.Degraded() {
		t.Fatal("breaker still open after a successful probe")
	}

	st := s.Stats()
	if st.BreakerTrips != 1 {
		t.Fatalf("trips=%d, want 1", st.BreakerTrips)
	}
	if st.BreakerProbes != 2 {
		t.Fatalf("probes=%d, want 2 (one failed, one recovered)", st.BreakerProbes)
	}
}

// TestBreakerSurvivesPanicsWithoutFallback: injected panics in the estimator
// must not kill the dispatcher, and a breaker that trips before any batch
// ever succeeded has no fallback — requests are answered with errors, never
// hung, and recovery still works once the fault clears.
func TestBreakerSurvivesPanicsWithoutFallback(t *testing.T) {
	_, eps := testCorpus(t, 303, 8)
	srv, _ := testServer(t, eps)
	s := NewScheduler(srv, SchedulerConfig{
		QueueDepth:      16,
		MaxBatch:        4,
		BreakerFailures: 1,
		BreakerCooldown: -1,
	})
	s.Start()
	defer s.Close()

	fault.Enable(fault.New(11).Add(fault.Rule{Site: "serve.batch", Kind: fault.Panic, Count: 2}))
	defer fault.Disable()

	// No batch has ever succeeded: failures (panics included) must surface as
	// errors — there is nothing stale-but-correct to serve.
	for i := 0; i < 2; i++ {
		res, err := s.Submit(t.Context(), eps[0])
		if err == nil {
			t.Fatalf("panic batch %d answered %+v, want error", i, res)
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Fatalf("panic batch %d error = %v, want panic containment", i, err)
		}
	}
	if !s.Degraded() {
		t.Fatal("breaker did not trip on panics")
	}

	// Fault spent: the probe succeeds, dispatcher alive, breaker closes.
	res, err := s.Submit(t.Context(), eps[0])
	if err != nil || res.Degraded {
		t.Fatalf("post-panic recovery: res=%+v err=%v", res, err)
	}
	if st := s.Stats(); st.Panics != 2 {
		t.Fatalf("panics=%d, want 2", st.Panics)
	}
}

// TestRetryAfterSecs pins the pure hint-to-header conversion: round up to
// whole seconds, add up to half the hint of jitter, clamp to [1, 60].
func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		hint time.Duration
		jit  float64
		want int
	}{
		{0, 0, 1},                      // floor: never tell a client "0"
		{time.Second, 0, 1},            // exact second, no jitter
		{time.Second, 0.99, 2},         // jitter pushes past the second
		{500 * time.Millisecond, 0, 1}, // sub-second rounds up
		{4 * time.Second, 1.0, 6},      // 4s + 2s jitter
		{10 * time.Minute, 0, 60},      // clamped ceiling
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.hint, c.jit); got != c.want {
			t.Errorf("retryAfterSecs(%v, %g) = %d, want %d", c.hint, c.jit, got, c.want)
		}
	}
}

// TestHTTPRetryAfterScalesWithQueueDepth: a 503 from a backed-up daemon must
// carry a Retry-After derived from the actual backlog (queue depth over
// batch throughput), not the constant floor.
func TestHTTPRetryAfterScalesWithQueueDepth(t *testing.T) {
	plans, eps := testCorpus(t, 304, 8)
	srv, _ := testServer(t, eps)
	// Unstarted scheduler: 4 submits fill the queue deterministically.
	// 2s window, MaxBatch 1 -> hint (4/1+1)*2s = 10s, jitter caps at 15s.
	sched := NewScheduler(srv, SchedulerConfig{QueueDepth: 4, MaxBatch: 1, BatchWindow: 2 * time.Second})
	svc := NewService(sched, srv, testEnc)
	svc.SetReady(true)
	ts := httptest2(t, svc)

	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			sched.Submit(t.Context(), eps[i])
		}(i)
	}
	waitDepth(t, sched, 4)

	resp := postJSON(t, ts+"/estimate", estimateRequest{Plan: EncodeWire(plans[4])})
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full queue: status %d, want 503", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if secs < 10 || secs > 15 {
		t.Fatalf("Retry-After %ds outside derived range [10, 15] for a 4-deep queue", secs)
	}

	// Start the dispatcher so the queued submits complete, then drain.
	sched.Start()
	for i := 0; i < 4; i++ {
		<-done
	}
	sched.Close()
}

// TestHTTPDegradedSurface: with the breaker open, /readyz stays 200 but says
// degraded (an orchestrator must not kill the fallback), /statsz reports
// degraded with breaker counters, and estimates carry the degraded flag on
// the wire.
func TestHTTPDegradedSurface(t *testing.T) {
	plans, eps := testCorpus(t, 305, 8)
	srv, _ := testServer(t, eps)
	sched := NewScheduler(srv, SchedulerConfig{
		QueueDepth:      16,
		MaxBatch:        4,
		BreakerFailures: 1,
		BreakerCooldown: time.Hour,
	})
	sched.Start()
	svc := NewService(sched, srv, testEnc)
	svc.SetReady(true)
	svc.SupervisorStats = func() any { return map[string]int{"cycles": 7} }
	ts := httptest2(t, svc)
	t.Cleanup(sched.Close)

	// Healthy request to retain a fallback, then trip the breaker.
	if _, err := sched.Submit(t.Context(), eps[0]); err != nil {
		t.Fatalf("healthy submit: %v", err)
	}
	fault.Enable(fault.New(11).Add(fault.Rule{Site: "serve.batch", Kind: fault.Error, Count: 1}))
	defer fault.Disable()
	if res, err := sched.Submit(t.Context(), eps[0]); err != nil || !res.Degraded {
		t.Fatalf("trip submit: res=%+v err=%v", res, err)
	}

	resp, err := http.Get(ts + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "degraded") {
		t.Fatalf("degraded readyz: %d %q, want 200 + degraded", resp.StatusCode, body)
	}

	resp, err = http.Get(ts + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode statsz: %v", err)
	}
	resp.Body.Close()
	if !st.Degraded || !st.Scheduler.BreakerOpen || st.Scheduler.BreakerTrips != 1 {
		t.Fatalf("statsz degraded surface: %+v", st)
	}
	if st.Supervisor == nil {
		t.Fatal("statsz missing supervisor stats")
	}

	resp = postJSON(t, ts+"/estimate", estimateRequest{Plan: EncodeWire(plans[0])})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded estimate: status %d", resp.StatusCode)
	}
	var er estimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if len(er.Estimates) != 1 || !er.Estimates[0].Degraded {
		t.Fatalf("wire estimate not flagged degraded: %+v", er.Estimates)
	}
}
