package serve

import (
	"fmt"
	"strings"

	"costest/internal/plan"
	"costest/internal/sqlpred"
)

// The wire plan format: a JSON representation of the physical plan algebra
// (internal/plan) that an optimizer posts to /estimate. It mirrors the plan
// tree one-to-one — operators by name, predicates as atom/bool trees — and
// decodes with full validation, so malformed requests die at the HTTP
// boundary with a 400 instead of reaching the dispatcher.

// WirePlan is one plan node.
type WirePlan struct {
	// Op names the physical operator: seqscan, indexscan, hashjoin,
	// mergejoin, nestedloop, sort, aggregate.
	Op        string    `json:"op"`
	Table     string    `json:"table,omitempty"`
	Index     string    `json:"index,omitempty"`
	Filter    *WirePred `json:"filter,omitempty"`
	IndexCond *WireAtom `json:"index_cond,omitempty"`
	Join      *WireJoin `json:"join,omitempty"`
	ParamJoin *WireJoin `json:"param_join,omitempty"`
	SortKeys  []WireCol `json:"sort_keys,omitempty"`
	Aggs      []WireAgg `json:"aggs,omitempty"`
	Left      *WirePlan `json:"left,omitempty"`
	Right     *WirePlan `json:"right,omitempty"`
}

// WirePred is a predicate tree node: exactly one of Atom or (Bool, Left,
// Right) is set.
type WirePred struct {
	Bool  string    `json:"bool,omitempty"` // "and" | "or"
	Left  *WirePred `json:"left,omitempty"`
	Right *WirePred `json:"right,omitempty"`
	Atom  *WireAtom `json:"atom,omitempty"`
}

// WireAtom is one atomic predicate ⟨column, operator, operand⟩.
type WireAtom struct {
	Table  string `json:"table"`
	Column string `json:"column"`
	// Op is one of: =, !=, <, >, <=, >=, like, "not like", in.
	Op string `json:"op"`
	// Exactly one operand family, mirroring sqlpred.Atom.
	Num *float64 `json:"num,omitempty"`
	Str *string  `json:"str,omitempty"`
	In  []string `json:"in,omitempty"`
}

// WireJoin is an equi-join condition.
type WireJoin struct {
	Left  WireCol `json:"left"`
	Right WireCol `json:"right"`
}

// WireCol names a column.
type WireCol struct {
	Table  string `json:"table"`
	Column string `json:"column"`
}

// WireAgg is one output aggregate.
type WireAgg struct {
	Func string   `json:"func"` // min | max | count
	Col  *WireCol `json:"col,omitempty"`
}

var wireOps = map[string]plan.NodeType{
	"seqscan":    plan.SeqScan,
	"indexscan":  plan.IndexScan,
	"hashjoin":   plan.HashJoin,
	"mergejoin":  plan.MergeJoin,
	"nestedloop": plan.NestedLoop,
	"sort":       plan.Sort,
	"aggregate":  plan.Aggregate,
}

var wirePlanOps = func() map[plan.NodeType]string {
	m := make(map[plan.NodeType]string, len(wireOps))
	for name, t := range wireOps {
		m[t] = name
	}
	return m
}()

var wireAtomOps = map[string]sqlpred.Op{
	"=":        sqlpred.OpEq,
	"!=":       sqlpred.OpNe,
	"<":        sqlpred.OpLt,
	">":        sqlpred.OpGt,
	"<=":       sqlpred.OpLe,
	">=":       sqlpred.OpGe,
	"like":     sqlpred.OpLike,
	"not like": sqlpred.OpNotLike,
	"in":       sqlpred.OpIn,
}

// Decode converts the wire plan into a plan.Node tree, validating operator
// and predicate shapes. Schema validity (table/column existence) is checked
// downstream by the feature encoder against its catalog.
func (w *WirePlan) Decode() (*plan.Node, error) {
	if w == nil {
		return nil, fmt.Errorf("serve: empty plan")
	}
	t, ok := wireOps[strings.ToLower(w.Op)]
	if !ok {
		return nil, fmt.Errorf("serve: unknown operator %q", w.Op)
	}
	n := &plan.Node{Type: t, Table: w.Table, Index: w.Index}
	if t.IsScan() && w.Table == "" {
		return nil, fmt.Errorf("serve: %s without a table", w.Op)
	}
	var err error
	if w.Filter != nil {
		if n.Filter, err = w.Filter.decode(); err != nil {
			return nil, err
		}
	}
	if w.IndexCond != nil {
		a, err := w.IndexCond.decode()
		if err != nil {
			return nil, err
		}
		n.IndexCond = a
	}
	if w.Join != nil {
		n.JoinCond = &plan.JoinCond{Left: w.Join.Left.decode(), Right: w.Join.Right.decode()}
	}
	if w.ParamJoin != nil {
		n.ParamJoin = &plan.JoinCond{Left: w.ParamJoin.Left.decode(), Right: w.ParamJoin.Right.decode()}
	}
	for _, k := range w.SortKeys {
		n.SortKeys = append(n.SortKeys, k.decode())
	}
	for _, a := range w.Aggs {
		spec, err := a.decode()
		if err != nil {
			return nil, err
		}
		n.Aggs = append(n.Aggs, spec)
	}
	if w.Left != nil {
		if n.Left, err = w.Left.Decode(); err != nil {
			return nil, err
		}
	}
	if w.Right != nil {
		if n.Right, err = w.Right.Decode(); err != nil {
			return nil, err
		}
	}
	if t.IsJoin() && (n.Left == nil || n.Right == nil) {
		return nil, fmt.Errorf("serve: %s needs two inputs", w.Op)
	}
	if (t == plan.Sort || t == plan.Aggregate) && n.Left == nil {
		return nil, fmt.Errorf("serve: %s needs an input", w.Op)
	}
	return n, nil
}

func (w *WirePred) decode() (sqlpred.Pred, error) {
	switch {
	case w == nil:
		return nil, fmt.Errorf("serve: empty predicate node")
	case w.Atom != nil && w.Bool == "":
		return w.Atom.decode()
	case w.Atom == nil && w.Bool != "":
		var kind sqlpred.BoolKind
		switch strings.ToLower(w.Bool) {
		case "and":
			kind = sqlpred.And
		case "or":
			kind = sqlpred.Or
		default:
			return nil, fmt.Errorf("serve: unknown connective %q", w.Bool)
		}
		if w.Left == nil || w.Right == nil {
			return nil, fmt.Errorf("serve: %s needs two operands", w.Bool)
		}
		l, err := w.Left.decode()
		if err != nil {
			return nil, err
		}
		r, err := w.Right.decode()
		if err != nil {
			return nil, err
		}
		return &sqlpred.Bool{Kind: kind, Left: l, Right: r}, nil
	default:
		return nil, fmt.Errorf("serve: predicate node must set exactly one of atom or bool")
	}
}

func (w *WireAtom) decode() (*sqlpred.Atom, error) {
	op, ok := wireAtomOps[strings.ToLower(w.Op)]
	if !ok {
		return nil, fmt.Errorf("serve: unknown predicate operator %q", w.Op)
	}
	if w.Table == "" || w.Column == "" {
		return nil, fmt.Errorf("serve: predicate atom needs table and column")
	}
	a := &sqlpred.Atom{Table: w.Table, Column: w.Column, Op: op}
	operands := 0
	if w.Num != nil {
		a.NumVal = *w.Num
		operands++
	}
	if w.Str != nil {
		a.StrVal, a.IsStr = *w.Str, true
		operands++
	}
	if len(w.In) > 0 {
		a.InVals, a.IsStr = w.In, true
		operands++
	}
	if operands != 1 {
		return nil, fmt.Errorf("serve: predicate atom on %s.%s needs exactly one operand (num, str or in)",
			w.Table, w.Column)
	}
	if (op == sqlpred.OpIn) != (len(w.In) > 0) {
		return nil, fmt.Errorf("serve: operator %q and operand kind disagree on %s.%s", w.Op, w.Table, w.Column)
	}
	return a, nil
}

func (w WireCol) decode() plan.ColRef { return plan.ColRef{Table: w.Table, Column: w.Column} }

func (w WireAgg) decode() (plan.AggSpec, error) {
	var f plan.AggFunc
	switch strings.ToLower(w.Func) {
	case "min":
		f = plan.AggMin
	case "max":
		f = plan.AggMax
	case "count":
		f = plan.AggCount
	default:
		return plan.AggSpec{}, fmt.Errorf("serve: unknown aggregate %q", w.Func)
	}
	spec := plan.AggSpec{Func: f}
	if w.Col != nil {
		spec.Col = w.Col.decode()
	}
	return spec, nil
}

// EncodeWire converts a plan.Node tree into its wire form — the server's
// /samplez endpoint uses it to hand clients a valid example request, and
// round-tripping it through Decode is the format's own regression test.
func EncodeWire(n *plan.Node) *WirePlan {
	if n == nil {
		return nil
	}
	w := &WirePlan{Op: wirePlanOps[n.Type], Table: n.Table, Index: n.Index}
	w.Filter = encodeWirePred(n.Filter)
	if n.IndexCond != nil {
		w.IndexCond = encodeWireAtom(n.IndexCond)
	}
	if n.JoinCond != nil {
		w.Join = &WireJoin{Left: encodeWireCol(n.JoinCond.Left), Right: encodeWireCol(n.JoinCond.Right)}
	}
	if n.ParamJoin != nil {
		w.ParamJoin = &WireJoin{Left: encodeWireCol(n.ParamJoin.Left), Right: encodeWireCol(n.ParamJoin.Right)}
	}
	for _, k := range n.SortKeys {
		w.SortKeys = append(w.SortKeys, encodeWireCol(k))
	}
	for _, a := range n.Aggs {
		wa := WireAgg{Func: strings.ToLower(a.Func.String())}
		if a.Col != (plan.ColRef{}) {
			col := encodeWireCol(a.Col)
			wa.Col = &col
		}
		w.Aggs = append(w.Aggs, wa)
	}
	w.Left = EncodeWire(n.Left)
	w.Right = EncodeWire(n.Right)
	return w
}

func encodeWirePred(p sqlpred.Pred) *WirePred {
	switch n := p.(type) {
	case nil:
		return nil
	case *sqlpred.Atom:
		return &WirePred{Atom: encodeWireAtom(n)}
	case *sqlpred.Bool:
		return &WirePred{
			Bool:  strings.ToLower(n.Kind.String()),
			Left:  encodeWirePred(n.Left),
			Right: encodeWirePred(n.Right),
		}
	default:
		return nil
	}
}

func encodeWireAtom(a *sqlpred.Atom) *WireAtom {
	w := &WireAtom{Table: a.Table, Column: a.Column, Op: strings.ToLower(a.Op.String())}
	switch {
	case a.Op == sqlpred.OpIn:
		w.In = a.InVals
	case a.IsStr:
		s := a.StrVal
		w.Str = &s
	default:
		n := a.NumVal
		w.Num = &n
	}
	return w
}

func encodeWireCol(c plan.ColRef) WireCol { return WireCol{Table: c.Table, Column: c.Column} }
