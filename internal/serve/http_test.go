package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// newTestService spins up a full serving stack (scheduler + HTTP service)
// over a trained server, started and marked ready.
func newTestService(t *testing.T) (*Service, *Scheduler, *httptest.Server) {
	t.Helper()
	plans, eps := testCorpus(t, 201, 12)
	srv, _ := testServer(t, eps)
	sched := NewScheduler(srv, SchedulerConfig{QueueDepth: 16, MaxBatch: 8})
	sched.Start()
	svc := NewService(sched, srv, testEnc)
	svc.SetSample(EncodeWire(plans[0]))
	svc.SetReady(true)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		sched.Close()
	})
	return svc, sched, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestHTTPEstimateRoundTrip posts real plans through the wire format and
// checks each response against a direct single-threaded evaluation of the
// served snapshot.
func TestHTTPEstimateRoundTrip(t *testing.T) {
	plans, eps := testCorpus(t, 201, 12)
	svc, _, ts := newTestService(t)
	_ = svc

	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/estimate", estimateRequest{Plan: EncodeWire(plans[i])})
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("estimate %d: status %d: %s", i, resp.StatusCode, body)
		}
		var er estimateResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("decode response: %v", err)
		}
		if len(er.Estimates) != 1 {
			t.Fatalf("got %d estimates, want 1", len(er.Estimates))
		}
		got := er.Estimates[0]
		if got.Version == 0 {
			t.Fatal("response missing snapshot version")
		}
		// eps[i] was encoded from the same plan; the wire round trip must not
		// perturb the estimate.
		sched := svc.sched
		res, err := sched.Submit(t.Context(), eps[i])
		if err != nil {
			t.Fatalf("direct submit: %v", err)
		}
		if got.Cost != res.Cost || got.Card != res.Card {
			t.Fatalf("wire estimate (%g,%g) != direct (%g,%g)", got.Cost, got.Card, res.Cost, res.Card)
		}
	}

	// Multi-plan request: one response entry per plan, same order.
	resp := postJSON(t, ts.URL+"/estimate", estimateRequest{
		Plans: []*WirePlan{EncodeWire(plans[3]), EncodeWire(plans[4])},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multi-plan status %d", resp.StatusCode)
	}
	var er estimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(er.Estimates) != 2 {
		t.Fatalf("got %d estimates for 2 plans", len(er.Estimates))
	}
}

// TestHTTPSamplezServesValidRequest: the /samplez body must itself be a
// servable /estimate request — the discovery contract the smoke test uses.
func TestHTTPSamplezServesValidRequest(t *testing.T) {
	_, _, ts := newTestService(t)
	resp, err := http.Get(ts.URL + "/samplez")
	if err != nil {
		t.Fatalf("get samplez: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("samplez status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	resp2, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post sample: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp2.Body)
		t.Fatalf("sample request not servable: %d: %s", resp2.StatusCode, b)
	}
}

// TestHTTPBadRequests: malformed bodies are 400s at the boundary and never
// occupy a queue slot.
func TestHTTPBadRequests(t *testing.T) {
	_, sched, ts := newTestService(t)
	before := sched.Stats().Admitted
	cases := []string{
		`{`,                          // broken JSON
		`{}`,                         // no plan
		`{"plan":{"op":"fullscan"}}`, // unknown operator
		`{"plan":{"op":"seqscan"}}`,  // scan without table
		`{"plan":{"op":"hashjoin"}}`, // join without inputs
		`{"plan":{"op":"seqscan","table":"title"},"bogus":1}`,                                                                        // unknown field
		`{"plan":{"op":"seqscan","table":"title","filter":{"atom":{"table":"title","column":"production_year","op":"in","num":3}}}}`, // op/operand mismatch
	}
	for _, body := range cases {
		resp, err := http.Post(ts.URL+"/estimate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if after := sched.Stats().Admitted; after != before {
		t.Fatalf("bad requests reached the queue: admitted %d -> %d", before, after)
	}
	resp, err := http.Get(ts.URL + "/estimate")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /estimate: status %d, want 405", resp.StatusCode)
	}
}

// TestHTTPReadinessAndDrain: /readyz gates on SetReady and flips unready the
// moment the scheduler drains; estimates during the drain are 503s carrying
// a Retry-After hint.
func TestHTTPReadinessAndDrain(t *testing.T) {
	plans, eps := testCorpus(t, 201, 12)
	srv, _ := testServer(t, eps)
	sched := NewScheduler(srv, SchedulerConfig{QueueDepth: 16, MaxBatch: 8})
	sched.Start()
	svc := NewService(sched, srv, testEnc)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer sched.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before SetReady: %d, want 503", code)
	}
	resp := postJSON(t, ts.URL+"/estimate", estimateRequest{Plan: EncodeWire(plans[0])})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("estimate before ready: %d, want 503", resp.StatusCode)
	}

	svc.SetReady(true)
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after SetReady: %d", code)
	}

	sched.Close() // drain begins: readiness must flip with no extra call
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", code)
	}
	resp = postJSON(t, ts.URL+"/estimate", estimateRequest{Plan: EncodeWire(plans[0])})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("estimate while draining: %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("503 without usable Retry-After: %q", resp.Header.Get("Retry-After"))
	}
}

// TestHTTPStatsz: the observability endpoint reports scheduler counters, the
// generation-tagged pool, and the snapshot drain-list high water.
func TestHTTPStatsz(t *testing.T) {
	plans, _ := testCorpus(t, 201, 12)
	_, _, ts := newTestService(t)
	postJSON(t, ts.URL+"/estimate", estimateRequest{Plan: EncodeWire(plans[0])})

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatalf("get statsz: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		Version   uint64         `json:"version"`
		Scheduler SchedulerStats `json:"scheduler"`
		Pool      *struct {
			Bound     int     `json:"bound"`
			StaleRate float64 `json:"stale_rate"`
		} `json:"pool"`
		Drain struct {
			Retired          int `json:"Retired"`
			RetiredHighWater int `json:"RetiredHighWater"`
		} `json:"snapshot_drain"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode statsz: %v", err)
	}
	if st.Version == 0 {
		t.Fatal("statsz missing snapshot version")
	}
	if st.Scheduler.Served < 1 || st.Scheduler.Batches < 1 {
		t.Fatalf("statsz scheduler counters empty: %+v", st.Scheduler)
	}
	if st.Pool == nil || st.Pool.Bound != 2048 {
		t.Fatalf("statsz pool = %+v, want bound 2048", st.Pool)
	}
	if st.Drain.RetiredHighWater < 0 || st.Drain.Retired > st.Drain.RetiredHighWater {
		t.Fatalf("statsz drain inconsistent: %+v", st.Drain)
	}
}

// TestWireRoundTrip: encode → JSON → decode must reproduce the exact plan
// (same signature, same features, bit-identical estimate) for every plan in
// a mixed corpus.
func TestWireRoundTrip(t *testing.T) {
	plans, eps := testCorpus(t, 202, 16)
	srv, _ := testServer(t, eps)
	m := srv.Snapshot().Model()
	for i, p := range plans {
		raw, err := json.Marshal(EncodeWire(p))
		if err != nil {
			t.Fatalf("plan %d: marshal: %v", i, err)
		}
		var w WirePlan
		if err := json.Unmarshal(raw, &w); err != nil {
			t.Fatalf("plan %d: unmarshal: %v", i, err)
		}
		back, err := w.Decode()
		if err != nil {
			t.Fatalf("plan %d: decode: %v\n%s", i, err, raw)
		}
		if got, want := back.Signature(), p.Signature(); got != want {
			t.Fatalf("plan %d: signature drift\n got %s\nwant %s", i, got, want)
		}
		ep, err := testEnc.Encode(back)
		if err != nil {
			t.Fatalf("plan %d: re-encode: %v", i, err)
		}
		c0, d0 := m.Estimate(eps[i])
		c1, d1 := m.Estimate(ep)
		if c0 != c1 || d0 != d1 {
			t.Fatalf("plan %d: estimate drift through wire: (%g,%g) vs (%g,%g)", i, c0, d0, c1, d1)
		}
	}
}
