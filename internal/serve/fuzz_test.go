package serve

import (
	"encoding/json"
	"testing"
)

// FuzzWirePlanDecode drives the /estimate request path — JSON unmarshal into
// WirePlan, then structural Decode — with arbitrary bytes. This is the
// daemon's network-facing parser: any panic here is a remotely triggerable
// crash, so the contract is error-or-plan, never panic. Decoded plans are
// additionally pushed through the feature encoder, mirroring the full
// boundary validation the HTTP handler performs before admission.
func FuzzWirePlanDecode(f *testing.F) {
	// A realistic plan from the wire encoder itself plus shape edge cases.
	plans, _ := testCorpus(f, 401, 6)
	for _, p := range plans {
		b, err := json.Marshal(EncodeWire(p))
		if err != nil {
			f.Fatalf("marshal seed: %v", err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"op":"seqscan"}`))
	f.Add([]byte(`{"op":"hashjoin","left":{"op":"seqscan","table":"t"}}`))
	f.Add([]byte(`{"op":"seqscan","table":"t","filter":{"bool":"and","left":{"atom":{"table":"t","column":"c","op":"=","num":1}}}}`))
	f.Add([]byte(`{"op":"seqscan","table":"t","filter":{"atom":{"table":"t","column":"c","op":"in","in":["a"]},"bool":"or"}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var wp WirePlan
		if err := json.Unmarshal(data, &wp); err != nil {
			return
		}
		root, err := wp.Decode()
		if err != nil {
			return
		}
		if root == nil {
			t.Fatal("Decode returned nil plan and nil error")
		}
		// The encoder is the next validation stage on the request path; it
		// must reject unknown tables/columns with an error, not a panic.
		_, _ = testEnc.Encode(root)
	})
}
