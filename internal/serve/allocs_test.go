package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestSubmitAdmitAllocs proves the steady-state serve round trip — admit,
// dispatch, batch-estimate, respond — performs zero heap allocations per
// request. Request objects are pooled, the dispatcher writes estimates into
// reused scratch (EstimateBatchInto), and responses travel by value over the
// pre-allocated done channel, so a warmed scheduler serves without touching
// the allocator at all.
func TestSubmitAdmitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is enforced in the non-race pass")
	}
	_, eps := testCorpus(t, 301, 8)
	srv, _ := testServer(t, eps)
	s := NewScheduler(srv, SchedulerConfig{QueueDepth: 8, MaxBatch: 8, Workers: 1})
	s.Start()
	defer s.Close()

	ctx := context.Background()
	ep := eps[0]
	if _, err := s.Submit(ctx, ep); err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := s.Submit(ctx, ep); err != nil {
			t.Fatalf("submit: %v", err)
		}
	})
	if avg != 0 {
		t.Errorf("admitted Submit allocates %.1f allocs/op, want 0", avg)
	}
}

// TestSubmitRejectAllocs proves overload rejection is allocation-free: a
// Submit bounced off a full queue gets its pooled request recycled
// immediately and returns ErrOverloaded without creating garbage — overload
// must not accelerate memory pressure.
func TestSubmitRejectAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is enforced in the non-race pass")
	}
	_, eps := testCorpus(t, 303, 8)
	srv, _ := testServer(t, eps)
	s := NewScheduler(srv, SchedulerConfig{QueueDepth: 2, MaxBatch: 4, Workers: 1})

	// Fill the queue against a stopped dispatcher so every measured Submit
	// is rejected at admission.
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(ctx, eps[0]); err != nil {
				t.Errorf("queued submit: %v", err)
			}
		}()
	}
	waitDepth(t, s, 2)

	avg := testing.AllocsPerRun(200, func() {
		if _, err := s.Submit(ctx, eps[0]); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("submit on full queue: %v, want ErrOverloaded", err)
		}
	})
	if avg != 0 {
		t.Errorf("rejected Submit allocates %.1f allocs/op, want 0", avg)
	}

	s.Start()
	wg.Wait()
	s.Close()
}
