//go:build race

package serve

// raceEnabled reports that the race detector is instrumenting this build;
// allocation assertions are skipped because -race changes sync.Pool and
// allocator behavior.
const raceEnabled = true
